package rarestfirst

// Sharded event-heap determinism at the report level (PR 6): sharding is
// trajectory-preserving (a sharded run must digest identically to the
// unsharded oracle), and the shard-parallel staged retime apply is
// worker-count-invariant (serial and parallel flush applies must digest
// identically). CI repeats these under the race detector.

import (
	"testing"

	"rarestfirst/internal/swarm"
)

// shardDigest runs sc with an explicit worker count and digests the
// report with the Scenario's HeapShards echo normalized away — the digest
// then covers only simulation output, so it is equal across shard counts
// exactly when the trajectories are.
func shardDigest(t *testing.T, sc Scenario, workers int) (string, *Report) {
	t.Helper()
	cfg, spec, err := buildConfig(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LaneWorkers = workers
	res := swarm.New(cfg).Run()
	rep := buildReport(sc, spec, cfg, res)
	norm := *rep
	norm.Scenario.HeapShards = 0
	return reportDigest(t, &norm), rep
}

// TestShardedRunMatchesUnsharded pins the tentpole claim: HeapShards is a
// pure data-structure change, so the full report of a sharded run is
// byte-identical to the single-heap oracle's — without BatchHaves, whose
// trajectory change is a separate, opted-into contract.
func TestShardedRunMatchesUnsharded(t *testing.T) {
	base := Scenario{
		Label:     "shard-oracle-t7",
		TorrentID: 7,
		Scale: Scale{
			MaxPeers:     300,
			MaxContentMB: 16,
			MaxPieces:    64,
			Duration:     600,
			Warmup:       300,
			Seed:         42,
		},
		ChokeLanes:   true,
		SeedOverride: 11,
	}
	oracle, orep := shardDigest(t, base, 4)
	for _, shards := range []int{1, 8, 32} {
		sc := base
		sc.HeapShards = shards
		got, rep := shardDigest(t, sc, 4)
		if got != oracle {
			t.Errorf("HeapShards=%d digest %s != single-heap oracle digest %s", shards, got, oracle)
		}
		if rep.Events.Shards == 0 || rep.Events.MergePops == 0 {
			t.Errorf("HeapShards=%d run reported no shard stats: %+v", shards, rep.Events)
		}
	}
	if orep.Events.Shards != 0 || orep.Events.MergePops != 0 {
		t.Errorf("unsharded run leaked shard stats: %+v", orep.Events)
	}
}

// TestHeapShardParallelMatchesSerial pins the worker-count invariance of
// the shard-parallel staged retime apply on a full MegaSwarm-lever run —
// choke lanes, sharded heap and batched HAVEs all on — at a swarm size
// whose choke instants mark hundreds of nodes dirty, so Phase B genuinely
// fans across workers.
func TestHeapShardParallelMatchesSerial(t *testing.T) {
	sc := Scenario{
		Label:     "shard-flush-t7",
		TorrentID: 7,
		Scale: Scale{
			MaxPeers:     300,
			MaxContentMB: 16,
			MaxPieces:    64,
			Duration:     600,
			Warmup:       300,
			Seed:         42,
		},
		ChokeLanes:   true,
		HeapShards:   32,
		BatchHaves:   true,
		SeedOverride: 11,
	}
	serial, srep := retimeReport(t, sc, 1)
	parallel, prep := retimeReport(t, sc, 8)
	if serial != parallel {
		t.Errorf("parallel staged-apply digest %s != serial digest %s", parallel, serial)
	}
	if again, _ := retimeReport(t, sc, 8); again != parallel {
		t.Errorf("parallel staged-apply run not reproducible: %s vs %s", again, parallel)
	}
	for _, rep := range []*Report{srep, prep} {
		if rep.Events.Shards != 32 || rep.Events.MergePops == 0 || rep.Events.PeakShardHeap == 0 {
			t.Fatalf("shard stats missing from report: %+v", rep.Events)
		}
		// The run must actually have exercised wide flushes, or the test
		// proves nothing about the parallel apply path.
		if rep.Events.PeakShardWidth < 64 {
			t.Fatalf("peak retime shard width %d never reached the parallel fan-out threshold", rep.Events.PeakShardWidth)
		}
	}
}

// TestMegaSwarmSuiteMatchesPerfCase pins the registry's "mega-swarm"
// default to the perf harness's MegaSwarmScenario, exactly as the
// huge-swarm and flash-crowd pairs are pinned (the registry cannot import
// perf.go without a package cycle and hand-copies the scale).
func TestMegaSwarmSuiteMatchesPerfCase(t *testing.T) {
	s, err := NewSuite("mega-swarm", SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scenarios) != 1 {
		t.Fatalf("mega-swarm expands to %d scenarios, want 1", len(s.Scenarios))
	}
	got, want := s.Scenarios[0], MegaSwarmScenario()
	if got.Scale != want.Scale {
		t.Fatalf("registry scale %+v != MegaSwarmScale %+v", got.Scale, want.Scale)
	}
	if got.TorrentID != want.TorrentID || !got.ChokeLanes || got.ChurnScale != want.ChurnScale ||
		got.HeapShards != want.HeapShards || got.BatchHaves != want.BatchHaves {
		t.Fatalf("registry spec %+v drifted from MegaSwarmScenario %+v", got, want)
	}
}
