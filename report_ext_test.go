package rarestfirst

// Unit tests for the PR-1 follow-up aggregate extensions: fairness-share
// stats, availability-series envelopes, the backend split, sim-vs-live
// pairing, and the aggregate JSONL line. Built on synthetic reports so
// they run in microseconds.

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"rarestfirst/internal/analysis"
)

// fakeReport builds a minimal report for aggregation tests.
func fakeReport(label string, live bool, seed int64, topLS float64, avail []AvailPoint) *Report {
	return &Report{
		TorrentID: 10,
		Scenario:  Scenario{Label: label, TorrentID: 10, Live: live, SeedOverride: seed},
		Entropy: EntropySummary{
			AOverB: analysis.Summary{N: 1, P20: 0.9, P50: 0.9, P80: 0.9},
			COverD: analysis.Summary{N: 1, P20: 0.8, P50: 0.8, P80: 0.8},
		},
		FairnessUploadLS: []float64{topLS, 1 - topLS},
		FairnessRecipLS:  []float64{topLS / 2},
		FairnessUploadSS: []float64{topLS / 4},
		Availability:     avail,
	}
}

func availSeries(means ...float64) []AvailPoint {
	out := make([]AvailPoint, len(means))
	for i, m := range means {
		out[i] = AvailPoint{T: float64(i * 10), Mean: m}
	}
	return out
}

func TestAggregateFairnessAndEnvelope(t *testing.T) {
	reports := []*Report{
		fakeReport("x", false, 1, 0.6, availSeries(1, 2, 3, 4)),
		fakeReport("x", false, 2, 0.8, availSeries(2, 3, 4)), // shorter series
	}
	aggs := AggregateReports(reports)
	if len(aggs) != 1 {
		t.Fatalf("want one group, got %d", len(aggs))
	}
	a := aggs[0]
	if a.TopSetUploadLS.N != 2 || math.Abs(a.TopSetUploadLS.Mean-0.7) > 1e-12 {
		t.Fatalf("TopSetUploadLS: %+v", a.TopSetUploadLS)
	}
	if a.TopSetRecipLS.N != 2 || math.Abs(a.TopSetRecipLS.Mean-0.35) > 1e-12 {
		t.Fatalf("TopSetRecipLS: %+v", a.TopSetRecipLS)
	}
	if a.TopSetUploadSS.N != 2 || math.Abs(a.TopSetUploadSS.Mean-0.175) > 1e-12 {
		t.Fatalf("TopSetUploadSS: %+v", a.TopSetUploadSS)
	}
	// Envelope truncates to the shortest series and bands point-by-point.
	if len(a.AvailMeanCopies) != 3 {
		t.Fatalf("envelope length %d, want 3", len(a.AvailMeanCopies))
	}
	b := a.AvailMeanCopies[1]
	if b.Min != 2 || b.Max != 3 || math.Abs(b.Mean-2.5) > 1e-12 || b.T != 10 {
		t.Fatalf("band 1: %+v", b)
	}
}

func TestCrossValidatePairsByLabelAcrossBackends(t *testing.T) {
	reports := []*Report{
		fakeReport("twin", false, 1, 0.5, nil),
		fakeReport("twin", false, 2, 0.5, nil),
		fakeReport("twin", true, 1, 0.5, nil),
		fakeReport("solo-sim", false, 1, 0.5, nil),
		fakeReport("solo-live", true, 1, 0.5, nil),
	}
	aggs := AggregateReports(reports)
	if len(aggs) != 4 {
		t.Fatalf("want 4 groups, got %d: %+v", len(aggs), aggs)
	}
	pairs := crossValidate(aggs)
	if len(pairs) != 1 {
		t.Fatalf("want 1 pair, got %d: %+v", len(pairs), pairs)
	}
	p := pairs[0]
	if p.Label != "twin" || p.Sim.Live || !p.Live.Live || p.Sim.Runs != 2 || p.Live.Runs != 1 {
		t.Fatalf("pair: %+v", p)
	}
}

func TestSuiteTextRendersExtensions(t *testing.T) {
	reports := []*Report{
		fakeReport("twin", false, 1, 0.5, availSeries(1, 2)),
		fakeReport("twin", true, 1, 0.7, availSeries(1, 3)),
	}
	aggs := AggregateReports(reports)
	sr := &SuiteReport{Name: "t", Reports: reports, Aggregates: aggs, CrossValidation: crossValidate(aggs)}
	var buf bytes.Buffer
	sr.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"twin (live)", "top-5-set shares", "avail mean-copies", "seed-band",
		"sim vs live cross-validation", "top-up-LS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("suite text missing %q:\n%s", want, out)
		}
	}
}

func TestMarshalAggregateLine(t *testing.T) {
	a := Aggregate{
		Label: "x", TorrentID: 10, Live: true, Runs: 2,
		// NaN must be sanitized exactly like Report.JSONLine does.
		EntropyAB:       MetricStat{N: 1, Mean: math.NaN()},
		AvailMeanCopies: []AvailBand{{T: 1, Min: 1, Mean: math.Inf(1), Max: 2}},
	}
	line, err := MarshalAggregateLine("live-casestudy", a)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("unmarshal: %v (%s)", err, line)
	}
	if m["Kind"] != "aggregate" || m["Suite"] != "live-casestudy" || m["Label"] != "x" || m["Live"] != true {
		t.Fatalf("line fields: %s", line)
	}
}
