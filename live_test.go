package rarestfirst

// Live-swarm lab acceptance tests: registered live-* scenarios must run
// real TCP swarms over loopback to completion and emit *Reports through
// the exact same AggregateReports/JSONL path as simulated runs, and
// RunSuite on a live suite must produce a sim-vs-live cross-validation
// section. These are the slowest tests of the package (real sockets, real
// choke rounds); the CI live-smoke job runs them under -race.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestLiveSuitesEndToEnd drives two registered live-* families through
// Runner.RunSuite: each pairs a sim twin with a real-TCP loopback swarm.
func TestLiveSuitesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback swarms take tens of seconds")
	}
	liveCompleted := 0
	for _, name := range []string{"live-casestudy", "live-flashcrowd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			suite, err := NewSuite(name, SuiteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			nLive := 0
			for _, sc := range suite.Scenarios {
				if sc.Live {
					nLive++
				}
			}
			if nLive == 0 || nLive == len(suite.Scenarios) {
				t.Fatalf("suite %s must mix backends: %d live of %d", name, nLive, len(suite.Scenarios))
			}

			sr, err := Runner{}.RunSuite(suite)
			if err != nil {
				t.Fatal(err)
			}

			for i, rep := range sr.Reports {
				if rep == nil {
					t.Fatalf("scenario %d produced no report", i)
				}
				if !suite.Scenarios[i].Live {
					continue
				}
				// The live report must be a full *Report: figure series
				// populated and serializable through the shared JSONL sink.
				if !rep.Scenario.Live {
					t.Fatalf("live run %d lost its backend flag", i)
				}
				if !rep.LocalCompleted {
					t.Errorf("live swarm %d did not complete its download", i)
				} else {
					liveCompleted++
				}
				if len(rep.Availability) == 0 || rep.BlockCDF.N == 0 {
					t.Errorf("live report %d missing figure series: %d avail samples, %d blocks",
						i, len(rep.Availability), rep.BlockCDF.N)
				}
				line, err := rep.JSONLine()
				if err != nil {
					t.Fatalf("live report %d JSONL: %v", i, err)
				}
				var decoded map[string]any
				if err := json.Unmarshal(line, &decoded); err != nil {
					t.Fatalf("live report %d JSONL roundtrip: %v", i, err)
				}
			}

			// Aggregation groups sim and live under the shared label, and
			// the suite report pairs them for cross-validation.
			if len(sr.Aggregates) != 2 {
				t.Fatalf("want 2 aggregation groups (sim + live), got %d: %+v",
					len(sr.Aggregates), sr.Aggregates)
			}
			if sr.Aggregates[0].Live == sr.Aggregates[1].Live {
				t.Fatalf("aggregates did not split by backend: %+v", sr.Aggregates)
			}
			if len(sr.CrossValidation) != 1 {
				t.Fatalf("want 1 cross-validation pair, got %d", len(sr.CrossValidation))
			}
			pair := sr.CrossValidation[0]
			if pair.Sim.Live || !pair.Live.Live || pair.Sim.Label != pair.Live.Label {
				t.Fatalf("cross-validation pair malformed: %+v", pair)
			}

			var buf bytes.Buffer
			sr.WriteText(&buf)
			out := buf.String()
			if !strings.Contains(out, "sim vs live cross-validation") {
				t.Fatalf("suite text missing cross-validation section:\n%s", out)
			}
			if !strings.Contains(out, "(live)") {
				t.Fatalf("suite text does not mark the live aggregate:\n%s", out)
			}
		})
	}
	if liveCompleted < 2 {
		t.Fatalf("only %d live swarms completed; the acceptance bar is 2", liveCompleted)
	}
}

// TestLiveScenarioRejectsUnsupportedKnobs: a live scenario with a sim-only
// ablation must fail loudly, not silently run the default algorithm.
func TestLiveScenarioRejectsUnsupportedKnobs(t *testing.T) {
	_, err := Run(Scenario{TorrentID: 10, Live: true, Picker: PickerRandom})
	if err == nil {
		t.Fatal("live run accepted a sim-only picker")
	}
}
