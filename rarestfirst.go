// Package rarestfirst reproduces Legout, Urvoy-Keller & Michiardi, "Rarest
// First and Choke Algorithms Are Enough" (ACM SIGCOMM/USENIX IMC 2006).
//
// The package is the public face of the repository: it configures and runs
// instrumented swarm experiments over the paper's 26-torrent catalog
// (Table I) and derives the exact statistics the paper plots — entropy
// characterization (Fig 1), piece replication dynamics (Figs 2–6),
// piece/block interarrival CDFs (Figs 7–8), choke fairness (Figs 9 and 11)
// and unchoke/interest correlation (Fig 10) — plus the ablations DESIGN.md
// catalogs (A1–A5).
//
// The algorithms under evaluation live in internal/core and are shared,
// unchanged, between the discrete-event simulator (internal/swarm) and a
// real TCP BitTorrent client (internal/client).
//
// Quick start:
//
//	rep, err := rarestfirst.Run(rarestfirst.Scenario{TorrentID: 7, Scale: rarestfirst.BenchScale()})
//	if err != nil { ... }
//	rep.WriteText(os.Stdout)
package rarestfirst

import (
	"fmt"

	"rarestfirst/internal/swarm"
	"rarestfirst/internal/torrents"
)

// Scale bounds an experiment's size. Populations and content above the
// caps are scaled down preserving the seed:leecher ratio (see DESIGN.md).
type Scale struct {
	MaxPeers     int     // cap on seeds+leechers
	MaxContentMB int     // cap on content size
	MaxPieces    int     // cap on piece count (piece size grows instead)
	Duration     float64 // local peer observation window, seconds
	Warmup       float64 // pre-join simulation, seconds
	Seed         int64   // RNG seed; runs are reproducible bit-for-bit
}

// DefaultScale is the scale cmd/experiments uses: every Table I torrent
// runs in seconds to a few tens of seconds of wall-clock time.
func DefaultScale() Scale { return fromInternalScale(torrents.DefaultScale()) }

// BenchScale is the reduced scale bench_test.go uses.
func BenchScale() Scale { return fromInternalScale(torrents.BenchScale()) }

func fromInternalScale(s torrents.Scale) Scale {
	return Scale{
		MaxPeers:     s.MaxPeers,
		MaxContentMB: s.MaxContentMB,
		MaxPieces:    s.MaxPieces,
		Duration:     s.Duration,
		Warmup:       s.Warmup,
		Seed:         s.Seed,
	}
}

func (s Scale) toInternal() torrents.Scale {
	return torrents.Scale{
		MaxPeers:     s.MaxPeers,
		MaxContentMB: s.MaxContentMB,
		MaxPieces:    s.MaxPieces,
		Duration:     s.Duration,
		Warmup:       s.Warmup,
		Seed:         s.Seed,
	}
}

// Piece selection strategies accepted by Scenario.Picker.
const (
	PickerRarestFirst  = "rarest-first"  // the paper's algorithm (default)
	PickerRandom       = "random"        // baseline the paper cites as inferior
	PickerSequential   = "sequential"    // in-order worst case
	PickerGlobalRarest = "global-rarest" // oracle with global knowledge
)

// Seed-state choke algorithms accepted by Scenario.SeedChoke.
const (
	SeedChokeNew = "new" // mainline >= 4.0.0, the paper's subject (default)
	SeedChokeOld = "old" // pre-4.0.0 upload-rate algorithm (baseline)
)

// Leecher-state choke algorithms accepted by Scenario.LeecherChoke.
const (
	LeecherChokeStandard  = "standard"    // 3 RU / 10 s + 1 OU / 30 s (default)
	LeecherChokeTitForTat = "tit-for-tat" // bit-level TFT baseline
)

// Scenario describes one experiment.
type Scenario struct {
	// TorrentID selects a Table I torrent (1..26).
	TorrentID int
	// Scale bounds the simulation; zero value means DefaultScale.
	Scale Scale
	// Picker selects the swarm-wide piece selection strategy ("" =
	// rarest-first).
	Picker string
	// SeedChoke selects the seed-state algorithm ("" = new).
	SeedChoke string
	// LeecherChoke selects the leecher-state algorithm ("" = standard).
	LeecherChoke string
	// TFTDeficitBytes is the tit-for-tat deficit threshold (default 2 MiB).
	TFTDeficitBytes int64
	// FreeRiderFraction of leechers never upload.
	FreeRiderFraction float64
	// LocalFreeRider makes the instrumented peer itself a free rider.
	LocalFreeRider bool
	// SmartSeedServe enables the idealized coding / super-seeding serve
	// policy on the initial seed (ablation A4).
	SmartSeedServe bool
	// DisableRandomFirst turns the random-first policy off swarm-wide.
	DisableRandomFirst bool
	// BoostNewcomers enables the §VI extension: exploratory unchoke slots
	// prefer peers that have no pieces yet, attacking the first-blocks
	// problem the paper identifies.
	BoostNewcomers bool
	// InitialSeedLeavesAt injects a failure: the initial seed departs at
	// this simulated time (0 = never). With rare pieces still out, the
	// torrent dies — "a torrent is alive as long as there is at least one
	// copy of each piece".
	InitialSeedLeavesAt float64
	// SeedOverride replaces the RNG seed when nonzero (for repeat runs).
	SeedOverride int64
}

// Torrent is one row of the paper's Table I.
type Torrent struct {
	ID       int
	Seeds    int
	Leechers int
	Ratio    float64 // seeds/leechers
	MaxPS    int
	SizeMB   int
	State    string // "steady", "transient" or "no-seed"
}

// TableI returns the paper's torrent catalog.
func TableI() []Torrent {
	out := make([]Torrent, 0, len(torrents.TableI))
	for _, s := range torrents.TableI {
		out = append(out, Torrent{
			ID:       s.ID,
			Seeds:    s.Seeds,
			Leechers: s.Leechers,
			Ratio:    s.Ratio(),
			MaxPS:    s.MaxPS,
			SizeMB:   s.SizeMB,
			State:    s.State.String(),
		})
	}
	return out
}

// buildConfig maps a Scenario onto the internal swarm configuration.
func buildConfig(sc Scenario) (swarm.Config, torrents.Spec, error) {
	spec, ok := torrents.ByID(sc.TorrentID)
	if !ok {
		return swarm.Config{}, torrents.Spec{}, fmt.Errorf("rarestfirst: no torrent %d in Table I", sc.TorrentID)
	}
	scale := sc.Scale
	if scale == (Scale{}) {
		scale = DefaultScale()
	}
	cfg := spec.Config(scale.toInternal())
	if sc.SeedOverride != 0 {
		cfg.Seed = sc.SeedOverride
	}
	switch sc.Picker {
	case "", PickerRarestFirst:
		cfg.Picker = swarm.PickRarestFirst
	case PickerRandom:
		cfg.Picker = swarm.PickRandom
	case PickerSequential:
		cfg.Picker = swarm.PickSequential
	case PickerGlobalRarest:
		cfg.Picker = swarm.PickGlobalRarest
	default:
		return swarm.Config{}, spec, fmt.Errorf("rarestfirst: unknown picker %q", sc.Picker)
	}
	switch sc.SeedChoke {
	case "", SeedChokeNew:
		cfg.SeedChoker = swarm.SeedChokeNew
	case SeedChokeOld:
		cfg.SeedChoker = swarm.SeedChokeOld
	default:
		return swarm.Config{}, spec, fmt.Errorf("rarestfirst: unknown seed choker %q", sc.SeedChoke)
	}
	switch sc.LeecherChoke {
	case "", LeecherChokeStandard:
		cfg.LeecherChoker = swarm.LeecherChokeStandard
	case LeecherChokeTitForTat:
		cfg.LeecherChoker = swarm.LeecherChokeTitForTat
		cfg.TFTDeficitLimit = sc.TFTDeficitBytes
		if cfg.TFTDeficitLimit == 0 {
			cfg.TFTDeficitLimit = 2 << 20
		}
	default:
		return swarm.Config{}, spec, fmt.Errorf("rarestfirst: unknown leecher choker %q", sc.LeecherChoke)
	}
	cfg.FreeRiderFraction = sc.FreeRiderFraction
	cfg.LocalFreeRider = sc.LocalFreeRider
	cfg.SmartSeedServe = sc.SmartSeedServe
	cfg.DisableRandomFirst = sc.DisableRandomFirst
	cfg.BoostNewcomers = sc.BoostNewcomers
	cfg.InitialSeedLeaveAt = sc.InitialSeedLeavesAt
	return cfg, spec, nil
}

// Run executes the scenario and derives its report.
func Run(sc Scenario) (*Report, error) {
	cfg, spec, err := buildConfig(sc)
	if err != nil {
		return nil, err
	}
	sw := swarm.New(cfg)
	res := sw.Run()
	return buildReport(sc, spec, cfg, res), nil
}
