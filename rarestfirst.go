// Package rarestfirst reproduces Legout, Urvoy-Keller & Michiardi, "Rarest
// First and Choke Algorithms Are Enough" (ACM SIGCOMM/USENIX IMC 2006).
//
// The package is the public face of the repository: it configures and runs
// instrumented swarm experiments over the paper's 26-torrent catalog
// (Table I) and derives the exact statistics the paper plots — entropy
// characterization (Fig 1), piece replication dynamics (Figs 2–6),
// piece/block interarrival CDFs (Figs 7–8), choke fairness (Figs 9 and 11)
// and unchoke/interest correlation (Fig 10) — plus the ablations DESIGN.md
// catalogs (A1–A5).
//
// The algorithms under evaluation live in internal/core and are shared,
// unchanged, between the discrete-event simulator (internal/swarm) and a
// real TCP BitTorrent client (internal/client).
//
// Quick start:
//
//	rep, err := rarestfirst.Run(rarestfirst.Scenario{TorrentID: 7, Scale: rarestfirst.BenchScale()})
//	if err != nil { ... }
//	rep.WriteText(os.Stdout)
package rarestfirst

import (
	"rarestfirst/internal/scenario"
	"rarestfirst/internal/swarm"
	"rarestfirst/internal/torrents"
)

// Scale bounds an experiment's size. Populations and content above the
// caps are scaled down preserving the seed:leecher ratio (see DESIGN.md).
type Scale struct {
	MaxPeers     int     // cap on seeds+leechers
	MaxContentMB int     // cap on content size
	MaxPieces    int     // cap on piece count (piece size grows instead)
	Duration     float64 // local peer observation window, seconds
	Warmup       float64 // pre-join simulation, seconds
	Seed         int64   // RNG seed; runs are reproducible bit-for-bit
}

// DefaultScale is the scale cmd/experiments uses: every Table I torrent
// runs in seconds to a few tens of seconds of wall-clock time.
func DefaultScale() Scale { return fromInternalScale(torrents.DefaultScale()) }

// BenchScale is the reduced scale bench_test.go uses.
func BenchScale() Scale { return fromInternalScale(torrents.BenchScale()) }

func fromInternalScale(s torrents.Scale) Scale {
	return Scale{
		MaxPeers:     s.MaxPeers,
		MaxContentMB: s.MaxContentMB,
		MaxPieces:    s.MaxPieces,
		Duration:     s.Duration,
		Warmup:       s.Warmup,
		Seed:         s.Seed,
	}
}

func (s Scale) toInternal() torrents.Scale {
	return torrents.Scale{
		MaxPeers:     s.MaxPeers,
		MaxContentMB: s.MaxContentMB,
		MaxPieces:    s.MaxPieces,
		Duration:     s.Duration,
		Warmup:       s.Warmup,
		Seed:         s.Seed,
	}
}

// Piece selection strategies accepted by Scenario.Picker.
const (
	PickerRarestFirst  = scenario.PickerRarestFirst  // the paper's algorithm (default)
	PickerRandom       = scenario.PickerRandom       // baseline the paper cites as inferior
	PickerSequential   = scenario.PickerSequential   // in-order worst case
	PickerGlobalRarest = scenario.PickerGlobalRarest // oracle with global knowledge
)

// Seed-state choke algorithms accepted by Scenario.SeedChoke.
const (
	SeedChokeNew = scenario.SeedChokeNew // mainline >= 4.0.0, the paper's subject (default)
	SeedChokeOld = scenario.SeedChokeOld // pre-4.0.0 upload-rate algorithm (baseline)
)

// Leecher-state choke algorithms accepted by Scenario.LeecherChoke.
const (
	LeecherChokeStandard  = scenario.LeecherChokeStandard  // 3 RU / 10 s + 1 OU / 30 s (default)
	LeecherChokeTitForTat = scenario.LeecherChokeTitForTat // bit-level TFT baseline
)

// Scenario describes one experiment.
type Scenario struct {
	// Label names the scenario inside a Suite (e.g. "picker=random"); it
	// does not affect the run. Suite aggregation groups repeats of the
	// same configuration under one label.
	Label string
	// TorrentID selects a Table I torrent (1..26).
	TorrentID int
	// Live runs the scenario as a real-TCP loopback swarm (internal/live)
	// instead of a discrete-event simulation: one HTTP tracker plus an
	// instrumented client swarm whose traces flow through the same report
	// pipeline. Scale is then read at wall-clock granularity (Duration =
	// swarm deadline in real seconds; MaxPeers/MaxContentMB/MaxPieces
	// bound the loopback swarm) and only the paper's default algorithms
	// are supported. The omitempty tag keeps sim-run reports serializing
	// exactly as before this field existed.
	Live bool `json:",omitempty"`
	// Scale bounds the simulation; zero value means DefaultScale.
	Scale Scale
	// Picker selects the swarm-wide piece selection strategy ("" =
	// rarest-first).
	Picker string
	// SeedChoke selects the seed-state algorithm ("" = new).
	SeedChoke string
	// LeecherChoke selects the leecher-state algorithm ("" = standard).
	LeecherChoke string
	// TFTDeficitBytes is the tit-for-tat deficit threshold (default 2 MiB).
	TFTDeficitBytes int64
	// FreeRiderFraction of leechers never upload.
	FreeRiderFraction float64
	// LocalFreeRider makes the instrumented peer itself a free rider.
	LocalFreeRider bool
	// SmartSeedServe enables the idealized coding / super-seeding serve
	// policy on the initial seed (ablation A4).
	SmartSeedServe bool
	// DisableRandomFirst turns the random-first policy off swarm-wide.
	DisableRandomFirst bool
	// BoostNewcomers enables the §VI extension: exploratory unchoke slots
	// prefer peers that have no pieces yet, attacking the first-blocks
	// problem the paper identifies.
	BoostNewcomers bool
	// InitialSeedLeavesAt injects a failure: the initial seed departs at
	// this simulated time (0 = never). With rare pieces still out, the
	// torrent dies — "a torrent is alive as long as there is at least one
	// copy of each piece".
	InitialSeedLeavesAt float64
	// SeedOverride, when nonzero, replaces the catalog RNG seed for
	// repeat runs. It is mixed with the torrent id (not used verbatim)
	// so that torrents whose scaled-down configs coincide still run
	// decorrelated; the same (SeedOverride, TorrentID) pair always
	// reproduces the same run.
	SeedOverride int64

	// ChokeLanes aligns every simulated peer's choke rounds to the global
	// 10-second grid and executes each instant's rounds as one parallel
	// lane batch (decisions computed concurrently, transitions applied
	// serially in peer-id order) — the intra-swarm sharding that makes
	// 10k-peer single runs tractable. Runs stay bit-reproducible and are
	// identical for any worker count, but the round schedule differs from
	// the default staggered rounds, so this is off unless a scenario opts
	// in (the huge-swarm perf cases do). The omitempty tag keeps existing
	// report serializations unchanged.
	ChokeLanes bool `json:",omitempty"`

	// HeapShards shards the simulation engine's event heap into this many
	// keyed subheaps (rounded up to a power of two) plus a global shard,
	// merged at pop time by a loser tree over the shard heads. Sharding is
	// trajectory-preserving — sequence numbers stay globally ordered, so
	// the merged pop order is exactly the single-heap order and any
	// scenario may enable it without changing its results; what it buys is
	// per-shard timer pools and a shard-parallel retime apply phase on
	// multi-core hosts. 0 (the default, and the omitempty zero) keeps the
	// single monolithic heap, which doubles as the determinism oracle the
	// shard tests compare against.
	HeapShards int `json:",omitempty"`

	// BatchHaves defers the per-neighbour interest/request reactions of
	// each piece completion into a per-instant pending-HAVE set flushed
	// once per event, and switches the availability indices to lazily
	// rebuilt rarity buckets — the flat-count mode that removes the
	// per-HAVE bucket shuffle from the hot path at flash-crowd scale.
	// Runs stay bit-reproducible but differ from the default eager mode
	// (lazy buckets rebuild in ascending piece order, which changes which
	// piece a rarest-first draw selects), so like ChokeLanes this is off
	// everywhere the goldens cover and on for the huge/mega perf cases.
	BatchHaves bool `json:",omitempty"`

	// Faults names a netem fault plan applied to the run ("wan", "flaky",
	// "blackout", "chaos"; see the README Robustness section). On the
	// live backend it drives seeded per-client fault injectors plus the
	// tracker blackout window; on the simulator it maps to the matching
	// swarm.Chaos knobs, so a chaos-* suite cross-validates the two. The
	// fault schedule derives from the run seed; "" (the default, and
	// every golden scenario) injects nothing, and the omitempty tag keeps
	// fault-free reports serializing exactly as before.
	Faults string `json:",omitempty"`

	// Adversary names a Byzantine peer model mixed into the run
	// ("poison25", "liar25", "flood25"; see the README Adversarial peers
	// section). On the live backend adversarial clients are provisioned
	// alongside the honest swarm; on the simulator the model maps to the
	// matching swarm.Adversary knobs, so an adv-* suite cross-validates
	// the two. "" (the default, and every golden scenario) adds no
	// adversaries, and the omitempty tag keeps adversary-free reports
	// serializing exactly as before.
	Adversary string `json:",omitempty"`
	// AdversaryNoBan disables the poisoner ban response (measurement
	// mode): hash failures and wasted bytes are counted but suspects are
	// never banned.
	AdversaryNoBan bool `json:",omitempty"`

	// Crashes names a crash-schedule plan ("kill-restart",
	// "kill-restart-amnesia", "kill-corrupt", "flashcrowd-kill"; see the
	// README Crash recovery section). On the live backend a
	// seed-deterministic schedule SIGKILLs a fraction of the leechers
	// mid-transfer and restarts them from durable resume state; on the
	// simulator the plan maps to the matching swarm.Crashes knobs, so a
	// crash-* suite cross-validates the two. "" (the default, and every
	// golden scenario) crashes nobody, and the omitempty tag keeps
	// crash-free reports serializing exactly as before.
	Crashes string `json:",omitempty"`
	// DebugChecks enables the swarm invariant checker on simulated runs:
	// pure-read audits (availability counts vs advertised bitfields, no
	// banned peer still connected, requester bookkeeping consistency)
	// that panic on violation and never perturb the trajectory — golden
	// digests are identical with the checker on or off.
	DebugChecks bool `json:",omitempty"`

	// Workload variants beyond the paper's ablation switches: multipliers
	// applied after the Table I scaling rules. 0 means "unchanged", so the
	// zero Scenario still reproduces the catalog exactly.

	// ChurnScale multiplies the leecher arrival rate.
	ChurnScale float64
	// SeedUpScale multiplies the initial seed's upload capacity.
	SeedUpScale float64
	// AbortScale multiplies the pre-completion departure hazard.
	AbortScale float64
}

// toSpec converts the public scenario onto the internal description the
// registry and config builder share.
func (sc Scenario) toSpec() scenario.Spec {
	return scenario.Spec{
		Label:               sc.Label,
		TorrentID:           sc.TorrentID,
		Live:                sc.Live,
		Scale:               sc.Scale.toInternal(),
		Picker:              sc.Picker,
		SeedChoke:           sc.SeedChoke,
		LeecherChoke:        sc.LeecherChoke,
		TFTDeficitBytes:     sc.TFTDeficitBytes,
		FreeRiderFraction:   sc.FreeRiderFraction,
		LocalFreeRider:      sc.LocalFreeRider,
		SmartSeedServe:      sc.SmartSeedServe,
		DisableRandomFirst:  sc.DisableRandomFirst,
		BoostNewcomers:      sc.BoostNewcomers,
		InitialSeedLeavesAt: sc.InitialSeedLeavesAt,
		SeedOverride:        sc.SeedOverride,
		ChokeLanes:          sc.ChokeLanes,
		HeapShards:          sc.HeapShards,
		BatchHaves:          sc.BatchHaves,
		Faults:              sc.Faults,
		Adversary:           sc.Adversary,
		AdversaryNoBan:      sc.AdversaryNoBan,
		Crashes:             sc.Crashes,
		DebugChecks:         sc.DebugChecks,
		ChurnScale:          sc.ChurnScale,
		SeedUpScale:         sc.SeedUpScale,
		AbortScale:          sc.AbortScale,
	}
}

// fromSpec is toSpec's inverse, used when expanding registry suites.
func fromSpec(sp scenario.Spec) Scenario {
	return Scenario{
		Label:               sp.Label,
		TorrentID:           sp.TorrentID,
		Live:                sp.Live,
		Scale:               fromInternalScale(sp.Scale),
		Picker:              sp.Picker,
		SeedChoke:           sp.SeedChoke,
		LeecherChoke:        sp.LeecherChoke,
		TFTDeficitBytes:     sp.TFTDeficitBytes,
		FreeRiderFraction:   sp.FreeRiderFraction,
		LocalFreeRider:      sp.LocalFreeRider,
		SmartSeedServe:      sp.SmartSeedServe,
		DisableRandomFirst:  sp.DisableRandomFirst,
		BoostNewcomers:      sp.BoostNewcomers,
		InitialSeedLeavesAt: sp.InitialSeedLeavesAt,
		SeedOverride:        sp.SeedOverride,
		ChokeLanes:          sp.ChokeLanes,
		HeapShards:          sp.HeapShards,
		BatchHaves:          sp.BatchHaves,
		Faults:              sp.Faults,
		Adversary:           sp.Adversary,
		AdversaryNoBan:      sp.AdversaryNoBan,
		Crashes:             sp.Crashes,
		DebugChecks:         sp.DebugChecks,
		ChurnScale:          sp.ChurnScale,
		SeedUpScale:         sp.SeedUpScale,
		AbortScale:          sp.AbortScale,
	}
}

// Torrent is one row of the paper's Table I.
type Torrent struct {
	ID       int
	Seeds    int
	Leechers int
	Ratio    float64 // seeds/leechers
	MaxPS    int
	SizeMB   int
	State    string // "steady", "transient" or "no-seed"
}

// TableI returns the paper's torrent catalog.
func TableI() []Torrent {
	out := make([]Torrent, 0, len(torrents.TableI))
	for _, s := range torrents.TableI {
		out = append(out, Torrent{
			ID:       s.ID,
			Seeds:    s.Seeds,
			Leechers: s.Leechers,
			Ratio:    s.Ratio(),
			MaxPS:    s.MaxPS,
			SizeMB:   s.SizeMB,
			State:    s.State.String(),
		})
	}
	return out
}

// buildConfig maps a Scenario onto the internal swarm configuration via
// the shared scenario builder.
func buildConfig(sc Scenario) (swarm.Config, torrents.Spec, error) {
	return sc.toSpec().Config()
}

// Run executes the scenario and derives its report. Live scenarios run on
// the real-TCP loopback backend; everything else is a discrete-event
// simulation. Both produce the same *Report shape through the same
// derivation, so downstream aggregation cannot tell them apart except by
// the Scenario.Live flag.
func Run(sc Scenario) (*Report, error) {
	if sc.Live {
		return runLive(sc)
	}
	cfg, spec, err := buildConfig(sc)
	if err != nil {
		return nil, err
	}
	sw := swarm.New(cfg)
	res := sw.Run()
	return buildReport(sc, spec, cfg, res), nil
}
