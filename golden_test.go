package rarestfirst

// Golden-seed determinism tests: a fixed-seed run's full Report is a pure
// function of the scenario, so its serialized digest must never change
// unless the reproducibility contract is deliberately bumped (see the
// README "Performance" section for what the contract covers). Engine and
// network rewrites that involve no RNG must keep these digests
// byte-for-byte; a documented RNG-stream bump (e.g. the PR 2 picker
// rewrite) regenerates them once via
//
//	go test -run TestGoldenSeedDigests -update-goldens

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// reportDigest hashes the report's canonical JSON serialization (struct
// field order is fixed and map keys sort, so the byte stream is
// deterministic). Events is zeroed first: scheduler occupancy counters
// are performance telemetry, not simulation output — the contract says
// allocation/pooling internals are never contract-relevant, so a pure
// perf change (e.g. a different compaction threshold) must not disturb
// the digests.
func reportDigest(t *testing.T, rep *Report) string {
	t.Helper()
	clean := *rep
	clean.Events = EventHeapStats{}
	raw, err := clean.JSONLine()
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

var updateGoldens = flag.Bool("update-goldens", false,
	"rewrite testdata/golden_digests.json from the current implementation")

// goldenScenarios are the fixed-seed scenarios the digests cover: a
// steady torrent, a transient torrent with the smart-seed policy, a
// free-rider-heavy torrent on the old seed choker, and a crash-recovery
// run — together they exercise the engine, the fluid network, every
// picker entry point, both seed chokers, and the kill/rejoin path.
func goldenScenarios() []Scenario {
	return []Scenario{
		{Label: "steady-t7", TorrentID: 7, Scale: BenchScale(), SeedOverride: 42},
		{Label: "transient-t8-smart", TorrentID: 8, Scale: BenchScale(), SmartSeedServe: true, SeedOverride: 7},
		{Label: "freeride-t14-oldseed", TorrentID: 14, Scale: BenchScale(), SeedChoke: SeedChokeOld, FreeRiderFraction: 0.2, SeedOverride: 99},
		{Label: "crash-t10-killrestart", TorrentID: 10, Scale: BenchScale(), Crashes: "kill-restart", SeedOverride: 11},
	}
}

const goldenPath = "testdata/golden_digests.json"

func TestGoldenSeedDigests(t *testing.T) {
	got := map[string]string{}
	for _, sc := range goldenScenarios() {
		rep, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Label, err)
		}
		got[sc.Label] = reportDigest(t, rep)
	}

	if *updateGoldens {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (run with -update-goldens to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}
	for label, digest := range got {
		if want[label] == "" {
			t.Errorf("%s: no recorded golden digest (run with -update-goldens)", label)
			continue
		}
		if digest != want[label] {
			t.Errorf("%s: report digest changed\n  got  %s\n  want %s\n"+
				"fixed-seed runs must be byte-stable; if this is a documented "+
				"reproducibility-contract bump, regenerate with -update-goldens",
				label, digest, want[label])
		}
	}
}

// TestGoldenRunTwiceIdentical guards the digest mechanism itself: two runs
// of the same scenario in one process must serialize identically.
func TestGoldenRunTwiceIdentical(t *testing.T) {
	sc := goldenScenarios()[0]
	rep1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := reportDigest(t, rep1), reportDigest(t, rep2); d1 != d2 {
		t.Fatalf("same scenario, different digests: %s vs %s", d1, d2)
	}
}
