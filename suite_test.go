package rarestfirst

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestSuitesListsRegistry(t *testing.T) {
	infos := Suites()
	if len(infos) == 0 {
		t.Fatal("no registered suites")
	}
	names := SuiteNames()
	if len(names) != len(infos) {
		t.Fatalf("Suites/SuiteNames disagree: %d vs %d", len(infos), len(names))
	}
	for i, in := range infos {
		if in.Name != names[i] || in.Description == "" {
			t.Fatalf("suite %d malformed: %+v", i, in)
		}
	}
}

func TestNewSuiteUnknownName(t *testing.T) {
	if _, err := NewSuite("no-such-suite", SuiteOptions{}); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func TestNewSuiteSeedFanOut(t *testing.T) {
	s, err := NewSuite("freeriders", SuiteOptions{Scale: quickScale(), Seeds: []int64{7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scenarios) != 4 {
		t.Fatalf("2 configs x 2 seeds: got %d", len(s.Scenarios))
	}
	for _, sc := range s.Scenarios {
		if sc.Scale != quickScale() {
			t.Fatalf("scale not applied: %+v", sc.Scale)
		}
		if sc.SeedOverride != 7 && sc.SeedOverride != 8 {
			t.Fatalf("seed fan-out wrong: %+v", sc)
		}
	}
}

// TestRunnerMatchesSerial: the same Scenario (same SeedOverride) must
// produce byte-identical Reports when run serially via Run and through
// the parallel Runner.
func TestRunnerMatchesSerial(t *testing.T) {
	scs := []Scenario{
		{Label: "a", TorrentID: 3, Scale: quickScale(), SeedOverride: 11},
		{Label: "b", TorrentID: 3, Scale: quickScale(), SeedOverride: 12},
		{Label: "c", TorrentID: 8, Scale: quickScale(), SeedOverride: 13},
		{Label: "d", TorrentID: 3, Scale: quickScale(), Picker: PickerRandom, SeedOverride: 14},
	}
	serial := make([]*Report, len(scs))
	for i, sc := range scs {
		rep, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = rep
	}
	parallel, err := Runner{Workers: 4}.Run(scs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		// %#v renders every float at full precision (and NaN equal to
		// itself, which reflect.DeepEqual would reject) with maps in
		// sorted key order, so equal strings mean bit-identical reports.
		sv, pv := fmt.Sprintf("%#v", *serial[i]), fmt.Sprintf("%#v", *parallel[i])
		if sv != pv {
			t.Fatalf("scenario %d: serial and parallel reports differ:\n%s\n%s", i, sv, pv)
		}
		var sb, pb bytes.Buffer
		serial[i].WriteText(&sb)
		parallel[i].WriteText(&pb)
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Fatalf("scenario %d: serial and parallel report text differ", i)
		}
	}
}

// TestSuiteAggregatesOrderIndependent: the aggregate table must not
// depend on completion order — one worker vs many must render the exact
// same bytes.
func TestSuiteAggregatesOrderIndependent(t *testing.T) {
	s, err := NewSuite("freeriders", SuiteOptions{Scale: quickScale(), Seeds: []int64{21, 22, 23}})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Runner{Workers: 1}.RunSuite(s)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Runner{Workers: 8}.RunSuite(s)
	if err != nil {
		t.Fatal(err)
	}
	var ob, mb bytes.Buffer
	one.WriteText(&ob)
	many.WriteText(&mb)
	if !bytes.Equal(ob.Bytes(), mb.Bytes()) {
		t.Fatalf("aggregates depend on worker count:\n--- 1 worker\n%s\n--- 8 workers\n%s", ob.String(), mb.String())
	}
	if len(one.Aggregates) != 2 {
		t.Fatalf("want 2 aggregation groups (one per seed-choke), got %d", len(one.Aggregates))
	}
	for _, a := range one.Aggregates {
		if a.Runs != 3 {
			t.Fatalf("group %s has %d runs, want 3 seeds", a.Label, a.Runs)
		}
	}
}

func TestRunnerPropagatesErrors(t *testing.T) {
	scs := []Scenario{
		{TorrentID: 3, Scale: quickScale()},
		{TorrentID: 99}, // invalid
	}
	reports, err := Runner{Workers: 2}.Run(scs)
	if err == nil {
		t.Fatal("invalid scenario not reported")
	}
	if reports[0] == nil || reports[1] != nil {
		t.Fatalf("partial results wrong: %v", reports)
	}
}

func TestAggregateReportsStats(t *testing.T) {
	s, err := NewSuite("quickstart", SuiteOptions{Scale: quickScale(), Seeds: []int64{31, 32}})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Runner{}.RunSuite(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Aggregates) != 1 {
		t.Fatalf("aggregates: %+v", sr.Aggregates)
	}
	a := sr.Aggregates[0]
	if a.Runs != 2 || a.TorrentID != 10 {
		t.Fatalf("aggregate header: %+v", a)
	}
	if a.EntropyAB.N != 2 || a.EntropyAB.Min > a.EntropyAB.Mean || a.EntropyAB.Mean > a.EntropyAB.Max {
		t.Fatalf("entropy stat inconsistent: %+v", a.EntropyAB)
	}
	var buf bytes.Buffer
	sr.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "suite quickstart") || !strings.Contains(out, "torrent=10") {
		t.Fatalf("suite text:\n%s", out)
	}
}

func TestMetricStat(t *testing.T) {
	st := newMetricStat(nil)
	if st.N != 0 || fmtStat(st, 2) != "-" {
		t.Fatalf("empty stat: %+v", st)
	}
	st = newMetricStat([]float64{2, 4, 6})
	if st.N != 3 || st.Mean != 4 || st.Min != 2 || st.Max != 6 {
		t.Fatalf("stat: %+v", st)
	}
	if st.Stddev != 2 {
		t.Fatalf("sample stddev of {2,4,6} = %v, want 2", st.Stddev)
	}
}
