package rarestfirst

// The benchmark harness: one testing.B per table/figure of the paper's
// evaluation section and one per DESIGN.md ablation. Each bench runs the
// corresponding experiment at BenchScale and reports the headline metric of
// that artifact via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the whole evaluation in summary form. EXPERIMENTS.md maps
// every metric back to the paper's plotted quantity.

import (
	"fmt"
	"testing"

	"rarestfirst/internal/fluidmodel"
	"rarestfirst/internal/swarm"
	"rarestfirst/internal/torrents"
)

// benchRun executes one scenario per benchmark iteration and returns the
// last report.
func benchRun(b *testing.B, sc Scenario) *Report {
	b.Helper()
	if sc.Scale == (Scale{}) {
		sc.Scale = BenchScale()
	}
	var rep *Report
	var err error
	for i := 0; i < b.N; i++ {
		// Vary the seed across iterations so -count/-benchtime sample
		// different swarms while staying reproducible.
		sc.SeedOverride = int64(1000 + i)
		rep, err = Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkLargeSwarm is the hot-path stress benchmark: one steady torrent
// at LargeSwarmScale (hundreds of peers, 256 pieces) per iteration. It is
// the headline row of the BENCH_*.json perf trajectory (cmd/benchtraj);
// run with -benchmem to see the allocation profile the PR 2 rewrite
// targets.
func BenchmarkLargeSwarm(b *testing.B) {
	b.ReportAllocs()
	sc := LargeSwarmScenario()
	benchRun(b, sc)
}

// BenchmarkHugeSwarm is the intra-swarm sharding stress benchmark: one
// ~6000-peer torrent-24 swarm per iteration with batched choke-round
// lanes (PR 4). Besides ns/op, it reports the peak lane batch width —
// how many same-instant choke rounds the engine overlapped. Each
// iteration simulates minutes of wall time and peaks above 1 GB of heap,
// so -short skips it (CI's bench smoke does; the benchtraj snapshot step
// still measures the same workload once).
func BenchmarkHugeSwarm(b *testing.B) {
	if testing.Short() {
		b.Skip("huge-swarm iteration is minutes long; benchtraj covers it")
	}
	b.ReportAllocs()
	rep := benchRun(b, HugeSwarmScenario())
	b.ReportMetric(float64(rep.Events.PeakLaneWidth), "peak-lane-width")
	b.ReportMetric(float64(rep.Events.LaneEvents), "lane-rounds")
}

// BenchmarkFlashCrowd20k is the deferred-retiming stress benchmark: over
// 20k peers flood one torrent-24 swarm within minutes (PR 5). It reports
// total peers (arrived leechers + initial seeds), the widest dirty-node
// retime shard one flush fanned out, and the flush count — the direct
// measure of how much redundant per-churn retiming the dirty set elides.
// Like HugeSwarm, -short skips it (each iteration is minutes of wall
// clock; the benchtraj snapshot measures the same workload).
func BenchmarkFlashCrowd20k(b *testing.B) {
	if testing.Short() {
		b.Skip("flash-crowd iteration is minutes long; benchtraj covers it")
	}
	b.ReportAllocs()
	sc := FlashCrowd20kScenario()
	rep := benchRun(b, sc)
	cfg, _, err := buildConfig(sc)
	if err != nil {
		b.Fatal(err)
	}
	peers := rep.Arrivals + cfg.InitialSeeds
	if peers < 20000 {
		b.Fatalf("flash crowd only reached %d peers, want >= 20000", peers)
	}
	b.ReportMetric(float64(peers), "peers")
	b.ReportMetric(float64(rep.Events.PeakShardWidth), "peak-retime-shard")
	b.ReportMetric(float64(rep.Events.DirtyFlushes), "dirty-flushes")
}

// BenchmarkMegaSwarm is the 100k-peer milestone benchmark (PR 6): a
// flash-crowd stream pours over one hundred thousand leechers into one
// torrent-8 swarm with every large-scale lever on — choke lanes, the
// sharded event heap and batched HAVE availability updates. It reports
// total peers, the largest single keyed subheap (the number sharding
// keeps flat while a monolithic heap's peak would scale with the swarm)
// and the loser-tree merge pop count. Each iteration is minutes of wall
// clock and tens of GB of heap, so -short skips it and CI's bench-smoke
// and fresh-record steps never run it (7 GB runners); the BENCH_*.json
// snapshot is recorded on a large-memory host via cmd/benchtraj.
func BenchmarkMegaSwarm(b *testing.B) {
	if testing.Short() {
		b.Skip("mega-swarm iteration needs minutes and ~10 GB; benchtraj on a big host covers it")
	}
	b.ReportAllocs()
	sc := MegaSwarmScenario()
	rep := benchRun(b, sc)
	cfg, _, err := buildConfig(sc)
	if err != nil {
		b.Fatal(err)
	}
	peers := rep.Arrivals + cfg.InitialSeeds
	if peers < 100000 {
		b.Fatalf("mega swarm only reached %d peers, want >= 100000", peers)
	}
	b.ReportMetric(float64(peers), "peers")
	b.ReportMetric(float64(rep.Events.PeakShardHeap), "peak-shard-heap")
	b.ReportMetric(float64(rep.Events.MergePops), "merge-pops")
}

// BenchmarkTableI regenerates Table I: it checks the catalog and reports
// how many of the 26 torrents are runnable end to end at bench scale.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := TableI()
		if len(rows) != 26 {
			b.Fatalf("catalog has %d rows", len(rows))
		}
	}
	b.ReportMetric(26, "torrents")
}

// BenchmarkFig1Entropy reproduces Fig 1 on the two regimes the paper
// contrasts: a steady torrent must show close-to-ideal entropy and a
// transient torrent must not.
func BenchmarkFig1Entropy(b *testing.B) {
	b.Run("steady-t7", func(b *testing.B) {
		rep := benchRun(b, Scenario{TorrentID: 7})
		b.ReportMetric(rep.Entropy.AOverB.P50, "aOverB-p50")
		b.ReportMetric(rep.Entropy.COverD.P50, "cOverD-p50")
	})
	b.Run("transient-t8", func(b *testing.B) {
		rep := benchRun(b, Scenario{TorrentID: 8})
		b.ReportMetric(rep.Entropy.AOverB.P50, "aOverB-p50")
		b.ReportMetric(rep.Entropy.COverD.P50, "cOverD-p50")
	})
}

// BenchmarkFig2TransientReplication reproduces Fig 2 (torrent 8): the
// fraction of samples in which the local peer set was missing at least one
// piece (min copies == 0) — high in transient state.
func BenchmarkFig2TransientReplication(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 8})
	missing, rare := 0, 0
	for _, p := range rep.Availability {
		if p.Min == 0 {
			missing++
		}
		if p.GlobalRare > 0 {
			rare++
		}
	}
	n := float64(len(rep.Availability))
	if n > 0 {
		b.ReportMetric(float64(missing)/n, "frac-samples-min0")
		b.ReportMetric(float64(rare)/n, "frac-samples-rare")
	}
}

// BenchmarkFig3RarestSetTransient reproduces Fig 3 (torrent 8): rare
// pieces drain at the initial seed's constant rate, so the global rare
// count decreases roughly linearly — measured as pieces/hour drained.
func BenchmarkFig3RarestSetTransient(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 8})
	av := rep.Availability
	if len(av) >= 2 {
		d := float64(av[0].GlobalRare - av[len(av)-1].GlobalRare)
		dt := av[len(av)-1].T - av[0].T
		if dt > 0 {
			b.ReportMetric(d/dt*3600, "rare-drained-per-hour")
		}
	}
}

// BenchmarkFig4SteadyReplication reproduces Fig 4 (torrent 7): in steady
// state the least replicated piece always has at least one copy.
func BenchmarkFig4SteadyReplication(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 7})
	ok := 0
	for _, p := range rep.Availability {
		if p.GlobalMin >= 1 {
			ok++
		}
	}
	if n := float64(len(rep.Availability)); n > 0 {
		b.ReportMetric(float64(ok)/n, "frac-samples-min-ge-1")
	}
}

// BenchmarkFig5PeerSetSize reproduces Fig 5 (torrent 7): mean peer set
// size relative to the configured maximum.
func BenchmarkFig5PeerSetSize(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 7})
	sum := 0.0
	for _, p := range rep.Availability {
		sum += float64(p.PeerSet)
	}
	if n := float64(len(rep.Availability)); n > 0 {
		b.ReportMetric(sum/n, "mean-peerset")
	}
}

// BenchmarkFig6RarestSetSawtooth reproduces Fig 6 (torrent 7): the rarest
// set stays small (rarest pieces are duplicated quickly) and jumps with
// peer churn — reported as the mean rarest-set size over the run.
func BenchmarkFig6RarestSetSawtooth(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 7})
	sum, peak := 0.0, 0
	for _, p := range rep.Availability {
		sum += float64(p.RarestSize)
		if p.RarestSize > peak {
			peak = p.RarestSize
		}
	}
	if n := float64(len(rep.Availability)); n > 0 {
		b.ReportMetric(sum/n, "mean-rarest-set")
		b.ReportMetric(float64(peak), "peak-rarest-set")
	}
}

// BenchmarkFig7PieceInterarrival reproduces Fig 7 (torrent 10): the first
// pieces arrive slower than the body (first-pieces problem) while the last
// pieces do not (no last-pieces problem).
func BenchmarkFig7PieceInterarrival(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 10})
	b.ReportMetric(rep.PieceCDF.FirstOverAllP90, "first-vs-all-p90")
	b.ReportMetric(rep.PieceCDF.LastOverAllP90, "last-vs-all-p90")
}

// BenchmarkFig8BlockInterarrival reproduces Fig 8 (torrent 10) at block
// granularity.
func BenchmarkFig8BlockInterarrival(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 10})
	b.ReportMetric(rep.BlockCDF.FirstOverAllP90, "first-vs-all-p90")
	b.ReportMetric(rep.BlockCDF.LastOverAllP90, "last-vs-all-p90")
}

// BenchmarkFig9LeecherFairness reproduces Fig 9 (leecher state): the top
// 5-peer set dominates uploads, and the same peers dominate the local
// peer's downloads (reciprocation).
func BenchmarkFig9LeecherFairness(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 7})
	if len(rep.FairnessUploadLS) > 0 {
		b.ReportMetric(rep.FairnessUploadLS[0], "top5-upload-share")
	}
	if len(rep.FairnessRecipLS) > 0 {
		b.ReportMetric(rep.FairnessRecipLS[0]+rep.FairnessRecipLS[1], "top10-download-share")
	}
}

// BenchmarkFig10UnchokeCorrelation reproduces Fig 10 (torrent 7): seed
// state shows a clear positive correlation between interested time and
// unchoke count; leecher state is driven by rate, not residency.
func BenchmarkFig10UnchokeCorrelation(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 7})
	b.ReportMetric(rep.UnchokeLS.Pearson, "pearson-LS")
	b.ReportMetric(rep.UnchokeSS.Pearson, "pearson-SS")
}

// BenchmarkFig11SeedFairness reproduces Fig 11: the new seed-state
// algorithm gives every 5-peer set roughly the same share (ideal: 1/6 for
// 6 sets).
func BenchmarkFig11SeedFairness(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 7})
	if len(rep.FairnessUploadSS) > 0 {
		b.ReportMetric(rep.FairnessUploadSS[0], "top5-share")
		spread := rep.FairnessUploadSS[0] - rep.FairnessUploadSS[len(rep.FairnessUploadSS)-1]
		b.ReportMetric(spread, "top-minus-bottom")
	}
}

// --- Ablations (DESIGN.md A1-A5) ---

// BenchmarkAblationPickerRandomVsRarest (A1): rarest first vs random piece
// selection, compared on swarm mean download time and entropy.
func BenchmarkAblationPickerRandomVsRarest(b *testing.B) {
	for _, picker := range []string{PickerRarestFirst, PickerRandom, PickerSequential, PickerGlobalRarest} {
		b.Run(picker, func(b *testing.B) {
			rep := benchRun(b, Scenario{TorrentID: 10, Picker: picker})
			b.ReportMetric(rep.Entropy.AOverB.P50, "entropy-p50")
			b.ReportMetric(rep.MeanDownloadContrib, "mean-download-s")
		})
	}
}

// BenchmarkAblationSeedChokeOldVsNew (A2): old vs new seed-state algorithm
// with free riders present; the old algorithm lets its top set monopolise
// the seed.
func BenchmarkAblationSeedChokeOldVsNew(b *testing.B) {
	for _, sk := range []string{SeedChokeNew, SeedChokeOld} {
		b.Run(sk, func(b *testing.B) {
			rep := benchRun(b, Scenario{TorrentID: 14, SeedChoke: sk, FreeRiderFraction: 0.2})
			if len(rep.FairnessUploadSS) > 0 {
				b.ReportMetric(rep.FairnessUploadSS[0], "ss-top5-share")
			}
			b.ReportMetric(rep.MeanDownloadFree, "free-mean-s")
		})
	}
}

// BenchmarkAblationTitForTat (A3): bit-level tit-for-tat strands excess
// capacity. The decisive metric is local-download-s: the instrumented peer
// uploads at only 20 kB/s, and under tit-for-tat it cannot use the swarm's
// excess capacity even though contributors are fine (§IV-B.1).
func BenchmarkAblationTitForTat(b *testing.B) {
	for _, lk := range []string{LeecherChokeStandard, LeecherChokeTitForTat} {
		b.Run(lk, func(b *testing.B) {
			rep := benchRun(b, Scenario{TorrentID: 14, LeecherChoke: lk})
			b.ReportMetric(rep.MeanDownloadContrib, "mean-download-s")
			b.ReportMetric(rep.LocalDownloadSeconds, "local-download-s")
		})
	}
}

// BenchmarkAblationCodingTransient (A4): duplicate pieces served by the
// initial seed during the startup phase, with and without the idealized
// coding/super-seeding policy (§IV-A.4).
func BenchmarkAblationCodingTransient(b *testing.B) {
	for _, smart := range []bool{false, true} {
		name := "client-pick"
		if smart {
			name = "smart-serve"
		}
		b.Run(name, func(b *testing.B) {
			rep := benchRun(b, Scenario{TorrentID: 8, SmartSeedServe: smart})
			frac := 0.0
			if rep.SeedServes > 0 {
				frac = float64(rep.DupSeedServes) / float64(rep.SeedServes)
			}
			b.ReportMetric(frac, "dup-serve-frac")
			b.ReportMetric(float64(rep.SeedServes), "serves")
		})
	}
}

// BenchmarkAblationFreeRiders (A5): free riders are penalized but the
// system stays viable as their share grows.
func BenchmarkAblationFreeRiders(b *testing.B) {
	for _, frac := range []float64{0.1, 0.3, 0.5} {
		b.Run(fmt.Sprintf("frac-%.0f%%", frac*100), func(b *testing.B) {
			rep := benchRun(b, Scenario{TorrentID: 14, FreeRiderFraction: frac})
			penalty := 0.0
			if rep.MeanDownloadContrib > 0 && rep.MeanDownloadFree > 0 {
				penalty = rep.MeanDownloadFree / rep.MeanDownloadContrib
			}
			b.ReportMetric(penalty, "free-rider-penalty")
			b.ReportMetric(rep.MeanDownloadContrib, "contrib-mean-s")
		})
	}
}

// --- Extensions (paper §VI future-work directions) ---

// BenchmarkExtensionNewcomerBoost measures the §VI improvement direction
// "the time to deliver the first blocks of data should be reduced": the
// exploratory unchoke slots (OU/SRU) prefer piece-less peers. Reported:
// the local peer's first-block and first-piece latency after joining.
func BenchmarkExtensionNewcomerBoost(b *testing.B) {
	for _, boost := range []bool{false, true} {
		name := "baseline"
		if boost {
			name = "boost"
		}
		b.Run(name, func(b *testing.B) {
			rep := benchRun(b, Scenario{TorrentID: 7, BoostNewcomers: boost})
			b.ReportMetric(rep.FirstBlockSeconds, "first-block-s")
			b.ReportMetric(rep.FirstPieceSeconds, "first-piece-s")
		})
	}
}

// BenchmarkExtensionSeedFailure injects the §II-B liveness failure: the
// initial seed departs mid-startup, leaving rare pieces unobtainable.
// Reported: fraction of leechers that still completed (should be ~0) and
// the global rare count at the end.
func BenchmarkExtensionSeedFailure(b *testing.B) {
	rep := benchRun(b, Scenario{TorrentID: 8, InitialSeedLeavesAt: 200})
	total := rep.FinishedContrib + rep.FinishedFree
	b.ReportMetric(float64(total), "completions")
	if len(rep.Availability) > 0 {
		b.ReportMetric(float64(rep.Availability[len(rep.Availability)-1].GlobalRare), "end-global-rare")
	}
}

// BenchmarkModelVsSim (V1): cross-validation of the simulator against the
// Qiu-Srikant fluid model (§V). Reports the ratio of simulated mean
// download time to the model's global-knowledge optimum — close to 1
// means local knowledge costs little, the paper's core message.
func BenchmarkModelVsSim(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sc := torrents.BenchScale()
		sc.Seed = int64(1000 + i)
		sc.Duration = 2400
		spec, _ := torrents.ByID(14)
		cfg := spec.Config(sc)
		res := swarm.New(cfg).Run()
		if res.FinishedContrib == 0 {
			b.Fatal("no completions")
		}
		bytes := int64(cfg.NumPieces) * int64(cfg.PieceSize)
		var meanUp, w float64
		for _, cl := range swarm.DefaultCapacityMix() {
			meanUp += cl.Fraction * cl.UpBps
			w += cl.Fraction
		}
		p := fluidmodel.FromSwarm(cfg.ArrivalRate, cfg.AbortRate, 1/cfg.SeedLingerMean,
			meanUp/w, 0, bytes, 1)
		modelT, err := p.MeanDownloadTime(1e6, 1e-9)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.MeanDownloadContrib / modelT
	}
	b.ReportMetric(ratio, "sim-over-model")
}
