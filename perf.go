package rarestfirst

// Perf cases: the fixed scenario set the benchmark trajectory harness
// (cmd/benchtraj) and BenchmarkLargeSwarm time. Keeping the definitions
// here — not in a _test file — lets the harness, the go-test benchmarks and
// CI all run the identical workload, so BENCH_*.json snapshots are
// comparable across PRs.

// LargeSwarmScale is the stress scale for the hot-path benchmarks: well
// above the default experiment caps, so steady-state event throughput —
// not setup — dominates.
func LargeSwarmScale() Scale {
	return Scale{
		MaxPeers:     300,
		MaxContentMB: 24,
		MaxPieces:    256,
		Duration:     1800,
		Warmup:       400,
		Seed:         42,
	}
}

// LargeSwarmScenario is the headline hot-path benchmark: a steady torrent
// at LargeSwarmScale. BENCH_*.json tracks its ns/op and allocs/op across
// PRs.
func LargeSwarmScenario() Scenario {
	return Scenario{Label: "large-swarm", TorrentID: 7, Scale: LargeSwarmScale()}
}

// HugeSwarmScale is the intra-swarm sharding stress scale: thousands of
// peers in ONE simulated swarm, an order of magnitude past LargeSwarmScale.
// Runs at this scale require Scenario.ChokeLanes; they exist to measure
// the single-run ceiling, not to regenerate paper figures.
func HugeSwarmScale() Scale {
	return Scale{
		MaxPeers:     6000,
		MaxContentMB: 24,
		MaxPieces:    256,
		Duration:     600,
		Warmup:       300,
		Seed:         42,
	}
}

// perfHeapShards is the keyed-subheap count the sharded perf cases run
// with: enough shards that per-shard heaps stay cache-sized at 100k-peer
// scale, few enough that the loser-tree merge stays a handful of
// comparisons per pop.
const perfHeapShards = 32

// HugeSwarmScenario is the 10k-peer-class benchmark: Table I's torrent 24
// (11038 peers in the paper) capped at HugeSwarmScale, with batched
// choke-round lanes on. BENCH_*.json tracks it from PR 4 on; from PR 6 it
// runs with the sharded event heap and batched HAVE availability updates
// (HeapShards + BatchHaves), which is where its ns/op step lands.
func HugeSwarmScenario() Scenario {
	return Scenario{
		Label:      "huge-swarm",
		TorrentID:  24,
		Scale:      HugeSwarmScale(),
		ChokeLanes: true,
		HeapShards: perfHeapShards,
		BatchHaves: true,
	}
}

// FlashCrowdScale is the deferred-retiming stress scale: a four-minute
// window into which a churn-scaled Poisson stream pours over twenty
// thousand peers. Built on torrent 8 — the paper's flash-crowd /
// transient case study — whose config keeps the warmup as given (steady
// torrents floor it at two download generations, which would stretch one
// iteration into a ~100k-peer hour-long run).
func FlashCrowdScale() Scale {
	return Scale{
		MaxPeers:     20000,
		MaxContentMB: 24,
		MaxPieces:    256,
		Duration:     180,
		Warmup:       60,
		Seed:         42,
	}
}

// flashCrowdChurnScale multiplies torrent 8's transient arrival rate
// (~1.8/s at FlashCrowdScale) up to a genuine flash crowd: ~86 peers/s,
// >20k total arrivals inside the four simulated minutes.
const flashCrowdChurnScale = 48

// FlashCrowd20kScenario is the 100k-peer-direction benchmark: one slow
// initial seed against a flash-crowd arrival of >20k leechers, lane mode
// on — the workload whose per-instant flow churn the deferred retime
// flush exists for. BENCH_*.json tracks it from PR 5 on.
func FlashCrowd20kScenario() Scenario {
	return Scenario{
		Label:      "flash-crowd-20k",
		TorrentID:  8,
		Scale:      FlashCrowdScale(),
		ChokeLanes: true,
		ChurnScale: flashCrowdChurnScale,
		HeapShards: perfHeapShards,
		BatchHaves: true,
	}
}

// MegaSwarmScale is the 100k-peer milestone scale: the same four-minute
// flash-crowd window as FlashCrowdScale with the population cap raised to
// one hundred thousand peers. At this scale memory layout — peak heap and
// peak RSS, which BENCH_*.json records as first-class columns from PR 6 —
// is the wall, not CPU.
func MegaSwarmScale() Scale {
	return Scale{
		MaxPeers:     100000,
		MaxContentMB: 24,
		MaxPieces:    256,
		Duration:     180,
		Warmup:       60,
		Seed:         42,
	}
}

// megaSwarmChurnScale multiplies torrent 8's transient arrival rate
// (~1.8/s at MegaSwarmScale) up to ~450 peers/s: >100k total arrivals
// inside the four simulated minutes — five times the FlashCrowd20k storm.
const megaSwarmChurnScale = 240

// MegaSwarmScenario is the 100k-peer milestone benchmark: the paper's
// flash-crowd case study (torrent 8) at MegaSwarmScale, with every
// large-scale lever on — choke lanes, the sharded event heap and batched
// HAVE availability updates. BENCH_*.json tracks it from PR 6 on.
func MegaSwarmScenario() Scenario {
	return Scenario{
		Label:      "mega-swarm",
		TorrentID:  8,
		Scale:      MegaSwarmScale(),
		ChokeLanes: true,
		ChurnScale: megaSwarmChurnScale,
		HeapShards: perfHeapShards,
		BatchHaves: true,
	}
}

// PerfCase names one benchmark scenario of the trajectory harness.
type PerfCase struct {
	Name     string
	Scenario Scenario
}

// PerfCases returns the harness's scenario set: the large-swarm stress
// case, the huge-swarm lane-sharded case, the flash-crowd and mega-swarm
// churn storms, plus bench-scale steady and transient runs (cheap
// canaries that catch regressions the big runs would hide in noise).
func PerfCases() []PerfCase {
	return []PerfCase{
		{Name: "LargeSwarm", Scenario: LargeSwarmScenario()},
		{Name: "HugeSwarm", Scenario: HugeSwarmScenario()},
		{Name: "FlashCrowd20k", Scenario: FlashCrowd20kScenario()},
		{Name: "MegaSwarm", Scenario: MegaSwarmScenario()},
		{Name: "SteadyT7Bench", Scenario: Scenario{Label: "steady-t7", TorrentID: 7, Scale: BenchScale()}},
		{Name: "TransientT8Bench", Scenario: Scenario{Label: "transient-t8", TorrentID: 8, Scale: BenchScale()}},
	}
}
