package rarestfirst

// Chaos-lab acceptance tests: the chaos-* registry families must survive
// a tracker blackout mid-flash-crowd, injected connection faults and a
// failing seed on BOTH backends, land in the cross-validation table, and
// report fault counters. Determinism is asserted strictly on the sim twin
// (engine-RNG fault draws); the live side is asserted up to schedule
// determinism (real TCP timing varies, the injected-fault schedule does
// not).

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestChaosSimDeterministic: two same-seed runs of the chaos sim spec
// must produce identical, nonzero fault-counter totals.
func TestChaosSimDeterministic(t *testing.T) {
	sc := Scenario{
		TorrentID:    8,
		Faults:       "chaos",
		Scale:        Scale{MaxPeers: 6, MaxContentMB: 1, MaxPieces: 32, Duration: 12},
		SeedOverride: 42,
	}
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Faults) == 0 {
		t.Fatal("chaos sim run produced no fault counters")
	}
	if !reflect.DeepEqual(r1.Faults, r2.Faults) {
		t.Fatalf("same-seed chaos runs disagree on faults:\n  run 1: %v\n  run 2: %v", r1.Faults, r2.Faults)
	}
	// The plan's marquee faults must actually fire at this scale.
	if r1.Faults["swarm_announce_fail"] == 0 {
		t.Errorf("tracker blackout injected no announce failures: %v", r1.Faults)
	}
	if r1.Faults["swarm_dial_fail"] == 0 && r1.Faults["swarm_conn_reset"] == 0 {
		t.Errorf("no connection faults fired: %v", r1.Faults)
	}

	// A different seed must reshuffle the schedule (not necessarily every
	// counter, but the totals cannot all coincide byte-for-byte with the
	// trajectory unchanged — compare the full digest-relevant report).
	sc.SeedOverride = 43
	r3, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Faults, r3.Faults) && r1.LocalDownloadSeconds == r3.LocalDownloadSeconds {
		t.Errorf("different seeds produced identical chaos trajectories")
	}
}

// TestChaosFaultPlanValidation: an unknown fault plan must fail loudly.
func TestChaosFaultPlanValidation(t *testing.T) {
	_, err := Run(Scenario{TorrentID: 8, Faults: "no-such-plan"})
	if err == nil || !strings.Contains(err.Error(), "no-such-plan") {
		t.Fatalf("unknown fault plan accepted: %v", err)
	}
}

// TestChaosSuiteEndToEnd drives the chaos-flashcrowd family through
// RunSuite: a tracker blackout mid-flash-crowd with connection resets and
// a slow, failing seed, on the simulator and on real TCP loopback.
func TestChaosSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos loopback swarm takes tens of seconds")
	}
	suite, err := NewSuite("chaos-flashcrowd", SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range suite.Scenarios {
		if sc.Faults != "chaos" {
			t.Fatalf("scenario %d carries fault plan %q, want \"chaos\"", i, sc.Faults)
		}
	}

	sr, err := Runner{}.RunSuite(suite)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range sr.Reports {
		if rep == nil {
			t.Fatalf("chaos scenario %d produced no report", i)
		}
		// "Completes" under chaos means the run finishes and reports; the
		// seed fails mid-run, so the local download may legitimately not.
		if len(rep.Faults) == 0 {
			t.Errorf("chaos run %d (live=%v) reported no fault counters", i, rep.Scenario.Live)
		}
	}
	if len(sr.CrossValidation) != 1 {
		t.Fatalf("want 1 cross-validation pair, got %d", len(sr.CrossValidation))
	}
	pair := sr.CrossValidation[0]
	if pair.Sim.Live || !pair.Live.Live || pair.Sim.Label != pair.Live.Label {
		t.Fatalf("cross-validation pair malformed: %+v", pair)
	}
	if len(pair.Sim.Faults) == 0 || len(pair.Live.Faults) == 0 {
		t.Fatalf("cross-validation aggregates missing faults: sim=%v live=%v",
			pair.Sim.Faults, pair.Live.Faults)
	}

	var buf bytes.Buffer
	sr.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "faults:") {
		t.Fatalf("suite text missing fault counters:\n%s", out)
	}
}
