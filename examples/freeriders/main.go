// Freeriders: the choke algorithm's robustness to peers that never upload
// (paper section IV-B) — contributors keep their performance, free riders
// pay a penalty, and the NEW seed-state algorithm caps what free riders
// can extract from seeds compared to the OLD one.
//
// The experiment grid comes from the registered "freeriders" scenario
// suite and runs with three RNG seeds per configuration, fanned across
// the parallel runner; the table reports mean/stddev over the repeats.
//
//	go run ./examples/freeriders
package main

import (
	"fmt"
	"log"
	"os"

	"rarestfirst"
)

func main() {
	suite, err := rarestfirst.NewSuite("freeriders", rarestfirst.SuiteOptions{
		Scale: rarestfirst.BenchScale(),
		Seeds: []int64{101, 102, 103},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite %q: %s\n", suite.Name, suite.Description)
	fmt.Printf("%d scenarios (2 algorithms x 3 seeds), run in parallel:\n\n", len(suite.Scenarios))

	sr, err := rarestfirst.Runner{}.RunSuite(suite)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %18s %18s %10s\n", "seed choke", "contributors (s)", "free riders (s)", "penalty")
	for _, a := range sr.Aggregates {
		penalty := 0.0
		if a.ContribDownload.Mean > 0 && a.FreeDownload.Mean > 0 {
			penalty = a.FreeDownload.Mean / a.ContribDownload.Mean
		}
		fmt.Printf("%-16s %11.0f ±%4.0f %11.0f ±%4.0f %9.2fx\n",
			a.Label, a.ContribDownload.Mean, a.ContribDownload.Stddev,
			a.FreeDownload.Mean, a.FreeDownload.Stddev, penalty)
	}

	fmt.Println()
	sr.WriteText(os.Stdout)

	fmt.Println()
	fmt.Println("Free riders still finish (the paper argues this is a feature: excess")
	fmt.Println("capacity is used rather than stranded, unlike bit-level tit-for-tat),")
	fmt.Println("but they wait longer than contributors, and with the new seed-state")
	fmt.Println("algorithm they cannot monopolise a seed the way a fast free rider")
	fmt.Println("could under the old upload-rate-ordered algorithm.")
}
