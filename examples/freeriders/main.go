// Freeriders: the choke algorithm's robustness to peers that never upload
// (paper section IV-B) — contributors keep their performance, free riders
// pay a penalty, and the NEW seed-state algorithm caps what free riders
// can extract from seeds compared to the OLD one.
//
//	go run ./examples/freeriders
package main

import (
	"fmt"
	"log"

	"rarestfirst"
)

func main() {
	scale := rarestfirst.BenchScale()

	fmt.Println("torrent 14 with 30% free riders, standard leecher choke:")
	fmt.Println()
	fmt.Printf("%-12s %18s %18s %10s\n", "seed choke", "contributors (s)", "free riders (s)", "penalty")
	for _, sk := range []string{rarestfirst.SeedChokeNew, rarestfirst.SeedChokeOld} {
		rep, err := rarestfirst.Run(rarestfirst.Scenario{
			TorrentID:         14,
			Scale:             scale,
			SeedChoke:         sk,
			FreeRiderFraction: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		penalty := 0.0
		if rep.MeanDownloadContrib > 0 && rep.MeanDownloadFree > 0 {
			penalty = rep.MeanDownloadFree / rep.MeanDownloadContrib
		}
		fmt.Printf("%-12s %18.0f %18.0f %9.2fx\n",
			sk, rep.MeanDownloadContrib, rep.MeanDownloadFree, penalty)
	}

	fmt.Println()
	fmt.Println("Free riders still finish (the paper argues this is a feature: excess")
	fmt.Println("capacity is used rather than stranded, unlike bit-level tit-for-tat),")
	fmt.Println("but they wait longer than contributors, and with the new seed-state")
	fmt.Println("algorithm they cannot monopolise a seed the way a fast free rider")
	fmt.Println("could under the old upload-rate-ordered algorithm.")
}
