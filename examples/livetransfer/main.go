// Livetransfer: the live-swarm lab through the public API — real
// BitTorrent sessions over loopback TCP (HTTP tracker, one seed, a crowd
// of leechers, SHA-1 verified pieces) running as first-class scenarios
// next to their discrete-event simulator twins.
//
// The "live-casestudy" suite pairs the torrent 10 case study's sim twin
// with an instrumented real-TCP swarm under one label; both backends emit
// the same *Report (entropy ratios, availability series, interarrival
// CDFs, fairness shares) through the same aggregation, and the suite
// report ends with a sim-vs-live cross-validation table — the same
// "instrument a real client" methodology the paper's own evidence used.
//
//	go run ./examples/livetransfer
package main

import (
	"fmt"
	"log"
	"os"

	"rarestfirst"
)

func main() {
	// Two seed repeats per backend give the cross-validation table a
	// spread (mean±stddev), not just a point estimate.
	suite, err := rarestfirst.NewSuite("live-casestudy", rarestfirst.SuiteOptions{
		Seeds: []int64{1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite %q: %s\n", suite.Name, suite.Description)
	live := 0
	for _, sc := range suite.Scenarios {
		if sc.Live {
			live++
		}
	}
	fmt.Printf("running %d scenarios (%d real-TCP loopback swarms, %d simulations)...\n\n",
		len(suite.Scenarios), live, len(suite.Scenarios)-live)

	sr, err := rarestfirst.Runner{}.RunSuite(suite)
	if err != nil {
		log.Fatal(err)
	}

	// The demo is also a check: every real-TCP swarm must actually have
	// completed its SHA-1-verified download (the client only counts a
	// piece after hash verification, so completion implies integrity).
	for i, rep := range sr.Reports {
		if suite.Scenarios[i].Live && (rep == nil || !rep.LocalCompleted) {
			log.Fatalf("live swarm %d did not complete its download", i)
		}
	}

	// The aggregate table plus the sim-vs-live section.
	sr.WriteText(os.Stdout)

	// Every run — simulated or live — flows through the same report
	// pipeline; show one live run's full figure set to prove it.
	for i, rep := range sr.Reports {
		if rep != nil && suite.Scenarios[i].Live {
			fmt.Printf("\n-- full report of one live swarm (real TCP, %s) --\n", rep.Spec)
			rep.WriteText(os.Stdout)
			break
		}
	}

	if len(sr.CrossValidation) == 0 {
		log.Fatal("no cross-validation pairs — sim and live twins failed to pair up")
	}
	pair := sr.CrossValidation[0]
	fmt.Printf("\ncross-validation: label %q ran %d sim + %d live swarms; "+
		"entropy a/b medians %.3f (sim) vs %.3f (live)\n",
		pair.Label, pair.Sim.Runs, pair.Live.Runs,
		pair.Sim.EntropyAB.Mean, pair.Live.EntropyAB.Mean)
}
