// Livetransfer: a complete BitTorrent session over real TCP sockets on
// loopback — HTTP tracker, one seed, three leechers — using the very same
// rarest-first and choke implementations the simulator evaluates. Every
// piece is SHA-1 verified on arrival.
//
// The registered "livetransfer" scenario is the simulator twin of this
// demo (a four-peer miniature swarm); it runs first so the two layers of
// the reproduction — discrete-event simulation and real sockets — can be
// eyeballed side by side.
//
//	go run ./examples/livetransfer
package main

import (
	"bytes"
	"crypto/sha1"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"rarestfirst"
	"rarestfirst/internal/client"
	"rarestfirst/internal/metainfo"
	"rarestfirst/internal/tracker"
)

// runSimTwin runs the registry's simulator twin of this demo.
func runSimTwin() {
	suite, err := rarestfirst.NewSuite("livetransfer", rarestfirst.SuiteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite %q: %s\n", suite.Name, suite.Description)
	sr, err := rarestfirst.Runner{}.RunSuite(suite)
	if err != nil {
		log.Fatal(err)
	}
	rep := sr.Reports[0]
	if rep.LocalCompleted {
		fmt.Printf("simulated twin: local peer completed in %.0f simulated seconds\n\n", rep.LocalDownloadSeconds)
	} else {
		fmt.Printf("simulated twin: local peer did not complete in the window\n\n")
	}
}

func main() {
	runSimTwin()
	// 1. Content + .torrent metainfo.
	content := make([]byte, 2<<20) // 2 MiB
	rand.New(rand.NewSource(42)).Read(content)

	// 2. Real HTTP tracker on loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	trk := tracker.NewServer(2) // fast re-announce so peers find each other quickly
	go http.Serve(ln, trk.Handler())
	announce := fmt.Sprintf("http://%s/announce", ln.Addr())
	fmt.Printf("tracker: %s\n", announce)

	meta, err := metainfo.Build("demo.bin", announce, content, 256<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("torrent: %d pieces x %d kB, infohash %s\n",
		meta.NumPieces(), meta.Info.PieceLength>>10, meta.InfoHash())

	// 3. Seed.
	seed, err := client.New(client.Options{
		Meta: meta, Content: content,
		UploadBps:     2 << 20,
		ChokeInterval: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", announce); err != nil {
		log.Fatal(err)
	}
	defer seed.Stop()
	fmt.Printf("seed:    %s\n", seed.Addr())

	// 4. Three leechers.
	var leechers []*client.Client
	for i := 0; i < 3; i++ {
		l, err := client.New(client.Options{
			Meta:          meta,
			UploadBps:     2 << 20,
			ChokeInterval: 500 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := l.Start("127.0.0.1:0", announce); err != nil {
			log.Fatal(err)
		}
		defer l.Stop()
		leechers = append(leechers, l)
		fmt.Printf("leecher %d: %s\n", i+1, l.Addr())
	}

	// 5. Watch until everyone completes.
	start := time.Now()
	for {
		all := true
		line := "progress:"
		for i, l := range leechers {
			done, total := l.Progress()
			line += fmt.Sprintf("  L%d %d/%d", i+1, done, total)
			if !l.Complete() {
				all = false
			}
		}
		fmt.Println(line)
		if all {
			break
		}
		if time.Since(start) > 2*time.Minute {
			log.Fatal("transfer timed out")
		}
		time.Sleep(500 * time.Millisecond)
	}

	// 6. Verify byte-for-byte.
	want := sha1.Sum(content)
	for i, l := range leechers {
		got := sha1.Sum(l.Bytes())
		if got != want || !bytes.Equal(l.Bytes(), content) {
			log.Fatalf("leecher %d content mismatch", i+1)
		}
		up, down := l.Stats()
		fmt.Printf("leecher %d: verified %x  (up %d kB, down %d kB)\n",
			i+1, got[:6], up>>10, down>>10)
	}
	fmt.Printf("complete in %.1fs — leechers reciprocated among themselves while the seed rotated its unchokes\n",
		time.Since(start).Seconds())
}
