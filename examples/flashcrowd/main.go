// Flashcrowd: run the registered "flashcrowd" scenario (torrent 8: one
// slow initial seed, a crowd of empty leechers) and watch rare pieces
// drain at the seed's constant upload rate — Figs 2 and 3.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"rarestfirst"
)

func main() {
	suite, err := rarestfirst.NewSuite("flashcrowd", rarestfirst.SuiteOptions{
		Scale: rarestfirst.BenchScale(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite %q: %s\n\n", suite.Name, suite.Description)

	sr, err := rarestfirst.Runner{}.RunSuite(suite)
	if err != nil {
		log.Fatal(err)
	}
	rep := sr.Reports[0]

	fmt.Println("torrent 8 (startup phase): rare pieces exist only on the initial seed.")
	fmt.Println("The rarest-pieces count falls LINEARLY at the seed's constant rate,")
	fmt.Println("while already-available pieces replicate with exponential capacity:")
	fmt.Println()
	fmt.Println("  t(s)   min-copies  mean   max   rare-pieces(global)")
	for i, p := range rep.Availability {
		if i%4 != 0 {
			continue
		}
		bar := ""
		for j := 0; j < p.GlobalRare/2; j++ {
			bar += "#"
		}
		fmt.Printf("%6.0f %8d %8.1f %5d   %3d %s\n", p.T, p.Min, p.Mean, p.Max, p.GlobalRare, bar)
	}

	fmt.Println()
	fmt.Printf("entropy during startup is LOW (a/b median %.3f, c/d median %.3f):\n",
		rep.Entropy.AOverB.P50, rep.Entropy.COverD.P50)
	fmt.Println("that is the seed's limited upload capacity, not a rarest-first deficiency —")
	fmt.Println("the same observation the paper uses to defend the algorithm (section IV-A.2.a).")
	if rep.LocalCompleted {
		fmt.Printf("local peer completed in %.0f s\n", rep.LocalDownloadSeconds)
	} else {
		fmt.Println("local peer did NOT complete: rare pieces arrive only at the seed's rate.")
	}
}
