// Quickstart: run the registered "quickstart" scenario (torrent 10, the
// paper's interarrival case study) through the suite runner and read off
// the paper's headline findings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"rarestfirst"
)

func main() {
	// The scenario registry names the recurring experiment setups; every
	// entry point builds them the same way. BenchScale shrinks torrent 10
	// (1 seed, 1207 leechers, 348 MB) so this runs in seconds.
	suite, err := rarestfirst.NewSuite("quickstart", rarestfirst.SuiteOptions{
		Scale: rarestfirst.BenchScale(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite %q: %s\n\n", suite.Name, suite.Description)

	sr, err := rarestfirst.Runner{}.RunSuite(suite)
	if err != nil {
		log.Fatal(err)
	}
	rep := sr.Reports[0]

	fmt.Println("--- full report ---")
	rep.WriteText(os.Stdout)

	fmt.Println("\n--- headline findings (paper section IV) ---")
	fmt.Printf("close-to-ideal entropy: a/b median %.2f, c/d median %.2f (1.0 = ideal)\n",
		rep.Entropy.AOverB.P50, rep.Entropy.COverD.P50)
	fmt.Printf("first-pieces problem:   first/all interarrival p90 = %.2fx\n",
		rep.PieceCDF.FirstOverAllP90)
	fmt.Printf("no last-pieces problem: last/all interarrival p90  = %.2fx\n",
		rep.PieceCDF.LastOverAllP90)
	if len(rep.FairnessUploadSS) > 0 {
		fmt.Printf("seed-state equal service: top set share %.2f of uploads (uniform would be %.2f)\n",
			rep.FairnessUploadSS[0], 1.0/float64(len(rep.FairnessUploadSS)))
	}
}
