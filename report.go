package rarestfirst

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"

	"rarestfirst/internal/analysis"
	"rarestfirst/internal/swarm"
	"rarestfirst/internal/torrents"
	"rarestfirst/internal/trace"
)

// EntropySummary is one torrent's Fig 1 row: the 20th/50th/80th percentiles
// of the two interest-time ratio populations.
type EntropySummary struct {
	// AOverB summarizes a/b: local interest in remote leechers.
	AOverB analysis.Summary
	// COverD summarizes c/d: remote leechers' interest in the local peer.
	COverD analysis.Summary
}

// AvailPoint is one sample of Figs 2–6: piece replication in the local
// peer set over time.
type AvailPoint struct {
	T          float64
	Min        int
	Mean       float64
	Max        int
	RarestSize int
	PeerSet    int
	GlobalMin  int
	GlobalRare int
}

// InterarrivalCDF summarizes Fig 7/8: quantiles of the interarrival-time
// distribution for all events, the first 100 and the last 100.
type InterarrivalCDF struct {
	N                  int
	AllP50, AllP90     float64
	FirstP50, FirstP90 float64
	LastP50, LastP90   float64
	// FirstOverAllP90 > 1 signals the "first pieces/blocks problem"; the
	// paper finds it large while LastOverAllP90 stays near 1.
	FirstOverAllP90 float64
	LastOverAllP90  float64
}

// CorrelationReport is one Fig 10 panel: unchoke counts vs interested time.
type CorrelationReport struct {
	N        int
	Pearson  float64
	MaxUnch  int
	MeanUnch float64
}

// Report is everything one experiment produces.
type Report struct {
	TorrentID int
	Spec      string
	// State is the catalog's expected state; DetectedState is what the
	// run actually exhibited (§IV-A.2's criterion: transient while rare
	// pieces exist). Disagreement flags a scaling problem.
	State         string
	DetectedState string
	Scenario      Scenario

	LocalCompleted       bool
	LocalDownloadSeconds float64
	EndGameEntered       bool
	// FirstBlockSeconds / FirstPieceSeconds measure the startup delay of
	// the local peer (§VI: "the time to deliver the first blocks of data
	// should be reduced"); -1 when nothing arrived.
	FirstBlockSeconds float64
	FirstPieceSeconds float64

	Entropy      EntropySummary
	Availability []AvailPoint
	PieceCDF     InterarrivalCDF
	BlockCDF     InterarrivalCDF

	// FairnessLS: Fig 9. Share of leecher-state upload received by each
	// 5-peer set (ranked by received bytes), and the same sets' share of
	// the local peer's downloads (reciprocation).
	FairnessUploadLS []float64
	FairnessRecipLS  []float64
	// FairnessSS: Fig 11. Share of seed-state upload per 5-peer set.
	FairnessUploadSS []float64

	UnchokeLS CorrelationReport
	UnchokeSS CorrelationReport

	// Initial-seed service (A4): total pieces served and duplicates.
	SeedServes    int
	DupSeedServes int

	// Swarm-level download times (ablations).
	MeanDownloadContrib float64
	MeanDownloadFree    float64
	FinishedContrib     int
	FinishedFree        int
	// Arrivals counts every leecher that ever joined (initial population
	// plus the churn stream) — the flash-crowd benchmarks' population
	// measure.
	Arrivals int

	// MsgCounts tallies the local peer's control-plane events (interest
	// transitions, choke transitions, HAVEs observed) — the message-log
	// summary of the paper's instrumentation.
	MsgCounts map[string]int

	// Faults tallies resilience events under a chaos scenario: dial
	// retries, request timeouts, snubs, announce failures and injected
	// faults (live), and their swarm_-prefixed simulator twins. nil — and
	// omitted from the JSON, keeping golden digests untouched — on every
	// fault-free run.
	Faults map[string]int `json:",omitempty"`

	// Events is the discrete-event scheduler's end-of-run occupancy: how
	// big the heap got versus how many entries were live, and how much the
	// timer free list saved. The benchmark trajectory harness records it
	// per snapshot.
	Events EventHeapStats
}

// EventHeapStats mirrors the simulator scheduler's internal counters for
// reporting (see internal/sim.EngineStats).
type EventHeapStats struct {
	// HeapSize is the event-heap occupancy at end of run, including
	// lazily-deleted entries; Live excludes them.
	HeapSize  int
	Live      int
	Cancelled int
	// TimersReused counts scheduling calls served by the timer free list;
	// Compactions counts lazy-deletion sweeps.
	TimersReused uint64
	Compactions  uint64
	// PeakLaneWidth is the widest same-instant batch of lane choke
	// rounds the scheduler executed (0 unless Scenario.ChokeLanes) —
	// the observable measure of intra-swarm parallelism. LaneBatches
	// and LaneEvents count the batches and the rounds they carried.
	// omitempty keeps pre-lane report serializations byte-identical.
	PeakLaneWidth int    `json:",omitempty"`
	LaneBatches   uint64 `json:",omitempty"`
	LaneEvents    uint64 `json:",omitempty"`
	// Deferred-retiming counters from the fluid model (sim.NetStats):
	// DirtyFlushes counts post-event flush passes that re-timed at least
	// one node, RetimeBatches the node shards they processed (mean shard
	// width = RetimeBatches/DirtyFlushes), and PeakShardWidth the widest
	// dirty-node set one flush fanned across the retime workers.
	DirtyFlushes   uint64 `json:",omitempty"`
	RetimeBatches  uint64 `json:",omitempty"`
	PeakShardWidth int    `json:",omitempty"`
	// TimerPoolCap / FlowPoolCap are the high-water-derived bounds on the
	// scheduler's timer free list and the fluid model's flow free list —
	// what keeps a flash-crowd peak from pinning peak-sized pools.
	TimerPoolCap int `json:",omitempty"`
	FlowPoolCap  int `json:",omitempty"`
	// Sharded-heap counters (sim.EngineStats, PR 6): Shards is the keyed
	// subheap count the run scheduled into (0 = single heap),
	// PeakShardHeap the largest single keyed subheap — the number that
	// stays flat as swarms grow while a single heap's peak would not —
	// and MergePops the events the loser-tree merge delivered.
	Shards        int    `json:",omitempty"`
	PeakShardHeap int    `json:",omitempty"`
	MergePops     uint64 `json:",omitempty"`
	// Engine phase timing (PR 8, internal/obs): wall-clock nanoseconds
	// spent in each scheduler phase, populated only when a run executes
	// with an active obs registry. Wall-clock telemetry, not simulation
	// output — reportDigest zeroes Events, so these never affect goldens.
	LaneComputeNs uint64 `json:",omitempty"`
	LaneApplyNs   uint64 `json:",omitempty"`
	MergeNs       uint64 `json:",omitempty"`
	RetimeFlushNs uint64 `json:",omitempty"`
	HaveFlushNs   uint64 `json:",omitempty"`
}

// buildReport derives every figure's statistics from the run result.
func buildReport(sc Scenario, spec torrents.Spec, cfg swarm.Config, res *swarm.Result) *Report {
	col := res.Collector
	recs := col.Records()

	rep := &Report{
		TorrentID:            spec.ID,
		Spec:                 spec.String(),
		State:                spec.State.String(),
		Scenario:             sc,
		LocalCompleted:       res.LocalCompleted,
		LocalDownloadSeconds: res.LocalDownloadTime,
		SeedServes:           res.SeedServes,
		DupSeedServes:        res.DupSeedServes,
		MeanDownloadContrib:  res.MeanDownloadContrib,
		MeanDownloadFree:     res.MeanDownloadFree,
		FinishedContrib:      res.FinishedContrib,
		FinishedFree:         res.FinishedFree,
		Arrivals:             res.Arrivals,
		MsgCounts:            col.MsgCounts,
		Faults:               col.FaultCounts,
		Events: EventHeapStats{
			HeapSize:       res.Events.HeapSize,
			Live:           res.Events.Live,
			Cancelled:      res.Events.Cancelled,
			TimersReused:   res.Events.Reused,
			Compactions:    res.Events.Compactions,
			PeakLaneWidth:  res.Events.PeakLaneWidth,
			LaneBatches:    res.Events.LaneBatches,
			LaneEvents:     res.Events.LaneEvents,
			DirtyFlushes:   res.Net.DirtyFlushes,
			RetimeBatches:  res.Net.RetimeBatches,
			PeakShardWidth: res.Net.PeakShardWidth,
			TimerPoolCap:   res.Events.TimerPoolCap,
			FlowPoolCap:    res.Net.FlowPoolCap,
			Shards:         res.Events.Shards,
			PeakShardHeap:  res.Events.PeakShardHeap,
			MergePops:      res.Events.MergePops,
			LaneComputeNs:  res.Events.LaneComputeNs,
			LaneApplyNs:    res.Events.LaneApplyNs,
			MergeNs:        res.Events.MergeNs,
			RetimeFlushNs:  res.Events.RetimeFlushNs,
			HaveFlushNs:    res.Events.HaveFlushNs,
		},
	}
	for _, e := range col.Events {
		if e.Name == "end_game" {
			rep.EndGameEntered = true
		}
	}
	rep.FirstBlockSeconds, rep.FirstPieceSeconds = -1, -1
	if len(col.BlockTimes) > 0 {
		rep.FirstBlockSeconds = col.BlockTimes[0] - col.StartAt()
	}
	if len(col.PieceTimes) > 0 {
		rep.FirstPieceSeconds = col.PieceTimes[0] - col.StartAt()
	}

	a, c := analysis.EntropyRatios(recs)
	rep.Entropy = EntropySummary{AOverB: analysis.Summarize(a), COverD: analysis.Summarize(c)}

	for _, s := range col.Samples {
		rep.Availability = append(rep.Availability, AvailPoint{
			T: s.T, Min: s.Min, Mean: s.Mean, Max: s.Max,
			RarestSize: s.RarestSize, PeerSet: s.PeerSet,
			GlobalMin: s.GlobalMin, GlobalRare: s.GlobalRare,
		})
	}

	// The paper uses the first/last 100 of ~900–1400 pieces; at reduced
	// scale the window is the same fraction (~10%) of the arrival series.
	pieceWin := max(8, cfg.NumPieces/10)
	blockWin := max(32, cfg.Geometry().TotalBlocks()/10)
	rep.PieceCDF = interarrivalCDF(col.PieceTimes, pieceWin)
	rep.BlockCDF = interarrivalCDF(col.BlockTimes, blockWin)

	rep.FairnessUploadLS = analysis.UploadFairness(recs, false, 6)
	rep.FairnessRecipLS = analysis.ReciprocationFairness(recs, 6)
	rep.FairnessUploadSS = analysis.UploadFairness(recs, true, 6)

	rep.UnchokeLS = correlation(recs, false)
	rep.UnchokeSS = correlation(recs, true)
	rep.DetectedState = detectState(rep.Availability)
	return rep
}

// detectState classifies the run by the paper's criterion: a torrent is in
// transient state exactly while rare pieces (pieces held only by the
// initial seed) exist. A run that spends more than half its samples with
// rare pieces out is transient; with none, steady.
func detectState(av []AvailPoint) string {
	if len(av) == 0 {
		return "unknown"
	}
	rare := 0
	for _, p := range av {
		if p.GlobalRare > 0 {
			rare++
		}
	}
	switch {
	case rare > len(av)/2:
		return "transient"
	case rare == 0:
		return "steady"
	default:
		return "mixed"
	}
}

func interarrivalCDF(times []float64, n int) InterarrivalCDF {
	all := analysis.Interarrivals(times)
	first, last := analysis.HeadTail(times, n)
	ac, fc, lc := analysis.NewCDF(all), analysis.NewCDF(first), analysis.NewCDF(last)
	out := InterarrivalCDF{
		N:        len(times),
		AllP50:   ac.Quantile(0.5),
		AllP90:   ac.Quantile(0.9),
		FirstP50: fc.Quantile(0.5),
		FirstP90: fc.Quantile(0.9),
		LastP50:  lc.Quantile(0.5),
		LastP90:  lc.Quantile(0.9),
	}
	if out.AllP90 > 0 {
		out.FirstOverAllP90 = out.FirstP90 / out.AllP90
		out.LastOverAllP90 = out.LastP90 / out.AllP90
	}
	return out
}

func correlation(recs []*trace.PeerRecord, ss bool) CorrelationReport {
	x, y := analysis.UnchokePoints(recs, ss)
	rep := CorrelationReport{N: len(x), Pearson: analysis.Pearson(x, y)}
	var sum float64
	for _, v := range y {
		if int(v) > rep.MaxUnch {
			rep.MaxUnch = int(v)
		}
		sum += v
	}
	if len(y) > 0 {
		rep.MeanUnch = sum / float64(len(y))
	}
	return rep
}

// WriteText renders the report as the plain-text rows/series the paper's
// figures plot.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s\n", r.Spec)
	fmt.Fprintf(w, "state=%s (detected: %s) picker=%s seed-choke=%s leecher-choke=%s\n",
		r.State, r.DetectedState, orDefault(r.Scenario.Picker, PickerRarestFirst),
		orDefault(r.Scenario.SeedChoke, SeedChokeNew),
		orDefault(r.Scenario.LeecherChoke, LeecherChokeStandard))
	if r.LocalCompleted {
		fmt.Fprintf(w, "local peer: completed in %.0f s (end game: %v)\n",
			r.LocalDownloadSeconds, r.EndGameEntered)
	} else {
		fmt.Fprintf(w, "local peer: NOT completed (end game: %v)\n", r.EndGameEntered)
	}

	fmt.Fprintf(w, "[fig1] entropy a/b: n=%d p20=%.3f p50=%.3f p80=%.3f\n",
		r.Entropy.AOverB.N, r.Entropy.AOverB.P20, r.Entropy.AOverB.P50, r.Entropy.AOverB.P80)
	fmt.Fprintf(w, "[fig1] entropy c/d: n=%d p20=%.3f p50=%.3f p80=%.3f\n",
		r.Entropy.COverD.N, r.Entropy.COverD.P20, r.Entropy.COverD.P50, r.Entropy.COverD.P80)

	if len(r.Availability) > 0 {
		fmt.Fprintf(w, "[fig2-6] t(s)  min  mean  max  rarest  peerset  globalrare\n")
		step := len(r.Availability) / 12
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(r.Availability); i += step {
			p := r.Availability[i]
			fmt.Fprintf(w, "[fig2-6] %7.0f  %3d  %6.1f  %3d  %5d  %5d  %5d\n",
				p.T, p.Min, p.Mean, p.Max, p.RarestSize, p.PeerSet, p.GlobalRare)
		}
	}

	if len(r.Availability) > 0 {
		n := len(r.Availability)
		series := func(get func(AvailPoint) float64) []float64 {
			out := make([]float64, n)
			for i, p := range r.Availability {
				out[i] = get(p)
			}
			return out
		}
		fmt.Fprintf(w, "[plot] %s\n", analysis.PlotSeries("min", series(func(p AvailPoint) float64 { return float64(p.Min) }), 48))
		fmt.Fprintf(w, "[plot] %s\n", analysis.PlotSeries("mean", series(func(p AvailPoint) float64 { return p.Mean }), 48))
		fmt.Fprintf(w, "[plot] %s\n", analysis.PlotSeries("max", series(func(p AvailPoint) float64 { return float64(p.Max) }), 48))
		fmt.Fprintf(w, "[plot] %s\n", analysis.PlotSeries("rarest", series(func(p AvailPoint) float64 { return float64(p.RarestSize) }), 48))
		fmt.Fprintf(w, "[plot] %s\n", analysis.PlotSeries("peerset", series(func(p AvailPoint) float64 { return float64(p.PeerSet) }), 48))
		fmt.Fprintf(w, "[plot] %s\n", analysis.PlotSeries("rare", series(func(p AvailPoint) float64 { return float64(p.GlobalRare) }), 48))
	}

	writeCDF := func(tag string, c InterarrivalCDF) {
		fmt.Fprintf(w, "[%s] n=%d p50 all/first/last = %.2f/%.2f/%.2f s; p90 = %.2f/%.2f/%.2f s; first/all p90 = %.2fx, last/all p90 = %.2fx\n",
			tag, c.N, c.AllP50, c.FirstP50, c.LastP50, c.AllP90, c.FirstP90, c.LastP90,
			c.FirstOverAllP90, c.LastOverAllP90)
	}
	writeCDF("fig7-pieces", r.PieceCDF)
	writeCDF("fig8-blocks", r.BlockCDF)

	fmt.Fprintf(w, "[fig9] upload share by 5-peer set (LS):   %s\n", fmtShares(r.FairnessUploadLS))
	fmt.Fprintf(w, "[fig9] download share, same ranking (LS): %s\n", fmtShares(r.FairnessRecipLS))
	fmt.Fprintf(w, "[fig11] upload share by 5-peer set (SS):  %s\n", fmtShares(r.FairnessUploadSS))

	fmt.Fprintf(w, "[fig10] unchokes~interested LS: n=%d pearson=%.3f max=%d mean=%.1f\n",
		r.UnchokeLS.N, r.UnchokeLS.Pearson, r.UnchokeLS.MaxUnch, r.UnchokeLS.MeanUnch)
	fmt.Fprintf(w, "[fig10] unchokes~interested SS: n=%d pearson=%.3f max=%d mean=%.1f\n",
		r.UnchokeSS.N, r.UnchokeSS.Pearson, r.UnchokeSS.MaxUnch, r.UnchokeSS.MeanUnch)

	if len(r.MsgCounts) > 0 {
		keys := make([]string, 0, len(r.MsgCounts))
		for k := range r.MsgCounts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "[msgs]")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, r.MsgCounts[k])
		}
		fmt.Fprintln(w)
	}

	if len(r.Faults) > 0 {
		keys := make([]string, 0, len(r.Faults))
		for k := range r.Faults {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "[faults]")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, r.Faults[k])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "[a4] initial seed served %d pieces, %d duplicates\n", r.SeedServes, r.DupSeedServes)
	if r.FinishedContrib > 0 || r.FinishedFree > 0 {
		fmt.Fprintf(w, "[swarm] mean download: contributors %.0f s (n=%d), free riders %.0f s (n=%d)\n",
			r.MeanDownloadContrib, r.FinishedContrib, r.MeanDownloadFree, r.FinishedFree)
	}
}

// JSONLine renders the complete report as a single line of JSON — the
// machine-readable sink suite runs write one line per run of. NaN and
// infinite floats (possible in correlation and share fields when a run has
// no data in some class) are replaced by zero, since JSON cannot represent
// them; the plain-text renderer applies the same convention.
func (r *Report) JSONLine() ([]byte, error) {
	clean := sanitizedCopy(reflect.ValueOf(*r)).Interface().(Report)
	return json.Marshal(&clean)
}

// MarshalAggregateLine renders one aggregate as a line for the JSONL
// sink, NaN/Inf-sanitized like Report.JSONLine. The Kind field
// distinguishes aggregate lines from per-run Report lines (which have no
// Kind) when both share a stream; Suite names the producing suite.
func MarshalAggregateLine(suite string, a Aggregate) ([]byte, error) {
	type line struct {
		Kind  string
		Suite string
		Aggregate
	}
	clean := sanitizedCopy(reflect.ValueOf(line{Kind: "aggregate", Suite: suite, Aggregate: a})).Interface().(line)
	return json.Marshal(&clean)
}

// sanitizedCopy deep-copies v, zeroing every NaN or infinite float so the
// result is JSON-encodable without touching the original's shared slices.
// It requires every reachable struct field to be exported (reflect cannot
// set unexported fields; Report and everything it embeds satisfy this, and
// the golden-digest tests exercise the full shape, so a violation fails
// loudly in CI rather than silently).
func sanitizedCopy(v reflect.Value) reflect.Value {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return v
		}
		out := reflect.New(v.Type().Elem())
		out.Elem().Set(sanitizedCopy(v.Elem()))
		return out
	case reflect.Interface:
		if v.IsNil() {
			return v
		}
		out := reflect.New(v.Type()).Elem()
		out.Set(sanitizedCopy(v.Elem()))
		return out
	case reflect.Float64, reflect.Float32:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			f = 0
		}
		out := reflect.New(v.Type()).Elem()
		out.SetFloat(f)
		return out
	case reflect.Slice:
		if v.IsNil() {
			return v
		}
		out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		for i := 0; i < v.Len(); i++ {
			out.Index(i).Set(sanitizedCopy(v.Index(i)))
		}
		return out
	case reflect.Map:
		if v.IsNil() {
			return v
		}
		out := reflect.MakeMapWithSize(v.Type(), v.Len())
		iter := v.MapRange()
		for iter.Next() {
			out.SetMapIndex(iter.Key(), sanitizedCopy(iter.Value()))
		}
		return out
	case reflect.Struct:
		out := reflect.New(v.Type()).Elem()
		for i := 0; i < v.NumField(); i++ {
			out.Field(i).Set(sanitizedCopy(v.Field(i)))
		}
		return out
	default:
		return v
	}
}

func fmtShares(shares []float64) string {
	if len(shares) == 0 {
		return "(no data)"
	}
	s := ""
	for i, v := range shares {
		if i > 0 {
			s += " "
		}
		if math.IsNaN(v) {
			v = 0
		}
		s += fmt.Sprintf("%.2f", v)
	}
	return s
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// SuiteReport is everything a suite run produces: the per-scenario
// reports in suite order plus cross-run aggregates (mean/stddev over the
// seed repeats of each configuration) and, when the suite mixes backends,
// the sim-vs-live cross-validation pairs.
type SuiteReport struct {
	Name        string
	Description string
	Reports     []*Report
	Aggregates  []Aggregate
	// CrossValidation pairs each live configuration with the sim twin
	// sharing its label — the lab's claim check: do real TCP swarms
	// reproduce the simulator's qualitative findings?
	CrossValidation []CrossPair
}

// CrossPair is one sim-vs-live pairing: two aggregates with the same
// Label, one per backend.
type CrossPair struct {
	Label string
	Sim   Aggregate
	Live  Aggregate
}

// crossValidate pairs aggregates that share a Label across backends, in
// first-appearance order of the live side. Labels with no twin (or with a
// duplicated one, which Register-time label discipline prevents) are
// skipped rather than guessed at.
func crossValidate(aggs []Aggregate) []CrossPair {
	simByLabel := map[string]*Aggregate{}
	for i := range aggs {
		if !aggs[i].Live {
			if _, dup := simByLabel[aggs[i].Label]; !dup {
				simByLabel[aggs[i].Label] = &aggs[i]
			}
		}
	}
	var out []CrossPair
	for i := range aggs {
		if !aggs[i].Live {
			continue
		}
		if sim := simByLabel[aggs[i].Label]; sim != nil {
			out = append(out, CrossPair{Label: aggs[i].Label, Sim: *sim, Live: aggs[i]})
		}
	}
	return out
}

// MetricStat summarizes one metric over the runs of an aggregation group.
type MetricStat struct {
	N                      int
	Mean, Stddev, Min, Max float64
}

func newMetricStat(xs []float64) MetricStat {
	st := MetricStat{N: len(xs)}
	if st.N == 0 {
		return st
	}
	st.Min, st.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < st.Min {
			st.Min = x
		}
		if x > st.Max {
			st.Max = x
		}
	}
	st.Mean = sum / float64(st.N)
	if st.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - st.Mean
			ss += d * d
		}
		st.Stddev = math.Sqrt(ss / float64(st.N-1))
	}
	return st
}

// AvailBand is one point of an aggregate availability envelope: the
// spread, across a configuration's seed repeats, of the per-run mean piece
// replication at the same sample index.
type AvailBand struct {
	// T is the mean sample time across the contributing runs.
	T float64
	// Min/Mean/Max band the runs' mean-copies series.
	Min, Mean, Max float64
}

// Aggregate summarizes every run of one scenario configuration (same
// Scenario modulo SeedOverride) inside a suite.
type Aggregate struct {
	// Label is the scenario's Label, or a derived "torrent=N" fallback.
	Label     string
	TorrentID int
	// Live marks configurations that ran on the real-TCP loopback
	// backend; a sim/live pair shares a Label and differs here.
	Live      bool
	Runs      int
	Completed int // runs where the local peer finished its download

	// LocalDownload is over completed runs only; ContribDownload and
	// FreeDownload are over runs where anyone in the class finished.
	LocalDownload   MetricStat
	ContribDownload MetricStat
	FreeDownload    MetricStat
	// EntropyAB / EntropyCD summarize the per-run a/b and c/d medians.
	EntropyAB MetricStat
	EntropyCD MetricStat
	// FirstPieceRatio summarizes PieceCDF.FirstOverAllP90 (the
	// first-pieces problem; > 1 means slow first pieces).
	FirstPieceRatio MetricStat

	// Fairness-share stats over the repeats: the top 5-peer set's share
	// of leecher-state uploads (Fig 9 top bar), of the reciprocation
	// downloads from the same ranking (Fig 9 bottom), and of seed-state
	// uploads (Fig 11). Runs without data in a class are skipped.
	TopSetUploadLS MetricStat
	TopSetRecipLS  MetricStat
	TopSetUploadSS MetricStat

	// AvailMeanCopies is the availability-series envelope: at each sample
	// index, the min/mean/max across runs of that run's mean piece-copy
	// count — the Figs 2-6 replication curve with a seed-spread band.
	// The envelope is truncated to the shortest run's series.
	AvailMeanCopies []AvailBand

	// Faults sums the runs' fault counters (chaos scenarios only; nil —
	// and omitted — everywhere else).
	Faults map[string]int `json:",omitempty"`
}

// scenarioKey identifies a scenario's aggregation group: the full
// configuration with the repeat seed cleared.
func scenarioKey(sc Scenario) Scenario {
	sc.SeedOverride = 0
	return sc
}

// String renders the key compactly for error messages.
func (a Aggregate) String() string {
	return fmt.Sprintf("%s (torrent %d, %d runs)", a.Label, a.TorrentID, a.Runs)
}

// AggregateReports groups reports by scenario configuration (Scenario
// modulo SeedOverride) and computes per-group statistics. Groups appear in
// first-appearance order of the input slice, so the result depends only on
// the input order — never on the completion order of a parallel run. Nil
// reports (failed runs) are skipped.
func AggregateReports(reports []*Report) []Aggregate {
	type group struct {
		label     string
		torrentID int
		live      bool
		completed int
		local     []float64
		contrib   []float64
		free      []float64
		entAB     []float64
		entCD     []float64
		firstOver []float64
		topUpLS   []float64
		topRecLS  []float64
		topUpSS   []float64
		avail     [][]AvailPoint
		faults    map[string]int
	}
	var order []Scenario
	groups := map[Scenario]*group{}
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		key := scenarioKey(rep.Scenario)
		g, ok := groups[key]
		if !ok {
			label := rep.Scenario.Label
			if label == "" {
				label = fmt.Sprintf("torrent=%d", rep.TorrentID)
			}
			g = &group{label: label, torrentID: rep.TorrentID, live: rep.Scenario.Live}
			groups[key] = g
			order = append(order, key)
		}
		if rep.LocalCompleted {
			g.completed++
			g.local = append(g.local, rep.LocalDownloadSeconds)
		}
		if rep.FinishedContrib > 0 {
			g.contrib = append(g.contrib, rep.MeanDownloadContrib)
		}
		if rep.FinishedFree > 0 {
			g.free = append(g.free, rep.MeanDownloadFree)
		}
		g.entAB = append(g.entAB, rep.Entropy.AOverB.P50)
		g.entCD = append(g.entCD, rep.Entropy.COverD.P50)
		g.firstOver = append(g.firstOver, rep.PieceCDF.FirstOverAllP90)
		if len(rep.FairnessUploadLS) > 0 {
			g.topUpLS = append(g.topUpLS, rep.FairnessUploadLS[0])
		}
		if len(rep.FairnessRecipLS) > 0 {
			g.topRecLS = append(g.topRecLS, rep.FairnessRecipLS[0])
		}
		if len(rep.FairnessUploadSS) > 0 {
			g.topUpSS = append(g.topUpSS, rep.FairnessUploadSS[0])
		}
		if len(rep.Availability) > 0 {
			g.avail = append(g.avail, rep.Availability)
		}
		for k, v := range rep.Faults {
			if g.faults == nil {
				g.faults = map[string]int{}
			}
			g.faults[k] += v
		}
	}
	out := make([]Aggregate, 0, len(order))
	for _, key := range order {
		g := groups[key]
		out = append(out, Aggregate{
			Label:           g.label,
			TorrentID:       g.torrentID,
			Live:            g.live,
			Runs:            len(g.entAB),
			Completed:       g.completed,
			LocalDownload:   newMetricStat(g.local),
			ContribDownload: newMetricStat(g.contrib),
			FreeDownload:    newMetricStat(g.free),
			EntropyAB:       newMetricStat(g.entAB),
			EntropyCD:       newMetricStat(g.entCD),
			FirstPieceRatio: newMetricStat(g.firstOver),
			TopSetUploadLS:  newMetricStat(g.topUpLS),
			TopSetRecipLS:   newMetricStat(g.topRecLS),
			TopSetUploadSS:  newMetricStat(g.topUpSS),
			AvailMeanCopies: availEnvelope(g.avail),
			Faults:          g.faults,
		})
	}
	return out
}

// availEnvelope bands the runs' mean-copies series point-by-point. Series
// are aligned by sample index (repeats of one configuration sample on the
// same cadence) and truncated to the shortest; live runs can have ragged
// lengths, so truncation rather than padding keeps every band fully
// populated.
func availEnvelope(series [][]AvailPoint) []AvailBand {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	for _, s := range series {
		if len(s) < n {
			n = len(s)
		}
	}
	out := make([]AvailBand, n)
	for i := 0; i < n; i++ {
		b := AvailBand{Min: series[0][i].Mean, Max: series[0][i].Mean}
		var tSum, vSum float64
		for _, s := range series {
			v := s[i].Mean
			vSum += v
			tSum += s[i].T
			if v < b.Min {
				b.Min = v
			}
			if v > b.Max {
				b.Max = v
			}
		}
		b.T = tSum / float64(len(series))
		b.Mean = vSum / float64(len(series))
		out[i] = b
	}
	return out
}

// WriteText renders the suite's aggregate table: one row per scenario
// configuration, mean±stddev over its seed repeats.
func (sr *SuiteReport) WriteText(w io.Writer) {
	runs := 0
	for _, rep := range sr.Reports {
		if rep != nil {
			runs++
		}
	}
	fmt.Fprintf(w, "== suite %s: %d runs, %d configurations\n", sr.Name, runs, len(sr.Aggregates))
	if sr.Description != "" {
		fmt.Fprintf(w, "# %s\n", sr.Description)
	}
	fmt.Fprintf(w, "# %-24s %7s %4s %4s  %-17s %-17s %-15s %-15s %s\n",
		"label", "torrent", "runs", "done", "local(s)", "contrib(s)", "a/b-p50", "c/d-p50", "first/all-p90")
	for _, a := range sr.Aggregates {
		fmt.Fprintf(w, "  %-24s %7d %4d %4d  %-17s %-17s %-15s %-15s %s\n",
			aggLabel(a), a.TorrentID, a.Runs, a.Completed,
			fmtStat(a.LocalDownload, 0), fmtStat(a.ContribDownload, 0),
			fmtStat(a.EntropyAB, 3), fmtStat(a.EntropyCD, 3),
			fmtStat(a.FirstPieceRatio, 2))
		if a.FreeDownload.N > 0 {
			fmt.Fprintf(w, "  %-24s free riders: mean download %s s\n", "", fmtStat(a.FreeDownload, 0))
		}
		if a.TopSetUploadLS.N > 0 || a.TopSetRecipLS.N > 0 || a.TopSetUploadSS.N > 0 {
			fmt.Fprintf(w, "  %-24s top-5-set shares: up-LS %s  recip-LS %s  up-SS %s\n", "",
				fmtStat(a.TopSetUploadLS, 2), fmtStat(a.TopSetRecipLS, 2), fmtStat(a.TopSetUploadSS, 2))
		}
		if len(a.AvailMeanCopies) > 0 {
			means := make([]float64, len(a.AvailMeanCopies))
			lo, hi := a.AvailMeanCopies[0].Min, a.AvailMeanCopies[0].Max
			for i, b := range a.AvailMeanCopies {
				means[i] = b.Mean
				lo = math.Min(lo, b.Min)
				hi = math.Max(hi, b.Max)
			}
			fmt.Fprintf(w, "  %-24s avail mean-copies: %s seed-band [%.1f .. %.1f]\n", "",
				analysis.Sparkline(means, 40), lo, hi)
		}
	}

	if len(sr.CrossValidation) > 0 {
		fmt.Fprintf(w, "\n== sim vs live cross-validation: %d pair(s)\n", len(sr.CrossValidation))
		fmt.Fprintf(w, "# %-20s %-7s %4s %4s  %-14s %-15s %-15s %-15s %s\n",
			"label", "backend", "runs", "done", "local(s)", "a/b-p50", "c/d-p50", "first/all-p90", "top-up-LS")
		row := func(backend string, a Aggregate) {
			fmt.Fprintf(w, "  %-20s %-7s %4d %4d  %-14s %-15s %-15s %-15s %s\n",
				a.Label, backend, a.Runs, a.Completed,
				fmtStat(a.LocalDownload, 1), fmtStat(a.EntropyAB, 3), fmtStat(a.EntropyCD, 3),
				fmtStat(a.FirstPieceRatio, 2), fmtStat(a.TopSetUploadLS, 2))
			if len(a.Faults) > 0 {
				keys := make([]string, 0, len(a.Faults))
				for k := range a.Faults {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				fmt.Fprintf(w, "  %-20s %-7s faults:", "", backend)
				for _, k := range keys {
					fmt.Fprintf(w, " %s=%d", k, a.Faults[k])
				}
				fmt.Fprintln(w)
			}
		}
		for _, p := range sr.CrossValidation {
			row("sim", p.Sim)
			row("live", p.Live)
		}
		fmt.Fprintf(w, "# NOTE: sim local(s) are simulated seconds at catalog scale, live local(s) wall-clock\n")
		fmt.Fprintf(w, "#       seconds at loopback scale; compare the dimensionless columns, not durations.\n")
	}
}

// aggLabel marks live-backend aggregates in suite tables.
func aggLabel(a Aggregate) string {
	if a.Live {
		return a.Label + " (live)"
	}
	return a.Label
}

// fmtStat renders "mean±stddev" at the given precision; "-" when empty.
func fmtStat(st MetricStat, prec int) string {
	if st.N == 0 {
		return "-"
	}
	if st.N == 1 {
		return fmt.Sprintf("%.*f", prec, st.Mean)
	}
	return fmt.Sprintf("%.*f±%.*f", prec, st.Mean, prec, st.Stddev)
}
