// Command btclient is the real TCP BitTorrent client built on the same
// rarest-first and choke implementations the simulator evaluates.
//
// Make a torrent file:
//
//	btclient -mode make -content data.bin -announce http://127.0.0.1:6969/announce -torrent data.torrent
//
// Seed it:
//
//	btclient -mode seed -torrent data.torrent -content data.bin [-listen 127.0.0.1:0] [-up 20480]
//
// Download it:
//
//	btclient -mode get -torrent data.torrent -out copy.bin [-peer host:port]
//
// With -debug addr, an auxiliary HTTP listener serves the runtime
// observability layer: /metrics (obs registry in Prometheus text format —
// announce/choke/piece counters, active-conn gauge, fault counters by
// kind) and /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on http.DefaultServeMux
	"os"
	"os/signal"
	"time"

	"rarestfirst/internal/client"
	"rarestfirst/internal/metainfo"
	"rarestfirst/internal/obs"
)

func main() {
	mode := flag.String("mode", "", "make | seed | get")
	torrentPath := flag.String("torrent", "", "path to the .torrent file")
	contentPath := flag.String("content", "", "content file (make/seed)")
	outPath := flag.String("out", "", "output file (get)")
	announce := flag.String("announce", "", "tracker announce URL (make; overrides for seed/get)")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	peer := flag.String("peer", "", "bootstrap peer host:port (optional)")
	up := flag.Float64("up", 20480, "upload cap in bytes/second (paper default 20 kB/s)")
	pieceSize := flag.Int("piecesize", metainfo.DefaultPieceSize, "piece size for -mode make")
	debugAddr := flag.String("debug", "", "serve /metrics and /debug/pprof/ on this address (empty: off)")
	flag.Parse()

	if *debugAddr != "" {
		// The registry must be live before client.New so the client
		// caches real metric handles instead of nil no-ops.
		reg := obs.NewRegistry()
		obs.SetDefault(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "debug listener: %v\n", err)
			}
		}()
		fmt.Printf("debug listener on %s (/metrics, /debug/pprof/)\n", *debugAddr)
	}

	var err error
	switch *mode {
	case "make":
		err = doMake(*contentPath, *announce, *torrentPath, *pieceSize)
	case "seed":
		err = doRun(*torrentPath, *contentPath, "", *announce, *listen, *peer, *up)
	case "get":
		err = doRun(*torrentPath, "", *outPath, *announce, *listen, *peer, *up)
	default:
		err = fmt.Errorf("unknown -mode %q (want make, seed or get)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func doMake(contentPath, announce, torrentPath string, pieceSize int) error {
	if contentPath == "" || torrentPath == "" {
		return fmt.Errorf("make: need -content and -torrent")
	}
	data, err := os.ReadFile(contentPath)
	if err != nil {
		return err
	}
	m, err := metainfo.Build(contentPath, announce, data, pieceSize)
	if err != nil {
		return err
	}
	if err := os.WriteFile(torrentPath, m.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d pieces of %d bytes, infohash %s\n",
		torrentPath, m.NumPieces(), m.Info.PieceLength, m.InfoHash())
	return nil
}

func doRun(torrentPath, contentPath, outPath, announce, listen, peer string, up float64) error {
	if torrentPath == "" {
		return fmt.Errorf("need -torrent")
	}
	raw, err := os.ReadFile(torrentPath)
	if err != nil {
		return err
	}
	m, err := metainfo.Unmarshal(raw)
	if err != nil {
		return err
	}
	opts := client.Options{Meta: m, UploadBps: up}
	seeding := contentPath != ""
	if seeding {
		content, err := os.ReadFile(contentPath)
		if err != nil {
			return err
		}
		opts.Content = content
	}
	c, err := client.New(opts)
	if err != nil {
		return err
	}
	url := announce
	if url == "" {
		url = m.Announce
	}
	if err := c.Start(listen, url); err != nil {
		return err
	}
	defer c.Stop()
	if peer != "" {
		c.AddPeer(peer)
	}
	fmt.Printf("listening on %s, infohash %s\n", c.Addr(), m.InfoHash())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\ninterrupted")
			return nil
		case <-tick.C:
			done, total := c.Progress()
			upB, downB := c.Stats()
			fmt.Printf("pieces %d/%d  up %d B  down %d B\n", done, total, upB, downB)
			if !seeding && c.Complete() {
				if outPath != "" {
					if err := os.WriteFile(outPath, c.Bytes(), 0o644); err != nil {
						return err
					}
					fmt.Printf("download complete; wrote %s\n", outPath)
				} else {
					fmt.Println("download complete")
				}
				return nil
			}
		}
	}
}
