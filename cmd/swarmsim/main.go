// Command swarmsim runs one instrumented swarm experiment and prints its
// report — the interactive front door to the reproduction.
//
// Usage:
//
//	swarmsim -torrent 7 [-scale bench] [-picker random] [-seedchoke old]
//	         [-leecherchoke tit-for-tat] [-freeriders 0.2] [-smartseed]
//	         [-localfreerider] [-seed 1234]
package main

import (
	"flag"
	"fmt"
	"os"

	"rarestfirst"
)

func main() {
	torrentID := flag.Int("torrent", 7, "Table I torrent id (1..26)")
	scaleName := flag.String("scale", "default", "default or bench")
	picker := flag.String("picker", "", "rarest-first | random | sequential | global-rarest")
	seedChoke := flag.String("seedchoke", "", "new | old")
	leecherChoke := flag.String("leecherchoke", "", "standard | tit-for-tat")
	freeRiders := flag.Float64("freeriders", 0, "fraction of leechers that never upload")
	smartSeed := flag.Bool("smartseed", false, "idealized coding/super-seed serve policy")
	localFreeRider := flag.Bool("localfreerider", false, "instrumented peer never uploads")
	seed := flag.Int64("seed", 0, "RNG seed override (0 = catalog default)")
	flag.Parse()

	var scale rarestfirst.Scale
	switch *scaleName {
	case "default":
		scale = rarestfirst.DefaultScale()
	case "bench":
		scale = rarestfirst.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	rep, err := rarestfirst.Run(rarestfirst.Scenario{
		TorrentID:         *torrentID,
		Scale:             scale,
		Picker:            *picker,
		SeedChoke:         *seedChoke,
		LeecherChoke:      *leecherChoke,
		FreeRiderFraction: *freeRiders,
		SmartSeedServe:    *smartSeed,
		LocalFreeRider:    *localFreeRider,
		SeedOverride:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.WriteText(os.Stdout)
}
