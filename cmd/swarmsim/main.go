// Command swarmsim runs instrumented swarm experiments and prints their
// reports — the interactive front door to the reproduction.
//
// Single run:
//
//	swarmsim -torrent 7 [-scale bench] [-picker random] [-seedchoke old]
//	         [-leecherchoke tit-for-tat] [-freeriders 0.2] [-smartseed]
//	         [-localfreerider] [-seed 1234] [-churn 2] [-seedup 0.5]
//
// Named scenario suites (see -list), fanned across a worker pool with
// multi-seed repeats and mean/stddev aggregation:
//
//	swarmsim -suite churn -seeds 1,2,3 [-workers 8] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"rarestfirst"
	"rarestfirst/internal/cliutil"
)

func main() {
	torrentID := flag.Int("torrent", 7, "Table I torrent id (1..26)")
	scaleName := flag.String("scale", "default", "default or bench")
	picker := flag.String("picker", "", "rarest-first | random | sequential | global-rarest")
	seedChoke := flag.String("seedchoke", "", "new | old")
	leecherChoke := flag.String("leecherchoke", "", "standard | tit-for-tat")
	freeRiders := flag.Float64("freeriders", 0, "fraction of leechers that never upload")
	smartSeed := flag.Bool("smartseed", false, "idealized coding/super-seed serve policy")
	localFreeRider := flag.Bool("localfreerider", false, "instrumented peer never uploads")
	seed := flag.Int64("seed", 0, "repeat seed, mixed with the torrent id (0 = catalog default)")
	churn := flag.Float64("churn", 0, "leecher arrival rate multiplier (0 = unchanged)")
	seedUp := flag.Float64("seedup", 0, "initial seed capacity multiplier (0 = unchanged)")
	list := flag.Bool("list", false, "list the registered scenario suites and exit")
	suiteName := flag.String("suite", "", "run a named scenario suite instead of a single torrent")
	seedList := flag.String("seeds", "", "comma-separated RNG seeds for suite repeats")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = NumCPU)")
	verbose := flag.Bool("v", false, "with -suite: print every per-run report, not just aggregates")
	flag.Parse()

	if *list {
		cliutil.PrintSuites(os.Stdout)
		return
	}

	scale, err := cliutil.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *suiteName != "" {
		seeds, err := cliutil.ParseSeeds(*seedList)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		suite, err := rarestfirst.NewSuite(*suiteName, rarestfirst.SuiteOptions{Scale: scale, Seeds: seeds})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sr, err := rarestfirst.Runner{Workers: *workers}.RunSuite(suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sr.WriteText(os.Stdout)
		if *verbose {
			for _, rep := range sr.Reports {
				fmt.Println()
				rep.WriteText(os.Stdout)
			}
		}
		return
	}

	rep, err := rarestfirst.Run(rarestfirst.Scenario{
		TorrentID:         *torrentID,
		Scale:             scale,
		Picker:            *picker,
		SeedChoke:         *seedChoke,
		LeecherChoke:      *leecherChoke,
		FreeRiderFraction: *freeRiders,
		SmartSeedServe:    *smartSeed,
		LocalFreeRider:    *localFreeRider,
		SeedOverride:      *seed,
		ChurnScale:        *churn,
		SeedUpScale:       *seedUp,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.WriteText(os.Stdout)
}
