// Command experiments regenerates every table and figure of the paper's
// evaluation section (Table I, Figs 1-11) plus the ablations A1-A5 from
// DESIGN.md, writing one plain-text artifact per experiment. All sweeps
// fan out across a core-bounded worker pool (the runs are independent
// deterministic simulations), so wall-clock time is bound by cores, not by
// a single goroutine; results are identical to serial execution.
//
// Usage:
//
//	experiments [-scale default|bench] [-torrents all|7,8,10] [-seeds 1,2,3]
//	            [-workers N] [-suite name] [-live] [-list] [-skip-ablations]
//	            [-out results] [-json runs.jsonl]
//	            [-progress 10s] [-metrics metrics.jsonl]
//
// With -seeds, every configuration repeats once per RNG seed and
// aggregates.txt reports mean/stddev over the repeats. With -suite, only
// the named scenario suite runs (-list shows the catalog). With -live,
// every live-* scenario family runs instead: real-TCP loopback swarms
// next to their simulator twins, with a sim-vs-live cross-validation
// section per suite. With -json, every executed run additionally appends
// one JSON line (the complete Report) to the given file, followed by one
// Kind="aggregate" line per suite configuration — the machine-readable
// sink external plotting consumes without parsing the text tables. Every
// sim run is deterministic given its seed; live runs are deterministic in
// everything but real-TCP timing.
//
// With -progress, a heartbeat line (elapsed wall time, runs finished,
// events fired, arrivals, peak lane width) prints to stderr every
// interval, so long batches like MegaSwarm narrate themselves. With
// -metrics, the process-wide obs registry is sampled on the same cadence
// (default 5s) into a JSONL time series. Both flags activate the runtime
// observability layer (internal/obs); it is off otherwise, and either way
// run results are byte-identical — metrics are observe-only.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rarestfirst"
	"rarestfirst/internal/adversary"
	"rarestfirst/internal/cliutil"
	"rarestfirst/internal/crash"
	"rarestfirst/internal/netem"
	"rarestfirst/internal/obs"
)

func main() {
	scaleName := flag.String("scale", "default", "experiment scale: default or bench")
	torrentList := flag.String("torrents", "all", "comma-separated Table I ids, or 'all'")
	outDir := flag.String("out", "results", "output directory")
	skipAblations := flag.Bool("skip-ablations", false, "skip the A1-A5 ablation runs")
	seedList := flag.String("seeds", "", "comma-separated RNG seeds for multi-seed repeats (empty = catalog seed)")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = NumCPU)")
	suiteName := flag.String("suite", "", "run only this scenario suite (see -list)")
	liveOnly := flag.Bool("live", false, "run the live-* and chaos-* families: real-TCP loopback swarms vs their sim twins")
	list := flag.Bool("list", false, "list the registered scenario suites and exit")
	jsonPath := flag.String("json", "", "also write one JSON line per run to this file")
	faults := flag.String("faults", "", "apply this named netem fault plan ("+netem.PlanNamesString()+") to every scenario that has none")
	adversaryName := flag.String("adversary", "", "mix this named Byzantine peer model ("+adversary.ModelNamesString()+") into every scenario that has none")
	crashesName := flag.String("crashes", "", "apply this named crash plan ("+crash.PlanNamesString()+") to every scenario that has none")
	progress := flag.Duration("progress", 0, "emit a heartbeat line (elapsed, runs, events fired, arrivals, peak lane width) every interval")
	metricsPath := flag.String("metrics", "", "sample the obs registry into this JSONL time-series file (cadence: -progress interval, default 5s)")
	flag.Parse()

	if *list {
		cliutil.PrintSuites(os.Stdout)
		return
	}

	scale, err := cliutil.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// ids == nil means "all": the catalog default. Keeping the sentinel
	// (instead of expanding to 1..26 here) lets -suite runs distinguish
	// an explicit selection from the default.
	ids, err := cliutil.ParseTorrents(*torrentList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	seeds, err := cliutil.ParseSeeds(*seedList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *liveOnly && (*suiteName != "" || *torrentList != "all") {
		fmt.Fprintln(os.Stderr, "-live runs the whole live-*/chaos-* family; it cannot be combined with -suite or -torrents")
		os.Exit(2)
	}
	if *faults != "" {
		if _, ok := netem.PlanByName(*faults); !ok {
			fmt.Fprintf(os.Stderr, "unknown fault plan %q (have: %s)\n", *faults, netem.PlanNamesString())
			os.Exit(2)
		}
		if *suiteName == "" && !*liveOnly {
			fmt.Fprintln(os.Stderr, "-faults applies to registry scenarios; combine it with -suite or -live")
			os.Exit(2)
		}
	}
	if *adversaryName != "" {
		if _, aerr := adversary.ModelByName(*adversaryName); aerr != nil {
			fmt.Fprintln(os.Stderr, aerr)
			os.Exit(2)
		}
		if *suiteName == "" && !*liveOnly {
			fmt.Fprintln(os.Stderr, "-adversary applies to registry scenarios; combine it with -suite or -live")
			os.Exit(2)
		}
	}
	if *crashesName != "" {
		if _, cerr := crash.PlanByName(*crashesName); cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			os.Exit(2)
		}
		if *suiteName == "" && !*liveOnly {
			fmt.Fprintln(os.Stderr, "-crashes applies to registry scenarios; combine it with -suite or -live")
			os.Exit(2)
		}
	}

	// -progress and -metrics both need the runtime observability layer:
	// install the process-wide registry before any swarm is built so
	// every layer caches live handles.
	if *progress > 0 || *metricsPath != "" {
		obs.SetDefault(obs.NewRegistry())
	}
	var stopMetrics func() error
	var metricsFile *os.File
	if *metricsPath != "" {
		metricsFile, err = os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cadence := *progress
		if cadence <= 0 {
			cadence = 5 * time.Second
		}
		stopMetrics = cliutil.StartMetricsJSONL(metricsFile, obs.Active(), cadence)
	}

	runner := rarestfirst.Runner{Workers: *workers, Heartbeat: *progress}
	sink := &jsonSink{path: *jsonPath}
	if *liveOnly {
		for _, name := range rarestfirst.SuiteNames() {
			if !strings.HasPrefix(name, "live-") && !strings.HasPrefix(name, "chaos-") &&
				!strings.HasPrefix(name, "adv-") && !strings.HasPrefix(name, "crash-") {
				continue
			}
			// Live suites carry their own wall-clock scales; only the
			// seed fan-out applies.
			if err = runSuite(*outDir, runner, name, rarestfirst.SuiteOptions{Seeds: seeds}, *faults, *adversaryName, *crashesName, sink); err != nil {
				break
			}
		}
	} else if *suiteName != "" {
		err = runSuite(*outDir, runner, *suiteName, rarestfirst.SuiteOptions{
			Scale: scale, Seeds: seeds, Torrents: ids,
		}, *faults, *adversaryName, *crashesName, sink)
	} else {
		err = run(*outDir, runner, scale, ids, seeds, !*skipAblations, sink)
	}
	if err == nil {
		err = sink.flush()
	}
	if stopMetrics != nil {
		if merr := stopMetrics(); err == nil {
			err = merr
		}
		if cerr := metricsFile.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsPath)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// jsonSink streams every executed run's report to the -json JSONL file as
// each sweep batch completes, so a failure mid-process keeps the lines
// already written. With no path configured it is a no-op.
type jsonSink struct {
	path string
	f    *os.File
	runs int
	err  error
}

// ensureOpen lazily creates the sink file; false means "skip" (no sink
// configured, a previous error, or the create itself failed).
func (s *jsonSink) ensureOpen() bool {
	if s.path == "" || s.err != nil {
		return false
	}
	if s.f == nil {
		s.f, s.err = os.Create(s.path)
	}
	return s.err == nil
}

func (s *jsonSink) add(reports ...*rarestfirst.Report) {
	if !s.ensureOpen() {
		return
	}
	if s.err = cliutil.WriteReportsJSONL(s.f, reports); s.err != nil {
		return
	}
	for _, rep := range reports {
		if rep != nil {
			s.runs++
		}
	}
}

// addAggregates appends the suite's Kind="aggregate" lines after its runs.
func (s *jsonSink) addAggregates(suite string, aggs []rarestfirst.Aggregate) {
	if len(aggs) == 0 || !s.ensureOpen() {
		return
	}
	s.err = cliutil.WriteAggregatesJSONL(s.f, suite, aggs)
}

func (s *jsonSink) flush() error {
	if s.f != nil {
		if err := s.f.Close(); s.err == nil {
			s.err = err
		}
	}
	if s.path != "" && s.err == nil {
		fmt.Fprintf(os.Stderr, "wrote %s (%d runs)\n", s.path, s.runs)
	}
	return s.err
}

// runSuite runs one named scenario suite and writes its aggregate table
// plus every per-run report. A nil o.Torrents (the -torrents default)
// leaves the suite's own torrent selection in place. A non-empty faults
// plan is applied to every scenario that does not already carry one, so
// -faults chaos turns any registry family into its chaos variant without
// clobbering the chaos-* suites' built-in plans; -adversary mixes a
// Byzantine model and -crashes a kill/restart schedule in the same way.
func runSuite(outDir string, runner rarestfirst.Runner, name string, o rarestfirst.SuiteOptions, faults, adversaryName, crashesName string, sink *jsonSink) error {
	suite, err := rarestfirst.NewSuite(name, o)
	if err != nil {
		return err
	}
	if faults != "" {
		for i := range suite.Scenarios {
			if suite.Scenarios[i].Faults == "" {
				suite.Scenarios[i].Faults = faults
			}
		}
	}
	if adversaryName != "" {
		for i := range suite.Scenarios {
			if suite.Scenarios[i].Adversary == "" {
				suite.Scenarios[i].Adversary = adversaryName
			}
		}
	}
	if crashesName != "" {
		for i := range suite.Scenarios {
			if suite.Scenarios[i].Crashes == "" {
				suite.Scenarios[i].Crashes = crashesName
			}
		}
	}
	fmt.Fprintf(os.Stderr, "suite %s: %d scenarios...\n", suite.Name, len(suite.Scenarios))
	// Per-suite peak-heap watermark (the sampler benchtraj uses, shared
	// via internal/obs). The GC it runs at start scopes the watermark to
	// this suite rather than a predecessor's uncollected garbage.
	wm := obs.StartMemWatermark(0, obs.Active())
	sr, err := runner.RunSuite(suite)
	wm.Stop()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "suite %s: peak heap %.1f MB\n", suite.Name, float64(wm.PeakHeapBytes())/(1<<20))
	sink.add(sr.Reports...)
	sink.addAggregates(sr.Name, sr.Aggregates)
	return withFile(outDir, "suite_"+name+".txt", func(w io.Writer) error {
		sr.WriteText(w)
		for _, rep := range sr.Reports {
			fmt.Fprintln(w)
			rep.WriteText(w)
		}
		return nil
	})
}

func run(outDir string, runner rarestfirst.Runner, scale rarestfirst.Scale, ids []int, seeds []int64, ablations bool, sink *jsonSink) error {
	if ids == nil {
		ids = make([]int, 26)
		for i := range ids {
			ids[i] = i + 1
		}
	}
	// Table I: the catalog itself.
	if err := withFile(outDir, "tableI.txt", writeTableI); err != nil {
		return err
	}

	// One full instrumented run per requested torrent (times the seed
	// repeats), fanned across the worker pool.
	catalog, err := rarestfirst.NewSuite("catalog", rarestfirst.SuiteOptions{
		Scale: scale, Seeds: seeds, Torrents: ids,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "catalog sweep: %d torrents x %d seeds...\n", len(ids), max(1, len(seeds)))
	wm := obs.StartMemWatermark(0, obs.Active())
	sr, err := runner.RunSuite(catalog)
	wm.Stop()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "catalog sweep: peak heap %.1f MB\n", float64(wm.PeakHeapBytes())/(1<<20))
	sink.add(sr.Reports...)
	sink.addAggregates(sr.Name, sr.Aggregates)

	// The figure files use the first seed's run of each torrent — the
	// same artifacts a serial single-seed sweep produces.
	repeats := max(1, len(seeds))
	reports := map[int]*rarestfirst.Report{}
	for i, id := range ids {
		reports[id] = sr.Reports[i*repeats]
	}
	for _, id := range ids {
		rep := reports[id]
		name := fmt.Sprintf("torrent%02d.txt", id)
		if err := withFile(outDir, name, func(w io.Writer) error {
			rep.WriteText(w)
			return nil
		}); err != nil {
			return err
		}
	}

	// Cross-seed aggregates (mean/stddev over repeats).
	if repeats > 1 {
		if err := withFile(outDir, "aggregates.txt", func(w io.Writer) error {
			sr.WriteText(w)
			return nil
		}); err != nil {
			return err
		}
	}

	// Fig 1: entropy summary across torrents.
	if err := withFile(outDir, "fig1_entropy.txt", func(w io.Writer) error {
		fmt.Fprintf(w, "# Fig 1: entropy characterization (percentiles of interest-time ratios)\n")
		fmt.Fprintf(w, "# id  state      n   a/b p20  p50  p80 |  c/d p20  p50  p80\n")
		for _, id := range ids {
			r := reports[id]
			fmt.Fprintf(w, "%4d  %-9s %4d  %7.3f %5.3f %5.3f | %8.3f %5.3f %5.3f\n",
				id, r.State, r.Entropy.AOverB.N,
				r.Entropy.AOverB.P20, r.Entropy.AOverB.P50, r.Entropy.AOverB.P80,
				r.Entropy.COverD.P20, r.Entropy.COverD.P50, r.Entropy.COverD.P80)
		}
		return nil
	}); err != nil {
		return err
	}

	// Figs 2-3 (torrent 8, transient) and 4-6 (torrent 7, steady) series;
	// Figs 7-8 (torrent 10) CDFs; 9-11 fairness/correlation per torrent.
	series := func(id int, name, header string) error {
		r := reports[id]
		if r == nil {
			return nil
		}
		return withFile(outDir, name, func(w io.Writer) error {
			fmt.Fprintln(w, header)
			fmt.Fprintf(w, "# t(s)  min  mean  max  rarest  peerset  globalrare\n")
			for _, p := range r.Availability {
				fmt.Fprintf(w, "%8.0f %4d %7.2f %4d %6d %6d %6d\n",
					p.T, p.Min, p.Mean, p.Max, p.RarestSize, p.PeerSet, p.GlobalRare)
			}
			return nil
		})
	}
	if err := series(8, "fig2_fig3_torrent8.txt",
		"# Figs 2-3: piece replication + rarest-set size, torrent 8 (transient)"); err != nil {
		return err
	}
	if err := series(7, "fig4_fig5_fig6_torrent7.txt",
		"# Figs 4-6: piece replication, peer set size, rarest-set size, torrent 7 (steady)"); err != nil {
		return err
	}
	if r := reports[10]; r != nil {
		if err := withFile(outDir, "fig7_fig8_torrent10.txt", func(w io.Writer) error {
			fmt.Fprintf(w, "# Figs 7-8: interarrival CDF summaries, torrent 10\n")
			fmt.Fprintf(w, "pieces: n=%d p50(all/first/last)=%.2f/%.2f/%.2f p90=%.2f/%.2f/%.2f first-vs-all(p90)=%.2fx last-vs-all=%.2fx\n",
				r.PieceCDF.N, r.PieceCDF.AllP50, r.PieceCDF.FirstP50, r.PieceCDF.LastP50,
				r.PieceCDF.AllP90, r.PieceCDF.FirstP90, r.PieceCDF.LastP90,
				r.PieceCDF.FirstOverAllP90, r.PieceCDF.LastOverAllP90)
			fmt.Fprintf(w, "blocks: n=%d p50(all/first/last)=%.2f/%.2f/%.2f p90=%.2f/%.2f/%.2f first-vs-all(p90)=%.2fx last-vs-all=%.2fx\n",
				r.BlockCDF.N, r.BlockCDF.AllP50, r.BlockCDF.FirstP50, r.BlockCDF.LastP50,
				r.BlockCDF.AllP90, r.BlockCDF.FirstP90, r.BlockCDF.LastP90,
				r.BlockCDF.FirstOverAllP90, r.BlockCDF.LastOverAllP90)
			return nil
		}); err != nil {
			return err
		}
	}
	if err := withFile(outDir, "fig9_fig11_fairness.txt", func(w io.Writer) error {
		fmt.Fprintf(w, "# Figs 9+11: upload contribution of 5-peer sets (ranked by received bytes)\n")
		fmt.Fprintf(w, "# id  LS upload shares | LS download shares (same sets) | SS upload shares\n")
		for _, id := range ids {
			r := reports[id]
			fmt.Fprintf(w, "%4d  %s | %s | %s\n", id,
				sharesStr(r.FairnessUploadLS), sharesStr(r.FairnessRecipLS), sharesStr(r.FairnessUploadSS))
		}
		return nil
	}); err != nil {
		return err
	}
	if err := withFile(outDir, "fig10_unchokes.txt", func(w io.Writer) error {
		fmt.Fprintf(w, "# Fig 10: unchoke count vs interested time (Pearson r), per torrent\n")
		fmt.Fprintf(w, "# id   LS: n      r   max | SS: n      r   max\n")
		for _, id := range ids {
			r := reports[id]
			fmt.Fprintf(w, "%4d  %6d %6.3f %5d | %6d %6.3f %5d\n", id,
				r.UnchokeLS.N, r.UnchokeLS.Pearson, r.UnchokeLS.MaxUnch,
				r.UnchokeSS.N, r.UnchokeSS.Pearson, r.UnchokeSS.MaxUnch)
		}
		return nil
	}); err != nil {
		return err
	}

	if !ablations {
		return nil
	}
	return runAblations(outDir, runner, scale, sink)
}

func sharesStr(shares []float64) string {
	if len(shares) == 0 {
		return "-"
	}
	parts := make([]string, len(shares))
	for i, v := range shares {
		parts[i] = fmt.Sprintf("%.2f", v)
	}
	return strings.Join(parts, " ")
}

func writeTableI(w io.Writer) error {
	fmt.Fprintf(w, "# Table I: torrent characteristics (paper values)\n")
	fmt.Fprintf(w, "# id  seeds  leechers    ratio  maxPS  sizeMB  state\n")
	for _, t := range rarestfirst.TableI() {
		fmt.Fprintf(w, "%4d %6d %9d %8.5f %6d %7d  %s\n",
			t.ID, t.Seeds, t.Leechers, t.Ratio, t.MaxPS, t.SizeMB, t.State)
	}
	return nil
}

// runAblations executes A1-A5 on representative torrents. Every grid is a
// registered scenario suite; all grids run through ONE worker-pool batch,
// then each section is formatted from its slice of the ordered results.
func runAblations(outDir string, runner rarestfirst.Runner, scale rarestfirst.Scale, sink *jsonSink) error {
	names := []string{"pickers", "pickers-startup", "seed-choke", "leecher-choke", "smart-seed", "freerider-sweep"}
	var all []rarestfirst.Scenario
	offsets := map[string][2]int{} // name -> [start, end) in all
	for _, name := range names {
		s, err := rarestfirst.NewSuite(name, rarestfirst.SuiteOptions{Scale: scale})
		if err != nil {
			return err
		}
		offsets[name] = [2]int{len(all), len(all) + len(s.Scenarios)}
		all = append(all, s.Scenarios...)
	}
	fmt.Fprintf(os.Stderr, "ablations: %d scenarios across %d suites...\n", len(all), len(names))
	reports, err := runner.Run(all)
	if err != nil {
		return err
	}
	sink.add(reports...)
	section := func(name string) []*rarestfirst.Report {
		off := offsets[name]
		return reports[off[0]:off[1]]
	}

	return withFile(outDir, "ablations.txt", func(w io.Writer) error {
		// A1: rarest first vs random vs sequential piece selection on the
		// steady single-seed torrent 10.
		fmt.Fprintf(w, "# A1: piece selection strategies, torrent 10\n")
		fmt.Fprintf(w, "# picker         entropy-a/b-p50  entropy-c/d-p50  mean-download(s)  local(s)\n")
		for _, rep := range section("pickers") {
			fmt.Fprintf(w, "%-16s %15.3f %16.3f %17.0f %9.0f\n",
				orDefault(rep.Scenario.Picker, rarestfirst.PickerRarestFirst),
				rep.Entropy.AOverB.P50, rep.Entropy.COverD.P50,
				rep.MeanDownloadContrib, rep.LocalDownloadSeconds)
		}

		// A1b: the same pickers on a torrent in STARTUP phase, where piece
		// scarcity is the binding constraint (§IV-A.2.a: rarest first
		// "minimizes the time spent in transient state").
		fmt.Fprintf(w, "\n# A1b: piece selection during startup, torrent 8 (transient)\n")
		fmt.Fprintf(w, "# picker         rare-drained  dup-serve-frac  mean-copies-end\n")
		for _, rep := range section("pickers-startup") {
			drained, meanEnd := 0, 0.0
			if av := rep.Availability; len(av) > 1 {
				drained = av[0].GlobalRare - av[len(av)-1].GlobalRare
				meanEnd = av[len(av)-1].Mean
			}
			frac := 0.0
			if rep.SeedServes > 0 {
				frac = float64(rep.DupSeedServes) / float64(rep.SeedServes)
			}
			fmt.Fprintf(w, "%-16s %12d %15.2f %16.1f\n",
				orDefault(rep.Scenario.Picker, rarestfirst.PickerRarestFirst), drained, frac, meanEnd)
		}

		// A2: new vs old seed-state choke algorithm under free riders.
		fmt.Fprintf(w, "\n# A2: seed-state algorithm, torrent 14, 20%% free riders\n")
		fmt.Fprintf(w, "# seed-choke  ss-top5-share  free-mean(s)  contrib-mean(s)\n")
		for _, rep := range section("seed-choke") {
			top5 := 0.0
			if len(rep.FairnessUploadSS) > 0 {
				top5 = rep.FairnessUploadSS[0]
			}
			fmt.Fprintf(w, "%-11s %14.2f %13.0f %16.0f\n",
				orDefault(rep.Scenario.SeedChoke, rarestfirst.SeedChokeNew), top5,
				rep.MeanDownloadFree, rep.MeanDownloadContrib)
		}

		// A3: standard choke vs bit-level tit-for-tat. The decisive column
		// is local(s): the instrumented peer uploads at only 20 kB/s (an
		// asymmetric-capacity home user), and under tit-for-tat it cannot
		// use the swarm's excess capacity — the paper's §IV-B.1 argument.
		fmt.Fprintf(w, "\n# A3: leecher-state algorithm, torrent 14 (local peer = slow 20 kB/s uploader)\n")
		fmt.Fprintf(w, "# leecher-choke  mean-download(s)  finished  local(s)\n")
		for _, rep := range section("leecher-choke") {
			fmt.Fprintf(w, "%-15s %17.0f %9d %9.0f\n",
				orDefault(rep.Scenario.LeecherChoke, rarestfirst.LeecherChokeStandard),
				rep.MeanDownloadContrib, rep.FinishedContrib, rep.LocalDownloadSeconds)
		}

		// A4: duplicate pieces served by the initial seed in transient
		// state, with and without the idealized coding/super-seed policy.
		fmt.Fprintf(w, "\n# A4: initial-seed duplicate service, torrent 8 (transient)\n")
		fmt.Fprintf(w, "# policy       serves  duplicates  dup-frac\n")
		for _, rep := range section("smart-seed") {
			name := "client-pick"
			if rep.Scenario.SmartSeedServe {
				name = "smart-serve"
			}
			frac := 0.0
			if rep.SeedServes > 0 {
				frac = float64(rep.DupSeedServes) / float64(rep.SeedServes)
			}
			fmt.Fprintf(w, "%-12s %7d %11d %9.2f\n", name, rep.SeedServes, rep.DupSeedServes, frac)
		}

		// A5: free-rider penalty under the standard algorithms.
		fmt.Fprintf(w, "\n# A5: free riders, torrent 14, varying fraction\n")
		fmt.Fprintf(w, "# frac  contrib-mean(s)  free-mean(s)  penalty\n")
		for _, rep := range section("freerider-sweep") {
			penalty := 0.0
			if rep.MeanDownloadContrib > 0 {
				penalty = rep.MeanDownloadFree / rep.MeanDownloadContrib
			}
			fmt.Fprintf(w, "%5.2f %16.0f %13.0f %8.2fx\n", rep.Scenario.FreeRiderFraction,
				rep.MeanDownloadContrib, rep.MeanDownloadFree, penalty)
		}
		return nil
	})
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func withFile(dir, name string, fn func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(dir, name))
	return f.Close()
}
