package main

import "testing"

func TestParseTorrentsAll(t *testing.T) {
	ids, err := parseTorrents("all")
	if err != nil || len(ids) != 26 || ids[0] != 1 || ids[25] != 26 {
		t.Fatalf("parseTorrents(all) = %v, %v", ids, err)
	}
}

func TestParseTorrentsList(t *testing.T) {
	ids, err := parseTorrents("7, 8,10")
	if err != nil || len(ids) != 3 || ids[0] != 7 || ids[2] != 10 {
		t.Fatalf("parseTorrents = %v, %v", ids, err)
	}
}

func TestParseTorrentsErrors(t *testing.T) {
	for _, in := range []string{"", "0", "27", "x", "7,,8"} {
		if _, err := parseTorrents(in); err == nil {
			t.Errorf("parseTorrents(%q) accepted", in)
		}
	}
}

func TestSharesStr(t *testing.T) {
	if got := sharesStr(nil); got != "-" {
		t.Fatalf("empty = %q", got)
	}
	if got := sharesStr([]float64{0.5, 0.25}); got != "0.50 0.25" {
		t.Fatalf("got %q", got)
	}
}
