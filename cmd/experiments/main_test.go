package main

import "testing"

func TestSharesStr(t *testing.T) {
	if got := sharesStr(nil); got != "-" {
		t.Fatalf("empty = %q", got)
	}
	if got := sharesStr([]float64{0.5, 0.25}); got != "0.50 0.25" {
		t.Fatalf("got %q", got)
	}
}

func TestJSONSinkDisabledIsNoOp(t *testing.T) {
	s := &jsonSink{}
	s.add(nil)
	if err := s.flush(); err != nil {
		t.Fatal(err)
	}
	if s.f != nil || s.runs != 0 {
		t.Fatalf("disabled sink opened a file or counted runs: %+v", s)
	}
}
