//go:build !linux

package main

// peakRSSBytes is unavailable off Linux (ru_maxrss units differ per OS and
// some platforms lack getrusage); snapshots recorded there simply omit the
// peak_rss_bytes column.
func peakRSSBytes() uint64 { return 0 }
