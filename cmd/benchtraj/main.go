// Command benchtraj records the repository's performance trajectory: it
// times the fixed PerfCases scenario set (the same workloads
// BenchmarkLargeSwarm and the bench-scale canaries run under `go test
// -bench`) and writes one machine-readable snapshot — BENCH_<PR>.json —
// with ns/op, allocs/op, bytes/op and the peak live heap per benchmark.
//
// Every PR that touches a hot path appends a snapshot, so regressions are
// a diff away:
//
//	go run ./cmd/benchtraj -out BENCH_PR4.json -baseline BENCH_PR2.json
//	go run ./cmd/benchtraj -check BENCH_PR4.json
//	go run ./cmd/benchtraj -trajectory
//
// -baseline embeds a prior snapshot's results in the new file, so each
// snapshot carries its own before/after comparison. -check validates that
// an existing snapshot parses and is well-formed (the CI smoke job's
// gate). -trajectory loads every committed BENCH_PR*.json, prints the
// per-benchmark history with deltas, and exits nonzero if the newest
// snapshot regressed wall time by more than -regress against the previous
// one — the CI perf gate; -latest appends an uncommitted snapshot (CI's
// freshly measured BENCH_CI.json) as the newest entry, with a looser
// tolerance to absorb cross-machine variance. -cpuprofile/-memprofile
// write pprof profiles of the measurement loop so perf work starts from a
// profile, not a guess.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"rarestfirst"
	"rarestfirst/internal/obs"
)

// Result is one benchmark's row of a snapshot.
type Result struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	// Scheduler occupancy at the end of the last iteration: event-heap
	// size vs live entries and timer-pool reuse (Report.Events).
	EventHeapSize int    `json:"event_heap_size"`
	EventLive     int    `json:"event_live"`
	TimersReused  uint64 `json:"timers_reused"`
	// Lane stats (zero unless the case runs with choke-round lanes):
	// the widest same-instant batch of choke rounds and the number of
	// lane batches executed — how much intra-swarm parallelism the run
	// exposed.
	PeakLaneWidth int    `json:"peak_lane_width,omitempty"`
	LaneBatches   uint64 `json:"lane_batches,omitempty"`
	// Deferred-retiming stats (PR 5): flush passes with work, the node
	// shards they processed and the widest single-flush dirty set.
	DirtyFlushes   uint64 `json:"dirty_flushes,omitempty"`
	RetimeBatches  uint64 `json:"retime_batches,omitempty"`
	PeakShardWidth int    `json:"peak_shard_width,omitempty"`
	// PeakRSSBytes is the process's high-water resident set (getrusage)
	// after the case ran — the memory number the 100k-peer milestone is
	// gated on. Cumulative across a run of cases (RSS never shrinks on
	// Linux), so only the growth between consecutive rows is attributable
	// to one case; recorded per row because the case order is fixed.
	// 0 on platforms without a usable ru_maxrss.
	PeakRSSBytes uint64 `json:"peak_rss_bytes,omitempty"`
	// Sharded-heap stats (PR 6): keyed subheap count, the largest single
	// keyed subheap, and the events delivered through the loser-tree
	// merge.
	Shards        int    `json:"shards,omitempty"`
	PeakShardHeap int    `json:"peak_shard_heap,omitempty"`
	MergePops     uint64 `json:"merge_pops,omitempty"`
}

// Snapshot is the whole BENCH_*.json document.
type Snapshot struct {
	Schema   string            `json:"schema"`
	Label    string            `json:"label"`
	Go       string            `json:"go"`
	GOOS     string            `json:"goos"`
	GOARCH   string            `json:"goarch"`
	Results  []Result          `json:"results"`
	Baseline map[string]Result `json:"baseline,omitempty"`
	// BaselineLabel names the snapshot the Baseline rows came from.
	BaselineLabel string `json:"baseline_label,omitempty"`
}

const schemaID = "rarestfirst-bench/v1"

func main() {
	out := flag.String("out", "BENCH_PR2.json", "snapshot file to write")
	label := flag.String("label", "", "snapshot label (default: derived from -out)")
	baseline := flag.String("baseline", "", "prior snapshot whose results to embed as the baseline")
	check := flag.String("check", "", "validate an existing snapshot file and exit")
	casesFlag := flag.String("cases", "", "comma-separated substrings selecting perf cases (default all)")
	benchFlag := flag.String("bench", "", "regexp selecting benchmarks by name, like `go test -bench`: restricts which perf cases record measures AND which rows -trajectory prints and gates (default all)")
	minTime := flag.Duration("mintime", time.Second, "minimum measurement time per case")
	maxIters := flag.Int("maxiters", 100, "iteration cap per case")
	trajectory := flag.Bool("trajectory", false, "print the committed BENCH_PR*.json history with deltas; exit 1 on wall-time regression")
	trajDir := flag.String("dir", ".", "directory -trajectory scans for BENCH_PR*.json snapshots")
	latest := flag.String("latest", "", "extra snapshot file -trajectory appends as the newest chain entry (e.g. a freshly measured BENCH_CI.json)")
	regress := flag.Float64("regress", 0.20, "wall-time regression tolerance for -trajectory (0.20 = +20%)")
	regressHeap := flag.Float64("regress-heap", 0.20, "peak-heap regression tolerance for -trajectory (0.20 = +20%); rows without a peak-heap measurement are skipped")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the measurement loop to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the measurement loop to this file")
	flag.Parse()

	var benchRE *regexp.Regexp
	if *benchFlag != "" {
		var err error
		if benchRE, err = regexp.Compile(*benchFlag); err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: bad -bench regexp: %v\n", err)
			os.Exit(1)
		}
	}

	if *check != "" {
		if err := checkSnapshot(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: well-formed snapshot\n", *check)
		return
	}
	if *trajectory {
		if err := runTrajectory(*trajDir, *latest, *regress, *regressHeap, benchRE); err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
			os.Exit(1)
		}
		return
	}
	// record uses defers for the profile teardown, so every error path
	// flushes a valid CPU profile before the exit below.
	if err := record(*out, *label, *baseline, *casesFlag, benchRE, *cpuProfile, *memProfile, *minTime, *maxIters); err != nil {
		fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
		os.Exit(1)
	}
}

// record measures the selected perf cases and writes the snapshot,
// optionally under a CPU profile and followed by a heap profile.
func record(out, label, baseline, casesFlag string, benchRE *regexp.Regexp, cpuProfile, memProfile string, minTime time.Duration, maxIters int) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	snap := Snapshot{
		Schema: schemaID,
		Label:  label,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	if snap.Label == "" {
		snap.Label = strings.TrimSuffix(strings.TrimPrefix(out, "BENCH_"), ".json")
	}
	if baseline != "" {
		base, err := readSnapshot(baseline)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		snap.Baseline = map[string]Result{}
		for _, r := range base.Results {
			snap.Baseline[r.Name] = r
		}
		snap.BaselineLabel = base.Label
	}

	for _, pc := range rarestfirst.PerfCases() {
		if !selected(pc.Name, casesFlag) {
			continue
		}
		if benchRE != nil && !benchRE.MatchString(pc.Name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchtraj: running %s...\n", pc.Name)
		res, err := measure(pc, minTime, maxIters)
		if err != nil {
			return fmt.Errorf("%s: %w", pc.Name, err)
		}
		fmt.Fprintf(os.Stderr, "benchtraj: %-18s %3d iters  %12.0f ns/op  %10.0f allocs/op  %11.0f B/op  peak heap %d MB\n",
			res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.PeakHeapBytes>>20)
		snap.Results = append(snap.Results, res)
	}
	if len(snap.Results) == 0 {
		return fmt.Errorf("no cases selected")
	}

	raw, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchtraj: wrote %s\n", out)

	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtraj: wrote %s\n", memProfile)
	}
	return nil
}

// prLabel matches the committed trajectory snapshots (BENCH_PR4.json ->
// 4). Ad-hoc snapshots (BENCH_CI.json, scratch files) have no PR number
// and stay out of the regression chain.
var prLabel = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// runTrajectory loads every BENCH_PR*.json under dir in PR order —
// appending the optional latest snapshot file (a freshly measured
// BENCH_CI.json) as the newest entry — prints each benchmark's ns/op and
// allocs/op history with deltas between consecutive snapshots, and
// returns an error if any benchmark in the newest snapshot is more than
// tol slower — or holds more than tolHeap more peak heap — than in the
// previous one. Peak-heap rows of 0 (snapshots predating the column, or
// sampler misses) skip the heap comparison rather than fake a baseline. A
// non-nil benchRE restricts both the printout and the gate to matching
// benchmark names (the bench-smoke job uses it to gate only the
// swarm-scale benchmarks).
func runTrajectory(dir, latest string, tol, tolHeap float64, benchRE *regexp.Regexp) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type chainEntry struct {
		name string
		pr   int
		rows map[string]Result
	}
	load := func(path, display string, pr int) (chainEntry, error) {
		snap, err := readSnapshot(path)
		if err != nil {
			return chainEntry{}, fmt.Errorf("%s: %w", display, err)
		}
		if snap.Schema != schemaID {
			return chainEntry{}, fmt.Errorf("%s: schema %q, want %q", display, snap.Schema, schemaID)
		}
		ce := chainEntry{name: display, pr: pr, rows: map[string]Result{}}
		for _, r := range snap.Results {
			ce.rows[r.Name] = r
		}
		return ce, nil
	}
	var chain []chainEntry
	for _, e := range entries {
		m := prLabel.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		pr, _ := strconv.Atoi(m[1])
		ce, err := load(filepath.Join(dir, e.Name()), fmt.Sprintf("PR%d", pr), pr)
		if err != nil {
			return err
		}
		chain = append(chain, ce)
	}
	if len(chain) == 0 {
		return fmt.Errorf("no BENCH_PR*.json snapshots in %s", dir)
	}
	sort.Slice(chain, func(i, j int) bool { return chain[i].pr < chain[j].pr })
	if latest != "" {
		// Refuse a -latest file the scan already loaded: appending it
		// again would gate the newest snapshot against itself (0% delta)
		// and silently skip the real newest-vs-previous comparison.
		if m := prLabel.FindStringSubmatch(filepath.Base(latest)); m != nil {
			if abs, err := filepath.Abs(latest); err == nil {
				if dirAbs, err := filepath.Abs(dir); err == nil && filepath.Dir(abs) == dirAbs {
					return fmt.Errorf("-latest %s is already part of the committed chain; drop the flag", latest)
				}
			}
		}
		ce, err := load(latest, filepath.Base(latest), chain[len(chain)-1].pr+1)
		if err != nil {
			return err
		}
		chain = append(chain, ce)
	}

	seen := map[string]bool{}
	var names []string
	for _, ce := range chain {
		for name := range ce.rows {
			if benchRE != nil && !benchRE.MatchString(name) {
				continue
			}
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no benchmark matches -bench")
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		fmt.Printf("%s\n", name)
		var prev *Result
		prevName := ""
		for i, ce := range chain {
			r, ok := ce.rows[name]
			if !ok {
				continue
			}
			line := fmt.Sprintf("  %-12s %14.0f ns/op %12.0f allocs/op", ce.name, r.NsPerOp, r.AllocsPerOp)
			if r.PeakHeapBytes > 0 {
				line += fmt.Sprintf(" %8d MB-peak", r.PeakHeapBytes>>20)
			}
			if prev != nil && prev.NsPerOp > 0 {
				dNs := r.NsPerOp/prev.NsPerOp - 1
				dAl := 0.0
				if prev.AllocsPerOp > 0 {
					dAl = r.AllocsPerOp/prev.AllocsPerOp - 1
				}
				line += fmt.Sprintf("   (%+6.1f%% ns, %+6.1f%% allocs)", 100*dNs, 100*dAl)
				if i == len(chain)-1 && dNs > tol {
					regressions = append(regressions,
						fmt.Sprintf("%s: %s is %.1f%% slower than %s (tolerance %.0f%%)",
							name, ce.name, 100*dNs, prevName, 100*tol))
				}
				if i == len(chain)-1 && r.PeakHeapBytes > 0 && prev.PeakHeapBytes > 0 {
					if dHeap := float64(r.PeakHeapBytes)/float64(prev.PeakHeapBytes) - 1; dHeap > tolHeap {
						regressions = append(regressions,
							fmt.Sprintf("%s: %s peak heap is %.1f%% above %s (tolerance %.0f%%)",
								name, ce.name, 100*dHeap, prevName, 100*tolHeap))
					}
				}
			}
			fmt.Println(line)
			rr := r
			prev, prevName = &rr, ce.name
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("perf regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	fmt.Printf("trajectory: %d snapshots, %d benchmarks, newest within %.0f%% ns / %.0f%% peak-heap of baseline\n",
		len(chain), len(names), 100*tol, 100*tolHeap)
	return nil
}

func selected(name, filter string) bool {
	if strings.TrimSpace(filter) == "" {
		return true
	}
	for _, part := range strings.Split(filter, ",") {
		if part = strings.TrimSpace(part); part != "" && strings.Contains(name, part) {
			return true
		}
	}
	return false
}

// measure times repeated runs of one case. Allocation counts come from the
// runtime's own counters (malloc count / total-alloc deltas across the
// measurement window); peak heap is the maximum live HeapAlloc the shared
// obs.MemWatermark 50 ms sampler observed, a lower bound that is accurate
// for runs much longer than the sampling period. (StartMemWatermark runs
// a GC first, so the sampler never credits this case with the previous
// case's uncollected heap.)
func measure(pc rarestfirst.PerfCase, minTime time.Duration, maxIters int) (Result, error) {
	wm := obs.StartMemWatermark(obs.DefaultMemInterval, nil)

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	var last *rarestfirst.Report
	for iters == 0 || (time.Since(start) < minTime && iters < maxIters) {
		sc := pc.Scenario
		// Decorrelate iterations the same way bench_test.go does, so both
		// measurement paths sample identical swarms.
		sc.SeedOverride = int64(1000 + iters)
		rep, err := rarestfirst.Run(sc)
		if err != nil {
			wm.Stop()
			return Result{}, err
		}
		last = rep
		iters++
	}
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	wm.Stop()

	n := float64(iters)
	return Result{
		Name:           pc.Name,
		Iterations:     iters,
		NsPerOp:        float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp:    float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / n,
		PeakHeapBytes:  wm.PeakHeapBytes(),
		EventHeapSize:  last.Events.HeapSize,
		EventLive:      last.Events.Live,
		TimersReused:   last.Events.TimersReused,
		PeakLaneWidth:  last.Events.PeakLaneWidth,
		LaneBatches:    last.Events.LaneBatches,
		DirtyFlushes:   last.Events.DirtyFlushes,
		RetimeBatches:  last.Events.RetimeBatches,
		PeakShardWidth: last.Events.PeakShardWidth,
		PeakRSSBytes:   obs.PeakRSSBytes(),
		Shards:         last.Events.Shards,
		PeakShardHeap:  last.Events.PeakShardHeap,
		MergePops:      last.Events.MergePops,
	}, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// checkSnapshot is the CI well-formedness gate: the file must parse,
// carry the current schema, and every row it does contain must be a real
// measurement. Rows are NOT required to cover every current perf case:
// committed snapshots predate cases added by later PRs (BENCH_PR2.json
// has no HugeSwarm row), and the trajectory gate handles missing rows by
// skipping the comparison.
func checkSnapshot(path string) error {
	snap, err := readSnapshot(path)
	if err != nil {
		return err
	}
	if snap.Schema != schemaID {
		return fmt.Errorf("schema %q, want %q", snap.Schema, schemaID)
	}
	if len(snap.Results) == 0 {
		return fmt.Errorf("no results")
	}
	known := map[string]bool{}
	for _, pc := range rarestfirst.PerfCases() {
		known[pc.Name] = true
	}
	matched := false
	for _, r := range snap.Results {
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			return fmt.Errorf("case %s: empty measurement", r.Name)
		}
		if known[r.Name] {
			matched = true
		}
	}
	if !matched {
		return fmt.Errorf("no result matches any current perf case")
	}
	return nil
}
