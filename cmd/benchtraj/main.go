// Command benchtraj records the repository's performance trajectory: it
// times the fixed PerfCases scenario set (the same workloads
// BenchmarkLargeSwarm and the bench-scale canaries run under `go test
// -bench`) and writes one machine-readable snapshot — BENCH_<PR>.json —
// with ns/op, allocs/op, bytes/op and the peak live heap per benchmark.
//
// Every PR that touches a hot path appends a snapshot, so regressions are
// a diff away:
//
//	go run ./cmd/benchtraj -out BENCH_PR2.json -baseline BENCH_PR1.json
//	go run ./cmd/benchtraj -check BENCH_PR2.json
//
// -baseline embeds a prior snapshot's results in the new file, so each
// snapshot carries its own before/after comparison. -check validates that
// an existing snapshot parses and is complete (the CI smoke job's
// well-formedness gate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"rarestfirst"
)

// Result is one benchmark's row of a snapshot.
type Result struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	// Scheduler occupancy at the end of the last iteration: event-heap
	// size vs live entries and timer-pool reuse (Report.Events).
	EventHeapSize int    `json:"event_heap_size"`
	EventLive     int    `json:"event_live"`
	TimersReused  uint64 `json:"timers_reused"`
}

// Snapshot is the whole BENCH_*.json document.
type Snapshot struct {
	Schema   string            `json:"schema"`
	Label    string            `json:"label"`
	Go       string            `json:"go"`
	GOOS     string            `json:"goos"`
	GOARCH   string            `json:"goarch"`
	Results  []Result          `json:"results"`
	Baseline map[string]Result `json:"baseline,omitempty"`
	// BaselineLabel names the snapshot the Baseline rows came from.
	BaselineLabel string `json:"baseline_label,omitempty"`
}

const schemaID = "rarestfirst-bench/v1"

func main() {
	out := flag.String("out", "BENCH_PR2.json", "snapshot file to write")
	label := flag.String("label", "", "snapshot label (default: derived from -out)")
	baseline := flag.String("baseline", "", "prior snapshot whose results to embed as the baseline")
	check := flag.String("check", "", "validate an existing snapshot file and exit")
	casesFlag := flag.String("cases", "", "comma-separated substrings selecting perf cases (default all)")
	minTime := flag.Duration("mintime", time.Second, "minimum measurement time per case")
	maxIters := flag.Int("maxiters", 100, "iteration cap per case")
	flag.Parse()

	if *check != "" {
		if err := checkSnapshot(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: well-formed snapshot\n", *check)
		return
	}

	snap := Snapshot{
		Schema: schemaID,
		Label:  *label,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	if snap.Label == "" {
		snap.Label = strings.TrimSuffix(strings.TrimPrefix(*out, "BENCH_"), ".json")
	}
	if *baseline != "" {
		base, err := readSnapshot(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		snap.Baseline = map[string]Result{}
		for _, r := range base.Results {
			snap.Baseline[r.Name] = r
		}
		snap.BaselineLabel = base.Label
	}

	for _, pc := range rarestfirst.PerfCases() {
		if !selected(pc.Name, *casesFlag) {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchtraj: running %s...\n", pc.Name)
		res, err := measure(pc, *minTime, *maxIters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", pc.Name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchtraj: %-18s %3d iters  %12.0f ns/op  %10.0f allocs/op  %11.0f B/op  peak heap %d MB\n",
			res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.PeakHeapBytes>>20)
		snap.Results = append(snap.Results, res)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchtraj: no cases selected")
		os.Exit(1)
	}

	raw, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchtraj: wrote %s\n", *out)
}

func selected(name, filter string) bool {
	if strings.TrimSpace(filter) == "" {
		return true
	}
	for _, part := range strings.Split(filter, ",") {
		if part = strings.TrimSpace(part); part != "" && strings.Contains(name, part) {
			return true
		}
	}
	return false
}

// measure times repeated runs of one case. Allocation counts come from the
// runtime's own counters (malloc count / total-alloc deltas across the
// measurement window); peak heap is the maximum live HeapAlloc a 50 ms
// sampler observed, a lower bound that is accurate for runs much longer
// than the sampling period.
func measure(pc rarestfirst.PerfCase, minTime time.Duration, maxIters int) (Result, error) {
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	var last *rarestfirst.Report
	for iters == 0 || (time.Since(start) < minTime && iters < maxIters) {
		sc := pc.Scenario
		// Decorrelate iterations the same way bench_test.go does, so both
		// measurement paths sample identical swarms.
		sc.SeedOverride = int64(1000 + iters)
		rep, err := rarestfirst.Run(sc)
		if err != nil {
			close(stop)
			<-done
			return Result{}, err
		}
		last = rep
		iters++
	}
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	close(stop)
	<-done

	n := float64(iters)
	return Result{
		Name:          pc.Name,
		Iterations:    iters,
		NsPerOp:       float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / n,
		PeakHeapBytes: peak.Load(),
		EventHeapSize: last.Events.HeapSize,
		EventLive:     last.Events.Live,
		TimersReused:  last.Events.TimersReused,
	}, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// checkSnapshot is the CI well-formedness gate: the file must parse, carry
// the current schema and contain a complete result row per perf case.
func checkSnapshot(path string) error {
	snap, err := readSnapshot(path)
	if err != nil {
		return err
	}
	if snap.Schema != schemaID {
		return fmt.Errorf("schema %q, want %q", snap.Schema, schemaID)
	}
	byName := map[string]Result{}
	for _, r := range snap.Results {
		byName[r.Name] = r
	}
	for _, pc := range rarestfirst.PerfCases() {
		r, ok := byName[pc.Name]
		if !ok {
			return fmt.Errorf("missing result for case %s", pc.Name)
		}
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			return fmt.Errorf("case %s: empty measurement", pc.Name)
		}
	}
	return nil
}
