//go:build linux

package main

import "syscall"

// peakRSSBytes reads the process's high-water resident set via getrusage.
// Linux reports ru_maxrss in kilobytes. Returns 0 when the syscall fails;
// callers treat 0 as "not measured" (the column is omitempty).
func peakRSSBytes() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if ru.Maxrss <= 0 {
		return 0
	}
	return uint64(ru.Maxrss) << 10
}
