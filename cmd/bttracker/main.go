// Command bttracker runs the real BEP 3 HTTP tracker.
//
// Usage:
//
//	bttracker [-listen :6969] [-interval 1800]
//
// The announce endpoint is http://<listen>/announce; /stats shows swarm
// counts with per-torrent announce rates. The same listener also exposes
// the runtime observability layer: /metrics serves the obs registry in
// Prometheus text format (global and per-infohash announce counters,
// peer-count gauges, windowed announce rates) and /debug/pprof/ serves
// net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on http.DefaultServeMux
	"os"

	"rarestfirst/internal/obs"
	"rarestfirst/internal/tracker"
)

func main() {
	listen := flag.String("listen", ":6969", "listen address")
	interval := flag.Int("interval", 1800, "re-announce interval in seconds")
	flag.Parse()

	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	srv := tracker.NewServer(*interval)
	srv.SetMetrics(reg)

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/pprof/", http.DefaultServeMux)

	fmt.Printf("tracker listening on %s (announce at http://%s/announce, metrics at /metrics, pprof at /debug/pprof/)\n", *listen, *listen)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
