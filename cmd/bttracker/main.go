// Command bttracker runs the real BEP 3 HTTP tracker.
//
// Usage:
//
//	bttracker [-listen :6969] [-interval 1800]
//
// The announce endpoint is http://<listen>/announce; /stats shows swarm
// counts.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"rarestfirst/internal/tracker"
)

func main() {
	listen := flag.String("listen", ":6969", "listen address")
	interval := flag.Int("interval", 1800, "re-announce interval in seconds")
	flag.Parse()

	srv := tracker.NewServer(*interval)
	fmt.Printf("tracker listening on %s (announce at http://%s/announce)\n", *listen, *listen)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
