package rarestfirst

// Determinism-contract tests for the runtime observability layer
// (internal/obs): enabling metrics must be observe-only. A metrics-on run
// consumes no engine RNG and reorders no events, so the golden digests
// must stay byte-identical to the recorded (metrics-off) goldens; the
// phase timers and counters populate on the side.

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"rarestfirst/internal/obs"
)

// TestGoldenDigestsWithMetricsEnabled re-runs the golden scenarios with a
// process-wide obs registry installed and checks the digests against the
// same testdata file the metrics-off test uses. Any drift means a metric
// hook leaked into simulation behaviour.
func TestGoldenDigestsWithMetricsEnabled(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("no goldens recorded yet: %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}

	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	for _, sc := range goldenScenarios() {
		rep, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Label, err)
		}
		if got := reportDigest(t, rep); got != want[sc.Label] {
			t.Errorf("%s: digest drifted with metrics enabled\n  got  %s\n  want %s\n"+
				"the obs layer is observe-only: metric hooks must not consume "+
				"engine RNG or reorder events", sc.Label, got, want[sc.Label])
		}
	}

	if v, ok := reg.Value("sim_events_total"); !ok || v == 0 {
		t.Errorf("sim_events_total = %v, %v; want nonzero after three runs", v, ok)
	}
	if v, ok := reg.Value("swarm_arrivals_total"); !ok || v == 0 {
		t.Errorf("swarm_arrivals_total = %v, %v; want nonzero", v, ok)
	}
}

// TestPhaseTimingsPopulated runs an obs-enabled scenario with every timed
// subsystem switched on (choke lanes, sharded heap, batched HAVEs) and
// checks the wall-clock phase fields surface through Report.Events, plus
// the registry counters the swarm layer feeds.
func TestPhaseTimingsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	sc := Scenario{
		Label:        "obs-phases",
		TorrentID:    7,
		Scale:        BenchScale(),
		SeedOverride: 42,
		ChokeLanes:   true,
		HeapShards:   4,
		BatchHaves:   true,
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	ev := rep.Events
	if ev.LaneComputeNs == 0 || ev.LaneApplyNs == 0 {
		t.Errorf("lane phase timers empty: compute=%d apply=%d", ev.LaneComputeNs, ev.LaneApplyNs)
	}
	if ev.MergeNs == 0 {
		t.Errorf("MergeNs = 0 with HeapShards=%d; sharded popTop should be timed", sc.HeapShards)
	}
	if ev.HaveFlushNs == 0 {
		t.Errorf("HaveFlushNs = 0 with BatchHaves; flushHaves should be timed")
	}

	for _, name := range []string{
		"sim_events_total",
		"swarm_arrivals_total",
		"swarm_choke_rounds_total",
		"swarm_piece_completions_total",
		"swarm_announces_total",
	} {
		if v, ok := reg.Value(name); !ok || v == 0 {
			t.Errorf("%s = %v, %v; want nonzero", name, v, ok)
		}
	}
	if v, ok := reg.Value("sim_peak_lane_width"); !ok || v == 0 {
		t.Errorf("sim_peak_lane_width = %v, %v; want nonzero with ChokeLanes", v, ok)
	}
}

// TestPhaseTimingsZeroWhenDisabled checks the disabled contract: without a
// registry the engine keeps its nil metric bundle and the phase fields
// stay zero (and, being omitempty, absent from the JSON line).
func TestPhaseTimingsZeroWhenDisabled(t *testing.T) {
	sc := Scenario{
		Label:        "obs-off",
		TorrentID:    7,
		Scale:        BenchScale(),
		SeedOverride: 42,
		ChokeLanes:   true,
		HeapShards:   4,
		BatchHaves:   true,
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	ev := rep.Events
	if ev.LaneComputeNs != 0 || ev.LaneApplyNs != 0 || ev.MergeNs != 0 ||
		ev.RetimeFlushNs != 0 || ev.HaveFlushNs != 0 {
		t.Errorf("phase timers populated without a registry: %+v", ev)
	}
}

// TestRunnerHeartbeat exercises the -progress plumbing: a tiny heartbeat
// interval must produce at least the final "runs=n/n" line, with live
// counters appended when a registry is active.
func TestRunnerHeartbeat(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	var buf bytes.Buffer
	r := Runner{Workers: 1, Heartbeat: time.Millisecond, HeartbeatW: &buf}
	scs := []Scenario{{Label: "hb", TorrentID: 7, Scale: BenchScale(), SeedOverride: 1}}
	if _, err := r.Run(scs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "heartbeat: elapsed=") {
		t.Fatalf("no heartbeat lines in output:\n%s", out)
	}
	if !strings.Contains(out, "runs=1/1") {
		t.Errorf("final heartbeat line missing runs=1/1:\n%s", out)
	}
	if !strings.Contains(out, "events=") {
		t.Errorf("heartbeat missing live counters with registry active:\n%s", out)
	}
}
