// Package torrents is the catalog of the paper's Table I: the 26 torrents
// the authors monitored, with the seed/leecher populations, maximum peer
// set sizes and content sizes the paper reports, plus the scaling rules
// that map each entry onto a runnable swarm.Config.
//
// Absolute populations and content sizes are scaled down for simulation
// (documented per experiment in EXPERIMENTS.md); the seed:leecher ratio,
// the relation between peer-set size and population, and the relation
// between initial-seed capacity and content size — the quantities the
// paper's conclusions rest on — are preserved.
package torrents

import (
	"fmt"
	"math"

	"rarestfirst/internal/swarm"
)

// State is the torrent state the paper reports or implies for each entry.
type State int

// Torrent states.
const (
	// Steady: no rare piece; every piece has at least one copy beyond the
	// initial seed.
	Steady State = iota
	// Transient: the initial seed has not yet uploaded one full copy.
	Transient
	// NoSeed: torrent 1 had zero seeds at the start of the experiment.
	NoSeed
)

func (s State) String() string {
	switch s {
	case Steady:
		return "steady"
	case Transient:
		return "transient"
	default:
		return "no-seed"
	}
}

// Spec is one row of Table I.
type Spec struct {
	ID       int
	Seeds    int
	Leechers int
	MaxPS    int // maximum peer set size in leecher state
	SizeMB   int
	State    State
}

// Ratio returns the seeds/leechers ratio (column 4 of Table I).
func (s Spec) Ratio() float64 {
	if s.Leechers == 0 {
		return math.Inf(1)
	}
	return float64(s.Seeds) / float64(s.Leechers)
}

func (s Spec) String() string {
	return fmt.Sprintf("torrent %d: %d seeds, %d leechers, maxPS %d, %d MB (%s)",
		s.ID, s.Seeds, s.Leechers, s.MaxPS, s.SizeMB, s.State)
}

// TableI is the paper's Table I. States follow §IV-A: torrents 2, 4, 5, 6,
// 8 and 9 are in transient state (startup phase), torrent 1 has no seed,
// and the rest are steady (torrent 7 is the paper's steady-state case
// study, torrent 10 its interarrival case study).
var TableI = []Spec{
	{ID: 1, Seeds: 0, Leechers: 66, MaxPS: 60, SizeMB: 700, State: NoSeed},
	{ID: 2, Seeds: 1, Leechers: 2, MaxPS: 3, SizeMB: 580, State: Transient},
	{ID: 3, Seeds: 1, Leechers: 29, MaxPS: 34, SizeMB: 350, State: Steady},
	{ID: 4, Seeds: 1, Leechers: 40, MaxPS: 75, SizeMB: 800, State: Transient},
	{ID: 5, Seeds: 1, Leechers: 50, MaxPS: 60, SizeMB: 1419, State: Transient},
	{ID: 6, Seeds: 1, Leechers: 130, MaxPS: 80, SizeMB: 820, State: Transient},
	{ID: 7, Seeds: 1, Leechers: 713, MaxPS: 80, SizeMB: 700, State: Steady},
	{ID: 8, Seeds: 1, Leechers: 861, MaxPS: 80, SizeMB: 3000, State: Transient},
	{ID: 9, Seeds: 1, Leechers: 1055, MaxPS: 80, SizeMB: 2000, State: Transient},
	{ID: 10, Seeds: 1, Leechers: 1207, MaxPS: 80, SizeMB: 348, State: Steady},
	{ID: 11, Seeds: 1, Leechers: 1411, MaxPS: 80, SizeMB: 710, State: Steady},
	{ID: 12, Seeds: 3, Leechers: 612, MaxPS: 80, SizeMB: 1413, State: Steady},
	{ID: 13, Seeds: 9, Leechers: 30, MaxPS: 35, SizeMB: 350, State: Steady},
	{ID: 14, Seeds: 20, Leechers: 126, MaxPS: 80, SizeMB: 184, State: Steady},
	{ID: 15, Seeds: 30, Leechers: 230, MaxPS: 80, SizeMB: 820, State: Steady},
	{ID: 16, Seeds: 50, Leechers: 18, MaxPS: 40, SizeMB: 600, State: Steady},
	{ID: 17, Seeds: 102, Leechers: 342, MaxPS: 80, SizeMB: 200, State: Steady},
	{ID: 18, Seeds: 115, Leechers: 19, MaxPS: 55, SizeMB: 430, State: Steady},
	{ID: 19, Seeds: 160, Leechers: 5, MaxPS: 17, SizeMB: 6, State: Steady},
	{ID: 20, Seeds: 177, Leechers: 4657, MaxPS: 80, SizeMB: 2000, State: Steady},
	{ID: 21, Seeds: 462, Leechers: 180, MaxPS: 80, SizeMB: 2600, State: Steady},
	{ID: 22, Seeds: 514, Leechers: 1703, MaxPS: 80, SizeMB: 349, State: Steady},
	{ID: 23, Seeds: 1197, Leechers: 4151, MaxPS: 80, SizeMB: 349, State: Steady},
	{ID: 24, Seeds: 3697, Leechers: 7341, MaxPS: 80, SizeMB: 349, State: Steady},
	{ID: 25, Seeds: 11641, Leechers: 5418, MaxPS: 80, SizeMB: 350, State: Steady},
	{ID: 26, Seeds: 12612, Leechers: 7052, MaxPS: 80, SizeMB: 140, State: Steady},
}

// ByID returns the Table I spec with the given ID (1-based).
func ByID(id int) (Spec, bool) {
	for _, s := range TableI {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// Scale controls how a Table I entry is shrunk to simulation size.
type Scale struct {
	// MaxPeers caps seeds+leechers; populations above it are scaled down
	// preserving the seed:leecher ratio.
	MaxPeers int
	// MaxContentMB caps the content size.
	MaxContentMB int
	// MaxPieces caps the piece count (piece size grows to compensate).
	MaxPieces int
	// Duration is the local peer's observation window in seconds (the
	// paper observed for 8 hours).
	Duration float64
	// Warmup is the pre-join simulation time in seconds.
	Warmup float64
	// Seed seeds the RNG.
	Seed int64
}

// DefaultScale is the scale used by cmd/experiments: it keeps every
// experiment within tens of seconds of wall-clock simulation.
func DefaultScale() Scale {
	return Scale{
		MaxPeers:     240,
		MaxContentMB: 48,
		MaxPieces:    256,
		Duration:     5400,
		Warmup:       1500,
		Seed:         42,
	}
}

// BenchScale is the much smaller scale used by the benchmark harness.
func BenchScale() Scale {
	return Scale{
		MaxPeers:     60,
		MaxContentMB: 16,
		MaxPieces:    64,
		Duration:     1800,
		Warmup:       400,
		Seed:         42,
	}
}

// meanUploadBps returns the population-weighted mean upload capacity of
// the default capacity mix.
func meanUploadBps() float64 {
	var sum, w float64
	for _, c := range swarm.DefaultCapacityMix() {
		sum += c.Fraction * c.UpBps
		w += c.Fraction
	}
	return sum / w
}

// Config maps a Table I spec onto a runnable swarm configuration at the
// given scale.
//
// Churn is derived from the spec with Little's law: a swarm holds L
// leechers when they arrive at rate L/T, where T is the estimated download
// time (content size over ~75% of the mean peer upload capacity — swarms
// without network bottlenecks are upload-constrained). Finished leechers
// leave after a short linger, so the seed population stays close to the
// catalog's initial seeds, keeping the seed:leecher ratio of Table I.
func (s Spec) Config(sc Scale) swarm.Config {
	cfg := swarm.DefaultConfig()
	cfg.Seed = sc.Seed + int64(s.ID)*1000

	// Population scaling preserving the seed:leecher ratio. The paper
	// notes 710 seeds per million peers suffice for torrent 11's ratio —
	// the ratio, not the absolute count, is what stresses the algorithms.
	seeds, leech := s.Seeds, s.Leechers
	if total := seeds + leech; total > sc.MaxPeers {
		f := float64(sc.MaxPeers) / float64(total)
		seeds = int(math.Round(float64(seeds) * f))
		leech = int(math.Round(float64(leech) * f))
		if s.Seeds > 0 && seeds == 0 {
			seeds = 1
		}
		if s.Leechers > 0 && leech < 2 {
			leech = 2
		}
	}
	cfg.InitialSeeds = seeds
	cfg.InitialLeechers = leech

	// Content scaling: cap megabytes, then cap pieces by growing the
	// piece size (in 16 kB steps so blocks stay uniform).
	sizeMB := s.SizeMB
	if sizeMB > sc.MaxContentMB {
		sizeMB = sc.MaxContentMB
	}
	if sizeMB < 1 {
		sizeMB = 1
	}
	bytes := int64(sizeMB) << 20
	pieceSize := 256 << 10
	for int(bytes/int64(pieceSize)) > sc.MaxPieces {
		pieceSize += 16 << 10
	}
	cfg.PieceSize = pieceSize
	cfg.NumPieces = int(bytes / int64(pieceSize))
	if cfg.NumPieces < 8 {
		cfg.NumPieces = 8
	}

	cfg.MaxPeerSet = s.MaxPS
	if cfg.MaxPeerSet > 4*(seeds+leech) {
		// Keep the paper's "peer set smaller than torrent" property at
		// reduced populations.
		cfg.MaxPeerSet = max(4, (seeds+leech)/2)
	}
	cfg.MinPeerSet = min(20, cfg.MaxPeerSet/2+1)
	cfg.MaxInitiated = max(2, cfg.MaxPeerSet/2)

	// Estimated download time of one leecher in an upload-constrained
	// swarm; drives both churn and warmup.
	tEst := float64(bytes) / (0.75 * meanUploadBps())
	warmup := sc.Warmup

	// Initial seed capacity sets the torrent state. For transient torrents
	// the seed must not finish one copy within warmup+duration (the paper
	// measured ~36 kB/s of rare-piece service on torrent 8); for steady
	// single-seed torrents the seed must finish one copy within warmup.
	switch s.State {
	case Transient:
		cfg.InitialSeedUp = float64(bytes) / (1.5 * (warmup + sc.Duration))
		if cfg.InitialSeedUp > 36<<10 {
			cfg.InitialSeedUp = 36 << 10
		}
	case NoSeed:
		cfg.InitialSeedUp = 0
		// Torrent 1: no seed; 90% of the pieces circulate among the
		// initial leechers, the remainder is gone for good.
		cfg.AvailableFrac = 0.9
		cfg.LeecherBootstrapMax = 0.85
	default:
		// Steady state requires the full first copy out before the local
		// peer joins: let the swarm run for at least two download
		// generations, and give the seed the capacity to finish one copy
		// comfortably inside that window.
		if warmup < 2.2*tEst {
			warmup = 2.2 * tEst
		}
		need := float64(bytes) / (0.7 * warmup)
		cfg.InitialSeedUp = math.Max(128<<10, need)
	}

	switch s.State {
	case Transient, NoSeed:
		// Nobody can finish while pieces are missing, so the leecher
		// population self-sustains; arrivals only grow it modestly.
		cfg.ArrivalRate = float64(leech) / (2 * (warmup + sc.Duration))
		cfg.SeedLingerMean = 60
	default:
		cfg.ArrivalRate = float64(leech) / tEst
		// Linger sized so lingering finishers contribute about the
		// catalog's seed count on top of the persistent initial seeds:
		// steady extra seeds = arrivalRate * linger.
		linger := float64(seeds) / cfg.ArrivalRate
		cfg.SeedLingerMean = math.Min(120, math.Max(10, linger))
	}
	cfg.AbortRate = 1.0 / (8 * tEst)
	cfg.KeepInitialSeed = s.State != NoSeed

	cfg.LocalJoinTime = warmup
	cfg.Duration = sc.Duration
	return cfg
}
