package torrents

import (
	"testing"

	"rarestfirst/internal/fluidmodel"
	"rarestfirst/internal/swarm"
)

// TestSimAgreesWithFluidModel cross-validates the discrete-event simulator
// against the Qiu-Srikant fluid model (the analytical baseline the paper
// discusses in §V). The model assumes global knowledge and perfect piece
// diversity (eta = 1); the paper's point — and ours — is that rarest first
// with only local knowledge gets close to that optimum, so simulated mean
// download times should be within a small factor of the model's.
func TestSimAgreesWithFluidModel(t *testing.T) {
	sc := BenchScale()
	sc.Duration = 2400
	spec, _ := ByID(14) // 20 seeds, 126 leechers: a well-provisioned swarm
	cfg := spec.Config(sc)
	sw := swarm.New(cfg)
	res := sw.Run()
	if res.FinishedContrib < 20 {
		t.Fatalf("only %d leechers finished; not enough signal", res.FinishedContrib)
	}

	bytes := int64(cfg.NumPieces) * int64(cfg.PieceSize)
	p := fluidmodel.FromSwarm(
		cfg.ArrivalRate,
		cfg.AbortRate,
		1/cfg.SeedLingerMean,
		meanUploadBps(),
		0, // downloads effectively uncapped relative to uploads
		bytes,
		1, // rarest first: close-to-ideal diversity
	)
	modelT, err := p.MeanDownloadTime(1e6, 1e-9)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	simT := res.MeanDownloadContrib
	t.Logf("mean download: sim %.0f s, fluid model %.0f s", simT, modelT)
	// The model has no protocol overhead, no choke idling, no peer-set
	// locality; the sim should be slower but within a small factor.
	if simT < 0.5*modelT || simT > 4*modelT {
		t.Fatalf("sim %.0f s vs model %.0f s: outside [0.5x, 4x]", simT, modelT)
	}
}
