package torrents

import (
	"math"
	"testing"

	"rarestfirst/internal/swarm"
)

func TestTableIIsComplete(t *testing.T) {
	if len(TableI) != 26 {
		t.Fatalf("Table I has %d rows, want 26", len(TableI))
	}
	for i, s := range TableI {
		if s.ID != i+1 {
			t.Fatalf("row %d has ID %d", i, s.ID)
		}
		if s.Seeds < 0 || s.Leechers < 0 || s.MaxPS <= 0 || s.SizeMB <= 0 {
			t.Fatalf("row %d has invalid fields: %+v", i, s)
		}
	}
}

func TestTableIValuesMatchPaper(t *testing.T) {
	// Spot-check the rows the paper's case studies use.
	checks := []struct {
		id, seeds, leechers, maxPS, sizeMB int
	}{
		{1, 0, 66, 60, 700},
		{7, 1, 713, 80, 700},
		{8, 1, 861, 80, 3000},
		{10, 1, 1207, 80, 348},
		{11, 1, 1411, 80, 710},
		{19, 160, 5, 17, 6},
		{26, 12612, 7052, 80, 140},
	}
	for _, c := range checks {
		s, ok := ByID(c.id)
		if !ok {
			t.Fatalf("torrent %d missing", c.id)
		}
		if s.Seeds != c.seeds || s.Leechers != c.leechers || s.MaxPS != c.maxPS || s.SizeMB != c.sizeMB {
			t.Fatalf("torrent %d = %+v, want %+v", c.id, s, c)
		}
	}
	if _, ok := ByID(27); ok {
		t.Fatal("ByID(27) found a ghost torrent")
	}
}

func TestRatiosMatchPaperColumn(t *testing.T) {
	// Column 4 of Table I: ratio seeds/leechers.
	cases := []struct {
		id    int
		ratio float64
	}{
		{2, 0.5}, {3, 0.034}, {10, 0.00083}, {18, 6}, {25, 2.1},
	}
	for _, c := range cases {
		s, _ := ByID(c.id)
		if got := s.Ratio(); math.Abs(got-c.ratio)/c.ratio > 0.05 {
			t.Errorf("torrent %d ratio = %f, want ~%f", c.id, got, c.ratio)
		}
	}
	if s, _ := ByID(1); s.Ratio() != 0 {
		t.Errorf("torrent 1 ratio = %f, want 0", s.Ratio())
	}
}

func TestConfigScalingPreservesRatio(t *testing.T) {
	sc := DefaultScale()
	for _, s := range TableI {
		cfg := s.Config(sc)
		total := cfg.InitialSeeds + cfg.InitialLeechers
		if total > sc.MaxPeers+2 {
			t.Fatalf("torrent %d scaled to %d peers > cap %d", s.ID, total, sc.MaxPeers)
		}
		if s.Seeds > 0 && cfg.InitialSeeds == 0 {
			t.Fatalf("torrent %d lost its seeds in scaling", s.ID)
		}
		if s.Seeds == 0 && cfg.InitialSeeds != 0 {
			t.Fatalf("torrent %d gained seeds in scaling", s.ID)
		}
		// Ratio preserved within a factor of ~2 for populations that were
		// actually scaled (small populations round coarsely).
		if s.Seeds+s.Leechers > sc.MaxPeers && s.Seeds > 0 && cfg.InitialSeeds > 1 {
			orig := s.Ratio()
			scaled := float64(cfg.InitialSeeds) / float64(cfg.InitialLeechers)
			if scaled > orig*2.5 || scaled < orig/2.5 {
				t.Fatalf("torrent %d ratio drifted: %f -> %f", s.ID, orig, scaled)
			}
		}
	}
}

func TestConfigGeometryBounds(t *testing.T) {
	sc := DefaultScale()
	for _, s := range TableI {
		cfg := s.Config(sc)
		if cfg.NumPieces > sc.MaxPieces {
			t.Fatalf("torrent %d has %d pieces > cap %d", s.ID, cfg.NumPieces, sc.MaxPieces)
		}
		if cfg.NumPieces < 8 {
			t.Fatalf("torrent %d has too few pieces: %d", s.ID, cfg.NumPieces)
		}
		if cfg.PieceSize%(16<<10) != 0 {
			t.Fatalf("torrent %d piece size %d not a 16 kB multiple", s.ID, cfg.PieceSize)
		}
	}
}

func TestConfigStates(t *testing.T) {
	sc := DefaultScale()
	// Transient torrents: seed too slow to push one copy within the run.
	for _, id := range []int{2, 4, 5, 6, 8, 9} {
		s, _ := ByID(id)
		if s.State != Transient {
			t.Fatalf("torrent %d should be transient", id)
		}
		cfg := s.Config(sc)
		bytes := float64(cfg.NumPieces) * float64(cfg.PieceSize)
		if cfg.InitialSeedUp*(sc.Warmup+sc.Duration) >= bytes {
			t.Fatalf("torrent %d: seed pushes a full copy within the run (not transient)", id)
		}
	}
	// Steady single-seed torrents: one copy fits within the warmup.
	for _, id := range []int{7, 10, 11} {
		s, _ := ByID(id)
		cfg := s.Config(sc)
		bytes := float64(cfg.NumPieces) * float64(cfg.PieceSize)
		if cfg.InitialSeedUp*sc.Warmup < bytes {
			t.Fatalf("torrent %d: seed cannot push one copy within warmup", id)
		}
	}
	// Torrent 1: no seed, partial availability.
	s, _ := ByID(1)
	cfg := s.Config(sc)
	if cfg.InitialSeeds != 0 || cfg.AvailableFrac >= 1 || cfg.AvailableFrac <= 0 {
		t.Fatalf("torrent 1 config: seeds=%d availFrac=%f", cfg.InitialSeeds, cfg.AvailableFrac)
	}
	if cfg.LeecherBootstrapMax <= 0 {
		t.Fatal("torrent 1 leechers must bootstrap with content")
	}
}

func TestConfigIsRunnable(t *testing.T) {
	// Every scaled config must pass swarm validation (New panics on bad
	// configs) and run a short slice without panicking.
	sc := BenchScale()
	sc.Duration = 120
	sc.Warmup = 60
	for _, s := range TableI {
		cfg := s.Config(sc)
		sw := swarm.New(cfg)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("torrent %d panicked: %v", s.ID, r)
				}
			}()
			sw.Run()
		}()
	}
}

func TestStateString(t *testing.T) {
	if Steady.String() != "steady" || Transient.String() != "transient" || NoSeed.String() != "no-seed" {
		t.Fatal("State strings wrong")
	}
}
