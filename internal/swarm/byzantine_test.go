package swarm

import (
	"strings"
	"testing"

	"rarestfirst/internal/core"
)

// advConfig is tinyConfig with Byzantine leechers mixed in and the
// invariant checker on (every adversarial run here doubles as an
// invariant audit).
func advConfig(adv Adversary) Config {
	cfg := tinyConfig()
	cfg.InitialLeechers = 12
	cfg.Adversary = &adv
	cfg.Invariants = true
	return cfg
}

func TestAdversaryPoisonBansAndLocalCompletes(t *testing.T) {
	cfg := advConfig(Adversary{Fraction: 0.3, PoisonRate: 0.5})
	res := New(cfg).Run()
	if !res.LocalCompleted {
		t.Fatal("local peer did not complete against poisoners with banning on")
	}
	fc := res.Collector.FaultCounts
	if fc["swarm_piece_hash_fail"] == 0 {
		t.Fatalf("no hash failures recorded: %v", fc)
	}
	if fc["swarm_wasted_bytes"] == 0 {
		t.Fatalf("no wasted bytes recorded: %v", fc)
	}
	if fc["swarm_peer_banned_poison"] == 0 {
		t.Fatalf("no poison bans recorded: %v", fc)
	}
}

func TestAdversaryPoisonNoBanMeasurementMode(t *testing.T) {
	cfg := advConfig(Adversary{Fraction: 0.3, PoisonRate: 0.5, NoBan: true})
	res := New(cfg).Run()
	fc := res.Collector.FaultCounts
	if fc["swarm_peer_banned_poison"] != 0 {
		t.Fatalf("bans recorded in NoBan mode: %v", fc)
	}
	if fc["swarm_wasted_bytes"] == 0 {
		t.Fatalf("no wasted bytes recorded: %v", fc)
	}
	// Unbanned poisoners keep wasting bandwidth: strictly more damage than
	// the banning run on the same seed.
	banCfg := advConfig(Adversary{Fraction: 0.3, PoisonRate: 0.5})
	banRes := New(banCfg).Run()
	if fc["swarm_piece_hash_fail"] <= banRes.Collector.FaultCounts["swarm_piece_hash_fail"] {
		t.Fatalf("NoBan hash fails (%d) not above banning run (%d)",
			fc["swarm_piece_hash_fail"], banRes.Collector.FaultCounts["swarm_piece_hash_fail"])
	}
}

func TestAdversaryLiarTimesOutAndLocalCompletes(t *testing.T) {
	cfg := advConfig(Adversary{Fraction: 0.3, FakeHaves: true, FakeHaveTimeout: 10})
	res := New(cfg).Run()
	if !res.LocalCompleted {
		t.Fatal("local peer did not complete against bitfield liars")
	}
	fc := res.Collector.FaultCounts
	if fc["swarm_fake_have_timeout"] == 0 {
		t.Fatalf("no fake-HAVE timeouts recorded: %v", fc)
	}
	if fc["swarm_peer_snubbed"] == 0 {
		t.Fatalf("no liar snubs recorded: %v", fc)
	}
}

func TestAdversaryFloodAnnounces(t *testing.T) {
	cfg := advConfig(Adversary{Fraction: 0.3, Flood: true, FloodAnnounceEvery: 2})
	res := New(cfg).Run()
	if !res.LocalCompleted {
		t.Fatal("local peer did not complete against announce flooders")
	}
	if res.Collector.FaultCounts["swarm_flood_announce"] == 0 {
		t.Fatalf("no flood announces recorded: %v", res.Collector.FaultCounts)
	}
}

func TestAdversaryRunsAreDeterministic(t *testing.T) {
	run := func() (float64, int, int) {
		cfg := advConfig(Adversary{Fraction: 0.3, PoisonRate: 0.5, FakeHaves: true})
		res := New(cfg).Run()
		return res.LocalDownloadTime, res.FinishedContrib,
			res.Collector.FaultCounts["swarm_piece_hash_fail"]
	}
	t1, f1, h1 := run()
	t2, f2, h2 := run()
	if t1 != t2 || f1 != f2 || h1 != h2 {
		t.Fatalf("adversarial runs diverge: (%f,%d,%d) vs (%f,%d,%d)", t1, f1, h1, t2, f2, h2)
	}
}

func TestInvariantCheckerIsPureRead(t *testing.T) {
	// A run with the checker on must produce the identical trajectory to
	// one with it off — the checker is observation, never intervention.
	base := tinyConfig()
	r1 := New(base).Run()
	checked := tinyConfig()
	checked.Invariants = true
	r2 := New(checked).Run()
	if r1.LocalDownloadTime != r2.LocalDownloadTime || r1.FinishedContrib != r2.FinishedContrib {
		t.Fatalf("invariant checker perturbed the run: (%f,%d) vs (%f,%d)",
			r1.LocalDownloadTime, r1.FinishedContrib, r2.LocalDownloadTime, r2.FinishedContrib)
	}
}

func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	// Seed a healthy finished swarm, corrupt its state by hand, and check
	// the auditor actually panics — a checker that cannot fail is no
	// checker.
	cfg := tinyConfig()
	cfg.Invariants = true
	s := New(cfg)
	s.Run()

	expectPanic := func(name, fragment string, corrupt func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: checker accepted corrupted state", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, fragment) {
				t.Fatalf("%s: panic %v does not mention %q", name, r, fragment)
			}
		}()
		corrupt()
		s.checkInvariants(true)
	}

	// Availability drift: bump a per-peer availability counter without a
	// matching HAVE.
	expectPanic("avail drift", "avail", func() { s.local.avail.Inc(0) })
}

func TestInvariantCheckerDetectsBannedConnection(t *testing.T) {
	// Stop mid-download so live leecher connections survive the run (a
	// completed tiny swarm is all seeds, and seed pairs disconnect).
	cfg := tinyConfig()
	cfg.Invariants = true
	cfg.Duration = 300
	s := New(cfg)
	s.Run()

	// Find any surviving connection and ban the far end without the
	// disconnect that banPeer would have done.
	var victim *Peer
	for _, p := range s.peers {
		if !p.departed && len(p.connList) > 0 {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Skip("no live connections at run end")
	}
	other := victim.connList[0].remote
	victim.banned = map[core.PeerID]struct{}{other.id: {}}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("checker accepted a live connection to a banned peer")
		}
	}()
	s.checkInvariants(true)
}
