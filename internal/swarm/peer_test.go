package swarm

import (
	"math"
	"testing"

	"rarestfirst/internal/trace"
)

// newTestSwarm builds a swarm without running it, with the collector wired
// so addPeer/connect paths work, and returns it.
func newTestSwarm(t *testing.T, mut func(*Config)) *Swarm {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumPieces = 16
	cfg.PieceSize = 64 << 10
	cfg.InitialLeechers = 0
	cfg.ArrivalRate = 0
	if mut != nil {
		mut(&cfg)
	}
	s := New(cfg)
	s.col = trace.NewCollector(0)
	return s
}

func TestConnectMirrorsState(t *testing.T) {
	s := newTestSwarm(t, nil)
	seed := s.addPeer(true, false, false, 1e5, 0)
	leech := s.addPeer(false, false, false, 1e5, 0)
	// addPeer announces, so they are already connected.
	ca := leech.conns[seed.id]
	cb := seed.conns[leech.id]
	if ca == nil || cb == nil {
		t.Fatal("announce did not connect the pair")
	}
	// The leecher must be interested in the seed, mirrored on both sides.
	if !ca.amInterested || !cb.peerInterested {
		t.Fatal("interest not mirrored")
	}
	// The seed must not be interested in the empty leecher.
	if cb.amInterested || ca.peerInterested {
		t.Fatal("seed interested in empty leecher")
	}
	// Availability folded both ways.
	if leech.avail.Count(0) != 1 || seed.avail.Count(0) != 0 {
		t.Fatalf("availability wrong: %d/%d", leech.avail.Count(0), seed.avail.Count(0))
	}
}

func TestApplyChokeStampsTransitionsOnly(t *testing.T) {
	s := newTestSwarm(t, nil)
	// Slow seed so the leecher cannot complete (and disconnect) during the
	// clock advances below.
	seed := s.addPeer(true, false, false, 4<<10, 0)
	leech := s.addPeer(false, false, false, 4<<10, 0)
	c := seed.conns[leech.id]
	s.eng.Run(5) // advance the clock a little
	seed.applyChoke(c, true)
	stamp := c.lastUnchokedAt
	if !c.amUnchoking || !leech.conns[seed.id].peerUnchoking {
		t.Fatal("unchoke not applied/mirrored")
	}
	s.eng.Run(20)
	seed.applyChoke(c, true) // no transition: stamp unchanged
	if c.lastUnchokedAt != stamp {
		t.Fatal("re-unchoke refreshed the stamp")
	}
	seed.applyChoke(c, false)
	if c.amUnchoking || leech.conns[seed.id].peerUnchoking {
		t.Fatal("choke not applied/mirrored")
	}
	s.eng.Run(40)
	seed.applyChoke(c, true)
	if c.lastUnchokedAt <= stamp {
		t.Fatal("new transition did not refresh the stamp")
	}
}

func TestUnchokeTriggersTransferAndConservesBytes(t *testing.T) {
	s := newTestSwarm(t, nil)
	seed := s.addPeer(true, false, false, 64<<10, 0) // 64 kB/s
	leech := s.addPeer(false, false, false, 64<<10, 0)
	c := seed.conns[leech.id]
	seed.applyChoke(c, true)
	lc := leech.conns[seed.id]
	if lc.inFlow == nil {
		t.Fatal("unchoke did not start a transfer")
	}
	// One 64 kB piece at 64 kB/s: done at ~1 s.
	s.eng.Run(300)
	if leech.downloaded == 0 {
		t.Fatal("no pieces downloaded")
	}
	// Byte accounting symmetric at both endpoints.
	if lc.bytesIn != c.bytesOut {
		t.Fatalf("bytesIn %d != bytesOut %d", lc.bytesIn, c.bytesOut)
	}
	wantMin := int64(leech.downloaded) * int64(s.cfg.PieceSize)
	if lc.bytesIn < wantMin {
		t.Fatalf("accounted %d bytes for %d pieces", lc.bytesIn, leech.downloaded)
	}
}

func TestChokeMidPieceKeepsRemainder(t *testing.T) {
	s := newTestSwarm(t, nil)
	seed := s.addPeer(true, false, false, 8<<10, 0) // slow: 8 s per 64 kB piece
	leech := s.addPeer(false, false, false, 8<<10, 0)
	c := seed.conns[leech.id]
	seed.applyChoke(c, true)
	s.eng.Run(s.eng.Now() + 3) // ~3/8 of the piece transferred
	lc := leech.conns[seed.id]
	piece := lc.flowPiece
	seed.applyChoke(c, false)
	rem, ok := leech.pieceRemaining[piece]
	if !ok {
		t.Fatal("partial piece discarded on choke")
	}
	full := float64(s.cfg.PieceSize)
	if rem >= full || rem <= 0 {
		t.Fatalf("remainder %f out of (0,%f)", rem, full)
	}
	if math.Abs(rem-(full-3*8<<10)) > 1024 {
		t.Fatalf("remainder %f, want ~%f", rem, full-3*8<<10)
	}
	// Re-unchoke: the resume transfers only the remainder.
	seed.applyChoke(c, true)
	if lc.flowPiece != piece {
		t.Fatalf("resume picked piece %d, want %d", lc.flowPiece, piece)
	}
	if math.Abs(lc.flowBytes-rem) > 1 {
		t.Fatalf("resume flow is %f bytes, want %f", lc.flowBytes, rem)
	}
}

func TestMaybeRequestGuards(t *testing.T) {
	s := newTestSwarm(t, nil)
	seed := s.addPeer(true, false, false, 1e5, 0)
	leech := s.addPeer(false, false, false, 1e5, 0)
	lc := leech.conns[seed.id]
	// Not unchoked: no flow.
	leech.maybeRequest(lc)
	if lc.inFlow != nil {
		t.Fatal("requested while choked")
	}
	// Seeds never request.
	sc := seed.conns[leech.id]
	sc.peerUnchoking = true
	sc.amInterested = true // forced; a seed is never interested in reality
	seed.maybeRequest(sc)
	if sc.inFlow != nil {
		t.Fatal("seed started a download")
	}
}

func TestDepartCleansUpEverything(t *testing.T) {
	s := newTestSwarm(t, nil)
	seed := s.addPeer(true, false, false, 1e5, 0)
	a := s.addPeer(false, false, false, 1e5, 0)
	b := s.addPeer(false, false, false, 1e5, 0)
	if s.trk.size() != 3 {
		t.Fatalf("tracker size %d", s.trk.size())
	}
	// Start a transfer seed->a, then kill the seed.
	c := seed.conns[a.id]
	seed.applyChoke(c, true)
	seed.depart()
	if s.trk.size() != 2 {
		t.Fatalf("tracker size after depart %d", s.trk.size())
	}
	if a.connectedTo(seed) || b.connectedTo(seed) {
		t.Fatal("departed peer still connected")
	}
	if ac := a.conns[seed.id]; ac != nil {
		t.Fatal("conn map leak")
	}
	// Global availability dropped the seed's pieces.
	if s.globalAvail.Count(0) != 0 {
		t.Fatalf("global avail %d after seed left", s.globalAvail.Count(0))
	}
	// Departing twice is safe.
	seed.depart()
}

func TestFreeRiderNeverUnchokes(t *testing.T) {
	s := newTestSwarm(t, func(cfg *Config) { cfg.NumPieces = 8 })
	fr := s.addPeer(false, true, false, 1e5, 0)
	// Give the free rider all pieces so others would want from it.
	for i := 0; i < s.cfg.NumPieces; i++ {
		fr.have.Set(i)
	}
	leech := s.addPeer(false, false, false, 1e5, 0)
	_ = leech
	// Run several choke rounds: the free rider must never unchoke anyone.
	s.eng.Run(60)
	for _, c := range fr.connList {
		if c.amUnchoking {
			t.Fatal("free rider unchoked a peer")
		}
	}
}

func TestSeedStateSwitchesChoker(t *testing.T) {
	s := newTestSwarm(t, func(cfg *Config) {
		cfg.NumPieces = 4
		cfg.PieceSize = 64 << 10
	})
	seed := s.addPeer(true, false, false, 1e6, 0)
	leech := s.addPeer(false, false, false, 1e6, 0)
	_ = seed
	s.eng.Run(120)
	if !leech.seed {
		t.Fatalf("leecher did not finish (%d/%d)", leech.downloaded, s.cfg.NumPieces)
	}
	if leech.finishedAt <= leech.joinedAt {
		t.Fatal("finishedAt not stamped")
	}
}
