package swarm

// The swarm invariant checker: a debug hook (Config.Invariants) that
// cross-checks the simulator's redundant state and panics on the first
// violation, pointing at the exact peer and piece. Checks are pure reads
// and draw nothing from the engine RNG, so enabling them cannot perturb a
// trajectory — golden digests are identical with the checker on or off
// (pinned by a contract test).
//
// The per-sample check (full=false) keeps the steady-state cost bounded:
// the expensive availability cross-count runs for the instrumented local
// peer only, while the structural checks (no connection to a banned peer,
// mirror symmetry, stall/flow sanity, local Requester consistency) cover
// every live peer. Run's end-of-experiment sweep (full=true) extends the
// availability audit to the whole population.

import (
	"fmt"
	"sort"

	"rarestfirst/internal/core"
)

// checkInvariants audits the swarm; see the file comment for the
// full/sampled split. It panics on the first violation found.
func (s *Swarm) checkInvariants(full bool) {
	ids := make([]core.PeerID, 0, len(s.peers))
	for id := range s.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := s.peers[id]
		if p.departed {
			continue
		}
		s.checkPeerStructure(p)
		if full || p.isLocal {
			s.checkPeerAvail(p)
		}
		if p.isLocal && p.req != nil {
			if err := p.req.CheckConsistency(); err != nil {
				panic(fmt.Sprintf("swarm invariant: local peer %d: %v", p.id, err))
			}
		}
	}
	if full {
		s.checkGlobalAvail(ids)
	}
}

// checkGlobalAvail recounts the torrent-wide copy index from every live
// peer's TRUE bitfield and compares each piece. This is the counter the
// crash path decrements on kill and re-increments on rejoin, so the
// full sweep audits both edges of every crash/rejoin pair.
func (s *Swarm) checkGlobalAvail(ids []core.PeerID) {
	for i := 0; i < s.cfg.NumPieces; i++ {
		want := 0
		for _, id := range ids {
			p := s.peers[id]
			if !p.departed && p.have.Has(i) {
				want++
			}
		}
		if got := s.globalAvail.Count(i); got != want {
			panic(fmt.Sprintf("swarm invariant: global avail piece %d count %d, live peers hold %d",
				i, got, want))
		}
	}
}

// checkPeerStructure audits p's connection list: membership agreement
// with the conns map, mirror symmetry, the banned-peer exclusion (a ban
// tears the connection down, so a surviving conn — and with it any
// unchoke slot — is a violation), and stall/flow bookkeeping.
func (s *Swarm) checkPeerStructure(p *Peer) {
	if len(p.connList) != len(p.conns) {
		panic(fmt.Sprintf("swarm invariant: peer %d connList len %d != conns len %d",
			p.id, len(p.connList), len(p.conns)))
	}
	for _, c := range p.connList {
		if p.conns[c.remote.id] != c {
			panic(fmt.Sprintf("swarm invariant: peer %d connList entry for %d not in conns map",
				p.id, c.remote.id))
		}
		if p.bannedPeer(c.remote) {
			panic(fmt.Sprintf("swarm invariant: peer %d still connected to banned peer %d (unchoking=%v)",
				p.id, c.remote.id, c.amUnchoking))
		}
		if c.mirror != nil && (c.mirror.mirror != c || c.mirror.owner != c.remote || c.mirror.remote != p) {
			panic(fmt.Sprintf("swarm invariant: peer %d conn to %d has inconsistent mirror",
				p.id, c.remote.id))
		}
		if c.stallPiece >= 0 {
			if c.inFlow != nil {
				panic(fmt.Sprintf("swarm invariant: peer %d conn to %d stalled on %d with active flow",
					p.id, c.remote.id, c.stallPiece))
			}
			if !p.isLocal && !p.inflight.Has(c.stallPiece) {
				panic(fmt.Sprintf("swarm invariant: peer %d stall piece %d not marked in flight",
					p.id, c.stallPiece))
			}
		}
		if c.inFlow != nil && !p.isLocal && !p.inflight.Has(c.flowPiece) {
			panic(fmt.Sprintf("swarm invariant: peer %d downloading piece %d without inflight mark",
				p.id, c.flowPiece))
		}
	}
}

// checkPeerAvail recounts p's availability index from its neighbours'
// ADVERTISED bitfields (what the bitfield/HAVE exchange shows, i.e. the
// full liarBits for liars) and compares every piece's count.
func (s *Swarm) checkPeerAvail(p *Peer) {
	for i := 0; i < s.cfg.NumPieces; i++ {
		want := 0
		for _, c := range p.connList {
			if c.remote.shownHas(i) {
				want++
			}
		}
		if got := p.avail.Count(i); got != want {
			panic(fmt.Sprintf("swarm invariant: peer %d piece %d avail count %d, neighbours show %d",
				p.id, i, got, want))
		}
	}
}
