package swarm

import (
	"math/rand"

	"rarestfirst/internal/core"
)

// tracker is the in-simulation tracker: it keeps the set of live peers and
// answers announces with a bounded uniform random sample, exactly the
// behaviour §II-B describes ("a list of 50 peers chosen at random in the
// list of peers currently involved in the torrent").
type tracker struct {
	alive []*Peer
	index map[core.PeerID]int
	// scratch is the partial-Fisher–Yates index buffer sample reuses; at
	// 10k live peers a fresh slice per announce was ~80 kB of garbage per
	// joining peer.
	scratch []int
}

func newTracker() *tracker {
	return &tracker{index: map[core.PeerID]int{}}
}

// register adds a peer to the torrent.
func (t *tracker) register(p *Peer) {
	if _, ok := t.index[p.id]; ok {
		return
	}
	t.index[p.id] = len(t.alive)
	t.alive = append(t.alive, p)
}

// deregister removes a departing peer (swap-remove keeps O(1)).
func (t *tracker) deregister(p *Peer) {
	i, ok := t.index[p.id]
	if !ok {
		return
	}
	last := len(t.alive) - 1
	t.alive[i] = t.alive[last]
	t.index[t.alive[i].id] = i
	t.alive = t.alive[:last]
	delete(t.index, p.id)
}

// size returns the number of live peers.
func (t *tracker) size() int { return len(t.alive) }

// sample returns up to n distinct random peers, excluding the requester.
func (t *tracker) sample(rng *rand.Rand, n int, exclude core.PeerID) []*Peer {
	out := make([]*Peer, 0, n)
	m := len(t.alive)
	if m == 0 {
		return out
	}
	if m <= n+1 {
		for _, p := range t.alive {
			if p.id != exclude {
				out = append(out, p)
			}
		}
		return out
	}
	// Partial Fisher–Yates over the reusable scratch index slice; the
	// walk, draws and output are identical to the old per-call allocation.
	if cap(t.scratch) < m {
		t.scratch = make([]int, m)
	}
	idx := t.scratch[:m]
	for i := range idx {
		idx[i] = i
	}
	for k := 0; k < m && len(out) < n; k++ {
		j := k + rng.Intn(m-k)
		idx[k], idx[j] = idx[j], idx[k]
		p := t.alive[idx[k]]
		if p.id != exclude {
			out = append(out, p)
		}
	}
	return out
}
