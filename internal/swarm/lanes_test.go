package swarm

import (
	"math"
	"testing"

	"rarestfirst/internal/core"
)

// laneConfig is tinyConfig with churn plus lane rounds: arrivals and
// departures exercise lane re-arming, departures mid-grid, and batches
// whose width changes over time.
func laneConfig(workers int) Config {
	cfg := tinyConfig()
	cfg.InitialLeechers = 20
	cfg.ArrivalRate = 0.01
	cfg.SeedLingerMean = 600
	cfg.Duration = 2500
	cfg.ChokeLanes = true
	cfg.LaneWorkers = workers
	return cfg
}

// laneSummary flattens a Result's deterministic outputs for comparison.
type laneSummary struct {
	localCompleted                   bool
	localTime                        float64
	arrivals, finC, finF             int
	meanC, meanF                     float64
	seedServes, dupServes            int
	laneBatches, laneEvents          uint64
	peakWidth                        int
	samples                          int
	sampleSum                        float64
	interest, unchokes, haveReceived int
}

func summarize(t *testing.T, res *Result) laneSummary {
	t.Helper()
	s := laneSummary{
		localCompleted: res.LocalCompleted,
		localTime:      res.LocalDownloadTime,
		arrivals:       res.Arrivals,
		finC:           res.FinishedContrib,
		finF:           res.FinishedFree,
		meanC:          res.MeanDownloadContrib,
		meanF:          res.MeanDownloadFree,
		seedServes:     res.SeedServes,
		dupServes:      res.DupSeedServes,
		laneBatches:    res.Events.LaneBatches,
		laneEvents:     res.Events.LaneEvents,
		peakWidth:      res.Events.PeakLaneWidth,
	}
	for _, p := range res.Collector.Samples {
		s.samples++
		s.sampleSum += p.Mean + float64(p.Min+p.Max+p.RarestSize+p.PeerSet)
	}
	s.interest = res.Collector.MsgCounts["interested_received"]
	s.unchokes = res.Collector.MsgCounts["unchoke_sent"]
	s.haveReceived = res.Collector.MsgCounts["have_received"]
	return s
}

// TestChokeLanesDeterministicAcrossWorkers runs the same lane-mode swarm
// serially and with a parallel compute pool and requires every observable
// output — download outcomes, float means, sample series digests, message
// counts and the lane stats themselves — to match exactly.
func TestChokeLanesDeterministicAcrossWorkers(t *testing.T) {
	serial := summarize(t, New(laneConfig(1)).Run())
	parallel := summarize(t, New(laneConfig(4)).Run())
	if serial != parallel {
		t.Fatalf("lane round results diverge across worker counts:\n serial   %+v\n parallel %+v", serial, parallel)
	}
	again := summarize(t, New(laneConfig(4)).Run())
	if parallel != again {
		t.Fatalf("parallel lane rounds are not reproducible:\n first  %+v\n second %+v", parallel, again)
	}
	if serial.laneBatches == 0 || serial.laneEvents == 0 {
		t.Fatalf("no lane batches executed: %+v", serial)
	}
	// With 21+ peers on a shared grid, instants must batch more than one
	// round.
	if serial.peakWidth < 10 {
		t.Fatalf("peak lane width = %d, want >= 10 (rounds are not batching)", serial.peakWidth)
	}
}

// TestChokeLanesRoundsOnGrid checks the alignment invariant the batching
// relies on: every lane choke round fires on an exact multiple of
// core.ChokeInterval.
func TestChokeLanesRoundsOnGrid(t *testing.T) {
	if got := nextChokeInstant(0); got != core.ChokeInterval {
		t.Fatalf("nextChokeInstant(0) = %v", got)
	}
	if got := nextChokeInstant(core.ChokeInterval); got != 2*core.ChokeInterval {
		t.Fatalf("nextChokeInstant(%v) = %v", core.ChokeInterval, got)
	}
	at := 0.0
	for i := 0; i < 100000; i++ {
		at = nextChokeInstant(at)
	}
	if want := 100000 * core.ChokeInterval; at != want {
		t.Fatalf("grid drifted after 100k re-arms: %v != %v", at, want)
	}
	if got := nextChokeInstant(37.2); got != 40 {
		t.Fatalf("nextChokeInstant(37.2) = %v", got)
	}
}

// TestChokeLanesCompletes is the end-to-end smoke: a lane-mode closed
// swarm still drains to completion, and disabling lanes on the same
// config still works (the two modes are different schedules, so outcomes
// may differ — both just have to finish).
func TestChokeLanesCompletes(t *testing.T) {
	cfg := tinyConfig()
	cfg.ChokeLanes = true
	cfg.LaneWorkers = 2
	res := New(cfg).Run()
	if !res.LocalCompleted {
		t.Fatal("lane-mode local peer did not complete")
	}
	if res.FinishedContrib != cfg.InitialLeechers {
		t.Fatalf("lane mode finished %d of %d leechers", res.FinishedContrib, cfg.InitialLeechers)
	}
	if math.IsNaN(res.MeanDownloadContrib) || res.MeanDownloadContrib <= 0 {
		t.Fatalf("bad mean download time %v", res.MeanDownloadContrib)
	}
	if res.Events.PeakLaneWidth < 2 {
		t.Fatalf("peak lane width = %d", res.Events.PeakLaneWidth)
	}
}
