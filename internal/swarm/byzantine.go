package swarm

// Byzantine-peer detection and response: the sim twin of the real
// client's block-provenance / poisoner-banning machinery (see
// internal/client). Victims attribute hash failures to the peers that
// supplied the piece, strike or ban them, and refuse future connections;
// fake-HAVE stalls time out, strike the liar, and free the piece. All of
// it is gated on Config.Adversary — with a nil plan none of these paths
// run and no engine RNG draw happens, so golden trajectories are
// untouched.

import "rarestfirst/internal/core"

// advFaultN is chaosFault with a count, for byte-valued fault kinds
// (wasted_bytes). Same dual-counter contract: the swarm_-prefixed series
// aggregates swarm-wide, the bare name only counts local-peer incidents
// and is the live-comparable number.
func (s *Swarm) advFaultN(name string, a, b *Peer, n int) {
	s.metrics.faultN(name, n)
	s.col.AddFault("swarm_"+name, n)
	if (a != nil && a.isLocal) || (b != nil && b.isLocal) {
		s.col.AddFault(name, n)
	}
}

// banPeer permanently bans suspect from victim's peer set and tears down
// any live connection between them (so a banned peer can never hold an
// unchoke slot). Idempotent; faultKind names the counted ban fault.
func (s *Swarm) banPeer(victim, suspect *Peer, faultKind string) {
	if victim.bannedPeer(suspect) {
		return
	}
	if victim.banned == nil {
		victim.banned = make(map[core.PeerID]struct{})
	}
	victim.banned[suspect.id] = struct{}{}
	s.chaosFault(faultKind, victim, suspect)
	if victim.connectedTo(suspect) {
		s.disconnect(victim, suspect)
	}
}

// strikePeer accrues one detection against suspect on victim's ledger and
// bans at the configured threshold. No-op in NoBan measurement mode.
func (s *Swarm) strikePeer(victim, suspect *Peer, faultKind string) {
	adv := s.cfg.Adversary
	if adv == nil || adv.NoBan {
		return
	}
	if victim.strikes == nil {
		victim.strikes = make(map[core.PeerID]int)
	}
	victim.strikes[suspect.id]++
	if victim.strikes[suspect.id] >= adv.poisonStrikes() {
		s.banPeer(victim, suspect, faultKind)
	}
}

// poisonDetected handles a failed hash check on victim's piece download
// from supplier (remote piece-granularity path, where the supplier is
// unambiguous): the wasted bytes are counted and the poisoner is banned
// outright unless NoBan measurement mode only tallies the damage.
func (s *Swarm) poisonDetected(victim, supplier *Peer, piece int) {
	s.chaosFault("piece_hash_fail", victim, supplier)
	s.advFaultN("wasted_bytes", victim, supplier, s.geo.PieceSize(piece))
	if adv := s.cfg.Adversary; adv != nil && !adv.NoBan {
		s.banPeer(victim, supplier, "peer_banned_poison")
	}
}

// localPoisonDetected is the local peer's block-granularity counterpart:
// the assembled piece failed its hash check and suspicion lands on the
// recorded suppliers — a sole contributor is banned immediately, mixed
// contributors each take a strike (end game spreads blocks over peers).
func (s *Swarm) localPoisonDetected(victim *Peer, suppliers []core.PeerID, piece int) {
	s.chaosFault("piece_hash_fail", victim, nil)
	s.advFaultN("wasted_bytes", victim, nil, s.geo.PieceSize(piece))
	adv := s.cfg.Adversary
	if adv == nil || adv.NoBan {
		return
	}
	sole := len(suppliers) == 1
	for _, id := range suppliers {
		suspect := s.peers[id]
		if suspect == nil {
			continue
		}
		if sole {
			s.banPeer(victim, suspect, "peer_banned_poison")
		} else {
			s.strikePeer(victim, suspect, "peer_banned_poison")
		}
	}
}

// scheduleFakeHaveTimeout arms the stall timer for a request issued on
// the strength of a fake HAVE. At fire time — unless the stall already
// resolved (disconnect or ban tore the conn down, or a choke requeued the
// local peer's ref) — the victim frees the piece, strikes the liar (snub
// semantics, mirroring the live client's timeout path) and retries on the
// surviving connections.
func (s *Swarm) scheduleFakeHaveTimeout(p *Peer, c *conn, piece int) {
	timeout := 20.0
	if adv := s.cfg.Adversary; adv != nil {
		timeout = adv.fakeHaveTimeout()
	}
	liar := c.remote
	s.eng.After(timeout, func() {
		if p.departed || c.stallPiece != piece || p.conns[liar.id] != c {
			return
		}
		c.stallPiece = -1
		if p.isLocal {
			p.req.OnRequestTimeout(liar.id, c.flowRef)
		} else {
			p.inflight.Clear(piece)
		}
		s.chaosFault("fake_have_timeout", p, liar)
		s.strikePeer(p, liar, "peer_snubbed")
		p.retryRequests()
	})
}
