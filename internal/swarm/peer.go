package swarm

import (
	"math/rand"
	"time"

	"rarestfirst/internal/bitfield"
	"rarestfirst/internal/core"
	"rarestfirst/internal/rate"
	"rarestfirst/internal/sim"
)

// conn is one peer's directed view of a connection: interest and choke
// state in both directions, rate estimators, byte counters and the active
// flows. Both endpoints hold their own conn for the pair; state changes are
// mirrored synchronously (control messages are instantaneous in the model).
type conn struct {
	owner  *Peer
	remote *Peer

	// mirror is the remote side's conn for the same pair, bound at connect
	// time and nilled at disconnect. Every mirrored state change used to
	// look it up through remote.conns[owner.id]; at 10k-peer scale those
	// map probes were ~25% of the run, so the hot paths take this pointer
	// instead (the map remains the membership/lookup-by-id structure).
	mirror *conn

	initiatedByOwner bool

	amInterested   bool // owner is interested in remote
	peerInterested bool // remote is interested in owner
	amUnchoking    bool // owner unchokes remote
	peerUnchoking  bool // remote unchokes owner

	// lastUnchokedAt is when the owner last transitioned the remote from
	// choked to unchoked (new seed algorithm ordering).
	lastUnchokedAt float64

	inEst  rate.Estimator // rate owner receives from remote
	outEst rate.Estimator // rate owner sends to remote

	bytesIn  int64 // owner received from remote
	bytesOut int64 // owner sent to remote

	// Active download (owner <- remote).
	inFlow      *sim.Flow
	flowBytes   float64
	flowSettled float64
	flowPiece   int
	flowRef     core.BlockRef // local-peer block downloads only

	// Active upload (owner -> remote); bookkeeping lives on the remote's
	// conn (its inFlow fields); this pointer only marks the slot busy.
	outFlow *sim.Flow

	// stallPiece is the piece the owner requested on the strength of a
	// fake HAVE (the remote advertised it but cannot serve it): the
	// request hangs until the adversary plan's FakeHaveTimeout fires,
	// then the owner strikes the liar and retries elsewhere. -1 when no
	// stall is active; only ever set with Config.Adversary.
	stallPiece int

	// onFlowDone is the owner's flow-completion callback bound once at
	// connect time (block path for the local peer, piece path otherwise),
	// so each request reuses it instead of allocating a closure.
	onFlowDone func()
}

// Peer is one simulated BitTorrent peer. The instrumented local peer runs
// the full block-granularity core.Requester; remote peers run piece-level
// selection through the same core.Picker implementations.
type Peer struct {
	s    *Swarm
	id   core.PeerID
	node sim.NodeID

	have  *bitfield.Bitfield
	avail *core.Availability

	picker  core.Picker
	chokerL core.Choker
	chokerS core.Choker

	conns    map[core.PeerID]*conn
	connList []*conn

	initiated int
	seed      bool
	freeRider bool
	departed  bool
	isLocal   bool

	// Byzantine role (drawn against Config.Adversary.Fraction at join;
	// all false for honest peers and whenever Adversary is nil).
	advPoison bool // delivered pieces are corrupt with PoisonRate
	advLiar   bool // advertises liarBits (full) instead of have
	advFlood  bool // hammers the tracker, never uploads
	// liarBits is the full bitfield a liar shows the swarm.
	liarBits *bitfield.Bitfield
	// banned holds the peers this (honest) peer has banned after poison
	// or fake-HAVE detection; connections to them are refused. strikes
	// counts detections per suspect toward the ban threshold. corrupt
	// marks in-flight pieces known poisoned (local-peer block path draws
	// per block and settles at completion). All lazily allocated —
	// honest runs with Adversary nil never touch them.
	banned  map[core.PeerID]struct{}
	strikes map[core.PeerID]int
	corrupt map[int]bool

	joinedAt   float64
	finishedAt float64 // time of leecher->seed transition; -1 if never

	// Remote-peer piece-level download state.
	inflight       *bitfield.Bitfield
	pieceRemaining map[int]float64
	downloaded     int

	// Local-peer block-level state.
	req           *core.Requester
	endgameMarked bool

	chokeTimer     *sim.Timer
	nextAnnounceOK float64

	// Steady-state scratch reused across events so rounds allocate
	// nothing: the choke-round peer snapshot, the completion/teardown
	// connection snapshot, the picker state, and the choke-round callback
	// (bound once instead of a method-value allocation per re-arm).
	chokePeers  []core.ChokePeer
	connScratch []*conn
	pickState   core.PickState
	chokeFn     func()

	// Lane-mode state (Config.ChokeLanes; see lanes.go): the private
	// choke RNG a parallel compute phase may advance, the compute/apply
	// halves bound once, and the unchoke set parked between them.
	chokeRNG    *rand.Rand
	laneFn      func() func()
	laneApplyFn func()
	laneUnchoke []core.PeerID
	// Deferred tracker re-contact (lane mode): the bound compute/apply
	// halves and the at-most-one-pending-per-peer mark.
	reannounceFn      func() func()
	reannounceApplyFn func()
	reannouncePending bool
}

// hasPiece reports whether the peer owns piece i (requester-backed for the
// local peer; the bitfield is shared so this is a plain lookup).
func (p *Peer) hasPiece(i int) bool { return p.have.Has(i) }

// shownBits is the bitfield the peer ADVERTISES: the truth for honest
// peers, the full liarBits for bitfield liars. Every remote-view read
// (availability accounting, interest, piece picking) goes through it;
// truth-view reads (globalAvail, actual serve capability) stay on have.
func (p *Peer) shownBits() *bitfield.Bitfield {
	if p.advLiar {
		return p.liarBits
	}
	return p.have
}

// shownHas reports whether the peer claims piece i.
func (p *Peer) shownHas(i int) bool { return p.advLiar || p.have.Has(i) }

// looksSeed reports whether the peer presents as a seed to the swarm.
func (p *Peer) looksSeed() bool { return p.seed || p.advLiar }

// bannedPeer reports whether p has banned q.
func (p *Peer) bannedPeer(q *Peer) bool {
	_, ok := p.banned[q.id]
	return ok
}

// interestedIn reports whether p should be interested in remote. Liars
// are never interested: they pose as seeds and never download.
func (p *Peer) interestedIn(remote *Peer) bool {
	return !p.seed && !p.advLiar && p.have.AnyMissingIn(remote.shownBits())
}

// connectedTo reports whether p has a connection to q.
func (p *Peer) connectedTo(q *Peer) bool {
	_, ok := p.conns[q.id]
	return ok
}

// ---------------------------------------------------------------------------
// Interest management

// setInterest flips the owner's interest on conn c and mirrors it to the
// remote side, notifying the collector when the local peer is involved.
func (p *Peer) setInterest(c *conn, v bool) {
	if c.amInterested == v {
		return
	}
	c.amInterested = v
	now := p.s.eng.Now()
	if rc := c.mirror; rc != nil {
		rc.peerInterested = v
	}
	if p.isLocal {
		p.s.col.LocalInterest(int(c.remote.id), now, v)
	}
	if c.remote.isLocal {
		p.s.col.RemoteInterest(int(p.id), now, v)
	}
	if v {
		p.maybeRequest(c)
	}
}

// refreshInterest recomputes interest from the bitfields (full check).
func (p *Peer) refreshInterest(c *conn) {
	p.setInterest(c, p.interestedIn(c.remote))
}

// ---------------------------------------------------------------------------
// Requesting and transfers

// retryRequests re-attempts a request on every idle connection. It must be
// called whenever a previously in-flight piece becomes requestable again
// (cancelled by a choke or a departure): that is the only transition that
// adds pick candidates without any other notification reaching this peer.
func (p *Peer) retryRequests() {
	if p.departed || p.seed {
		return
	}
	for _, c := range p.connList {
		p.maybeRequest(c)
	}
}

// maybeRequest starts a download on conn c (owner downloading from
// c.remote) when the remote unchokes us, we are interested, and no transfer
// is already active on the connection.
func (p *Peer) maybeRequest(c *conn) {
	if p.departed || p.seed || p.advLiar || c.inFlow != nil || c.stallPiece >= 0 ||
		!c.peerUnchoking || !c.amInterested {
		return
	}
	if p.isLocal {
		p.requestBlock(c)
		return
	}
	p.requestPiece(c)
}

// requestPiece is the remote-peer piece-granularity request path.
func (p *Peer) requestPiece(c *conn) {
	s := p.s
	u := c.remote
	piece := -1
	bytes := 0.0
	resumed := false
	// Resume a partially downloaded piece first (blocks already received
	// are fungible across peers, as in the real protocol): lowest index
	// for determinism.
	for q, rem := range p.pieceRemaining {
		if u.shownHas(q) && !p.hasPiece(q) && !p.inflight.Has(q) && rem > 0 {
			if piece == -1 || q < piece {
				piece = q
				bytes = rem
				resumed = true
			}
		}
	}
	if piece == -1 {
		p.pickState = core.PickState{Have: p.have, InFlight: p.inflight, Remote: u.shownBits(), Downloaded: p.downloaded}
		piece = p.picker.Pick(s.eng.RNG(), &p.pickState)
		if piece >= 0 {
			bytes = float64(s.geo.PieceSize(piece))
		}
	}
	if piece < 0 {
		return
	}
	if !u.hasPiece(piece) {
		// Fake HAVE: the remote advertised a piece it cannot serve. The
		// request stalls (the piece is held in flight so other conns skip
		// it) until the timeout strikes the liar and frees it.
		p.inflight.Set(piece)
		c.stallPiece = piece
		s.scheduleFakeHaveTimeout(p, c, piece)
		return
	}
	// Smart seed-serve (idealized coding / super seeding, A4): the initial
	// seed substitutes its least-served piece among those we lack — but
	// never hijacks a resume, or partial pieces would smear forever.
	if s.cfg.SmartSeedServe && u == s.initialSeed && !resumed {
		if sub := s.seedServeOverride(p); sub >= 0 && sub != piece {
			piece = sub
			bytes = float64(s.geo.PieceSize(piece))
			if rem, ok := p.pieceRemaining[piece]; ok && rem > 0 {
				bytes = rem
			}
		}
	}
	if u == s.initialSeed {
		s.noteSeedServeStart(piece)
	}
	delete(p.pieceRemaining, piece)
	p.inflight.Set(piece)
	c.flowPiece = piece
	c.flowBytes = bytes
	c.flowSettled = 0
	c.inFlow = s.net.StartFlow(u.node, p.node, bytes, c.onFlowDone)
	if uc := c.mirror; uc != nil {
		uc.outFlow = c.inFlow
	}
}

// requestBlock is the local-peer block-granularity request path through the
// full Requester (strict priority + end game).
func (p *Peer) requestBlock(c *conn) {
	s := p.s
	u := c.remote
	ref, ok := p.req.Next(s.eng.RNG(), u.id, u.shownBits())
	if !ok {
		return
	}
	if !u.hasPiece(ref.Piece) {
		// Fake HAVE on the block path: the ref stays pending with the
		// Requester until the timeout requeues it and strikes the liar.
		c.flowRef = ref
		c.stallPiece = ref.Piece
		s.scheduleFakeHaveTimeout(p, c, ref.Piece)
		return
	}
	if p.req.InEndGame() && !p.endgameMarked {
		p.endgameMarked = true
		s.col.MarkEvent(s.eng.Now(), "end_game")
	}
	if u == s.initialSeed && ref.Block == 0 {
		s.noteSeedServeStart(ref.Piece)
	}
	bytes := float64(s.geo.BlockSize(ref.Piece, ref.Block))
	c.flowRef = ref
	c.flowPiece = ref.Piece
	c.flowBytes = bytes
	c.flowSettled = 0
	c.inFlow = s.net.StartFlow(u.node, p.node, bytes, c.onFlowDone)
	if uc := c.mirror; uc != nil {
		uc.outFlow = c.inFlow
	}
}

// settleDown credits in-flight download progress on conn c to both ends'
// estimators, byte counters and (when the local peer is involved) the
// collector. Called at choke rounds and at flow completion/cancellation so
// rates are smooth at any granularity.
func (p *Peer) settleDown(c *conn) {
	if c.inFlow == nil {
		return
	}
	now := p.s.eng.Now()
	progress := c.flowBytes - c.inFlow.Remaining(now)
	delta := int64(progress - c.flowSettled)
	if delta <= 0 {
		return
	}
	c.flowSettled += float64(delta)
	c.bytesIn += delta
	c.inEst.Update(now, delta)
	if uc := c.mirror; uc != nil {
		uc.bytesOut += delta
		uc.outEst.Update(now, delta)
	}
	if p.isLocal {
		p.s.col.Downloaded(int(c.remote.id), now, delta)
	}
	if c.remote.isLocal {
		p.s.col.Uploaded(int(p.id), now, delta)
	}
}

// clearFlow drops the flow pointers on both ends after settle.
func (p *Peer) clearFlow(c *conn) {
	if uc := c.mirror; uc != nil && uc.outFlow == c.inFlow {
		uc.outFlow = nil
	}
	c.inFlow = nil
}

// onPieceFlowDone completes a remote-peer piece download.
func (p *Peer) onPieceFlowDone(c *conn) {
	p.settleDown(c)
	p.clearFlow(c)
	piece := c.flowPiece
	p.inflight.Clear(piece)
	if c.remote == p.s.initialSeed {
		p.s.recordSeedServeDone(piece)
	}
	if adv := p.s.cfg.Adversary; adv != nil && c.remote.advPoison &&
		p.s.eng.RNG().Float64() < adv.PoisonRate {
		// The piece fails its hash check: the bytes are wasted and the
		// piece must be refetched. At piece granularity the supplier is
		// unambiguous, so the poisoner is banned outright (NoBan mode only
		// counts the faults). The ban tears down c, so retry over the
		// surviving connection list rather than touching c again.
		p.s.poisonDetected(p, c.remote, piece)
		p.retryRequests()
		return
	}
	p.completePiece(piece)
	p.maybeRequest(c)
}

// onBlockFlowDone completes a local-peer block download.
func (p *Peer) onBlockFlowDone(c *conn) {
	s := p.s
	p.settleDown(c)
	p.clearFlow(c)
	now := s.eng.Now()
	s.col.BlockReceived(now)
	if adv := s.cfg.Adversary; adv != nil && c.remote.advPoison &&
		s.eng.RNG().Float64() < adv.PoisonRate {
		// A corrupt block is undetectable until the assembled piece fails
		// its hash check, so only mark the piece and keep downloading.
		if p.corrupt == nil {
			p.corrupt = make(map[int]bool)
		}
		p.corrupt[c.flowRef.Piece] = true
	}
	done, cancels := p.req.OnBlock(c.remote.id, c.flowRef)
	// End-game cancels: abort duplicate in-flight fetches of this block.
	for _, cb := range cancels {
		if oc := p.conns[cb.Peer]; oc != nil && oc.inFlow != nil && oc.flowRef == cb.Ref {
			p.settleDown(oc)
			f := oc.inFlow
			p.clearFlow(oc)
			f.Cancel()
			p.maybeRequest(oc)
		}
	}
	if done {
		piece := c.flowRef.Piece
		if p.corrupt[piece] {
			// Hash check fails at assembly: blame the recorded suppliers
			// (sole contributor banned outright, mixed get strikes) and
			// requeue the piece. Bans may tear down connections, so retry
			// over the surviving list instead of c directly.
			delete(p.corrupt, piece)
			suppliers := p.req.PieceSuppliers(piece)
			p.req.OnPieceHashFail(piece)
			s.localPoisonDetected(p, suppliers, piece)
			p.retryRequests()
			return
		}
		s.col.PieceCompleted(now, piece)
		if c.remote == s.initialSeed {
			// Attribute the piece to the initial seed when it delivered
			// the completing block (local path approximation).
			s.recordSeedServeDone(piece)
		}
		p.completePiece(piece)
	}
	p.maybeRequest(c)
}

// cancelDownload aborts the active download on c. When requeue is true the
// partial progress is preserved: remote peers remember the piece remainder
// (blocks already fetched are fungible), the local peer requeues its
// pending blocks through the Requester.
func (p *Peer) cancelDownload(c *conn, requeue bool) {
	if c.stallPiece >= 0 {
		// A stalled fake-HAVE request holds no flow; free the piece. The
		// local peer's pending ref is requeued by OnPeerGone below; its
		// inflight bitfield is owned by the Requester.
		if !p.isLocal {
			p.inflight.Clear(c.stallPiece)
		}
		c.stallPiece = -1
	}
	if c.inFlow == nil {
		if p.isLocal {
			p.req.OnPeerGone(c.remote.id)
		}
		return
	}
	p.settleDown(c)
	f := c.inFlow
	rem := f.Remaining(p.s.eng.Now())
	p.clearFlow(c)
	f.Cancel()
	if p.isLocal {
		p.req.OnPeerGone(c.remote.id)
		return
	}
	p.inflight.Clear(c.flowPiece)
	if requeue && rem > 0 && !p.hasPiece(c.flowPiece) {
		p.pieceRemaining[c.flowPiece] = rem
	}
}

// ---------------------------------------------------------------------------
// Piece completion and seeding

// completePiece records ownership of piece idx, broadcasts the HAVE to the
// peer set (instantaneous control plane), updates both directions of
// interest, and lets neighbours react.
func (p *Peer) completePiece(idx int) {
	if !p.isLocal {
		// The local peer's bitfield is owned by its Requester and is
		// already updated by OnBlock.
		p.have.Set(idx)
	}
	p.downloaded++
	p.s.metrics.pieces.Inc()
	p.s.globalAvail.Inc(idx)
	if p.s.cfg.BatchHaves {
		// Batched mode: copy counts still update synchronously — a
		// neighbour disconnecting before the flush removes the whole
		// bitfield including this piece, so deferring the Incs would
		// underflow the index — but with lazy buckets each Inc is a few
		// O(1) writes. The expensive half (per-neighbour interest and
		// request reactions) parks on the pending-HAVE set until the
		// post-event flush.
		for _, c := range p.connList {
			n := c.remote
			if c.mirror == nil {
				continue
			}
			n.avail.Inc(idx)
			if n.isLocal {
				p.s.col.CountMsg("have_received")
			}
		}
		p.s.pendingHaves = append(p.s.pendingHaves, pendingHave{p: p, piece: idx})
		if p.have.Complete() {
			p.becomeSeed()
		}
		return
	}
	// Snapshot: interest updates may trigger requests but never
	// connect/disconnect, so iterating a copy is about robustness only.
	// The scratch buffer is reused across completions; no code path
	// re-enters completePiece/becomeSeed/depart on the SAME peer while the
	// walk runs (neighbour reactions never complete a piece synchronously).
	snapshot := append(p.connScratch[:0], p.connList...)
	p.connScratch = snapshot
	for _, c := range snapshot {
		n := c.remote
		nc := c.mirror
		if nc == nil {
			continue
		}
		n.avail.Inc(idx)
		if n.isLocal {
			p.s.col.CountMsg("have_received")
		}
		// The neighbour may become interested in us (O(1) fast path: it
		// lacks the new piece; liars pose as seeds and never want).
		if !nc.amInterested && !n.seed && !n.advLiar && !n.hasPiece(idx) {
			n.setInterest(nc, true)
		}
		// Our interest in the neighbour can only drop, and only if the
		// neighbour shows the piece we just finished.
		if c.amInterested && n.shownHas(idx) {
			p.refreshInterest(c)
		}
		// The neighbour's picker may now find this piece fetchable from us.
		n.maybeRequest(nc)
	}
	if p.have.Complete() {
		p.becomeSeed()
	}
}

// flushHaves runs the deferred HAVE reactions queued by completePiece in
// BatchHaves mode — once per event, from the post-event hook, before the
// Net flush (reactions may start flows whose rates that flush settles).
//
// Reactions run in completion order, each against the owner's CURRENT
// connection list: a neighbour that disconnected since the completion is
// simply gone (its copy counts were already corrected by RemovePeer), and
// one that connected since sees the piece via the normal bitfield
// exchange, so the extra reaction is idempotent. Reactions never complete
// a piece synchronously (completions arrive via flow timers, i.e. later
// events), so the set cannot grow while it drains — the index walk is
// still re-checked against len for robustness.
func (s *Swarm) flushHaves() {
	if len(s.pendingHaves) == 0 {
		return
	}
	var t0 time.Time
	if s.phases != nil {
		t0 = time.Now()
	}
	for i := 0; i < len(s.pendingHaves); i++ {
		ph := s.pendingHaves[i]
		p, idx := ph.p, ph.piece
		if p.departed {
			continue
		}
		snapshot := append(p.connScratch[:0], p.connList...)
		p.connScratch = snapshot
		for _, c := range snapshot {
			n := c.remote
			nc := c.mirror
			if nc == nil {
				continue
			}
			// Same reaction set as the eager walk in completePiece.
			if !nc.amInterested && !n.seed && !n.advLiar && !n.hasPiece(idx) {
				n.setInterest(nc, true)
			}
			if c.amInterested && n.shownHas(idx) {
				p.refreshInterest(c)
			}
			n.maybeRequest(nc)
		}
	}
	s.pendingHaves = s.pendingHaves[:0]
	if s.phases != nil {
		s.phases.HaveFlush.Add(time.Since(t0).Nanoseconds())
	}
}

// becomeSeed switches the peer to seed state: it stops being interested,
// closes connections to other seeds (§IV-A.2.b: "when a leecher becomes a
// seed, it closes its connections to all the seeds"), swaps in the
// seed-state choke algorithm, and schedules its departure.
func (p *Peer) becomeSeed() {
	if p.seed {
		return
	}
	s := p.s
	now := s.eng.Now()
	p.seed = true
	p.finishedAt = now
	if p.isLocal {
		s.col.LocalSeed(now)
	}
	snapshot := append(p.connScratch[:0], p.connList...)
	p.connScratch = snapshot
	for _, c := range snapshot {
		// Abort any leftover end-game downloads.
		p.cancelDownload(c, false)
		if c.remote.looksSeed() {
			s.disconnect(p, c.remote)
			continue
		}
		p.setInterest(c, false)
		if c.remote.isLocal {
			s.col.RemoteSeedStatus(int(p.id), now, true)
		}
	}
	if !p.isLocal && !(p == s.initialSeed && s.cfg.KeepInitialSeed) && s.cfg.SeedLingerMean > 0 {
		linger := s.eng.RNG().ExpFloat64() * s.cfg.SeedLingerMean
		s.eng.After(linger, p.depart)
	}
}

// depart removes the peer from the torrent.
func (p *Peer) depart() {
	if p.departed || p.isLocal {
		return
	}
	s := p.s
	p.departed = true
	if p.chokeTimer != nil {
		p.chokeTimer.Cancel()
	}
	snapshot := append(p.connScratch[:0], p.connList...)
	p.connScratch = snapshot
	for _, c := range snapshot {
		s.disconnect(p, c.remote)
	}
	s.trk.deregister(p)
	s.globalAvail.RemovePeer(p.have)
}

// ---------------------------------------------------------------------------
// Choke rounds

// chokeRound runs one 10-second round of the appropriate choke algorithm,
// applies the transitions and re-arms itself. The re-arm happens after the
// round's work, exactly where the old deferred re-arm ran, so event
// sequence numbering — and with it same-instant tie-breaking — is
// unchanged.
func (p *Peer) chokeRound() {
	if p.departed {
		return
	}
	p.runChokeRound()
	p.chokeTimer = p.s.eng.After(core.ChokeInterval, p.chokeFn)
}

// runChokeRound is one round's body. All working storage is per-peer or
// per-choker scratch: a steady-state round performs no allocation.
func (p *Peer) runChokeRound() {
	if len(p.connList) == 0 {
		return
	}
	p.s.metrics.chokeRounds.Inc()
	s := p.s
	now := s.eng.Now()
	// Settle estimators so rate ordering reflects in-flight progress.
	for _, c := range p.connList {
		p.settleDown(c)
		if c.outFlow != nil {
			if rc := c.mirror; rc != nil {
				c.remote.settleDown(rc)
			}
		}
	}
	peers := p.chokePeers[:0]
	for _, c := range p.connList {
		peers = append(peers, core.ChokePeer{
			ID:             c.remote.id,
			Interested:     c.peerInterested,
			Unchoked:       c.amUnchoking,
			DownloadRate:   c.inEst.Rate(now),
			UploadRate:     c.outEst.Rate(now),
			LastUnchoked:   c.lastUnchokedAt,
			UploadedTo:     c.bytesOut,
			DownloadedFrom: c.bytesIn,
			RemotePieces:   c.remote.shownBits().Count(),
		})
	}
	p.chokePeers = peers
	choker := p.chokerL
	if p.seed || p.advLiar {
		// Liars pose as seeds, so they run the seed unchoke policy too.
		choker = p.chokerS
	}
	unchoke := choker.Round(now, peers, s.eng.RNG())
	for _, c := range p.connList {
		p.applyChoke(c, containsPeerID(unchoke, c.remote.id))
	}
}

// containsPeerID reports whether id is in ids (at most UploadSlots long,
// so a linear scan beats a map).
func containsPeerID(ids []core.PeerID, id core.PeerID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// applyChoke transitions one connection's choke state and mirrors it.
func (p *Peer) applyChoke(c *conn, unchoke bool) {
	if c.amUnchoking == unchoke {
		return
	}
	s := p.s
	now := s.eng.Now()
	c.amUnchoking = unchoke
	rc := c.mirror
	if rc != nil {
		rc.peerUnchoking = unchoke
	}
	if unchoke {
		c.lastUnchokedAt = now
		if p.isLocal {
			s.col.Unchoke(int(c.remote.id), now)
		}
		if rc != nil {
			c.remote.maybeRequest(rc)
		}
		return
	}
	if p.isLocal {
		s.col.Choke(int(c.remote.id), now)
	}
	// Choking kills the remote's in-progress download from us; it keeps
	// its partial piece and re-requests elsewhere.
	if rc != nil && rc.inFlow != nil {
		c.remote.cancelDownload(rc, true)
		c.remote.retryRequests()
	} else if rc != nil && c.remote.isLocal {
		// Requeue the local peer's pending requests even without a flow.
		c.remote.req.OnPeerGone(p.id)
		c.remote.retryRequests()
	}
}
