// Package swarm is the discrete-event BitTorrent swarm simulator: peers
// composed from the internal/core algorithms, an in-simulation tracker with
// the mainline peer-set management rules, churn, and the instrumented local
// peer whose traces feed every figure of the paper.
//
// Simplifications relative to a live Internet swarm, and why they are safe
// in the paper's stated context ("peers well connected without severe
// network bottlenecks"), are listed in DESIGN.md: control messages are
// instantaneous (only data transfers consume bandwidth), and remote<->remote
// transfers run at piece granularity while every transfer touching the
// instrumented local peer runs at true block (16 kB) granularity.
package swarm

import (
	"math"
	"math/rand"

	"rarestfirst/internal/metainfo"
)

// PickerKind selects the swarm-wide piece selection strategy.
type PickerKind int

// Piece selection strategies.
const (
	PickRarestFirst PickerKind = iota
	PickRandom
	PickSequential
	PickGlobalRarest
)

// SeedChokerKind selects the algorithm peers use in seed state.
type SeedChokerKind int

// Seed-state choke algorithms.
const (
	SeedChokeNew SeedChokerKind = iota // mainline >= 4.0.0 (the paper's subject)
	SeedChokeOld                       // upload-rate ordered (pre-4.0.0 baseline)
)

// LeecherChokerKind selects the algorithm peers use in leecher state.
type LeecherChokerKind int

// Leecher-state choke algorithms.
const (
	LeecherChokeStandard  LeecherChokerKind = iota
	LeecherChokeTitForTat                   // bit-level tit-for-tat baseline
)

// CapacityClass is one rung of the remote-peer access-capacity mix.
type CapacityClass struct {
	Name     string
	UpBps    float64 // upload capacity, bytes/second
	DownBps  float64 // download capacity, bytes/second (0 = uncapped)
	Fraction float64 // share of the population
}

// DefaultCapacityMix approximates the 2005-era host population the paper's
// torrents drew from (dial-up/DSL/cable/university): most peers upload far
// slower than they download, and a small fast tail exists — the paper
// observed local download speeds from 20 kB/s up to 1500 kB/s. Mean upload
// is ~35 kB/s; the paper's 20 kB/s local peer is competitive with the DSL
// class, so it can hold regular-unchoke slots through reciprocation rather
// than depending purely on optimistic unchokes — the equilibrium behind
// Fig 9's concentration.
func DefaultCapacityMix() []CapacityClass {
	return []CapacityClass{
		{Name: "slow", UpBps: 8 << 10, DownBps: 96 << 10, Fraction: 0.35},
		{Name: "dsl", UpBps: 24 << 10, DownBps: 384 << 10, Fraction: 0.40},
		{Name: "cable", UpBps: 48 << 10, DownBps: 768 << 10, Fraction: 0.18},
		{Name: "fast", UpBps: 192 << 10, DownBps: 1536 << 10, Fraction: 0.07},
	}
}

// sampleCapacity draws a class according to the mix fractions.
func sampleCapacity(rng *rand.Rand, mix []CapacityClass) CapacityClass {
	total := 0.0
	for _, c := range mix {
		total += c.Fraction
	}
	x := rng.Float64() * total
	for _, c := range mix {
		if x < c.Fraction {
			return c
		}
		x -= c.Fraction
	}
	return mix[len(mix)-1]
}

// Config fully describes one experiment. The zero value is not runnable;
// start from DefaultConfig.
type Config struct {
	Seed int64 // RNG seed; runs are bit-reproducible given the seed

	// Content geometry.
	NumPieces int
	PieceSize int // bytes
	BlockSize int // bytes; metainfo.BlockSize unless testing

	// Population at experiment start.
	InitialSeeds    int
	InitialLeechers int

	// Peer set management (mainline defaults from §II-B / §III-C).
	MaxPeerSet      int // 80, or the per-torrent "Max PS" of Table I
	MinPeerSet      int // 20: re-announce threshold
	MaxInitiated    int // 40: cap on locally initiated connections
	TrackerResponse int // 50 random peers per announce

	// Choke parameters.
	UploadSlots int // 4 = 3 regular + 1 optimistic

	// Strategy selection (swarm-wide; ablation knobs).
	Picker        PickerKind
	SeedChoker    SeedChokerKind
	LeecherChoker LeecherChokerKind
	// TFTDeficitLimit is the tit-for-tat deficit threshold in bytes.
	TFTDeficitLimit int64
	// DisableRandomFirst turns off the random-first policy everywhere.
	DisableRandomFirst bool
	// BoostNewcomers enables the §VI extension: exploratory unchoke slots
	// (OU and SRU) prefer peers that have no pieces yet.
	BoostNewcomers bool

	// Capacities.
	LocalUpBps    float64 // instrumented peer upload cap (paper: 20 kB/s)
	LocalDownBps  float64 // 0 = uncapped (paper: no limit)
	InitialSeedUp float64 // initial seed upload capacity
	CapacityMix   []CapacityClass

	// Churn.
	ArrivalRate     float64 // new leechers per second (Poisson); 0 = closed system
	SeedLingerMean  float64 // mean seconds a finished leecher keeps seeding
	AbortRate       float64 // per-leecher departure hazard before completion (1/s)
	KeepInitialSeed bool    // initial seed never departs

	// Smart seed-serve policy (idealized network coding / super seeding,
	// the A4 ablation): the initial seed substitutes the least-served piece
	// for whatever the downloader picked.
	SmartSeedServe bool

	// InitialSeedLeaveAt, when positive, makes the initial seed depart at
	// that simulated time regardless of KeepInitialSeed — the failure
	// injection behind "a torrent is alive as long as there is at least
	// one copy of each piece" (§II-B).
	InitialSeedLeaveAt float64

	// FreeRiderFraction of arriving/initial leechers never upload.
	FreeRiderFraction float64

	// AvailableFrac is the fraction of pieces present in the torrent at
	// start (the rest are held by nobody — torrent 1's dead-torrent
	// scenario). 0 means 1.0 (all pieces available).
	AvailableFrac float64
	// LeecherBootstrapMax, when positive, gives each INITIAL leecher a
	// uniform random fraction in [0, LeecherBootstrapMax] of the available
	// pieces, modelling a join into a long-running torrent. Later arrivals
	// always start empty, as does the instrumented local peer.
	LeecherBootstrapMax float64

	// Local (instrumented) peer.
	LocalJoinTime  float64 // warm-up before the local peer joins
	LocalFreeRider bool    // make the instrumented peer a free rider (A5 probe)

	// Duration is how long the experiment runs after the local peer joins;
	// the paper ran 8 h. Sampling cadence for Figs 2–6 is SampleEvery.
	Duration    float64
	SampleEvery float64

	// ChokeLanes aligns every peer's choke rounds to the global
	// ChokeInterval grid and executes each instant's rounds as one batched
	// sim.Engine lane: the per-peer decision (rate snapshot + choke
	// algorithm) runs as a read-only compute phase fanned across
	// LaneWorkers goroutines, then the state transitions apply serially in
	// peer-id order. Results are bit-identical for any LaneWorkers value;
	// they differ from the default (staggered, interleaved) rounds, so the
	// flag is off everywhere the reproducibility goldens cover and on for
	// the 10k-peer scale runs.
	ChokeLanes bool
	// LaneWorkers bounds the lane compute pool; 0 means runtime.NumCPU().
	// It is pure scheduling — never part of the reproducibility contract.
	LaneWorkers int

	// HeapShards splits the engine's event heap into this many keyed
	// subheaps (rounded up to a power of two) plus a global shard, merged
	// at pop time by a loser tree — see sim.Engine.SetHeapShards. 0 keeps
	// the single monolithic heap, which doubles as the determinism oracle.
	// Sharding is trajectory-preserving (pop order is identical), so any
	// scenario may turn it on without a reproducibility-contract bump;
	// what it buys is per-shard timer pools and a shard-parallel flush
	// apply phase on multi-core hosts.
	HeapShards int

	// Chaos, when non-nil, enables fault injection: failed and delayed
	// connection establishment, scheduled connection resets, and a tracker
	// blackout window during which announces fail and peers retry with a
	// fixed backoff. All draws come from the engine RNG, so a chaos run is
	// as bit-reproducible as a clean one; nil (the default, and every
	// golden scenario) adds no draws and no behavior change. These are the
	// sim twins of the live lab's netem fault plans.
	Chaos *Chaos

	// Crashes, when non-nil, enables process-failure injection: a
	// fraction of leechers is killed mid-transfer (availability counts
	// decremented, connections torn down, the tracker entry dropped) and
	// rejoins after an exponential downtime retaining a configurable
	// fraction of its verified pieces — the sim twin of the live lab's
	// kill/restart crash schedules. All draws come from the engine RNG,
	// so a crash run is as bit-reproducible as a clean one; nil (the
	// default, and every golden scenario) adds no draws and no behavior
	// change.
	Crashes *Crashes

	// Adversary, when non-nil, mixes Byzantine peers into the arriving
	// leecher population: piece poisoners (delivered pieces fail
	// verification with PoisonRate, wasting the bandwidth and forcing a
	// re-download), bitfield liars (advertise every piece, baiting
	// requests that stall until FakeHaveTimeout), and announce flooders.
	// Honest peers defend with provenance-based strikes and bans unless
	// NoBan is set. Like Chaos, every draw comes from the engine RNG, so
	// adversarial runs stay bit-reproducible; nil (the default and every
	// golden scenario) adds no draws and no behavior change.
	Adversary *Adversary

	// Invariants enables the swarm invariant checker: at every sample
	// tick and at run end, availability counts are cross-checked against
	// advertised bitfields, ban lists against unchoke slots, and the
	// local requester's redundant bookkeeping against itself, panicking
	// on the first violation. Pure reads — a run's trajectory and digest
	// are identical with the checker on or off.
	Invariants bool

	// BatchHaves batches completePiece's per-neighbor HAVE reactions into
	// a per-instant pending set flushed once per event (riding the
	// post-event hook), and switches the availability indices to lazy
	// bucket maintenance — killing the per-HAVE bucket-shuffle hot spot at
	// flash-crowd scale. Copy counts still update synchronously (so
	// departures can never underflow them); only the interest/request
	// reactions defer, and the lazy buckets rebuild in ascending piece
	// order, so runs differ from the default mode — like ChokeLanes, this
	// is off everywhere the goldens cover and on for the 100k-peer runs.
	BatchHaves bool
}

// Chaos is the simulator's fault-injection plan — the twin of the live
// lab's netem knobs, in simulated seconds and probabilities.
type Chaos struct {
	// ConnSetupDelay defers each connection establishment by this many
	// simulated seconds (the sim twin of WAN propagation delay, which
	// only matters at setup since control traffic is instantaneous).
	ConnSetupDelay float64
	// DialFailRate is the probability a connection attempt fails outright
	// (the pair stays disconnected until some later trigger retries).
	DialFailRate float64
	// ConnResetRate is the probability an established connection gets a
	// scheduled reset, after an Exp(ConnResetMeanDelay) delay.
	ConnResetRate      float64
	ConnResetMeanDelay float64 // seconds; 0 = 60
	// Tracker blackout window in simulated time: announces inside
	// [TrackerBlackoutStart, TrackerBlackoutEnd) fail, and the peer
	// retries AnnounceRetry seconds later.
	TrackerBlackoutStart float64
	TrackerBlackoutEnd   float64
	AnnounceRetry        float64 // seconds; 0 = 30
}

// Crashes is the simulator's crash-and-rejoin plan — the sim twin of the
// live lab's process kill/restart schedules (internal/crash plans), in
// simulated seconds and probabilities.
type Crashes struct {
	// Frac is the probability each arriving/initial leecher (never a
	// seed or the instrumented local peer) crashes once during the run.
	Frac float64
	// WindowStart / WindowEnd bound the crash window in simulated time;
	// each victim's kill instant is uniform inside the window.
	WindowStart float64
	WindowEnd   float64
	// MeanDowntime is the mean of the exponential downtime between
	// crash and rejoin (0 = 30 simulated seconds).
	MeanDowntime float64
	// RetainFrac is the per-piece probability a verified piece survives
	// the crash (0 = 1.0: a clean resume file keeps everything; lower
	// values model partial loss).
	RetainFrac float64
	// DropAllFirst makes the first crashing peer lose its entire resume
	// state regardless of RetainFrac — the sim twin of the live plan's
	// corrupted-resume-file victim, with the dropped pieces counted as
	// resume hash failures.
	DropAllFirst bool
}

// Defaulting helpers, mirroring Chaos.
func (cr *Crashes) meanDowntime() float64 {
	if cr.MeanDowntime > 0 {
		return cr.MeanDowntime
	}
	return 30
}

func (cr *Crashes) retainFrac() float64 {
	if cr.RetainFrac > 0 {
		return cr.RetainFrac
	}
	return 1.0
}

// Adversary is the simulator's Byzantine peer plan — the sim twin of
// internal/adversary models, in simulated seconds and probabilities.
type Adversary struct {
	// Fraction of arriving/initial leechers (never the initial seeds or
	// the instrumented local peer) that are adversarial.
	Fraction float64
	// PoisonRate makes adversarial peers poisoners: each piece they
	// deliver is corrupt with this probability. The victim detects it at
	// completion, counts the wasted bytes, re-downloads, and (unless
	// NoBan) strikes or bans the supplier.
	PoisonRate float64
	// FakeHaves makes adversarial peers bitfield liars: they advertise a
	// full bitfield while holding nothing and never download, so victims
	// pick pieces the liar cannot serve and stall for FakeHaveTimeout.
	FakeHaves bool
	// Flood makes adversarial peers announce flooders: they hit the
	// tracker every FloodAnnounceEvery seconds and never upload.
	Flood bool
	// FloodAnnounceEvery is the flooder re-announce period (0 = 5s).
	FloodAnnounceEvery float64
	// FakeHaveTimeout is how long a victim waits on a baited request
	// before giving up and striking the liar (0 = 20s).
	FakeHaveTimeout float64
	// PoisonStrikes is the per-peer strike threshold at which honest
	// victims ban a contributor of corrupt pieces (0 = 2). Sole
	// suppliers are banned on first detection.
	PoisonStrikes int
	// NoBan disables the ban response (measurement mode): faults are
	// still counted, adversaries stay in peer sets.
	NoBan bool
}

// Defaulting helpers, mirroring Chaos.
func (a *Adversary) floodAnnounceEvery() float64 {
	if a.FloodAnnounceEvery > 0 {
		return a.FloodAnnounceEvery
	}
	return 5
}

func (a *Adversary) fakeHaveTimeout() float64 {
	if a.FakeHaveTimeout > 0 {
		return a.FakeHaveTimeout
	}
	return 20
}

func (a *Adversary) poisonStrikes() int {
	if a.PoisonStrikes > 0 {
		return a.PoisonStrikes
	}
	return 2
}

// blackedOut reports whether the tracker is inside its blackout window.
func (ch *Chaos) blackedOut(now float64) bool {
	return now >= ch.TrackerBlackoutStart && now < ch.TrackerBlackoutEnd
}

// resetMeanDelay / announceRetry apply the defaults.
func (ch *Chaos) resetMeanDelay() float64 {
	if ch.ConnResetMeanDelay > 0 {
		return ch.ConnResetMeanDelay
	}
	return 60
}

func (ch *Chaos) announceRetry() float64 {
	if ch.AnnounceRetry > 0 {
		return ch.AnnounceRetry
	}
	return 30
}

// DefaultConfig returns mainline defaults on a small steady torrent.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumPieces:       400,
		PieceSize:       metainfo.DefaultPieceSize,
		BlockSize:       metainfo.BlockSize,
		InitialSeeds:    1,
		InitialLeechers: 40,
		MaxPeerSet:      80,
		MinPeerSet:      20,
		MaxInitiated:    40,
		TrackerResponse: 50,
		UploadSlots:     4,
		Picker:          PickRarestFirst,
		SeedChoker:      SeedChokeNew,
		LeecherChoker:   LeecherChokeStandard,
		LocalUpBps:      20 << 10,
		LocalDownBps:    0,
		InitialSeedUp:   128 << 10,
		CapacityMix:     DefaultCapacityMix(),
		ArrivalRate:     0.02,
		SeedLingerMean:  1800,
		KeepInitialSeed: true,
		LocalJoinTime:   600,
		Duration:        4 * 3600,
		SampleEvery:     10,
	}
}

// Geometry returns the metainfo geometry implied by the config.
func (c *Config) Geometry() metainfo.Geometry {
	return metainfo.NewGeometry(int64(c.NumPieces)*int64(c.PieceSize), c.PieceSize)
}

// validate panics on impossible configurations (programming errors, not
// user input).
func (c *Config) validate() {
	switch {
	case c.NumPieces <= 0 || c.PieceSize <= 0:
		panic("swarm: bad geometry")
	case c.InitialSeeds < 0 || c.InitialLeechers < 0:
		panic("swarm: negative population")
	case c.MaxPeerSet <= 0 || c.TrackerResponse <= 0:
		panic("swarm: bad peer set limits")
	case c.Duration <= 0 || c.SampleEvery <= 0:
		panic("swarm: bad duration")
	case math.IsNaN(c.ArrivalRate) || c.ArrivalRate < 0:
		panic("swarm: bad arrival rate")
	case c.LaneWorkers < 0:
		panic("swarm: negative lane workers")
	case c.HeapShards < 0:
		panic("swarm: negative heap shards")
	}
}
