package swarm

// Lane choke rounds: the intra-swarm sharding path behind
// Config.ChokeLanes. Every peer's 10-second choke round is aligned to the
// global core.ChokeInterval grid, so one simulated instant carries the
// whole population's rounds. The engine executes them as one lane batch
// (sim.Engine.AtLane): each peer's decision — settle-free rate snapshot,
// choke-algorithm ordering, unchoke set — runs as a read-only compute that
// may be fanned across worker goroutines, and the state transitions apply
// serially in peer-id order afterwards.
//
// Determinism: computes read only pre-batch shared state (connection
// flags, byte counters, estimator snapshots via rate.RateWith, bitfield
// counts, flow remainders — all pure reads) and mutate only per-peer state
// (the peer's choker, scratch slices and private choke RNG), so their
// execution order is unobservable; applies run in a fixed order either
// way. A run is therefore bit-identical for every LaneWorkers value,
// which TestChokeLanesParallelMatchesSerial pins.

import (
	"math"

	"rarestfirst/internal/core"
)

// nextChokeInstant returns the first global choke-grid point strictly
// after now. Grid points are exact multiples of core.ChokeInterval (exact
// in float64 for any reachable simulation length), so repeated re-arming
// never drifts off the grid.
func nextChokeInstant(now float64) float64 {
	return (math.Floor(now/core.ChokeInterval) + 1) * core.ChokeInterval
}

// Lane key spaces. Choke rounds use the bare peer id (>= 0). The local
// peer's availability sample rides the same batch under laneKeySample, a
// negative key, so its read-only snapshot is taken against pre-batch
// state and commits before any choke apply. Tracker re-announces queued
// during a batch use reannounceLaneKey — peer id offset past every
// possible choke key — so when a re-announce lands in a batch with choke
// rounds (scheduled by an earlier plain event at the same instant) it
// applies after all of them, in peer-id order.
const (
	laneKeySample        = int64(-1)
	laneKeyReannounceOff = int64(1) << 40
)

func reannounceLaneKey(id core.PeerID) int64 { return laneKeyReannounceOff + int64(id) }

// sampleLaneCompute is the read-only half of a lane-mode availability
// sample (local-peer viewpoint stats + global transient/steady
// indicators, all pure reads); the apply half commits it to the collector
// and re-arms. Riding the sample on the lane batch instead of a plain
// timer keeps the 10-second sample tick from splitting the same-instant
// choke batch in two (a plain event interleaved between lane events ends
// the batch), which would halve the exposed parallelism at exactly the
// widest instants.
func (s *Swarm) sampleLaneCompute() func() {
	if s.local == nil || s.local.departed {
		return nil
	}
	s.sampleScratch = s.gatherSample()
	return s.sampleApplyFn
}

// applySample commits the compute-phase snapshot and re-arms the sampler.
// The invariant check runs here, in the serial apply phase, never from
// the parallel compute half.
func (s *Swarm) applySample() {
	s.col.Sample(s.sampleScratch)
	if s.cfg.Invariants {
		s.checkInvariants(false)
	}
	s.eng.AtLane(s.eng.Now()+s.cfg.SampleEvery, laneKeySample, s.sampleLaneFn)
}

// reannounceCompute is trivially read-only: tracker sampling draws from
// the shared engine RNG, so the whole re-announce belongs in the serial
// apply phase.
func (p *Peer) reannounceCompute() func() { return p.reannounceApplyFn }

// applyReannounce clears the queue mark and runs the deferred tracker
// re-contact (rate-limited and departure-guarded by maybeReannounce).
func (p *Peer) applyReannounce() {
	p.reannouncePending = false
	p.s.maybeReannounce(p)
}

// laneSource is a splitmix64 rand.Source64. Each peer owns one for its
// choke decisions in lane mode: 8 bytes of state instead of the ~5 kB a
// default rand.NewSource carries, which matters when 10k peers each hold
// one, and safe to advance from a compute goroutine because no other lane
// touches it.
type laneSource struct{ state uint64 }

func (s *laneSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *laneSource) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *laneSource) Seed(seed int64) { s.state = uint64(seed) }

// laneSeed decorrelates (swarm seed, peer id) pairs with a splitmix64
// finalizer, the same construction internal/scenario.MixSeed uses (not
// imported to avoid a package cycle).
func laneSeed(seed int64, id core.PeerID) uint64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(id)+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pendingIn returns the inbound in-flight progress on c that settleDown
// has not yet committed, as of now. Pure read; mirrors settleDown's
// truncation and non-negativity exactly.
func (c *conn) pendingIn(now float64) int64 {
	if c.inFlow == nil {
		return 0
	}
	progress := c.flowBytes - c.inFlow.Remaining(now)
	delta := int64(progress - c.flowSettled)
	if delta <= 0 {
		return 0
	}
	return delta
}

// pendingOut is pendingIn for the opposite direction: the uncommitted
// progress of the remote's download from the owner (whose bookkeeping
// lives on the remote's conn).
func (c *conn) pendingOut(now float64) int64 {
	if c.outFlow == nil {
		return 0
	}
	if rc := c.mirror; rc != nil {
		return rc.pendingIn(now)
	}
	return 0
}

// chokeLaneCompute is the read-only half of a lane choke round. It builds
// the ChokePeer snapshot with in-flight progress folded in (the legacy
// path settles first and then reads; here the settle is deferred to the
// apply phase, so the estimator reads go through rate.RateWith), runs the
// appropriate choke algorithm against the peer's private RNG, parks the
// unchoke set in per-peer scratch and hands the engine the apply half.
func (p *Peer) chokeLaneCompute() func() {
	if p.departed {
		return nil
	}
	if len(p.connList) == 0 {
		p.laneUnchoke = p.laneUnchoke[:0]
		return p.laneApplyFn
	}
	now := p.s.eng.Now()
	peers := p.chokePeers[:0]
	for _, c := range p.connList {
		din := c.pendingIn(now)
		dout := c.pendingOut(now)
		peers = append(peers, core.ChokePeer{
			ID:             c.remote.id,
			Interested:     c.peerInterested,
			Unchoked:       c.amUnchoking,
			DownloadRate:   c.inEst.RateWith(now, din),
			UploadRate:     c.outEst.RateWith(now, dout),
			LastUnchoked:   c.lastUnchokedAt,
			UploadedTo:     c.bytesOut + dout,
			DownloadedFrom: c.bytesIn + din,
			RemotePieces:   c.remote.shownBits().Count(),
		})
	}
	p.chokePeers = peers
	choker := p.chokerL
	if p.seed || p.advLiar {
		// Liars pose as seeds, so they run the seed unchoke policy too.
		choker = p.chokerS
	}
	// The returned slice is the choker's scratch; it stays valid through
	// the apply phase because only this peer's next Round reuses it.
	p.laneUnchoke = choker.Round(now, peers, p.chokeRNG)
	return p.laneApplyFn
}

// applyLaneRound is the serial half: it commits the progress the compute
// phase read (the same two settle loops the legacy round runs), applies
// the choke transitions — which may cancel remote flows and trigger
// re-requests against the engine RNG, all serial here — and re-arms the
// peer on the next grid instant.
func (p *Peer) applyLaneRound() {
	if p.departed {
		return
	}
	p.s.metrics.chokeRounds.Inc()
	for _, c := range p.connList {
		p.settleDown(c)
		if c.outFlow != nil {
			if rc := c.mirror; rc != nil {
				c.remote.settleDown(rc)
			}
		}
	}
	for _, c := range p.connList {
		p.applyChoke(c, containsPeerID(p.laneUnchoke, c.remote.id))
	}
	p.chokeTimer = p.s.eng.AtLane(nextChokeInstant(p.s.eng.Now()), int64(p.id), p.laneFn)
}
