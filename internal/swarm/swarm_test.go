package swarm

import (
	"testing"

	"rarestfirst/internal/metainfo"
)

// tinyConfig is a fast closed swarm: 1 seed, a few leechers, 12 MB content
// (big enough that peers stay resident past the 10 s entropy filter).
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPieces = 48
	cfg.PieceSize = 256 << 10
	cfg.InitialLeechers = 8
	cfg.ArrivalRate = 0
	cfg.LocalJoinTime = 40
	cfg.Duration = 4000
	cfg.InitialSeedUp = 256 << 10
	cfg.SeedLingerMean = 1e9 // seeds never leave: closed system
	return cfg
}

func TestTinySwarmEveryoneCompletes(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg)
	res := s.Run()
	if !res.LocalCompleted {
		t.Fatalf("local peer did not complete (downloaded %d/%d pieces)",
			s.local.downloaded, cfg.NumPieces)
	}
	if res.FinishedContrib != cfg.InitialLeechers {
		t.Fatalf("finished %d of %d leechers", res.FinishedContrib, cfg.InitialLeechers)
	}
	if res.LocalDownloadTime <= 0 {
		t.Fatalf("bad local download time %f", res.LocalDownloadTime)
	}
	// Lower bound: the local peer must download NumPieces*PieceSize bytes;
	// with every peer's download uncapped the binding constraint is the
	// swarm's upload capacity, so just sanity-check positivity and that
	// it beats a degenerate serial bound.
	if res.LocalDownloadTime > cfg.Duration {
		t.Fatalf("download time %f exceeds duration", res.LocalDownloadTime)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (float64, int, int) {
		cfg := tinyConfig()
		res := New(cfg).Run()
		return res.LocalDownloadTime, res.FinishedContrib, len(res.Collector.PieceTimes)
	}
	t1, f1, p1 := run()
	t2, f2, p2 := run()
	if t1 != t2 || f1 != f2 || p1 != p2 {
		t.Fatalf("runs diverge: (%f,%d,%d) vs (%f,%d,%d)", t1, f1, p1, t2, f2, p2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := tinyConfig()
	r1 := New(cfg).Run()
	cfg.Seed = 99
	r2 := New(cfg).Run()
	if r1.LocalDownloadTime == r2.LocalDownloadTime {
		t.Fatal("different seeds produced identical download times (suspicious)")
	}
}

func TestCollectorObservables(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg)
	res := s.Run()
	col := res.Collector
	// Piece times: one per piece.
	if len(col.PieceTimes) != cfg.NumPieces {
		t.Fatalf("recorded %d piece completions, want %d", len(col.PieceTimes), cfg.NumPieces)
	}
	// Block times: one per block.
	geo := cfg.Geometry()
	if len(col.BlockTimes) != geo.TotalBlocks() {
		t.Fatalf("recorded %d blocks, want %d", len(col.BlockTimes), geo.TotalBlocks())
	}
	// Monotone nondecreasing arrival times.
	for i := 1; i < len(col.PieceTimes); i++ {
		if col.PieceTimes[i] < col.PieceTimes[i-1] {
			t.Fatal("piece times not monotone")
		}
	}
	// The local peer became a seed.
	if col.SeededAt() < 0 {
		t.Fatal("no seed_state event")
	}
	// Samples cover the run at the configured cadence.
	if len(col.Samples) < int(cfg.Duration/cfg.SampleEvery/2) {
		t.Fatalf("only %d samples", len(col.Samples))
	}
	// Records exist and residency is positive.
	recs := col.Records()
	if len(recs) == 0 {
		t.Fatal("no peer records")
	}
	for _, r := range recs {
		if r.Residency <= 0 {
			t.Fatalf("record %d has residency %f", r.ID, r.Residency)
		}
	}
}

func TestLocalDownloadByteConservation(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg)
	res := s.Run()
	var down int64
	for _, r := range res.Collector.AllRecords() {
		down += r.DownloadedLS + r.DownloadedSS
	}
	want := int64(cfg.NumPieces) * int64(cfg.PieceSize)
	// The local peer downloads every byte exactly once, except end-game
	// duplicates: bounded by one duplicate block per peer-set member plus
	// partial progress of cancelled duplicates — allow 5% + 8 blocks.
	slack := want/20 + int64(8*metainfo.BlockSize)
	if down < want || down > want+slack {
		t.Fatalf("local downloaded %d bytes, want %d (+%d slack)", down, want, slack)
	}
}

func TestPeerSetRespectsLimits(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxPeerSet = 5
	cfg.InitialLeechers = 20
	s := New(cfg)
	s.Run()
	for _, p := range s.peers {
		if len(p.connList) > cfg.MaxPeerSet {
			t.Fatalf("peer %d has %d connections, cap %d", p.id, len(p.connList), cfg.MaxPeerSet)
		}
	}
}

func TestTransientStateHasRarePieces(t *testing.T) {
	// Single slow seed, content large relative to seed capacity: pieces
	// that exist only on the initial seed ("rare pieces") must persist for
	// a sustained prefix of the run — the paper's transient state.
	cfg := tinyConfig()
	cfg.NumPieces = 64
	cfg.PieceSize = 256 << 10
	cfg.InitialSeedUp = 16 << 10 // very slow seed: 16 MB needs ~1000 s for one copy
	cfg.InitialLeechers = 12
	cfg.Duration = 1200
	s := New(cfg)
	res := s.Run()
	rare := 0
	for _, sm := range res.Collector.Samples {
		if sm.GlobalRare > 0 {
			rare++
		}
	}
	if rare < len(res.Collector.Samples)/3 {
		t.Fatalf("transient torrent: rare pieces in only %d/%d samples",
			rare, len(res.Collector.Samples))
	}
}

func TestSteadyStateNoRarePieces(t *testing.T) {
	// Fast seed + small content: the torrent leaves transient state
	// quickly; late samples must show min copies >= 1 (Fig 4's signature).
	cfg := tinyConfig()
	cfg.InitialSeedUp = 512 << 10
	cfg.LocalJoinTime = 400
	cfg.Duration = 2000
	s := New(cfg)
	res := s.Run()
	samples := res.Collector.Samples
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// After the initial seed has pushed one full copy, no rare piece may
	// ever reappear ("we never observed a steady state followed by a
	// transient state").
	okCount, considered := 0, 0
	seenSteady := false
	for _, sm := range samples {
		if sm.GlobalRare == 0 {
			seenSteady = true
		}
		if seenSteady {
			considered++
			if sm.GlobalRare == 0 {
				okCount++
			}
		}
	}
	if !seenSteady {
		t.Fatal("torrent never reached steady state")
	}
	if okCount != considered {
		t.Fatalf("steady state regressed to transient: %d/%d steady samples", okCount, considered)
	}
}

func TestFreeRidersArePenalizedButSurvive(t *testing.T) {
	cfg := tinyConfig()
	cfg.InitialLeechers = 14
	cfg.FreeRiderFraction = 0.3
	cfg.Duration = 8000
	s := New(cfg)
	res := s.Run()
	if res.FinishedFree == 0 {
		t.Skip("no free rider finished in the window; nothing to compare")
	}
	if res.MeanDownloadFree <= res.MeanDownloadContrib {
		t.Fatalf("free riders faster than contributors: %f <= %f",
			res.MeanDownloadFree, res.MeanDownloadContrib)
	}
}

func TestChurnWithDepartingSeeds(t *testing.T) {
	cfg := tinyConfig()
	cfg.SeedLingerMean = 120 // finished peers leave quickly
	cfg.ArrivalRate = 0.05
	cfg.AbortRate = 1.0 / 3000
	cfg.Duration = 3000
	s := New(cfg)
	res := s.Run()
	if res.Arrivals <= cfg.InitialLeechers {
		t.Fatalf("no churn arrivals: %d", res.Arrivals)
	}
	// The system must stay consistent (no panics) and the local peer must
	// have made progress.
	if s.local.downloaded == 0 {
		t.Fatal("local peer made no progress under churn")
	}
}

func TestGlobalAvailabilityConsistency(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 500
	s := New(cfg)
	s.Run()
	// Recompute global availability from live peers and compare.
	want := make([]int, cfg.NumPieces)
	for _, p := range s.peers {
		if p.departed {
			continue
		}
		p.have.Range(func(i int) bool { want[i]++; return true })
	}
	for i := 0; i < cfg.NumPieces; i++ {
		if got := s.globalAvail.Count(i); got != want[i] {
			t.Fatalf("global avail piece %d: %d, want %d", i, got, want[i])
		}
	}
}

func TestPerPeerAvailabilityConsistency(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 700
	s := New(cfg)
	s.Run()
	for _, p := range s.peers {
		if p.departed {
			continue
		}
		want := make([]int, cfg.NumPieces)
		for _, c := range p.connList {
			c.remote.have.Range(func(i int) bool { want[i]++; return true })
		}
		for i := 0; i < cfg.NumPieces; i++ {
			if got := p.avail.Count(i); got != want[i] {
				t.Fatalf("peer %d avail piece %d: %d, want %d", p.id, i, got, want[i])
			}
		}
	}
}

func TestInterestConsistency(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 600
	s := New(cfg)
	s.Run()
	for _, p := range s.peers {
		if p.departed {
			continue
		}
		for _, c := range p.connList {
			want := p.interestedIn(c.remote)
			if c.amInterested != want {
				t.Fatalf("peer %d interest in %d = %v, want %v",
					p.id, c.remote.id, c.amInterested, want)
			}
			// Mirror consistency.
			rc := c.remote.conns[p.id]
			if rc == nil || rc.peerInterested != c.amInterested || rc.peerUnchoking != c.amUnchoking {
				t.Fatalf("mirror state inconsistent between %d and %d", p.id, c.remote.id)
			}
		}
	}
}

func TestSeedsDisconnectFromSeeds(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 6000
	s := New(cfg)
	s.Run()
	for _, p := range s.peers {
		if p.departed || !p.seed {
			continue
		}
		for _, c := range p.connList {
			if c.remote.seed {
				t.Fatalf("seed %d still connected to seed %d", p.id, c.remote.id)
			}
		}
	}
}

func TestConfigValidatePanics(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumPieces = 0 },
		func(c *Config) { c.InitialSeeds = -1 },
		func(c *Config) { c.MaxPeerSet = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.ArrivalRate = -1 },
	}
	for i, mut := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			cfg := DefaultConfig()
			mut(&cfg)
			New(cfg)
		}()
	}
}

func TestSmartSeedServeNeverDuplicates(t *testing.T) {
	cfg := tinyConfig()
	cfg.SmartSeedServe = true
	cfg.InitialSeedUp = 32 << 10 // slow seed: contention for its service
	cfg.Duration = 3000
	s := New(cfg)
	res := s.Run()
	if res.SeedServes == 0 {
		t.Fatal("initial seed never served")
	}
	// With the idealized policy the seed may only serve a duplicate once
	// every piece has been served at least once.
	served := 0
	for _, c := range s.seedServeCount {
		if c > 0 {
			served++
		}
	}
	if res.DupSeedServes > 0 && served < cfg.NumPieces {
		t.Fatalf("smart seed served %d duplicates with only %d/%d pieces out",
			res.DupSeedServes, served, cfg.NumPieces)
	}
}

func TestRandomPickerSwarmStillCompletes(t *testing.T) {
	cfg := tinyConfig()
	cfg.Picker = PickRandom
	s := New(cfg)
	res := s.Run()
	if !res.LocalCompleted {
		t.Fatal("random-picker swarm: local did not complete")
	}
}

func TestInitialSeedDepartureKillsTransientTorrent(t *testing.T) {
	// Failure injection: the initial seed leaves mid-startup while rare
	// pieces are still out. The torrent dies — nobody can complete, and
	// some pieces have zero live copies.
	cfg := tinyConfig()
	cfg.NumPieces = 64
	cfg.PieceSize = 256 << 10
	cfg.InitialSeedUp = 16 << 10
	cfg.InitialLeechers = 10
	cfg.Duration = 1500
	cfg.InitialSeedLeaveAt = 300
	s := New(cfg)
	res := s.Run()
	if res.LocalCompleted {
		t.Fatal("local peer completed a dead torrent")
	}
	if res.FinishedContrib != 0 {
		t.Fatalf("%d leechers completed a dead torrent", res.FinishedContrib)
	}
	if s.GlobalMinCopies() != 0 {
		t.Fatalf("global min copies = %d after seed departure, want 0", s.GlobalMinCopies())
	}
}

func TestBoostNewcomersImprovesFirstBlock(t *testing.T) {
	// The §VI extension: with BoostNewcomers, the exploratory slots target
	// piece-less peers, so a freshly joined peer gets its first block at
	// least as fast on average. We compare the local peer's first-block
	// latency across a few seeds and require boost <= baseline overall.
	latency := func(boost bool) float64 {
		total := 0.0
		for seed := int64(1); seed <= 3; seed++ {
			cfg := tinyConfig()
			cfg.Seed = seed
			cfg.BoostNewcomers = boost
			cfg.InitialLeechers = 20
			cfg.Duration = 1200
			s := New(cfg)
			res := s.Run()
			bt := res.Collector.BlockTimes
			if len(bt) == 0 {
				t.Fatal("no blocks at all")
			}
			total += bt[0] - cfg.LocalJoinTime
		}
		return total
	}
	base := latency(false)
	boosted := latency(true)
	if boosted > base*1.5 {
		t.Fatalf("newcomer boost made first block much slower: %.1f vs %.1f", boosted, base)
	}
	t.Logf("first-block latency sum: baseline %.1fs, boosted %.1fs", base, boosted)
}
