package swarm

// Crash-and-rejoin injection (Config.Crashes): the simulator twin of the
// live lab's process kill/restart schedules. A crashing peer is torn out
// of the swarm exactly like a departure — connections dropped with
// partial transfers discarded, tracker entry deregistered, availability
// counts decremented — but keeps its identity and (a configurable
// fraction of) its verified pieces, and rejoins after an exponential
// downtime wanting only what it lacks. Every draw (victim selection,
// crash instant, per-piece retention, downtime) comes from the engine
// RNG, so crash runs are bit-reproducible per seed and a nil plan adds
// zero draws — the golden scenarios are untouched.

import "rarestfirst/internal/core"

// maybeScheduleCrash draws, at join time, whether leecher p will crash
// during the run and schedules the kill. Seeds, the instrumented local
// peer and Byzantine peers are never victims (matching the live harness,
// which only kills honest remote leechers). One Float64 draw per eligible
// joiner when a plan is configured; nil draws nothing.
func (s *Swarm) maybeScheduleCrash(p *Peer) {
	cr := s.cfg.Crashes
	if cr == nil || p.seed || p.isLocal || p.advPoison || p.advLiar || p.advFlood {
		return
	}
	if s.eng.RNG().Float64() >= cr.Frac {
		return
	}
	at := cr.WindowStart + s.eng.RNG().Float64()*(cr.WindowEnd-cr.WindowStart)
	if at <= s.eng.Now() {
		// Joined after its drawn kill instant: this peer dodges the crash.
		return
	}
	s.eng.At(at, func() { s.crashPeer(p) })
}

// crashPeer kills p: the SIGKILL twin. In-flight transfers are discarded
// (a torn piece write never survives a crash — the resume contract), the
// peer leaves the tracker and every availability index, and a rejoin is
// scheduled after an exponential downtime. Pieces are dropped per the
// retention draw before rejoin so the availability decrement/re-increment
// pair is audited by the invariant checker at both edges.
func (s *Swarm) crashPeer(p *Peer) {
	if p.departed || p.seed {
		// Departed already, or finished before the kill landed: the live
		// harness only kills peers still mid-transfer.
		return
	}
	cr := s.cfg.Crashes
	s.chaosFault("peer_crash", p, nil)
	p.departed = true
	if p.chokeTimer != nil {
		p.chokeTimer.Cancel()
		p.chokeTimer = nil
	}
	snapshot := append(p.connScratch[:0], p.connList...)
	p.connScratch = snapshot
	for _, c := range snapshot {
		s.disconnect(p, c.remote)
	}
	s.trk.deregister(p)
	s.globalAvail.RemovePeer(p.have)
	// Partial pieces die with the process: blocks already fetched for
	// unverified pieces are not in the resume file.
	for piece := range p.pieceRemaining {
		delete(p.pieceRemaining, piece)
	}
	// Retention draw: each verified piece survives with probability
	// RetainFrac. The first crasher under DropAllFirst loses everything —
	// the sim twin of the live plan's corrupted resume file, with every
	// dropped piece counted as a resume hash failure.
	retain := cr.retainFrac()
	dropAll := cr.DropAllFirst && !s.crashCorruptDone
	if dropAll {
		s.crashCorruptDone = true
	}
	hashFails := 0
	for i := 0; i < s.cfg.NumPieces; i++ {
		if !p.have.Has(i) {
			continue
		}
		switch {
		case dropAll:
			p.have.Clear(i)
			hashFails++
		case retain < 1 && s.eng.RNG().Float64() >= retain:
			p.have.Clear(i)
		}
	}
	if hashFails > 0 {
		s.chaosFaultN("resume_hash_fail", hashFails, p)
	}
	p.downloaded = p.have.Count()
	retainedBytes := 0
	p.have.Range(func(i int) bool {
		retainedBytes += int(s.geo.PieceSize(i))
		return true
	})
	down := s.eng.RNG().ExpFloat64() * cr.meanDowntime()
	s.eng.After(down, func() { s.rejoinPeer(p, retainedBytes) })
}

// rejoinPeer restarts a crashed peer: same identity, the retained
// bitfield, a fresh tracker registration and a re-armed choke schedule.
// The peer re-announces immediately — the restart twin of the live
// client's startup announce.
func (s *Swarm) rejoinPeer(p *Peer, retainedBytes int) {
	if !p.departed || p.seed {
		return
	}
	s.chaosFault("peer_resume", p, nil)
	s.chaosFaultN("resume_bytes_saved", retainedBytes, p)
	p.departed = false
	s.trk.register(p)
	s.globalAvail.AddPeer(p.have)
	if s.cfg.ChokeLanes {
		p.chokeTimer = s.eng.AtLane(nextChokeInstant(s.eng.Now()), int64(p.id), p.laneFn)
	} else {
		p.chokeTimer = s.eng.After(s.eng.RNG().Float64()*core.ChokeInterval, p.chokeFn)
	}
	s.announce(p)
}

// chaosFaultN is chaosFault for count-valued kinds (retained bytes,
// dropped pieces): the swarm_-prefixed aggregate always accumulates, the
// bare live-comparable name only when the local peer is involved.
func (s *Swarm) chaosFaultN(name string, n int, p *Peer) {
	s.metrics.faultN(name, n)
	s.col.AddFault("swarm_"+name, n)
	if p != nil && p.isLocal {
		s.col.AddFault(name, n)
	}
}
