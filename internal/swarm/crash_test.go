package swarm

import (
	"reflect"
	"testing"
)

// crashConfig is tinyConfig with a crash schedule and the invariant
// checker on: every crash run here doubles as an availability-counter
// audit (crash decrements, rejoin re-increments).
func crashConfig(cr *Crashes) Config {
	cfg := tinyConfig()
	cfg.InitialLeechers = 10
	cfg.Crashes = cr
	cfg.Invariants = true
	return cfg
}

// midRunCrashes is the standard test schedule: half the leechers crash
// inside [50, 400) sim-seconds — mid-transfer for tinyConfig's geometry —
// and rejoin after a ~30 s mean downtime.
func midRunCrashes() *Crashes {
	return &Crashes{Frac: 0.5, WindowStart: 50, WindowEnd: 400, MeanDowntime: 30}
}

func TestCrashPeersRejoinAndComplete(t *testing.T) {
	res := New(crashConfig(midRunCrashes())).Run()
	if !res.LocalCompleted {
		t.Fatal("local peer did not complete under peer crashes")
	}
	fc := res.Collector.FaultCounts
	if fc["swarm_peer_crash"] == 0 {
		t.Fatalf("no crashes recorded: %v", fc)
	}
	if fc["swarm_peer_resume"] != fc["swarm_peer_crash"] {
		t.Fatalf("crashes (%d) and resumes (%d) disagree: %v",
			fc["swarm_peer_crash"], fc["swarm_peer_resume"], fc)
	}
	// Full retention: victims crash mid-transfer holding pieces, so the
	// rejoin must carry bytes back into the swarm.
	if fc["swarm_resume_bytes_saved"] == 0 {
		t.Fatalf("no resume bytes recorded: %v", fc)
	}
	if fc["swarm_resume_hash_fail"] != 0 {
		t.Fatalf("full-retention crash counted hash failures: %v", fc)
	}
}

func TestCrashAmnesiaStillCompletes(t *testing.T) {
	cr := midRunCrashes()
	cr.RetainFrac = 0.5
	res := New(crashConfig(cr)).Run()
	if !res.LocalCompleted {
		t.Fatal("local peer did not complete under amnesiac crashes")
	}
	fc := res.Collector.FaultCounts
	if fc["swarm_peer_crash"] == 0 || fc["swarm_peer_resume"] == 0 {
		t.Fatalf("crash counters missing: %v", fc)
	}
}

func TestCrashCorruptResumeCountsHashFails(t *testing.T) {
	cr := midRunCrashes()
	cr.DropAllFirst = true
	res := New(crashConfig(cr)).Run()
	fc := res.Collector.FaultCounts
	if fc["swarm_resume_hash_fail"] == 0 {
		t.Fatalf("corrupt-resume victim counted no hash failures: %v", fc)
	}
	// The corrupted victim re-downloads from scratch and the torrent
	// still finishes whole.
	if !res.LocalCompleted {
		t.Fatal("local peer did not complete with a corrupted-resume victim")
	}
	if res.FinishedContrib != 10 {
		t.Fatalf("finished %d of 10 leechers", res.FinishedContrib)
	}
}

func TestCrashRunsAreDeterministic(t *testing.T) {
	run := func() (float64, int, map[string]int) {
		res := New(crashConfig(midRunCrashes())).Run()
		return res.LocalDownloadTime, res.FinishedContrib, res.Collector.FaultCounts
	}
	t1, f1, fc1 := run()
	t2, f2, fc2 := run()
	if t1 != t2 || f1 != f2 || !reflect.DeepEqual(fc1, fc2) {
		t.Fatalf("crash runs diverge: (%f,%d,%v) vs (%f,%d,%v)", t1, f1, fc1, t2, f2, fc2)
	}
}

func TestCrashZeroFracKillsNobody(t *testing.T) {
	// A non-nil schedule with Frac 0 draws per-peer scheduling RNG but
	// never fires; no crash counters may appear.
	res := New(crashConfig(&Crashes{Frac: 0, WindowStart: 50, WindowEnd: 400})).Run()
	fc := res.Collector.FaultCounts
	if fc["swarm_peer_crash"] != 0 || fc["swarm_peer_resume"] != 0 {
		t.Fatalf("zero-frac schedule crashed peers: %v", fc)
	}
	if !res.LocalCompleted {
		t.Fatal("local peer did not complete")
	}
}

func TestCrashNilPreservesTrajectory(t *testing.T) {
	// Crashes nil must be invisible: zero extra RNG draws, identical
	// trajectory to a config that never heard of the feature. This is
	// the in-package twin of the repo-level golden digest check.
	base := tinyConfig()
	r1 := New(base).Run()
	withNil := tinyConfig()
	withNil.Crashes = nil
	r2 := New(withNil).Run()
	if r1.LocalDownloadTime != r2.LocalDownloadTime || r1.FinishedContrib != r2.FinishedContrib {
		t.Fatalf("nil crash config perturbed the run: (%f,%d) vs (%f,%d)",
			r1.LocalDownloadTime, r1.FinishedContrib, r2.LocalDownloadTime, r2.FinishedContrib)
	}
	if r1.Collector.FaultCounts != nil {
		t.Fatalf("fault counters on a crash-free run: %v", r1.Collector.FaultCounts)
	}
}

func TestCrashWithChokeLanes(t *testing.T) {
	// The rejoin path re-arms the choke timer through the lane scheduler
	// when ChokeLanes is on; the run must stay consistent and complete.
	cfg := crashConfig(midRunCrashes())
	cfg.ChokeLanes = true
	res := New(cfg).Run()
	if !res.LocalCompleted {
		t.Fatal("local peer did not complete under lanes + crashes")
	}
	if res.Collector.FaultCounts["swarm_peer_crash"] == 0 {
		t.Fatalf("no crashes recorded: %v", res.Collector.FaultCounts)
	}
}
