package swarm

// Runtime observability wiring. When a process-wide obs registry is
// active at swarm construction, the swarm caches nil-safe handles once
// and bumps them from the hot paths; without one every handle is nil and
// each hook degrades to a single nil check (the obs disabled-path
// contract). Everything here is observe-only — no engine RNG draws, no
// event scheduling — so golden trajectories are identical with metrics
// on or off.

import "rarestfirst/internal/obs"

// swarmMetrics is the swarm layer's cached handle set.
type swarmMetrics struct {
	reg         *obs.Registry
	announces   *obs.Counter // successful tracker contacts (sim tracker)
	chokeRounds *obs.Counter // choke rounds, legacy and lane mode alike
	pieces      *obs.Counter // piece completions across the whole swarm
	arrivals    *obs.Counter // leecher joins
	conns       *obs.Gauge   // currently established connections (pairs)
}

func newSwarmMetrics(reg *obs.Registry) swarmMetrics {
	// A nil registry yields nil handles, which are no-ops by contract.
	return swarmMetrics{
		reg:         reg,
		announces:   reg.Counter("swarm_announces_total"),
		chokeRounds: reg.Counter("swarm_choke_rounds_total"),
		pieces:      reg.Counter("swarm_piece_completions_total"),
		arrivals:    reg.Counter("swarm_arrivals_total"),
		conns:       reg.Gauge("swarm_active_conns"),
	}
}

// fault tallies one injected fault by kind. Fault paths are rare (and
// already do collector work), so the labeled-series lookup's mutex is
// acceptable here where it would not be on the per-event paths.
func (m *swarmMetrics) fault(kind string) {
	if m.reg == nil {
		return
	}
	m.reg.Counter(obs.SeriesName("swarm_faults_total", "kind", kind)).Inc()
}

// faultN is fault with a count, for byte-valued kinds (wasted_bytes).
func (m *swarmMetrics) faultN(kind string, n int) {
	if m.reg == nil {
		return
	}
	m.reg.Counter(obs.SeriesName("swarm_faults_total", "kind", kind)).Add(uint64(n))
}
