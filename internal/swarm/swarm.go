package swarm

import (
	"math/rand"
	"runtime"
	"sort"

	"rarestfirst/internal/bitfield"
	"rarestfirst/internal/core"
	"rarestfirst/internal/metainfo"
	"rarestfirst/internal/obs"
	"rarestfirst/internal/sim"
	"rarestfirst/internal/trace"
)

// Swarm is one experiment: a torrent, its peers, its tracker, and the
// instrumented local peer.
type Swarm struct {
	cfg Config
	geo metainfo.Geometry
	eng *sim.Engine
	net *sim.Net
	trk *tracker
	col *trace.Collector

	peers  map[core.PeerID]*Peer
	nextID core.PeerID

	local       *Peer
	initialSeed *Peer

	// globalAvail tracks copies over all live peers (oracle picker +
	// steady/transient-state detection).
	globalAvail *core.Availability

	// availCache memoises availablePieces.
	availCache []int

	// Lane-mode sampling state: the compute/apply halves bound once and
	// the snapshot parked between them (see lanes.go).
	sampleLaneFn  func() func()
	sampleApplyFn func()
	sampleScratch trace.AvailSample

	// seedServeCount[i] counts initial-seed serve STARTS of piece i; it
	// drives the smart-serve policy. seedServeDone[i] counts COMPLETED
	// deliveries and feeds the A4 duplicate metric (resumed transfers
	// after a choke are not double-counted).
	seedServeCount []int
	seedServeDone  []int

	// Download-time bookkeeping for ablations.
	finishedContrib, finishedFree   int
	totalTimeContrib, totalTimeFree float64
	arrivals                        int

	// pendingHaves queues deferred HAVE reactions (BatchHaves mode): each
	// entry is one piece completion whose neighbor interest/request
	// updates run at the post-event flush instead of inline (see
	// Peer.completePiece and Swarm.flushHaves).
	pendingHaves []pendingHave

	// crashCorruptDone marks that the Crashes plan's DropAllFirst victim
	// has been consumed (at most one corrupted-resume peer per run).
	crashCorruptDone bool

	// Observability (metrics.go): cached obs handles plus the phase-timing
	// bundle shared with the engine; both nil/no-op without a registry.
	metrics swarmMetrics
	phases  *obs.PhaseTimes
}

// pendingHave is one deferred HAVE broadcast: peer p completed piece.
type pendingHave struct {
	p     *Peer
	piece int
}

// Result summarises one experiment run.
type Result struct {
	// Collector holds all local-peer instrumentation (finalized).
	Collector *trace.Collector
	// LocalCompleted reports whether the instrumented peer finished its
	// download within the experiment.
	LocalCompleted bool
	// LocalDownloadTime is seconds from local join to seed state (-1 if
	// never completed).
	LocalDownloadTime float64
	// Arrivals is the total number of leechers that ever joined.
	Arrivals int
	// FinishedContrib/FinishedFree count completed downloads by
	// contributing leechers and free riders.
	FinishedContrib, FinishedFree int
	// MeanDownloadContrib/MeanDownloadFree are mean download durations in
	// seconds (0 when no peer of the class finished).
	MeanDownloadContrib, MeanDownloadFree float64
	// SeedServes / DupSeedServes count pieces served by the initial seed
	// and how many of those were duplicates (already served before).
	SeedServes, DupSeedServes int
	// EndTime is the simulated end of the experiment.
	EndTime float64
	// Events is the discrete-event scheduler's occupancy at the end of the
	// run (heap size vs live events, timer-pool reuse) — the benchmark
	// harness's view of the PR 2 hot-path rewrite.
	Events sim.EngineStats
	// Net is the fluid model's deferred-retiming and flow-pool counters
	// (dirty flushes, retime batches, peak shard width) — the PR 5 view.
	Net sim.NetStats
}

// New builds a swarm from cfg; call Run to execute it.
func New(cfg Config) *Swarm {
	cfg.validate()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = metainfo.BlockSize
	}
	eng := sim.NewEngine(cfg.Seed)
	if cfg.HeapShards > 0 {
		eng.SetHeapShards(cfg.HeapShards)
	}
	if cfg.ChokeLanes {
		w := cfg.LaneWorkers
		if w <= 0 {
			w = runtime.NumCPU()
		}
		eng.SetLaneParallelism(w)
	}
	s := &Swarm{
		cfg:            cfg,
		geo:            cfg.Geometry(),
		eng:            eng,
		net:            sim.NewNet(eng),
		trk:            newTracker(),
		peers:          map[core.PeerID]*Peer{},
		globalAvail:    core.NewAvailability(cfg.NumPieces),
		seedServeCount: make([]int, cfg.NumPieces),
		seedServeDone:  make([]int, cfg.NumPieces),
	}
	if reg := obs.Active(); reg != nil {
		s.metrics = newSwarmMetrics(reg)
		s.phases = &obs.PhaseTimes{}
		eng.SetMetrics(sim.EngineMetrics{
			Phases:   s.phases,
			Events:   reg.Counter("sim_events_total"),
			PeakLane: reg.Gauge("sim_peak_lane_width"),
		})
	}
	if cfg.BatchHaves {
		s.globalAvail.SetLazy(true)
		// Chain the deferred flush points: HAVE reactions first (they may
		// start flows whose rates the retime flush must then settle),
		// Net's dirty-node flush second. NewNet installed n.Flush as the
		// engine's post-event hook; this replaces it with the chain.
		eng.SetPostEventHook(func() {
			s.flushHaves()
			s.net.Flush()
		})
	}
	return s
}

// Engine exposes the simulation engine (read-only use in tests).
func (s *Swarm) Engine() *sim.Engine { return s.eng }

// Local returns the instrumented peer (nil before setup).
func (s *Swarm) Local() *Peer { return s.local }

// GlobalMinCopies returns the torrent-wide minimum piece copy count — the
// transient/steady state criterion (steady state: "there is no rare piece",
// i.e. every piece has at least one copy among live peers).
func (s *Swarm) GlobalMinCopies() int { return s.globalAvail.MinCount() }

// newPicker builds the configured piece selection strategy over avail.
func (s *Swarm) newPicker(avail *core.Availability) core.Picker {
	switch s.cfg.Picker {
	case PickRandom:
		return core.RandomPicker{}
	case PickSequential:
		return core.SequentialPicker{}
	case PickGlobalRarest:
		return &core.GlobalRarest{Global: s.globalAvail}
	default:
		return &core.RarestFirst{Avail: avail, DisableRandomFirst: s.cfg.DisableRandomFirst}
	}
}

// newChokers builds the configured leecher/seed chokers for one peer.
func (s *Swarm) newChokers(freeRider bool) (core.Choker, core.Choker) {
	if freeRider {
		return core.NeverUnchoke{}, core.NeverUnchoke{}
	}
	var l core.Choker
	switch s.cfg.LeecherChoker {
	case LeecherChokeTitForTat:
		l = &core.TitForTatChoker{Slots: s.cfg.UploadSlots, DeficitLimit: s.cfg.TFTDeficitLimit}
	default:
		l = &core.LeecherChoker{Slots: s.cfg.UploadSlots, BoostNewcomers: s.cfg.BoostNewcomers}
	}
	var sd core.Choker
	switch s.cfg.SeedChoker {
	case SeedChokeOld:
		sd = &core.OldSeedChoker{Slots: s.cfg.UploadSlots}
	default:
		sd = &core.SeedChoker{Slots: s.cfg.UploadSlots, BoostNewcomers: s.cfg.BoostNewcomers}
	}
	return l, sd
}

// availablePieces lazily builds the set of pieces that exist in the torrent
// at start (AvailableFrac < 1 models torrent 1's dead-torrent scenario).
func (s *Swarm) availablePieces() []int {
	if s.availCache != nil {
		return s.availCache
	}
	n := s.cfg.NumPieces
	frac := s.cfg.AvailableFrac
	if frac <= 0 || frac >= 1 {
		frac = 1
	}
	idx := s.eng.RNG().Perm(n)
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	s.availCache = idx[:k]
	return s.availCache
}

// bootstrapBitfield seeds an initial leecher with a random fraction of the
// available pieces.
func (s *Swarm) bootstrapBitfield(p *Peer) {
	if s.cfg.LeecherBootstrapMax <= 0 {
		return
	}
	avail := s.availablePieces()
	frac := s.eng.RNG().Float64() * s.cfg.LeecherBootstrapMax
	for _, i := range avail {
		if s.eng.RNG().Float64() < frac {
			p.have.Set(i)
		}
	}
	p.downloaded = p.have.Count()
}

// addPeer creates a peer, registers it with the tracker and connects it.
func (s *Swarm) addPeer(isSeed, freeRider, isLocal bool, upBps, downBps float64) *Peer {
	return s.addPeerOpts(isSeed, freeRider, isLocal, false, upBps, downBps)
}

// addPeerOpts is addPeer with control over initial-content bootstrapping.
func (s *Swarm) addPeerOpts(isSeed, freeRider, isLocal, bootstrap bool, upBps, downBps float64) *Peer {
	id := s.nextID
	s.nextID++
	// Byzantine role draw: one engine-RNG draw per joining remote leecher,
	// and only when an adversary plan is configured (nil keeps the RNG
	// sequence — and with it the golden digests — untouched).
	advPoison, advLiar, advFlood := false, false, false
	if adv := s.cfg.Adversary; adv != nil && !isSeed && !isLocal {
		if s.eng.RNG().Float64() < adv.Fraction {
			advPoison = adv.PoisonRate > 0
			advLiar = adv.FakeHaves
			advFlood = adv.Flood
		}
	}
	have := bitfield.New(s.cfg.NumPieces)
	avail := core.NewAvailability(s.cfg.NumPieces)
	if s.cfg.BatchHaves {
		avail.SetLazy(true)
	}
	p := &Peer{
		s:              s,
		id:             id,
		node:           s.net.AddNode(upBps, downBps),
		have:           have,
		avail:          avail,
		conns:          map[core.PeerID]*conn{},
		inflight:       bitfield.New(s.cfg.NumPieces),
		pieceRemaining: map[int]float64{},
		freeRider:      freeRider,
		isLocal:        isLocal,
		seed:           isSeed,
		joinedAt:       s.eng.Now(),
		finishedAt:     -1,
	}
	p.advPoison, p.advLiar, p.advFlood = advPoison, advLiar, advFlood
	if advLiar {
		p.liarBits = bitfield.New(s.cfg.NumPieces)
		p.liarBits.SetAll()
	}
	p.picker = s.newPicker(avail)
	p.chokerL, p.chokerS = s.newChokers(freeRider)
	if advFlood {
		// Flooders never reciprocate: they leech like free riders while
		// hammering the tracker (armed below, once registration is done).
		p.chokerL, p.chokerS = core.NeverUnchoke{}, core.NeverUnchoke{}
	}
	if isLocal {
		p.req = core.NewRequester(s.geo, p.picker)
		p.have = p.req.Have() // single source of truth for the local bitfield
	}
	if isSeed {
		if isLocal {
			for i := 0; i < s.cfg.NumPieces; i++ {
				p.req.AddHave(i)
			}
		} else {
			p.have.SetAll()
		}
		p.downloaded = s.cfg.NumPieces
		p.finishedAt = s.eng.Now()
	} else if bootstrap && !isLocal {
		s.bootstrapBitfield(p)
	}
	if !isSeed {
		s.arrivals++
		s.metrics.arrivals.Inc()
	}
	p.chokeFn = p.chokeRound // bound once; re-arms reuse it
	s.peers[id] = p
	s.trk.register(p)
	s.globalAvail.AddPeer(p.have)
	s.announce(p)
	if advFlood {
		adv := s.cfg.Adversary
		var flood func()
		flood = func() {
			if p.departed {
				return
			}
			s.chaosFault("flood_announce", p, nil)
			s.announce(p)
			s.eng.After(adv.floodAnnounceEvery(), flood)
		}
		s.eng.After(adv.floodAnnounceEvery(), flood)
	}
	if s.cfg.ChokeLanes {
		// Lane mode: rounds sit on the global ChokeInterval grid so every
		// instant's rounds form one engine batch, and each peer draws its
		// choke randomness from a private stream (the shared engine RNG
		// cannot be consulted from a parallel compute phase).
		p.chokeRNG = rand.New(&laneSource{state: laneSeed(s.cfg.Seed, id)})
		p.laneFn = p.chokeLaneCompute
		p.laneApplyFn = p.applyLaneRound
		p.reannounceFn = p.reannounceCompute
		p.reannounceApplyFn = p.applyReannounce
		p.chokeTimer = s.eng.AtLane(nextChokeInstant(s.eng.Now()), int64(id), p.laneFn)
	} else {
		// Stagger the first choke round within the interval so rounds
		// don't all fire in lockstep.
		p.chokeTimer = s.eng.After(s.eng.RNG().Float64()*core.ChokeInterval, p.chokeFn)
	}
	// Pre-completion abort process.
	if !isSeed && s.cfg.AbortRate > 0 && !isLocal {
		s.scheduleAbortCheck(p)
	}
	// Crash plan (Config.Crashes): the kill/restart draw, nil-gated like
	// the Byzantine draw above so golden RNG sequences are untouched.
	s.maybeScheduleCrash(p)
	return p
}

// scheduleAbortCheck arms an exponential departure hazard for a leecher.
func (s *Swarm) scheduleAbortCheck(p *Peer) {
	delay := s.eng.RNG().ExpFloat64() / s.cfg.AbortRate
	s.eng.After(delay, func() {
		if !p.departed && !p.seed {
			p.depart()
		}
	})
}

// announce asks the tracker for peers and initiates connections, honouring
// the 40-initiated / 80-total caps.
func (s *Swarm) announce(p *Peer) {
	if p.departed {
		return
	}
	if ch := s.cfg.Chaos; ch != nil && ch.blackedOut(s.eng.Now()) {
		// Tracker blackout: this announce fails and the peer retries after
		// a fixed backoff. Registration happened at join and existing
		// connections keep transferring — losing the tracker only degrades
		// peer discovery, mirroring the live client's announce backoff.
		s.chaosFault("announce_fail", p, nil)
		retry := ch.announceRetry()
		p.nextAnnounceOK = s.eng.Now() + retry
		s.eng.After(retry, func() { s.maybeReannounce(p) })
		return
	}
	s.metrics.announces.Inc()
	cand := s.trk.sample(s.eng.RNG(), s.cfg.TrackerResponse, p.id)
	for _, q := range cand {
		if p.initiated >= s.cfg.MaxInitiated || len(p.connList) >= s.cfg.MaxPeerSet {
			break
		}
		s.connect(p, q)
	}
	p.nextAnnounceOK = s.eng.Now() + 60
}

// maybeReannounce re-contacts the tracker when the peer set has fallen
// below the minimum (rate-limited).
func (s *Swarm) maybeReannounce(p *Peer) {
	if p.departed || len(p.connList) >= s.cfg.MinPeerSet {
		return
	}
	if s.eng.Now() < p.nextAnnounceOK {
		return
	}
	s.announce(p)
}

// queueReannounce is the lane-aware entry point for tracker re-contacts
// triggered by connection teardown. Outside lane mode it runs the
// re-announce synchronously, exactly as before. In lane mode it defers
// the re-announce onto its own same-instant lane batch: a choke apply
// that disconnects dozens of peers would otherwise interleave announce
// work (engine-RNG tracker samples, connects) into the middle of the
// round sequence; queued as lane events, the re-announces of one instant
// execute as one batch after the rounds, in peer-id order, at most once
// per peer per instant.
func (s *Swarm) queueReannounce(p *Peer) {
	if !s.cfg.ChokeLanes {
		s.maybeReannounce(p)
		return
	}
	if p.departed || p.reannouncePending {
		return
	}
	p.reannouncePending = true
	s.eng.AtLane(s.eng.Now(), reannounceLaneKey(p.id), p.reannounceFn)
}

// connect establishes the bidirectional connection a->b (a initiates),
// routing the attempt through the chaos plan when one is configured.
func (s *Swarm) connect(a, b *Peer) {
	ch := s.cfg.Chaos
	if ch == nil {
		s.connectNow(a, b)
		return
	}
	// Screen with connectNow's own rejections first so chaos RNG draws
	// happen only for attempts that could otherwise succeed.
	if a == b || a.departed || b.departed || a.connectedTo(b) ||
		(a.looksSeed() && b.looksSeed()) || a.bannedPeer(b) || b.bannedPeer(a) {
		return
	}
	if ch.DialFailRate > 0 && s.eng.RNG().Float64() < ch.DialFailRate {
		s.chaosFault("dial_fail", a, b)
		return
	}
	if ch.ConnSetupDelay > 0 {
		// Propagation delay: establishment lands later; caps and departures
		// are re-checked at fire time.
		s.eng.After(ch.ConnSetupDelay, func() { s.connectNow(a, b) })
		return
	}
	s.connectNow(a, b)
}

// chaosFault tallies one injected fault. The swarm_-prefixed counter
// aggregates every occurrence swarm-wide; faults touching the
// instrumented local peer additionally land under the bare name, which is
// the counter comparable with live runs (whose collector only sees the
// instrumented client).
func (s *Swarm) chaosFault(name string, a, b *Peer) {
	s.metrics.fault(name)
	s.col.CountFault("swarm_" + name)
	if (a != nil && a.isLocal) || (b != nil && b.isLocal) {
		s.col.CountFault(name)
	}
}

// connectNow establishes the bidirectional connection a->b (a initiates).
func (s *Swarm) connectNow(a, b *Peer) {
	if a == b || a.departed || b.departed || a.connectedTo(b) {
		return
	}
	// Seeds have nothing to exchange with seeds; real clients drop such
	// connections right after the bitfield exchange. Liars pose as seeds,
	// so the same screen applies to what the endpoints SHOW each other.
	if a.looksSeed() && b.looksSeed() {
		return
	}
	// Banned peers are refused outright (poison/fake-HAVE detection).
	if a.bannedPeer(b) || b.bannedPeer(a) {
		return
	}
	if len(a.connList) >= s.cfg.MaxPeerSet || len(b.connList) >= s.cfg.MaxPeerSet {
		return
	}
	now := s.eng.Now()
	ca := &conn{owner: a, remote: b, initiatedByOwner: true, stallPiece: -1}
	ca.inEst.Init(0)
	ca.outEst.Init(0)
	cb := &conn{owner: b, remote: a, stallPiece: -1}
	cb.inEst.Init(0)
	cb.outEst.Init(0)
	ca.mirror, cb.mirror = cb, ca
	// Bind each side's flow-completion callback once; every request on the
	// connection reuses it (block granularity for the local peer, piece
	// granularity for remote peers).
	if a.isLocal {
		ca.onFlowDone = func() { a.onBlockFlowDone(ca) }
	} else {
		ca.onFlowDone = func() { a.onPieceFlowDone(ca) }
	}
	if b.isLocal {
		cb.onFlowDone = func() { b.onBlockFlowDone(cb) }
	} else {
		cb.onFlowDone = func() { b.onPieceFlowDone(cb) }
	}
	a.conns[b.id] = ca
	a.connList = append(a.connList, ca)
	b.conns[a.id] = cb
	b.connList = append(b.connList, cb)
	a.initiated++
	s.metrics.conns.Add(1)
	// Bitfield exchange (instantaneous). Each side sees what the other
	// ADVERTISES — the full liarBits for bitfield liars.
	a.avail.AddPeer(b.shownBits())
	b.avail.AddPeer(a.shownBits())
	// Seed status is reported unconditionally from the bitfield exchange:
	// RemoteSeedStatus no-ops when unchanged, so this is free for fresh
	// peers, and it un-latches remoteIsSeed for an ex-seed that crashed
	// and rejoined as a leecher with retained pieces (otherwise its
	// post-rejoin leecher residency would be misclassified as seed time).
	if a.isLocal {
		s.col.PeerJoined(int(b.id), now)
		s.col.RemoteSeedStatus(int(b.id), now, b.looksSeed())
	}
	if b.isLocal {
		s.col.PeerJoined(int(a.id), now)
		s.col.RemoteSeedStatus(int(a.id), now, a.looksSeed())
	}
	a.refreshInterest(ca)
	b.refreshInterest(cb)
	if ch := s.cfg.Chaos; ch != nil && ch.ConnResetRate > 0 {
		if s.eng.RNG().Float64() < ch.ConnResetRate {
			// Scheduled abortive close: the connection dies after an
			// exponential delay unless it was already torn down (the conn
			// identity check guards against a reconnect reusing the slot).
			delay := s.eng.RNG().ExpFloat64() * ch.resetMeanDelay()
			s.eng.After(delay, func() {
				if a.conns[b.id] == ca {
					s.chaosFault("conn_reset", a, b)
					s.disconnect(a, b)
				}
			})
		}
	}
}

// disconnect tears down the connection between a and b, requeueing partial
// downloads on both sides.
func (s *Swarm) disconnect(a, b *Peer) {
	ca := a.conns[b.id]
	cb := b.conns[a.id]
	if ca == nil || cb == nil {
		return
	}
	now := s.eng.Now()
	a.cancelDownload(ca, true)
	b.cancelDownload(cb, true)
	a.avail.RemovePeer(b.shownBits())
	b.avail.RemovePeer(a.shownBits())
	if ca.initiatedByOwner {
		a.initiated--
	}
	if cb.initiatedByOwner {
		b.initiated--
	}
	delete(a.conns, b.id)
	delete(b.conns, a.id)
	removeConn(&a.connList, ca)
	removeConn(&b.connList, cb)
	s.metrics.conns.Add(-1)
	// Sever the mirror pointers so a stale handle (e.g. in a teardown
	// snapshot) degrades to the same nil the map lookup used to return.
	ca.mirror, cb.mirror = nil, nil
	if a.isLocal {
		s.col.PeerLeft(int(b.id), now)
	}
	if b.isLocal {
		s.col.PeerLeft(int(a.id), now)
	}
	s.queueReannounce(a)
	s.queueReannounce(b)
	// A cancelled in-flight piece is requestable again from other peers.
	a.retryRequests()
	b.retryRequests()
}

func removeConn(list *[]*conn, c *conn) {
	for i, x := range *list {
		if x == c {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}

// noteSeedServeStart marks an initial-seed piece serve start (smart-serve
// policy input only).
func (s *Swarm) noteSeedServeStart(piece int) {
	s.seedServeCount[piece]++
}

// recordSeedServeDone counts a COMPLETED initial-seed piece delivery for
// the A4 duplicate metric.
func (s *Swarm) recordSeedServeDone(piece int) {
	dup := s.seedServeDone[piece] > 0
	s.seedServeDone[piece]++
	s.col.SeedServed(dup)
}

// seedServeOverride returns the least-served piece (by the initial seed)
// that leecher p still needs and is not already fetching, or -1. Ties are
// broken uniformly at random so simultaneous downloaders spread across the
// unserved pieces instead of converging on one.
func (s *Swarm) seedServeOverride(p *Peer) int {
	best, bestCount, ties := -1, 0, 0
	rng := s.eng.RNG()
	for i, c := range s.seedServeCount {
		if p.hasPiece(i) || p.inflight.Has(i) {
			continue
		}
		switch {
		case best == -1 || c < bestCount:
			best, bestCount, ties = i, c, 1
		case c == bestCount:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// sampleCapacityPair draws a remote peer's up/down capacities.
func (s *Swarm) sampleCapacityPair() (float64, float64) {
	cls := sampleCapacity(s.eng.RNG(), s.cfg.CapacityMix)
	return cls.UpBps, cls.DownBps
}

// Run executes the experiment and returns its result. It is not reusable.
func (s *Swarm) Run() *Result {
	cfg := &s.cfg
	end := cfg.LocalJoinTime + cfg.Duration
	s.col = trace.NewCollector(cfg.LocalJoinTime)

	// Initial population: seeds first, then leechers, staggered over the
	// first 30 seconds so the tracker fills gradually.
	for i := 0; i < cfg.InitialSeeds; i++ {
		up := cfg.InitialSeedUp
		if i > 0 {
			up, _ = s.sampleCapacityPair()
		}
		at := float64(i) * 0.01
		upCap := up
		s.eng.At(at, func() {
			p := s.addPeer(true, false, false, upCap, 0)
			if s.initialSeed == nil {
				s.initialSeed = p
				if cfg.InitialSeedLeaveAt > 0 {
					s.eng.At(cfg.InitialSeedLeaveAt, p.depart)
				}
			}
		})
	}
	for i := 0; i < cfg.InitialLeechers; i++ {
		at := 0.1 + s.eng.RNG().Float64()*30
		free := s.eng.RNG().Float64() < cfg.FreeRiderFraction
		s.eng.At(at, func() {
			up, down := s.sampleCapacityPair()
			s.addPeerOpts(false, free, false, true, up, down)
		})
	}
	// Poisson arrivals.
	if cfg.ArrivalRate > 0 {
		var arrive func()
		arrive = func() {
			if s.eng.Now() < end {
				up, down := s.sampleCapacityPair()
				free := s.eng.RNG().Float64() < cfg.FreeRiderFraction
				s.addPeer(false, free, false, up, down)
				s.eng.After(s.eng.RNG().ExpFloat64()/cfg.ArrivalRate, arrive)
			}
		}
		s.eng.After(s.eng.RNG().ExpFloat64()/cfg.ArrivalRate, arrive)
	}
	// The instrumented local peer.
	s.eng.At(cfg.LocalJoinTime, func() {
		s.local = s.addPeer(false, cfg.LocalFreeRider, true, cfg.LocalUpBps, cfg.LocalDownBps)
		s.scheduleSample()
	})

	s.eng.Run(end)
	if cfg.Invariants {
		// End-of-run sweep extends the availability audit to every peer.
		s.checkInvariants(true)
	}
	s.col.Finalize(end)

	// Harvest download-time stats. Iterate in peer-ID order: summing the
	// float durations in map order would make the means differ in the
	// last ULP from run to run, breaking bit-for-bit reproducibility.
	ids := make([]core.PeerID, 0, len(s.peers))
	for id := range s.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := s.peers[id]
		if p.isLocal || p.finishedAt < 0 || p.seedAtStart() {
			continue
		}
		d := p.finishedAt - p.joinedAt
		if p.freeRider {
			s.finishedFree++
			s.totalTimeFree += d
		} else {
			s.finishedContrib++
			s.totalTimeContrib += d
		}
	}
	res := &Result{
		Collector:       s.col,
		Events:          s.eng.Stats(),
		Net:             s.net.Stats(),
		Arrivals:        s.arrivals,
		FinishedContrib: s.finishedContrib,
		FinishedFree:    s.finishedFree,
		SeedServes:      s.col.SeedServes,
		DupSeedServes:   s.col.DupSeedServes,
		EndTime:         end,
	}
	if s.finishedContrib > 0 {
		res.MeanDownloadContrib = s.totalTimeContrib / float64(s.finishedContrib)
	}
	if s.finishedFree > 0 {
		res.MeanDownloadFree = s.totalTimeFree / float64(s.finishedFree)
	}
	if s.local != nil && s.local.finishedAt >= 0 {
		res.LocalCompleted = true
		res.LocalDownloadTime = s.local.finishedAt - s.local.joinedAt
	} else {
		res.LocalDownloadTime = -1
	}
	return res
}

// seedAtStart reports whether the peer joined the torrent as a seed.
func (p *Peer) seedAtStart() bool { return p.finishedAt == p.joinedAt }

// RareCount returns the number of "rare pieces" in the paper's sense:
// pieces whose only live copy is on the initial seed. A torrent is in
// transient state exactly while RareCount > 0 (§IV-A.2).
func (s *Swarm) RareCount() int {
	if s.initialSeed == nil || s.initialSeed.departed {
		return 0
	}
	n := 0
	for i := 0; i < s.cfg.NumPieces; i++ {
		if s.globalAvail.Count(i) == 1 && s.initialSeed.hasPiece(i) {
			n++
		}
	}
	return n
}

// gatherSample reads one availability snapshot from the local peer's
// viewpoint plus the global transient/steady indicators. Pure reads: it
// is safe to call from a lane compute phase.
func (s *Swarm) gatherSample() trace.AvailSample {
	min, mean, max := s.local.avail.Stats()
	return trace.AvailSample{
		T:          s.eng.Now(),
		Min:        min,
		Mean:       mean,
		Max:        max,
		RarestSize: s.local.avail.RarestSetSize(),
		PeerSet:    len(s.local.connList),
		GlobalMin:  s.globalAvail.MinCount(),
		GlobalRare: s.RareCount(),
	}
}

// scheduleSample records periodic availability snapshots from the local
// peer's viewpoint (Figs 2–6) plus global transient/steady indicators. In
// lane mode the tick rides the engine's lane batches (sampleLaneCompute)
// so a sample falling on a choke-grid instant joins that instant's batch
// instead of splitting it.
func (s *Swarm) scheduleSample() {
	if s.cfg.ChokeLanes {
		s.sampleLaneFn = s.sampleLaneCompute
		s.sampleApplyFn = s.applySample
		if s.local == nil || s.local.departed {
			return
		}
		s.col.Sample(s.gatherSample()) // join-instant sample, as in plain mode
		s.eng.AtLane(s.eng.Now()+s.cfg.SampleEvery, laneKeySample, s.sampleLaneFn)
		return
	}
	var tick func()
	tick = func() {
		if s.local == nil || s.local.departed {
			return
		}
		s.col.Sample(s.gatherSample())
		if s.cfg.Invariants {
			s.checkInvariants(false)
		}
		s.eng.After(s.cfg.SampleEvery, tick)
	}
	tick()
}
