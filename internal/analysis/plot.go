package analysis

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights of a unicode sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line unicode bar chart of at most
// width cells (values are bucketed by mean). It returns "" for no data.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	buckets := bucketMeans(values, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range buckets {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// bucketMeans down-samples values into exactly min(width, len) buckets.
func bucketMeans(values []float64, width int) []float64 {
	if len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// PlotSeries renders a labelled sparkline with min/max annotations, e.g.
//
//	rarest  ▇▆▅▄▃▂▁▁ [0 .. 64]
func PlotSeries(label string, values []float64, width int) string {
	if len(values) == 0 {
		return fmt.Sprintf("%-8s (no data)", label)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return fmt.Sprintf("%-8s %s [%.3g .. %.3g]", label, Sparkline(values, width), lo, hi)
}
