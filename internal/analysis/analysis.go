// Package analysis computes the statistics the paper plots: percentile
// summaries of the entropy ratios (Fig 1), interarrival CDFs (Figs 7–8),
// fairness contribution sets (Figs 9 and 11), and the unchoke/interest
// correlation (Fig 10).
package analysis

import (
	"math"
	"sort"

	"rarestfirst/internal/trace"
)

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics. It sorts a copy; xs is unchanged.
// It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is the three-point percentile summary used by Fig 1's vertical
// bars: 20th percentile, median, 80th percentile.
type Summary struct {
	N             int
	P20, P50, P80 float64
}

// Summarize computes the Fig 1 summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:   len(s),
		P20: percentileSorted(s, 0.20),
		P50: percentileSorted(s, 0.50),
		P80: percentileSorted(s, 0.80),
	}
}

// EntropyRatios extracts the two Fig 1 ratio populations from peer records:
// aOverB[i] = (time local interested in remote i) / (time remote i in peer
// set, both leechers), and cOverD likewise for the remote's interest in the
// local peer. Records with an empty denominator (peers that were seeds for
// their whole residency, or resident only while the local peer seeded) are
// skipped: "only the case of leechers is relevant for the entropy
// characterization" (paper footnote 4).
func EntropyRatios(recs []*trace.PeerRecord) (aOverB, cOverD []float64) {
	for _, r := range recs {
		if r.ResidencyLSLocal <= 0 {
			continue
		}
		aOverB = append(aOverB, clamp01(r.LocalInterestedTime/r.ResidencyLSLocal))
		cOverD = append(cOverD, clamp01(r.RemoteInterestedTime/r.ResidencyLSLocal))
	}
	return aOverB, cOverD
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// CDF is an empirical distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (copied and sorted).
func NewCDF(samples []float64) CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// N returns the sample count.
func (c CDF) N() int { return len(c.sorted) }

// At returns P[X <= x].
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile of the samples.
func (c CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(c.sorted, p)
}

// Interarrivals converts a nondecreasing series of event times into the
// gaps between consecutive events (the paper's piece/block interarrival
// times). The first event contributes no gap.
func Interarrivals(times []float64) []float64 {
	if len(times) < 2 {
		return nil
	}
	out := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		d := times[i] - times[i-1]
		if d < 0 {
			d = 0
		}
		out = append(out, d)
	}
	return out
}

// HeadTail splits interarrival gaps of an arrival series the way Figs 7–8
// do: gaps among the first n arrivals, and gaps among the last n arrivals.
func HeadTail(times []float64, n int) (first, last []float64) {
	gaps := Interarrivals(times)
	if len(gaps) == 0 {
		return nil, nil
	}
	k := n - 1 // n arrivals span n-1 gaps
	if k > len(gaps) {
		k = len(gaps)
	}
	first = append([]float64(nil), gaps[:k]...)
	last = append([]float64(nil), gaps[len(gaps)-k:]...)
	return first, last
}

// Pearson returns the Pearson correlation coefficient of (x[i], y[i]).
// It returns NaN when undefined (fewer than 2 points or zero variance).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// FairnessSets reproduces the construction of Figs 9 and 11: peers are
// ranked by rankBy (descending) and grouped into numSets sets of setSize;
// the return value is each set's share of the TOTAL of shareOf, in rank
// order (set 0 = the 5 peers with the highest rankBy). Both slices are
// indexed by peer and must have equal length.
func FairnessSets(rankBy, shareOf []float64, setSize, numSets int) []float64 {
	if len(rankBy) != len(shareOf) || setSize <= 0 || numSets <= 0 {
		return nil
	}
	idx := make([]int, len(rankBy))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rankBy[idx[a]] > rankBy[idx[b]] })
	var total float64
	for _, v := range shareOf {
		total += v
	}
	out := make([]float64, numSets)
	if total == 0 {
		return out
	}
	for rank, i := range idx {
		set := rank / setSize
		if set >= numSets {
			break
		}
		out[set] += shareOf[i] / total
	}
	return out
}

// UploadFairness applies the Fig 9/11 construction to peer records: peers
// are ranked by bytes uploaded from the local peer (leecher or seed state
// per ss), and each 5-peer set's share of total uploads is returned.
func UploadFairness(recs []*trace.PeerRecord, ss bool, numSets int) []float64 {
	up := make([]float64, len(recs))
	for i, r := range recs {
		if ss {
			up[i] = float64(r.UploadedSS)
		} else {
			up[i] = float64(r.UploadedLS)
		}
	}
	return FairnessSets(up, up, 5, numSets)
}

// ReciprocationFairness is Fig 9's bottom graph: the same 5-peer sets,
// ranked by bytes uploaded TO them in leecher state, and each set's share
// of bytes downloaded FROM them (seeds excluded: reciprocation to a seed is
// impossible).
func ReciprocationFairness(recs []*trace.PeerRecord, numSets int) []float64 {
	var rank, share []float64
	for _, r := range recs {
		if r.RemoteWasSeed {
			continue
		}
		rank = append(rank, float64(r.UploadedLS))
		share = append(share, float64(r.DownloadedLS))
	}
	return FairnessSets(rank, share, 5, numSets)
}

// UnchokePoints extracts the Fig 10 scatter: for each remote peer, the time
// it was interested in the local peer and the number of times the local
// peer unchoked it, split by the local peer's state.
func UnchokePoints(recs []*trace.PeerRecord, ss bool) (interested, unchokes []float64) {
	for _, r := range recs {
		if ss {
			interested = append(interested, r.InterestedInLocalSS)
			unchokes = append(unchokes, float64(r.UnchokesSS))
		} else {
			interested = append(interested, r.InterestedInLocalLS)
			unchokes = append(unchokes, float64(r.UnchokesLS))
		}
	}
	return interested, unchokes
}
