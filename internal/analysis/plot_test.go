package analysis

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should render empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Fatal("zero width should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("width = %d", utf8.RuneCountInString(s))
	}
	// Monotone input renders the lowest rune first and the highest last.
	first, _ := utf8.DecodeRuneInString(s)
	last, _ := utf8.DecodeLastRuneInString(s)
	if first != '▁' || last != '█' {
		t.Fatalf("ramp = %q", s)
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5, 5}, 4)
	for _, r := range s {
		if r != '▁' {
			t.Fatalf("constant series rendered %q", s)
		}
	}
}

func TestSparklineDownsamples(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i)
	}
	s := Sparkline(values, 20)
	if utf8.RuneCountInString(s) != 20 {
		t.Fatalf("downsampled width = %d", utf8.RuneCountInString(s))
	}
}

func TestPlotSeries(t *testing.T) {
	out := PlotSeries("rarest", []float64{64, 32, 0}, 10)
	if !strings.HasPrefix(out, "rarest") || !strings.Contains(out, "[0 .. 64]") {
		t.Fatalf("plot = %q", out)
	}
	if !strings.Contains(PlotSeries("x", nil, 10), "no data") {
		t.Fatal("missing no-data marker")
	}
}
