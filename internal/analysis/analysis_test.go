package analysis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rarestfirst/internal/trace"
)

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.9, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%.2f) = %f, want %f", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) / 100
	}
	s := Summarize(xs)
	if s.N != 101 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.P20-0.2) > 1e-9 || math.Abs(s.P50-0.5) > 1e-9 || math.Abs(s.P80-0.8) > 1e-9 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}

func TestEntropyRatios(t *testing.T) {
	recs := []*trace.PeerRecord{
		{ID: 1, ResidencyLSLocal: 100, LocalInterestedTime: 90, RemoteInterestedTime: 100},
		{ID: 2, ResidencyLSLocal: 50, LocalInterestedTime: 10, RemoteInterestedTime: 0},
		// Pure seed: the collector never accrues a leecher-state
		// denominator, so it is skipped.
		{ID: 3, ResidencyLSLocal: 0, RemoteWasSeed: true},
		// Leecher that seeded later: its leecher phase still counts.
		{ID: 4, RemoteWasSeed: true, ResidencyLSLocal: 80, LocalInterestedTime: 40, RemoteInterestedTime: 80},
	}
	a, c := EntropyRatios(recs)
	if len(a) != 3 || len(c) != 3 {
		t.Fatalf("got %d/%d ratios", len(a), len(c))
	}
	if math.Abs(a[0]-0.9) > 1e-9 || math.Abs(a[1]-0.2) > 1e-9 || math.Abs(a[2]-0.5) > 1e-9 {
		t.Fatalf("a/b = %v", a)
	}
	if math.Abs(c[0]-1.0) > 1e-9 || c[1] != 0 || math.Abs(c[2]-1.0) > 1e-9 {
		t.Fatalf("c/d = %v", c)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%f) = %f, want %f", tc.x, got, tc.want)
		}
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Fatalf("median = %f", got)
	}
	if !math.IsNaN(NewCDF(nil).At(1)) {
		t.Error("empty CDF not NaN")
	}
}

func TestInterarrivals(t *testing.T) {
	got := Interarrivals([]float64{1, 2, 4, 8})
	want := []float64{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("gaps = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", got, want)
		}
	}
	if Interarrivals([]float64{5}) != nil {
		t.Error("single event has no gaps")
	}
}

func TestHeadTail(t *testing.T) {
	times := []float64{0, 1, 3, 6, 10, 15, 21}
	first, last := HeadTail(times, 3)
	// First 3 arrivals span gaps {1,2}; last 3 span gaps {5,6}.
	if len(first) != 2 || first[0] != 1 || first[1] != 2 {
		t.Fatalf("first = %v", first)
	}
	if len(last) != 2 || last[0] != 5 || last[1] != 6 {
		t.Fatalf("last = %v", last)
	}
	// n larger than the series: both become the whole gap set.
	f2, l2 := HeadTail(times, 100)
	if len(f2) != 6 || len(l2) != 6 {
		t.Fatalf("oversized n: %d/%d", len(f2), len(l2))
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yPos); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect positive = %f", got)
	}
	if got := Pearson(x, yNeg); math.Abs(got+1) > 1e-9 {
		t.Fatalf("perfect negative = %f", got)
	}
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1, 1})) {
		t.Error("zero variance not NaN")
	}
	if !math.IsNaN(Pearson(x[:1], yPos[:1])) {
		t.Error("single point not NaN")
	}
	if !math.IsNaN(Pearson(x, yPos[:3])) {
		t.Error("length mismatch not NaN")
	}
}

func TestFairnessSets(t *testing.T) {
	// 10 peers, uploads 10,9,...,1 (total 55). Sets of 5: top set gets
	// (10+9+8+7+6)/55, second (5+4+3+2+1)/55.
	up := []float64{3, 10, 7, 1, 9, 5, 2, 8, 4, 6}
	shares := FairnessSets(up, up, 5, 2)
	if math.Abs(shares[0]-40.0/55) > 1e-9 || math.Abs(shares[1]-15.0/55) > 1e-9 {
		t.Fatalf("shares = %v", shares)
	}
	// Sets always sum to <= 1 and here exactly 1.
	if math.Abs(shares[0]+shares[1]-1) > 1e-9 {
		t.Fatalf("shares don't sum to 1: %v", shares)
	}
	if FairnessSets(up, up[:3], 5, 2) != nil {
		t.Error("length mismatch accepted")
	}
	zero := FairnessSets([]float64{0, 0}, []float64{0, 0}, 5, 2)
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero totals: %v", zero)
	}
}

func TestUploadAndReciprocationFairness(t *testing.T) {
	recs := []*trace.PeerRecord{
		{ID: 1, UploadedLS: 1000, DownloadedLS: 900, UploadedSS: 10},
		{ID: 2, UploadedLS: 500, DownloadedLS: 400, UploadedSS: 10},
		{ID: 3, UploadedLS: 10, DownloadedLS: 5, UploadedSS: 10},
		{ID: 4, UploadedLS: 800, DownloadedLS: 850, UploadedSS: 10, RemoteWasSeed: true},
	}
	ls := UploadFairness(recs, false, 1)
	if math.Abs(ls[0]-1.0) > 1e-9 { // 4 peers all fit in one set of 5
		t.Fatalf("LS fairness = %v", ls)
	}
	ss := UploadFairness(recs, true, 1)
	if math.Abs(ss[0]-1.0) > 1e-9 {
		t.Fatalf("SS fairness = %v", ss)
	}
	// Reciprocation excludes the seed (ID 4).
	rec := ReciprocationFairness(recs, 1)
	if math.Abs(rec[0]-1.0) > 1e-9 {
		t.Fatalf("reciprocation = %v", rec)
	}
}

func TestUnchokePoints(t *testing.T) {
	recs := []*trace.PeerRecord{
		{ID: 1, InterestedInLocalLS: 100, UnchokesLS: 5, InterestedInLocalSS: 50, UnchokesSS: 2},
		{ID: 2, InterestedInLocalLS: 10, UnchokesLS: 1},
	}
	x, y := UnchokePoints(recs, false)
	if len(x) != 2 || x[0] != 100 || y[0] != 5 {
		t.Fatalf("LS points: %v %v", x, y)
	}
	x, y = UnchokePoints(recs, true)
	if x[0] != 50 || y[0] != 2 || x[1] != 0 {
		t.Fatalf("SS points: %v %v", x, y)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 1)
		p2 = math.Mod(math.Abs(p2), 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(xs, p1), Percentile(xs, p2)
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return lo <= hi+1e-12 && lo >= s[0]-1e-12 && hi <= s[len(s)-1]+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is a nondecreasing step function reaching 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := 0.0
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		for _, x := range s {
			v := c.At(x)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return math.Abs(c.At(s[len(s)-1])-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
