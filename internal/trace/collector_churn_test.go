package trace

import "testing"

// TestPeerLeftClosesOpenIntervals: a peer departing mid-run with open
// residency, interest (both directions) and unchoke state must settle
// every interval at the departure time, and contribute nothing afterwards.
func TestPeerLeftClosesOpenIntervals(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.LocalInterest(1, 10, true)
	c.RemoteInterest(1, 20, true)
	c.Unchoke(1, 25)
	c.PeerLeft(1, 100)

	// Events after departure must not extend the settled intervals.
	c.Finalize(500)
	r := c.AllRecords()[0]
	approx(t, "Residency", r.Residency, 100)
	approx(t, "ResidencyLSLocal", r.ResidencyLSLocal, 100)
	approx(t, "LocalInterestedTime", r.LocalInterestedTime, 90)
	approx(t, "RemoteInterestedTime", r.RemoteInterestedTime, 80)
	approx(t, "InterestedInLocalLS", r.InterestedInLocalLS, 80)
	if r.UnchokesLS != 1 || r.UnchokesSS != 0 {
		t.Errorf("unchokes LS/SS = %d/%d, want 1/0", r.UnchokesLS, r.UnchokesSS)
	}
	if r.LeftAt != 100 {
		t.Errorf("LeftAt = %v, want 100", r.LeftAt)
	}
}

// TestPeerRejoinAccumulatesResidency: churn (leave + rejoin) must add
// residency spans without double-counting, and keep JoinedAt at the first
// join as the paper's residency accounting does.
func TestPeerRejoinAccumulatesResidency(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(3, 0)
	c.LocalInterest(3, 0, true)
	c.PeerLeft(3, 40)
	// While out of the set, no interval accrues.
	c.PeerJoined(3, 100)
	c.PeerLeft(3, 130)
	c.Finalize(200)

	r := c.AllRecords()[0]
	approx(t, "Residency", r.Residency, 70)
	if r.JoinedAt != 0 {
		t.Errorf("JoinedAt = %v, want first join at 0", r.JoinedAt)
	}
	// Local interest stayed logically on across the gap: the open
	// interval was settled at leave (40) and the flag's clock restarted
	// at the point of re-settlement, never spanning the absence.
	if r.LocalInterestedTime > 70+1e-9 {
		t.Errorf("LocalInterestedTime %v exceeds total residency 70", r.LocalInterestedTime)
	}
}

// TestPeerLeftDuplicateAndUnknown: redundant departures and departures of
// unknown peers are no-ops, not corruption.
func TestPeerLeftDuplicateAndUnknown(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.PeerLeft(1, 10)
	c.PeerLeft(1, 50) // duplicate: already out
	c.PeerLeft(9, 60) // never joined
	c.Finalize(100)
	recs := c.AllRecords()
	if len(recs) != 2 {
		t.Fatalf("records: %d, want 2 (one real, one empty)", len(recs))
	}
	approx(t, "Residency", recs[0].Residency, 10)
	approx(t, "unknown residency", recs[1].Residency, 0)
}

// TestLocalSeedTransitionSplitsOpenIntervals: the leecher->seed flip must
// settle open remote-interest intervals under leecher-state accounting
// and accrue the remainder under seed-state.
func TestLocalSeedTransitionSplitsOpenIntervals(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.RemoteInterest(1, 0, true)
	c.LocalSeed(60)
	c.PeerLeft(1, 100)
	c.Finalize(100)

	r := c.AllRecords()[0]
	approx(t, "InterestedInLocalLS", r.InterestedInLocalLS, 60)
	approx(t, "InterestedInLocalSS", r.InterestedInLocalSS, 40)
	approx(t, "RemoteInterestedTime", r.RemoteInterestedTime, 60)
	approx(t, "ResidencyLSLocal", r.ResidencyLSLocal, 60)
	if got := c.SeededAt(); got != 60 {
		t.Errorf("SeededAt = %v, want 60", got)
	}
}

// TestMinResidencyOverride: the live lab lowers the residency filter;
// zero keeps the paper's 10-second threshold.
func TestMinResidencyOverride(t *testing.T) {
	build := func(minRes float64) int {
		c := NewCollector(0)
		c.MinResidency = minRes
		c.PeerJoined(1, 0)
		c.PeerLeft(1, 2) // 2-second residency
		c.Finalize(10)
		return len(c.Records())
	}
	if n := build(0); n != 0 {
		t.Errorf("default threshold kept a 2s peer (n=%d)", n)
	}
	if n := build(0.5); n != 1 {
		t.Errorf("0.5s threshold dropped a 2s peer (n=%d)", n)
	}
}
