package trace

import "testing"

// TestPeerLeftClosesOpenIntervals: a peer departing mid-run with open
// residency, interest (both directions) and unchoke state must settle
// every interval at the departure time, and contribute nothing afterwards.
func TestPeerLeftClosesOpenIntervals(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.LocalInterest(1, 10, true)
	c.RemoteInterest(1, 20, true)
	c.Unchoke(1, 25)
	c.PeerLeft(1, 100)

	// Events after departure must not extend the settled intervals.
	c.Finalize(500)
	r := c.AllRecords()[0]
	approx(t, "Residency", r.Residency, 100)
	approx(t, "ResidencyLSLocal", r.ResidencyLSLocal, 100)
	approx(t, "LocalInterestedTime", r.LocalInterestedTime, 90)
	approx(t, "RemoteInterestedTime", r.RemoteInterestedTime, 80)
	approx(t, "InterestedInLocalLS", r.InterestedInLocalLS, 80)
	if r.UnchokesLS != 1 || r.UnchokesSS != 0 {
		t.Errorf("unchokes LS/SS = %d/%d, want 1/0", r.UnchokesLS, r.UnchokesSS)
	}
	if r.LeftAt != 100 {
		t.Errorf("LeftAt = %v, want 100", r.LeftAt)
	}
}

// TestPeerRejoinAccumulatesResidency: churn (leave + rejoin) must add
// residency spans without double-counting, and keep JoinedAt at the first
// join as the paper's residency accounting does.
func TestPeerRejoinAccumulatesResidency(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(3, 0)
	c.LocalInterest(3, 0, true)
	c.PeerLeft(3, 40)
	// While out of the set, no interval accrues.
	c.PeerJoined(3, 100)
	c.PeerLeft(3, 130)
	c.Finalize(200)

	r := c.AllRecords()[0]
	approx(t, "Residency", r.Residency, 70)
	if r.JoinedAt != 0 {
		t.Errorf("JoinedAt = %v, want first join at 0", r.JoinedAt)
	}
	// Local interest stayed logically on across the gap: the open
	// interval was settled at leave (40) and the flag's clock restarted
	// at the point of re-settlement, never spanning the absence.
	if r.LocalInterestedTime > 70+1e-9 {
		t.Errorf("LocalInterestedTime %v exceeds total residency 70", r.LocalInterestedTime)
	}
}

// TestPeerLeftDuplicateAndUnknown: redundant departures and departures of
// unknown peers are no-ops, not corruption.
func TestPeerLeftDuplicateAndUnknown(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.PeerLeft(1, 10)
	c.PeerLeft(1, 50) // duplicate: already out
	c.PeerLeft(9, 60) // never joined
	c.Finalize(100)
	recs := c.AllRecords()
	if len(recs) != 2 {
		t.Fatalf("records: %d, want 2 (one real, one empty)", len(recs))
	}
	approx(t, "Residency", recs[0].Residency, 10)
	approx(t, "unknown residency", recs[1].Residency, 0)
}

// TestLocalSeedTransitionSplitsOpenIntervals: the leecher->seed flip must
// settle open remote-interest intervals under leecher-state accounting
// and accrue the remainder under seed-state.
func TestLocalSeedTransitionSplitsOpenIntervals(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.RemoteInterest(1, 0, true)
	c.LocalSeed(60)
	c.PeerLeft(1, 100)
	c.Finalize(100)

	r := c.AllRecords()[0]
	approx(t, "InterestedInLocalLS", r.InterestedInLocalLS, 60)
	approx(t, "InterestedInLocalSS", r.InterestedInLocalSS, 40)
	approx(t, "RemoteInterestedTime", r.RemoteInterestedTime, 60)
	approx(t, "ResidencyLSLocal", r.ResidencyLSLocal, 60)
	if got := c.SeededAt(); got != 60 {
		t.Errorf("SeededAt = %v, want 60", got)
	}
}

// TestFaultChurnNoDoubleCount: the chaos path connect -> reset -> retry
// -> rejoin. The reset settles every open interval; the rejoin restarts
// the clocks from the rejoin time. Interest and unchoke numerators must
// cover exactly the connected spans — the blackout gap between reset and
// rejoin contributes nothing, and re-declaring interest on rejoin must
// not re-add the pre-reset interval.
func TestFaultChurnNoDoubleCount(t *testing.T) {
	c := NewCollector(0)
	// First connection: interested both ways and unchoked from t=10.
	c.PeerJoined(7, 0)
	c.LocalInterest(7, 5, true)
	c.RemoteInterest(7, 5, true)
	c.Unchoke(7, 10)
	// Injected connection reset at t=30.
	c.PeerLeft(7, 30)
	c.CountFault("conn_reset")
	// Retry lands and the peer rejoins at t=50; state re-declared.
	c.PeerJoined(7, 50)
	c.LocalInterest(7, 55, true)
	c.RemoteInterest(7, 55, true)
	c.Unchoke(7, 60)
	c.PeerLeft(7, 90)
	c.Finalize(100)

	r := c.AllRecords()[0]
	// Residency: [0,30) + [50,90) = 70, never the 20s gap.
	approx(t, "Residency", r.Residency, 70)
	// Interest numerators: [5,30) + [55,90) = 60 on both directions.
	approx(t, "LocalInterestedTime", r.LocalInterestedTime, 60)
	approx(t, "RemoteInterestedTime", r.RemoteInterestedTime, 60)
	approx(t, "InterestedInLocalLS", r.InterestedInLocalLS, 60)
	// Unchoke numerators: one event per connection epoch, not three (the
	// rejoin must not replay the settled pre-reset unchoke).
	if r.UnchokesLS != 2 || r.UnchokesSS != 0 {
		t.Errorf("unchokes LS/SS = %d/%d, want 2/0", r.UnchokesLS, r.UnchokesSS)
	}
	if r.JoinedAt != 0 {
		t.Errorf("JoinedAt = %v, want first join at 0", r.JoinedAt)
	}
}

// TestFaultCountsLazyInit: fault-free collectors keep a nil FaultCounts
// map (so Report JSON and the golden digests are unchanged), and counting
// tallies per kind.
func TestFaultCountsLazyInit(t *testing.T) {
	c := NewCollector(0)
	if c.FaultCounts != nil {
		t.Fatalf("FaultCounts allocated before any fault: %v", c.FaultCounts)
	}
	c.Finalize(10)
	if c.FaultCounts != nil {
		t.Fatalf("Finalize allocated FaultCounts: %v", c.FaultCounts)
	}

	c2 := NewCollector(0)
	c2.CountFault("dial_fail")
	c2.CountFault("dial_fail")
	c2.CountFault("announce_fail")
	if got := c2.FaultCounts["dial_fail"]; got != 2 {
		t.Errorf("dial_fail = %d, want 2", got)
	}
	if got := c2.FaultCounts["announce_fail"]; got != 1 {
		t.Errorf("announce_fail = %d, want 1", got)
	}
	if len(c2.FaultCounts) != 2 {
		t.Errorf("FaultCounts has %d kinds, want 2: %v", len(c2.FaultCounts), c2.FaultCounts)
	}
}

// TestMinResidencyOverride: the live lab lowers the residency filter;
// zero keeps the paper's 10-second threshold.
func TestMinResidencyOverride(t *testing.T) {
	build := func(minRes float64) int {
		c := NewCollector(0)
		c.MinResidency = minRes
		c.PeerJoined(1, 0)
		c.PeerLeft(1, 2) // 2-second residency
		c.Finalize(10)
		return len(c.Records())
	}
	if n := build(0); n != 0 {
		t.Errorf("default threshold kept a 2s peer (n=%d)", n)
	}
	if n := build(0.5); n != 1 {
		t.Errorf("0.5s threshold dropped a 2s peer (n=%d)", n)
	}
}
