package trace

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestResidencyAndFilter(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.PeerLeft(1, 5) // under MinResidency: filtered
	c.PeerJoined(2, 0)
	c.PeerLeft(2, 100)
	c.PeerJoined(3, 10) // open at finalize
	c.Finalize(200)
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (short peer filtered)", len(recs))
	}
	approx(t, "peer2 residency", recs[0].Residency, 100)
	approx(t, "peer3 residency", recs[1].Residency, 190)
	if all := c.AllRecords(); len(all) != 3 {
		t.Fatalf("AllRecords = %d", len(all))
	}
}

func TestRejoinAccumulates(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.PeerLeft(1, 30)
	c.PeerJoined(1, 50)
	c.PeerLeft(1, 70)
	c.Finalize(100)
	r := c.Records()[0]
	approx(t, "residency", r.Residency, 50)
	approx(t, "joined", r.JoinedAt, 0)
	approx(t, "left", r.LeftAt, 70)
}

func TestEntropyRatios(t *testing.T) {
	// Peer resident [0,100], local interested [10,40], remote interested
	// [0, 80]; local becomes seed at 60.
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.LocalInterest(1, 10, true)
	c.LocalInterest(1, 40, false)
	c.RemoteInterest(1, 0, true)
	c.LocalSeed(60)
	c.RemoteInterest(1, 80, false)
	c.PeerLeft(1, 100)
	c.Finalize(100)
	r := c.Records()[0]
	// a = 30 (local interested while leecher), b = 60 (residency while
	// local leecher), c = 60 (remote interested while local leecher).
	approx(t, "a", r.LocalInterestedTime, 30)
	approx(t, "b/d", r.ResidencyLSLocal, 60)
	approx(t, "c", r.RemoteInterestedTime, 60)
	// Fig 10 split: interested-in-local 60 s LS + 20 s SS.
	approx(t, "int LS", r.InterestedInLocalLS, 60)
	approx(t, "int SS", r.InterestedInLocalSS, 20)
}

func TestRemoteSeedExcludedFromEntropyDenominator(t *testing.T) {
	// Remote is a seed from t=50; leecher-state residency only counts
	// [0,50).
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.RemoteSeedStatus(1, 50, true)
	c.PeerLeft(1, 100)
	c.Finalize(100)
	r := c.Records()[0]
	approx(t, "b excludes seed span", r.ResidencyLSLocal, 50)
	if !r.RemoteWasSeed {
		t.Fatal("RemoteWasSeed not set")
	}
}

func TestUnchokeCountingSplitsByState(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.Unchoke(1, 10)
	c.Unchoke(1, 11) // still unchoked: not a transition
	c.Choke(1, 20)
	c.Unchoke(1, 30)
	c.LocalSeed(40)
	c.Choke(1, 40)
	c.Unchoke(1, 50)
	c.Finalize(100)
	r := c.Records()[0]
	if r.UnchokesLS != 2 || r.UnchokesSS != 1 {
		t.Fatalf("unchokes = %d/%d, want 2/1", r.UnchokesLS, r.UnchokesSS)
	}
}

func TestByteCountersSplitByState(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.Uploaded(1, 5, 100)
	c.Downloaded(1, 6, 200)
	c.LocalSeed(10)
	c.Uploaded(1, 15, 1000)
	c.Downloaded(1, 16, 1) // stray block after seeding
	c.Finalize(20)
	r := c.Records()[0]
	if r.UploadedLS != 100 || r.UploadedSS != 1000 || r.DownloadedLS != 200 || r.DownloadedSS != 1 {
		t.Fatalf("counters: %+v", r)
	}
}

func TestPieceAndBlockTimes(t *testing.T) {
	c := NewCollector(0)
	c.PieceCompleted(1.5, 7)
	c.PieceCompleted(3.0, 2)
	c.BlockReceived(0.5)
	c.BlockReceived(0.7)
	c.BlockReceived(1.5)
	if len(c.PieceTimes) != 2 || c.PieceTimes[1] != 3.0 {
		t.Fatalf("piece times %v", c.PieceTimes)
	}
	if len(c.BlockTimes) != 3 {
		t.Fatalf("block times %v", c.BlockTimes)
	}
}

func TestSamplesAndEvents(t *testing.T) {
	c := NewCollector(0)
	c.Sample(AvailSample{T: 10, Min: 0, Mean: 3.5, Max: 60, RarestSize: 200, PeerSet: 45})
	c.MarkEvent(50, "end_game")
	c.LocalSeed(60)
	if len(c.Samples) != 1 || c.Samples[0].Max != 60 {
		t.Fatalf("samples %v", c.Samples)
	}
	if len(c.Events) != 2 || c.Events[0].Name != "end_game" || c.Events[1].Name != "seed_state" {
		t.Fatalf("events %v", c.Events)
	}
	if c.SeededAt() != 60 {
		t.Fatalf("SeededAt = %f", c.SeededAt())
	}
}

func TestSeedServeCounters(t *testing.T) {
	c := NewCollector(0)
	c.SeedServed(false)
	c.SeedServed(false)
	c.SeedServed(true)
	if c.SeedServes != 3 || c.DupSeedServes != 1 {
		t.Fatalf("serves=%d dup=%d", c.SeedServes, c.DupSeedServes)
	}
}

func TestRecordsBeforeFinalizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCollector(0).Records()
}

func TestDoubleFinalizeIsSafe(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.Finalize(100)
	c.Finalize(200) // no-op
	approx(t, "residency", c.Records()[0].Residency, 100)
}

func TestInterestIdempotence(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.LocalInterest(1, 10, true)
	c.LocalInterest(1, 20, true) // repeated: ignored
	c.LocalInterest(1, 30, false)
	c.LocalInterest(1, 40, false)
	c.Finalize(100)
	approx(t, "a", c.Records()[0].LocalInterestedTime, 20)
}

func TestLocalSeedStopsLocalInterestAccrual(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(1, 0)
	c.LocalInterest(1, 0, true)
	c.LocalSeed(25)
	c.LocalInterest(1, 60, false)
	c.Finalize(100)
	approx(t, "a capped at seed transition", c.Records()[0].LocalInterestedTime, 25)
}
