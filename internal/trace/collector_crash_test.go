package trace

import (
	"reflect"
	"testing"
)

// TestCrashResumeCompleteChurn walks the crash-recovery path: a remote
// completes (becomes a seed), crashes, rejoins with retained pieces but
// NOT as a seed (the crash dropped some), then completes again. The
// seed-status un-latch on rejoin is the load-bearing step: without it the
// pre-crash latch would leak into the new life and every leecher-state
// interval after the rejoin would be silently dropped.
func TestCrashResumeCompleteChurn(t *testing.T) {
	c := NewCollector(0)
	c.PeerJoined(5, 0)
	c.RemoteInterest(5, 0, true)
	c.RemoteSeedStatus(5, 20, true) // first completion
	c.PeerLeft(5, 50)               // crash
	c.CountFault("peer_crash")

	c.PeerJoined(5, 80)              // rejoin after downtime
	c.RemoteSeedStatus(5, 80, false) // retained pieces, but no longer a seed
	c.CountFault("peer_resume")
	c.RemoteInterest(5, 85, true)
	c.RemoteSeedStatus(5, 110, true) // completes again via re-download
	c.PeerLeft(5, 130)
	c.Finalize(150)

	r := c.AllRecords()[0]
	// Residency spans both lives, never the 30 s downtime.
	approx(t, "Residency", r.Residency, 100)
	// Leecher-state residency: [0,20) of life one plus [80,110) of life
	// two — the rejoined span counts again because the latch was cleared.
	approx(t, "ResidencyLSLocal", r.ResidencyLSLocal, 50)
	// Remote interest while it was a leecher: [0,20) + [85,110).
	approx(t, "RemoteInterestedTime", r.RemoteInterestedTime, 45)
	// Interest in the local leecher across both lives: [0,50) + [85,130).
	approx(t, "InterestedInLocalLS", r.InterestedInLocalLS, 95)
	if !r.RemoteWasSeed {
		t.Error("RemoteWasSeed lost across the crash")
	}
	if r.JoinedAt != 0 {
		t.Errorf("JoinedAt = %v, want the first join", r.JoinedAt)
	}
	if c.FaultCounts["peer_crash"] != 1 || c.FaultCounts["peer_resume"] != 1 {
		t.Errorf("fault counts = %v", c.FaultCounts)
	}
}

// TestRemoteSeedStatusRedundantCallsAreNoOps: the connect path now always
// reports seed status (so a crashed ex-seed's rejoin can un-latch), which
// means fault-free runs issue many redundant false reports. Those must be
// byte-for-byte invisible, or every golden digest would shift.
func TestRemoteSeedStatusRedundantCallsAreNoOps(t *testing.T) {
	build := func(redundant bool) []*PeerRecord {
		c := NewCollector(0)
		c.PeerJoined(1, 0)
		if redundant {
			c.RemoteSeedStatus(1, 0, false)
		}
		c.LocalInterest(1, 5, true)
		if redundant {
			c.RemoteSeedStatus(1, 7, false)
		}
		c.RemoteSeedStatus(1, 10, true)
		if redundant {
			c.RemoteSeedStatus(1, 12, true)
		}
		c.PeerLeft(1, 30)
		c.Finalize(40)
		return c.AllRecords()
	}
	plain, noisy := build(false), build(true)
	if !reflect.DeepEqual(plain, noisy) {
		t.Fatalf("redundant seed-status reports changed records:\n%+v\nvs\n%+v", plain, noisy)
	}
}
