// Package trace is the instrumentation layer: it records, for the local
// (instrumented) peer, the same observables the paper's modified mainline
// 4.0.2 client logged — peer-set membership, interest state in both
// directions, choke transitions, byte counters, piece/block arrivals and
// periodic availability snapshots — and exposes the per-figure series.
//
// All methods take the current time explicitly (simulated or wall-clock
// seconds) and must be called from a single goroutine.
package trace

import "sort"

// MinResidency is the minimum peer-set residency, in seconds, for a peer to
// be included in entropy statistics; the paper filters peers that stayed
// under 10 seconds because churn noise "adversely bias[es] our entropy
// characterization".
const MinResidency = 10.0

// PeerRecord accumulates everything the collector knows about one remote
// peer. Exported fields are the finalized totals; during collection the
// unexported "since" fields hold open intervals.
type PeerRecord struct {
	ID int

	// Residency.
	JoinedAt  float64
	LeftAt    float64
	inSet     bool
	Residency float64 // total time in the peer set

	// ResidencyLSLocal is the time in the peer set while the LOCAL peer was
	// a leecher (denominator b and d of the Fig 1 ratios), restricted to
	// spans where the remote was a leecher too (seeds are excluded from
	// entropy per the paper's footnote 4).
	ResidencyLSLocal float64

	// LocalInterestedTime is the time the local peer (leecher state) was
	// interested in this remote peer while the remote was a leecher
	// (numerator a of ratio a/b; seeds are excluded from entropy, paper
	// footnote 4, so numerator and denominator cover the same spans).
	LocalInterestedTime float64

	// RemoteInterestedTime is the time this remote peer (as a leecher) was
	// interested in the local peer while the local peer was a leecher
	// (numerator c of ratio c/d).
	RemoteInterestedTime float64

	// InterestedInLocalLS / InterestedInLocalSS is the total time the
	// remote was interested in the local peer split by the LOCAL peer's
	// state — the x axis of Fig 10 top/bottom.
	InterestedInLocalLS float64
	InterestedInLocalSS float64

	// Unchoke counters (Fig 10): transitions from choked to unchoked
	// performed by the local peer, split by the local peer's state.
	UnchokesLS int
	UnchokesSS int

	// Byte counters split by the local peer's state (Figs 9 and 11).
	UploadedLS   int64
	UploadedSS   int64
	DownloadedLS int64
	DownloadedSS int64

	// RemoteWasSeed reports whether the remote ever presented a complete
	// bitfield while resident (such peers are excluded from reciprocation
	// denominators: "all seeds are removed ... as it is not possible to
	// reciprocate data to seeds").
	RemoteWasSeed bool

	residencyOpen         float64
	localInterestedSince  float64
	localInterested       bool
	remoteInterestedSince float64
	remoteInterested      bool
	unchoked              bool
	remoteIsSeed          bool
}

// AvailSample is one periodic snapshot of the local peer's availability
// view (Figs 2–6) plus the torrent-global state the simulator can see
// (used to classify runs as transient or steady).
type AvailSample struct {
	T          float64
	Min        int     // min copies in the LOCAL peer set
	Mean       float64 // mean copies in the local peer set
	Max        int     // max copies in the local peer set
	RarestSize int     // size of the local rarest-pieces set
	PeerSet    int     // local peer set size
	GlobalMin  int     // min copies over all live peers
	GlobalRare int     // pieces held ONLY by the initial seed ("rare pieces")
}

// Collector gathers a single experiment's instrumentation.
type Collector struct {
	peers map[int]*PeerRecord
	// MinResidency overrides the paper's 10-second residency filter for
	// Records when positive. Live loopback swarms finish in wall-clock
	// seconds, so their collectors lower it; simulated runs leave it zero
	// and keep the paper's threshold.
	MinResidency float64
	// localSeed is whether the local peer is currently in seed state.
	localSeed     bool
	seedAt        float64 // time the local peer became a seed (-1 if never)
	startAt       float64
	PieceTimes    []float64 // completion time of each piece, in arrival order
	BlockTimes    []float64 // arrival time of each block, in arrival order
	Samples       []AvailSample
	Events        []Event
	finalized     bool
	DupSeedServes int // pieces served by the initial seed that were already served (A4)
	SeedServes    int // total pieces served by the initial seed

	// MsgCounts tallies control-plane events at the local peer, the
	// equivalent of the paper's "log of each BitTorrent message sent or
	// received": interest transitions in both directions, choke/unchoke
	// transitions performed by the local peer, and HAVE updates observed
	// from the peer set.
	MsgCounts map[string]int

	// FaultCounts tallies resilience events (dial retries, request
	// timeouts, snubs, injected resets, announce failures). Lazily
	// allocated so fault-free runs — every golden scenario — keep a nil
	// map and their Report JSON unchanged.
	FaultCounts map[string]int
}

// Event is a notable protocol event (end game entered, seed state, ...).
type Event struct {
	T    float64
	Name string
}

// NewCollector returns an empty collector; start is the experiment start
// time (usually the moment the local peer joins).
func NewCollector(start float64) *Collector {
	return &Collector{
		peers:     map[int]*PeerRecord{},
		startAt:   start,
		seedAt:    -1,
		MsgCounts: map[string]int{},
	}
}

// CountMsg tallies one control-plane event by name.
func (c *Collector) CountMsg(name string) { c.MsgCounts[name]++ }

// CountFault tallies one resilience event by kind.
func (c *Collector) CountFault(kind string) { c.AddFault(kind, 1) }

// AddFault adds n to the fault tally for kind; byte-valued kinds (e.g.
// wasted_bytes from poisoned pieces) accumulate through this path.
func (c *Collector) AddFault(kind string, n int) {
	if c.FaultCounts == nil {
		c.FaultCounts = map[string]int{}
	}
	c.FaultCounts[kind] += n
}

func (c *Collector) rec(id int) *PeerRecord {
	r := c.peers[id]
	if r == nil {
		r = &PeerRecord{ID: id, JoinedAt: -1, LeftAt: -1}
		c.peers[id] = r
	}
	return r
}

// PeerJoined records a remote peer entering the local peer set.
func (c *Collector) PeerJoined(id int, now float64) {
	r := c.rec(id)
	if r.inSet {
		return
	}
	r.inSet = true
	if r.JoinedAt < 0 {
		r.JoinedAt = now
	}
	r.residencyOpen = now
}

// PeerLeft records a remote peer leaving the local peer set, closing all
// open intervals. Interest and unchoke state die with the connection: a
// departed peer that later rejoins starts neutral and must re-announce
// interest, so the absence gap never accrues to any interval. (Leaving
// the flags latched across the gap over-counted interest numerators for
// rejoining peers — a/b ratios could exceed 1 before clamping.)
func (c *Collector) PeerLeft(id int, now float64) {
	r := c.rec(id)
	if !r.inSet {
		return
	}
	c.closeIntervals(r, now)
	r.inSet = false
	r.LeftAt = now
	r.localInterested = false
	r.remoteInterested = false
	r.unchoked = false
}

// closeIntervals settles every open interval for r at time now. Intervals
// are homogeneous in local/remote seed status because every status flip
// calls this first, so plain subtraction is exact.
func (c *Collector) closeIntervals(r *PeerRecord, now float64) {
	r.Residency += now - r.residencyOpen
	if !c.localSeed && !r.remoteIsSeed {
		r.ResidencyLSLocal += now - r.residencyOpen
	}
	if r.localInterested {
		if !c.localSeed && !r.remoteIsSeed {
			r.LocalInterestedTime += now - r.localInterestedSince
		}
		r.localInterestedSince = now
	}
	if r.remoteInterested {
		span := now - r.remoteInterestedSince
		if c.localSeed {
			r.InterestedInLocalSS += span
		} else {
			if !r.remoteIsSeed {
				r.RemoteInterestedTime += span
			}
			r.InterestedInLocalLS += span
		}
		r.remoteInterestedSince = now
	}
	r.residencyOpen = now
}

// LocalInterest records the local peer's interest in remote id changing.
func (c *Collector) LocalInterest(id int, now float64, interested bool) {
	r := c.rec(id)
	if r.localInterested == interested {
		return
	}
	if r.localInterested && !c.localSeed && !r.remoteIsSeed {
		r.LocalInterestedTime += now - r.localInterestedSince
	}
	r.localInterested = interested
	r.localInterestedSince = now
	if interested {
		c.CountMsg("local_interested")
	} else {
		c.CountMsg("local_not_interested")
	}
}

// RemoteInterest records remote id's interest in the local peer changing.
func (c *Collector) RemoteInterest(id int, now float64, interested bool) {
	r := c.rec(id)
	if r.remoteInterested == interested {
		return
	}
	if r.remoteInterested {
		span := now - r.remoteInterestedSince
		if c.localSeed {
			r.InterestedInLocalSS += span
		} else {
			if !r.remoteIsSeed {
				r.RemoteInterestedTime += span
			}
			r.InterestedInLocalLS += span
		}
	}
	r.remoteInterested = interested
	r.remoteInterestedSince = now
	if interested {
		c.CountMsg("remote_interested")
	} else {
		c.CountMsg("remote_not_interested")
	}
}

// RemoteSeedStatus records whether remote id is (now) a seed.
func (c *Collector) RemoteSeedStatus(id int, now float64, seed bool) {
	r := c.rec(id)
	if seed == r.remoteIsSeed {
		return
	}
	// Settle the leecher-state residency span under the old status.
	if r.inSet {
		c.closeIntervals(r, now)
	}
	r.remoteIsSeed = seed
	if seed {
		r.RemoteWasSeed = true
	}
}

// Unchoke records the local peer unchoking remote id (a choked->unchoked
// transition only; repeated unchokes while already unchoked are ignored,
// matching the paper's "number of times a peer is unchoked").
func (c *Collector) Unchoke(id int, now float64) {
	r := c.rec(id)
	if r.unchoked {
		return
	}
	r.unchoked = true
	c.CountMsg("unchoke")
	if c.localSeed {
		r.UnchokesSS++
	} else {
		r.UnchokesLS++
	}
}

// Choke records the local peer choking remote id.
func (c *Collector) Choke(id int, now float64) {
	if r := c.rec(id); r.unchoked {
		r.unchoked = false
		c.CountMsg("choke")
	}
}

// Uploaded credits n bytes uploaded from the local peer to remote id.
func (c *Collector) Uploaded(id int, now float64, n int64) {
	r := c.rec(id)
	if c.localSeed {
		r.UploadedSS += n
	} else {
		r.UploadedLS += n
	}
}

// Downloaded credits n bytes downloaded by the local peer from remote id.
func (c *Collector) Downloaded(id int, now float64, n int64) {
	r := c.rec(id)
	if c.localSeed {
		r.DownloadedSS += n
	} else {
		r.DownloadedLS += n
	}
}

// LocalSeed records the local peer's leecher->seed transition: every open
// leecher-state interval is settled under leecher accounting first.
func (c *Collector) LocalSeed(now float64) {
	if c.localSeed {
		return
	}
	for _, r := range c.peers {
		if r.inSet {
			c.closeIntervals(r, now)
		}
	}
	c.localSeed = true
	c.seedAt = now
	c.Events = append(c.Events, Event{T: now, Name: "seed_state"})
}

// SeededAt returns the time the local peer completed its download, or -1.
func (c *Collector) SeededAt() float64 { return c.seedAt }

// StartAt returns the experiment start time (local peer join).
func (c *Collector) StartAt() float64 { return c.startAt }

// PieceCompleted records a verified piece arrival at the local peer.
func (c *Collector) PieceCompleted(now float64, piece int) {
	c.PieceTimes = append(c.PieceTimes, now)
}

// BlockReceived records a block arrival at the local peer.
func (c *Collector) BlockReceived(now float64) {
	c.BlockTimes = append(c.BlockTimes, now)
}

// Sample records a periodic availability snapshot.
func (c *Collector) Sample(s AvailSample) {
	c.Samples = append(c.Samples, s)
}

// MarkEvent records a named protocol event (e.g. "end_game").
func (c *Collector) MarkEvent(now float64, name string) {
	c.Events = append(c.Events, Event{T: now, Name: name})
}

// SeedServed records the initial seed serving a piece; dup reports whether
// that piece had been served before (A4 ablation metric).
func (c *Collector) SeedServed(dup bool) {
	c.SeedServes++
	if dup {
		c.DupSeedServes++
	}
}

// Finalize closes all open intervals at time end. Must be called exactly
// once, before reading records.
func (c *Collector) Finalize(end float64) {
	if c.finalized {
		return
	}
	for _, r := range c.peers {
		if r.inSet {
			c.closeIntervals(r, end)
			r.inSet = false
			r.LeftAt = end
		}
	}
	c.finalized = true
}

// Records returns all peer records with residency of at least the
// collector's residency threshold (MinResidency unless overridden), sorted
// by ID. Finalize must have been called.
func (c *Collector) Records() []*PeerRecord {
	if !c.finalized {
		panic("trace: Records before Finalize")
	}
	minRes := c.MinResidency
	if minRes <= 0 {
		minRes = MinResidency
	}
	out := make([]*PeerRecord, 0, len(c.peers))
	for _, r := range c.peers {
		if r.Residency >= minRes {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AllRecords returns every peer record regardless of residency.
func (c *Collector) AllRecords() []*PeerRecord {
	if !c.finalized {
		panic("trace: AllRecords before Finalize")
	}
	out := make([]*PeerRecord, 0, len(c.peers))
	for _, r := range c.peers {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
