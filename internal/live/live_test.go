package live

import (
	"testing"
	"time"

	"rarestfirst/internal/scenario"
	"rarestfirst/internal/torrents"
)

// tinyConfig is a swarm small enough for unit tests: 4 peers moving
// 256 KiB over loopback.
func tinyConfig(seed int64) Config {
	return Config{
		Label:         "tiny",
		TorrentID:     10,
		Seed:          seed,
		NumPieces:     16,
		PieceSize:     16 << 10,
		Leechers:      3,
		SeedUploadBps: 4 << 20,
		PeerUploadBps: 2 << 20,
		ChokeInterval: 150 * time.Millisecond,
		SampleEvery:   100 * time.Millisecond,
		Stagger:       50 * time.Millisecond,
		Deadline:      60 * time.Second,
		Linger:        600 * time.Millisecond,
		MinResidency:  0.2,
	}
}

func TestLiveSwarmCompletes(t *testing.T) {
	res, err := Run(tinyConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !res.LocalCompleted {
		t.Fatal("instrumented local peer did not complete")
	}
	if res.LocalDownloadSeconds <= 0 {
		t.Fatalf("local download time %v", res.LocalDownloadSeconds)
	}
	if res.Arrivals != 3 {
		t.Fatalf("arrivals = %d, want 3", res.Arrivals)
	}
	col := res.Collector
	if col.SeededAt() < 0 {
		t.Fatal("collector never saw seed state")
	}
	if len(col.PieceTimes) != 16 {
		t.Fatalf("collector saw %d piece completions, want 16", len(col.PieceTimes))
	}
	if len(col.BlockTimes) == 0 || len(col.Samples) == 0 {
		t.Fatalf("collector missing block times (%d) or samples (%d)",
			len(col.BlockTimes), len(col.Samples))
	}
	recs := col.Records()
	if len(recs) == 0 {
		t.Fatal("no peer records past the residency filter")
	}
	var sawSeed, sawDownload bool
	for _, r := range recs {
		if r.RemoteWasSeed {
			sawSeed = true
		}
		if r.DownloadedLS > 0 {
			sawDownload = true
		}
	}
	if !sawSeed {
		t.Error("no record flagged the initial seed as a seed")
	}
	if !sawDownload {
		t.Error("no record credits leecher-state downloads")
	}
	// Samples carry the lab's global counters: once everyone finished,
	// rare pieces must be gone by the final sample.
	last := col.Samples[len(col.Samples)-1]
	if last.GlobalRare != 0 {
		t.Errorf("final sample still reports %d rare pieces", last.GlobalRare)
	}
}

func TestLiveLabRunsSwarmsConcurrently(t *testing.T) {
	cfgs := []Config{tinyConfig(1), tinyConfig(2)}
	results, err := Lab{Workers: 2}.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || !res.LocalCompleted {
			t.Fatalf("swarm %d did not complete: %+v", i, res)
		}
	}
}

func TestLiveSeedFailureKillsTorrent(t *testing.T) {
	cfg := tinyConfig(7)
	// Stop the seed almost immediately with a slow seed: not every piece
	// gets out, so the torrent dies — "a torrent is alive as long as
	// there is at least one copy of each piece".
	cfg.SeedUploadBps = 64 << 10
	cfg.SeedStopAfter = 400 * time.Millisecond
	cfg.Deadline = 3 * time.Second
	cfg.Linger = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalCompleted {
		t.Skip("seed drained all pieces before the failure injection; nothing to assert")
	}
	if res.LocalDownloadSeconds != -1 {
		t.Fatalf("incomplete run reports download time %v", res.LocalDownloadSeconds)
	}
}

func TestFromSpecDefaultsAndValidation(t *testing.T) {
	cfg, err := FromSpec(scenario.Spec{Label: "x", TorrentID: 10, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Leechers != DefaultPeers-1 || cfg.NumPieces != DefaultPieces {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.PieceSize%(16<<10) != 0 {
		t.Fatalf("piece size %d not block-aligned", cfg.PieceSize)
	}
	if cfg.Seed != scenario.MixSeed(1, 10) {
		t.Fatalf("seed %d not mixed from catalog default", cfg.Seed)
	}

	// SeedOverride wins over Scale.Seed and decorrelates torrents.
	a, _ := FromSpec(scenario.Spec{TorrentID: 10, Live: true, SeedOverride: 5})
	b, _ := FromSpec(scenario.Spec{TorrentID: 8, Live: true, SeedOverride: 5})
	if a.Seed == b.Seed {
		t.Fatal("same seed for different torrents under one SeedOverride")
	}

	// Unsupported ablations are rejected loudly.
	bad := []scenario.Spec{
		{TorrentID: 10, Live: true, Picker: scenario.PickerRandom},
		{TorrentID: 10, Live: true, SeedChoke: scenario.SeedChokeOld},
		{TorrentID: 10, Live: true, LeecherChoke: scenario.LeecherChokeTitForTat},
		{TorrentID: 10, Live: true, FreeRiderFraction: 0.3},
		{TorrentID: 10, Live: true, SmartSeedServe: true},
	}
	for i, sp := range bad {
		if _, err := FromSpec(sp); err == nil {
			t.Errorf("spec %d accepted: %+v", i, sp)
		}
	}

	// Scale durations map to wall-clock deadlines.
	cfg, err = FromSpec(scenario.Spec{TorrentID: 8, Live: true,
		Scale: torrents.Scale{MaxPeers: 4, MaxContentMB: 1, MaxPieces: 16, Duration: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Deadline != 30*time.Second || cfg.Leechers != 3 || cfg.NumPieces != 16 {
		t.Fatalf("scale mapping wrong: %+v", cfg)
	}
}
