// Package live is the live-swarm lab: it provisions real BitTorrent
// swarms — one loopback HTTP tracker plus N instrumented internal/client
// peers per swarm — and harvests the same trace.Collector instrumentation
// the discrete-event simulator produces, so real-TCP runs flow through the
// identical report/aggregation pipeline and cross-validate the simulator's
// conclusions, the way the paper's own evidence came from an instrumented
// real client rather than a model.
//
// One designated leecher per swarm (the last to arrive, mirroring the
// simulator's late-joining local peer) carries the collector; the lab's
// global-availability callback gives its snapshots the torrent-wide
// counters (min copies, rare pieces) that only the orchestrator can see.
package live

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"rarestfirst/internal/adversary"
	"rarestfirst/internal/client"
	"rarestfirst/internal/crash"
	"rarestfirst/internal/metainfo"
	"rarestfirst/internal/netem"
	"rarestfirst/internal/obs"
	"rarestfirst/internal/scenario"
	"rarestfirst/internal/trace"
	"rarestfirst/internal/tracker"
)

// Config is the fully resolved parameterization of one live swarm.
type Config struct {
	Label     string
	TorrentID int
	// Seed drives content generation and every client's identity/choke
	// RNG; a fixed seed reproduces everything but real-TCP timing.
	Seed int64

	NumPieces int
	PieceSize int // bytes; a multiple of the 16 KiB block size

	// Leechers is the leecher count including the instrumented local
	// peer; the swarm additionally has one initial seed.
	Leechers int

	SeedUploadBps float64
	PeerUploadBps float64

	ChokeInterval time.Duration
	SampleEvery   time.Duration
	// Stagger is the arrival spacing between successive leechers; the
	// instrumented local peer arrives last.
	Stagger time.Duration
	// Deadline bounds the swarm's wall-clock lifetime. A swarm whose
	// local peer has not finished by then reports LocalCompleted false.
	Deadline time.Duration
	// Linger keeps the swarm up after everyone finished so residency and
	// seed-state intervals accumulate past the residency filter.
	Linger time.Duration
	// SeedStopAfter, when positive, stops the initial seed that long
	// after swarm start — the live twin of the seed-failure injection.
	SeedStopAfter time.Duration

	// MinResidency is the collector's residency filter in seconds (live
	// swarms live wall-clock seconds, not the paper's hours).
	MinResidency float64

	// Faults is the netem fault plan the swarm runs under; the zero plan
	// (no Spec.Faults) emulates nothing. Fractional timing (blackout
	// window, seed failure) is anchored to Deadline, and each client's
	// injector seed derives from the run seed.
	Faults netem.Plan

	// Adversary is the Byzantine peer model mixed into the swarm; the
	// zero model (no Spec.Adversary) provisions none. Adversarial clients
	// join on top of the honest population — poisoners as content-bearing
	// seeds, liars and flooders as leechers — and are excluded from the
	// completion accounting and the global-availability view (their
	// copies are not trustworthy availability).
	Adversary adversary.Model
	// AdversaryNoBan turns off the honest clients' poisoner-ban response
	// (measurement mode: hash failures and wasted bytes still count).
	AdversaryNoBan bool

	// Crashes is the crash-schedule plan: a deterministic fraction of the
	// non-instrumented leechers is SIGKILLed (client.Kill: the resume
	// store closes before connections drain, as a real process death
	// would leave it) at schedule-drawn instants inside the kill window
	// and restarted from its ResumeDir after the plan's downtime. The
	// zero plan (no Spec.Crashes) kills nobody. Victim choice and kill
	// instants come from a dedicated offset stream (501) of the run
	// seed, so the schedule replays under a fixed seed even though
	// real-TCP timing does not.
	Crashes crash.Plan

	// Client resilience policy, zero = the client's own defaults. FromSpec
	// tightens these for chaos runs so retries fit wall-clock deadlines.
	DialTimeout       time.Duration
	DialRetries       int
	DialBackoff       time.Duration
	RequestTimeout    time.Duration
	SnubAfter         int
	BanFor            time.Duration
	AnnounceRetryBase time.Duration
	AnnounceRetryMax  time.Duration
}

// Defaults for FromSpec, exported so tests and docs agree with the code.
// Upload caps are deliberately far below loopback capacity: the paper's
// dynamics (choke rotation, reciprocation, interest churn) only appear
// when a transfer spans many choke rounds, so the default geometry makes
// a swarm last roughly 15-20 rounds rather than one.
const (
	DefaultPeers      = 5
	DefaultContentMB  = 1
	DefaultPieces     = 32
	DefaultDeadlineS  = 90
	DefaultSeedUpBps  = 512 << 10
	DefaultPeerUpBps  = 256 << 10
	DefaultResidencyS = 0.5
)

// FromSpec resolves a scenario spec onto a live swarm configuration. The
// spec's Scale is read at wall-clock granularity (Duration = deadline in
// real seconds); unsupported ablation switches are rejected rather than
// silently ignored, because a live run that silently dropped its ablation
// would masquerade as a valid twin.
func FromSpec(sp scenario.Spec) (Config, error) {
	switch {
	case sp.Picker != "" && sp.Picker != scenario.PickerRarestFirst:
		return Config{}, fmt.Errorf("live: picker %q not supported (the TCP client runs the paper's rarest-first)", sp.Picker)
	case sp.SeedChoke != "" && sp.SeedChoke != scenario.SeedChokeNew:
		return Config{}, fmt.Errorf("live: seed choker %q not supported live", sp.SeedChoke)
	case sp.LeecherChoke != "" && sp.LeecherChoke != scenario.LeecherChokeStandard:
		return Config{}, fmt.Errorf("live: leecher choker %q not supported live", sp.LeecherChoke)
	case sp.FreeRiderFraction != 0 || sp.LocalFreeRider:
		return Config{}, errors.New("live: free riders not supported live")
	case sp.SmartSeedServe || sp.DisableRandomFirst || sp.BoostNewcomers:
		return Config{}, errors.New("live: policy ablations not supported live")
	case sp.ChurnScale != 0 && sp.ChurnScale != 1:
		return Config{}, errors.New("live: churn scaling not supported live")
	case sp.AbortScale != 0:
		return Config{}, errors.New("live: abort scaling not supported live")
	}

	peers := clampInt(sp.Scale.MaxPeers, DefaultPeers, 3, 32)
	contentMB := clampInt(sp.Scale.MaxContentMB, DefaultContentMB, 1, 8)
	pieces := clampInt(sp.Scale.MaxPieces, DefaultPieces, 8, 256)
	// Piece size: the content split into the requested piece count,
	// rounded up to whole 16 KiB blocks; content is piece-aligned so the
	// geometry stays exact.
	pieceSize := (contentMB << 20) / pieces
	if rem := pieceSize % metainfo.BlockSize; rem != 0 {
		pieceSize += metainfo.BlockSize - rem
	}
	if pieceSize < metainfo.BlockSize {
		pieceSize = metainfo.BlockSize
	}

	deadline := sp.Scale.Duration
	if deadline <= 0 {
		deadline = DefaultDeadlineS
	}
	if deadline > 600 {
		deadline = 600
	}

	base := sp.Scale.Seed
	if sp.SeedOverride != 0 {
		base = sp.SeedOverride
	}
	if base == 0 {
		base = 1
	}

	upScale := sp.SeedUpScale
	if upScale <= 0 {
		upScale = 1
	}

	cfg := Config{
		Label:         sp.Label,
		TorrentID:     sp.TorrentID,
		Seed:          scenario.MixSeed(base, sp.TorrentID),
		NumPieces:     pieces,
		PieceSize:     pieceSize,
		Leechers:      peers - 1,
		SeedUploadBps: DefaultSeedUpBps * upScale,
		PeerUploadBps: DefaultPeerUpBps,
		ChokeInterval: 250 * time.Millisecond,
		SampleEvery:   250 * time.Millisecond,
		Stagger:       100 * time.Millisecond,
		Deadline:      time.Duration(deadline * float64(time.Second)),
		Linger:        time.Second,
		SeedStopAfter: time.Duration(sp.InitialSeedLeavesAt * float64(time.Second)),
		MinResidency:  DefaultResidencyS,
	}
	if sp.Faults != "" {
		plan, ok := netem.PlanByName(sp.Faults)
		if !ok {
			return Config{}, fmt.Errorf("live: unknown fault plan %q (have: %s)", sp.Faults, netem.PlanNamesString())
		}
		cfg.Faults = plan
		if plan.SeedSlowFactor > 0 {
			cfg.SeedUploadBps *= plan.SeedSlowFactor
		}
		if plan.SeedFailFrac > 0 && cfg.SeedStopAfter == 0 {
			cfg.SeedStopAfter = time.Duration(plan.SeedFailFrac * float64(cfg.Deadline))
		}
	}
	if sp.Adversary != "" {
		model, err := adversary.ModelByName(sp.Adversary)
		if err != nil {
			return Config{}, fmt.Errorf("live: %v", err)
		}
		cfg.Adversary = model
		cfg.AdversaryNoBan = sp.AdversaryNoBan
	}
	if sp.Crashes != "" {
		plan, err := crash.PlanByName(sp.Crashes)
		if err != nil {
			return Config{}, fmt.Errorf("live: %v", err)
		}
		cfg.Crashes = plan
	}
	if sp.Faults != "" || sp.Adversary != "" || sp.Crashes != "" {
		// Chaos, Byzantine and crash runs live on seconds-scale deadlines,
		// so the resilience schedule tightens accordingly: several dial
		// retries, request timeouts and announce backoffs must fit inside
		// the run for the snub/ban machinery to act before the deadline.
		cfg.DialTimeout = 2 * time.Second
		cfg.DialRetries = 4
		cfg.DialBackoff = 100 * time.Millisecond
		cfg.RequestTimeout = 2 * time.Second
		cfg.SnubAfter = 3
		cfg.BanFor = 2 * time.Second
		cfg.AnnounceRetryBase = 200 * time.Millisecond
		cfg.AnnounceRetryMax = 2 * time.Second
	}
	if sp.Adversary != "" {
		// Bans are permanent in the sim twin; make live bans outlast the
		// run so a banned poisoner cannot rejoin after the window lapses.
		cfg.BanFor = 10 * time.Minute
	}
	return cfg, nil
}

func clampInt(v, def, lo, hi int) int {
	if v == 0 {
		v = def
	}
	return min(max(v, lo), hi)
}

// applyResilience copies the lab's resilience policy into one client's
// options and, when a fault plan is active, hands the client a fresh
// injector. Injector seeds derive from the run seed through an offset
// stream (101+idx) disjoint from the client-identity stream (1..peers),
// so fault schedules and client RNGs stay decorrelated but both replay
// under a fixed run seed.
func (cfg *Config) applyResilience(opts *client.Options, idx int) {
	opts.DialTimeout = cfg.DialTimeout
	opts.DialRetries = cfg.DialRetries
	opts.DialBackoff = cfg.DialBackoff
	opts.RequestTimeout = cfg.RequestTimeout
	opts.SnubAfter = cfg.SnubAfter
	opts.BanFor = cfg.BanFor
	opts.AnnounceRetryBase = cfg.AnnounceRetryBase
	opts.AnnounceRetryMax = cfg.AnnounceRetryMax
	if cfg.Faults.Enabled() {
		opts.Faults = netem.NewInjector(cfg.Faults, scenario.MixSeed(cfg.Seed, 101+idx), cfg.Deadline)
	}
}

// Result is everything one live swarm produced, mirroring the fields of a
// simulator swarm.Result that the report builder consumes.
type Result struct {
	Config Config
	// Collector is the local peer's finalized instrumentation.
	Collector *trace.Collector
	// LocalCompleted / LocalDownloadSeconds describe the instrumented
	// peer (download time -1 when it did not finish).
	LocalCompleted       bool
	LocalDownloadSeconds float64
	// Arrivals counts leechers; FinishedContrib / MeanDownloadContrib
	// cover the non-instrumented leechers that completed.
	Arrivals            int
	FinishedContrib     int
	MeanDownloadContrib float64
	// EndSeconds is the collector-clock time the swarm was torn down.
	EndSeconds float64
}

// swarmView is the orchestrator's membership table behind the
// global-availability callback: which clients are live and which is the
// initial seed.
type swarmView struct {
	mu       sync.Mutex
	members  []*client.Client
	seed     *client.Client
	seedGone bool
}

func (v *swarmView) add(c *client.Client) {
	v.mu.Lock()
	v.members = append(v.members, c)
	v.mu.Unlock()
}

// remove drops a crashed member so the global availability view stops
// counting its copies until its restarted twin is added back.
func (v *swarmView) remove(c *client.Client) {
	v.mu.Lock()
	for i, m := range v.members {
		if m == c {
			v.members = append(v.members[:i], v.members[i+1:]...)
			break
		}
	}
	v.mu.Unlock()
}

func (v *swarmView) dropSeed() {
	v.mu.Lock()
	v.seedGone = true
	v.mu.Unlock()
}

// global returns (min copies over live members, rare-piece count). Rare
// pieces are held only by the initial seed — the paper's transient-state
// criterion; a departed seed leaves no rare pieces, as in the simulator.
func (v *swarmView) global(numPieces int) (int, int) {
	v.mu.Lock()
	members := append([]*client.Client(nil), v.members...)
	seed, seedGone := v.seed, v.seedGone
	v.mu.Unlock()

	counts := make([]int, numPieces)
	for _, c := range members {
		if seedGone && c == seed {
			continue
		}
		bf := c.Bitfield()
		for i := 0; i < numPieces; i++ {
			if bf.Has(i) {
				counts[i]++
			}
		}
	}
	var seedBits = seed.Bitfield()
	minCopies, rare := counts[0], 0
	for i, n := range counts {
		if n < minCopies {
			minCopies = n
		}
		if n == 1 && !seedGone && seedBits.Has(i) {
			rare++
		}
	}
	return minCopies, rare
}

// Run provisions one live swarm, waits for it to finish (or hit its
// deadline) and returns the harvested result. It is safe to call from
// many goroutines at once: every swarm owns its tracker, listener ports
// and clients.
func Run(cfg Config) (*Result, error) {
	if cfg.NumPieces <= 0 || cfg.PieceSize <= 0 || cfg.Leechers < 1 {
		return nil, fmt.Errorf("live: bad config %+v", cfg)
	}

	// Live-lab obs series (all no-ops without an active registry): how
	// many swarms are in flight right now, how many ever started, and how
	// many leecher downloads have completed.
	reg := obs.Active()
	gActive := reg.Gauge("live_swarms_active")
	gActive.Add(1)
	defer gActive.Add(-1)
	reg.Counter("live_swarms_total").Inc()
	cCompletions := reg.Counter("live_leecher_completions_total")

	// Content derives from the run seed, like the simulator's RNG stream.
	rng := rand.New(rand.NewSource(cfg.Seed))
	content := make([]byte, cfg.NumPieces*cfg.PieceSize)
	rng.Read(content)

	// Loopback HTTP tracker with a fast re-announce interval.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("live: tracker listen: %w", err)
	}
	trk := tracker.NewServer(1)
	if reg != nil {
		trk.SetMetrics(reg)
	}
	handler := trk.Handler()
	if cfg.Faults.Blackout() {
		// The blackout window anchors to tracker start: announces inside
		// [startFrac, endFrac)·Deadline fail with 503 and the clients'
		// announce backoff takes over.
		handler = netem.BlackoutHandler(handler, time.Now(),
			time.Duration(cfg.Faults.BlackoutStartFrac*float64(cfg.Deadline)),
			time.Duration(cfg.Faults.BlackoutEndFrac*float64(cfg.Deadline)))
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	announce := fmt.Sprintf("http://%s/announce", ln.Addr())

	meta, err := metainfo.Build(fmt.Sprintf("live-t%d.bin", cfg.TorrentID), announce, content, cfg.PieceSize)
	if err != nil {
		return nil, fmt.Errorf("live: metainfo: %w", err)
	}

	view := &swarmView{}
	clientSeed := func(i int) int64 {
		s := scenario.MixSeed(cfg.Seed, i+1)
		if s == 0 {
			s = 1
		}
		return s
	}

	// Initial seed.
	seedOpts := client.Options{
		Meta: meta, Content: content,
		UploadBps:     cfg.SeedUploadBps,
		ChokeInterval: cfg.ChokeInterval,
		Seed:          clientSeed(0),
	}
	cfg.applyResilience(&seedOpts, 0)
	seed, err := client.New(seedOpts)
	if err != nil {
		return nil, fmt.Errorf("live: seed client: %w", err)
	}
	view.seed = seed
	if err := seed.Start("127.0.0.1:0", announce); err != nil {
		return nil, fmt.Errorf("live: seed start: %w", err)
	}
	view.add(seed)
	defer seed.Stop()

	if cfg.SeedStopAfter > 0 {
		timer := time.AfterFunc(cfg.SeedStopAfter, func() {
			view.dropSeed()
			seed.Stop()
		})
		defer timer.Stop()
	}

	// Adversarial clients join on top of the honest population:
	// round(Fraction·population) of them, at least one. Poisoners carry
	// the content (they must be asked for blocks to corrupt them) and pose
	// as seeds; liars and flooders join as leechers. None of them enter
	// the completion accounting or the global-availability view — a
	// poisoner's copies are not trustworthy availability. Identity seeds
	// (201+i), behavior seeds (301+i) and injector seeds (applyResilience
	// at 400+i) come from disjoint offset streams of the run seed.
	var advClients []*client.Client
	stopAdv := func() {
		for _, a := range advClients {
			a.Stop()
		}
	}
	defer stopAdv()
	if !cfg.Adversary.IsZero() {
		n := int(math.Round(cfg.Adversary.Fraction * float64(cfg.Leechers+1)))
		if n < 1 {
			n = 1
		}
		poisoner := cfg.Adversary.Kind() == "poison"
		for i := 0; i < n; i++ {
			opts := client.Options{
				Meta:          meta,
				UploadBps:     cfg.PeerUploadBps,
				ChokeInterval: cfg.ChokeInterval,
				Seed:          scenario.MixSeed(cfg.Seed, 201+i),
				Adversary:     adversary.New(cfg.Adversary, scenario.MixSeed(cfg.Seed, 301+i)),
			}
			if poisoner {
				opts.Content = content
				opts.UploadBps = cfg.SeedUploadBps
			}
			cfg.applyResilience(&opts, 400+i)
			a, err := client.New(opts)
			if err != nil {
				stopAdv()
				return nil, fmt.Errorf("live: adversary %d: %w", i, err)
			}
			if err := a.Start("127.0.0.1:0", announce); err != nil {
				stopAdv()
				return nil, fmt.Errorf("live: adversary %d start: %w", i, err)
			}
			advClients = append(advClients, a)
		}
	}

	col := trace.NewCollector(0)
	col.MinResidency = cfg.MinResidency

	// Leechers arrive staggered; the LAST is the instrumented local peer,
	// mirroring the simulator's local peer joining a warmed-up swarm.
	type leecher struct {
		c       *client.Client
		startAt time.Time
	}
	var (
		leechers []leecher
		doneMu   sync.Mutex
		doneAt   = make(map[int]time.Time)
	)

	// Crash schedule: victims, kill thresholds and the shared downtime
	// are drawn up front from a dedicated offset stream (501) of the run
	// seed, so a fixed seed replays the same schedule even though
	// real-TCP timing varies. A kill fires when the victim's verified
	// piece count crosses its drawn fraction of the torrent — progress-
	// triggered rather than wall-clock, so every kill lands mid-transfer
	// regardless of link speed. Only non-instrumented leechers are
	// candidates — the local peer carries the collector and must live
	// the whole run.
	var (
		crashMu          sync.Mutex
		crashWG          sync.WaitGroup
		crashStop        = make(chan struct{})
		crashStopped     bool
		nKilled          int
		nRestarted       int
		totalResumeBytes int64
		totalHashFails   int
		corruptDone      bool
		resumeDirs       = make(map[int]string)
		killAtPieces     = make(map[int]int)
		crashDowntime    time.Duration
	)
	if cfg.Crashes.Enabled() && cfg.Leechers > 1 {
		crand := rand.New(rand.NewSource(scenario.MixSeed(cfg.Seed, 501)))
		candidates := cfg.Leechers - 1
		n := int(math.Round(cfg.Crashes.Frac * float64(candidates)))
		if n < 1 {
			n = 1
		}
		if n > candidates {
			n = candidates
		}
		for _, idx := range crand.Perm(candidates)[:n] {
			frac := cfg.Crashes.StartFrac + crand.Float64()*(cfg.Crashes.EndFrac-cfg.Crashes.StartFrac)
			want := int(math.Ceil(frac * float64(cfg.NumPieces)))
			if want < 1 {
				want = 1
			}
			if want > cfg.NumPieces-1 {
				want = cfg.NumPieces - 1
			}
			killAtPieces[idx] = want
			dir, err := os.MkdirTemp("", "rf-resume-")
			if err != nil {
				return nil, fmt.Errorf("live: resume dir: %w", err)
			}
			defer os.RemoveAll(dir)
			resumeDirs[idx] = dir
		}
		crashDowntime = time.Duration(cfg.Crashes.DowntimeFrac * float64(cfg.Deadline))
	}

	stopAll := func() {
		// Halt the crash orchestration first so no victim is killed or
		// restarted under a tearing-down swarm; then non-local leechers,
		// so the local peer observes their departures, then the local
		// peer, then (deferred) the seed.
		crashMu.Lock()
		if !crashStopped {
			crashStopped = true
			close(crashStop)
		}
		cs := make([]*client.Client, 0, len(leechers))
		for _, l := range leechers {
			cs = append(cs, l.c)
		}
		crashMu.Unlock()
		for _, c := range cs {
			c.Stop()
		}
	}
	localIdx := cfg.Leechers - 1
	for i := 0; i < cfg.Leechers; i++ {
		if i > 0 {
			time.Sleep(cfg.Stagger)
		}
		opts := client.Options{
			Meta:          meta,
			UploadBps:     cfg.PeerUploadBps,
			ChokeInterval: cfg.ChokeInterval,
			Seed:          clientSeed(i + 1),
			NoPoisonBan:   cfg.AdversaryNoBan,
		}
		cfg.applyResilience(&opts, i+1)
		if dir, ok := resumeDirs[i]; ok {
			opts.ResumeDir = dir
		}
		if i == localIdx {
			opts.Trace = col
			opts.SampleEvery = cfg.SampleEvery
			opts.GlobalAvail = func() (int, int) { return view.global(cfg.NumPieces) }
		}
		// startAt is captured before New so it lower-bounds the client's
		// internal clock origin: the Finalize timestamp derived from it
		// can never precede a recorded event.
		startAt := time.Now()
		l, err := client.New(opts)
		if err != nil {
			stopAll()
			return nil, fmt.Errorf("live: leecher %d: %w", i, err)
		}
		idx := i
		l.OnComplete(func() {
			cCompletions.Inc()
			doneMu.Lock()
			doneAt[idx] = time.Now()
			doneMu.Unlock()
		})
		if err := l.Start("127.0.0.1:0", announce); err != nil {
			stopAll()
			return nil, fmt.Errorf("live: leecher %d start: %w", i, err)
		}
		leechers = append(leechers, leecher{c: l, startAt: startAt})
		view.add(l)
	}
	localStart := leechers[localIdx].startAt

	// Kill/restart orchestration: each victim goroutine watches its
	// client's verified piece count, SIGKILLs it at the drawn threshold
	// (client.Kill closes the resume store before connections drain, as
	// a real process death would leave it), sleeps the plan downtime,
	// and restarts a twin over the same ResumeDir with identical
	// options. The first corrupt-resume victim has its data file
	// overwritten before the restart so the re-hash-on-load contract is
	// exercised end to end.
	for idx, want := range killAtPieces {
		idx, want := idx, want
		crashWG.Add(1)
		go func() {
			defer crashWG.Done()
			crashMu.Lock()
			watch := leechers[idx].c
			crashMu.Unlock()
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for watch.Bitfield().Count() < want {
				select {
				case <-crashStop:
					return
				case <-tick.C:
				}
			}
			crashMu.Lock()
			if crashStopped {
				crashMu.Unlock()
				return
			}
			victim := leechers[idx].c
			crashMu.Unlock()
			victim.Kill()
			view.remove(victim)
			crashMu.Lock()
			nKilled++
			dir := resumeDirs[idx]
			if cfg.Crashes.CorruptResume && !corruptDone && client.ResumeClaims(dir) > 0 {
				client.CorruptResumeData(dir)
				corruptDone = true
			}
			crashMu.Unlock()
			select {
			case <-crashStop:
				return
			case <-time.After(crashDowntime):
			}
			opts := client.Options{
				Meta:          meta,
				UploadBps:     cfg.PeerUploadBps,
				ChokeInterval: cfg.ChokeInterval,
				Seed:          clientSeed(idx + 1),
				NoPoisonBan:   cfg.AdversaryNoBan,
				ResumeDir:     dir,
			}
			cfg.applyResilience(&opts, idx+1)
			nc, err := client.New(opts)
			if err != nil {
				return
			}
			_, resBytes, resFails := nc.ResumeStats()
			// The restart voids any pre-kill completion: the run now waits
			// for the restarted client to (re)complete — a corrupted-resume
			// victim must finish again via re-download.
			doneMu.Lock()
			delete(doneAt, idx)
			doneMu.Unlock()
			nc.OnComplete(func() {
				cCompletions.Inc()
				doneMu.Lock()
				doneAt[idx] = time.Now()
				doneMu.Unlock()
			})
			crashMu.Lock()
			if crashStopped {
				crashMu.Unlock()
				nc.Stop()
				return
			}
			if err := nc.Start("127.0.0.1:0", announce); err != nil {
				crashMu.Unlock()
				nc.Stop()
				return
			}
			leechers[idx].c = nc
			nRestarted++
			totalResumeBytes += resBytes
			totalHashFails += resFails
			crashMu.Unlock()
			view.add(nc)
			// A victim killed in the instant between its last piece
			// verifying and its completion callback resumes already
			// complete; the restarted client then never fires
			// OnComplete, so record the completion here.
			if nc.Bitfield().Count() == cfg.NumPieces {
				doneMu.Lock()
				if _, ok := doneAt[idx]; !ok {
					doneAt[idx] = time.Now()
				}
				doneMu.Unlock()
			}
		}()
	}

	// Wait until every leecher finished or the deadline passes, then
	// linger briefly so post-completion intervals (residency past the
	// filter, seed-state choke rounds) accumulate.
	deadline := time.Now().Add(cfg.Deadline)
	for time.Now().Before(deadline) {
		doneMu.Lock()
		n := len(doneAt)
		doneMu.Unlock()
		if n == len(leechers) {
			if lingerEnd := time.Now().Add(cfg.Linger); lingerEnd.Before(deadline) {
				time.Sleep(cfg.Linger)
			} else {
				time.Sleep(time.Until(deadline))
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	stopAll()
	crashWG.Wait()
	end := time.Since(localStart).Seconds()
	// Lab-level crash counters use the live convention (bare names; the
	// sim twins carry the swarm_ prefix) and are added only after the
	// crash goroutines drained — the collector is single-writer.
	crashMu.Lock()
	if nKilled > 0 {
		col.AddFault("peer_crash", nKilled)
	}
	if nRestarted > 0 {
		col.AddFault("peer_resume", nRestarted)
	}
	if totalResumeBytes > 0 {
		col.AddFault("resume_bytes_saved", int(totalResumeBytes))
	}
	if totalHashFails > 0 {
		col.AddFault("resume_hash_fail", totalHashFails)
	}
	crashMu.Unlock()
	col.Finalize(end)

	res := &Result{
		Config:               cfg,
		Collector:            col,
		Arrivals:             len(leechers),
		EndSeconds:           end,
		LocalDownloadSeconds: -1,
	}
	if at := col.SeededAt(); at >= 0 {
		res.LocalCompleted = true
		res.LocalDownloadSeconds = at
	}
	doneMu.Lock()
	var sum float64
	for i, l := range leechers {
		if i == localIdx {
			continue
		}
		if at, ok := doneAt[i]; ok {
			res.FinishedContrib++
			sum += at.Sub(l.startAt).Seconds()
		}
	}
	doneMu.Unlock()
	if res.FinishedContrib > 0 {
		res.MeanDownloadContrib = sum / float64(res.FinishedContrib)
	}
	return res, nil
}

// Lab runs many live swarms concurrently across a bounded worker pool —
// the same discipline as the public Runner, so a suite of live scenarios
// saturates cores without oversubscribing the loopback interface.
type Lab struct {
	// Workers bounds the pool; <= 0 means runtime.NumCPU (via the same
	// convention as rarestfirst.Runner). Live swarms are I/O-heavy, so
	// the default is fine even though each swarm runs many goroutines.
	Workers int
}

func defaultWorkers() int { return runtime.NumCPU() }

// Run executes every config and returns results in input order; failed
// slots are nil and the errors are joined.
func (l Lab) Run(cfgs []Config) ([]*Result, error) {
	workers := l.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := Run(cfgs[i])
				if err != nil {
					errs[i] = fmt.Errorf("live swarm %d (%s): %w", i, cfgs[i].Label, err)
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errors.Join(errs...)
}
