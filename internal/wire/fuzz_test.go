package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// adversarialFrames is the seed corpus for the decoder fuzzers: the frame
// shapes a Byzantine peer would send. These run as ordinary test cases
// under `go test` and as starting points under `go test -fuzz`.
func adversarialFrames() [][]byte {
	frame := func(id byte, payload ...byte) []byte {
		b := make([]byte, 4, 5+len(payload))
		binary.BigEndian.PutUint32(b, uint32(1+len(payload)))
		b = append(b, id)
		return append(b, payload...)
	}
	withLen := func(declared uint32, rest ...byte) []byte {
		b := make([]byte, 4, 4+len(rest))
		binary.BigEndian.PutUint32(b, declared)
		return append(b, rest...)
	}
	return [][]byte{
		withLen(0xffffffff),              // 4 GiB declared frame
		withLen(MaxFrame+1, 7),           // just past the cap
		withLen(MaxFrame),                // exactly at the cap, body missing
		withLen(100, 7, 0, 0),            // declared 100, truncated after 3 bytes
		{0, 0},                           // truncated header
		frame(4, 0xff, 0xff, 0xff, 0xff), // have: index 2^32-1
		frame(6, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff), // request: huge index + length
		frame(7, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),             // piece: out-of-range index/begin, empty block
		frame(7, 0, 0, 0),                 // piece with 3-byte payload (< 8 header bytes)
		frame(5),                          // empty bitfield
		frame(5, 0xff, 0xff, 0xff),        // bitfield with spare bits set
		frame(42, 1, 2, 3),                // unknown id
		frame(0, 9),                       // choke with payload
		append(withLen(0), withLen(0)...), // keep-alive flood
	}
}

// FuzzDecode feeds arbitrary byte streams to the framed decoder. The
// invariant under attack: Decode either yields a structurally valid
// Message or an error — never a panic, never a Message whose sliced
// fields escape the frame it was decoded from.
func FuzzDecode(f *testing.F) {
	for _, frame := range adversarialFrames() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		var m Message
		for {
			err := d.Decode(&m)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrFrameTooLarge) &&
					!errors.Is(err, ErrBadLength) && !errors.Is(err, io.ErrUnexpectedEOF) &&
					!bytes.Contains([]byte(err.Error()), []byte("wire:")) {
					t.Fatalf("unclassified decode error: %v", err)
				}
				return
			}
			if m.ID == MsgPiece && len(m.Block) > MaxFrame {
				t.Fatalf("piece block longer than any legal frame: %d", len(m.Block))
			}
			if m.ID == MsgBitfield && len(m.Raw) > MaxFrame {
				t.Fatalf("bitfield longer than any legal frame: %d", len(m.Raw))
			}
		}
	})
}

// FuzzReadHandshake feeds arbitrary bytes to the handshake reader.
func FuzzReadHandshake(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, Handshake{}); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:10])
	bad := append([]byte(nil), good...)
	bad[0] = 200 // absurd protocol-string length
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHandshake(bytes.NewReader(data))
		if err == nil && len(data) < HandshakeLen {
			t.Fatalf("accepted %d-byte handshake (min %d): %+v", len(data), HandshakeLen, h)
		}
	})
}

// TestDecodeAdversarialFrames pins the decoder's response to each seed
// frame: a Byzantine frame must produce an error (or decode losslessly),
// and the decoder must stay usable for the next connection.
func TestDecodeAdversarialFrames(t *testing.T) {
	for i, frame := range adversarialFrames() {
		d := NewDecoder(bytes.NewReader(frame))
		var m Message
		for {
			if err := d.Decode(&m); err != nil {
				break // any classified error ends the stream; no panic is the assertion
			}
			if m.ID != MsgKeepAlive && m.ID > MsgPort {
				t.Errorf("frame %d: decoded impossible id %d", i, m.ID)
				break
			}
		}
	}
}
