// Package wire implements the BitTorrent peer wire protocol v1.0 (BEP 3):
// the handshake and the ten length-prefixed peer messages exchanged after
// it. It provides both an allocation-free streaming decoder (decode into a
// caller-owned Message, gopacket-style) and symmetric encoders.
//
// Framing: every message is <length uint32 big-endian><id byte><payload>.
// A length of zero is a keep-alive and carries no id.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgID identifies a peer wire message type.
type MsgID byte

// Message IDs from BEP 3. KeepAlive is a pseudo-ID for zero-length frames.
const (
	MsgChoke         MsgID = 0
	MsgUnchoke       MsgID = 1
	MsgInterested    MsgID = 2
	MsgNotInterested MsgID = 3
	MsgHave          MsgID = 4
	MsgBitfield      MsgID = 5
	MsgRequest       MsgID = 6
	MsgPiece         MsgID = 7
	MsgCancel        MsgID = 8
	MsgPort          MsgID = 9
	MsgKeepAlive     MsgID = 255
)

// String returns the BEP 3 message name.
func (id MsgID) String() string {
	switch id {
	case MsgChoke:
		return "choke"
	case MsgUnchoke:
		return "unchoke"
	case MsgInterested:
		return "interested"
	case MsgNotInterested:
		return "not_interested"
	case MsgHave:
		return "have"
	case MsgBitfield:
		return "bitfield"
	case MsgRequest:
		return "request"
	case MsgPiece:
		return "piece"
	case MsgCancel:
		return "cancel"
	case MsgPort:
		return "port"
	case MsgKeepAlive:
		return "keep_alive"
	default:
		return fmt.Sprintf("unknown(%d)", byte(id))
	}
}

// MaxFrame bounds accepted frame sizes: one block (16 kB) plus the 13-byte
// piece header, rounded generously to also admit large bitfields.
const MaxFrame = 1 << 20

var (
	// ErrFrameTooLarge indicates a declared frame length above MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrBadLength indicates a payload length inconsistent with the message id.
	ErrBadLength = errors.New("wire: payload length inconsistent with message id")
	// ErrBadHandshake indicates a malformed or foreign handshake.
	ErrBadHandshake = errors.New("wire: bad handshake")
)

// Message is a decoded peer wire message. Payload fields are valid only for
// the message types that define them. Raw slices alias the decoder's
// internal buffer and are invalidated by the next Decode call; copy them if
// they must outlive it.
type Message struct {
	ID MsgID

	Index  uint32 // have, request, piece, cancel
	Begin  uint32 // request, piece, cancel
	Length uint32 // request, cancel
	Block  []byte // piece payload (aliases decoder buffer)
	Raw    []byte // bitfield payload (aliases decoder buffer)
	Port   uint16 // port
}

// Decoder reads framed messages from an io.Reader without per-message
// allocation: the internal buffer is reused across calls.
type Decoder struct {
	r   io.Reader
	buf []byte
	hdr [4]byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, buf: make([]byte, 0, 32<<10)}
}

// Decode reads the next frame into m. It returns io.EOF cleanly only when
// the stream ends between frames.
func (d *Decoder) Decode(m *Message) error {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("wire: truncated frame header: %w", err)
		}
		return err
	}
	n := binary.BigEndian.Uint32(d.hdr[:])
	if n == 0 {
		*m = Message{ID: MsgKeepAlive}
		return nil
	}
	if n > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return fmt.Errorf("wire: truncated frame body: %w", err)
	}
	return parseBody(d.buf, m)
}

func parseBody(body []byte, m *Message) error {
	*m = Message{ID: MsgID(body[0])}
	payload := body[1:]
	switch m.ID {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
		if len(payload) != 0 {
			return fmt.Errorf("%w: %s with %d payload bytes", ErrBadLength, m.ID, len(payload))
		}
	case MsgHave:
		if len(payload) != 4 {
			return fmt.Errorf("%w: have with %d payload bytes", ErrBadLength, len(payload))
		}
		m.Index = binary.BigEndian.Uint32(payload)
	case MsgBitfield:
		m.Raw = payload
	case MsgRequest, MsgCancel:
		if len(payload) != 12 {
			return fmt.Errorf("%w: %s with %d payload bytes", ErrBadLength, m.ID, len(payload))
		}
		m.Index = binary.BigEndian.Uint32(payload)
		m.Begin = binary.BigEndian.Uint32(payload[4:])
		m.Length = binary.BigEndian.Uint32(payload[8:])
	case MsgPiece:
		if len(payload) < 8 {
			return fmt.Errorf("%w: piece with %d payload bytes", ErrBadLength, len(payload))
		}
		m.Index = binary.BigEndian.Uint32(payload)
		m.Begin = binary.BigEndian.Uint32(payload[4:])
		m.Block = payload[8:]
	case MsgPort:
		if len(payload) != 2 {
			return fmt.Errorf("%w: port with %d payload bytes", ErrBadLength, len(payload))
		}
		m.Port = binary.BigEndian.Uint16(payload)
	default:
		return fmt.Errorf("wire: unknown message id %d", body[0])
	}
	return nil
}

// Encoder writes framed messages to an io.Writer, reusing a scratch buffer.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, buf: make([]byte, 0, 32<<10)}
}

func (e *Encoder) frame(id MsgID, payloadLen int) []byte {
	total := 4 + 1 + payloadLen
	if cap(e.buf) < total {
		e.buf = make([]byte, total)
	}
	e.buf = e.buf[:total]
	binary.BigEndian.PutUint32(e.buf, uint32(1+payloadLen))
	e.buf[4] = byte(id)
	return e.buf
}

func (e *Encoder) flush() error {
	_, err := e.w.Write(e.buf)
	return err
}

// KeepAlive writes a zero-length keep-alive frame.
func (e *Encoder) KeepAlive() error {
	var z [4]byte
	_, err := e.w.Write(z[:])
	return err
}

// Simple writes a payload-less message (choke, unchoke, interested,
// not-interested).
func (e *Encoder) Simple(id MsgID) error {
	switch id {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
	default:
		return fmt.Errorf("wire: %s is not a payload-less message", id)
	}
	e.frame(id, 0)
	return e.flush()
}

// Have writes a have message for piece index.
func (e *Encoder) Have(index uint32) error {
	b := e.frame(MsgHave, 4)
	binary.BigEndian.PutUint32(b[5:], index)
	return e.flush()
}

// Bitfield writes a bitfield message with the given wire-format payload.
func (e *Encoder) Bitfield(wireBits []byte) error {
	b := e.frame(MsgBitfield, len(wireBits))
	copy(b[5:], wireBits)
	return e.flush()
}

// Request writes a request message.
func (e *Encoder) Request(index, begin, length uint32) error {
	b := e.frame(MsgRequest, 12)
	binary.BigEndian.PutUint32(b[5:], index)
	binary.BigEndian.PutUint32(b[9:], begin)
	binary.BigEndian.PutUint32(b[13:], length)
	return e.flush()
}

// Cancel writes a cancel message.
func (e *Encoder) Cancel(index, begin, length uint32) error {
	b := e.frame(MsgCancel, 12)
	binary.BigEndian.PutUint32(b[5:], index)
	binary.BigEndian.PutUint32(b[9:], begin)
	binary.BigEndian.PutUint32(b[13:], length)
	return e.flush()
}

// Piece writes a piece message carrying block data.
func (e *Encoder) Piece(index, begin uint32, block []byte) error {
	b := e.frame(MsgPiece, 8+len(block))
	binary.BigEndian.PutUint32(b[5:], index)
	binary.BigEndian.PutUint32(b[9:], begin)
	copy(b[13:], block)
	return e.flush()
}

// Port writes a DHT port message (decoded but unused; 4.0.2 pre-dates DHT
// in the stable protocol, see DESIGN.md out-of-scope list).
func (e *Encoder) Port(port uint16) error {
	b := e.frame(MsgPort, 2)
	binary.BigEndian.PutUint16(b[5:], port)
	return e.flush()
}

// protocolString is the BEP 3 protocol identifier.
const protocolString = "BitTorrent protocol"

// HandshakeLen is the fixed size of a v1.0 handshake.
const HandshakeLen = 1 + len(protocolString) + 8 + 20 + 20

// Handshake is the fixed-size preamble exchanged when a connection opens.
type Handshake struct {
	Reserved [8]byte
	InfoHash [20]byte
	PeerID   [20]byte
}

// WriteHandshake writes h to w.
func WriteHandshake(w io.Writer, h Handshake) error {
	var buf [HandshakeLen]byte
	buf[0] = byte(len(protocolString))
	copy(buf[1:], protocolString)
	copy(buf[20:], h.Reserved[:])
	copy(buf[28:], h.InfoHash[:])
	copy(buf[48:], h.PeerID[:])
	_, err := w.Write(buf[:])
	return err
}

// ReadHandshake reads and validates a handshake from r.
func ReadHandshake(r io.Reader) (Handshake, error) {
	var buf [HandshakeLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Handshake{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if int(buf[0]) != len(protocolString) || string(buf[1:20]) != protocolString {
		return Handshake{}, fmt.Errorf("%w: unknown protocol %q", ErrBadHandshake, buf[1:20])
	}
	var h Handshake
	copy(h.Reserved[:], buf[20:])
	copy(h.InfoHash[:], buf[28:])
	copy(h.PeerID[:], buf[48:])
	return h, nil
}
