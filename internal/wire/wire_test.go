package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// roundTrip encodes via fn and decodes the result, returning the message.
func roundTrip(t *testing.T, fn func(*Encoder) error) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := fn(NewEncoder(&buf)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var m Message
	if err := NewDecoder(&buf).Decode(&m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return m
}

func TestSimpleMessages(t *testing.T) {
	for _, id := range []MsgID{MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested} {
		m := roundTrip(t, func(e *Encoder) error { return e.Simple(id) })
		if m.ID != id {
			t.Errorf("got %v, want %v", m.ID, id)
		}
	}
}

func TestSimpleRejectsPayloadMessages(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Simple(MsgHave); err == nil {
		t.Fatal("Simple(have) accepted")
	}
}

func TestKeepAlive(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.KeepAlive() })
	if m.ID != MsgKeepAlive {
		t.Errorf("got %v", m.ID)
	}
}

func TestHave(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Have(862) })
	if m.ID != MsgHave || m.Index != 862 {
		t.Errorf("got %+v", m)
	}
}

func TestRequestCancel(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Request(5, 16384, 16384) })
	if m.ID != MsgRequest || m.Index != 5 || m.Begin != 16384 || m.Length != 16384 {
		t.Errorf("request: %+v", m)
	}
	m = roundTrip(t, func(e *Encoder) error { return e.Cancel(7, 0, 1024) })
	if m.ID != MsgCancel || m.Index != 7 || m.Begin != 0 || m.Length != 1024 {
		t.Errorf("cancel: %+v", m)
	}
}

func TestPiece(t *testing.T) {
	block := make([]byte, 16384)
	rand.New(rand.NewSource(1)).Read(block)
	m := roundTrip(t, func(e *Encoder) error { return e.Piece(3, 32768, block) })
	if m.ID != MsgPiece || m.Index != 3 || m.Begin != 32768 {
		t.Errorf("piece header: %+v", m)
	}
	if !bytes.Equal(m.Block, block) {
		t.Error("piece payload corrupted")
	}
}

func TestBitfield(t *testing.T) {
	bits := []byte{0xde, 0xad, 0xbe, 0xef}
	m := roundTrip(t, func(e *Encoder) error { return e.Bitfield(bits) })
	if m.ID != MsgBitfield || !bytes.Equal(m.Raw, bits) {
		t.Errorf("bitfield: %+v", m)
	}
}

func TestPort(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Port(6881) })
	if m.ID != MsgPort || m.Port != 6881 {
		t.Errorf("port: %+v", m)
	}
}

func TestStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Bitfield([]byte{0x80}); err != nil {
		t.Fatal(err)
	}
	if err := e.Simple(MsgInterested); err != nil {
		t.Fatal(err)
	}
	if err := e.Simple(MsgUnchoke); err != nil {
		t.Fatal(err)
	}
	if err := e.Request(0, 0, 16384); err != nil {
		t.Fatal(err)
	}
	if err := e.Piece(0, 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := e.Have(0); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(&buf)
	want := []MsgID{MsgBitfield, MsgInterested, MsgUnchoke, MsgRequest, MsgPiece, MsgHave}
	var m Message
	for i, id := range want {
		if err := d.Decode(&m); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if m.ID != id {
			t.Fatalf("message %d: got %v, want %v", i, m.ID, id)
		}
	}
	if err := d.Decode(&m); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestDecoderBufferReuseInvalidation(t *testing.T) {
	// Raw/Block alias the decoder buffer; a second Decode overwrites them.
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Piece(0, 0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := e.Piece(0, 0, []byte("xecond")); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(&buf)
	var m Message
	if err := d.Decode(&m); err != nil {
		t.Fatal(err)
	}
	saved := m.Block // aliases buffer — intentionally observing reuse
	if err := d.Decode(&m); err != nil {
		t.Fatal(err)
	}
	if string(saved) == "first" {
		t.Skip("decoder grew its buffer; aliasing not observable")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated header", []byte{0, 0}},
		{"truncated body", []byte{0, 0, 0, 5, 4, 0}},
		{"oversized frame", []byte{0xff, 0xff, 0xff, 0xff}},
		{"unknown id", []byte{0, 0, 0, 1, 42}},
		{"have short", []byte{0, 0, 0, 3, 4, 0, 0}},
		{"choke with payload", []byte{0, 0, 0, 2, 0, 9}},
		{"request short", []byte{0, 0, 0, 5, 6, 0, 0, 0, 0}},
		{"piece short", []byte{0, 0, 0, 5, 7, 0, 0, 0, 0}},
		{"port short", []byte{0, 0, 0, 2, 9, 0}},
	}
	for _, c := range cases {
		var m Message
		if err := NewDecoder(bytes.NewReader(c.data)).Decode(&m); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestOversizedFrameError(t *testing.T) {
	data := []byte{0x00, 0x20, 0x00, 0x01} // 2 MiB + 1
	var m Message
	err := NewDecoder(bytes.NewReader(data)).Decode(&m)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := Handshake{}
	copy(h.InfoHash[:], bytes.Repeat([]byte{0xab}, 20))
	copy(h.PeerID[:], "M4-0-2--0123456789ab")
	if err := WriteHandshake(&buf, h); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HandshakeLen {
		t.Fatalf("handshake length = %d, want %d", buf.Len(), HandshakeLen)
	}
	got, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("handshake differs: %+v vs %+v", got, h)
	}
}

func TestHandshakeErrors(t *testing.T) {
	if _, err := ReadHandshake(bytes.NewReader([]byte("short"))); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("short handshake: %v", err)
	}
	bad := make([]byte, HandshakeLen)
	bad[0] = 19
	copy(bad[1:], "NotTorrent protocol")
	if _, err := ReadHandshake(bytes.NewReader(bad)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("foreign protocol: %v", err)
	}
}

func TestMsgIDString(t *testing.T) {
	if MsgPiece.String() != "piece" || MsgKeepAlive.String() != "keep_alive" {
		t.Fatal("String names wrong")
	}
	if MsgID(200).String() != "unknown(200)" {
		t.Fatalf("unknown rendering: %s", MsgID(200))
	}
}

// Property: request/cancel round-trip any (index, begin, length) triple.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(index, begin, length uint32) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Request(index, begin, length); err != nil {
			return false
		}
		var m Message
		if err := NewDecoder(&buf).Decode(&m); err != nil {
			return false
		}
		return m.ID == MsgRequest && m.Index == index && m.Begin == begin && m.Length == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary framed garbage.
func TestQuickDecodeNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(bytes.NewReader(data))
		var m Message
		for {
			if err := d.Decode(&m); err != nil {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodePiece(b *testing.B) {
	var buf bytes.Buffer
	block := make([]byte, 16384)
	e := NewEncoder(&buf)
	if err := e.Piece(1, 0, block); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	r := bytes.NewReader(frame)
	d := NewDecoder(r)
	var m Message
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if err := d.Decode(&m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeRequest(b *testing.B) {
	e := NewEncoder(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Request(uint32(i), 0, 16384); err != nil {
			b.Fatal(err)
		}
	}
}
