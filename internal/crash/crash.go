// Package crash defines named crash-schedule plans: the process-failure
// counterpart of internal/netem's network fault plans. A plan describes
// which fraction of a swarm's leechers are killed mid-transfer, when in
// the run the kills land, how long the victims stay down, and how much of
// their verified content survives the restart. The live backend realizes
// a plan as real SIGKILL-style teardowns plus restarts from a ResumeDir;
// the simulator maps the same plan onto swarm.Crashes so a crash-* suite
// cross-validates the two backends under the same failure regime.
//
// Like netem plans, every schedule derived from a plan is deterministic
// per run seed: victim choice, kill instants and downtimes come from a
// dedicated splitmix64-derived stream, so reruns of the same (plan, seed)
// kill the same peers at the same points in the transfer.
package crash

import (
	"fmt"
	"sort"
	"strings"
)

// Plan is one named crash schedule.
type Plan struct {
	// Name identifies the plan in scenario specs and reports.
	Name string

	// Frac is the fraction of eligible leechers that crash once during
	// the run. 0 disables the plan (Enabled reports false).
	Frac float64

	// StartFrac and EndFrac bound the kill window. Each victim draws one
	// uniform value in [StartFrac, EndFrac). The simulator reads the
	// draw as a fraction of the configured duration (a kill instant);
	// the live backend reads the same draw as a progress threshold —
	// the victim is SIGKILLed when its verified piece count crosses
	// that fraction of the torrent — because on real TCP wall-clock is
	// not a reliable proxy for "mid-transfer".
	StartFrac float64
	EndFrac   float64

	// DowntimeFrac is the mean downtime between kill and restart, as a
	// fraction of the run's deadline.
	DowntimeFrac float64

	// RetainFrac is the probability each verified piece survives the
	// crash. 1 models a clean resume file; lower values model partial
	// loss (amnesia), drawn per-piece from the engine RNG on the
	// simulator. The live store keeps every piece it verified — durable
	// retention is the point — so sub-1 retention is a sim-side model;
	// the live loss drill is CorruptResume.
	RetainFrac float64

	// CorruptResume, when set, corrupts one victim's on-disk resume
	// data before restart, exercising the re-hash-on-load path: the
	// corrupt pieces are dropped, counted as resume_hash_fail, and
	// re-downloaded.
	CorruptResume bool
}

// Enabled reports whether the plan actually crashes anyone.
func (p Plan) Enabled() bool { return p.Frac > 0 }

// plans is the built-in catalog.
var plans = map[string]Plan{
	"kill-restart": {
		Name:         "kill-restart",
		Frac:         0.34,
		StartFrac:    0.15,
		EndFrac:      0.45,
		DowntimeFrac: 0.08,
		RetainFrac:   1.0,
	},
	"kill-restart-amnesia": {
		Name:         "kill-restart-amnesia",
		Frac:         0.34,
		StartFrac:    0.15,
		EndFrac:      0.45,
		DowntimeFrac: 0.08,
		RetainFrac:   0.5,
	},
	"kill-corrupt": {
		Name:          "kill-corrupt",
		Frac:          0.34,
		StartFrac:     0.15,
		EndFrac:       0.45,
		DowntimeFrac:  0.08,
		RetainFrac:    1.0,
		CorruptResume: true,
	},
	"flashcrowd-kill": {
		Name:          "flashcrowd-kill",
		Frac:          0.5,
		StartFrac:     0.1,
		EndFrac:       0.4,
		DowntimeFrac:  0.06,
		RetainFrac:    1.0,
		CorruptResume: true,
	},
}

// PlanByName resolves a named plan. The empty name is the disabled plan.
func PlanByName(name string) (Plan, error) {
	if name == "" {
		return Plan{}, nil
	}
	p, ok := plans[name]
	if !ok {
		return Plan{}, fmt.Errorf("crash: unknown plan %q (have %s)", name, PlanNamesString())
	}
	return p, nil
}

// PlanNames returns the catalog's names, sorted.
func PlanNames() []string {
	out := make([]string, 0, len(plans))
	for name := range plans {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PlanNamesString renders the catalog for error messages and usage text.
func PlanNamesString() string { return strings.Join(PlanNames(), ", ") }
