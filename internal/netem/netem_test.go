package netem

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestPlanRegistry(t *testing.T) {
	if _, ok := PlanByName("no-such-plan"); ok {
		t.Fatal("unknown plan resolved")
	}
	for _, name := range PlanNames() {
		p, ok := PlanByName(name)
		if !ok || p.Name != name {
			t.Fatalf("plan %q: lookup %v, stored name %q", name, ok, p.Name)
		}
		if !p.Enabled() {
			t.Fatalf("registered plan %q is a no-op", name)
		}
	}
	// The acceptance plan must carry all three chaos ingredients: a
	// tracker blackout, 10% connection resets, and a failing seed.
	chaos, _ := PlanByName("chaos")
	if !chaos.Blackout() || chaos.ConnResetRate != 0.10 || chaos.SeedFailFrac <= 0 {
		t.Fatalf("chaos plan lost an acceptance ingredient: %+v", chaos)
	}
	if (Plan{}).Enabled() {
		t.Fatal("zero plan claims to be enabled")
	}
}

// TestInjectorDeterministic: the fault schedule is a pure function of
// (plan, seed) — same seed, same dial-fault decisions.
func TestInjectorDeterministic(t *testing.T) {
	plan, _ := PlanByName("flaky")
	draw := func(seed int64) []bool {
		in := NewInjector(plan, seed, time.Minute)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.DialFault() != nil
		}
		return out
	}
	a, b := draw(42), draw(42)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across same-seed injectors", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("flaky plan injected no dial failures in 64 draws")
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical fault schedules")
	}
}

// observer collects injector fault callbacks and lets tests wait for one.
type observer struct {
	mu    sync.Mutex
	kinds []string
	ch    chan string
}

func newObserver() *observer { return &observer{ch: make(chan string, 16)} }

func (o *observer) hook(kind string) {
	o.mu.Lock()
	o.kinds = append(o.kinds, kind)
	o.mu.Unlock()
	o.ch <- kind
}

func (o *observer) wait(t *testing.T, kind string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case k := <-o.ch:
			if k == kind {
				return
			}
		case <-deadline:
			t.Fatalf("no %q fault within 5s", kind)
		}
	}
}

func TestWrapConnDelay(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	in := NewInjector(Plan{Name: "t", DelayMs: 30}, 1, time.Minute)
	wrapped := in.WrapConn(a)
	defer wrapped.Close()

	go b.Write([]byte("hello"))
	buf := make([]byte, 16)
	start := time.Now()
	n, err := wrapped.Read(buf)
	if err != nil || n != 5 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("delayed read returned in %v, want >= ~30ms", el)
	}
}

func TestWrapConnStallThenClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	obs := newObserver()
	// ConnStallRate 1 guarantees the stall; a tiny window pulls the
	// exponential fault delay down to its 10ms floor quickly.
	in := NewInjector(Plan{Name: "t", ConnStallRate: 1, FaultDelayFrac: 0.01}, 1, 100*time.Millisecond)
	in.Observe = obs.hook
	wrapped := in.WrapConn(a)

	obs.wait(t, "injected_conn_stall")

	errCh := make(chan error, 1)
	go func() {
		_, err := wrapped.Write([]byte("x"))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("write on stalled conn returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	wrapped.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("stalled write succeeded after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled write not released by close")
	}
}

func TestWrapConnScheduledReset(t *testing.T) {
	a, b := net.Pipe()
	obs := newObserver()
	in := NewInjector(Plan{Name: "t", ConnResetRate: 1, FaultDelayFrac: 0.01}, 1, 100*time.Millisecond)
	in.Observe = obs.hook
	wrapped := in.WrapConn(a)
	defer wrapped.Close()

	// The peer blocks in Read until the scheduled reset closes the pipe.
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		errCh <- err
	}()
	obs.wait(t, "injected_conn_reset")
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("peer read survived the reset")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reset did not sever the peer's read")
	}
	// Close after reset must be an idempotent no-op.
	if err := wrapped.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestBlackoutHandler(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	start := time.Now()
	h := BlackoutHandler(inner, start, 0, time.Hour)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/announce", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("inside blackout window: got %d, want 503", rec.Code)
	}

	h = BlackoutHandler(inner, start.Add(-2*time.Hour), 0, time.Hour)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/announce", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("outside blackout window: got %d, want 200", rec.Code)
	}

	// An empty window is a pass-through, not a permanent blackout.
	if BlackoutHandler(inner, start, 0, 0).(http.HandlerFunc) == nil {
		t.Fatal("degenerate window did not return the inner handler")
	}
}
