// Package netem is the fault-injection and WAN-emulation layer for the
// live lab. A Plan (the "FaultPlan" scenarios declare) describes the
// network a swarm should experience — propagation delay with jitter,
// token-bucket bandwidth shaping, dial failures, scheduled connection
// resets and half-open stalls, a tracker blackout window, and a slow or
// failing initial seed. An Injector turns a Plan plus a seed into a
// deterministic fault schedule: which connections fault, and when, is a
// pure function of (plan, seed), so two runs with the same seed draw the
// same faults. Real TCP timing underneath is still real, which is why
// the strict same-seed fault-total contract is asserted on the sim twin
// (internal/swarm gains matching knobs) while live runs only promise a
// seed-derived schedule.
//
// Timing knobs that place faults inside a run (blackout window, fault
// delay, seed failure) are fractions of the run window rather than
// absolute times, so one named plan works both on the live lab's
// seconds-scale deadlines and the simulator's thousands-of-seconds runs.
package netem

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rarestfirst/internal/rate"
)

// Plan is a declarative fault plan. The zero value (and any plan with an
// empty Name) means "no emulation": every knob off, wrappers pass
// through. Rates are probabilities in [0,1]; *Frac fields are fractions
// of the run window.
type Plan struct {
	Name string

	// WAN emulation, applied to every wrapped (dialed) connection.
	DelayMs  float64 // one-way propagation delay per connection
	JitterMs float64 // uniform extra delay in [0, JitterMs), drawn once per connection
	RateBps  float64 // per-connection download shaping (token bucket); 0 = unshaped

	// Scheduled connection faults. A dialed connection is chosen for a
	// reset/stall with the given probability; the fault fires after an
	// exponentially distributed delay with mean FaultDelayFrac·window.
	DialFailRate   float64 // probability an outgoing dial fails outright
	ConnResetRate  float64 // probability a connection gets an abortive close (RST)
	ConnStallRate  float64 // probability a connection goes half-open (reads/writes hang)
	FaultDelayFrac float64 // mean fault delay as a fraction of the window (0 = 0.25)

	// Tracker blackout: announces return 503 inside
	// [BlackoutStartFrac, BlackoutEndFrac)·window.
	BlackoutStartFrac float64
	BlackoutEndFrac   float64

	// Initial-seed faults: the seed uploads at SeedSlowFactor of its
	// configured rate (0 = full speed), and departs at
	// SeedFailFrac·window (0 = never).
	SeedSlowFactor float64
	SeedFailFrac   float64
}

// Enabled reports whether the plan asks for any emulation at all.
func (p Plan) Enabled() bool { return p != Plan{} }

// Blackout reports whether the plan declares a tracker blackout window.
func (p Plan) Blackout() bool { return p.BlackoutEndFrac > p.BlackoutStartFrac }

// plans is the named registry scenarios refer to (Scenario.Faults / the
// experiments -faults flag). Keep README "Robustness" in sync.
var plans = map[string]Plan{
	// wan: clean but slow — transatlantic-ish delay and a 1 MiB/s pipe.
	"wan": {Name: "wan", DelayMs: 40, JitterMs: 10, RateBps: 1 << 20},
	// flaky: lossy access network — failed dials, resets and stalls, no
	// tracker trouble.
	"flaky": {Name: "flaky", DelayMs: 20, JitterMs: 5,
		DialFailRate: 0.15, ConnResetRate: 0.15, ConnStallRate: 0.05, FaultDelayFrac: 0.2},
	// blackout: the tracker alone fails for the middle of the run.
	"blackout": {Name: "blackout", BlackoutStartFrac: 0.2, BlackoutEndFrac: 0.5},
	// chaos: the acceptance plan — tracker blackout mid-flash-crowd, 10%
	// connection resets, and an initial seed that runs at half speed and
	// fails halfway through.
	"chaos": {Name: "chaos", DelayMs: 10, JitterMs: 5,
		DialFailRate: 0.1, ConnResetRate: 0.10, FaultDelayFrac: 0.25,
		BlackoutStartFrac: 0.25, BlackoutEndFrac: 0.55,
		SeedSlowFactor: 0.5, SeedFailFrac: 0.5},
}

// PlanByName looks up a registered fault plan.
func PlanByName(name string) (Plan, bool) {
	p, ok := plans[name]
	return p, ok
}

// PlanNames lists the registered plan names, sorted.
func PlanNames() []string {
	names := make([]string, 0, len(plans))
	for n := range plans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PlanNamesString is PlanNames joined for flag help text.
func PlanNamesString() string { return strings.Join(PlanNames(), ", ") }

// Injector realizes a Plan into concrete faults for one client. All
// randomness comes from its seeded RNG, so the fault schedule is a pure
// function of (plan, seed). One injector per client; not shareable.
type Injector struct {
	plan   Plan
	window time.Duration

	mu  sync.Mutex
	rng *rand.Rand

	// Observe, when set, is called with a fault kind each time the
	// injector fires one ("injected_conn_reset", ...). Set it before the
	// injector is used; it runs on timer goroutines.
	Observe func(kind string)
}

// NewInjector builds an injector for one client. window is the run's
// wall-clock budget (the live deadline), anchoring the plan's *Frac
// knobs.
func NewInjector(plan Plan, seed int64, window time.Duration) *Injector {
	if window <= 0 {
		window = time.Minute
	}
	return &Injector{plan: plan, window: window, rng: rand.New(rand.NewSource(seed))}
}

// Plan returns the plan this injector realizes.
func (in *Injector) Plan() Plan { return in.plan }

func (in *Injector) observe(kind string) {
	if in.Observe != nil {
		in.Observe(kind)
	}
}

// DialFault decides whether this outgoing dial fails. A non-nil error
// means the dial must not happen; the caller treats it like a refused
// connection (and retries on its own schedule).
func (in *Injector) DialFault() error {
	if in.plan.DialFailRate <= 0 {
		return nil
	}
	in.mu.Lock()
	fail := in.rng.Float64() < in.plan.DialFailRate
	in.mu.Unlock()
	if fail {
		in.observe("injected_dial_fail")
		return fmt.Errorf("netem: injected dial failure (plan %q)", in.plan.Name)
	}
	return nil
}

// faultDelayLocked draws when a scheduled connection fault fires:
// exponential with mean FaultDelayFrac·window, clamped to the window.
func (in *Injector) faultDelayLocked() time.Duration {
	frac := in.plan.FaultDelayFrac
	if frac <= 0 {
		frac = 0.25
	}
	d := time.Duration(in.rng.ExpFloat64() * frac * float64(in.window))
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	if d > in.window {
		d = in.window
	}
	return d
}

// WrapConn wraps a dialed connection with the plan's delay, shaping and
// scheduled faults. Wrap only the dialing side: every lab connection has
// exactly one dialer, so emulation applies exactly once per link.
func (in *Injector) WrapConn(nc net.Conn) net.Conn {
	p := in.plan
	c := &Conn{Conn: nc, in: in, closeCh: make(chan struct{}), epoch: time.Now()}

	in.mu.Lock()
	delay := time.Duration(p.DelayMs * float64(time.Millisecond))
	if p.JitterMs > 0 {
		delay += time.Duration(in.rng.Float64() * p.JitterMs * float64(time.Millisecond))
	}
	var resetAt, stallAt time.Duration
	if p.ConnResetRate > 0 && in.rng.Float64() < p.ConnResetRate {
		resetAt = in.faultDelayLocked()
	}
	if p.ConnStallRate > 0 && in.rng.Float64() < p.ConnStallRate {
		stallAt = in.faultDelayLocked()
	}
	in.mu.Unlock()

	c.delay = delay
	if p.RateBps > 0 {
		burst := p.RateBps
		if burst < 64<<10 {
			burst = 64 << 10
		}
		c.bucket = rate.NewBucket(p.RateBps, burst)
	}
	if resetAt > 0 {
		c.resetTimer = time.AfterFunc(resetAt, c.injectReset)
	}
	if stallAt > 0 {
		c.stallTimer = time.AfterFunc(stallAt, c.injectStall)
	}
	return c
}

// Conn is a net.Conn with emulated delay, shaping, and scheduled faults.
// Deadlines pass through to the underlying connection.
type Conn struct {
	net.Conn
	in    *Injector
	delay time.Duration
	epoch time.Time

	bmu    sync.Mutex
	bucket *rate.Bucket

	resetTimer, stallTimer *time.Timer

	mu      sync.Mutex
	stalled bool
	closed  bool
	closeCh chan struct{}
}

func (c *Conn) isStalled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalled
}

// pause sleeps for d, or until the connection closes.
func (c *Conn) pause(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closeCh:
	}
}

// Read delivers data late: propagation delay first, then the token
// bucket's verdict on n bytes. Delaying delivery rather than the wire
// keeps the wrapper protocol-agnostic — the peer's kernel buffers hide
// the difference.
func (c *Conn) Read(b []byte) (int, error) {
	if c.isStalled() {
		<-c.closeCh
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Read(b)
	if n > 0 {
		if c.delay > 0 {
			c.pause(c.delay)
		}
		if c.bucket != nil {
			c.bmu.Lock()
			wait := c.bucket.Take(time.Since(c.epoch).Seconds(), n)
			c.bmu.Unlock()
			if wait > 0 {
				c.pause(time.Duration(wait * float64(time.Second)))
			}
		}
	}
	return n, err
}

// Write blocks forever once the connection is half-open stalled; a Read
// already in flight on the underlying conn may still deliver one more
// chunk, which matches how a real half-open connection drains in-transit
// segments.
func (c *Conn) Write(b []byte) (int, error) {
	if c.isStalled() {
		<-c.closeCh
		return 0, net.ErrClosed
	}
	return c.Conn.Write(b)
}

// injectReset is the scheduled abortive close. SetLinger(0) makes the
// kernel send RST instead of FIN, so the peer sees a genuine
// "connection reset by peer", not a clean EOF.
func (c *Conn) injectReset() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.in.observe("injected_conn_reset")
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// injectStall flips the connection half-open: both directions hang until
// something closes it (the peer's request timeouts and snubbing are what
// should notice).
func (c *Conn) injectStall() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.stalled = true
	c.mu.Unlock()
	c.in.observe("injected_conn_stall")
}

// Close is idempotent and releases any emulation sleeps immediately.
func (c *Conn) Close() error {
	c.mu.Lock()
	wasClosed := c.closed
	if !wasClosed {
		c.closed = true
		close(c.closeCh)
	}
	c.mu.Unlock()
	if wasClosed {
		return nil
	}
	if c.resetTimer != nil {
		c.resetTimer.Stop()
	}
	if c.stallTimer != nil {
		c.stallTimer.Stop()
	}
	return c.Conn.Close()
}

// BlackoutHandler wraps an HTTP handler (the lab tracker) so requests
// inside [from, to) after start get 503. The body is deliberately not
// bencoded: clients must treat it as a failed announce and back off.
func BlackoutHandler(h http.Handler, start time.Time, from, to time.Duration) http.Handler {
	if to <= from {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if el := time.Since(start); el >= from && el < to {
			http.Error(w, "tracker blackout (netem)", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	})
}
