// Package bitfield implements the compact piece-possession bitfield used
// throughout the BitTorrent protocol (BEP 3).
//
// A Bitfield tracks which pieces of a torrent a peer has. The wire format
// is big-endian within each byte: bit 7 of byte 0 is piece 0. Spare bits at
// the end of the last byte must be zero; decoders reject bitfields with
// spare bits set, as the mainline client does.
package bitfield

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrSpareBits is returned by FromWire when a wire-format bitfield has a
// nonzero bit beyond the last piece.
var ErrSpareBits = errors.New("bitfield: spare bits set in wire encoding")

// ErrLength is returned by FromWire when the byte length does not match the
// expected number of pieces.
var ErrLength = errors.New("bitfield: wire encoding has wrong length")

// Bitfield is a fixed-size set of piece indices. The zero value is unusable;
// construct with New or FromWire.
type Bitfield struct {
	words []uint64
	n     int // number of valid bits
	count int // cached population count
}

// New returns an empty bitfield able to hold n pieces.
func New(n int) *Bitfield {
	if n < 0 {
		panic("bitfield: negative size")
	}
	return &Bitfield{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of pieces the bitfield covers.
func (b *Bitfield) Len() int { return b.n }

// Count returns the number of pieces currently set.
func (b *Bitfield) Count() int { return b.count }

// Complete reports whether every piece is set.
func (b *Bitfield) Complete() bool { return b.count == b.n }

// Empty reports whether no piece is set.
func (b *Bitfield) Empty() bool { return b.count == 0 }

// Has reports whether piece i is set. It panics if i is out of range.
func (b *Bitfield) Has(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<(63-uint(i)&63)) != 0
}

// Set marks piece i as present. It reports whether the bit changed.
func (b *Bitfield) Set(i int) bool {
	b.check(i)
	w, m := i>>6, uint64(1)<<(63-uint(i)&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// Clear unmarks piece i. It reports whether the bit changed.
func (b *Bitfield) Clear(i int) bool {
	b.check(i)
	w, m := i>>6, uint64(1)<<(63-uint(i)&63)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.count--
	return true
}

// SetAll marks every piece as present.
func (b *Bitfield) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.maskTail()
	b.count = b.n
}

// Reset clears every piece.
func (b *Bitfield) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}

// Copy returns an independent copy of b.
func (b *Bitfield) Copy() *Bitfield {
	c := &Bitfield{words: make([]uint64, len(b.words)), n: b.n, count: b.count}
	copy(c.words, b.words)
	return c
}

// NumWords returns the number of 64-bit words backing the bitfield.
func (b *Bitfield) NumWords() int { return len(b.words) }

// WordAt returns backing word i. Piece 64*i is the most significant bit;
// bits beyond Len() in the last word are always zero (every mutator
// maintains the tail invariant), so word-parallel combinations of
// same-length bitfields need no extra masking.
func (b *Bitfield) WordAt(i int) uint64 { return b.words[i] }

// Range calls fn for each set piece in ascending order until fn returns
// false or pieces are exhausted.
func (b *Bitfield) Range(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			lz := bits.LeadingZeros64(w)
			i := wi<<6 + lz
			if i >= b.n {
				return
			}
			if !fn(i) {
				return
			}
			w &^= 1 << (63 - uint(lz))
		}
	}
}

// Missing calls fn for each unset piece in ascending order until fn
// returns false or pieces are exhausted. Like Range it walks whole words,
// skipping runs of owned pieces 64 at a time; the tail-word complement
// bits beyond Len() sort after every valid piece, so the range check stops
// the walk before they surface.
func (b *Bitfield) Missing(fn func(i int) bool) {
	for wi, w := range b.words {
		w = ^w
		for w != 0 {
			lz := bits.LeadingZeros64(w)
			i := wi<<6 + lz
			if i >= b.n {
				return
			}
			if !fn(i) {
				return
			}
			w &^= 1 << (63 - uint(lz))
		}
	}
}

// AnyMissingIn reports whether other has at least one piece that b lacks.
// This is exactly the BitTorrent notion of "b is interested in other".
// The two bitfields must have the same length.
func (b *Bitfield) AnyMissingIn(other *Bitfield) bool {
	if other.n != b.n {
		panic("bitfield: length mismatch")
	}
	for i, w := range b.words {
		if other.words[i]&^w != 0 {
			return true
		}
	}
	return false
}

// CountMissingIn returns the number of pieces other has that b lacks.
func (b *Bitfield) CountMissingIn(other *Bitfield) int {
	if other.n != b.n {
		panic("bitfield: length mismatch")
	}
	total := 0
	for i, w := range b.words {
		total += bits.OnesCount64(other.words[i] &^ w)
	}
	return total
}

// Union sets every piece in b that is set in other.
func (b *Bitfield) Union(other *Bitfield) {
	if other.n != b.n {
		panic("bitfield: length mismatch")
	}
	total := 0
	for i := range b.words {
		b.words[i] |= other.words[i]
		total += bits.OnesCount64(b.words[i])
	}
	b.count = total
}

// ToWire encodes b in the BEP 3 wire format: ceil(n/8) bytes, piece 0 at the
// most significant bit of byte 0.
func (b *Bitfield) ToWire() []byte {
	out := make([]byte, (b.n+7)/8)
	for i := range out {
		shift := 56 - 8*(uint(i)&7)
		out[i] = byte(b.words[i>>3] >> shift)
	}
	return out
}

// FromWire decodes a BEP 3 wire-format bitfield for n pieces. It returns
// ErrLength if len(p) is wrong and ErrSpareBits if trailing spare bits are
// nonzero.
func FromWire(p []byte, n int) (*Bitfield, error) {
	if len(p) != (n+7)/8 {
		return nil, fmt.Errorf("%w: got %d bytes, want %d for %d pieces", ErrLength, len(p), (n+7)/8, n)
	}
	b := New(n)
	for i, by := range p {
		shift := 56 - 8*(uint(i)&7)
		b.words[i>>3] |= uint64(by) << shift
	}
	// Verify spare bits before committing.
	tailBits := n & 63
	if tailBits != 0 {
		last := b.words[len(b.words)-1]
		if last<<uint(tailBits) != 0 {
			return nil, ErrSpareBits
		}
	}
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	b.count = total
	return b, nil
}

// String renders the bitfield as a compact summary, e.g. "37/863".
func (b *Bitfield) String() string {
	return fmt.Sprintf("%d/%d", b.count, b.n)
}

func (b *Bitfield) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitfield: index %d out of range [0,%d)", i, b.n))
	}
}

func (b *Bitfield) maskTail() {
	tailBits := b.n & 63
	if tailBits != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= ^uint64(0) << (64 - uint(tailBits))
	}
}
