package bitfield

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(100)
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	if b.Count() != 0 || !b.Empty() || b.Complete() {
		t.Fatalf("new bitfield not empty: count=%d", b.Count())
	}
	for i := 0; i < 100; i++ {
		if b.Has(i) {
			t.Fatalf("Has(%d) = true on empty bitfield", i)
		}
	}
}

func TestNewZeroLength(t *testing.T) {
	b := New(0)
	if !b.Complete() {
		t.Fatal("zero-length bitfield should be trivially complete")
	}
	if got := b.ToWire(); len(got) != 0 {
		t.Fatalf("ToWire on zero-length = %v, want empty", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetClearCount(t *testing.T) {
	b := New(130) // crosses a word boundary and has a partial tail
	if !b.Set(0) || !b.Set(64) || !b.Set(129) {
		t.Fatal("Set on fresh bits returned false")
	}
	if b.Set(64) {
		t.Fatal("double Set returned true")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	if !b.Clear(64) {
		t.Fatal("Clear of set bit returned false")
	}
	if b.Clear(64) {
		t.Fatal("double Clear returned true")
	}
	if b.Count() != 2 {
		t.Fatalf("Count after clear = %d, want 2", b.Count())
	}
	if !b.Has(0) || b.Has(64) || !b.Has(129) {
		t.Fatal("Has disagrees with Set/Clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(8)
	for _, i := range []int{-1, 8, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Has(%d) did not panic", i)
				}
			}()
			b.Has(i)
		}()
	}
}

func TestSetAllResetComplete(t *testing.T) {
	b := New(77)
	b.SetAll()
	if !b.Complete() || b.Count() != 77 {
		t.Fatalf("SetAll: count=%d complete=%v", b.Count(), b.Complete())
	}
	for i := 0; i < 77; i++ {
		if !b.Has(i) {
			t.Fatalf("Has(%d) false after SetAll", i)
		}
	}
	b.Reset()
	if !b.Empty() {
		t.Fatalf("Reset left count=%d", b.Count())
	}
}

func TestRangeOrderAndEarlyStop(t *testing.T) {
	b := New(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.Range(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Range order %v, want %v", got, want)
		}
	}
	var first []int
	b.Range(func(i int) bool { first = append(first, i); return len(first) < 2 })
	if len(first) != 2 || first[0] != 3 || first[1] != 64 {
		t.Fatalf("early stop visited %v", first)
	}
}

func TestMissing(t *testing.T) {
	b := New(6)
	b.Set(1)
	b.Set(4)
	var got []int
	b.Missing(func(i int) bool { got = append(got, i); return true })
	want := []int{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Missing = %v, want %v", got, want)
		}
	}
}

func TestInterestSemantics(t *testing.T) {
	// AnyMissingIn implements "A is interested in B": B has a piece A lacks.
	a, b := New(10), New(10)
	b.Set(3)
	if !a.AnyMissingIn(b) {
		t.Fatal("A should be interested in B")
	}
	if b.AnyMissingIn(a) {
		t.Fatal("B should not be interested in empty A")
	}
	a.Set(3)
	if a.AnyMissingIn(b) {
		t.Fatal("A has everything B has; not interested")
	}
	if got := a.CountMissingIn(b); got != 0 {
		t.Fatalf("CountMissingIn = %d, want 0", got)
	}
	b.Set(9)
	b.Set(0)
	if got := a.CountMissingIn(b); got != 2 {
		t.Fatalf("CountMissingIn = %d, want 2", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AnyMissingIn with mismatched lengths did not panic")
		}
	}()
	New(10).AnyMissingIn(New(11))
}

func TestUnion(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(1)
	a.Set(69)
	b.Set(2)
	b.Set(69)
	a.Union(b)
	if a.Count() != 3 || !a.Has(1) || !a.Has(2) || !a.Has(69) {
		t.Fatalf("Union wrong: %v", a)
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 100, 863, 1393} {
		b := New(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		w := b.ToWire()
		if len(w) != (n+7)/8 {
			t.Fatalf("n=%d: wire len %d", n, len(w))
		}
		back, err := FromWire(w, n)
		if err != nil {
			t.Fatalf("n=%d: FromWire: %v", n, err)
		}
		if back.Count() != b.Count() {
			t.Fatalf("n=%d: count %d != %d", n, back.Count(), b.Count())
		}
		for i := 0; i < n; i++ {
			if back.Has(i) != b.Has(i) {
				t.Fatalf("n=%d: bit %d differs after round trip", n, i)
			}
		}
	}
}

func TestWireBitOrder(t *testing.T) {
	// Piece 0 must be the MSB of byte 0 (BEP 3).
	b := New(9)
	b.Set(0)
	b.Set(8)
	w := b.ToWire()
	if w[0] != 0x80 || w[1] != 0x80 {
		t.Fatalf("wire = %x, want 8080", w)
	}
}

func TestFromWireErrors(t *testing.T) {
	if _, err := FromWire([]byte{0xff}, 4); err == nil {
		t.Fatal("spare bits accepted")
	}
	if _, err := FromWire([]byte{0xf0}, 4); err != nil {
		t.Fatalf("exact bitfield rejected: %v", err)
	}
	if _, err := FromWire([]byte{0, 0}, 4); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := FromWire(nil, 0); err != nil {
		t.Fatalf("empty bitfield rejected: %v", err)
	}
}

func TestCopyIndependence(t *testing.T) {
	a := New(20)
	a.Set(5)
	c := a.Copy()
	c.Set(6)
	a.Clear(5)
	if !c.Has(5) || !c.Has(6) || a.Has(6) {
		t.Fatal("Copy shares storage with original")
	}
}

func TestString(t *testing.T) {
	b := New(863)
	b.Set(0)
	b.Set(1)
	if got := b.String(); got != "2/863" {
		t.Fatalf("String = %q", got)
	}
}

// Property: count always equals the number of distinct set indices, and
// wire round-trips preserve the set exactly.
func TestQuickCountAndRoundTrip(t *testing.T) {
	f := func(idx []uint16, nSeed uint16) bool {
		n := int(nSeed)%2000 + 1
		b := New(n)
		seen := map[int]bool{}
		for _, raw := range idx {
			i := int(raw) % n
			b.Set(i)
			seen[i] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		back, err := FromWire(b.ToWire(), n)
		if err != nil {
			return false
		}
		ok := true
		back.Range(func(i int) bool {
			if !seen[i] {
				ok = false
				return false
			}
			delete(seen, i)
			return true
		})
		return ok && len(seen) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interest is monotone — adding a piece to B never removes A's
// interest in B unless A already has it.
func TestQuickInterestMonotone(t *testing.T) {
	f := func(aBits, bBits []uint16, nSeed uint16, extra uint16) bool {
		n := int(nSeed)%500 + 2
		a, b := New(n), New(n)
		for _, i := range aBits {
			a.Set(int(i) % n)
		}
		for _, i := range bBits {
			b.Set(int(i) % n)
		}
		before := a.AnyMissingIn(b)
		b.Set(int(extra) % n)
		after := a.AnyMissingIn(b)
		if before && !after {
			return false
		}
		// CountMissingIn is consistent with AnyMissingIn.
		return (a.CountMissingIn(b) > 0) == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetHas(b *testing.B) {
	bf := New(1393)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bf.Set(i % 1393)
		bf.Has((i * 7) % 1393)
	}
}

func BenchmarkAnyMissingIn(b *testing.B) {
	x, y := New(1393), New(1393)
	for i := 0; i < 1393; i += 2 {
		x.Set(i)
	}
	for i := 1; i < 1393; i += 2 {
		y.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.AnyMissingIn(y) {
			b.Fatal("expected interest")
		}
	}
}

// --- PR 2: word-level iterator equivalence ---

// refRange/refMissing are the per-bit reference
// implementations the word-parallel iterators must match exactly.
func refRange(b *Bitfield, fn func(i int) bool) {
	for i := 0; i < b.Len(); i++ {
		if b.Has(i) && !fn(i) {
			return
		}
	}
}

func refMissing(b *Bitfield, fn func(i int) bool) {
	for i := 0; i < b.Len(); i++ {
		if !b.Has(i) && !fn(i) {
			return
		}
	}
}

// randomBitfield fills a fresh bitfield of size n from rng with density p.
func randomBitfield(rng *rand.Rand, n int, p float64) *Bitfield {
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i)
		}
	}
	return b
}

func collect(iter func(fn func(i int) bool)) []int {
	var out []int
	iter(func(i int) bool { out = append(out, i); return true })
	return out
}

func TestWordIteratorsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Sizes chosen to hit empty, single-word, exact-word and tail-word
	// boundaries.
	sizes := []int{0, 1, 2, 63, 64, 65, 127, 128, 129, 200, 256, 1000}
	densities := []float64{0, 0.05, 0.5, 0.95, 1}
	for _, n := range sizes {
		for _, p := range densities {
			b := randomBitfield(rng, n, p)
			if got, want := collect(b.Range), collect(func(fn func(int) bool) { refRange(b, fn) }); !equalInts(got, want) {
				t.Fatalf("Range mismatch n=%d p=%.2f: got %v want %v", n, p, got, want)
			}
			if got, want := collect(b.Missing), collect(func(fn func(int) bool) { refMissing(b, fn) }); !equalInts(got, want) {
				t.Fatalf("Missing mismatch n=%d p=%.2f: got %v want %v", n, p, got, want)
			}
		}
	}
}

func TestMissingEarlyStop(t *testing.T) {
	b := New(130)
	b.Set(64)
	var seen []int
	b.Missing(func(i int) bool { seen = append(seen, i); return len(seen) < 3 })
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("seen = %v", seen)
	}
}

// TestMissingTailWord pins the tail-word edge case: the complement of the
// last word has bits beyond Len() set, and none of them may surface.
func TestMissingTailWord(t *testing.T) {
	for _, n := range []int{1, 63, 65, 127} {
		b := New(n)
		b.SetAll()
		b.Clear(n - 1)
		got := collect(b.Missing)
		if len(got) != 1 || got[0] != n-1 {
			t.Fatalf("n=%d: Missing = %v, want [%d]", n, got, n-1)
		}
	}
}

func TestWordAtTailInvariant(t *testing.T) {
	b := New(70)
	b.SetAll()
	if w := b.WordAt(1); w != uint64(0x3f)<<58 {
		t.Fatalf("tail word = %#x, spare bits must stay zero", w)
	}
	if b.NumWords() != 2 {
		t.Fatalf("NumWords = %d", b.NumWords())
	}
}

func TestQuickWordIterators(t *testing.T) {
	f := func(raw []byte, nRaw uint16) bool {
		n := int(nRaw) % 600
		b := New(n)
		for _, v := range raw {
			if n > 0 {
				b.Set(int(v) % n)
			}
		}
		if !equalInts(collect(b.Missing), collect(func(fn func(int) bool) { refMissing(b, fn) })) {
			return false
		}
		return equalInts(collect(b.Range), collect(func(fn func(int) bool) { refRange(b, fn) }))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func FuzzWordIterators(f *testing.F) {
	f.Add([]byte{0x00}, uint16(1))
	f.Add([]byte{0xff, 0x01}, uint16(65))
	f.Add([]byte{0xaa, 0x55, 0x00, 0xf0}, uint16(127))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint16) {
		n := int(nRaw) % 1024
		b := New(n)
		for _, v := range raw {
			if n > 0 {
				b.Set(int(v) % n)
			}
		}
		if got, want := collect(b.Missing), collect(func(fn func(int) bool) { refMissing(b, fn) }); !equalInts(got, want) {
			t.Fatalf("Missing mismatch n=%d: got %v want %v", n, got, want)
		}
		if got, want := collect(b.Range), collect(func(fn func(int) bool) { refRange(b, fn) }); !equalInts(got, want) {
			t.Fatalf("Range mismatch n=%d: got %v want %v", n, got, want)
		}
	})
}
