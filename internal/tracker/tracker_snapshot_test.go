package tracker

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCloseDrainsAndRefusesAnnounces(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "drain-hash-123456___")

	announceVia(t, url, ih, pid(1), 7001, 10, nil)
	srv.Close()

	// Post-drain announces are refused with a bencoded failure, and the
	// refused peer is never registered.
	_, err := Announce(AnnounceRequest{URL: url, InfoHash: ih, PeerID: pid(2), Port: 7002, Left: 10})
	if err == nil || !strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("drained tracker accepted announce: %v", err)
	}
	if _, inc := srv.Count(ih); inc != 1 {
		t.Fatalf("incomplete = %d after drained announce, want 1", inc)
	}
	// Close is idempotent.
	srv.Close()
}

func TestCloseWaitsForInflightAnnounces(t *testing.T) {
	// Hold an announce open past Close by stalling the server's clock
	// callback (the one hook inside the handler), and check Close blocks
	// until the announce finishes registering.
	srv := NewServer(900)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.now = func() time.Time {
		once.Do(func() {
			close(entered)
			<-release
		})
		return time.Now()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "inflight-hash-1234__")

	annDone := make(chan struct{})
	go func() {
		defer close(annDone)
		Announce(AnnounceRequest{URL: url, InfoHash: ih, PeerID: pid(1), Port: 7001, Left: 10})
	}()
	<-entered

	closeDone := make(chan struct{})
	go func() {
		srv.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned with an announce still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close never returned after the in-flight announce finished")
	}
	<-annDone
	// The mid-flight registration made it into the settled table.
	if _, inc := srv.Count(ih); inc != 1 {
		t.Fatalf("in-flight announce lost: incomplete = %d", inc)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "snap-hash-1234567___")

	announceVia(t, url, ih, pid(1), 7001, 0, nil)  // seed
	announceVia(t, url, ih, pid(2), 7002, 10, nil) // leecher
	srv.Close()
	snap := srv.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}

	// A bounced tracker restored from the snapshot serves the same peer
	// list immediately.
	srv2 := NewServer(900)
	if n := srv2.Restore(snap); n != 2 {
		t.Fatalf("restored %d entries, want 2", n)
	}
	c, inc := srv2.Count(ih)
	if c != 1 || inc != 1 {
		t.Fatalf("restored counts: %d seeds %d leechers", c, inc)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	r := announceVia(t, ts2.URL+"/announce", ih, pid(3), 7003, 10, nil)
	if len(r.Peers) != 2 {
		t.Fatalf("restored tracker returned %d peers, want 2", len(r.Peers))
	}
}

func TestRestoreSkipsStaleAndInvalidEntries(t *testing.T) {
	srv := NewServer(900)
	srv.SetTTL(10 * time.Second)
	clock := time.Now()
	srv.now = func() time.Time { return clock }

	var ih [20]byte
	copy(ih[:], "stale-hash-123456___")
	snap := []PeerSnapshot{
		{InfoHash: ih, PeerID: pid(1), IP: "10.0.0.1", Port: 7001, Left: 10, LastSeen: clock.Add(-time.Second)},
		// TTL-stale: dropped, never handed out as a dead peer.
		{InfoHash: ih, PeerID: pid(2), IP: "10.0.0.2", Port: 7002, Left: 10, LastSeen: clock.Add(-time.Minute)},
		// Unparseable address and invalid port: dropped.
		{InfoHash: ih, PeerID: pid(3), IP: "not-an-ip", Port: 7003, Left: 10, LastSeen: clock},
		{InfoHash: ih, PeerID: pid(4), IP: "10.0.0.4", Port: 0, Left: 10, LastSeen: clock},
	}
	if n := srv.Restore(snap); n != 1 {
		t.Fatalf("restored %d entries, want 1", n)
	}
	if _, inc := srv.Count(ih); inc != 1 {
		t.Fatalf("incomplete = %d, want 1", inc)
	}
}
