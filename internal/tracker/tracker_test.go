package tracker

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rarestfirst/internal/obs"
)

func announceVia(t *testing.T, url string, ih, pid [20]byte, port int, left int64, extra func(*AnnounceRequest)) *AnnounceResponse {
	t.Helper()
	req := AnnounceRequest{URL: url, InfoHash: ih, PeerID: pid, Port: port, Left: left}
	if extra != nil {
		extra(&req)
	}
	resp, err := Announce(req)
	if err != nil {
		t.Fatalf("announce: %v", err)
	}
	return resp
}

func pid(b byte) [20]byte {
	var p [20]byte
	for i := range p {
		p[i] = b
	}
	return p
}

func TestAnnounceRegistersAndReturnsPeers(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "demo-infohash-12345_")

	// First peer sees an empty swarm.
	r1 := announceVia(t, url, ih, pid(1), 7001, 1000, nil)
	if len(r1.Peers) != 0 {
		t.Fatalf("first peer saw %d peers", len(r1.Peers))
	}
	if r1.Interval != 900 {
		t.Fatalf("interval = %d", r1.Interval)
	}
	// Second peer sees the first.
	r2 := announceVia(t, url, ih, pid(2), 7002, 0, nil)
	if len(r2.Peers) != 1 || r2.Peers[0].Port != 7001 {
		t.Fatalf("second peer saw %+v", r2.Peers)
	}
	// Seed/leecher counts include the requester (it registered first).
	if r2.Complete != 1 || r2.Incomplete != 1 {
		t.Fatalf("counts: %d/%d, want 1/1", r2.Complete, r2.Incomplete)
	}
	c, i := srv.Count(ih)
	if c != 1 || i != 1 {
		t.Fatalf("server counts: %d seeds %d leechers", c, i)
	}
}

func TestAnnounceCompactFormat(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "compact-hash-543210_")
	announceVia(t, url, ih, pid(1), 7001, 10, nil)
	r := announceVia(t, url, ih, pid(2), 7002, 10, func(a *AnnounceRequest) { a.Compact = true })
	if len(r.Peers) != 1 {
		t.Fatalf("compact peers: %+v", r.Peers)
	}
	if r.Peers[0].Port != 7001 || r.Peers[0].IP.To4() == nil {
		t.Fatalf("compact peer decoded wrong: %+v", r.Peers[0])
	}
}

func TestAnnounceStoppedRemoves(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "stopped-hash-12345__")
	announceVia(t, url, ih, pid(1), 7001, 10, nil)
	announceVia(t, url, ih, pid(1), 7001, 10, func(a *AnnounceRequest) { a.Event = "stopped" })
	r := announceVia(t, url, ih, pid(2), 7002, 10, nil)
	if len(r.Peers) != 0 {
		t.Fatalf("stopped peer still returned: %+v", r.Peers)
	}
}

func TestAnnounceNumWantLimits(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "numwant-hash-12345__")
	for i := 0; i < 10; i++ {
		announceVia(t, url, ih, pid(byte(i)), 7100+i, 10, nil)
	}
	r := announceVia(t, url, ih, pid(99), 7999, 10, func(a *AnnounceRequest) { a.NumWant = 3 })
	if len(r.Peers) != 3 {
		t.Fatalf("numwant=3 returned %d peers", len(r.Peers))
	}
}

func TestAnnounceCapsNumWant(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "numwant-cap-12345___")
	for i := 0; i < MaxNumWant+50; i++ {
		announceVia(t, url, ih, pid(byte(i%250)), 10000+i, 10, nil)
	}
	// An absurd numwant is clamped to MaxNumWant, not honored.
	r := announceVia(t, url, ih, pid(255), 9999, 10, func(a *AnnounceRequest) { a.NumWant = 1 << 20 })
	if len(r.Peers) != MaxNumWant {
		t.Fatalf("numwant=1M returned %d peers, want cap %d", len(r.Peers), MaxNumWant)
	}
}

func TestAnnounceRejectsUnroutableIP(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var ih [20]byte
	copy(ih[:], "01234567890123456789")
	req := func(ip string) AnnounceRequest {
		return AnnounceRequest{URL: ts.URL + "/announce?ip=" + ip, InfoHash: ih, PeerID: pid(1), Port: 7001, Left: 10}
	}
	for _, ip := range []string{"0.0.0.0", "::", "224.0.0.1", "ff02::1", "255.255.255.255"} {
		_, err := Announce(req(ip))
		if err == nil || !strings.Contains(err.Error(), "unroutable ip") {
			t.Errorf("ip=%s accepted (err=%v)", ip, err)
		}
	}
	if _, inc := srv.Count(ih); inc != 0 {
		t.Fatalf("unroutable announce registered a peer: incomplete=%d", inc)
	}
	// A routable explicit ip still works.
	if _, err := Announce(req("10.1.2.3")); err != nil {
		t.Fatalf("routable explicit ip rejected: %v", err)
	}
	if _, inc := srv.Count(ih); inc != 1 {
		t.Fatalf("routable announce not registered")
	}
}

func TestAnnounceRejectsGarbage(t *testing.T) {
	srv := NewServer(900)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, q := range []string{
		"",                 // no info_hash
		"?info_hash=short", // bad hash
		"?info_hash=01234567890123456789&peer_id=short",                           // bad peer id
		"?info_hash=01234567890123456789&peer_id=01234567890123456789&port=0",     // bad port
		"?info_hash=01234567890123456789&peer_id=01234567890123456789&port=99999", // bad port
	} {
		_, err := Announce(AnnounceRequest{URL: ts.URL + "/announce" + q})
		if err == nil {
			t.Errorf("announce %q accepted", q)
		}
	}
}

func TestPruneDropsStalePeers(t *testing.T) {
	srv := NewServer(1)
	clock := time.Now()
	srv.now = func() time.Time { return clock }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "prune-hash-123456___")
	announceVia(t, url, ih, pid(1), 7001, 10, nil)
	clock = clock.Add(10 * time.Second) // > 2 * interval
	r := announceVia(t, url, ih, pid(2), 7002, 10, nil)
	if len(r.Peers) != 0 {
		t.Fatalf("stale peer survived prune: %+v", r.Peers)
	}
}

func TestSetTTLAgesOutDeadClient(t *testing.T) {
	// A crashed client never sends event=stopped; the TTL must age it out
	// of peer lists on its own.
	srv := NewServer(900)
	srv.SetTTL(5 * time.Second)
	clock := time.Now()
	srv.now = func() time.Time { return clock }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "ttl-hash-1234567____")

	announceVia(t, url, ih, pid(1), 7001, 10, nil) // the soon-to-die client
	clock = clock.Add(3 * time.Second)             // inside the TTL: still listed
	r := announceVia(t, url, ih, pid(2), 7002, 10, nil)
	if len(r.Peers) != 1 {
		t.Fatalf("live peer missing before TTL: %+v", r.Peers)
	}
	clock = clock.Add(3 * time.Second) // 6s since pid(1)'s last announce: expired
	r = announceVia(t, url, ih, pid(3), 7003, 10, nil)
	for _, p := range r.Peers {
		if p.Port == 7001 {
			t.Fatalf("dead client survived TTL: %+v", r.Peers)
		}
	}
	if _, inc := srv.Count(ih); inc != 2 {
		t.Fatalf("incomplete = %d after expiry, want 2 (pid 2 and 3)", inc)
	}

	// Non-positive TTLs are ignored rather than disabling expiry.
	srv.SetTTL(0)
	if srv.ttl != 5*time.Second {
		t.Fatalf("SetTTL(0) changed ttl to %v", srv.ttl)
	}
}

func TestParseAnnounceResponseErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("not bencode"),
		[]byte("le"),
		[]byte("d14:failure reason4:nopee"),
		[]byte("d5:peers7:1234567e"),              // compact not multiple of 6
		[]byte("d5:peersli1eee"),                  // peer entry not a dict
		[]byte("d5:peersld2:ip3:bad4:porti1eeee"), // unparseable ip
	}
	for _, b := range cases {
		if _, err := ParseAnnounceResponse(b); err == nil {
			t.Errorf("ParseAnnounceResponse(%q) accepted", b)
		}
	}
	// Missing peers key is fine.
	if r, err := ParseAnnounceResponse([]byte("d8:intervali60ee")); err != nil || r.Interval != 60 {
		t.Fatalf("minimal response: %v %+v", err, r)
	}
}

func TestMetricsPerInfohash(t *testing.T) {
	srv := NewServer(900)
	reg := obs.NewRegistry()
	srv.SetMetrics(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "demo-infohash-12345_")

	announceVia(t, url, ih, pid(1), 7001, 1000, nil)
	announceVia(t, url, ih, pid(2), 7002, 0, nil)

	if v, ok := reg.Value("tracker_announces_total"); !ok || v != 2 {
		t.Errorf("tracker_announces_total = %v, %v; want 2", v, ok)
	}
	label := fmt.Sprintf("%x", ih[:4])
	if v, ok := reg.Value(obs.SeriesName("tracker_announces_total", "info_hash", label)); !ok || v != 2 {
		t.Errorf("per-infohash announces = %v, %v; want 2", v, ok)
	}
	if v, ok := reg.Value(obs.SeriesName("tracker_peers", "info_hash", label)); !ok || v != 2 {
		t.Errorf("per-infohash peers gauge = %v, %v; want 2", v, ok)
	}
	// Two announces inside the first (clamped 1 s) window: rate = 2/s.
	if v, ok := reg.Value(obs.SeriesName("tracker_announce_rate", "info_hash", label)); !ok || v != 2 {
		t.Errorf("per-infohash announce rate = %v, %v; want 2", v, ok)
	}

	// /stats surfaces the live rate alongside the swarm counts.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "announces/s") || !strings.Contains(string(body), "2 announces total") {
		t.Errorf("/stats missing announce metrics:\n%s", body)
	}

	// /metrics (the registry handler) exports the same series.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `tracker_announces_total{info_hash="`+label+`"} 2`) {
		t.Errorf("prometheus export missing labeled series:\n%s", buf.String())
	}
}

func TestMetricsRateWindowRebases(t *testing.T) {
	srv := NewServer(900)
	reg := obs.NewRegistry()
	srv.SetMetrics(reg)
	now := time.Unix(1000, 0)
	srv.now = func() time.Time { return now }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/announce"
	var ih [20]byte
	copy(ih[:], "window-infohash-123_")

	announceVia(t, url, ih, pid(1), 7001, 1000, nil)
	now = now.Add(rateWindow) // past the window: next announce re-bases it
	announceVia(t, url, ih, pid(2), 7002, 0, nil)
	now = now.Add(2 * time.Second)
	announceVia(t, url, ih, pid(1), 7001, 1000, nil)

	label := fmt.Sprintf("%x", ih[:4])
	// Fresh window holds one announce over 2 s clamped elapsed: 0.5/s.
	if v, ok := reg.Value(obs.SeriesName("tracker_announce_rate", "info_hash", label)); !ok || v != 0.5 {
		t.Errorf("post-rebase rate = %v, %v; want 0.5", v, ok)
	}
	if v, _ := reg.Value(obs.SeriesName("tracker_announces_total", "info_hash", label)); v != 3 {
		t.Errorf("cumulative announces = %v; want 3 (window re-base must not reset the counter)", v)
	}
}
