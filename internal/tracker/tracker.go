// Package tracker implements a real BEP 3 HTTP tracker: the /announce
// endpoint speaking bencode over net/http, with both the dictionary peer
// list and the BEP 23 compact format. It is the only centralized component
// of BitTorrent and is "not involved in the actual distribution of the
// file" (§II-B); the real client in internal/client announces to it.
package tracker

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"rarestfirst/internal/bencode"
	"rarestfirst/internal/obs"
)

// DefaultNumWant is the number of peers returned when the client does not
// ask for a specific amount (the mainline default of 50, §II-B).
const DefaultNumWant = 50

// MaxNumWant caps the numwant parameter: a client asking for more peers
// than this is clamped rather than allowed to pull the whole registry in
// one response. Flooding adversaries use huge numwant values to amplify
// the tracker's response size per request byte.
const MaxNumWant = 200

// DefaultInterval is the re-announce interval returned to clients, in
// seconds. The paper reports 30 minutes; tests override this.
const DefaultInterval = 1800

// peerEntry is one registered peer of one torrent.
type peerEntry struct {
	peerID   [20]byte
	ip       net.IP
	port     int
	left     int64
	lastSeen time.Time
}

func (p *peerEntry) key() string { return p.ip.String() + ":" + strconv.Itoa(p.port) }

// Server is an HTTP tracker. Create with NewServer, mount Handler on an
// http.Server, or use Serve for a self-managed listener.
type Server struct {
	mu       sync.Mutex
	torrents map[[20]byte]map[string]*peerEntry
	interval int
	ttl      time.Duration
	now      func() time.Time

	// Observability (SetMetrics): the registry, the global announce
	// counter, and per-infohash series with a windowed announce rate.
	reg        *obs.Registry
	mAnnounces *obs.Counter
	ihm        map[[20]byte]*ihMetrics

	// Graceful-restart state: draining refuses new announces while
	// inflight counts the ones already being served (Close waits for
	// them), so a snapshot taken after Close can never miss a
	// registration that was mid-flight.
	draining bool
	inflight sync.WaitGroup
}

// rateWindow bounds the per-infohash announce-rate estimate: the rate is
// announces-per-second over the current window, re-based every window so
// a stopped swarm decays instead of averaging over the tracker's entire
// lifetime.
const rateWindow = 30 * time.Second

// ihMetrics is one torrent's live series in the obs registry.
type ihMetrics struct {
	announces *obs.Counter
	peers     *obs.Gauge
	rate      *obs.Gauge
	winStart  time.Time
	winCount  uint64
}

// NewServer returns a tracker that advertises the given re-announce
// interval in seconds (0 means DefaultInterval). Peers that do not
// re-announce within the TTL (default two intervals) are expired; see
// SetTTL.
func NewServer(interval int) *Server {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Server{
		torrents: map[[20]byte]map[string]*peerEntry{},
		interval: interval,
		ttl:      2 * time.Duration(interval) * time.Second,
		now:      time.Now,
	}
}

// SetTTL overrides how long a registered peer stays listed without
// re-announcing. Crashed or partitioned clients never send "stopped", so
// the TTL is the only mechanism that ages them out of peer lists.
// Non-positive durations are ignored.
func (s *Server) SetTTL(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.ttl = d
	s.mu.Unlock()
}

// SetMetrics attaches an obs registry: every announce then updates a
// global tracker_announces_total counter plus per-infohash
// tracker_announces_total / tracker_peers / tracker_announce_rate series
// (the label is the info-hash's leading 8 hex digits), and /stats
// reports the live rate per torrent. Call before serving traffic.
func (s *Server) SetMetrics(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.mAnnounces = reg.Counter("tracker_announces_total")
	s.ihm = map[[20]byte]*ihMetrics{}
}

// noteAnnounceLocked updates the obs series for one announce. Callers
// must hold mu (the per-infohash window state is mu-guarded).
func (s *Server) noteAnnounceLocked(ih [20]byte) {
	if s.reg == nil {
		return
	}
	m := s.ihm[ih]
	if m == nil {
		label := fmt.Sprintf("%x", ih[:4])
		m = &ihMetrics{
			announces: s.reg.Counter(obs.SeriesName("tracker_announces_total", "info_hash", label)),
			peers:     s.reg.Gauge(obs.SeriesName("tracker_peers", "info_hash", label)),
			rate:      s.reg.Gauge(obs.SeriesName("tracker_announce_rate", "info_hash", label)),
			winStart:  s.now(),
		}
		s.ihm[ih] = m
	}
	s.mAnnounces.Inc()
	m.announces.Inc()
	m.winCount++
	el := s.now().Sub(m.winStart)
	if el < time.Second {
		el = time.Second // young window: assume at least a second so the rate is bounded
	}
	m.rate.Set(float64(m.winCount) / el.Seconds())
	if el >= rateWindow {
		m.winStart = s.now()
		m.winCount = 0
	}
	m.peers.Set(float64(len(s.torrents[ih])))
}

// Handler returns the tracker's HTTP handler (routes: /announce, /stats).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/announce", s.handleAnnounce)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// failure writes a bencoded tracker failure, as real trackers do.
func failure(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "text/plain")
	w.Write(bencode.MustEncode(map[string]any{"failure reason": msg}))
}

func (s *Server) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	// Drain gate: the draining check and the in-flight registration are
	// one atomic step under mu, so Close's Wait covers every announce
	// that got past the gate.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		failure(w, "tracker shutting down")
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	q := r.URL.Query()

	rawHash := q.Get("info_hash")
	if len(rawHash) != 20 {
		failure(w, "invalid info_hash")
		return
	}
	var ih [20]byte
	copy(ih[:], rawHash)

	rawID := q.Get("peer_id")
	if len(rawID) != 20 {
		failure(w, "invalid peer_id")
		return
	}
	var pid [20]byte
	copy(pid[:], rawID)

	port, err := strconv.Atoi(q.Get("port"))
	if err != nil || port <= 0 || port > 65535 {
		failure(w, "invalid port")
		return
	}
	left, _ := strconv.ParseInt(q.Get("left"), 10, 64)

	// Peer address: explicit ip param or the connection's source address.
	ipStr := q.Get("ip")
	if ipStr == "" {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			failure(w, "cannot determine peer address")
			return
		}
		ipStr = host
	}
	ip := net.ParseIP(ipStr)
	if ip == nil {
		failure(w, "invalid ip")
		return
	}
	// An explicit ip param is attacker-controlled: a peer registering an
	// unspecified, multicast or broadcast address poisons every peer list
	// handed out afterwards (undialable at best, a reflection vector at
	// worst). The connection's own source address never hits these cases.
	if q.Get("ip") != "" && !routableIP(ip) {
		failure(w, "unroutable ip")
		return
	}

	numWant := DefaultNumWant
	if nw := q.Get("numwant"); nw != "" {
		if n, err := strconv.Atoi(nw); err == nil && n >= 0 {
			numWant = n
		}
	}
	if numWant > MaxNumWant {
		numWant = MaxNumWant
	}

	event := q.Get("event")

	s.mu.Lock()
	peers := s.torrents[ih]
	if peers == nil {
		peers = map[string]*peerEntry{}
		s.torrents[ih] = peers
	}
	entry := &peerEntry{peerID: pid, ip: ip, port: port, left: left, lastSeen: s.now()}
	if event == "stopped" {
		delete(peers, entry.key())
	} else {
		peers[entry.key()] = entry
	}
	s.prune(ih)
	s.noteAnnounceLocked(ih)
	sample := s.samplePeers(ih, numWant, entry.key())
	complete, incomplete := s.countLocked(ih)
	s.mu.Unlock()

	resp := map[string]any{
		"interval":   s.interval,
		"complete":   complete,
		"incomplete": incomplete,
	}
	if q.Get("compact") == "1" {
		buf := make([]byte, 0, 6*len(sample))
		for _, p := range sample {
			ip4 := p.ip.To4()
			if ip4 == nil {
				continue // compact format is IPv4 only
			}
			var e [6]byte
			copy(e[:4], ip4)
			binary.BigEndian.PutUint16(e[4:], uint16(p.port))
			buf = append(buf, e[:]...)
		}
		resp["peers"] = buf
	} else {
		list := make([]any, 0, len(sample))
		for _, p := range sample {
			list = append(list, map[string]any{
				"peer id": string(p.peerID[:]),
				"ip":      p.ip.String(),
				"port":    p.port,
			})
		}
		resp["peers"] = list
	}
	w.Header().Set("Content-Type", "text/plain")
	w.Write(bencode.MustEncode(resp))
}

// routableIP reports whether an announced address could plausibly be
// dialed by other peers: not unspecified (0.0.0.0 / ::), not multicast,
// and not the IPv4 limited-broadcast address.
func routableIP(ip net.IP) bool {
	if ip.IsUnspecified() || ip.IsMulticast() {
		return false
	}
	if ip4 := ip.To4(); ip4 != nil && ip4.Equal(net.IPv4bcast) {
		return false
	}
	return true
}

// samplePeers returns up to n peers of torrent ih, excluding the requester.
// Callers must hold mu. Selection is by recency of announce, which biases
// toward live peers (adequate for a reference tracker; the simulator's
// tracker does uniform sampling).
func (s *Server) samplePeers(ih [20]byte, n int, excludeKey string) []*peerEntry {
	peers := s.torrents[ih]
	out := make([]*peerEntry, 0, len(peers))
	for k, p := range peers {
		if k != excludeKey {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].lastSeen.Equal(out[j].lastSeen) {
			return out[i].lastSeen.After(out[j].lastSeen)
		}
		return out[i].key() < out[j].key()
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// prune drops peers whose last announce is older than the TTL. Callers
// must hold mu.
func (s *Server) prune(ih [20]byte) {
	cutoff := s.now().Add(-s.ttl)
	for k, p := range s.torrents[ih] {
		if p.lastSeen.Before(cutoff) {
			delete(s.torrents[ih], k)
		}
	}
}

func (s *Server) countLocked(ih [20]byte) (complete, incomplete int) {
	for _, p := range s.torrents[ih] {
		if p.left == 0 {
			complete++
		} else {
			incomplete++
		}
	}
	return complete, incomplete
}

// Close drains the tracker for a graceful restart: new announces are
// refused with a bencoded failure, and Close blocks until every announce
// already in flight has finished registering. After Close returns,
// Snapshot sees a settled peer table. Close does not stop an http.Server
// wrapped around Handler — callers own that lifecycle.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.inflight.Wait()
}

// PeerSnapshot is one registered peer in a tracker snapshot, exported in
// a form that survives serialization (IPs as strings, times explicit).
type PeerSnapshot struct {
	InfoHash [20]byte
	PeerID   [20]byte
	IP       string
	Port     int
	Left     int64
	LastSeen time.Time
}

// Snapshot returns every registered peer, sorted by info hash then peer
// address, for persisting across a tracker restart.
func (s *Server) Snapshot() []PeerSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []PeerSnapshot
	for ih, peers := range s.torrents {
		for _, p := range peers {
			out = append(out, PeerSnapshot{
				InfoHash: ih,
				PeerID:   p.peerID,
				IP:       p.ip.String(),
				Port:     p.port,
				Left:     p.left,
				LastSeen: p.lastSeen,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InfoHash != out[j].InfoHash {
			return string(out[i].InfoHash[:]) < string(out[j].InfoHash[:])
		}
		if out[i].IP != out[j].IP {
			return out[i].IP < out[j].IP
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Restore rehydrates the peer table from a snapshot, so a bounced
// tracker serves useful peer lists immediately instead of wedging the
// swarm behind re-announce intervals. Entries whose LastSeen already
// fell outside the TTL are skipped — a stale snapshot degrades to a
// partial (or empty) restore, never to handing out dead peers. Invalid
// addresses are skipped too. Returns the number of entries restored.
func (s *Server) Restore(snap []PeerSnapshot) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := s.now().Add(-s.ttl)
	restored := 0
	for _, e := range snap {
		if e.LastSeen.Before(cutoff) {
			continue
		}
		ip := net.ParseIP(e.IP)
		if ip == nil || e.Port <= 0 || e.Port > 65535 {
			continue
		}
		peers := s.torrents[e.InfoHash]
		if peers == nil {
			peers = map[string]*peerEntry{}
			s.torrents[e.InfoHash] = peers
		}
		entry := &peerEntry{peerID: e.PeerID, ip: ip, port: e.Port, left: e.Left, lastSeen: e.LastSeen}
		peers[entry.key()] = entry
		restored++
	}
	return restored
}

// Count returns (seeds, leechers) currently registered for the torrent.
func (s *Server) Count(ih [20]byte) (complete, incomplete int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countLocked(ih)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "torrents: %d\n", len(s.torrents))
	for ih, peers := range s.torrents {
		c, i := s.countLocked(ih)
		fmt.Fprintf(w, "%x: %d peers (%d seeds, %d leechers)", ih[:4], len(peers), c, i)
		if m := s.ihm[ih]; m != nil {
			fmt.Fprintf(w, ", %.2f announces/s, %d announces total",
				m.rate.Value(), m.announces.Value())
		}
		fmt.Fprintln(w)
	}
}
