package tracker

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"rarestfirst/internal/bencode"
)

// AnnounceRequest is the client side of a tracker announce.
type AnnounceRequest struct {
	URL                        string // tracker announce URL
	InfoHash                   [20]byte
	PeerID                     [20]byte
	Port                       int
	Uploaded, Downloaded, Left int64
	Event                      string // "", "started", "stopped", "completed"
	NumWant                    int    // 0 = tracker default
	Compact                    bool
}

// AnnouncedPeer is one peer returned by the tracker.
type AnnouncedPeer struct {
	IP   net.IP
	Port int
}

// Addr returns the peer's dialable host:port.
func (p AnnouncedPeer) Addr() string {
	return net.JoinHostPort(p.IP.String(), strconv.Itoa(p.Port))
}

// AnnounceResponse is the parsed tracker reply.
type AnnounceResponse struct {
	Interval   int
	Complete   int
	Incomplete int
	Peers      []AnnouncedPeer
}

// Announce performs a blocking HTTP announce with a 10-second timeout.
func Announce(req AnnounceRequest) (*AnnounceResponse, error) {
	u, err := url.Parse(req.URL)
	if err != nil {
		return nil, fmt.Errorf("tracker: bad announce URL: %w", err)
	}
	q := u.Query()
	q.Set("info_hash", string(req.InfoHash[:]))
	q.Set("peer_id", string(req.PeerID[:]))
	q.Set("port", strconv.Itoa(req.Port))
	q.Set("uploaded", strconv.FormatInt(req.Uploaded, 10))
	q.Set("downloaded", strconv.FormatInt(req.Downloaded, 10))
	q.Set("left", strconv.FormatInt(req.Left, 10))
	if req.Event != "" {
		q.Set("event", req.Event)
	}
	if req.NumWant > 0 {
		q.Set("numwant", strconv.Itoa(req.NumWant))
	}
	if req.Compact {
		q.Set("compact", "1")
	}
	u.RawQuery = q.Encode()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u.String())
	if err != nil {
		return nil, fmt.Errorf("tracker: announce: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("tracker: reading response: %w", err)
	}
	return ParseAnnounceResponse(body)
}

// ParseAnnounceResponse decodes a bencoded announce reply (dict or compact
// peer formats).
func ParseAnnounceResponse(body []byte) (*AnnounceResponse, error) {
	v, err := bencode.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("tracker: bad bencode in response: %w", err)
	}
	d, ok := bencode.AsDict(v)
	if !ok {
		return nil, errors.New("tracker: response is not a dict")
	}
	if f := d.Str("failure reason"); f != "" {
		return nil, fmt.Errorf("tracker: failure: %s", f)
	}
	out := &AnnounceResponse{
		Interval:   int(d.Int("interval")),
		Complete:   int(d.Int("complete")),
		Incomplete: int(d.Int("incomplete")),
	}
	switch peers := d["peers"].(type) {
	case string: // compact: 6 bytes per peer
		if len(peers)%6 != 0 {
			return nil, errors.New("tracker: compact peers not a multiple of 6 bytes")
		}
		for i := 0; i+6 <= len(peers); i += 6 {
			ip := net.IPv4(peers[i], peers[i+1], peers[i+2], peers[i+3])
			port := int(peers[i+4])<<8 | int(peers[i+5])
			out.Peers = append(out.Peers, AnnouncedPeer{IP: ip, Port: port})
		}
	case []any:
		for _, e := range peers {
			pd, ok := bencode.AsDict(e)
			if !ok {
				return nil, errors.New("tracker: peer entry is not a dict")
			}
			ip := net.ParseIP(pd.Str("ip"))
			if ip == nil {
				return nil, fmt.Errorf("tracker: bad peer ip %q", pd.Str("ip"))
			}
			out.Peers = append(out.Peers, AnnouncedPeer{IP: ip, Port: int(pd.Int("port"))})
		}
	case nil:
		// No peers yet; fine.
	default:
		return nil, errors.New("tracker: unrecognized peers format")
	}
	return out, nil
}
