package obs

// Prometheus text-format exposition, hand-rolled on the stdlib (the repo
// takes no external dependencies). Only the subset of the format the
// registry needs: `# TYPE` lines per metric family plus one
// `name{labels} value` line per series, histograms expanded into
// cumulative `_bucket`/`_sum`/`_count` series.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// familyName strips a trailing {label="..."} block, yielding the metric
// family a series belongs to (the unit of `# TYPE` lines).
func familyName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// WritePrometheus renders every metric in Prometheus text format, series
// sorted by name so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	type histSnap struct {
		name   string
		bounds []float64
		counts []uint64
		sum    float64
	}
	hists := make([]histSnap, 0, len(r.hists))
	for name, h := range r.hists {
		hs := histSnap{name: name, bounds: h.bounds, sum: h.Sum()}
		hs.counts = make([]uint64, len(h.counts))
		for i := range h.counts {
			hs.counts[i] = h.counts[i].Load()
		}
		hists = append(hists, hs)
	}
	r.mu.Unlock()

	var b strings.Builder
	writeFamily := func(series map[string]float64, kind string, asInt map[string]uint64) {
		names := make([]string, 0, len(series)+len(asInt))
		for n := range series {
			names = append(names, n)
		}
		for n := range asInt {
			names = append(names, n)
		}
		sort.Strings(names)
		lastFamily := ""
		for _, n := range names {
			if fam := familyName(n); fam != lastFamily {
				fmt.Fprintf(&b, "# TYPE %s %s\n", fam, kind)
				lastFamily = fam
			}
			if v, ok := asInt[n]; ok {
				fmt.Fprintf(&b, "%s %d\n", n, v)
				continue
			}
			fmt.Fprintf(&b, "%s %s\n", n, formatFloat(series[n]))
		}
	}
	writeFamily(nil, "counter", counters)
	writeFamily(gauges, "gauge", nil)

	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", h.name)
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.name, formatFloat(bound), cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", h.name, formatFloat(h.sum))
		fmt.Fprintf(&b, "%s_count %d\n", h.name, cum)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a value the way Prometheus clients expect: shortest
// round-trip representation, with NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format, for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
