package obs

// Memory-watermark sampler, extracted from cmd/benchtraj so every
// long-running consumer (benchtraj measurements, cmd/experiments suites)
// shares one implementation. It records the maximum live HeapAlloc a
// periodic sampler observed — a lower bound that is accurate for runs
// much longer than the sampling period — plus the OS-reported peak RSS
// where available (rss_linux.go / rss_other.go).

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMemInterval is the sampling period benchtraj has always used:
// coarse enough to be invisible in profiles, fine enough to catch the
// peak of any phase lasting a few hundred milliseconds.
const DefaultMemInterval = 50 * time.Millisecond

// MemWatermark is a running heap-watermark sampler. Create with
// StartMemWatermark, read PeakHeapBytes at any time, Stop when done.
type MemWatermark struct {
	peak     atomic.Uint64
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartMemWatermark collects garbage once (so the watermark reflects this
// measurement window, not a prior phase's uncollected heap) and starts
// sampling HeapAlloc every interval (0 means DefaultMemInterval). When
// reg is non-nil the sampler also publishes the live and peak values as
// process_heap_alloc_bytes / process_heap_peak_bytes gauges.
func StartMemWatermark(interval time.Duration, reg *Registry) *MemWatermark {
	if interval <= 0 {
		interval = DefaultMemInterval
	}
	runtime.GC()
	w := &MemWatermark{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	live := reg.Gauge("process_heap_alloc_bytes")
	peakG := reg.Gauge("process_heap_peak_bytes")
	go func() {
		defer close(w.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak.Load() {
					w.peak.Store(ms.HeapAlloc)
				}
				live.Set(float64(ms.HeapAlloc))
				peakG.Set(float64(w.peak.Load()))
			}
		}
	}()
	return w
}

// Stop halts the sampler and waits for its final tick to drain.
// Idempotent; safe from multiple goroutines.
func (w *MemWatermark) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// PeakHeapBytes returns the highest HeapAlloc observed so far. Valid
// both mid-run and after Stop.
func (w *MemWatermark) PeakHeapBytes() uint64 {
	if w == nil {
		return 0
	}
	return w.peak.Load()
}

// PeakRSSBytes returns the process-lifetime high-water resident set as
// reported by the OS (0 where unsupported). Unlike PeakHeapBytes this is
// not scoped to the sampler's window: getrusage reports a process-wide
// maximum.
func (w *MemWatermark) PeakRSSBytes() uint64 { return PeakRSSBytes() }
