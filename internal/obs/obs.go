// Package obs is the runtime observability layer: striped counters,
// float64 gauges and fixed-bucket histograms with O(1) lock-free updates,
// a snapshot API, and Prometheus-text exposition (prom.go). It exists so
// long-running swarms — a 201 s MegaSwarm benchmark, the live TCP lab, a
// real tracker under load — can narrate themselves while they run instead
// of only reporting after the fact.
//
// # Determinism contract
//
// The layer is observe-only. Metric updates never consume engine RNG,
// never schedule or reorder simulator events, and never feed wall-clock
// readings back into simulation state; with a registry installed, golden
// digests stay byte-identical (guarded by TestGoldenDigestsWithMetrics).
//
// # Disabled cost
//
// Every handle type is nil-receiver safe: a nil *Counter, *Gauge or
// *Histogram is a no-op, and a nil *Registry hands out nil handles. Hot
// paths therefore cache handles once at construction and pay a single nil
// check — zero allocations — when observability is off (the default for
// goldens and benchmarks; guarded by TestDisabledHooksZeroAlloc).
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numStripes is the per-counter stripe count. Eight cache-line-padded
// slots are enough to keep the lane workers (capped at min(8, NumCPU))
// from bouncing one hot line between cores.
const numStripes = 8

// counterStripe pads each slot to a cache line so concurrent writers on
// different stripes do not falsely share.
type counterStripe struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	stripes [numStripes]counterStripe
}

// stripeIdx derives a stripe from the caller's stack address. Goroutine
// stacks live in distinct allocations, so concurrent writers spread
// across stripes without any per-goroutine state; the shift discards
// within-frame variation so one goroutine sticks to one stripe across
// nearby frames. The pointer never escapes (it is reduced to a uintptr
// immediately), keeping the path allocation-free.
func stripeIdx() int {
	var probe byte
	return int((uintptr(unsafe.Pointer(&probe)) >> 12) % numStripes)
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.stripes[stripeIdx()].v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. Nil receivers read as zero.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous float64 value (peer counts, rates, bytes).
// The zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d (negative to decrement). No-op on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Max raises the gauge to v if v is larger (a high-watermark gauge).
// No-op on a nil receiver.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the gauge. Nil receivers read as zero.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets
// (cumulative at exposition time, like Prometheus "le" buckets). The
// bucket layout is fixed at creation so Observe is a binary search plus
// one atomic increment. A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // sorted inclusive upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a detached histogram with the given sorted upper
// bounds. Most callers use Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records v. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations. Zero on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values. Zero on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry owns a namespace of metrics. Handle lookup takes a mutex (do
// it once, at construction); the handles themselves are lock-free.
// A nil *Registry hands out nil (no-op) handles, so callers can wire
// unconditionally: `m := obs.Active().Counter("x")` is always safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. The name
// may carry a label set rendered by SeriesName. Nil registries return a
// nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil
// registries return a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds). Nil registries return
// a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Value looks up a counter or gauge by exact series name.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	c, g := r.counters[name], r.gauges[name]
	r.mu.Unlock()
	if c != nil {
		return float64(c.Value()), true
	}
	if g != nil {
		return g.Value(), true
	}
	return 0, false
}

// Values snapshots every counter and gauge (plus histogram _sum/_count
// pseudo-series) into a flat map, for JSONL time-series sinks.
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_sum"] = h.Sum()
		out[name+"_count"] = float64(h.Count())
	}
	return out
}

// SeriesName renders name{key="value"}, escaping the label value per the
// Prometheus text format. Registries key series by this full string, so
// one metric family fans out into labeled series naturally:
//
//	reg.Counter(obs.SeriesName("swarm_faults_total", "kind", name)).Inc()
func SeriesName(name, key, value string) string {
	var b strings.Builder
	b.Grow(len(name) + len(key) + len(value) + 6)
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(key)
	b.WriteString(`="`)
	for _, c := range value {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// defaultReg is the process-wide registry consulted by Active. It is nil
// until SetDefault installs one, which keeps every instrumented layer off
// (nil handles) by default.
var defaultReg atomic.Pointer[Registry]

// SetDefault installs (or, with nil, removes) the process-wide default
// registry. Layers cache handles at construction, so install the registry
// before building the engine/swarm/client that should report into it.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Active returns the process-wide registry, or nil when observability is
// off. Nil flows through handle lookups as no-op handles.
func Active() *Registry { return defaultReg.Load() }
