//go:build !linux

package obs

// PeakRSSBytes is unavailable off Linux (ru_maxrss units differ per OS and
// some platforms lack getrusage); consumers there simply omit the value.
func PeakRSSBytes() uint64 { return 0 }
