package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentAdds(t *testing.T) {
	c := &Counter{}
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Value = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeSetAddMax(t *testing.T) {
	g := &Gauge{}
	g.Set(10)
	g.Add(2.5)
	g.Add(-5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("after Set/Add: %v, want 7.5", got)
	}
	g.Max(3) // below current: no-op
	if got := g.Value(); got != 7.5 {
		t.Fatalf("Max(3) lowered the gauge to %v", got)
	}
	g.Max(99)
	if got := g.Value(); got != 99 {
		t.Fatalf("Max(99) = %v, want 99", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	g := &Gauge{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("balanced adds left %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5556.5 {
		t.Fatalf("Sum = %v, want 5556.5", got)
	}
	// SearchFloat64s puts v on the boundary into the bucket *above* it
	// except for exact matches, which land at the bound's own index:
	// 0.5,1 → ≤1; 5 → ≤10; 50 → ≤100; 500,5000 → +Inf.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestRegistryHandlesAndValues(t *testing.T) {
	r := NewRegistry()
	if c1, c2 := r.Counter("a_total"), r.Counter("a_total"); c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	r.Counter("a_total").Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)

	if v, ok := r.Value("a_total"); !ok || v != 3 {
		t.Fatalf("Value(a_total) = %v,%v", v, ok)
	}
	if v, ok := r.Value("g"); !ok || v != 1.5 {
		t.Fatalf("Value(g) = %v,%v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatal("Value(missing) reported ok")
	}
	vals := r.Values()
	if vals["a_total"] != 3 || vals["g"] != 1.5 || vals["h_count"] != 1 || vals["h_sum"] != 0.5 {
		t.Fatalf("Values() = %v", vals)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.Max(1)
	h.Observe(1)
	var pt *PhaseTimes
	_ = pt.Snapshot()
	var w *MemWatermark
	w.Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || w.PeakHeapBytes() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	if r.Values() != nil {
		t.Fatal("nil registry Values() non-nil")
	}
	if _, ok := r.Value("x"); ok {
		t.Fatal("nil registry Value() reported ok")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

// TestDisabledHooksZeroAlloc is the disabled-path contract: with
// observability off, every hook a hot path can hit is a nil-receiver
// no-op that allocates nothing. The enabled striped-counter path must be
// allocation-free too (its stack probe must not escape).
func TestDisabledHooksZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(1)
		g.Add(1)
		g.Max(1)
		h.Observe(1)
	}); n != 0 {
		t.Fatalf("disabled hooks allocate %.1f per run", n)
	}
	live := NewRegistry().Counter("x")
	if n := testing.AllocsPerRun(100, func() { live.Add(1) }); n != 0 {
		t.Fatalf("enabled counter Add allocates %.1f per run", n)
	}
}

func TestPhaseTimesSnapshot(t *testing.T) {
	pt := &PhaseTimes{}
	pt.LaneCompute.Add(10)
	pt.LaneApply.Add(20)
	pt.HeapMerge.Add(30)
	pt.RetimeFlush.Add(40)
	pt.HaveFlush.Add(50)
	s := pt.Snapshot()
	if s.LaneComputeNs != 10 || s.LaneApplyNs != 20 || s.HeapMergeNs != 30 ||
		s.RetimeFlushNs != 40 || s.HaveFlushNs != 50 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestSeriesName(t *testing.T) {
	got := SeriesName("faults_total", "kind", `dial"fail\n`)
	want := `faults_total{kind="dial\"fail\\n"}`
	if got != want {
		t.Fatalf("SeriesName = %s, want %s", got, want)
	}
	if fam := familyName(got); fam != "faults_total" {
		t.Fatalf("familyName = %s", fam)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ann_total").Add(2)
	r.Counter(SeriesName("faults_total", "kind", "reset")).Add(1)
	r.Counter(SeriesName("faults_total", "kind", "stall")).Add(4)
	r.Gauge("peers").Set(7)
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.05)
	r.Histogram("lat_seconds", nil).Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ann_total counter\nann_total 2\n",
		"# TYPE faults_total counter\n",
		`faults_total{kind="reset"} 1`,
		`faults_total{kind="stall"} 4`,
		"# TYPE peers gauge\npeers 7\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 5.05\n",
		"lat_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One # TYPE line per family, even with multiple labeled series.
	if n := strings.Count(out, "# TYPE faults_total"); n != 1 {
		t.Errorf("faults_total TYPE line emitted %d times", n)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Active() != nil {
		t.Fatal("default registry unexpectedly set at test start")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Active() != r {
		t.Fatal("Active() did not return the installed registry")
	}
	SetDefault(nil)
	if Active() != nil {
		t.Fatal("SetDefault(nil) did not clear the registry")
	}
}

func TestMemWatermark(t *testing.T) {
	r := NewRegistry()
	w := StartMemWatermark(time.Millisecond, r)
	// Hold a few MB live across several sampling periods.
	buf := make([]byte, 8<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	time.Sleep(20 * time.Millisecond)
	runtime.KeepAlive(buf) // the backing array is otherwise dead (and collectable) after the loop
	w.Stop()
	w.Stop() // idempotent
	if got := w.PeakHeapBytes(); got < uint64(len(buf)) {
		t.Fatalf("peak heap %d below the %d bytes held live", got, len(buf))
	}
	if v, ok := r.Value("process_heap_peak_bytes"); !ok || v < float64(len(buf)) {
		t.Fatalf("published peak gauge = %v,%v", v, ok)
	}
	_ = w.PeakRSSBytes() // platform-dependent; just must not panic
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
