//go:build linux

package obs

import "syscall"

// PeakRSSBytes reads the process's high-water resident set via getrusage.
// Linux reports ru_maxrss in kilobytes. Returns 0 when the syscall fails;
// callers treat 0 as "not measured".
func PeakRSSBytes() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if ru.Maxrss <= 0 {
		return 0
	}
	return uint64(ru.Maxrss) << 10
}
