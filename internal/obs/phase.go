package obs

// Engine phase timing. The simulator's hot loop splits into distinct
// phases — parallel lane compute, serial lane apply, sharded-heap merge
// pops, the deferred retime flush, the batched HAVE flush — and knowing
// where wall-clock time goes is what turns "201 s of silence" into a
// tunable system. PhaseTimes is a bundle of atomic nanosecond
// accumulators the engine adds into when (and only when) a bundle is
// attached; the disabled path is a single nil check per phase.
//
// Timing is observe-only: wall-clock readings accumulate here and never
// flow back into simulation state, so attaching a PhaseTimes cannot
// perturb event order or RNG streams (the determinism contract).

import "sync/atomic"

// PhaseTimes accumulates per-phase wall-clock nanoseconds. Fields are
// atomics so exposition can read them race-free mid-run.
type PhaseTimes struct {
	// LaneCompute: parallel (or inline) read-only choke computes in a
	// lane batch, including batch collection.
	LaneCompute atomic.Int64
	// LaneApply: the serial, key-ordered apply loop of a lane batch.
	LaneApply atomic.Int64
	// HeapMerge: loser-tree merge pops across heap shards.
	HeapMerge atomic.Int64
	// RetimeFlush: the post-event dirty-flow retime flush (sim.Net).
	RetimeFlush atomic.Int64
	// HaveFlush: draining the batched-HAVE queue (internal/swarm).
	HaveFlush atomic.Int64
}

// PhaseSnapshot is a plain-value copy of the accumulated nanoseconds.
type PhaseSnapshot struct {
	LaneComputeNs uint64
	LaneApplyNs   uint64
	HeapMergeNs   uint64
	RetimeFlushNs uint64
	HaveFlushNs   uint64
}

// Snapshot reads all accumulators. A nil receiver snapshots to zeros, so
// stats paths can call it unconditionally.
func (p *PhaseTimes) Snapshot() PhaseSnapshot {
	if p == nil {
		return PhaseSnapshot{}
	}
	return PhaseSnapshot{
		LaneComputeNs: uint64(p.LaneCompute.Load()),
		LaneApplyNs:   uint64(p.LaneApply.Load()),
		HeapMergeNs:   uint64(p.HeapMerge.Load()),
		RetimeFlushNs: uint64(p.RetimeFlush.Load()),
		HaveFlushNs:   uint64(p.HaveFlush.Load()),
	}
}
