package scenario

import (
	"fmt"
	"sort"
	"sync"

	"rarestfirst/internal/torrents"
)

// Options parameterize the expansion of a registered definition into
// concrete Specs.
type Options struct {
	// Scale is applied to every spec the definition builds with a zero
	// Scale; the zero value leaves the per-spec default (DefaultScale).
	Scale torrents.Scale
	// Seeds fans every built spec out into one repeat per RNG seed
	// (SeedOverride). Empty means a single run with the catalog seed.
	Seeds []int64
	// Torrents restricts catalog-style definitions to these Table I ids.
	// Empty means the definition's own default selection.
	Torrents []int
}

// Def is one named entry of the registry: a family of experiment Specs
// (a sweep, an ablation grid, or a single case study) that entry points
// refer to by name.
type Def struct {
	Name        string
	Description string
	// Build produces the base specs; Scenarios applies the Options
	// fan-out on top. Build must be deterministic.
	Build func(Options) []Spec
}

// Scenarios expands the definition under the options: Build, then the
// shared Scale default, then the multi-seed fan-out. The result order is
// deterministic: base-spec order, seeds innermost.
func (d Def) Scenarios(o Options) []Spec {
	base := d.Build(o)
	for i := range base {
		if base[i].Scale == (torrents.Scale{}) {
			base[i].Scale = o.Scale
		}
	}
	if len(o.Seeds) == 0 {
		return base
	}
	// Repeats keep the base Label: the label identifies the configuration
	// (the aggregation group), SeedOverride distinguishes the repeats.
	out := make([]Spec, 0, len(base)*len(o.Seeds))
	for _, sp := range base {
		for _, seed := range o.Seeds {
			rep := sp
			rep.SeedOverride = seed
			out = append(out, rep)
		}
	}
	return out
}

var (
	mu       sync.RWMutex
	registry = map[string]Def{}
)

// Register adds a definition; it panics on an empty or duplicate name
// (registration is programmer-controlled, not user input).
func Register(d Def) {
	mu.Lock()
	defer mu.Unlock()
	if d.Name == "" || d.Build == nil {
		panic("scenario: Register with empty name or nil Build")
	}
	if _, dup := registry[d.Name]; dup {
		panic("scenario: duplicate registration of " + d.Name)
	}
	registry[d.Name] = d
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Def, bool) {
	mu.RLock()
	defer mu.RUnlock()
	d, ok := registry[name]
	return d, ok
}

// Names returns every registered name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered definition, sorted by name.
func All() []Def {
	names := Names()
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Def, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// catalogIDs resolves Options.Torrents against a default selection.
func catalogIDs(o Options, def []int) []int {
	if len(o.Torrents) > 0 {
		return o.Torrents
	}
	return def
}

func allTorrentIDs() []int {
	ids := make([]int, len(torrents.TableI))
	for i := range ids {
		ids[i] = torrents.TableI[i].ID
	}
	return ids
}

// liveTwin expands one base configuration into its [sim twin, live run]
// pair. Both share the base Label — the aggregation key — and differ only
// in the backend: the sim twin runs at o.Scale (bench scale unless the
// caller overrides), the live run at the given wall-clock liveScale.
func liveTwin(o Options, base Spec, liveScale torrents.Scale) []Spec {
	sim := base
	sim.Scale = o.Scale
	if sim.Scale == (torrents.Scale{}) {
		sim.Scale = torrents.BenchScale()
	}
	lv := base
	lv.Live = true
	lv.Scale = liveScale
	return []Spec{sim, lv}
}

// The built-in catalog. Case studies come first (the torrents the paper
// singles out), then the Table I sweep, the ablation grids A1-A5, and the
// workload variants this reproduction adds (churn, slow-seed,
// seed-failure).
func init() {
	Register(Def{
		Name: "quickstart",
		Description: "torrent 10, the paper's interarrival case study: one run, " +
			"headline findings (entropy, first-pieces problem, seed fairness)",
		Build: func(o Options) []Spec {
			return []Spec{{Label: "torrent=10", TorrentID: 10}}
		},
	})
	Register(Def{
		Name: "flashcrowd",
		Description: "torrent 8, the transient-state case study: one slow initial " +
			"seed against a crowd of empty leechers (Figs 2-3)",
		Build: func(o Options) []Spec {
			return []Spec{{Label: "torrent=8", TorrentID: 8}}
		},
	})
	Register(Def{
		Name: "freeriders",
		Description: "torrent 14 with 30% free riders under the new vs old " +
			"seed-state choke algorithm (§IV-B robustness)",
		Build: func(o Options) []Spec {
			out := make([]Spec, 0, 2)
			for _, sk := range []string{SeedChokeNew, SeedChokeOld} {
				out = append(out, Spec{
					Label:             "seed-choke=" + sk,
					TorrentID:         14,
					SeedChoke:         sk,
					FreeRiderFraction: 0.3,
				})
			}
			return out
		},
	})
	Register(Def{
		Name: "huge-swarm",
		Description: "torrent 24 capped at 6000 peers with batched choke-round " +
			"lanes (intra-swarm sharding): the single-run scale ceiling",
		Build: func(o Options) []Spec {
			scale := o.Scale
			if scale == (torrents.Scale{}) {
				// Mirrors the public HugeSwarmScale (perf.go), which cannot
				// be imported from here without a cycle.
				scale = torrents.Scale{
					MaxPeers:     6000,
					MaxContentMB: 24,
					MaxPieces:    256,
					Duration:     600,
					Warmup:       300,
					Seed:         42,
				}
			}
			return []Spec{{
				Label:      "torrent=24 lanes",
				TorrentID:  24,
				Scale:      scale,
				ChokeLanes: true,
				HeapShards: 32,
				BatchHaves: true,
			}}
		},
	})
	Register(Def{
		Name: "flash-crowd-20k",
		Description: "torrent 8 under a 48x churn stream: one slow seed takes " +
			">20k arrivals in four simulated minutes (deferred-retime stress, PR 5)",
		Build: func(o Options) []Spec {
			scale := o.Scale
			if scale == (torrents.Scale{}) {
				// Mirrors the public FlashCrowdScale (perf.go), which cannot
				// be imported from here without a cycle.
				scale = torrents.Scale{
					MaxPeers:     20000,
					MaxContentMB: 24,
					MaxPieces:    256,
					Duration:     180,
					Warmup:       60,
					Seed:         42,
				}
			}
			return []Spec{{
				Label:      "torrent=8 flash-crowd",
				TorrentID:  8,
				Scale:      scale,
				ChokeLanes: true,
				ChurnScale: 48,
				HeapShards: 32,
				BatchHaves: true,
			}}
		},
	})
	Register(Def{
		Name: "mega-swarm",
		Description: "torrent 8 under a 240x churn stream capped at 100k peers: " +
			"the sharded-heap + batched-HAVE milestone workload (PR 6)",
		Build: func(o Options) []Spec {
			scale := o.Scale
			if scale == (torrents.Scale{}) {
				// Mirrors the public MegaSwarmScale (perf.go), which cannot
				// be imported from here without a cycle.
				scale = torrents.Scale{
					MaxPeers:     100000,
					MaxContentMB: 24,
					MaxPieces:    256,
					Duration:     180,
					Warmup:       60,
					Seed:         42,
				}
			}
			return []Spec{{
				Label:      "torrent=8 mega-swarm",
				TorrentID:  8,
				Scale:      scale,
				ChokeLanes: true,
				ChurnScale: 240,
				HeapShards: 32,
				BatchHaves: true,
			}}
		},
	})
	Register(Def{
		Name: "livetransfer",
		Description: "simulator twin of the loopback TCP demo: a four-peer swarm " +
			"(one fast seed, three leechers) at miniature scale",
		Build: func(o Options) []Spec {
			scale := o.Scale
			if scale == (torrents.Scale{}) {
				scale = torrents.BenchScale()
			}
			// Shrink to the demo's population and content: the Table I
			// scaling rules keep one seed and a couple of leechers.
			scale.MaxPeers = 4
			scale.MaxContentMB = 2
			scale.MaxPieces = 8
			return []Spec{{Label: "four-peer swarm", TorrentID: 7, Scale: scale}}
		},
	})
	Register(Def{
		Name:        "catalog",
		Description: "the full Table I sweep: one instrumented run per torrent (Figs 1-11 inputs)",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, allTorrentIDs())
			out := make([]Spec, 0, len(ids))
			for _, id := range ids {
				out = append(out, Spec{Label: fmt.Sprintf("torrent=%d", id), TorrentID: id})
			}
			return out
		},
	})
	Register(Def{
		Name:        "pickers",
		Description: "A1: rarest-first vs random vs sequential vs global-rarest piece selection, torrent 10",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{10})
			var out []Spec
			for _, id := range ids {
				for _, p := range []string{PickerRarestFirst, PickerRandom, PickerSequential, PickerGlobalRarest} {
					out = append(out, Spec{Label: "picker=" + p, TorrentID: id, Picker: p})
				}
			}
			return out
		},
	})
	Register(Def{
		Name:        "pickers-startup",
		Description: "A1b: rarest-first vs random during the transient startup phase, torrent 8",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{8})
			var out []Spec
			for _, id := range ids {
				for _, p := range []string{PickerRarestFirst, PickerRandom} {
					out = append(out, Spec{Label: "picker=" + p, TorrentID: id, Picker: p})
				}
			}
			return out
		},
	})
	Register(Def{
		Name:        "seed-choke",
		Description: "A2: new vs old seed-state choke algorithm under 20% free riders, torrent 14",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{14})
			var out []Spec
			for _, id := range ids {
				for _, sk := range []string{SeedChokeNew, SeedChokeOld} {
					out = append(out, Spec{
						Label:             "seed-choke=" + sk,
						TorrentID:         id,
						SeedChoke:         sk,
						FreeRiderFraction: 0.2,
					})
				}
			}
			return out
		},
	})
	Register(Def{
		Name:        "leecher-choke",
		Description: "A3: standard choke vs bit-level tit-for-tat (slow local uploader), torrent 14",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{14})
			var out []Spec
			for _, id := range ids {
				for _, lk := range []string{LeecherChokeStandard, LeecherChokeTitForTat} {
					out = append(out, Spec{Label: "leecher-choke=" + lk, TorrentID: id, LeecherChoke: lk})
				}
			}
			return out
		},
	})
	Register(Def{
		Name:        "smart-seed",
		Description: "A4: initial-seed duplicate service with and without the idealized coding policy, torrent 8",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{8})
			var out []Spec
			for _, id := range ids {
				for _, smart := range []bool{false, true} {
					label := "serve=client-pick"
					if smart {
						label = "serve=smart"
					}
					out = append(out, Spec{Label: label, TorrentID: id, SmartSeedServe: smart})
				}
			}
			return out
		},
	})
	Register(Def{
		Name:        "freerider-sweep",
		Description: "A5: free-rider penalty at 10/30/50% free-rider fractions, torrent 14",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{14})
			var out []Spec
			for _, id := range ids {
				for _, frac := range []float64{0.1, 0.3, 0.5} {
					out = append(out, Spec{
						Label:             fmt.Sprintf("freeriders=%.0f%%", frac*100),
						TorrentID:         id,
						FreeRiderFraction: frac,
					})
				}
			}
			return out
		},
	})
	Register(Def{
		Name: "churn",
		Description: "workload variant: torrent 7 under 0.5x/1x/2x/4x leecher arrival " +
			"rates — does rarest first hold entropy under churn pressure?",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{7})
			var out []Spec
			for _, id := range ids {
				for _, ch := range []float64{0.5, 1, 2, 4} {
					out = append(out, Spec{
						Label:      fmt.Sprintf("churn=%.1fx", ch),
						TorrentID:  id,
						ChurnScale: ch,
					})
				}
			}
			return out
		},
	})
	Register(Def{
		Name: "slow-seed",
		Description: "workload variant: torrent 8's initial seed at 1x/0.5x/0.25x capacity — " +
			"the transient phase stretches as rare-piece service slows",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{8})
			var out []Spec
			for _, id := range ids {
				for _, f := range []float64{1, 0.5, 0.25} {
					out = append(out, Spec{
						Label:       fmt.Sprintf("seed-up=%.2fx", f),
						TorrentID:   id,
						SeedUpScale: f,
					})
				}
			}
			return out
		},
	})
	// The live-* family: each definition pairs a simulator twin with a
	// real-TCP loopback swarm under ONE label, so suite aggregation
	// yields one sim group and one live group per configuration and the
	// suite report can cross-validate them side by side. Live scales are
	// wall-clock: Duration is the swarm deadline in real seconds.
	Register(Def{
		Name: "live-casestudy",
		Description: "sim-vs-live twin of the torrent 10 case study: a real-TCP " +
			"loopback swarm (1 seed, 4 leechers, 1 MiB) against its bench-scale sim twin",
		Build: func(o Options) []Spec {
			return liveTwin(o, Spec{TorrentID: 10, Label: "case-study"},
				torrents.Scale{MaxPeers: 5, MaxContentMB: 1, MaxPieces: 32, Duration: 90})
		},
	})
	Register(Def{
		Name: "live-flashcrowd",
		Description: "sim-vs-live twin of the torrent 8 flash crowd: a slow real " +
			"initial seed against a crowd of empty loopback leechers",
		Build: func(o Options) []Spec {
			specs := liveTwin(o, Spec{TorrentID: 8, Label: "flash-crowd"},
				torrents.Scale{MaxPeers: 6, MaxContentMB: 1, MaxPieces: 32, Duration: 120})
			// The live seed runs at a quarter of the lab default so the
			// transient phase (rare pieces draining off the seed) is
			// observable at loopback speed, as in the sim twin.
			specs[1].SeedUpScale = 0.25
			return specs
		},
	})
	Register(Def{
		Name: "live-seedfailure",
		Description: "sim-vs-live twin of the seed-failure injection: the initial " +
			"seed departs mid-transient and the real-TCP torrent dies too",
		Build: func(o Options) []Spec {
			specs := liveTwin(o, Spec{TorrentID: 8, Label: "seed=leaves"},
				torrents.Scale{MaxPeers: 5, MaxContentMB: 1, MaxPieces: 32, Duration: 15})
			specs[0].InitialSeedLeavesAt = 900 // sim seconds, mid-transient
			specs[1].InitialSeedLeavesAt = 1   // wall seconds
			specs[1].SeedUpScale = 0.25
			return specs
		},
	})
	Register(Def{
		Name: "seed-failure",
		Description: "failure injection: torrent 8's initial seed departs mid-transient — " +
			"\"a torrent is alive as long as there is at least one copy of each piece\"",
		Build: func(o Options) []Spec {
			ids := catalogIDs(o, []int{8})
			var out []Spec
			for _, id := range ids {
				out = append(out,
					Spec{Label: "seed=stays", TorrentID: id},
					Spec{Label: "seed=leaves@900s", TorrentID: id, InitialSeedLeavesAt: 900},
				)
			}
			return out
		},
	})
	Register(Def{
		Name: "chaos-flashcrowd",
		Description: "sim-vs-live chaos twin: the torrent 8 flash crowd under the " +
			"\"chaos\" fault plan — tracker blackout mid-run, 10% connection " +
			"resets, and a slow initial seed that fails halfway through",
		Build: func(o Options) []Spec {
			specs := liveTwin(o, Spec{TorrentID: 8, Label: "chaos-flash-crowd", Faults: "chaos"},
				torrents.Scale{MaxPeers: 6, MaxContentMB: 1, MaxPieces: 32, Duration: 12})
			specs[1].SeedUpScale = 0.5
			return specs
		},
	})
	Register(Def{
		Name: "chaos-wan",
		Description: "sim-vs-live chaos twin: the torrent 10 case study on the " +
			"\"wan\" plan — real propagation delay, jitter and a 1 MiB/s " +
			"shaped pipe, no faults",
		Build: func(o Options) []Spec {
			return liveTwin(o, Spec{TorrentID: 10, Label: "chaos-wan", Faults: "wan"},
				torrents.Scale{MaxPeers: 5, MaxContentMB: 1, MaxPieces: 32, Duration: 60})
		},
	})
	// The adv-* family: Byzantine swarm hardening scenarios. Each pairs a
	// sim twin with a real-TCP loopback swarm under one label (like the
	// chaos-* twins) with the invariant checker on, so the suite report
	// cross-validates the fault/ban counters across backends.
	Register(Def{
		Name: "adv-poison",
		Description: "sim-vs-live Byzantine twin: torrent 10 with a 25% piece-poisoner " +
			"population (poison25) — provenance tracking bans the poisoners and " +
			"every honest leecher still completes verified content; a third " +
			"sim spec disables banning to measure the wasted bandwidth",
		Build: func(o Options) []Spec {
			specs := liveTwin(o, Spec{TorrentID: 10, Label: "adv=poison25",
				Adversary: "poison25", DebugChecks: true},
				torrents.Scale{MaxPeers: 6, MaxContentMB: 1, MaxPieces: 32, Duration: 60})
			noban := specs[0]
			noban.Label = "adv=poison25 noban"
			noban.AdversaryNoBan = true
			return append(specs, noban)
		},
	})
	Register(Def{
		Name: "adv-liar",
		Description: "sim-vs-live Byzantine twin: torrent 10 with a 25% bitfield-liar " +
			"population (liar25) — fake HAVEs stall requests into timeouts until " +
			"the liars are struck and banned",
		Build: func(o Options) []Spec {
			return liveTwin(o, Spec{TorrentID: 10, Label: "adv=liar25",
				Adversary: "liar25", DebugChecks: true},
				torrents.Scale{MaxPeers: 6, MaxContentMB: 1, MaxPieces: 32, Duration: 60})
		},
	})
	Register(Def{
		Name: "adv-flood",
		Description: "sim-vs-live Byzantine twin: torrent 10 with a 25% request-flooder " +
			"population (flood25) — choked-request abuse trips the flood limiter " +
			"live, tracker hammering is absorbed in the sim",
		Build: func(o Options) []Spec {
			return liveTwin(o, Spec{TorrentID: 10, Label: "adv=flood25",
				Adversary: "flood25", DebugChecks: true},
				torrents.Scale{MaxPeers: 6, MaxContentMB: 1, MaxPieces: 32, Duration: 60})
		},
	})
	Register(Def{
		Name: "chaos-flaky",
		Description: "sim-vs-live chaos twin: torrent 10 on the \"flaky\" plan — " +
			"15% failed dials, resets and half-open stalls exercising retry, " +
			"re-request and snubbing",
		Build: func(o Options) []Spec {
			return liveTwin(o, Spec{TorrentID: 10, Label: "chaos-flaky", Faults: "flaky"},
				torrents.Scale{MaxPeers: 5, MaxContentMB: 1, MaxPieces: 32, Duration: 45})
		},
	})
	// The crash-* family: crash-recovery scenarios. Sim peers crash and
	// rejoin with retained pieces (availability dec/re-inc audited by the
	// invariant checker); live peers are SIGKILLed mid-transfer and
	// restarted over their durable resume directories. The flash-crowd
	// entry is a sim-vs-live twin under one label, like chaos-*/adv-*.
	Register(Def{
		Name: "crash-flashcrowd",
		Description: "sim-vs-live crash twin: the torrent 8 flash crowd on the " +
			"\"flashcrowd-kill\" plan — half the non-instrumented leechers are " +
			"SIGKILLed mid-transfer and restarted from durable resume state; " +
			"one victim's resume data is corrupted so the re-hash-on-load " +
			"contract is exercised end to end",
		Build: func(o Options) []Spec {
			specs := liveTwin(o, Spec{TorrentID: 8, Label: "crash-flash-crowd",
				Crashes: "flashcrowd-kill", DebugChecks: true},
				torrents.Scale{MaxPeers: 6, MaxContentMB: 1, MaxPieces: 32, Duration: 60})
			return specs
		},
	})
	Register(Def{
		Name: "crash-restart",
		Description: "sim crash-recovery grid on torrent 10: kill-restart (full " +
			"resume), kill-restart-amnesia (half the verified pieces survive) " +
			"and kill-corrupt (the first victim loses every piece to failed " +
			"re-hashes), invariant checker on",
		Build: func(o Options) []Spec {
			var out []Spec
			for _, plan := range []string{"kill-restart", "kill-restart-amnesia", "kill-corrupt"} {
				out = append(out, Spec{
					Label:       "crash=" + plan,
					TorrentID:   10,
					Crashes:     plan,
					DebugChecks: true,
				})
			}
			return out
		},
	})
}
