package scenario

import (
	"testing"

	"rarestfirst/internal/swarm"
	"rarestfirst/internal/torrents"
)

// tinyScale keeps smoke runs in the low milliseconds.
func tinyScale() torrents.Scale {
	return torrents.Scale{
		MaxPeers:     14,
		MaxContentMB: 1,
		MaxPieces:    8,
		Duration:     150,
		Warmup:       40,
		Seed:         42,
	}
}

func TestRegistryHasCaseStudies(t *testing.T) {
	for _, name := range []string{
		"quickstart", "flashcrowd", "freeriders", "livetransfer", "catalog",
		"pickers", "pickers-startup", "seed-choke", "leecher-choke",
		"smart-seed", "freerider-sweep", "churn", "slow-seed", "seed-failure",
		"live-casestudy", "live-flashcrowd", "live-seedfailure",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("registry missing %q", name)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted/unique: %v", names)
		}
	}
}

// TestRegistrySpecsBuildValidConfigs: every spec of every registered
// definition must map onto a runnable swarm.Config, and a short-horizon
// run of it must complete without error.
func TestRegistrySpecsBuildValidConfigs(t *testing.T) {
	for _, def := range All() {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			t.Parallel()
			specs := def.Scenarios(Options{Scale: tinyScale()})
			if len(specs) == 0 {
				t.Fatal("definition built no specs")
			}
			for _, sp := range specs {
				if sp.Live {
					// Live specs resolve on the TCP backend, not here;
					// Config must refuse to simulate them.
					if _, _, err := sp.Config(); err == nil {
						t.Fatalf("%s: live spec accepted by the sim config builder", sp.Label)
					}
					continue
				}
				cfg, tspec, err := sp.Config()
				if err != nil {
					t.Fatalf("%s: Config: %v", sp.Label, err)
				}
				if tspec.ID != sp.TorrentID {
					t.Fatalf("%s: spec id %d != torrent %d", sp.Label, tspec.ID, sp.TorrentID)
				}
				if cfg.NumPieces <= 0 || cfg.PieceSize <= 0 || cfg.MaxPeerSet <= 0 || cfg.Duration <= 0 {
					t.Fatalf("%s: invalid config %+v", sp.Label, cfg)
				}
				res := swarm.New(cfg).Run()
				if res == nil || res.Collector == nil {
					t.Fatalf("%s: run produced no result", sp.Label)
				}
			}
		})
	}
}

func TestScenariosSeedFanOut(t *testing.T) {
	def, _ := Lookup("freeriders")
	specs := def.Scenarios(Options{Scale: tinyScale(), Seeds: []int64{101, 102, 103}})
	if len(specs) != 6 {
		t.Fatalf("2 configs x 3 seeds: got %d specs", len(specs))
	}
	// Repeats keep the configuration label and differ only in the seed.
	if specs[0].Label != specs[2].Label || specs[0].SeedOverride == specs[1].SeedOverride {
		t.Fatalf("fan-out wrong: %+v", specs[:3])
	}
	if specs[0].SeedOverride != 101 || specs[1].SeedOverride != 102 {
		t.Fatalf("seed order not deterministic: %+v", specs[:2])
	}
}

func TestCatalogRespectsTorrentSelection(t *testing.T) {
	def, _ := Lookup("catalog")
	specs := def.Scenarios(Options{Torrents: []int{7, 10}})
	if len(specs) != 2 || specs[0].TorrentID != 7 || specs[1].TorrentID != 10 {
		t.Fatalf("selection ignored: %+v", specs)
	}
	all := def.Scenarios(Options{})
	if len(all) != len(torrents.TableI) {
		t.Fatalf("default catalog has %d specs, want %d", len(all), len(torrents.TableI))
	}
}

func TestVariantKnobsChangeConfig(t *testing.T) {
	base := Spec{TorrentID: 7, Scale: tinyScale()}
	bcfg, _, err := base.Config()
	if err != nil {
		t.Fatal(err)
	}
	churn := base
	churn.ChurnScale = 2
	ccfg, _, err := churn.Config()
	if err != nil {
		t.Fatal(err)
	}
	if ccfg.ArrivalRate != 2*bcfg.ArrivalRate {
		t.Fatalf("ChurnScale: %v vs %v", ccfg.ArrivalRate, bcfg.ArrivalRate)
	}
	slow := base
	slow.SeedUpScale = 0.25
	scfg, _, err := slow.Config()
	if err != nil {
		t.Fatal(err)
	}
	if scfg.InitialSeedUp != 0.25*bcfg.InitialSeedUp {
		t.Fatalf("SeedUpScale: %v vs %v", scfg.InitialSeedUp, bcfg.InitialSeedUp)
	}
	abort := base
	abort.AbortScale = 3
	acfg, _, err := abort.Config()
	if err != nil {
		t.Fatal(err)
	}
	if acfg.AbortRate != 3*bcfg.AbortRate {
		t.Fatalf("AbortScale: %v vs %v", acfg.AbortRate, bcfg.AbortRate)
	}
	bad := base
	bad.ChurnScale = -1
	if _, _, err := bad.Config(); err == nil {
		t.Fatal("negative multiplier accepted")
	}
}
