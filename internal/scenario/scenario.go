// Package scenario is the experiment-description layer shared by the
// public rarestfirst API, the cmd binaries and the examples: a Spec is the
// full parameterization of one instrumented swarm run (Table I torrent,
// scale, picker/choker selection, ablation switches, churn and seed-rate
// variants), and the registry (registry.go) names the recurring Spec
// families — the paper's catalog sweeps and ablation grids plus the
// workload variants the reproduction adds — so every entry point builds
// experiments the same way instead of hand-rolling its own setup.
package scenario

import (
	"fmt"

	"rarestfirst/internal/adversary"
	"rarestfirst/internal/crash"
	"rarestfirst/internal/netem"
	"rarestfirst/internal/swarm"
	"rarestfirst/internal/torrents"
)

// Piece selection strategies accepted by Spec.Picker.
const (
	PickerRarestFirst  = "rarest-first"  // the paper's algorithm (default)
	PickerRandom       = "random"        // baseline the paper cites as inferior
	PickerSequential   = "sequential"    // in-order worst case
	PickerGlobalRarest = "global-rarest" // oracle with global knowledge
)

// Seed-state choke algorithms accepted by Spec.SeedChoke.
const (
	SeedChokeNew = "new" // mainline >= 4.0.0, the paper's subject (default)
	SeedChokeOld = "old" // pre-4.0.0 upload-rate algorithm (baseline)
)

// Leecher-state choke algorithms accepted by Spec.LeecherChoke.
const (
	LeecherChokeStandard  = "standard"    // 3 RU / 10 s + 1 OU / 30 s (default)
	LeecherChokeTitForTat = "tit-for-tat" // bit-level TFT baseline
)

// Spec describes one experiment. It mirrors the public
// rarestfirst.Scenario field-for-field (the public type converts to a Spec
// before running) and adds nothing else; keeping the mapping to
// swarm.Config here lets the registry, the cmd binaries and the examples
// share one builder.
type Spec struct {
	// Label names the spec inside a suite (e.g. "picker=random"); it does
	// not affect the run.
	Label string
	// TorrentID selects a Table I torrent (1..26).
	TorrentID int
	// Live runs the spec on the real-TCP loopback backend (internal/live)
	// instead of the discrete-event simulator. Scale fields are then read
	// at wall-clock granularity: Duration is the swarm's deadline in real
	// seconds and MaxPeers/MaxContentMB/MaxPieces bound the loopback
	// swarm. Only the paper's default algorithms are supported live.
	Live bool
	// Scale bounds the simulation; zero value means torrents.DefaultScale.
	Scale torrents.Scale
	// Picker selects the swarm-wide piece selection strategy ("" =
	// rarest-first).
	Picker string
	// SeedChoke selects the seed-state algorithm ("" = new).
	SeedChoke string
	// LeecherChoke selects the leecher-state algorithm ("" = standard).
	LeecherChoke string
	// TFTDeficitBytes is the tit-for-tat deficit threshold (default 2 MiB).
	TFTDeficitBytes int64
	// FreeRiderFraction of leechers never upload.
	FreeRiderFraction float64
	// LocalFreeRider makes the instrumented peer itself a free rider.
	LocalFreeRider bool
	// SmartSeedServe enables the idealized coding / super-seeding serve
	// policy on the initial seed (ablation A4).
	SmartSeedServe bool
	// DisableRandomFirst turns the random-first policy off swarm-wide.
	DisableRandomFirst bool
	// BoostNewcomers enables the §VI extension: exploratory unchoke slots
	// prefer peers that have no pieces yet.
	BoostNewcomers bool
	// InitialSeedLeavesAt injects a failure: the initial seed departs at
	// this simulated time (0 = never).
	InitialSeedLeavesAt float64
	// SeedOverride, when nonzero, replaces the catalog RNG seed for
	// repeat runs; it is mixed with the torrent id (see MixSeed), not
	// used verbatim.
	SeedOverride int64
	// ChokeLanes runs the simulated swarm with grid-aligned, batched
	// choke rounds (swarm.Config.ChokeLanes): the intra-swarm sharding
	// mode for very large populations. Bit-reproducible, but a different
	// round schedule than the default staggered rounds.
	ChokeLanes bool
	// HeapShards shards the engine's event heap into this many keyed
	// subheaps (swarm.Config.HeapShards); 0 keeps the single heap.
	// Trajectory-preserving — same run either way.
	HeapShards int
	// BatchHaves batches per-piece HAVE reactions and switches the
	// availability indices to lazy bucket maintenance
	// (swarm.Config.BatchHaves). Bit-reproducible, but a different
	// trajectory than the default eager mode.
	BatchHaves bool
	// Faults names a netem fault plan (netem.PlanByName) applied to the
	// run: on the live backend it drives the injectors and the tracker
	// blackout, on the simulator it maps to the swarm.Chaos twin knobs,
	// with the plan's fractional timing anchored to the run window.
	// "" (the default, and every golden scenario) injects nothing.
	Faults string
	// Adversary names a Byzantine peer model (adversary.ModelByName)
	// mixed into the run: on the live backend adversarial clients are
	// provisioned alongside the honest swarm, on the simulator the model
	// maps to the swarm.Adversary twin knobs. "" (the default, and every
	// golden scenario) adds no adversaries.
	Adversary string
	// AdversaryNoBan disables the poisoner ban response (measurement
	// mode): hash failures and wasted bytes are counted but suspects are
	// never banned.
	AdversaryNoBan bool
	// Crashes names a crash-schedule plan (crash.PlanByName) applied to
	// the run: on the live backend a deterministic schedule SIGKILLs a
	// fraction of the leechers mid-transfer and restarts them from their
	// ResumeDir, on the simulator it maps to the swarm.Crashes twin
	// knobs (kill, downtime, rejoin with retained pieces). "" (the
	// default, and every golden scenario) crashes nobody.
	Crashes string
	// DebugChecks enables the swarm invariant checker on the simulated
	// run (swarm.Config.Invariants): pure-read audits that panic on
	// violation and never perturb the trajectory.
	DebugChecks bool

	// Workload variants beyond the paper's ablation switches. All three
	// are multipliers applied after the Table I scaling rules; 0 means
	// "unchanged" so the zero Spec still reproduces the catalog exactly.

	// ChurnScale multiplies the leecher arrival rate.
	ChurnScale float64
	// SeedUpScale multiplies the initial seed's upload capacity.
	SeedUpScale float64
	// AbortScale multiplies the pre-completion departure hazard.
	AbortScale float64
}

// MixSeed combines a user repeat seed with a torrent id into one RNG
// seed via a splitmix64-style finalizer: deterministic, and free of the
// collision classes a linear combination has. The live lab reuses it to
// derive per-client seeds, so it is part of the reproducibility contract.
func MixSeed(seed int64, id int) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*uint64(uint32(id))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Config maps the spec onto the internal swarm configuration. Live specs
// are rejected: they resolve through internal/live.FromSpec instead, and
// silently simulating one would let a live scenario masquerade as its own
// sim twin.
func (s Spec) Config() (swarm.Config, torrents.Spec, error) {
	if s.Live {
		return swarm.Config{}, torrents.Spec{}, fmt.Errorf("scenario: %q is a live spec; it runs on the TCP backend, not the simulator", s.Label)
	}
	spec, ok := torrents.ByID(s.TorrentID)
	if !ok {
		return swarm.Config{}, torrents.Spec{}, fmt.Errorf("scenario: no torrent %d in Table I", s.TorrentID)
	}
	scale := s.Scale
	if scale == (torrents.Scale{}) {
		scale = torrents.DefaultScale()
	}
	cfg := spec.Config(scale)
	if s.SeedOverride != 0 {
		// Decorrelate torrents under a shared repeat seed: two torrents
		// whose scaled-down configs coincide (e.g. 7 and 10 at bench
		// scale) must not collapse into bit-identical runs. A linear
		// offset (seed + 1000*ID) would collide again whenever user
		// seeds differ by the right multiple, so mix seed and ID
		// non-linearly instead.
		cfg.Seed = MixSeed(s.SeedOverride, spec.ID)
	}
	switch s.Picker {
	case "", PickerRarestFirst:
		cfg.Picker = swarm.PickRarestFirst
	case PickerRandom:
		cfg.Picker = swarm.PickRandom
	case PickerSequential:
		cfg.Picker = swarm.PickSequential
	case PickerGlobalRarest:
		cfg.Picker = swarm.PickGlobalRarest
	default:
		return swarm.Config{}, spec, fmt.Errorf("scenario: unknown picker %q", s.Picker)
	}
	switch s.SeedChoke {
	case "", SeedChokeNew:
		cfg.SeedChoker = swarm.SeedChokeNew
	case SeedChokeOld:
		cfg.SeedChoker = swarm.SeedChokeOld
	default:
		return swarm.Config{}, spec, fmt.Errorf("scenario: unknown seed choker %q", s.SeedChoke)
	}
	switch s.LeecherChoke {
	case "", LeecherChokeStandard:
		cfg.LeecherChoker = swarm.LeecherChokeStandard
	case LeecherChokeTitForTat:
		cfg.LeecherChoker = swarm.LeecherChokeTitForTat
		cfg.TFTDeficitLimit = s.TFTDeficitBytes
		if cfg.TFTDeficitLimit == 0 {
			cfg.TFTDeficitLimit = 2 << 20
		}
	default:
		return swarm.Config{}, spec, fmt.Errorf("scenario: unknown leecher choker %q", s.LeecherChoke)
	}
	if s.ChurnScale < 0 || s.SeedUpScale < 0 || s.AbortScale < 0 {
		return swarm.Config{}, spec, fmt.Errorf("scenario: negative variant multiplier in %+v", s)
	}
	if s.ChurnScale > 0 {
		cfg.ArrivalRate *= s.ChurnScale
	}
	if s.SeedUpScale > 0 {
		cfg.InitialSeedUp *= s.SeedUpScale
	}
	if s.AbortScale > 0 {
		cfg.AbortRate *= s.AbortScale
	}
	cfg.ChokeLanes = s.ChokeLanes
	cfg.HeapShards = s.HeapShards
	cfg.BatchHaves = s.BatchHaves
	cfg.FreeRiderFraction = s.FreeRiderFraction
	cfg.LocalFreeRider = s.LocalFreeRider
	cfg.SmartSeedServe = s.SmartSeedServe
	cfg.DisableRandomFirst = s.DisableRandomFirst
	cfg.BoostNewcomers = s.BoostNewcomers
	cfg.InitialSeedLeaveAt = s.InitialSeedLeavesAt
	if s.Faults != "" {
		plan, ok := netem.PlanByName(s.Faults)
		if !ok {
			return swarm.Config{}, spec, fmt.Errorf("scenario: unknown fault plan %q (have: %s)", s.Faults, netem.PlanNamesString())
		}
		// Anchor the plan's fractional timing to the simulated run window,
		// mirroring how the live backend anchors it to the deadline.
		window := cfg.LocalJoinTime + cfg.Duration
		cfg.Chaos = &swarm.Chaos{
			// Connection setup is the only place propagation delay can act
			// in the fluid model (control traffic is instantaneous).
			ConnSetupDelay:       (plan.DelayMs + plan.JitterMs/2) / 1000,
			DialFailRate:         plan.DialFailRate,
			ConnResetRate:        plan.ConnResetRate + plan.ConnStallRate,
			ConnResetMeanDelay:   plan.FaultDelayFrac * window,
			TrackerBlackoutStart: plan.BlackoutStartFrac * window,
			TrackerBlackoutEnd:   plan.BlackoutEndFrac * window,
		}
		if plan.SeedSlowFactor > 0 {
			cfg.InitialSeedUp *= plan.SeedSlowFactor
		}
		if plan.SeedFailFrac > 0 && cfg.InitialSeedLeaveAt == 0 {
			cfg.InitialSeedLeaveAt = plan.SeedFailFrac * window
		}
	}
	if s.Crashes != "" {
		plan, err := crash.PlanByName(s.Crashes)
		if err != nil {
			return swarm.Config{}, spec, fmt.Errorf("scenario: %v", err)
		}
		// Anchor the plan's fractional timing to the simulated run window,
		// exactly as the netem mapping above does.
		window := cfg.LocalJoinTime + cfg.Duration
		cfg.Crashes = &swarm.Crashes{
			Frac:         plan.Frac,
			WindowStart:  plan.StartFrac * window,
			WindowEnd:    plan.EndFrac * window,
			MeanDowntime: plan.DowntimeFrac * window,
			RetainFrac:   plan.RetainFrac,
			DropAllFirst: plan.CorruptResume,
		}
	}
	if s.Adversary != "" {
		model, err := adversary.ModelByName(s.Adversary)
		if err != nil {
			return swarm.Config{}, spec, fmt.Errorf("scenario: %v", err)
		}
		cfg.Adversary = &swarm.Adversary{
			Fraction:   model.Fraction,
			PoisonRate: model.PoisonRate,
			FakeHaves:  model.FakeHaves,
			Flood:      model.FloodRPS > 0,
			NoBan:      s.AdversaryNoBan,
		}
	}
	cfg.Invariants = s.DebugChecks
	return cfg, spec, nil
}
