package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rarestfirst/internal/bitfield"
)

func TestAvailabilityZero(t *testing.T) {
	a := NewAvailability(10)
	if a.NumPieces() != 10 || a.Peers() != 0 {
		t.Fatalf("fresh index wrong: %d pieces %d peers", a.NumPieces(), a.Peers())
	}
	if a.MinCount() != 0 || a.RarestSetSize() != 10 {
		t.Fatalf("fresh rarest set: min=%d size=%d", a.MinCount(), a.RarestSetSize())
	}
	min, mean, max := a.Stats()
	if min != 0 || mean != 0 || max != 0 {
		t.Fatalf("fresh stats: %d %f %d", min, mean, max)
	}
}

func TestAvailabilityIncDec(t *testing.T) {
	a := NewAvailability(4)
	a.Inc(1)
	a.Inc(1)
	a.Inc(2)
	if a.Count(1) != 2 || a.Count(2) != 1 || a.Count(0) != 0 {
		t.Fatalf("counts: %d %d %d", a.Count(0), a.Count(1), a.Count(2))
	}
	if a.MinCount() != 0 || a.RarestSetSize() != 2 { // pieces 0 and 3
		t.Fatalf("min=%d rarest=%d", a.MinCount(), a.RarestSetSize())
	}
	a.Inc(0)
	a.Inc(3)
	if a.MinCount() != 1 || a.RarestSetSize() != 3 { // 0, 2, 3 have one copy
		t.Fatalf("min=%d rarest=%d", a.MinCount(), a.RarestSetSize())
	}
	a.Dec(1)
	a.Dec(1)
	if a.Count(1) != 0 || a.MinCount() != 0 || a.RarestSetSize() != 1 {
		t.Fatalf("after dec: count=%d min=%d rarest=%d", a.Count(1), a.MinCount(), a.RarestSetSize())
	}
}

func TestAvailabilityDecBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dec below zero did not panic")
		}
	}()
	NewAvailability(2).Dec(0)
}

func TestAvailabilityAddRemovePeer(t *testing.T) {
	a := NewAvailability(6)
	b1 := bitfield.New(6)
	b1.Set(0)
	b1.Set(3)
	b2 := bitfield.New(6)
	b2.Set(3)
	b2.Set(5)
	a.AddPeer(b1)
	a.AddPeer(b2)
	if a.Peers() != 2 || a.Count(3) != 2 || a.Count(0) != 1 || a.Count(5) != 1 {
		t.Fatalf("after add: peers=%d counts=%v", a.Peers(), []int{a.Count(0), a.Count(3), a.Count(5)})
	}
	a.RemovePeer(b1)
	if a.Peers() != 1 || a.Count(3) != 1 || a.Count(0) != 0 {
		t.Fatalf("after remove: peers=%d", a.Peers())
	}
}

func TestAvailabilityRarestSet(t *testing.T) {
	a := NewAvailability(5)
	for i := 0; i < 5; i++ {
		a.Inc(i)
	}
	a.Inc(0)
	a.Inc(1)
	set := a.RarestSet(nil)
	want := map[int]bool{2: true, 3: true, 4: true}
	if len(set) != 3 {
		t.Fatalf("rarest set %v", set)
	}
	for _, i := range set {
		if !want[i] {
			t.Fatalf("rarest set %v contains %d", set, i)
		}
	}
}

func TestAvailabilityStats(t *testing.T) {
	a := NewAvailability(4)
	// counts: 0, 1, 2, 5
	a.Inc(1)
	a.Inc(2)
	a.Inc(2)
	for i := 0; i < 5; i++ {
		a.Inc(3)
	}
	min, mean, max := a.Stats()
	if min != 0 || max != 5 || mean != 2 {
		t.Fatalf("stats = %d %f %d", min, mean, max)
	}
}

func TestPickRarestPrefersLowestBucket(t *testing.T) {
	a := NewAvailability(4)
	a.Inc(0) // piece 0: 1 copy
	a.Inc(1)
	a.Inc(1) // piece 1: 2 copies
	a.Inc(2) // piece 2: 1 copy
	a.Inc(3)
	a.Inc(3)
	a.Inc(3) // piece 3: 3 copies
	rng := rand.New(rand.NewSource(1))
	// All pieces wanted: must pick among {0, 2} (count 1).
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		got := pickRarestFunc(a, rng, func(int) bool { return true })
		counts[got]++
	}
	if counts[1] > 0 || counts[3] > 0 {
		t.Fatalf("picked non-rarest pieces: %v", counts)
	}
	if counts[0] == 0 || counts[2] == 0 {
		t.Fatalf("random tie-break not uniform-ish: %v", counts)
	}
}

func TestPickRarestRespectsWantFilter(t *testing.T) {
	a := NewAvailability(3)
	a.Inc(0) // rarest among wanted will be 1 (count 1) though 0 has count 1 too
	a.Inc(1)
	a.Inc(2)
	a.Inc(2)
	rng := rand.New(rand.NewSource(2))
	got := pickRarestFunc(a, rng, func(i int) bool { return i == 2 })
	if got != 2 {
		t.Fatalf("picked %d, want 2", got)
	}
	if got := pickRarestFunc(a, rng, func(i int) bool { return false }); got != -1 {
		t.Fatalf("picked %d from empty want set", got)
	}
}

func TestPickRarestSkipsEmptyLowBucketForWanted(t *testing.T) {
	// Piece 0 has 0 copies but is not wanted (we can't download what no
	// one in the peer set has); the pick must fall through to count-1.
	a := NewAvailability(3)
	a.Inc(1)
	a.Inc(2)
	a.Inc(2)
	rng := rand.New(rand.NewSource(3))
	got := pickRarestFunc(a, rng, func(i int) bool { return i != 0 })
	if got != 1 {
		t.Fatalf("picked %d, want 1 (the rarest available)", got)
	}
}

// Property: after any sequence of Inc/Dec, bucket bookkeeping matches a
// naive recomputation.
func TestQuickAvailabilityConsistency(t *testing.T) {
	f := func(ops []uint16, nSeed uint8) bool {
		n := int(nSeed)%50 + 1
		a := NewAvailability(n)
		naive := make([]int, n)
		for _, op := range ops {
			i := int(op>>1) % n
			if op&1 == 0 {
				a.Inc(i)
				naive[i]++
			} else if naive[i] > 0 {
				a.Dec(i)
				naive[i]--
			}
		}
		minNaive := naive[0]
		rarest := 0
		for _, c := range naive {
			if c < minNaive {
				minNaive = c
			}
		}
		for i, c := range naive {
			if a.Count(i) != c {
				return false
			}
			if c == minNaive {
				rarest++
			}
		}
		return a.MinCount() == minNaive && a.RarestSetSize() == rarest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAvailabilityIncDec(b *testing.B) {
	a := NewAvailability(1393)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := i % 1393
		a.Inc(p)
		if i%2 == 1 {
			a.Dec(p)
		}
	}
}

func BenchmarkPickRarest(b *testing.B) {
	a := NewAvailability(1393)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1393; i++ {
		for j := rng.Intn(40); j > 0; j-- {
			a.Inc(i)
		}
	}
	remote := bitfield.New(1393)
	for i := 0; i < 1393; i += 2 {
		remote.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pickRarestFunc(a, rng, remote.Has)
	}
}
