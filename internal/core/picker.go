package core

import (
	"math/rand"

	"rarestfirst/internal/bitfield"
)

// RandomFirstThreshold is the number of pieces a peer downloads at random
// before switching to rarest first (the mainline default the paper reports:
// "if a peer has downloaded strictly less than 4 pieces, it chooses
// randomly the next piece to be requested").
const RandomFirstThreshold = 4

// PickState is the per-peer state a Picker consults when choosing the next
// piece to download from a remote peer.
type PickState struct {
	// Have is the set of pieces the local peer has completed and verified.
	Have *bitfield.Bitfield
	// InFlight is the set of pieces currently being downloaded (started but
	// not complete). A picker must not select these; strict priority at the
	// block level is handled by the Requester.
	InFlight *bitfield.Bitfield
	// Remote is the set of pieces the candidate remote peer advertises.
	Remote *bitfield.Bitfield
	// Downloaded is the number of pieces the local peer has completed; it
	// drives the random-first policy.
	Downloaded int
}

// wantFrom reports whether piece i is downloadable in this state: the
// remote has it, we don't, and we're not already fetching it.
func (s *PickState) wantFrom(i int) bool {
	return s.Remote.Has(i) && !s.Have.Has(i) && !s.InFlight.Has(i)
}

// Picker selects the next piece to download from a remote peer, or -1 when
// nothing is wanted. Implementations must be deterministic given the rng.
type Picker interface {
	Pick(rng *rand.Rand, s *PickState) int
	Name() string
}

// RarestFirst is the paper's piece selection strategy (§II-C.1): pieces are
// picked uniformly at random from the rarest pieces set, with the
// random-first policy for a peer's first pieces. Availability must be the
// local peer's view of its own peer set.
type RarestFirst struct {
	Avail *Availability
	// DisableRandomFirst turns off the random-first policy (for ablations).
	DisableRandomFirst bool
}

// Name implements Picker.
func (p *RarestFirst) Name() string { return "rarest-first" }

// Pick implements Picker.
func (p *RarestFirst) Pick(rng *rand.Rand, s *PickState) int {
	if !p.DisableRandomFirst && s.Downloaded < RandomFirstThreshold {
		return pickUniform(rng, s)
	}
	return p.Avail.PickRarest(rng, s.wantFrom)
}

// RandomPicker selects uniformly among wanted pieces; the baseline the
// paper cites rarest first as beating ([5], [9]).
type RandomPicker struct{}

// Name implements Picker.
func (RandomPicker) Name() string { return "random" }

// Pick implements Picker.
func (RandomPicker) Pick(rng *rand.Rand, s *PickState) int {
	return pickUniform(rng, s)
}

// pickUniform reservoir-samples a wanted piece uniformly at random.
func pickUniform(rng *rand.Rand, s *PickState) int {
	chosen, seen := -1, 0
	n := s.Remote.Len()
	for i := 0; i < n; i++ {
		if s.wantFrom(i) {
			seen++
			if rng.Intn(seen) == 0 {
				chosen = i
			}
		}
	}
	return chosen
}

// SequentialPicker selects the lowest-indexed wanted piece (in-order
// download, the degenerate strategy streaming clients use; included as a
// worst-case diversity baseline).
type SequentialPicker struct{}

// Name implements Picker.
func (SequentialPicker) Name() string { return "sequential" }

// Pick implements Picker.
func (SequentialPicker) Pick(rng *rand.Rand, s *PickState) int {
	n := s.Remote.Len()
	for i := 0; i < n; i++ {
		if s.wantFrom(i) {
			return i
		}
	}
	return -1
}

// GlobalRarest picks the globally rarest wanted piece using an oracle
// availability index covering the whole torrent rather than the local peer
// set. It models the "global knowledge" assumption of the analytical
// studies ([21], [25]) the paper contrasts with; the gap between
// GlobalRarest and RarestFirst measures what local knowledge costs.
type GlobalRarest struct {
	// Global is maintained by the simulator over all peers in the torrent.
	Global *Availability
}

// Name implements Picker.
func (p *GlobalRarest) Name() string { return "global-rarest" }

// Pick implements Picker.
func (p *GlobalRarest) Pick(rng *rand.Rand, s *PickState) int {
	return p.Global.PickRarest(rng, s.wantFrom)
}
