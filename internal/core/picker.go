package core

import (
	"math/bits"
	"math/rand"

	"rarestfirst/internal/bitfield"
)

// RandomFirstThreshold is the number of pieces a peer downloads at random
// before switching to rarest first (the mainline default the paper reports:
// "if a peer has downloaded strictly less than 4 pieces, it chooses
// randomly the next piece to be requested").
const RandomFirstThreshold = 4

// PickState is the per-peer state a Picker consults when choosing the next
// piece to download from a remote peer.
type PickState struct {
	// Have is the set of pieces the local peer has completed and verified.
	Have *bitfield.Bitfield
	// InFlight is the set of pieces currently being downloaded (started but
	// not complete). A picker must not select these; strict priority at the
	// block level is handled by the Requester.
	InFlight *bitfield.Bitfield
	// Remote is the set of pieces the candidate remote peer advertises.
	Remote *bitfield.Bitfield
	// Downloaded is the number of pieces the local peer has completed; it
	// drives the random-first policy.
	Downloaded int
}

// wantFrom reports whether piece i is downloadable in this state: the
// remote has it, we don't, and we're not already fetching it.
func (s *PickState) wantFrom(i int) bool {
	return s.Remote.Has(i) && !s.Have.Has(i) && !s.InFlight.Has(i)
}

// wantWord returns the 64-piece word of downloadable pieces at word index
// wi: remote &^ (have | inflight). All three bitfields share a length, so
// their tail invariants make the combination exact without masking.
func (s *PickState) wantWord(wi int) uint64 {
	return s.Remote.WordAt(wi) &^ (s.Have.WordAt(wi) | s.InFlight.WordAt(wi))
}

// want is wantFrom via a single combined word probe (one load per
// bitfield, no per-field bounds recomputation) — the form the hot scans
// use.
func (s *PickState) want(i int) bool {
	return s.wantWord(i>>6)&(1<<(63-uint(i)&63)) != 0
}

// Picker selects the next piece to download from a remote peer, or -1 when
// nothing is wanted. Implementations must be deterministic given the rng.
type Picker interface {
	Pick(rng *rand.Rand, s *PickState) int
	Name() string
}

// RarestFirst is the paper's piece selection strategy (§II-C.1): pieces are
// picked uniformly at random from the rarest pieces set, with the
// random-first policy for a peer's first pieces. Availability must be the
// local peer's view of its own peer set.
type RarestFirst struct {
	Avail *Availability
	// DisableRandomFirst turns off the random-first policy (for ablations).
	DisableRandomFirst bool
}

// Name implements Picker.
func (p *RarestFirst) Name() string { return "rarest-first" }

// Pick implements Picker.
func (p *RarestFirst) Pick(rng *rand.Rand, s *PickState) int {
	if !p.DisableRandomFirst && s.Downloaded < RandomFirstThreshold {
		return pickUniform(rng, s)
	}
	return p.Avail.PickRarest(rng, s)
}

// RandomPicker selects uniformly among wanted pieces; the baseline the
// paper cites rarest first as beating ([5], [9]).
type RandomPicker struct{}

// Name implements Picker.
func (RandomPicker) Name() string { return "random" }

// Pick implements Picker.
func (RandomPicker) Pick(rng *rand.Rand, s *PickState) int {
	return pickUniform(rng, s)
}

// pickUniform picks a wanted piece uniformly at random, word-parallel: a
// popcount pass sizes the candidate set, one rng.Intn draw selects a rank,
// and a second pass locates that rank's bit. Versus the old per-candidate
// reservoir this touches only set bits and consumes exactly one RNG draw
// (a documented reproducibility-contract bump; the distribution is
// unchanged).
func pickUniform(rng *rand.Rand, s *PickState) int {
	nw := s.Remote.NumWords()
	count := 0
	for wi := 0; wi < nw; wi++ {
		count += bits.OnesCount64(s.wantWord(wi))
	}
	if count == 0 {
		return -1
	}
	k := rng.Intn(count)
	for wi := 0; wi < nw; wi++ {
		w := s.wantWord(wi)
		pc := bits.OnesCount64(w)
		if k >= pc {
			k -= pc
			continue
		}
		return wi<<6 + selectBit(w, k)
	}
	return -1 // unreachable: k < count
}

// selectBit returns the bit position (MSB-first, i.e. piece order within a
// word) of the k-th set bit of w; k must be < OnesCount64(w).
func selectBit(w uint64, k int) int {
	for ; k > 0; k-- {
		w &^= 1 << (63 - uint(bits.LeadingZeros64(w)))
	}
	return bits.LeadingZeros64(w)
}

// SequentialPicker selects the lowest-indexed wanted piece (in-order
// download, the degenerate strategy streaming clients use; included as a
// worst-case diversity baseline).
type SequentialPicker struct{}

// Name implements Picker.
func (SequentialPicker) Name() string { return "sequential" }

// Pick implements Picker.
func (SequentialPicker) Pick(rng *rand.Rand, s *PickState) int {
	n := s.Remote.Len()
	nw := s.Remote.NumWords()
	for wi := 0; wi < nw; wi++ {
		if w := s.wantWord(wi); w != 0 {
			if i := wi<<6 + bits.LeadingZeros64(w); i < n {
				return i
			}
		}
	}
	return -1
}

// GlobalRarest picks the globally rarest wanted piece using an oracle
// availability index covering the whole torrent rather than the local peer
// set. It models the "global knowledge" assumption of the analytical
// studies ([21], [25]) the paper contrasts with; the gap between
// GlobalRarest and RarestFirst measures what local knowledge costs.
type GlobalRarest struct {
	// Global is maintained by the simulator over all peers in the torrent.
	Global *Availability
}

// Name implements Picker.
func (p *GlobalRarest) Name() string { return "global-rarest" }

// Pick implements Picker.
func (p *GlobalRarest) Pick(rng *rand.Rand, s *PickState) int {
	return p.Global.PickRarest(rng, s)
}
