package core

import (
	"math/rand"
	"testing"

	"rarestfirst/internal/bitfield"
)

// pickEnv builds a PickState with the given owned/in-flight/remote pieces.
func pickEnv(n int, have, inflight, remote []int, downloaded int) *PickState {
	h, f, r := bitfield.New(n), bitfield.New(n), bitfield.New(n)
	for _, i := range have {
		h.Set(i)
	}
	for _, i := range inflight {
		f.Set(i)
	}
	for _, i := range remote {
		r.Set(i)
	}
	return &PickState{Have: h, InFlight: f, Remote: r, Downloaded: downloaded}
}

func TestRandomPickerUniform(t *testing.T) {
	s := pickEnv(10, []int{0}, []int{1}, []int{0, 1, 2, 3, 4}, 1)
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		got := RandomPicker{}.Pick(rng, s)
		counts[got]++
	}
	// Only 2, 3, 4 are eligible (0 owned, 1 in flight).
	if counts[0] > 0 || counts[1] > 0 {
		t.Fatalf("picked ineligible pieces: %v", counts)
	}
	for _, i := range []int{2, 3, 4} {
		if counts[i] < 800 || counts[i] > 1200 {
			t.Fatalf("non-uniform pick distribution: %v", counts)
		}
	}
}

func TestRandomPickerExhausted(t *testing.T) {
	s := pickEnv(3, []int{0, 1, 2}, nil, []int{0, 1, 2}, 3)
	if got := (RandomPicker{}).Pick(rand.New(rand.NewSource(1)), s); got != -1 {
		t.Fatalf("picked %d from nothing", got)
	}
}

func TestSequentialPicker(t *testing.T) {
	s := pickEnv(6, []int{0}, []int{1}, []int{0, 1, 2, 5}, 1)
	if got := (SequentialPicker{}).Pick(nil, s); got != 2 {
		t.Fatalf("sequential picked %d, want 2", got)
	}
}

func TestRarestFirstUsesRandomFirstPolicy(t *testing.T) {
	// With fewer than 4 downloaded pieces the pick must be random, i.e. it
	// must NOT always choose the rarest piece.
	a := NewAvailability(20)
	// Piece 0 is the rarest (1 copy); the rest have 5.
	a.Inc(0)
	for i := 1; i < 20; i++ {
		for j := 0; j < 5; j++ {
			a.Inc(i)
		}
	}
	p := &RarestFirst{Avail: a}
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	s := pickEnv(20, nil, nil, all, 0) // 0 pieces downloaded: random-first active
	rng := rand.New(rand.NewSource(7))
	nonRarest := 0
	for i := 0; i < 100; i++ {
		if p.Pick(rng, s) != 0 {
			nonRarest++
		}
	}
	if nonRarest == 0 {
		t.Fatal("random-first policy inactive: always picked the rarest piece")
	}
}

func TestRarestFirstSwitchesAfterThreshold(t *testing.T) {
	a := NewAvailability(20)
	a.Inc(0)
	for i := 1; i < 20; i++ {
		for j := 0; j < 5; j++ {
			a.Inc(i)
		}
	}
	p := &RarestFirst{Avail: a}
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	s := pickEnv(20, nil, nil, all, RandomFirstThreshold) // at threshold: rarest first
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		if got := p.Pick(rng, s); got != 0 {
			t.Fatalf("picked %d, want rarest piece 0", got)
		}
	}
}

func TestRarestFirstDisableRandomFirst(t *testing.T) {
	a := NewAvailability(5)
	a.Inc(3)
	for i := 0; i < 5; i++ {
		if i != 3 {
			for j := 0; j < 4; j++ {
				a.Inc(i)
			}
		}
	}
	p := &RarestFirst{Avail: a, DisableRandomFirst: true}
	s := pickEnv(5, nil, nil, []int{0, 1, 2, 3, 4}, 0)
	if got := p.Pick(rand.New(rand.NewSource(1)), s); got != 3 {
		t.Fatalf("picked %d, want 3 despite 0 downloads", got)
	}
}

func TestRarestFirstTieBreakIsRandom(t *testing.T) {
	// Two equally-rarest pieces: both must be picked over many trials
	// ("selects the next piece at random in its rarest pieces set").
	a := NewAvailability(4)
	a.Inc(0)
	a.Inc(1)
	a.Inc(2)
	a.Inc(2)
	a.Inc(3)
	a.Inc(3)
	p := &RarestFirst{Avail: a}
	s := pickEnv(4, nil, nil, []int{0, 1, 2, 3}, 4)
	rng := rand.New(rand.NewSource(9))
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		counts[p.Pick(rng, s)]++
	}
	if counts[0] == 0 || counts[1] == 0 || counts[2] > 0 || counts[3] > 0 {
		t.Fatalf("tie-break wrong: %v", counts)
	}
}

func TestRarestFirstRestrictedToRemote(t *testing.T) {
	// The remote lacks the rarest piece; the pick must be the rarest piece
	// the remote actually has.
	a := NewAvailability(3)
	a.Inc(1)
	a.Inc(2)
	a.Inc(2)
	p := &RarestFirst{Avail: a}
	s := pickEnv(3, nil, nil, []int{1, 2}, 4) // piece 0 (count 0) not offered
	for i := 0; i < 20; i++ {
		if got := p.Pick(rand.New(rand.NewSource(int64(i))), s); got != 1 {
			t.Fatalf("picked %d, want 1", got)
		}
	}
}

func TestGlobalRarest(t *testing.T) {
	global := NewAvailability(4)
	global.Inc(2) // globally rarest available piece is 2 (count 1)
	global.Inc(0)
	global.Inc(0)
	global.Inc(1)
	global.Inc(1)
	global.Inc(3)
	global.Inc(3)
	p := &GlobalRarest{Global: global}
	s := pickEnv(4, nil, nil, []int{0, 1, 2, 3}, 10)
	if got := p.Pick(rand.New(rand.NewSource(1)), s); got != 2 {
		t.Fatalf("picked %d, want 2", got)
	}
}

func TestPickerNames(t *testing.T) {
	names := map[string]Picker{
		"rarest-first":  &RarestFirst{},
		"random":        RandomPicker{},
		"sequential":    SequentialPicker{},
		"global-rarest": &GlobalRarest{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

// --- PR 2: word-parallel picking ---

// pickRarestFunc is the predicate-based reference implementation of
// Availability.PickRarest. It consumes the identical RNG stream (one Intn
// draw per bucket with qualifying pieces), so equivalence tests can run
// both against the same seed.
func pickRarestFunc(a *Availability, rng *rand.Rand, want func(i int) bool) int {
	for _, b := range a.bucket {
		if len(b) == 0 {
			continue
		}
		k := 0
		for _, i := range b {
			if want(i) {
				k++
			}
		}
		if k == 0 {
			continue
		}
		j := rng.Intn(k)
		for _, i := range b {
			if want(i) {
				if j == 0 {
					return i
				}
				j--
			}
		}
	}
	return -1
}

// randomPickState builds a random but consistent PickState: Have, InFlight
// and Remote are disjoint-where-required random bitfields over n pieces.
func randomPickState(rng *rand.Rand, n int) *PickState {
	s := &PickState{
		Have:     bitfield.New(n),
		InFlight: bitfield.New(n),
		Remote:   bitfield.New(n),
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.6 {
			s.Remote.Set(i)
		}
		switch {
		case rng.Float64() < 0.25:
			s.Have.Set(i)
		case rng.Float64() < 0.2:
			s.InFlight.Set(i)
		}
	}
	s.Downloaded = s.Have.Count()
	return s
}

// TestPickUniformMatchesReference checks the word-parallel uniform pick
// against a per-bit count-then-draw reference consuming the same RNG
// stream.
func TestPickUniformMatchesReference(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 129, 400} {
		for trial := 0; trial < 50; trial++ {
			seed := int64(n*1000 + trial)
			s := randomPickState(rand.New(rand.NewSource(seed)), n)

			ref := func(rng *rand.Rand) int {
				count := 0
				for i := 0; i < n; i++ {
					if s.wantFrom(i) {
						count++
					}
				}
				if count == 0 {
					return -1
				}
				k := rng.Intn(count)
				for i := 0; i < n; i++ {
					if s.wantFrom(i) {
						if k == 0 {
							return i
						}
						k--
					}
				}
				return -1
			}
			got := pickUniform(rand.New(rand.NewSource(seed)), s)
			want := ref(rand.New(rand.NewSource(seed)))
			if got != want {
				t.Fatalf("n=%d trial=%d: pickUniform=%d ref=%d", n, trial, got, want)
			}
			if got >= 0 && !s.wantFrom(got) {
				t.Fatalf("picked unwanted piece %d", got)
			}
		}
	}
}

// TestPickUniformUniformity draws many picks over a fixed candidate set
// and checks every candidate is hit at a frequency near 1/k.
func TestPickUniformUniformity(t *testing.T) {
	const n = 130
	s := &PickState{Have: bitfield.New(n), InFlight: bitfield.New(n), Remote: bitfield.New(n)}
	cands := []int{0, 1, 63, 64, 65, 100, 129}
	for _, i := range cands {
		s.Remote.Set(i)
	}
	rng := rand.New(rand.NewSource(99))
	counts := map[int]int{}
	const draws = 70000
	for d := 0; d < draws; d++ {
		counts[pickUniform(rng, s)]++
	}
	want := float64(draws) / float64(len(cands))
	for _, i := range cands {
		got := float64(counts[i])
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("piece %d drawn %d times, want ~%.0f (counts %v)", i, counts[i], want, counts)
		}
	}
}

// TestPickRarestStateMatchesFunc pins the contract that the word-probe
// PickRarest and the predicate-based PickRarestFunc consume identical RNG
// streams and return identical picks.
func TestPickRarestStateMatchesFunc(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		seed := int64(7000 + trial)
		setup := rand.New(rand.NewSource(seed))
		const n = 150
		a := NewAvailability(n)
		for i := 0; i < n; i++ {
			for c := 0; c < setup.Intn(4); c++ {
				a.Inc(i)
			}
		}
		s := randomPickState(setup, n)
		got := a.PickRarest(rand.New(rand.NewSource(seed)), s)
		want := pickRarestFunc(a, rand.New(rand.NewSource(seed)), s.wantFrom)
		if got != want {
			t.Fatalf("trial %d: PickRarest=%d PickRarestFunc=%d", trial, got, want)
		}
		if got >= 0 && !s.wantFrom(got) {
			t.Fatalf("trial %d: picked unwanted piece %d", trial, got)
		}
	}
}

// TestSequentialPickerWordScan checks the word-skipping sequential picker
// against the obvious per-bit loop.
func TestSequentialPickerWordScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 64, 65, 200} {
		for trial := 0; trial < 30; trial++ {
			s := randomPickState(rng, n)
			want := -1
			for i := 0; i < n; i++ {
				if s.wantFrom(i) {
					want = i
					break
				}
			}
			if got := (SequentialPicker{}).Pick(rng, s); got != want {
				t.Fatalf("n=%d: sequential pick %d, want %d", n, got, want)
			}
		}
	}
}

func BenchmarkPickUniform(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomPickState(rng, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pickUniform(rng, s)
	}
}
