package core

import (
	"math/rand"
	"testing"

	"rarestfirst/internal/bitfield"
)

// pickEnv builds a PickState with the given owned/in-flight/remote pieces.
func pickEnv(n int, have, inflight, remote []int, downloaded int) *PickState {
	h, f, r := bitfield.New(n), bitfield.New(n), bitfield.New(n)
	for _, i := range have {
		h.Set(i)
	}
	for _, i := range inflight {
		f.Set(i)
	}
	for _, i := range remote {
		r.Set(i)
	}
	return &PickState{Have: h, InFlight: f, Remote: r, Downloaded: downloaded}
}

func TestRandomPickerUniform(t *testing.T) {
	s := pickEnv(10, []int{0}, []int{1}, []int{0, 1, 2, 3, 4}, 1)
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		got := RandomPicker{}.Pick(rng, s)
		counts[got]++
	}
	// Only 2, 3, 4 are eligible (0 owned, 1 in flight).
	if counts[0] > 0 || counts[1] > 0 {
		t.Fatalf("picked ineligible pieces: %v", counts)
	}
	for _, i := range []int{2, 3, 4} {
		if counts[i] < 800 || counts[i] > 1200 {
			t.Fatalf("non-uniform pick distribution: %v", counts)
		}
	}
}

func TestRandomPickerExhausted(t *testing.T) {
	s := pickEnv(3, []int{0, 1, 2}, nil, []int{0, 1, 2}, 3)
	if got := (RandomPicker{}).Pick(rand.New(rand.NewSource(1)), s); got != -1 {
		t.Fatalf("picked %d from nothing", got)
	}
}

func TestSequentialPicker(t *testing.T) {
	s := pickEnv(6, []int{0}, []int{1}, []int{0, 1, 2, 5}, 1)
	if got := (SequentialPicker{}).Pick(nil, s); got != 2 {
		t.Fatalf("sequential picked %d, want 2", got)
	}
}

func TestRarestFirstUsesRandomFirstPolicy(t *testing.T) {
	// With fewer than 4 downloaded pieces the pick must be random, i.e. it
	// must NOT always choose the rarest piece.
	a := NewAvailability(20)
	// Piece 0 is the rarest (1 copy); the rest have 5.
	a.Inc(0)
	for i := 1; i < 20; i++ {
		for j := 0; j < 5; j++ {
			a.Inc(i)
		}
	}
	p := &RarestFirst{Avail: a}
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	s := pickEnv(20, nil, nil, all, 0) // 0 pieces downloaded: random-first active
	rng := rand.New(rand.NewSource(7))
	nonRarest := 0
	for i := 0; i < 100; i++ {
		if p.Pick(rng, s) != 0 {
			nonRarest++
		}
	}
	if nonRarest == 0 {
		t.Fatal("random-first policy inactive: always picked the rarest piece")
	}
}

func TestRarestFirstSwitchesAfterThreshold(t *testing.T) {
	a := NewAvailability(20)
	a.Inc(0)
	for i := 1; i < 20; i++ {
		for j := 0; j < 5; j++ {
			a.Inc(i)
		}
	}
	p := &RarestFirst{Avail: a}
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	s := pickEnv(20, nil, nil, all, RandomFirstThreshold) // at threshold: rarest first
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		if got := p.Pick(rng, s); got != 0 {
			t.Fatalf("picked %d, want rarest piece 0", got)
		}
	}
}

func TestRarestFirstDisableRandomFirst(t *testing.T) {
	a := NewAvailability(5)
	a.Inc(3)
	for i := 0; i < 5; i++ {
		if i != 3 {
			for j := 0; j < 4; j++ {
				a.Inc(i)
			}
		}
	}
	p := &RarestFirst{Avail: a, DisableRandomFirst: true}
	s := pickEnv(5, nil, nil, []int{0, 1, 2, 3, 4}, 0)
	if got := p.Pick(rand.New(rand.NewSource(1)), s); got != 3 {
		t.Fatalf("picked %d, want 3 despite 0 downloads", got)
	}
}

func TestRarestFirstTieBreakIsRandom(t *testing.T) {
	// Two equally-rarest pieces: both must be picked over many trials
	// ("selects the next piece at random in its rarest pieces set").
	a := NewAvailability(4)
	a.Inc(0)
	a.Inc(1)
	a.Inc(2)
	a.Inc(2)
	a.Inc(3)
	a.Inc(3)
	p := &RarestFirst{Avail: a}
	s := pickEnv(4, nil, nil, []int{0, 1, 2, 3}, 4)
	rng := rand.New(rand.NewSource(9))
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		counts[p.Pick(rng, s)]++
	}
	if counts[0] == 0 || counts[1] == 0 || counts[2] > 0 || counts[3] > 0 {
		t.Fatalf("tie-break wrong: %v", counts)
	}
}

func TestRarestFirstRestrictedToRemote(t *testing.T) {
	// The remote lacks the rarest piece; the pick must be the rarest piece
	// the remote actually has.
	a := NewAvailability(3)
	a.Inc(1)
	a.Inc(2)
	a.Inc(2)
	p := &RarestFirst{Avail: a}
	s := pickEnv(3, nil, nil, []int{1, 2}, 4) // piece 0 (count 0) not offered
	for i := 0; i < 20; i++ {
		if got := p.Pick(rand.New(rand.NewSource(int64(i))), s); got != 1 {
			t.Fatalf("picked %d, want 1", got)
		}
	}
}

func TestGlobalRarest(t *testing.T) {
	global := NewAvailability(4)
	global.Inc(2) // globally rarest available piece is 2 (count 1)
	global.Inc(0)
	global.Inc(0)
	global.Inc(1)
	global.Inc(1)
	global.Inc(3)
	global.Inc(3)
	p := &GlobalRarest{Global: global}
	s := pickEnv(4, nil, nil, []int{0, 1, 2, 3}, 10)
	if got := p.Pick(rand.New(rand.NewSource(1)), s); got != 2 {
		t.Fatalf("picked %d, want 2", got)
	}
}

func TestPickerNames(t *testing.T) {
	names := map[string]Picker{
		"rarest-first":  &RarestFirst{},
		"random":        RandomPicker{},
		"sequential":    SequentialPicker{},
		"global-rarest": &GlobalRarest{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}
