package core

import (
	"math/rand"
	"testing"

	"rarestfirst/internal/bitfield"
	"rarestfirst/internal/metainfo"
)

// fullRemote returns a bitfield with all n pieces set (a seed's view).
func fullRemote(n int) *bitfield.Bitfield {
	b := bitfield.New(n)
	b.SetAll()
	return b
}

// newTestRequester builds a requester over p pieces of 4 blocks each using
// a rarest-first picker fed by a uniform availability (all pieces count 1).
func newTestRequester(p int) *Requester {
	geo := metainfo.NewGeometry(int64(p)*4*metainfo.BlockSize, 4*metainfo.BlockSize)
	a := NewAvailability(p)
	for i := 0; i < p; i++ {
		a.Inc(i)
	}
	return NewRequester(geo, &RarestFirst{Avail: a, DisableRandomFirst: true})
}

func TestRequesterDownloadsWholeTorrent(t *testing.T) {
	r := newTestRequester(10)
	rng := rand.New(rand.NewSource(1))
	remote := fullRemote(10)
	const peer = PeerID(1)
	steps := 0
	for !r.Complete() {
		ref, ok := r.Next(rng, peer, remote)
		if !ok {
			t.Fatalf("no block offered with %d/%d pieces done", r.Downloaded(), 10)
		}
		r.OnBlock(peer, ref)
		if steps++; steps > 10*4+5 {
			t.Fatal("too many steps; duplicate requests outside end game")
		}
	}
	if r.Downloaded() != 10 || !r.Have().Complete() {
		t.Fatalf("downloaded=%d", r.Downloaded())
	}
	if _, ok := r.Next(rng, peer, remote); ok {
		t.Fatal("offered a block after completion")
	}
}

func TestRequesterStrictPriority(t *testing.T) {
	// After the first block of a piece is requested, the following requests
	// must complete that piece before starting another (§II-C.1).
	r := newTestRequester(8)
	rng := rand.New(rand.NewSource(2))
	remote := fullRemote(8)
	const peer = PeerID(1)
	first, ok := r.Next(rng, peer, remote)
	if !ok {
		t.Fatal("no first block")
	}
	for b := 1; b < 4; b++ {
		ref, ok := r.Next(rng, peer, remote)
		if !ok {
			t.Fatal("no block")
		}
		if ref.Piece != first.Piece {
			t.Fatalf("strict priority violated: started piece %d with piece %d incomplete", ref.Piece, first.Piece)
		}
		if ref.Block != b {
			t.Fatalf("block order: got %d, want %d", ref.Block, b)
		}
	}
	// Piece fully requested; the next request starts a new piece.
	ref, ok := r.Next(rng, peer, remote)
	if !ok || ref.Piece == first.Piece {
		t.Fatalf("expected a new piece, got %+v ok=%v", ref, ok)
	}
}

func TestRequesterStrictPriorityAcrossPeers(t *testing.T) {
	// A second peer must also be steered to the in-flight piece.
	r := newTestRequester(8)
	rng := rand.New(rand.NewSource(3))
	remote := fullRemote(8)
	first, _ := r.Next(rng, PeerID(1), remote)
	ref, ok := r.Next(rng, PeerID(2), remote)
	if !ok || ref.Piece != first.Piece || ref.Block != 1 {
		t.Fatalf("peer 2 got %+v, want block 1 of piece %d", ref, first.Piece)
	}
}

func TestRequesterInterested(t *testing.T) {
	r := newTestRequester(4)
	remote := bitfield.New(4)
	if r.Interested(remote) {
		t.Fatal("interested in empty remote")
	}
	remote.Set(2)
	if !r.Interested(remote) {
		t.Fatal("not interested in remote with a needed piece")
	}
	rng := rand.New(rand.NewSource(4))
	// Download piece 2 only.
	for !r.Have().Has(2) {
		ref, ok := r.Next(rng, 1, remote)
		if !ok {
			t.Fatal("no block for piece 2")
		}
		if ref.Piece != 2 {
			t.Fatalf("picked piece %d from remote that only has 2", ref.Piece)
		}
		r.OnBlock(1, ref)
	}
	if r.Interested(remote) {
		t.Fatal("still interested after owning the only shared piece")
	}
}

func TestRequesterPendingAndPeerGone(t *testing.T) {
	r := newTestRequester(6)
	rng := rand.New(rand.NewSource(5))
	remote := fullRemote(6)
	var refs []BlockRef
	for i := 0; i < 3; i++ {
		ref, ok := r.Next(rng, 9, remote)
		if !ok {
			t.Fatal("no block")
		}
		refs = append(refs, ref)
	}
	if r.Pending(9) != 3 || len(r.PendingOf(9)) != 3 {
		t.Fatalf("pending = %d", r.Pending(9))
	}
	r.OnPeerGone(9)
	if r.Pending(9) != 0 {
		t.Fatalf("pending after gone = %d", r.Pending(9))
	}
	// The abandoned piece must have been fully rolled back (no received
	// blocks, so its progress is dropped)...
	if r.inflight.Has(refs[0].Piece) {
		t.Fatalf("piece %d still in flight after requeue", refs[0].Piece)
	}
	// ...and a fresh peer gets blocks 0..2 of a single freshly picked piece
	// (strict priority from a clean slate).
	for i := 0; i < 3; i++ {
		ref, ok := r.Next(rng, 10, remote)
		if !ok {
			t.Fatal("no block after requeue")
		}
		if ref.Block != i {
			t.Fatalf("request %d = %+v, want block %d", i, ref, i)
		}
	}
}

func TestRequesterOnRequestTimeout(t *testing.T) {
	r := newTestRequester(6)
	rng := rand.New(rand.NewSource(11))
	remote := fullRemote(6)

	// Time out one of three in-flight requests: the block must become
	// requestable again while the other two stay pending.
	var refs []BlockRef
	for i := 0; i < 3; i++ {
		ref, ok := r.Next(rng, 1, remote)
		if !ok {
			t.Fatal("no block")
		}
		refs = append(refs, ref)
	}
	r.OnRequestTimeout(1, refs[1])
	if r.Pending(1) != 2 {
		t.Fatalf("pending after timeout = %d, want 2", r.Pending(1))
	}
	// Strict priority re-offers the timed-out block (lowest unrequested
	// block of the in-flight piece) — possibly to a different peer.
	ref, ok := r.Next(rng, 2, remote)
	if !ok || ref != refs[1] {
		t.Fatalf("reissue got %+v ok=%v, want %+v", ref, ok, refs[1])
	}

	// Timing out a ref the peer does not hold is a no-op.
	before := r.Pending(1)
	r.OnRequestTimeout(1, BlockRef{Piece: 5, Block: 3})
	r.OnRequestTimeout(99, refs[0])
	if r.Pending(1) != before {
		t.Fatalf("no-op timeout changed pending: %d -> %d", before, r.Pending(1))
	}

	// A piece whose only requests all time out with nothing received must
	// be dropped from the in-flight set entirely (like OnPeerGone).
	r2 := newTestRequester(6)
	ref0, _ := r2.Next(rng, 1, remote)
	r2.OnRequestTimeout(1, ref0)
	if r2.inflight.Has(ref0.Piece) {
		t.Fatalf("piece %d still in flight after its only request timed out", ref0.Piece)
	}
	if r2.Pending(1) != 0 {
		t.Fatalf("pending = %d after only request timed out", r2.Pending(1))
	}

	// A block delivered by another holder must survive a stale timeout:
	// in end game two peers can hold the same ref, and one timing out must
	// not clobber the received state.
	r3 := newTestRequester(6)
	refA, _ := r3.Next(rng, 1, remote)
	r3.OnBlock(1, refA)
	r3.OnRequestTimeout(1, refA) // stale: already delivered and forgotten
	if got := r3.Pending(1); got != 0 {
		t.Fatalf("pending = %d after stale timeout", got)
	}
}

func TestRequesterPeerGoneDropsEmptyProgress(t *testing.T) {
	r := newTestRequester(6)
	rng := rand.New(rand.NewSource(6))
	remote := fullRemote(6)
	ref, _ := r.Next(rng, 1, remote)
	if !r.inflight.Has(ref.Piece) {
		t.Fatal("piece not in flight")
	}
	r.OnPeerGone(1)
	if r.inflight.Has(ref.Piece) {
		t.Fatal("empty piece progress kept after requeue")
	}
	// With one received block the progress must survive.
	ref, _ = r.Next(rng, 2, remote)
	r.OnBlock(2, ref)
	ref2, _ := r.Next(rng, 2, remote)
	r.OnPeerGone(2)
	if !r.inflight.Has(ref2.Piece) {
		t.Fatal("partially received piece dropped")
	}
}

func TestRequesterEndGame(t *testing.T) {
	// 2 pieces x 4 blocks. Peer A is asked for everything but delivers
	// nothing; once all blocks are requested, end game begins and peer B
	// may request the same blocks. Deliveries by B cancel A's pending.
	r := newTestRequester(2)
	rng := rand.New(rand.NewSource(7))
	remote := fullRemote(2)
	for i := 0; i < 8; i++ {
		if _, ok := r.Next(rng, 1, remote); !ok {
			t.Fatalf("block %d not offered", i)
		}
	}
	if r.InEndGame() {
		t.Fatal("end game before exhaustion check")
	}
	// Peer 1 asks again: everything requested -> end game, duplicates to
	// the same peer are refused.
	if _, ok := r.Next(rng, 1, remote); ok {
		t.Fatal("peer 1 got a duplicate of its own pending block")
	}
	if !r.InEndGame() {
		t.Fatal("end game not entered")
	}
	// Peer 2 can duplicate-request all 8 blocks.
	got := map[BlockRef]bool{}
	for i := 0; i < 8; i++ {
		ref, ok := r.Next(rng, 2, remote)
		if !ok {
			t.Fatalf("end game refused block %d for peer 2", i)
		}
		if got[ref] {
			t.Fatalf("end game duplicated %+v to the same peer", ref)
		}
		got[ref] = true
	}
	// Peer 2 delivers one block: peer 1's pending copy must be cancelled.
	var any BlockRef
	for ref := range got {
		any = ref
		break
	}
	_, cancels := r.OnBlock(2, any)
	if len(cancels) != 1 || cancels[0].Peer != 1 || cancels[0].Ref != any {
		t.Fatalf("cancels = %+v", cancels)
	}
	if r.Pending(1) != 7 {
		t.Fatalf("peer 1 pending = %d, want 7", r.Pending(1))
	}
	// Deliver everything else via peer 1; duplicates from peer 2 ignored.
	for _, ref := range r.PendingOf(1) {
		r.OnBlock(1, ref)
	}
	if !r.Complete() {
		t.Fatalf("not complete: %d pieces", r.Downloaded())
	}
}

func TestRequesterDuplicateDeliveryIgnored(t *testing.T) {
	r := newTestRequester(1)
	rng := rand.New(rand.NewSource(8))
	remote := fullRemote(1)
	ref, _ := r.Next(rng, 1, remote)
	done, _ := r.OnBlock(1, ref)
	if done {
		t.Fatal("piece done after 1 of 4 blocks")
	}
	done, cancels := r.OnBlock(1, ref) // duplicate
	if done || cancels != nil {
		t.Fatal("duplicate delivery had effects")
	}
}

func TestRequesterAddHave(t *testing.T) {
	r := newTestRequester(4)
	r.AddHave(0)
	r.AddHave(0)
	if r.Downloaded() != 1 {
		t.Fatalf("downloaded = %d", r.Downloaded())
	}
	rng := rand.New(rand.NewSource(9))
	remote := fullRemote(4)
	for i := 0; i < 12; i++ { // 3 remaining pieces x 4 blocks
		ref, ok := r.Next(rng, 1, remote)
		if !ok {
			t.Fatal("no block")
		}
		if ref.Piece == 0 {
			t.Fatal("requested a piece we already have")
		}
		r.OnBlock(1, ref)
	}
	if !r.Complete() {
		t.Fatal("not complete")
	}
}

func TestRequesterOnPieceFailed(t *testing.T) {
	r := newTestRequester(2)
	rng := rand.New(rand.NewSource(10))
	remote := fullRemote(2)
	// Receive 3 of 4 blocks of some piece.
	var piece int
	for i := 0; i < 3; i++ {
		ref, _ := r.Next(rng, 1, remote)
		piece = ref.Piece
		r.OnBlock(1, ref)
	}
	r.OnPieceFailed(piece)
	if r.inflight.Has(piece) {
		t.Fatal("failed piece still in flight")
	}
	// The piece must be fully downloadable again.
	count := 0
	for !r.Have().Has(piece) {
		ref, ok := r.Next(rng, 1, remote)
		if !ok {
			t.Fatal("no block for failed piece")
		}
		r.OnBlock(1, ref)
		if count++; count > 8 {
			t.Fatal("failed piece not recoverable")
		}
	}
}

func TestRequesterRaggedLastPiece(t *testing.T) {
	// 3 pieces of 4 blocks, last piece 1 short block.
	geo := metainfo.NewGeometry(int64(2*4*metainfo.BlockSize+100), 4*metainfo.BlockSize)
	a := NewAvailability(geo.NumPieces)
	for i := 0; i < geo.NumPieces; i++ {
		a.Inc(i)
	}
	r := NewRequester(geo, &RarestFirst{Avail: a, DisableRandomFirst: true})
	rng := rand.New(rand.NewSource(11))
	remote := fullRemote(geo.NumPieces)
	for !r.Complete() {
		ref, ok := r.Next(rng, 1, remote)
		if !ok {
			t.Fatal("stuck")
		}
		r.OnBlock(1, ref)
	}
	if r.Downloaded() != 3 {
		t.Fatalf("downloaded = %d", r.Downloaded())
	}
}

func TestRequesterPartialRemote(t *testing.T) {
	// The remote has only piece 1; every request must target piece 1 and
	// stop once it's complete.
	r := newTestRequester(4)
	rng := rand.New(rand.NewSource(12))
	remote := bitfield.New(4)
	remote.Set(1)
	for b := 0; b < 4; b++ {
		ref, ok := r.Next(rng, 1, remote)
		if !ok || ref.Piece != 1 {
			t.Fatalf("got %+v ok=%v", ref, ok)
		}
		r.OnBlock(1, ref)
	}
	if _, ok := r.Next(rng, 1, remote); ok {
		t.Fatal("request offered with nothing wanted from this remote")
	}
}

func TestRequesterPieceSuppliers(t *testing.T) {
	// Suppliers survive piece completion (blame attribution after a hash
	// failure) and dedup repeat deliveries from the same peer.
	r := newTestRequester(2)
	rng := rand.New(rand.NewSource(20))
	remote := fullRemote(2)
	first, _ := r.Next(rng, PeerID(1), remote)
	r.OnBlock(1, first)
	for b := 1; b < 4; b++ {
		ref, ok := r.Next(rng, PeerID(2), remote)
		if !ok || ref.Piece != first.Piece {
			t.Fatalf("strict priority: %+v ok=%v", ref, ok)
		}
		r.OnBlock(2, ref)
	}
	got := r.PieceSuppliers(first.Piece)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("suppliers = %v, want [1 2]", got)
	}
	if s := r.PieceSuppliers(1 - first.Piece); s != nil {
		t.Fatalf("untouched piece has suppliers %v", s)
	}
	// The record clears on hash failure so the re-download starts fresh.
	r.OnPieceHashFail(first.Piece)
	if s := r.PieceSuppliers(first.Piece); s != nil {
		t.Fatalf("suppliers survived hash failure: %v", s)
	}
}

func TestRequesterHashFailDuringEndGame(t *testing.T) {
	// A hash failure on the final piece — detected while end game
	// duplicates are still pending on other peers — must revert acceptance
	// exactly once, leave the bookkeeping consistent, and let the
	// re-download complete without double-counting.
	r := newTestRequester(2)
	rng := rand.New(rand.NewSource(21))
	remote := fullRemote(2)

	// Peer 1 downloads piece A entirely, then all but the last block of
	// piece B.
	var refs []BlockRef
	for i := 0; i < 8; i++ {
		ref, ok := r.Next(rng, PeerID(1), remote)
		if !ok {
			t.Fatalf("step %d: nothing offered", i)
		}
		refs = append(refs, ref)
		if i < 7 {
			r.OnBlock(1, ref)
		}
	}
	last := refs[7] // requested on peer 1, not yet delivered

	// Every block is now received or requested: peer 2 asking must flip
	// end game mode and duplicate the missing block.
	dup, ok := r.Next(rng, PeerID(2), remote)
	if !ok || !r.InEndGame() {
		t.Fatalf("no end game entry: ok=%v endgame=%v", ok, r.InEndGame())
	}
	if dup != last {
		t.Fatalf("end game duplicated %+v, want %+v", dup, last)
	}

	// Peer 2 wins the race; its copy completes the piece (cancel goes to
	// peer 1) but the assembled piece fails verification.
	done, cancels := r.OnBlock(2, dup)
	if !done || len(cancels) != 1 || cancels[0].Peer != 1 {
		t.Fatalf("done=%v cancels=%v", done, cancels)
	}
	if !r.Complete() || r.Downloaded() != 2 {
		t.Fatalf("pre-fail state: complete=%v downloaded=%d", r.Complete(), r.Downloaded())
	}
	suppliers := r.PieceSuppliers(last.Piece)
	r.OnPieceHashFail(last.Piece)
	if len(suppliers) == 0 {
		t.Fatal("no suppliers recorded for the failed piece")
	}
	if r.Complete() || r.Downloaded() != 1 {
		t.Fatalf("post-fail state: complete=%v downloaded=%d", r.Complete(), r.Downloaded())
	}
	if err := r.CheckConsistency(); err != nil {
		t.Fatalf("inconsistent after end game hash fail: %v", err)
	}
	// A second revert of the same piece is a no-op, not a double decrement.
	r.OnPieceHashFail(last.Piece)
	if r.Downloaded() != 1 {
		t.Fatalf("double revert changed downloaded to %d", r.Downloaded())
	}

	// Peer 1's stale end game copy arrives after the revert: the piece was
	// re-armed, so this delivery counts toward the fresh attempt at most
	// once and never re-completes the torrent on its own.
	r.OnBlock(1, last)
	if r.Complete() {
		t.Fatal("stale duplicate completed the torrent")
	}

	// Re-download the failed piece; the torrent completes exactly once,
	// with downloaded equal to the piece count.
	for !r.Complete() {
		ref, ok := r.Next(rng, PeerID(2), remote)
		if !ok {
			t.Fatalf("re-download stuck at downloaded=%d", r.Downloaded())
		}
		r.OnBlock(2, ref)
	}
	if r.Downloaded() != 2 {
		t.Fatalf("final downloaded = %d, want 2 (no double count)", r.Downloaded())
	}
	if err := r.CheckConsistency(); err != nil {
		t.Fatalf("inconsistent after re-download: %v", err)
	}
}
