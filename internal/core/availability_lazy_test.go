package core

// Lazy-mode availability (SetLazy, PR 6) property tests: the flat-count +
// histogram implementation must answer every query exactly like the eager
// bucketed mode and the scan-based oracle — only the within-bucket
// iteration order (and hence which equal-rarest piece a PickRarest draw
// lands on) is allowed to differ, which is why lazy mode is opt-in per
// scenario. These reuse the oracle harness from
// availability_oracle_test.go.

import (
	"math/rand"
	"testing"

	"rarestfirst/internal/bitfield"
)

// newLazyAvailability returns a lazy-mode index over n pieces.
func newLazyAvailability(n int) *Availability {
	a := NewAvailability(n)
	a.SetLazy(true)
	return a
}

// TestLazyAvailabilityMatchesOracle drives random Inc/Dec/AddPeer/
// RemovePeer sequences through a lazy index, the scan oracle AND an eager
// twin, comparing all query surfaces after every operation. RemovePeer is
// exercised deliberately: churn-storm departures ride the same lazy path
// (satellite 6), so whole-bitfield removal must stay exact.
func TestLazyAvailabilityMatchesOracle(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 257} {
		rng := rand.New(rand.NewSource(int64(2000 + n)))
		a := newLazyAvailability(n)
		o := newAvailOracle(n)
		eager := NewAvailability(n)
		st := &opState{extra: make([]int, n)}
		checkAgainstOracle(t, a, o)
		for step := 0; step < 600; step++ {
			op := applyRandomOp(rng, a, o, st)
			// Mirror the op onto the eager twin via the oracle-visible
			// deltas: Inc/Dec/AddPeer/RemovePeer all reduce to per-piece
			// count edits, so replaying counts is enough to compare the
			// O(1) query surfaces of the two modes directly.
			for i := 0; i < n; i++ {
				for eager.Count(i) < o.counts[i] {
					eager.Inc(i)
				}
				for eager.Count(i) > o.counts[i] {
					eager.Dec(i)
				}
			}
			if t.Failed() {
				t.Fatalf("n=%d step=%d after %s", n, step, op)
			}
			checkAgainstOracle(t, a, o)
			le, _, _ := a.Stats()
			ee, _, _ := eager.Stats()
			if le != ee || a.MinCount() != eager.MinCount() || a.RarestSetSize() != eager.RarestSetSize() {
				t.Fatalf("n=%d step=%d: lazy (min %d, rarest %d) != eager (min %d, rarest %d)",
					n, step, a.MinCount(), a.RarestSetSize(), eager.MinCount(), eager.RarestSetSize())
			}
		}
	}
}

// TestLazyAvailabilityFlashCrowdChurn replays the churn-heavy
// mass-join/mass-depart sequence in lazy mode — the exact workload
// BatchHaves swarms route through shift, with the cursors dragged across
// their full range in both directions.
func TestLazyAvailabilityFlashCrowdChurn(t *testing.T) {
	const n, crowd = 128, 400
	rng := rand.New(rand.NewSource(7))
	a := newLazyAvailability(n)
	o := newAvailOracle(n)
	var held []*bitfield.Bitfield
	for k := 0; k < crowd; k++ {
		p := 0.05 + 0.9*rng.Float64()
		if k%10 == 0 {
			p = 1.0
		}
		b := randomBitfield(rng, n, p)
		held = append(held, b)
		a.AddPeer(b)
		o.AddPeer(b)
		if k%37 == 0 {
			checkAgainstOracle(t, a, o)
		}
	}
	checkAgainstOracle(t, a, o)
	rng.Shuffle(len(held), func(i, j int) { held[i], held[j] = held[j], held[i] })
	for k, b := range held {
		a.RemovePeer(b)
		o.RemovePeer(b)
		if k%37 == 0 {
			checkAgainstOracle(t, a, o)
		}
	}
	checkAgainstOracle(t, a, o)
	if a.MinCount() != 0 || a.RarestSetSize() != n {
		t.Fatalf("drained swarm: MinCount = %d, RarestSetSize = %d", a.MinCount(), a.RarestSetSize())
	}
}

// TestLazyPickRarestAgainstOracle checks PickRarest's contract in lazy
// mode: the pick must be wanted and minimal-count among wanted pieces —
// the bucket-free count scan must never surface a stale count.
func TestLazyPickRarestAgainstOracle(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(11))
	pick := rand.New(rand.NewSource(12))
	a := newLazyAvailability(n)
	o := newAvailOracle(n)
	st := &opState{extra: make([]int, n)}
	for step := 0; step < 400; step++ {
		applyRandomOp(rng, a, o, st)
		s := &PickState{
			Have:     randomBitfield(rng, n, 0.4),
			InFlight: randomBitfield(rng, n, 0.1),
			Remote:   randomBitfield(rng, n, 0.6),
		}
		got := a.PickRarest(pick, s)
		wantMin, any := 0, false
		for i := 0; i < n; i++ {
			if s.Remote.Has(i) && !s.Have.Has(i) && !s.InFlight.Has(i) {
				if !any || o.counts[i] < wantMin {
					wantMin, any = o.counts[i], true
				}
			}
		}
		if !any {
			if got != -1 {
				t.Fatalf("step %d: picked %d with nothing wanted", step, got)
			}
			continue
		}
		if got < 0 || !s.Remote.Has(got) || s.Have.Has(got) || s.InFlight.Has(got) {
			t.Fatalf("step %d: picked unwanted piece %d", step, got)
		}
		if o.counts[got] != wantMin {
			t.Fatalf("step %d: picked count %d, rarest wanted count is %d", step, o.counts[got], wantMin)
		}
	}
}

// TestSetLazyGuards pins the mode-switch contract: switching with peers
// or counts folded in panics (the histogram would be stranded), and an
// empty index can flip freely.
func TestSetLazyGuards(t *testing.T) {
	a := NewAvailability(8)
	a.SetLazy(true)
	a.SetLazy(false)
	a.SetLazy(true)
	a.Inc(3)
	defer func() {
		if recover() == nil {
			t.Fatal("SetLazy on a non-empty index did not panic")
		}
	}()
	a.SetLazy(false)
}

// FuzzLazyAvailabilityOps is the byte-driven fuzz twin of
// FuzzAvailabilityOps running in lazy mode.
func FuzzLazyAvailabilityOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 130, 7, 7, 9})
	f.Add([]byte{255, 255, 0, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%130 + 1
		a := newLazyAvailability(n)
		o := newAvailOracle(n)
		extra := make([]int, n)
		var held []*bitfield.Bitfield
		rng := rand.New(rand.NewSource(int64(len(data))))
		for _, by := range data[1:] {
			switch by % 4 {
			case 0:
				i := int(by/4) % n
				extra[i]++
				a.Inc(i)
				o.Inc(i)
			case 1:
				i := int(by/4) % n
				if extra[i] > 0 {
					extra[i]--
					a.Dec(i)
					o.Dec(i)
				}
			case 2:
				b := randomBitfield(rng, n, float64(by)/255)
				held = append(held, b)
				a.AddPeer(b)
				o.AddPeer(b)
			case 3:
				if len(held) > 0 {
					k := int(by/4) % len(held)
					b := held[k]
					held[k] = held[len(held)-1]
					held = held[:len(held)-1]
					a.RemovePeer(b)
					o.RemovePeer(b)
				}
			}
		}
		checkAgainstOracle(t, a, o)
	})
}
