package core

import (
	"math/rand"
	"testing"
)

func TestLeecherChokerBoostNewcomers(t *testing.T) {
	// One peer has zero pieces; with BoostNewcomers the optimistic unchoke
	// must always land on it.
	c := &LeecherChoker{BoostNewcomers: true}
	rng := rand.New(rand.NewSource(1))
	peers := mkPeers(10)
	for i := range peers {
		peers[i].RemotePieces = 100
	}
	peers[2].RemotePieces = 0
	peers[2].DownloadRate = 0 // never a regular-unchoke winner
	for round := 0; round < 9; round++ {
		got := asSet(c.Round(float64(round)*ChokeInterval, peers, rng))
		if !got[2] {
			t.Fatalf("round %d: newcomer not optimistically unchoked: %v", round, got)
		}
	}
}

func TestLeecherChokerBoostFallsBackWithoutNewcomers(t *testing.T) {
	c := &LeecherChoker{BoostNewcomers: true}
	rng := rand.New(rand.NewSource(2))
	peers := mkPeers(8)
	for i := range peers {
		peers[i].RemotePieces = 50
	}
	got := c.Round(0, peers, rng)
	if len(got) != 4 {
		t.Fatalf("unchoked %d, want 4", len(got))
	}
}

func TestSeedChokerBoostNewcomers(t *testing.T) {
	c := &SeedChoker{BoostNewcomers: true}
	rng := rand.New(rand.NewSource(3))
	peers := make([]ChokePeer, 10)
	for i := range peers {
		peers[i] = ChokePeer{ID: PeerID(i), Interested: true, RemotePieces: 10}
	}
	peers[7].RemotePieces = 0
	// Round 0 is an SRU round: the newcomer must win the random slot.
	got := asSet(c.Round(0, peers, rng))
	if !got[7] {
		t.Fatalf("SRU did not pick the newcomer: %v", got)
	}
}

func TestPickCandidateEmpty(t *testing.T) {
	if _, ok := pickCandidate(rand.New(rand.NewSource(1)), nil, true); ok {
		t.Fatal("picked from empty candidate set")
	}
}
