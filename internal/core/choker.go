package core

import (
	"math/rand"
)

// ChokeInterval is the length in seconds of one choke round (§II-C.2:
// "every 10 seconds").
const ChokeInterval = 10.0

// RoundsPerOptimistic is how many rounds an optimistic unchoke persists
// ("every 30 seconds, one additional interested remote peer is unchoked at
// random").
const RoundsPerOptimistic = 3

// DefaultUploadSlots is the active-peer-set size including the optimistic
// unchoke (mainline default 4: 3 regular + 1 optimistic).
const DefaultUploadSlots = 4

// ChokePeer is the per-peer view a Choker consults each round. The
// embedding layer fills it from live connection state.
type ChokePeer struct {
	ID PeerID
	// Interested reports whether the remote peer is interested in us.
	Interested bool
	// Unchoked reports whether we currently unchoke the remote peer.
	Unchoked bool
	// DownloadRate is the estimated rate at which the remote uploads to us
	// (leecher-state ordering criterion).
	DownloadRate float64
	// UploadRate is the estimated rate at which we upload to the remote
	// (the OLD seed-state ordering criterion).
	UploadRate float64
	// LastUnchoked is the time this peer last TRANSITIONED from choked to
	// unchoked (the NEW seed-state ordering criterion); it is not refreshed
	// while the peer stays unchoked, which is what ages SKU peers so that
	// each SRU takes the slot of the oldest one. Zero if never unchoked.
	LastUnchoked float64
	// UploadedTo / DownloadedFrom are lifetime byte counters (tit-for-tat
	// baseline criterion).
	UploadedTo     int64
	DownloadedFrom int64
	// RemotePieces is the number of pieces the remote advertises; the
	// newcomer-boost extension uses it to find peers with nothing yet.
	RemotePieces int
}

// pickCandidate selects a random candidate for an optimistic/random
// unchoke. With boostNewcomers, candidates that have no pieces at all are
// preferred: this implements the paper's §VI improvement direction ("the
// time to deliver the first blocks of data should be reduced") by pointing
// the exploratory slot at peers that cannot yet reciprocate.
func pickCandidate(rng *rand.Rand, cands []ChokePeer, boostNewcomers bool) (PeerID, bool) {
	if len(cands) == 0 {
		return 0, false
	}
	if boostNewcomers {
		var empty []ChokePeer
		for _, p := range cands {
			if p.RemotePieces == 0 {
				empty = append(empty, p)
			}
		}
		if len(empty) > 0 {
			return empty[rng.Intn(len(empty))].ID, true
		}
	}
	return cands[rng.Intn(len(cands))].ID, true
}

// Choker decides, once per ChokeInterval, which interested peers to
// unchoke. Round returns the IDs to unchoke; every other peer is choked.
// Implementations keep internal state (optimistic slots, round counters)
// and must be driven at a fixed cadence by the embedding layer. The
// returned slice may share the choker's internal scratch storage: it is
// valid until the next Round call and must not be retained.
type Choker interface {
	Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID
	Name() string
}

// chokeScratch holds the per-round working slices a choker reuses across
// rounds, so a steady-state round allocates nothing.
type chokeScratch struct {
	interested []ChokePeer
	cands      []ChokePeer
	unchoke    []PeerID
}

// filterInterested refills s.interested with the interested peers.
func (s *chokeScratch) filterInterested(peers []ChokePeer) []ChokePeer {
	s.interested = s.interested[:0]
	for _, p := range peers {
		if p.Interested {
			s.interested = append(s.interested, p)
		}
	}
	return s.interested
}

// stableSortPeers sorts peers in place, preserving the order of equal
// elements. Insertion sort: peer lists are capped at the peer-set size,
// and this avoids the reflection swapper sort.SliceStable allocates per
// call. The permutation is identical to sort.SliceStable's for any
// deterministic less, so choke decisions are unchanged.
func stableSortPeers(peers []ChokePeer, less func(a, b *ChokePeer) bool) {
	for i := 1; i < len(peers); i++ {
		p := peers[i]
		j := i - 1
		for j >= 0 && less(&p, &peers[j]) {
			peers[j+1] = peers[j]
			j--
		}
		peers[j+1] = p
	}
}

// LeecherChoker is the leecher-state choke algorithm (§II-C.2): every round
// the 3 fastest interested uploaders are unchoked (regular unchoke, RU) and
// every third round a random choked interested peer becomes the optimistic
// unchoke (OU) for the next three rounds.
type LeecherChoker struct {
	// Slots is the total active peer set size; 0 means DefaultUploadSlots.
	Slots int
	// BoostNewcomers points the optimistic unchoke at piece-less peers
	// when any are present (§VI extension).
	BoostNewcomers bool
	round          int
	// optimistic is the current OU peer, or -1.
	optimistic PeerID
	hasOpt     bool
	scratch    chokeScratch
}

// NewLeecherChoker returns the standard 4-slot leecher choker.
func NewLeecherChoker() *LeecherChoker { return &LeecherChoker{} }

// Name implements Choker.
func (c *LeecherChoker) Name() string { return "choke-leecher" }

// Round implements Choker.
func (c *LeecherChoker) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	slots := c.Slots
	if slots <= 0 {
		slots = DefaultUploadSlots
	}
	regular := slots - 1

	interested := c.scratch.filterInterested(peers)
	// Order by download rate to the local peer, fastest first. Stable
	// tie-break on ID keeps rounds deterministic.
	stableSortPeers(interested, func(a, b *ChokePeer) bool {
		if a.DownloadRate != b.DownloadRate {
			return a.DownloadRate > b.DownloadRate
		}
		return a.ID < b.ID
	})
	unchoke := c.scratch.unchoke[:0]
	for i := 0; i < len(interested) && i < regular; i++ {
		unchoke = append(unchoke, interested[i].ID)
	}

	// Rotate the optimistic unchoke every RoundsPerOptimistic rounds, or
	// when the current one is gone / no longer interested / promoted to a
	// regular slot.
	rotate := c.round%RoundsPerOptimistic == 0
	if !rotate && c.hasOpt {
		if !containsPeer(interested, c.optimistic) || containsID(unchoke, c.optimistic) {
			rotate = true
		}
	}
	if rotate {
		c.hasOpt = false
		cands := c.scratch.cands[:0]
		for _, p := range interested {
			if !containsID(unchoke, p.ID) {
				cands = append(cands, p)
			}
		}
		c.scratch.cands = cands
		if id, ok := pickCandidate(rng, cands, c.BoostNewcomers); ok {
			c.optimistic = id
			c.hasOpt = true
		}
	}
	if c.hasOpt && !containsID(unchoke, c.optimistic) {
		unchoke = append(unchoke, c.optimistic)
	}
	c.round++
	c.scratch.unchoke = unchoke
	return unchoke
}

// SeedChoker is the NEW seed-state algorithm introduced in mainline 4.0.0
// (§II-C.2). Unchoked-and-interested peers are ordered by the time they
// were last unchoked, most recent first. For two 10-second periods the
// first 3 peers are kept and a 4th choked-and-interested peer is unchoked
// at random (seed random unchoke, SRU); every third period the first 4 are
// kept (seed kept unchoked, SKU). Peers therefore rotate through the
// active set and each gets the same expected service time.
type SeedChoker struct {
	// Slots is the active set size; 0 means DefaultUploadSlots.
	Slots int
	// BoostNewcomers points the seed random unchoke at piece-less peers
	// when any are present (§VI extension).
	BoostNewcomers bool
	round          int
	scratch        chokeScratch
	kept           []ChokePeer
}

// NewSeedChoker returns the standard 4-slot new-algorithm seed choker.
func NewSeedChoker() *SeedChoker { return &SeedChoker{} }

// Name implements Choker.
func (c *SeedChoker) Name() string { return "choke-seed-new" }

// Round implements Choker.
func (c *SeedChoker) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	slots := c.Slots
	if slots <= 0 {
		slots = DefaultUploadSlots
	}
	defer func() { c.round++ }()

	interested := c.scratch.filterInterested(peers)
	// Candidates currently unchoked, most recently unchoked first.
	kept := c.kept[:0]
	for _, p := range interested {
		if p.Unchoked {
			kept = append(kept, p)
		}
	}
	c.kept = kept
	stableSortPeers(kept, func(a, b *ChokePeer) bool {
		if a.LastUnchoked != b.LastUnchoked {
			return a.LastUnchoked > b.LastUnchoked
		}
		return a.ID < b.ID
	})

	thirdPeriod := c.round%RoundsPerOptimistic == RoundsPerOptimistic-1
	unchoke := c.scratch.unchoke[:0]
	keepN := slots - 1
	if thirdPeriod {
		keepN = slots
	}
	for i := 0; i < len(kept) && i < keepN; i++ {
		unchoke = append(unchoke, kept[i].ID)
	}
	if !thirdPeriod {
		// SRU: one choked-and-interested peer chosen at random.
		cands := c.scratch.cands[:0]
		for _, p := range interested {
			if !p.Unchoked && !containsID(unchoke, p.ID) {
				cands = append(cands, p)
			}
		}
		c.scratch.cands = cands
		if id, ok := pickCandidate(rng, cands, c.BoostNewcomers); ok {
			unchoke = append(unchoke, id)
		}
	}
	// Fill spare slots (fewer unchoked peers than keepN) with random
	// choked interested peers so the seed never idles with demand present.
	for len(unchoke) < slots {
		cands := c.scratch.cands[:0]
		for _, p := range interested {
			if !containsID(unchoke, p.ID) {
				cands = append(cands, p)
			}
		}
		c.scratch.cands = cands
		id, ok := pickCandidate(rng, cands, c.BoostNewcomers)
		if !ok {
			break
		}
		unchoke = append(unchoke, id)
	}
	c.scratch.unchoke = unchoke
	return unchoke
}

// OldSeedChoker is the pre-4.0.0 seed-state algorithm: identical to the
// leecher algorithm except peers are ordered by our upload rate to them,
// so fast downloaders (including fast free riders) monopolise the seed.
// Kept as the baseline for the A2 ablation.
type OldSeedChoker struct {
	Slots      int
	round      int
	optimistic PeerID
	hasOpt     bool
	scratch    chokeScratch
	candIDs    []PeerID
}

// NewOldSeedChoker returns the standard 4-slot old-algorithm seed choker.
func NewOldSeedChoker() *OldSeedChoker { return &OldSeedChoker{} }

// Name implements Choker.
func (c *OldSeedChoker) Name() string { return "choke-seed-old" }

// Round implements Choker.
func (c *OldSeedChoker) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	slots := c.Slots
	if slots <= 0 {
		slots = DefaultUploadSlots
	}
	regular := slots - 1
	interested := c.scratch.filterInterested(peers)
	stableSortPeers(interested, func(a, b *ChokePeer) bool {
		if a.UploadRate != b.UploadRate {
			return a.UploadRate > b.UploadRate
		}
		return a.ID < b.ID
	})
	unchoke := c.scratch.unchoke[:0]
	for i := 0; i < len(interested) && i < regular; i++ {
		unchoke = append(unchoke, interested[i].ID)
	}
	rotate := c.round%RoundsPerOptimistic == 0
	if !rotate && c.hasOpt && (!containsPeer(interested, c.optimistic) || containsID(unchoke, c.optimistic)) {
		rotate = true
	}
	if rotate {
		c.hasOpt = false
		cands := c.candIDs[:0]
		for _, p := range interested {
			if !containsID(unchoke, p.ID) {
				cands = append(cands, p.ID)
			}
		}
		c.candIDs = cands
		if len(cands) > 0 {
			c.optimistic = cands[rng.Intn(len(cands))]
			c.hasOpt = true
		}
	}
	if c.hasOpt && !containsID(unchoke, c.optimistic) {
		unchoke = append(unchoke, c.optimistic)
	}
	c.round++
	c.scratch.unchoke = unchoke
	return unchoke
}

// TitForTatChoker is the bit-level tit-for-tat baseline from the literature
// the paper argues against ([5], [10], [15]): a peer refuses to upload to
// any peer whose byte deficit (uploaded-to minus downloaded-from) exceeds
// DeficitLimit. Within the allowed set the fastest uploaders win the slots.
// Excess capacity is therefore stranded — the behaviour the A3 ablation
// demonstrates.
type TitForTatChoker struct {
	Slots int
	// DeficitLimit is the maximum bytes of unreciprocated upload tolerated
	// before a peer is refused service.
	DeficitLimit int64
	scratch      chokeScratch
}

// NewTitForTatChoker returns a 4-slot tit-for-tat choker with the given
// deficit threshold in bytes.
func NewTitForTatChoker(limit int64) *TitForTatChoker {
	return &TitForTatChoker{DeficitLimit: limit}
}

// Name implements Choker.
func (c *TitForTatChoker) Name() string { return "tit-for-tat" }

// Round implements Choker.
func (c *TitForTatChoker) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	slots := c.Slots
	if slots <= 0 {
		slots = DefaultUploadSlots
	}
	allowed := c.scratch.cands[:0]
	for _, p := range peers {
		if p.Interested && p.UploadedTo-p.DownloadedFrom <= c.DeficitLimit {
			allowed = append(allowed, p)
		}
	}
	c.scratch.cands = allowed
	stableSortPeers(allowed, func(a, b *ChokePeer) bool {
		if a.DownloadRate != b.DownloadRate {
			return a.DownloadRate > b.DownloadRate
		}
		return a.ID < b.ID
	})
	unchoke := c.scratch.unchoke[:0]
	for i := 0; i < len(allowed) && i < slots; i++ {
		unchoke = append(unchoke, allowed[i].ID)
	}
	c.scratch.unchoke = unchoke
	return unchoke
}

// NeverUnchoke is the free-rider "choker": it uploads to nobody.
type NeverUnchoke struct{}

// Name implements Choker.
func (NeverUnchoke) Name() string { return "free-rider" }

// Round implements Choker.
func (NeverUnchoke) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	return nil
}

func containsID(ids []PeerID, id PeerID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func containsPeer(peers []ChokePeer, id PeerID) bool {
	for _, p := range peers {
		if p.ID == id {
			return true
		}
	}
	return false
}
