package core

import (
	"math/rand"
	"sort"
)

// ChokeInterval is the length in seconds of one choke round (§II-C.2:
// "every 10 seconds").
const ChokeInterval = 10.0

// RoundsPerOptimistic is how many rounds an optimistic unchoke persists
// ("every 30 seconds, one additional interested remote peer is unchoked at
// random").
const RoundsPerOptimistic = 3

// DefaultUploadSlots is the active-peer-set size including the optimistic
// unchoke (mainline default 4: 3 regular + 1 optimistic).
const DefaultUploadSlots = 4

// ChokePeer is the per-peer view a Choker consults each round. The
// embedding layer fills it from live connection state.
type ChokePeer struct {
	ID PeerID
	// Interested reports whether the remote peer is interested in us.
	Interested bool
	// Unchoked reports whether we currently unchoke the remote peer.
	Unchoked bool
	// DownloadRate is the estimated rate at which the remote uploads to us
	// (leecher-state ordering criterion).
	DownloadRate float64
	// UploadRate is the estimated rate at which we upload to the remote
	// (the OLD seed-state ordering criterion).
	UploadRate float64
	// LastUnchoked is the time this peer last TRANSITIONED from choked to
	// unchoked (the NEW seed-state ordering criterion); it is not refreshed
	// while the peer stays unchoked, which is what ages SKU peers so that
	// each SRU takes the slot of the oldest one. Zero if never unchoked.
	LastUnchoked float64
	// UploadedTo / DownloadedFrom are lifetime byte counters (tit-for-tat
	// baseline criterion).
	UploadedTo     int64
	DownloadedFrom int64
	// RemotePieces is the number of pieces the remote advertises; the
	// newcomer-boost extension uses it to find peers with nothing yet.
	RemotePieces int
}

// pickCandidate selects a random candidate for an optimistic/random
// unchoke. With boostNewcomers, candidates that have no pieces at all are
// preferred: this implements the paper's §VI improvement direction ("the
// time to deliver the first blocks of data should be reduced") by pointing
// the exploratory slot at peers that cannot yet reciprocate.
func pickCandidate(rng *rand.Rand, cands []ChokePeer, boostNewcomers bool) (PeerID, bool) {
	if len(cands) == 0 {
		return 0, false
	}
	if boostNewcomers {
		var empty []ChokePeer
		for _, p := range cands {
			if p.RemotePieces == 0 {
				empty = append(empty, p)
			}
		}
		if len(empty) > 0 {
			return empty[rng.Intn(len(empty))].ID, true
		}
	}
	return cands[rng.Intn(len(cands))].ID, true
}

// Choker decides, once per ChokeInterval, which interested peers to
// unchoke. Round returns the IDs to unchoke; every other peer is choked.
// Implementations keep internal state (optimistic slots, round counters)
// and must be driven at a fixed cadence by the embedding layer.
type Choker interface {
	Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID
	Name() string
}

// LeecherChoker is the leecher-state choke algorithm (§II-C.2): every round
// the 3 fastest interested uploaders are unchoked (regular unchoke, RU) and
// every third round a random choked interested peer becomes the optimistic
// unchoke (OU) for the next three rounds.
type LeecherChoker struct {
	// Slots is the total active peer set size; 0 means DefaultUploadSlots.
	Slots int
	// BoostNewcomers points the optimistic unchoke at piece-less peers
	// when any are present (§VI extension).
	BoostNewcomers bool
	round          int
	// optimistic is the current OU peer, or -1.
	optimistic PeerID
	hasOpt     bool
}

// NewLeecherChoker returns the standard 4-slot leecher choker.
func NewLeecherChoker() *LeecherChoker { return &LeecherChoker{} }

// Name implements Choker.
func (c *LeecherChoker) Name() string { return "choke-leecher" }

// Round implements Choker.
func (c *LeecherChoker) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	slots := c.Slots
	if slots <= 0 {
		slots = DefaultUploadSlots
	}
	regular := slots - 1

	interested := filterInterested(peers)
	// Order by download rate to the local peer, fastest first. Stable
	// tie-break on ID keeps rounds deterministic.
	sort.SliceStable(interested, func(i, j int) bool {
		if interested[i].DownloadRate != interested[j].DownloadRate {
			return interested[i].DownloadRate > interested[j].DownloadRate
		}
		return interested[i].ID < interested[j].ID
	})
	unchoke := make([]PeerID, 0, slots)
	for i := 0; i < len(interested) && i < regular; i++ {
		unchoke = append(unchoke, interested[i].ID)
	}

	// Rotate the optimistic unchoke every RoundsPerOptimistic rounds, or
	// when the current one is gone / no longer interested / promoted to a
	// regular slot.
	rotate := c.round%RoundsPerOptimistic == 0
	if !rotate && c.hasOpt {
		if !containsPeer(interested, c.optimistic) || containsID(unchoke, c.optimistic) {
			rotate = true
		}
	}
	if rotate {
		c.hasOpt = false
		cands := make([]ChokePeer, 0, len(interested))
		for _, p := range interested {
			if !containsID(unchoke, p.ID) {
				cands = append(cands, p)
			}
		}
		if id, ok := pickCandidate(rng, cands, c.BoostNewcomers); ok {
			c.optimistic = id
			c.hasOpt = true
		}
	}
	if c.hasOpt && !containsID(unchoke, c.optimistic) {
		unchoke = append(unchoke, c.optimistic)
	}
	c.round++
	return unchoke
}

// SeedChoker is the NEW seed-state algorithm introduced in mainline 4.0.0
// (§II-C.2). Unchoked-and-interested peers are ordered by the time they
// were last unchoked, most recent first. For two 10-second periods the
// first 3 peers are kept and a 4th choked-and-interested peer is unchoked
// at random (seed random unchoke, SRU); every third period the first 4 are
// kept (seed kept unchoked, SKU). Peers therefore rotate through the
// active set and each gets the same expected service time.
type SeedChoker struct {
	// Slots is the active set size; 0 means DefaultUploadSlots.
	Slots int
	// BoostNewcomers points the seed random unchoke at piece-less peers
	// when any are present (§VI extension).
	BoostNewcomers bool
	round          int
}

// NewSeedChoker returns the standard 4-slot new-algorithm seed choker.
func NewSeedChoker() *SeedChoker { return &SeedChoker{} }

// Name implements Choker.
func (c *SeedChoker) Name() string { return "choke-seed-new" }

// Round implements Choker.
func (c *SeedChoker) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	slots := c.Slots
	if slots <= 0 {
		slots = DefaultUploadSlots
	}
	defer func() { c.round++ }()

	interested := filterInterested(peers)
	// Candidates currently unchoked, most recently unchoked first.
	var kept []ChokePeer
	for _, p := range interested {
		if p.Unchoked {
			kept = append(kept, p)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		if kept[i].LastUnchoked != kept[j].LastUnchoked {
			return kept[i].LastUnchoked > kept[j].LastUnchoked
		}
		return kept[i].ID < kept[j].ID
	})

	thirdPeriod := c.round%RoundsPerOptimistic == RoundsPerOptimistic-1
	unchoke := make([]PeerID, 0, slots)
	keepN := slots - 1
	if thirdPeriod {
		keepN = slots
	}
	for i := 0; i < len(kept) && i < keepN; i++ {
		unchoke = append(unchoke, kept[i].ID)
	}
	if !thirdPeriod {
		// SRU: one choked-and-interested peer chosen at random.
		cands := make([]ChokePeer, 0, len(interested))
		for _, p := range interested {
			if !p.Unchoked && !containsID(unchoke, p.ID) {
				cands = append(cands, p)
			}
		}
		if id, ok := pickCandidate(rng, cands, c.BoostNewcomers); ok {
			unchoke = append(unchoke, id)
		}
	}
	// Fill spare slots (fewer unchoked peers than keepN) with random
	// choked interested peers so the seed never idles with demand present.
	for len(unchoke) < slots {
		cands := make([]ChokePeer, 0, len(interested))
		for _, p := range interested {
			if !containsID(unchoke, p.ID) {
				cands = append(cands, p)
			}
		}
		id, ok := pickCandidate(rng, cands, c.BoostNewcomers)
		if !ok {
			break
		}
		unchoke = append(unchoke, id)
	}
	return unchoke
}

// OldSeedChoker is the pre-4.0.0 seed-state algorithm: identical to the
// leecher algorithm except peers are ordered by our upload rate to them,
// so fast downloaders (including fast free riders) monopolise the seed.
// Kept as the baseline for the A2 ablation.
type OldSeedChoker struct {
	Slots      int
	round      int
	optimistic PeerID
	hasOpt     bool
}

// NewOldSeedChoker returns the standard 4-slot old-algorithm seed choker.
func NewOldSeedChoker() *OldSeedChoker { return &OldSeedChoker{} }

// Name implements Choker.
func (c *OldSeedChoker) Name() string { return "choke-seed-old" }

// Round implements Choker.
func (c *OldSeedChoker) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	slots := c.Slots
	if slots <= 0 {
		slots = DefaultUploadSlots
	}
	regular := slots - 1
	interested := filterInterested(peers)
	sort.SliceStable(interested, func(i, j int) bool {
		if interested[i].UploadRate != interested[j].UploadRate {
			return interested[i].UploadRate > interested[j].UploadRate
		}
		return interested[i].ID < interested[j].ID
	})
	unchoke := make([]PeerID, 0, slots)
	for i := 0; i < len(interested) && i < regular; i++ {
		unchoke = append(unchoke, interested[i].ID)
	}
	rotate := c.round%RoundsPerOptimistic == 0
	if !rotate && c.hasOpt && (!containsPeer(interested, c.optimistic) || containsID(unchoke, c.optimistic)) {
		rotate = true
	}
	if rotate {
		c.hasOpt = false
		cands := make([]PeerID, 0, len(interested))
		for _, p := range interested {
			if !containsID(unchoke, p.ID) {
				cands = append(cands, p.ID)
			}
		}
		if len(cands) > 0 {
			c.optimistic = cands[rng.Intn(len(cands))]
			c.hasOpt = true
		}
	}
	if c.hasOpt && !containsID(unchoke, c.optimistic) {
		unchoke = append(unchoke, c.optimistic)
	}
	c.round++
	return unchoke
}

// TitForTatChoker is the bit-level tit-for-tat baseline from the literature
// the paper argues against ([5], [10], [15]): a peer refuses to upload to
// any peer whose byte deficit (uploaded-to minus downloaded-from) exceeds
// DeficitLimit. Within the allowed set the fastest uploaders win the slots.
// Excess capacity is therefore stranded — the behaviour the A3 ablation
// demonstrates.
type TitForTatChoker struct {
	Slots int
	// DeficitLimit is the maximum bytes of unreciprocated upload tolerated
	// before a peer is refused service.
	DeficitLimit int64
}

// NewTitForTatChoker returns a 4-slot tit-for-tat choker with the given
// deficit threshold in bytes.
func NewTitForTatChoker(limit int64) *TitForTatChoker {
	return &TitForTatChoker{DeficitLimit: limit}
}

// Name implements Choker.
func (c *TitForTatChoker) Name() string { return "tit-for-tat" }

// Round implements Choker.
func (c *TitForTatChoker) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	slots := c.Slots
	if slots <= 0 {
		slots = DefaultUploadSlots
	}
	allowed := make([]ChokePeer, 0, len(peers))
	for _, p := range peers {
		if p.Interested && p.UploadedTo-p.DownloadedFrom <= c.DeficitLimit {
			allowed = append(allowed, p)
		}
	}
	sort.SliceStable(allowed, func(i, j int) bool {
		if allowed[i].DownloadRate != allowed[j].DownloadRate {
			return allowed[i].DownloadRate > allowed[j].DownloadRate
		}
		return allowed[i].ID < allowed[j].ID
	})
	unchoke := make([]PeerID, 0, slots)
	for i := 0; i < len(allowed) && i < slots; i++ {
		unchoke = append(unchoke, allowed[i].ID)
	}
	return unchoke
}

// NeverUnchoke is the free-rider "choker": it uploads to nobody.
type NeverUnchoke struct{}

// Name implements Choker.
func (NeverUnchoke) Name() string { return "free-rider" }

// Round implements Choker.
func (NeverUnchoke) Round(now float64, peers []ChokePeer, rng *rand.Rand) []PeerID {
	return nil
}

func filterInterested(peers []ChokePeer) []ChokePeer {
	out := make([]ChokePeer, 0, len(peers))
	for _, p := range peers {
		if p.Interested {
			out = append(out, p)
		}
	}
	return out
}

func containsID(ids []PeerID, id PeerID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func containsPeer(peers []ChokePeer, id PeerID) bool {
	for _, p := range peers {
		if p.ID == id {
			return true
		}
	}
	return false
}
