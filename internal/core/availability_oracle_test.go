package core

// The scan-based reference oracle for Availability: the pre-bucketing
// implementation (a flat count array, every query a full O(numPieces)
// scan), kept as the ground truth the bucketed/cursored implementation is
// property-tested against. If the two ever disagree the bucket structure
// — not the oracle — is wrong.

import (
	"math/rand"
	"sort"
	"testing"

	"rarestfirst/internal/bitfield"
)

// availOracle mirrors Availability's semantics with brute-force scans.
type availOracle struct {
	counts []int
	peers  int
}

func newAvailOracle(n int) *availOracle {
	return &availOracle{counts: make([]int, n)}
}

func (o *availOracle) Inc(i int) { o.counts[i]++ }
func (o *availOracle) Dec(i int) {
	if o.counts[i] == 0 {
		panic("oracle: negative count")
	}
	o.counts[i]--
}

func (o *availOracle) AddPeer(b *bitfield.Bitfield) {
	o.peers++
	b.Range(func(i int) bool { o.Inc(i); return true })
}

func (o *availOracle) RemovePeer(b *bitfield.Bitfield) {
	o.peers--
	b.Range(func(i int) bool { o.Dec(i); return true })
}

func (o *availOracle) MinCount() int {
	if len(o.counts) == 0 {
		return 0
	}
	min := o.counts[0]
	for _, c := range o.counts {
		if c < min {
			min = c
		}
	}
	return min
}

func (o *availOracle) RarestSet() []int {
	min := o.MinCount()
	var out []int
	for i, c := range o.counts {
		if c == min {
			out = append(out, i)
		}
	}
	return out
}

func (o *availOracle) Stats() (int, float64, int) {
	n := len(o.counts)
	if n == 0 {
		return 0, 0, 0
	}
	min, max, sum := o.counts[0], o.counts[0], 0
	for _, c := range o.counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		sum += c
	}
	return min, float64(sum) / float64(n), max
}

// checkAgainstOracle compares every query surface of a and o, and checks
// a's internal invariants (bucket membership, cursors, running sum).
func checkAgainstOracle(t *testing.T, a *Availability, o *availOracle) {
	t.Helper()
	n := len(o.counts)
	if a.NumPieces() != n {
		t.Fatalf("NumPieces = %d, want %d", a.NumPieces(), n)
	}
	if a.Peers() != o.peers {
		t.Fatalf("Peers = %d, want %d", a.Peers(), o.peers)
	}
	for i := 0; i < n; i++ {
		if a.Count(i) != o.counts[i] {
			t.Fatalf("Count(%d) = %d, want %d", i, a.Count(i), o.counts[i])
		}
	}
	if got, want := a.MinCount(), o.MinCount(); got != want {
		t.Fatalf("MinCount = %d, want %d", got, want)
	}
	wantRarest := o.RarestSet()
	if got, want := a.RarestSetSize(), len(wantRarest); n > 0 && got != want {
		t.Fatalf("RarestSetSize = %d, want %d", got, want)
	}
	gotRarest := a.RarestSet(nil)
	sort.Ints(gotRarest)
	if n > 0 {
		if len(gotRarest) != len(wantRarest) {
			t.Fatalf("RarestSet = %v, want %v", gotRarest, wantRarest)
		}
		for i := range gotRarest {
			if gotRarest[i] != wantRarest[i] {
				t.Fatalf("RarestSet = %v, want %v", gotRarest, wantRarest)
			}
		}
	}
	amin, amean, amax := a.Stats()
	omin, omean, omax := o.Stats()
	if amin != omin || amean != omean || amax != omax {
		t.Fatalf("Stats = (%d, %v, %d), want (%d, %v, %d)", amin, amean, amax, omin, omean, omax)
	}

	// Internal invariants. Lazy mode has no bucket/pos arrays at all: its
	// only structure is the count array, with min/max/sum/rarest-count
	// recomputed by refresh — and the query comparisons above already
	// checked those four against the oracle's scans. Verify only that no
	// buckets ever materialize; refreshed cursors must also match a fresh
	// scan exactly (not merely be stale-but-consistent).
	if a.lazy {
		if a.bucket != nil || a.pos != nil {
			t.Fatalf("lazy index materialized buckets: %v %v", a.bucket, a.pos)
		}
		if n > 0 {
			a.refresh()
			omin, _, omax := o.Stats()
			if a.minC != omin || a.maxC != omax {
				t.Fatalf("refreshed cursors (%d, %d), want (%d, %d)", a.minC, a.maxC, omin, omax)
			}
			nMin := 0
			for _, c := range o.counts {
				if c == omin {
					nMin++
				}
			}
			if a.nMin != nMin {
				t.Fatalf("refreshed nMin = %d, want %d", a.nMin, nMin)
			}
		}
		return
	}
	total := 0
	for c, b := range a.bucket {
		for j, i := range b {
			if a.counts[i] != c {
				t.Fatalf("piece %d in bucket %d but counts[%d] = %d", i, c, i, a.counts[i])
			}
			if a.pos[i] != j {
				t.Fatalf("piece %d pos = %d, want %d", i, a.pos[i], j)
			}
		}
		total += len(b)
	}
	if total != n {
		t.Fatalf("buckets hold %d pieces, want %d", total, n)
	}
	if n > 0 {
		if len(a.bucket[a.minC]) == 0 {
			t.Fatalf("min cursor %d sits on an empty bucket", a.minC)
		}
		for c := 0; c < a.minC; c++ {
			if len(a.bucket[c]) != 0 {
				t.Fatalf("bucket %d non-empty below min cursor %d", c, a.minC)
			}
		}
		if len(a.bucket[a.maxC]) == 0 && a.maxC != 0 {
			t.Fatalf("max cursor %d sits on an empty bucket", a.maxC)
		}
		for c := a.maxC + 1; c < len(a.bucket); c++ {
			if len(a.bucket[c]) != 0 {
				t.Fatalf("bucket %d non-empty above max cursor %d", c, a.maxC)
			}
		}
	}
}

// randomBitfield returns a bitfield over n pieces with each bit set with
// probability p.
func randomBitfield(rng *rand.Rand, n int, p float64) *bitfield.Bitfield {
	b := bitfield.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i)
		}
	}
	return b
}

// opState pairs the resident peer bitfields with the per-piece credit of
// standalone Incs (HAVE messages), so Dec only ever undoes an Inc and
// RemovePeer only ever undoes an AddPeer — the pairing every caller in
// the repo maintains.
type opState struct {
	held  []*bitfield.Bitfield
	extra []int
}

// applyRandomOp mutates both implementations identically and returns a
// human-readable name for failure messages.
func applyRandomOp(rng *rand.Rand, a *Availability, o *availOracle, st *opState) string {
	n := len(o.counts)
	switch op := rng.Intn(4); {
	case op == 0 && n > 0: // Inc (a HAVE message)
		i := rng.Intn(n)
		st.extra[i]++
		a.Inc(i)
		o.Inc(i)
		return "Inc"
	case op == 1 && n > 0: // Dec a piece with standalone-Inc credit, if any
		start := rng.Intn(n)
		for k := 0; k < n; k++ {
			i := (start + k) % n
			if st.extra[i] > 0 {
				st.extra[i]--
				a.Dec(i)
				o.Dec(i)
				return "Dec"
			}
		}
		return "Dec-noop"
	case op == 2: // AddPeer
		b := randomBitfield(rng, n, rng.Float64())
		st.held = append(st.held, b)
		a.AddPeer(b)
		o.AddPeer(b)
		return "AddPeer"
	default: // RemovePeer
		if len(st.held) == 0 {
			return "RemovePeer-noop"
		}
		k := rng.Intn(len(st.held))
		b := st.held[k]
		st.held[k] = st.held[len(st.held)-1]
		st.held = st.held[:len(st.held)-1]
		a.RemovePeer(b)
		o.RemovePeer(b)
		return "RemovePeer"
	}
}

// TestAvailabilityMatchesOracle drives random Inc/Dec/AddPeer/RemovePeer
// sequences over several sizes and compares every query against the
// scan-based oracle after each operation.
func TestAvailabilityMatchesOracle(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 257} {
		rng := rand.New(rand.NewSource(int64(1000 + n)))
		a := NewAvailability(n)
		o := newAvailOracle(n)
		st := &opState{extra: make([]int, n)}
		checkAgainstOracle(t, a, o)
		for step := 0; step < 600; step++ {
			op := applyRandomOp(rng, a, o, st)
			if t.Failed() {
				t.Fatalf("n=%d step=%d after %s", n, step, op)
			}
			checkAgainstOracle(t, a, o)
		}
	}
}

// TestAvailabilityFlashCrowdChurn is the churn-heavy sequence: a flash
// crowd of peers joins (mass AddPeer), then departs en masse in random
// order — the arrival/departure pattern that drags the cursors across
// their full range in both directions.
func TestAvailabilityFlashCrowdChurn(t *testing.T) {
	const n, crowd = 128, 400
	rng := rand.New(rand.NewSource(7))
	a := NewAvailability(n)
	o := newAvailOracle(n)
	var held []*bitfield.Bitfield
	for k := 0; k < crowd; k++ {
		p := 0.05 + 0.9*rng.Float64()
		if k%10 == 0 {
			// Every tenth peer is a seed: full bitfields stress the max
			// cursor and keep MinCount pinned once every piece exists.
			p = 1.0
		}
		b := randomBitfield(rng, n, p)
		held = append(held, b)
		a.AddPeer(b)
		o.AddPeer(b)
		if k%37 == 0 {
			checkAgainstOracle(t, a, o)
		}
	}
	checkAgainstOracle(t, a, o)
	rng.Shuffle(len(held), func(i, j int) { held[i], held[j] = held[j], held[i] })
	for k, b := range held {
		a.RemovePeer(b)
		o.RemovePeer(b)
		if k%37 == 0 {
			checkAgainstOracle(t, a, o)
		}
	}
	checkAgainstOracle(t, a, o)
	if a.MinCount() != 0 || a.RarestSetSize() != n {
		t.Fatalf("drained swarm: MinCount = %d, RarestSetSize = %d", a.MinCount(), a.RarestSetSize())
	}
}

// TestPickRarestAgainstOracle checks PickRarest's contract against the
// oracle: the returned piece must be wanted and have the minimum copy
// count among all wanted pieces, and -1 is returned exactly when nothing
// is wanted.
func TestPickRarestAgainstOracle(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(11))
	pick := rand.New(rand.NewSource(12))
	a := NewAvailability(n)
	o := newAvailOracle(n)
	st := &opState{extra: make([]int, n)}
	for step := 0; step < 400; step++ {
		applyRandomOp(rng, a, o, st)
		s := &PickState{
			Have:     randomBitfield(rng, n, 0.4),
			InFlight: randomBitfield(rng, n, 0.1),
			Remote:   randomBitfield(rng, n, 0.6),
		}
		got := a.PickRarest(pick, s)
		wantMin, any := 0, false
		for i := 0; i < n; i++ {
			if s.Remote.Has(i) && !s.Have.Has(i) && !s.InFlight.Has(i) {
				if !any || o.counts[i] < wantMin {
					wantMin, any = o.counts[i], true
				}
			}
		}
		if !any {
			if got != -1 {
				t.Fatalf("step %d: picked %d with nothing wanted", step, got)
			}
			continue
		}
		if got < 0 || !s.Remote.Has(got) || s.Have.Has(got) || s.InFlight.Has(got) {
			t.Fatalf("step %d: picked unwanted piece %d", step, got)
		}
		if o.counts[got] != wantMin {
			t.Fatalf("step %d: picked count %d, rarest wanted count is %d", step, o.counts[got], wantMin)
		}
	}
}

// FuzzAvailabilityOps feeds byte-driven op sequences through both
// implementations and fails on any divergence or invariant break.
func FuzzAvailabilityOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 130, 7, 7, 9})
	f.Add([]byte{255, 255, 0, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%130 + 1
		a := NewAvailability(n)
		o := newAvailOracle(n)
		extra := make([]int, n)
		var held []*bitfield.Bitfield
		rng := rand.New(rand.NewSource(int64(len(data))))
		for _, by := range data[1:] {
			switch by % 4 {
			case 0:
				i := int(by/4) % n
				extra[i]++
				a.Inc(i)
				o.Inc(i)
			case 1:
				i := int(by/4) % n
				if extra[i] > 0 {
					extra[i]--
					a.Dec(i)
					o.Dec(i)
				}
			case 2:
				b := randomBitfield(rng, n, float64(by)/255)
				held = append(held, b)
				a.AddPeer(b)
				o.AddPeer(b)
			case 3:
				if len(held) > 0 {
					k := int(by/4) % len(held)
					b := held[k]
					held[k] = held[len(held)-1]
					held = held[:len(held)-1]
					a.RemovePeer(b)
					o.RemovePeer(b)
				}
			}
		}
		checkAgainstOracle(t, a, o)
	})
}
