package core

import (
	"fmt"
	"math/rand"
	"sort"

	"rarestfirst/internal/bitfield"
	"rarestfirst/internal/metainfo"
)

// PeerID identifies a remote peer within a Requester or Choker. IDs are
// assigned by the embedding layer (simulator or real client).
type PeerID int32

// BlockRef names one block of one piece.
type BlockRef struct {
	Piece int
	Block int
}

// PeerBlock pairs a pending block with the peer it was requested from; it
// is the unit of end-game cancel messages.
type PeerBlock struct {
	Peer PeerID
	Ref  BlockRef
}

// pieceProgress tracks block state for a piece being downloaded.
type pieceProgress struct {
	requested []bool
	received  []bool
	nReceived int
	nRequest  int
}

// Requester turns a piece-level Picker into block-level request decisions,
// implementing the two block-level policies of §II-C.1:
//
//   - strict priority: once a block of a piece is requested, remaining
//     blocks of that piece are requested before any new piece is started;
//   - end game mode: once every block is received or requested, missing
//     blocks are requested from every peer that has them, with cancels sent
//     when a copy arrives.
//
// The Requester owns the local Have/InFlight bitfields and per-peer pending
// sets. It is not safe for concurrent use; embed it in a single goroutine
// or lock externally.
type Requester struct {
	geo      metainfo.Geometry
	picker   Picker
	have     *bitfield.Bitfield
	inflight *bitfield.Bitfield
	progress map[int]*pieceProgress
	// order lists in-flight pieces oldest first so strict-priority scans
	// are deterministic (map iteration order must not leak into runs).
	order   []int
	pending map[PeerID]map[BlockRef]struct{}
	holders map[BlockRef]map[PeerID]struct{} // end-game duplicate tracking
	// suppliers records, per piece, which peers delivered counted blocks.
	// Unlike progress it survives piece completion, so the client can
	// attribute blame when the assembled bytes fail verification.
	suppliers map[int][]PeerID
	endgame   bool
	// downloaded counts pieces completed; drives random-first.
	downloaded int
	// pick is the PickState scratch reused across Next calls so the
	// picker invocation does not allocate.
	pick PickState
}

// NewRequester returns a Requester over the given geometry using picker.
func NewRequester(geo metainfo.Geometry, picker Picker) *Requester {
	return &Requester{
		geo:       geo,
		picker:    picker,
		have:      bitfield.New(geo.NumPieces),
		inflight:  bitfield.New(geo.NumPieces),
		progress:  map[int]*pieceProgress{},
		pending:   map[PeerID]map[BlockRef]struct{}{},
		holders:   map[BlockRef]map[PeerID]struct{}{},
		suppliers: map[int][]PeerID{},
	}
}

// Have returns the local completed-piece bitfield (live view; do not mutate).
func (r *Requester) Have() *bitfield.Bitfield { return r.have }

// Downloaded returns the number of completed pieces.
func (r *Requester) Downloaded() int { return r.downloaded }

// Complete reports whether every piece is done.
func (r *Requester) Complete() bool { return r.have.Complete() }

// InEndGame reports whether end game mode has been entered.
func (r *Requester) InEndGame() bool { return r.endgame }

// Pending returns the number of outstanding requests to peer.
func (r *Requester) Pending(peer PeerID) int { return len(r.pending[peer]) }

// AddHave marks piece i as already owned without downloading (initial seed
// bootstrap). It must not be called after requests start for that piece.
func (r *Requester) AddHave(i int) {
	if r.have.Set(i) {
		r.downloaded++
	}
}

// RestoreFromBitfield bulk-marks every piece set in bf as already owned:
// the resume path for a restarted peer, which re-enters the swarm wanting
// only what it lacks. The bitfield must match the torrent geometry and the
// Requester must be fresh — no requests started, no end game entered — so
// restored pieces can never collide with in-flight block state. The caller
// is responsible for having re-verified the pieces it claims (the client
// re-hashes on load; see internal/client resume).
func (r *Requester) RestoreFromBitfield(bf *bitfield.Bitfield) error {
	if bf == nil {
		return nil
	}
	if bf.Len() != r.geo.NumPieces {
		return fmt.Errorf("core: restore bitfield covers %d pieces, torrent has %d", bf.Len(), r.geo.NumPieces)
	}
	if len(r.progress) != 0 || len(r.pending) != 0 || r.endgame {
		return fmt.Errorf("core: RestoreFromBitfield called after requests started")
	}
	bf.Range(func(i int) bool {
		r.AddHave(i)
		return true
	})
	return nil
}

// Interested reports whether the local peer should be interested in a
// remote advertising the given bitfield: the remote has a piece we lack.
func (r *Requester) Interested(remote *bitfield.Bitfield) bool {
	return r.have.AnyMissingIn(remote)
}

// Next chooses the next block to request from peer, which advertises
// remote. It records the request as pending and returns ok=false when there
// is nothing to ask this peer for.
func (r *Requester) Next(rng *rand.Rand, peer PeerID, remote *bitfield.Bitfield) (ref BlockRef, ok bool) {
	if r.have.Complete() {
		return BlockRef{}, false
	}
	if r.endgame {
		return r.nextEndGame(rng, peer, remote)
	}
	// Strict priority: finish partially requested pieces first, oldest
	// piece first.
	for _, i := range r.order {
		if !remote.Has(i) {
			continue
		}
		p := r.progress[i]
		if b := firstUnrequested(p); b >= 0 {
			return r.commit(peer, BlockRef{Piece: i, Block: b}), true
		}
	}
	// Start a new piece via the piece selection strategy.
	r.pick = PickState{Have: r.have, InFlight: r.inflight, Remote: remote, Downloaded: r.downloaded}
	piece := r.picker.Pick(rng, &r.pick)
	if piece >= 0 {
		r.startPiece(piece)
		return r.commit(peer, BlockRef{Piece: piece, Block: 0}), true
	}
	// Nothing unrequested anywhere: if blocks are still missing, enter end
	// game mode ("this mode starts once a peer has requested all blocks").
	if r.allBlocksRequested() {
		r.endgame = true
		return r.nextEndGame(rng, peer, remote)
	}
	return BlockRef{}, false
}

// nextEndGame picks a missing block the remote has that this peer is not
// already fetching, uniformly at random. Iteration is in ascending piece
// order so the reservoir draw is deterministic given the rng.
func (r *Requester) nextEndGame(rng *rand.Rand, peer PeerID, remote *bitfield.Bitfield) (BlockRef, bool) {
	chosen, seen := BlockRef{}, 0
	r.have.Missing(func(i int) bool {
		if !remote.Has(i) {
			return true
		}
		if p := r.progress[i]; p != nil {
			for b := range p.received {
				if p.received[b] {
					continue
				}
				ref := BlockRef{Piece: i, Block: b}
				if _, dup := r.pending[peer][ref]; dup {
					continue
				}
				seen++
				if rng.Intn(seen) == 0 {
					chosen = ref
				}
			}
			return true
		}
		// Piece never started (possible after a requeue).
		ref := BlockRef{Piece: i, Block: 0}
		if _, dup := r.pending[peer][ref]; !dup {
			seen++
			if rng.Intn(seen) == 0 {
				chosen = ref
			}
		}
		return true
	})
	if seen == 0 {
		return BlockRef{}, false
	}
	if r.progress[chosen.Piece] == nil {
		r.startPiece(chosen.Piece)
	}
	return r.commit(peer, chosen), true
}

// startPiece allocates block state for piece i and marks it in flight.
func (r *Requester) startPiece(i int) {
	nb := r.geo.BlocksIn(i)
	r.progress[i] = &pieceProgress{requested: make([]bool, nb), received: make([]bool, nb)}
	r.inflight.Set(i)
	r.order = append(r.order, i)
	delete(r.suppliers, i)
}

// dropPiece removes piece i from the in-flight bookkeeping.
func (r *Requester) dropPiece(i int) {
	delete(r.progress, i)
	r.inflight.Clear(i)
	for k, p := range r.order {
		if p == i {
			r.order = append(r.order[:k], r.order[k+1:]...)
			break
		}
	}
}

func (r *Requester) commit(peer PeerID, ref BlockRef) BlockRef {
	p := r.progress[ref.Piece]
	if !p.requested[ref.Block] {
		p.requested[ref.Block] = true
		p.nRequest++
	}
	if r.pending[peer] == nil {
		r.pending[peer] = map[BlockRef]struct{}{}
	}
	r.pending[peer][ref] = struct{}{}
	if r.holders[ref] == nil {
		r.holders[ref] = map[PeerID]struct{}{}
	}
	r.holders[ref][peer] = struct{}{}
	return ref
}

func firstUnrequested(p *pieceProgress) int {
	for b, req := range p.requested {
		if !req {
			return b
		}
	}
	return -1
}

func (r *Requester) allBlocksRequested() bool {
	ok := true
	r.have.Missing(func(i int) bool {
		p := r.progress[i]
		if p == nil || firstUnrequested(p) >= 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// OnBlock records receipt of ref from peer. It returns whether the piece
// completed with this block and, in end game mode, the pending duplicate
// requests that should now be cancelled.
func (r *Requester) OnBlock(peer PeerID, ref BlockRef) (pieceDone bool, cancels []PeerBlock) {
	p := r.progress[ref.Piece]
	if p == nil || p.received[ref.Block] {
		// Duplicate or stale delivery (possible in end game); ignore.
		r.forget(peer, ref)
		return false, nil
	}
	p.received[ref.Block] = true
	p.nReceived++
	r.noteSupplier(peer, ref.Piece)
	r.forget(peer, ref)
	// Cancel every other pending copy of this block, in peer order so the
	// caller's reaction sequence is deterministic.
	for other := range r.holders[ref] {
		cancels = append(cancels, PeerBlock{Peer: other, Ref: ref})
		delete(r.pending[other], ref)
	}
	sort.Slice(cancels, func(i, j int) bool { return cancels[i].Peer < cancels[j].Peer })
	delete(r.holders, ref)
	if p.nReceived == len(p.received) {
		r.dropPiece(ref.Piece)
		r.have.Set(ref.Piece)
		r.downloaded++
		return true, cancels
	}
	return false, cancels
}

// OnPieceHashFail reverts acceptance of piece i after its assembled bytes
// failed SHA-1 verification: the piece becomes missing and downloadable
// again (real client path; the simulator transfers symbolically and never
// corrupts).
func (r *Requester) OnPieceHashFail(i int) {
	if !r.have.Has(i) {
		return
	}
	r.have.Clear(i)
	r.downloaded--
	r.OnPieceFailed(i)
}

// noteSupplier records that peer delivered a counted block of piece i.
// The list is small (a piece usually has one supplier; end game adds a
// few), so a linear dedup scan beats a map.
func (r *Requester) noteSupplier(peer PeerID, i int) {
	for _, p := range r.suppliers[i] {
		if p == peer {
			return
		}
	}
	r.suppliers[i] = append(r.suppliers[i], peer)
}

// PieceSuppliers returns the peers that delivered counted blocks of piece
// i, sorted by id. Call it before OnPieceHashFail — the failure path
// clears the record so the re-download starts with a clean slate.
func (r *Requester) PieceSuppliers(i int) []PeerID {
	src := r.suppliers[i]
	if len(src) == 0 {
		return nil
	}
	out := make([]PeerID, len(src))
	copy(out, src)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// OnPieceFailed resets all block state for piece i after a hash failure so
// it will be downloaded again (real client path).
func (r *Requester) OnPieceFailed(i int) {
	if r.have.Has(i) {
		panic(fmt.Sprintf("core: piece %d failed after acceptance", i))
	}
	r.dropPiece(i)
	delete(r.suppliers, i)
	for peer, refs := range r.pending {
		for ref := range refs {
			if ref.Piece == i {
				delete(refs, ref)
				r.dropHolder(peer, ref)
			}
		}
	}
}

// OnPeerGone requeues every block pending on peer (the peer choked us,
// disconnected, or left the peer set). Blocks with no other pending copy
// become requestable again.
func (r *Requester) OnPeerGone(peer PeerID) {
	for ref := range r.pending[peer] {
		r.dropHolder(peer, ref)
		if len(r.holders[ref]) == 0 {
			delete(r.holders, ref)
			if p := r.progress[ref.Piece]; p != nil && !p.received[ref.Block] && p.requested[ref.Block] {
				p.requested[ref.Block] = false
				p.nRequest--
				// Drop empty progress so the picker may choose afresh.
				if p.nReceived == 0 && p.nRequest == 0 {
					r.dropPiece(ref.Piece)
				}
			}
		}
	}
	delete(r.pending, peer)
}

// OnRequestTimeout requeues one block pending on peer that the peer never
// delivered (the client's request-timeout scanner). Unlike OnPeerGone the
// peer keeps its other pending blocks; like it, a block with no remaining
// pending copy becomes requestable again. A ref not actually pending on
// peer (late delivery raced the scan) is a no-op.
func (r *Requester) OnRequestTimeout(peer PeerID, ref BlockRef) {
	refs := r.pending[peer]
	if _, ok := refs[ref]; !ok {
		return
	}
	delete(refs, ref)
	r.dropHolder(peer, ref)
	if len(r.holders[ref]) == 0 {
		if p := r.progress[ref.Piece]; p != nil && !p.received[ref.Block] && p.requested[ref.Block] {
			p.requested[ref.Block] = false
			p.nRequest--
			if p.nReceived == 0 && p.nRequest == 0 {
				r.dropPiece(ref.Piece)
			}
		}
	}
}

// PendingOf returns the blocks currently pending on peer (for tests and
// instrumentation).
func (r *Requester) PendingOf(peer PeerID) []BlockRef {
	refs := make([]BlockRef, 0, len(r.pending[peer]))
	for ref := range r.pending[peer] {
		refs = append(refs, ref)
	}
	return refs
}

func (r *Requester) forget(peer PeerID, ref BlockRef) {
	if refs := r.pending[peer]; refs != nil {
		delete(refs, ref)
	}
	r.dropHolder(peer, ref)
}

func (r *Requester) dropHolder(peer PeerID, ref BlockRef) {
	if hs := r.holders[ref]; hs != nil {
		delete(hs, peer)
		if len(hs) == 0 {
			delete(r.holders, ref)
		}
	}
}

// CheckConsistency cross-checks the Requester's redundant bookkeeping
// (bitfields, progress maps, order list, pending sets, holder sets) and
// returns the first violation found, or nil. It is a pure read intended
// for the swarm invariant checker and tests; it never mutates state.
func (r *Requester) CheckConsistency() error {
	if got := r.have.Count(); got != r.downloaded {
		return fmt.Errorf("core: downloaded=%d but have.Count()=%d", r.downloaded, got)
	}
	for i := 0; i < r.geo.NumPieces; i++ {
		inProg := r.progress[i] != nil
		if r.have.Has(i) && r.inflight.Has(i) {
			return fmt.Errorf("core: piece %d both have and inflight", i)
		}
		if inProg != r.inflight.Has(i) {
			return fmt.Errorf("core: piece %d progress=%v inflight=%v", i, inProg, r.inflight.Has(i))
		}
	}
	if len(r.order) != len(r.progress) {
		return fmt.Errorf("core: order len %d != progress len %d", len(r.order), len(r.progress))
	}
	for _, i := range r.order {
		p := r.progress[i]
		if p == nil {
			return fmt.Errorf("core: order lists piece %d with no progress", i)
		}
		nReq, nRecv := 0, 0
		for b := range p.requested {
			if p.requested[b] {
				nReq++
			}
			if p.received[b] {
				nRecv++
			}
		}
		if nReq != p.nRequest || nRecv != p.nReceived {
			return fmt.Errorf("core: piece %d counters req=%d/%d recv=%d/%d", i, p.nRequest, nReq, p.nReceived, nRecv)
		}
	}
	for peer, refs := range r.pending {
		for ref := range refs {
			if _, ok := r.holders[ref][peer]; !ok {
				return fmt.Errorf("core: pending %v on peer %d missing from holders", ref, peer)
			}
			p := r.progress[ref.Piece]
			if p == nil {
				return fmt.Errorf("core: pending %v on peer %d for piece with no progress", ref, peer)
			}
			if !p.requested[ref.Block] || p.received[ref.Block] {
				return fmt.Errorf("core: pending %v on peer %d but requested=%v received=%v",
					ref, peer, p.requested[ref.Block], p.received[ref.Block])
			}
		}
	}
	for ref, hs := range r.holders {
		if len(hs) == 0 {
			return fmt.Errorf("core: empty holder set for %v", ref)
		}
		for peer := range hs {
			if _, ok := r.pending[peer][ref]; !ok {
				return fmt.Errorf("core: holder %d of %v missing from pending", peer, ref)
			}
		}
	}
	return nil
}
