package core

import (
	"math/rand"
	"testing"

	"rarestfirst/internal/bitfield"
)

// restoreSubset builds a bitfield over n pieces holding each piece with
// probability frac (deterministic per rng).
func restoreSubset(rng *rand.Rand, n int, frac float64) *bitfield.Bitfield {
	bf := bitfield.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < frac {
			bf.Set(i)
		}
	}
	return bf
}

func TestRestoreFromBitfieldBasics(t *testing.T) {
	r := newTestRequester(8)
	bf := bitfield.New(8)
	bf.Set(1)
	bf.Set(5)
	if err := r.RestoreFromBitfield(bf); err != nil {
		t.Fatal(err)
	}
	if r.Downloaded() != 2 || !r.Have().Has(1) || !r.Have().Has(5) {
		t.Fatalf("downloaded=%d have=%v", r.Downloaded(), r.Have())
	}
	// Restored pieces have no suppliers: they were not downloaded from
	// anyone this session, so there is nobody to blame on a hash failure.
	if s := r.PieceSuppliers(1); s != nil {
		t.Fatalf("restored piece has suppliers %v", s)
	}
	// Nil restore is a no-op.
	if err := r.RestoreFromBitfield(nil); err != nil {
		t.Fatal(err)
	}
	if r.Downloaded() != 2 {
		t.Fatalf("nil restore changed downloaded to %d", r.Downloaded())
	}
}

func TestRestoreFromBitfieldErrors(t *testing.T) {
	// Geometry mismatch.
	r := newTestRequester(8)
	if err := r.RestoreFromBitfield(bitfield.New(9)); err == nil {
		t.Fatal("mismatched bitfield length accepted")
	}
	// Restore after requests started: the requester's pending/progress
	// bookkeeping would be inconsistent with the injected haves.
	r2 := newTestRequester(8)
	rng := rand.New(rand.NewSource(1))
	if _, ok := r2.Next(rng, PeerID(1), fullRemote(8)); !ok {
		t.Fatal("no block")
	}
	bf := bitfield.New(8)
	bf.Set(0)
	if err := r2.RestoreFromBitfield(bf); err == nil {
		t.Fatal("restore after requests started accepted")
	}
}

// TestRestoreFromBitfieldVsFreshOracle is the resume correctness property:
// for many random retained sets, a restored requester must finish the
// download requesting exactly the missing pieces' blocks — no block of a
// restored piece is ever requested, no block of a missing piece is
// requested twice outside end game, and the end state matches a fresh
// download's (complete, consistent bookkeeping).
func TestRestoreFromBitfieldVsFreshOracle(t *testing.T) {
	const pieces = 16
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		retained := restoreSubset(rng, pieces, rng.Float64())

		r := newTestRequester(pieces)
		if err := r.RestoreFromBitfield(retained); err != nil {
			t.Fatal(err)
		}
		// Fresh-download oracle over the same missing set: the restored
		// requester must request exactly the blocks the oracle would.
		wantBlocks := 0
		for i := 0; i < pieces; i++ {
			if !retained.Has(i) {
				wantBlocks += 4
			}
		}

		remote := fullRemote(pieces)
		const peer = PeerID(7)
		seen := map[BlockRef]bool{}
		steps := 0
		for !r.Complete() {
			ref, ok := r.Next(rng, peer, remote)
			if !ok {
				t.Fatalf("seed %d: stuck at %d/%d pieces", seed, r.Downloaded(), pieces)
			}
			if retained.Has(ref.Piece) {
				t.Fatalf("seed %d: requested block of restored piece %d", seed, ref.Piece)
			}
			if seen[ref] {
				t.Fatalf("seed %d: duplicate request %+v to one peer", seed, ref)
			}
			seen[ref] = true
			r.OnBlock(peer, ref)
			if steps++; steps > wantBlocks {
				t.Fatalf("seed %d: %d requests for %d missing blocks", seed, steps, wantBlocks)
			}
		}
		if steps != wantBlocks {
			t.Fatalf("seed %d: %d requests, oracle wants %d", seed, steps, wantBlocks)
		}
		if r.Downloaded() != pieces || !r.Have().Complete() {
			t.Fatalf("seed %d: downloaded=%d", seed, r.Downloaded())
		}
		if err := r.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: inconsistent after resume download: %v", seed, err)
		}
	}
}

// TestRestoreFromBitfieldEndGame: a resume that leaves one piece missing
// must still enter end game cleanly — duplicates to a second peer, cancel
// on delivery — exactly as a fresh download at the same occupancy would.
func TestRestoreFromBitfieldEndGame(t *testing.T) {
	const pieces = 6
	r := newTestRequester(pieces)
	retained := bitfield.New(pieces)
	for i := 0; i < pieces-1; i++ {
		retained.Set(i)
	}
	if err := r.RestoreFromBitfield(retained); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	remote := fullRemote(pieces)
	// Peer 1 requests all 4 blocks of the one missing piece, delivers none.
	for i := 0; i < 4; i++ {
		if _, ok := r.Next(rng, PeerID(1), remote); !ok {
			t.Fatalf("block %d not offered", i)
		}
	}
	// Peer 2 asking flips end game and duplicates peer 1's pending blocks.
	got := map[BlockRef]bool{}
	for i := 0; i < 4; i++ {
		ref, ok := r.Next(rng, PeerID(2), remote)
		if !ok {
			t.Fatalf("end game refused block %d", i)
		}
		got[ref] = true
	}
	if !r.InEndGame() || len(got) != 4 {
		t.Fatalf("endgame=%v dups=%d", r.InEndGame(), len(got))
	}
	// Peer 2 delivers everything; each delivery cancels peer 1's copy.
	for ref := range got {
		_, cancels := r.OnBlock(2, ref)
		if len(cancels) != 1 || cancels[0].Peer != 1 {
			t.Fatalf("cancels = %+v", cancels)
		}
	}
	if !r.Complete() || r.Downloaded() != pieces {
		t.Fatalf("complete=%v downloaded=%d", r.Complete(), r.Downloaded())
	}
	// Provenance: the re-downloaded piece blames peer 2; restored pieces
	// blame nobody.
	missing := pieces - 1
	if s := r.PieceSuppliers(missing); len(s) != 1 || s[0] != 2 {
		t.Fatalf("suppliers of re-downloaded piece = %v", s)
	}
	if s := r.PieceSuppliers(0); s != nil {
		t.Fatalf("restored piece has suppliers %v", s)
	}
	if err := r.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreFromBitfieldFullResume: restoring a complete bitfield yields
// a complete requester that offers nothing.
func TestRestoreFromBitfieldFullResume(t *testing.T) {
	const pieces = 4
	r := newTestRequester(pieces)
	full := bitfield.New(pieces)
	full.SetAll()
	if err := r.RestoreFromBitfield(full); err != nil {
		t.Fatal(err)
	}
	if !r.Complete() {
		t.Fatal("full restore not complete")
	}
	rng := rand.New(rand.NewSource(3))
	if _, ok := r.Next(rng, PeerID(1), fullRemote(pieces)); ok {
		t.Fatal("complete requester offered a block")
	}
}
