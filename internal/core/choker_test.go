package core

import (
	"math/rand"
	"testing"
)

// mkPeers builds n interested peers with DownloadRate = 1000*(id+1), so
// higher IDs upload faster to us.
func mkPeers(n int) []ChokePeer {
	peers := make([]ChokePeer, n)
	for i := range peers {
		peers[i] = ChokePeer{ID: PeerID(i), Interested: true, DownloadRate: float64(1000 * (i + 1))}
	}
	return peers
}

func asSet(ids []PeerID) map[PeerID]bool {
	m := map[PeerID]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestLeecherChokerUnchokesFastestThree(t *testing.T) {
	c := NewLeecherChoker()
	rng := rand.New(rand.NewSource(1))
	peers := mkPeers(10)
	got := asSet(c.Round(0, peers, rng))
	// The three fastest (9, 8, 7) must be unchoked; plus one optimistic.
	for _, id := range []PeerID{9, 8, 7} {
		if !got[id] {
			t.Fatalf("fast peer %d not unchoked: %v", id, got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("unchoked %d peers, want 4", len(got))
	}
}

func TestLeecherChokerIgnoresUninterested(t *testing.T) {
	c := NewLeecherChoker()
	rng := rand.New(rand.NewSource(2))
	peers := mkPeers(6)
	peers[5].Interested = false // fastest peer not interested
	got := asSet(c.Round(0, peers, rng))
	if got[5] {
		t.Fatal("unchoked an uninterested peer")
	}
	for _, id := range []PeerID{4, 3, 2} {
		if !got[id] {
			t.Fatalf("peer %d missing: %v", id, got)
		}
	}
}

func TestLeecherChokerOptimisticRotation(t *testing.T) {
	// The optimistic unchoke must change only every third round (30 s) and
	// must always come from outside the regular set.
	c := NewLeecherChoker()
	rng := rand.New(rand.NewSource(3))
	peers := mkPeers(20)
	regular := map[PeerID]bool{19: true, 18: true, 17: true}
	var optHistory []PeerID
	for round := 0; round < 30; round++ {
		got := c.Round(float64(round)*ChokeInterval, peers, rng)
		var opt PeerID = -1
		for _, id := range got {
			if !regular[id] {
				if opt != -1 {
					t.Fatalf("round %d: two optimistic peers", round)
				}
				opt = id
			}
		}
		if opt == -1 {
			t.Fatalf("round %d: no optimistic unchoke", round)
		}
		optHistory = append(optHistory, opt)
	}
	// Within each 3-round window the optimistic peer is constant.
	for i := 0; i+2 < len(optHistory); i += 3 {
		if optHistory[i] != optHistory[i+1] || optHistory[i] != optHistory[i+2] {
			t.Fatalf("optimistic changed mid-window: %v", optHistory[i:i+3])
		}
	}
	// Across windows it must rotate eventually (with 17 candidates the
	// probability of 10 identical draws is negligible).
	distinct := map[PeerID]bool{}
	for _, id := range optHistory {
		distinct[id] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("optimistic unchoke never rotated: %v", optHistory)
	}
}

func TestLeecherChokerFewPeers(t *testing.T) {
	c := NewLeecherChoker()
	rng := rand.New(rand.NewSource(4))
	got := c.Round(0, mkPeers(2), rng)
	if len(got) != 2 {
		t.Fatalf("unchoked %d of 2 peers", len(got))
	}
	if got2 := c.Round(10, nil, rng); len(got2) != 0 {
		t.Fatalf("unchoked %v with no peers", got2)
	}
}

func TestLeecherChokerSlotsOverride(t *testing.T) {
	c := &LeecherChoker{Slots: 6}
	rng := rand.New(rand.NewSource(5))
	got := c.Round(0, mkPeers(12), rng)
	if len(got) != 6 {
		t.Fatalf("unchoked %d, want 6", len(got))
	}
}

func TestSeedChokerCycle(t *testing.T) {
	// Rounds 0,1 (mod 3): keep 3 most-recently-unchoked + 1 random new.
	// Round 2 (mod 3): keep 4.
	c := NewSeedChoker()
	rng := rand.New(rand.NewSource(6))
	peers := make([]ChokePeer, 8)
	for i := range peers {
		peers[i] = ChokePeer{ID: PeerID(i), Interested: true}
	}
	// Mark 0..3 unchoked with increasing recency.
	for i := 0; i <= 3; i++ {
		peers[i].Unchoked = true
		peers[i].LastUnchoked = float64(10 * i)
	}
	got := asSet(c.Round(40, peers, rng))
	// Most recently unchoked are 3, 2, 1; kept. Peer 0 (oldest) loses its
	// slot to a random choked peer (SRU) — exactly the paper's "each new
	// SRU peer taking an unchoke slot off the oldest SKU peer".
	for _, id := range []PeerID{3, 2, 1} {
		if !got[id] {
			t.Fatalf("SKU peer %d dropped: %v", id, got)
		}
	}
	if got[0] {
		t.Fatalf("oldest SKU peer kept in SRU round: %v", got)
	}
	if len(got) != 4 {
		t.Fatalf("unchoked %d, want 4", len(got))
	}
	var sru PeerID = -1
	for id := range got {
		if id > 3 {
			sru = id
		}
	}
	if sru == -1 {
		t.Fatalf("no SRU peer: %v", got)
	}

	// Second round (round index 1): same structure.
	for i := range peers {
		peers[i].Unchoked = got[peers[i].ID]
		if got[peers[i].ID] {
			peers[i].LastUnchoked = 40
		}
	}
	peers[int(sru)].LastUnchoked = 40
	got2 := asSet(c.Round(50, peers, rng))
	if len(got2) != 4 {
		t.Fatalf("round 2: unchoked %d", len(got2))
	}

	// Third round (round index 2): keep the 4 first, no SRU.
	for i := range peers {
		peers[i].Unchoked = got2[peers[i].ID]
		if got2[peers[i].ID] {
			peers[i].LastUnchoked = 50
		}
	}
	got3 := asSet(c.Round(60, peers, rng))
	for id := range got2 {
		if !got3[id] {
			t.Fatalf("third period replaced %d: %v -> %v", id, got2, got3)
		}
	}
}

func TestSeedChokerEqualServiceOverTime(t *testing.T) {
	// Drive the seed choker for many rounds over 12 always-interested
	// peers and count unchoke-rounds per peer: the spread must be small
	// (the new algorithm's equal-service property, Fig 11).
	c := NewSeedChoker()
	rng := rand.New(rand.NewSource(7))
	n := 12
	peers := make([]ChokePeer, n)
	for i := range peers {
		peers[i] = ChokePeer{ID: PeerID(i), Interested: true}
	}
	service := make([]int, n)
	for round := 0; round < 600; round++ {
		now := float64(round) * ChokeInterval
		got := asSet(c.Round(now, peers, rng))
		for i := range peers {
			un := got[peers[i].ID]
			if un {
				service[i]++
				if !peers[i].Unchoked {
					// Stamp only the choked->unchoked transition.
					peers[i].LastUnchoked = now
				}
			}
			peers[i].Unchoked = un
		}
	}
	minS, maxS := service[0], service[0]
	for _, s := range service {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if minS == 0 {
		t.Fatalf("a peer was never served: %v", service)
	}
	if float64(maxS) > 2.5*float64(minS) {
		t.Fatalf("service too unequal: min=%d max=%d (%v)", minS, maxS, service)
	}
}

func TestOldSeedChokerFavorsFastDownloaders(t *testing.T) {
	// The old algorithm orders by upload rate from the local peer: a fast
	// peer (e.g. a fast free rider) keeps its slot forever.
	c := NewOldSeedChoker()
	rng := rand.New(rand.NewSource(8))
	n := 10
	peers := make([]ChokePeer, n)
	for i := range peers {
		peers[i] = ChokePeer{ID: PeerID(i), Interested: true, UploadRate: float64(i * 1000)}
	}
	kept := 0
	for round := 0; round < 60; round++ {
		got := asSet(c.Round(float64(round)*ChokeInterval, peers, rng))
		if got[9] && got[8] && got[7] {
			kept++
		}
	}
	if kept != 60 {
		t.Fatalf("fast peers held slots in %d/60 rounds, want 60", kept)
	}
}

func TestTitForTatRefusesDebtors(t *testing.T) {
	c := NewTitForTatChoker(1000)
	rng := rand.New(rand.NewSource(9))
	peers := []ChokePeer{
		{ID: 0, Interested: true, UploadedTo: 5000, DownloadedFrom: 100, DownloadRate: 9e9}, // debtor
		{ID: 1, Interested: true, UploadedTo: 500, DownloadedFrom: 0},                       // within limit
		{ID: 2, Interested: true, UploadedTo: 0, DownloadedFrom: 3000},                      // creditor
		{ID: 3, Interested: false, UploadedTo: 0, DownloadedFrom: 0},                        // not interested
	}
	got := asSet(c.Round(0, peers, rng))
	if got[0] {
		t.Fatal("debtor unchoked despite deficit")
	}
	if !got[1] || !got[2] {
		t.Fatalf("compliant peers not unchoked: %v", got)
	}
	if got[3] {
		t.Fatal("uninterested peer unchoked")
	}
}

func TestNeverUnchoke(t *testing.T) {
	if got := (NeverUnchoke{}).Round(0, mkPeers(5), rand.New(rand.NewSource(1))); len(got) != 0 {
		t.Fatalf("free rider unchoked %v", got)
	}
}

func TestChokerNames(t *testing.T) {
	for want, c := range map[string]Choker{
		"choke-leecher":  NewLeecherChoker(),
		"choke-seed-new": NewSeedChoker(),
		"choke-seed-old": NewOldSeedChoker(),
		"tit-for-tat":    NewTitForTatChoker(0),
		"free-rider":     NeverUnchoke{},
	} {
		if c.Name() != want {
			t.Errorf("Name = %q, want %q", c.Name(), want)
		}
	}
}

func TestLeecherChokerDeterministicGivenSeed(t *testing.T) {
	run := func() [][]PeerID {
		c := NewLeecherChoker()
		rng := rand.New(rand.NewSource(42))
		var out [][]PeerID
		for round := 0; round < 12; round++ {
			out = append(out, c.Round(float64(round)*ChokeInterval, mkPeers(15), rng))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("round %d differs", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("round %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}
