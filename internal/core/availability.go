// Package core implements the paper's two algorithms — the rarest-first
// piece selection strategy and the choke peer selection strategy — together
// with the baseline strategies the paper discusses (random piece selection,
// the old seed-state choke algorithm, bit-level tit-for-tat).
//
// The same implementations drive both the discrete-event swarm simulator
// (internal/swarm) and the real TCP client (internal/client), so the code
// under evaluation exists exactly once.
package core

import (
	"fmt"
	"math/bits"
	"math/rand"

	"rarestfirst/internal/bitfield"
)

// Availability tracks, for every piece, the number of copies present in the
// local peer set ("each peer maintains a list of the number of copies of
// each piece in its peer set", §II-C.1). Pieces are bucketed by copy count
// so that rarest-first picking can scan from the lowest count upward; all
// updates are O(1), and cursors over the lowest/highest non-empty bucket
// plus a running count sum make MinCount, RarestSetSize, RarestSet and
// Stats O(1) too (amortized for the cursor maintenance) — at 10k-peer
// scale, copy counts reach the peer-set cap and the old scan from bucket 0
// walked ~80 empty buckets per query and per pick.
// The index has two maintenance modes. The default (eager) mode keeps the
// buckets exact on every update via move — the mode the golden-pinned
// scenarios run, whose within-bucket iteration order is part of their
// reproducibility contract. SetLazy switches to flat-count maintenance:
// Inc/Dec touch only the count array (one increment, nothing else — the
// HAVE fan-out hot path is ~one cache line per call), and every derived
// view is recomputed on demand. The min/max/rarest-count cursors refresh
// with one scan the next time a stats query runs after updates, and
// PickRarest/RarestSet answer with direct scans over the flat counts in
// ascending piece order — exactly the order an eager index freshly built
// from the counts would hold, so the two modes' query contracts coincide.
// Batched-HAVE swarms use lazy mode to make the per-HAVE hot path,
// whole-bitfield RemovePeer churn storms and the per-peer memory
// footprint (no bucket/pos arrays) cheap; stats queries there are
// per-sample-instant, thousands of updates apart.
type Availability struct {
	counts []int   // copy count per piece
	bucket [][]int // bucket[c] = piece indices with count c (unordered)
	pos    []int   // position of piece i inside bucket[counts[i]]
	peers  int     // number of contributing bitfields
	minC   int     // lowest non-empty bucket (0 when empty/no pieces)
	maxC   int     // highest non-empty bucket (0 when empty/no pieces)
	sum    int64   // sum of all copy counts

	// Lazy-mode state (bucket and pos are nil in lazy mode): statsDirty
	// marks minC/maxC/sum/nMin as behind the counts; refresh recomputes
	// all four in one scan.
	lazy       bool
	statsDirty bool
	nMin       int // number of pieces at minC (lazy mode only)
}

// NewAvailability returns an all-zero availability index over n pieces.
func NewAvailability(n int) *Availability {
	a := &Availability{
		counts: make([]int, n),
		bucket: make([][]int, 1, 8),
		pos:    make([]int, n),
	}
	a.bucket[0] = make([]int, n)
	for i := 0; i < n; i++ {
		a.bucket[0][i] = i
		a.pos[i] = i
	}
	return a
}

// SetLazy switches bucket maintenance between eager (exact on every
// update; the default and the golden-run mode) and lazy (bare count
// updates, every derived view recomputed by scan on demand). The
// candidate order lazy scans produce differs from the eager move order,
// which changes which piece a PickRarest draw selects — so lazy mode is
// opted into per scenario, never silently. Switching with peers folded in
// would strand the cursors, so that panics. Lazy mode drops the
// bucket/pos arrays entirely (they are rebuilt fresh on a switch back to
// eager, which the empty-index precondition makes trivial).
func (a *Availability) SetLazy(lazy bool) {
	a.refresh() // settle a deferred lazy sum so the emptiness guard sees the truth
	if a.peers != 0 || a.sum != 0 {
		panic("core: SetLazy on a non-empty availability index")
	}
	a.lazy = lazy
	a.statsDirty = false
	a.nMin = len(a.counts) // empty index: every piece sits at count zero
	if lazy {
		a.bucket, a.pos = nil, nil
		return
	}
	if a.bucket == nil {
		n := len(a.counts)
		a.bucket = make([][]int, 1, 8)
		a.pos = make([]int, n)
		a.bucket[0] = make([]int, n)
		for i := 0; i < n; i++ {
			a.bucket[0][i] = i
			a.pos[i] = i
		}
	}
}

// NumPieces returns the number of pieces indexed.
func (a *Availability) NumPieces() int { return len(a.counts) }

// Peers returns the number of peer bitfields currently folded in.
func (a *Availability) Peers() int { return a.peers }

// Count returns the copy count of piece i.
func (a *Availability) Count(i int) int { return a.counts[i] }

// move shifts piece i from its current bucket to bucket c and maintains
// the min/max cursors and the count sum. Cursor motion is amortized O(1):
// the min cursor only advances over buckets emptied by Incs and the max
// cursor only retreats over buckets emptied by Decs, work those same
// operations paid for creating.
func (a *Availability) move(i, c int) {
	old := a.counts[i]
	b := a.bucket[old]
	last := len(b) - 1
	j := a.pos[i]
	b[j] = b[last]
	a.pos[b[j]] = j
	a.bucket[old] = b[:last]
	for len(a.bucket) <= c {
		a.bucket = append(a.bucket, nil)
	}
	a.bucket[c] = append(a.bucket[c], i)
	a.pos[i] = len(a.bucket[c]) - 1
	a.counts[i] = c
	a.sum += int64(c - old)
	if c < a.minC {
		a.minC = c
	}
	if c > a.maxC {
		a.maxC = c
	}
	if last == 0 { // bucket[old] just became empty
		if old == a.minC {
			for len(a.bucket[a.minC]) == 0 { // stops at bucket[c] at the latest
				a.minC++
			}
		}
		if old == a.maxC {
			for a.maxC > 0 && len(a.bucket[a.maxC]) == 0 {
				a.maxC--
			}
		}
	}
}

// refresh recomputes lazy mode's derived stats — min/max cursors, count
// sum and rarest-set size — in one pass over the counts. Cost is
// amortized across every Inc/Dec since the last stats query; the batched
// swarms that run lazy mode query stats once per sample instant,
// thousands of HAVE updates apart.
func (a *Availability) refresh() {
	if !a.statsDirty {
		return
	}
	a.statsDirty = false
	if len(a.counts) == 0 {
		return
	}
	min, max, nMin := a.counts[0], a.counts[0], 0
	var sum int64
	for _, c := range a.counts {
		sum += int64(c)
		switch {
		case c < min:
			min, nMin = c, 1
		case c == min:
			nMin++
		case c > max:
			max = c
		}
	}
	a.minC, a.maxC, a.sum, a.nMin = min, max, sum, nMin
}

// Inc records one more copy of piece i in the peer set (a HAVE message or
// one bit of a joining peer's bitfield). Lazy mode makes this the bare
// count increment — the HAVE fan-out at huge-swarm scale calls Inc once
// per (receiver, completion) pair, hundreds of millions of times per run,
// so every deferred byte of maintenance here is paid back at refresh
// time instead.
func (a *Availability) Inc(i int) {
	if a.lazy {
		a.counts[i]++
		a.statsDirty = true
		return
	}
	a.move(i, a.counts[i]+1)
}

// Dec records one fewer copy of piece i (a peer with the piece left the
// peer set). It panics if the count would go negative.
func (a *Availability) Dec(i int) {
	if a.counts[i] == 0 {
		panic(fmt.Sprintf("core: availability of piece %d below zero", i))
	}
	if a.lazy {
		a.counts[i]--
		a.statsDirty = true
		return
	}
	a.move(i, a.counts[i]-1)
}

// AddPeer folds a joining peer's bitfield into the index.
func (a *Availability) AddPeer(b *bitfield.Bitfield) {
	a.peers++
	b.Range(func(i int) bool { a.Inc(i); return true })
}

// RemovePeer removes a leaving peer's bitfield from the index.
func (a *Availability) RemovePeer(b *bitfield.Bitfield) {
	a.peers--
	b.Range(func(i int) bool { a.Dec(i); return true })
}

// MinCount returns the minimum copy count over all pieces (m in the paper's
// definition of the rarest pieces set). O(1): the min cursor always sits on
// the lowest non-empty bucket.
func (a *Availability) MinCount() int {
	if len(a.counts) == 0 {
		return 0
	}
	if a.lazy {
		a.refresh()
	}
	return a.minC
}

// RarestSetSize returns the number of pieces that are equally rarest —
// the series plotted in Figs 3 and 6. O(1).
func (a *Availability) RarestSetSize() int {
	if len(a.counts) == 0 {
		return 0
	}
	if a.lazy {
		a.refresh()
		return a.nMin
	}
	return len(a.bucket[a.minC])
}

// RarestSet appends the indices of the rarest pieces to dst and returns it.
// In lazy mode the result comes from one ascending scan over the counts —
// the same order an eager index freshly built from the counts would hold.
func (a *Availability) RarestSet(dst []int) []int {
	if len(a.counts) == 0 {
		return dst
	}
	if a.lazy {
		a.refresh()
		for i, c := range a.counts {
			if c == a.minC {
				dst = append(dst, i)
			}
		}
		return dst
	}
	return append(dst, a.bucket[a.minC]...)
}

// Stats returns the (min, mean, max) copy counts across all pieces — the
// three series plotted in Figs 2 and 4. O(1): min/max are the bucket
// cursors and the mean divides the running integer sum, so the result is
// bit-identical to the old full scan.
func (a *Availability) Stats() (min int, mean float64, max int) {
	n := len(a.counts)
	if n == 0 {
		return 0, 0, 0
	}
	if a.lazy {
		a.refresh()
	}
	return a.minC, float64(a.sum) / float64(n), a.maxC
}

// PickRarest scans buckets from the lowest copy count and returns a piece
// uniformly random among the lowest-count pieces downloadable in state s.
// It returns -1 if no piece qualifies. This implements "select the next
// piece to download at random in the rarest pieces set", restricted — as in
// the mainline implementation — to pieces the target peer can actually
// provide.
//
// Each candidate costs one combined word probe, and the uniform choice is
// count-then-draw: a counting pass sizes the qualifying set, one rng.Intn
// draw picks a rank, a second pass locates it. One RNG draw instead of one
// per candidate — same distribution, different RNG stream than the old
// reservoir (a documented reproducibility-contract bump).
func (a *Availability) PickRarest(rng *rand.Rand, s *PickState) int {
	if a.lazy {
		return a.pickRarestScan(rng, s)
	}
	for ci := a.minC; ci < len(a.bucket); ci++ {
		// Buckets below the min cursor are empty by invariant, so starting
		// the walk at minC visits exactly the buckets the full scan did.
		b := a.bucket[ci]
		if len(b) == 0 {
			continue
		}
		k := 0
		for _, i := range b {
			if s.want(i) {
				k++
			}
		}
		if k == 0 {
			continue
		}
		j := rng.Intn(k)
		for _, i := range b {
			if s.want(i) {
				if j == 0 {
					return i
				}
				j--
			}
		}
	}
	return -1
}

// pickRarestScan is lazy mode's PickRarest: two word-parallel passes over
// the wanted set, with no bucket materialization. The first pass finds the
// minimal copy count among wanted pieces and sizes the tie set, one
// rng.Intn draw picks a rank, the second pass locates it in ascending
// piece order. Draw-for-draw identical to the bucket walk over freshly
// rebuilt (ascending-piece-order) buckets: both consume exactly one Intn,
// at the first count level containing a wanted piece, over the same
// candidate sequence — so replacing the old rebuild-then-walk lazy path
// with this scan changed no trajectory.
func (a *Availability) pickRarestScan(rng *rand.Rand, s *PickState) int {
	nw := s.Remote.NumWords()
	best, k := 0, 0
	for wi := 0; wi < nw; wi++ {
		for w := s.wantWord(wi); w != 0; {
			b := bits.LeadingZeros64(w)
			w &^= 1 << (63 - uint(b))
			switch c := a.counts[wi<<6+b]; {
			case k == 0 || c < best:
				best, k = c, 1
			case c == best:
				k++
			}
		}
	}
	if k == 0 {
		return -1
	}
	j := rng.Intn(k)
	for wi := 0; wi < nw; wi++ {
		for w := s.wantWord(wi); w != 0; {
			b := bits.LeadingZeros64(w)
			w &^= 1 << (63 - uint(b))
			if i := wi<<6 + b; a.counts[i] == best {
				if j == 0 {
					return i
				}
				j--
			}
		}
	}
	return -1 // unreachable: j < k
}
