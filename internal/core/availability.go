// Package core implements the paper's two algorithms — the rarest-first
// piece selection strategy and the choke peer selection strategy — together
// with the baseline strategies the paper discusses (random piece selection,
// the old seed-state choke algorithm, bit-level tit-for-tat).
//
// The same implementations drive both the discrete-event swarm simulator
// (internal/swarm) and the real TCP client (internal/client), so the code
// under evaluation exists exactly once.
package core

import (
	"fmt"
	"math/rand"

	"rarestfirst/internal/bitfield"
)

// Availability tracks, for every piece, the number of copies present in the
// local peer set ("each peer maintains a list of the number of copies of
// each piece in its peer set", §II-C.1). Pieces are bucketed by copy count
// so that rarest-first picking can scan from the lowest count upward; all
// updates are O(1), and cursors over the lowest/highest non-empty bucket
// plus a running count sum make MinCount, RarestSetSize, RarestSet and
// Stats O(1) too (amortized for the cursor maintenance) — at 10k-peer
// scale, copy counts reach the peer-set cap and the old scan from bucket 0
// walked ~80 empty buckets per query and per pick.
type Availability struct {
	counts []int   // copy count per piece
	bucket [][]int // bucket[c] = piece indices with count c (unordered)
	pos    []int   // position of piece i inside bucket[counts[i]]
	peers  int     // number of contributing bitfields
	minC   int     // lowest non-empty bucket (0 when empty/no pieces)
	maxC   int     // highest non-empty bucket (0 when empty/no pieces)
	sum    int64   // sum of all copy counts
}

// NewAvailability returns an all-zero availability index over n pieces.
func NewAvailability(n int) *Availability {
	a := &Availability{
		counts: make([]int, n),
		bucket: make([][]int, 1, 8),
		pos:    make([]int, n),
	}
	a.bucket[0] = make([]int, n)
	for i := 0; i < n; i++ {
		a.bucket[0][i] = i
		a.pos[i] = i
	}
	return a
}

// NumPieces returns the number of pieces indexed.
func (a *Availability) NumPieces() int { return len(a.counts) }

// Peers returns the number of peer bitfields currently folded in.
func (a *Availability) Peers() int { return a.peers }

// Count returns the copy count of piece i.
func (a *Availability) Count(i int) int { return a.counts[i] }

// move shifts piece i from its current bucket to bucket c and maintains
// the min/max cursors and the count sum. Cursor motion is amortized O(1):
// the min cursor only advances over buckets emptied by Incs and the max
// cursor only retreats over buckets emptied by Decs, work those same
// operations paid for creating.
func (a *Availability) move(i, c int) {
	old := a.counts[i]
	b := a.bucket[old]
	last := len(b) - 1
	j := a.pos[i]
	b[j] = b[last]
	a.pos[b[j]] = j
	a.bucket[old] = b[:last]
	for len(a.bucket) <= c {
		a.bucket = append(a.bucket, nil)
	}
	a.bucket[c] = append(a.bucket[c], i)
	a.pos[i] = len(a.bucket[c]) - 1
	a.counts[i] = c
	a.sum += int64(c - old)
	if c < a.minC {
		a.minC = c
	}
	if c > a.maxC {
		a.maxC = c
	}
	if last == 0 { // bucket[old] just became empty
		if old == a.minC {
			for len(a.bucket[a.minC]) == 0 { // stops at bucket[c] at the latest
				a.minC++
			}
		}
		if old == a.maxC {
			for a.maxC > 0 && len(a.bucket[a.maxC]) == 0 {
				a.maxC--
			}
		}
	}
}

// Inc records one more copy of piece i in the peer set (a HAVE message or
// one bit of a joining peer's bitfield).
func (a *Availability) Inc(i int) { a.move(i, a.counts[i]+1) }

// Dec records one fewer copy of piece i (a peer with the piece left the
// peer set). It panics if the count would go negative.
func (a *Availability) Dec(i int) {
	if a.counts[i] == 0 {
		panic(fmt.Sprintf("core: availability of piece %d below zero", i))
	}
	a.move(i, a.counts[i]-1)
}

// AddPeer folds a joining peer's bitfield into the index.
func (a *Availability) AddPeer(b *bitfield.Bitfield) {
	a.peers++
	b.Range(func(i int) bool { a.Inc(i); return true })
}

// RemovePeer removes a leaving peer's bitfield from the index.
func (a *Availability) RemovePeer(b *bitfield.Bitfield) {
	a.peers--
	b.Range(func(i int) bool { a.Dec(i); return true })
}

// MinCount returns the minimum copy count over all pieces (m in the paper's
// definition of the rarest pieces set). O(1): the min cursor always sits on
// the lowest non-empty bucket.
func (a *Availability) MinCount() int {
	if len(a.counts) == 0 {
		return 0
	}
	return a.minC
}

// RarestSetSize returns the number of pieces that are equally rarest —
// the series plotted in Figs 3 and 6. O(1).
func (a *Availability) RarestSetSize() int {
	if len(a.counts) == 0 {
		return 0
	}
	return len(a.bucket[a.minC])
}

// RarestSet appends the indices of the rarest pieces to dst and returns it.
func (a *Availability) RarestSet(dst []int) []int {
	if len(a.counts) == 0 {
		return dst
	}
	return append(dst, a.bucket[a.minC]...)
}

// Stats returns the (min, mean, max) copy counts across all pieces — the
// three series plotted in Figs 2 and 4. O(1): min/max are the bucket
// cursors and the mean divides the running integer sum, so the result is
// bit-identical to the old full scan.
func (a *Availability) Stats() (min int, mean float64, max int) {
	n := len(a.counts)
	if n == 0 {
		return 0, 0, 0
	}
	return a.minC, float64(a.sum) / float64(n), a.maxC
}

// PickRarest scans buckets from the lowest copy count and returns a piece
// uniformly random among the lowest-count pieces downloadable in state s.
// It returns -1 if no piece qualifies. This implements "select the next
// piece to download at random in the rarest pieces set", restricted — as in
// the mainline implementation — to pieces the target peer can actually
// provide.
//
// Each candidate costs one combined word probe, and the uniform choice is
// count-then-draw: a counting pass sizes the qualifying set, one rng.Intn
// draw picks a rank, a second pass locates it. One RNG draw instead of one
// per candidate — same distribution, different RNG stream than the old
// reservoir (a documented reproducibility-contract bump).
func (a *Availability) PickRarest(rng *rand.Rand, s *PickState) int {
	for ci := a.minC; ci < len(a.bucket); ci++ {
		// Buckets below the min cursor are empty by invariant, so starting
		// the walk at minC visits exactly the buckets the full scan did.
		b := a.bucket[ci]
		if len(b) == 0 {
			continue
		}
		k := 0
		for _, i := range b {
			if s.want(i) {
				k++
			}
		}
		if k == 0 {
			continue
		}
		j := rng.Intn(k)
		for _, i := range b {
			if s.want(i) {
				if j == 0 {
					return i
				}
				j--
			}
		}
	}
	return -1
}
