// Package sim provides the deterministic discrete-event engine and the
// fluid bandwidth model on which the swarm simulator runs.
//
// Time is float64 seconds from the start of the experiment. Events firing
// at the same instant are executed in scheduling order (a strictly
// increasing sequence number breaks ties), so a run is a pure function of
// the RNG seed and the initial configuration.
package sim

import (
	"container/heap"
	"math/rand"
)

// Timer is a handle to a scheduled event; Cancel prevents a pending event
// from firing.
//
// Lifetime contract: once a timer has fired (or has been popped cancelled),
// the engine recycles it through an internal free list and a later At/After
// call may reuse it for an unrelated event. A handle is therefore valid
// only until its event fires; calling Cancel on a stale handle is a bug
// (it would cancel whoever reused the slot). All in-repo holders guard
// with their own state: a Flow never touches its timer after done, and a
// peer's choke-round handle is overwritten each round.
type Timer struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int  // heap index, -1 once popped
	pooled    bool // true while parked in the engine's free list
	eng       *Engine
}

// At returns the time the timer is scheduled to fire.
func (t *Timer) At() float64 { return t.at }

// Cancel stops the timer; it is safe to call on an already-fired or
// already-cancelled timer. The heap slot is reclaimed lazily: either when
// the cancelled entry reaches the top, or by compaction once cancelled
// entries outnumber live ones.
func (t *Timer) Cancel() {
	if t.cancelled {
		return
	}
	t.cancelled = true
	if t.index >= 0 && t.eng != nil {
		t.eng.dead++
		t.eng.maybeCompact()
	}
}

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// EngineStats exposes the scheduler's internal occupancy for the benchmark
// harness: how big the heap actually is versus how many of its entries are
// still live, plus how many timer allocations the free list saved.
type EngineStats struct {
	// HeapSize is the number of entries in the event heap, including
	// lazily-deleted (cancelled) ones.
	HeapSize int
	// Live is the number of pending events that will actually fire.
	Live int
	// Cancelled is the number of dead entries awaiting compaction.
	Cancelled int
	// FreeListSize is the number of recycled timers ready for reuse.
	FreeListSize int
	// Reused counts scheduling calls served from the free list.
	Reused uint64
	// Compactions counts lazy-deletion sweeps of the heap.
	Compactions uint64
}

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now  float64
	heap eventHeap
	seq  uint64
	rng  *rand.Rand

	// dead counts cancelled entries still occupying heap slots (lazy
	// deletion); free is the timer recycling pool.
	dead        int
	free        []*Timer
	reused      uint64
	compactions uint64
}

// NewEngine returns an engine whose randomness derives entirely from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Pending returns the number of live scheduled events (cancelled timers
// awaiting lazy deletion are excluded).
func (e *Engine) Pending() int { return len(e.heap) - e.dead }

// Stats returns the scheduler's occupancy counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		HeapSize:     len(e.heap),
		Live:         len(e.heap) - e.dead,
		Cancelled:    e.dead,
		FreeListSize: len(e.free),
		Reused:       e.reused,
		Compactions:  e.compactions,
	}
}

// alloc returns a zeroed timer, reusing a recycled one when available.
func (e *Engine) alloc() *Timer {
	if n := len(e.free); n > 0 {
		t := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		t.pooled = false
		e.reused++
		return t
	}
	return &Timer{eng: e}
}

// recycle returns a popped timer to the free list unless its fn
// re-scheduled it back into the heap.
func (e *Engine) recycle(t *Timer) {
	if t.index != -1 {
		return
	}
	t.fn = nil
	t.cancelled = false
	t.pooled = true
	e.free = append(e.free, t)
}

// At schedules fn to run at absolute time t (clamped to now if in the
// past) and returns a cancellable handle.
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	timer := e.alloc()
	timer.at = t
	timer.seq = e.seq
	timer.fn = fn
	heap.Push(&e.heap, timer)
	return timer
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Reschedule moves a pending timer to absolute time t (clamped to now if
// in the past) by re-sorting it in place — no cancel-and-push garbage. The
// timer is assigned a fresh sequence number, so its ordering against
// same-instant events is exactly as if it had been cancelled and a new
// timer pushed.
//
// Valid targets: a pending timer (cancelled-but-still-in-heap ones are
// revived), or the currently firing timer from inside its own callback
// (it re-enters the heap instead of the free list). A timer whose event
// has otherwise completed may already have been recycled for an unrelated
// event — rescheduling it would corrupt the free list, so that is a
// panic, as is a cancelled timer already swept out by compaction.
func (e *Engine) Reschedule(t *Timer, at float64) {
	if t.pooled {
		panic("sim: Reschedule on a recycled timer")
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	t.at = at
	t.seq = e.seq
	if t.cancelled {
		t.cancelled = false
		if t.index >= 0 {
			e.dead--
		}
	}
	if t.index >= 0 {
		heap.Fix(&e.heap, t.index)
		return
	}
	heap.Push(&e.heap, t)
}

// maybeCompact sweeps cancelled entries out of the heap once they occupy
// more than half of it, re-establishing the heap invariant in one O(n)
// pass. Pop order is unchanged: (at, seq) is a total order, so any valid
// heap arrangement of the same live set pops identically.
func (e *Engine) maybeCompact() {
	if e.dead <= len(e.heap)/2 || e.dead < 64 {
		return
	}
	live := e.heap[:0]
	for _, t := range e.heap {
		if t.cancelled {
			t.index = -1
			e.recycle(t)
			continue
		}
		live = append(live, t)
	}
	for i := len(live); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = live
	for i, t := range e.heap {
		t.index = i
	}
	heap.Init(&e.heap)
	e.dead = 0
	e.compactions++
}

// Step executes the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		t := heap.Pop(&e.heap).(*Timer)
		if t.cancelled {
			e.dead--
			e.recycle(t)
			continue
		}
		e.now = t.at
		fn := t.fn
		fn()
		e.recycle(t)
		return true
	}
	return false
}

// Run executes events until the queue is empty or the next event is after
// `until`; the clock is finally advanced to `until` if it got that far.
func (e *Engine) Run(until float64) {
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.cancelled {
			heap.Pop(&e.heap)
			e.dead--
			e.recycle(next)
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&e.heap)
		e.now = next.at
		fn := next.fn
		fn()
		e.recycle(next)
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes events until none remain.
func (e *Engine) RunUntilIdle() {
	for e.Step() {
	}
}
