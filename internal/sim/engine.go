// Package sim provides the deterministic discrete-event engine and the
// fluid bandwidth model on which the swarm simulator runs.
//
// Time is float64 seconds from the start of the experiment. Events firing
// at the same instant are executed in scheduling order (a strictly
// increasing sequence number breaks ties), so a run is a pure function of
// the RNG seed and the initial configuration.
package sim

import (
	"container/heap"
	"math/rand"
)

// Timer is a handle to a scheduled event; Cancel prevents a pending event
// from firing.
type Timer struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the time the timer is scheduled to fire.
func (t *Timer) At() float64 { return t.at }

// Cancel stops the timer; it is safe to call on an already-fired or
// already-cancelled timer.
func (t *Timer) Cancel() { t.cancelled = true }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now  float64
	heap eventHeap
	seq  uint64
	rng  *rand.Rand
}

// NewEngine returns an engine whose randomness derives entirely from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t (clamped to now if in the
// past) and returns a cancellable handle.
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	timer := &Timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.heap, timer)
	return timer
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step executes the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		t := heap.Pop(&e.heap).(*Timer)
		if t.cancelled {
			continue
		}
		e.now = t.at
		t.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the next event is after
// `until`; the clock is finally advanced to `until` if it got that far.
func (e *Engine) Run(until float64) {
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.cancelled {
			heap.Pop(&e.heap)
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&e.heap)
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes events until none remain.
func (e *Engine) RunUntilIdle() {
	for e.Step() {
	}
}
