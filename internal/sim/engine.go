// Package sim provides the deterministic discrete-event engine and the
// fluid bandwidth model on which the swarm simulator runs.
//
// Time is float64 seconds from the start of the experiment. Events firing
// at the same instant are executed in scheduling order (a strictly
// increasing sequence number breaks ties), so a run is a pure function of
// the RNG seed and the initial configuration.
package sim

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rarestfirst/internal/obs"
)

// Timer is a handle to a scheduled event; Cancel prevents a pending event
// from firing.
//
// Lifetime contract: once a timer has fired (or has been popped cancelled),
// the engine recycles it through an internal free list and a later At/After
// call may reuse it for an unrelated event. A handle is therefore valid
// only until its event fires; calling Cancel on a stale handle is a bug
// (it would cancel whoever reused the slot). All in-repo holders guard
// with their own state: a Flow never touches its timer after done, and a
// peer's choke-round handle is overwritten each round.
type Timer struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int  // heap index, -1 once popped
	pooled    bool // true while parked in a shard's free list
	eng       *Engine
	// shard is the subheap (and free list) the timer lives in: 0 is the
	// global shard, 1..n are the keyed shards of a sharded engine. A timer
	// never migrates between shards.
	shard int32

	// Lane events (AtLane) carry a compute half instead of fn: compute is
	// the read-only phase, the closure it returns is the mutation phase.
	// compute != nil marks the timer as a lane event.
	compute func() func()
	laneKey int64
}

// At returns the time the timer is scheduled to fire.
func (t *Timer) At() float64 { return t.at }

// Cancel stops the timer; it is safe to call on an already-fired or
// already-cancelled timer. The heap slot is reclaimed lazily: either when
// the cancelled entry reaches the top, or by compaction once cancelled
// entries outnumber live ones in its shard.
func (t *Timer) Cancel() {
	if t.cancelled {
		return
	}
	t.cancelled = true
	if t.index >= 0 && t.eng != nil {
		t.eng.shards[t.shard].dead++
		t.eng.maybeCompact(t.shard)
	}
}

// heapEnt is one event-heap slot: the (at, seq) ordering key inlined next
// to the timer pointer, so sift comparisons read the slot they are already
// touching instead of chasing a cold *Timer — at 40k-timer occupancy the
// pointer-chasing comparator was one of the hottest lines in a huge-swarm
// profile. The key is a copy of the timer's fields; every path that moves
// a timer's (at, seq) goes through heapPush or heapFix, which (re)write it.
type heapEnt struct {
	at  float64
	seq uint64
	t   *Timer
}

type eventHeap []heapEnt

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].t.index = i
	h[j].t.index = j
}

// heapPush, heapPop, heapFix and heapInit are container/heap's algorithms
// specialized to eventHeap: same sift order (so the element arrangement is
// bit-identical to the interface-based version), no interface boxing of
// the 24-byte entries, and no dynamic dispatch per comparison.
func heapPush(h *eventHeap, t *Timer) {
	t.index = len(*h)
	*h = append(*h, heapEnt{at: t.at, seq: t.seq, t: t})
	heapUp(*h, len(*h)-1)
}

func heapPop(h *eventHeap) *Timer {
	old := *h
	n := len(old) - 1
	old.swap(0, n)
	heapDown(old, 0, n)
	t := old[n].t
	old[n] = heapEnt{}
	t.index = -1
	*h = old[:n]
	return t
}

// heapFix re-sorts the entry at index i after its timer's (at, seq)
// changed; it re-reads the key from the timer, so callers just write the
// timer fields and call heapFix.
func heapFix(h eventHeap, i int) {
	h[i].at, h[i].seq = h[i].t.at, h[i].t.seq
	if !heapDown(h, i, len(h)) {
		heapUp(h, i)
	}
}

func heapInit(h eventHeap) {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		heapDown(h, i, n)
	}
}

func heapUp(h eventHeap, j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func heapDown(h eventHeap, i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > i0
}

// heapShard is one subheap of the (possibly sharded) event queue, with its
// own lazy-deletion count, timer recycling pool and occupancy high-water
// mark. The single-heap engine is the degenerate case of one shard.
type heapShard struct {
	heap eventHeap
	// dead counts cancelled entries still occupying slots (lazy deletion).
	dead int
	// free is the shard's timer recycling pool, capped at poolCap so a
	// burst of churn does not pin a burst-sized pool forever.
	free        []*Timer
	peak        int // heap-occupancy high-water mark
	reused      uint64
	compactions uint64
}

// poolCap bounds the shard's free list at a quarter of its own heap
// high-water mark (plus a small floor so tiny shards still pool) — the
// single-heap peak/4+64 rule, applied per shard.
func (sh *heapShard) poolCap() int { return sh.peak/4 + 64 }

// EngineStats exposes the scheduler's internal occupancy for the benchmark
// harness: how big the heap actually is versus how many of its entries are
// still live, plus how many timer allocations the free lists saved.
type EngineStats struct {
	// HeapSize is the number of entries across all event subheaps,
	// including lazily-deleted (cancelled) ones.
	HeapSize int
	// Live is the number of pending events that will actually fire.
	Live int
	// Cancelled is the number of dead entries awaiting compaction.
	Cancelled int
	// FreeListSize is the number of recycled timers ready for reuse.
	FreeListSize int
	// TimerPoolCap is the high-water-derived bound on FreeListSize (summed
	// across shards): popped timers beyond it are dropped for the GC
	// instead of pooled, so a flash-crowd peak does not pin a peak-sized
	// free list for the rest of a long run.
	TimerPoolCap int
	// Reused counts scheduling calls served from the free lists.
	Reused uint64
	// Compactions counts lazy-deletion sweeps across all shards.
	Compactions uint64
	// PeakLaneWidth is the largest batch of same-timestamp lane events
	// (AtLane) executed as one unit — the upper bound on how much compute
	// the lane pool could overlap in a single instant.
	PeakLaneWidth int
	// LaneBatches / LaneEvents count executed lane batches and the lane
	// events they contained (LaneEvents/LaneBatches = mean batch width).
	LaneBatches uint64
	LaneEvents  uint64
	// Shards is the number of keyed subheaps when the event heap is
	// sharded (SetHeapShards); 0 for the default single-heap engine.
	Shards int
	// PeakShardHeap is the largest single-subheap occupancy high-water
	// mark across the keyed shards of a sharded engine (0 when unsharded).
	PeakShardHeap int
	// MergePops counts pops routed through the loser-tree head merge of a
	// sharded engine (0 when unsharded).
	MergePops uint64
	// Phase timing (wall-clock nanoseconds), populated only when an
	// obs.PhaseTimes bundle is attached via SetMetrics — zero otherwise.
	// Observe-only: these never feed back into the simulation, so runs
	// with and without timing fire identical event sequences.
	LaneComputeNs uint64
	LaneApplyNs   uint64
	MergeNs       uint64
	RetimeFlushNs uint64
	HaveFlushNs   uint64
}

// Engine is a single-threaded discrete-event scheduler.
//
// The event queue is one binary heap by default. SetHeapShards splits it
// into per-key subheaps (shard 0 holds keyless events) merged at pop time
// by a loser tree over the shard heads. Sharding is trajectory-preserving:
// sequence numbers are still assigned serially, (at, seq) stays a global
// total order, and the merge always pops its global minimum, so a sharded
// engine fires events in exactly the single-heap order — what sharding
// buys is per-shard free lists and the ability to apply pre-sequenced
// timer (re)schedules shard-parallel (see Net.Flush).
type Engine struct {
	now float64
	seq uint64
	rng *rand.Rand

	// shards[0] is the global (keyless) shard; 1..n are the keyed shards
	// of a sharded engine. keyMask = n-1 (n a power of two) routes keys.
	shards  []heapShard
	keyMask int64

	// Loser-tree merge state over shard heads (sharded engines only).
	// tree[0] holds the winning shard index, tree[1..treeP-1] the losers;
	// treeP is the leaf count (shards padded to a power of two, missing
	// leaves = -1 sentinels that lose every match). The tree is replayed
	// from the winner's leaf after each pop and rebuilt lazily (treeDirty)
	// after any other head movement — pushes landing at a shard head,
	// reschedules, compactions, staged parallel applies.
	tree      []int32
	treeWin   []int32 // rebuild scratch, len 2*treeP
	treeP     int
	treeDirty bool
	mergePops uint64

	// postEvent, when set, runs after every fired event (after a whole
	// batch, for batched lane events) and before the next pop in
	// Step/Run — the deferred-work flush point clients like Net use to
	// settle rate retiming exactly once per event.
	postEvent func()

	// Lane execution state: laneWorkers bounds the compute pool (<=1 runs
	// computes inline), laneBatch/laneApply are per-batch scratch, and the
	// counters feed EngineStats.
	laneWorkers int
	laneBatch   []*Timer
	laneApply   []func()
	peakLane    int
	laneBatches uint64
	laneEvents  uint64

	// Observability hooks (SetMetrics). All nil by default; hot paths pay
	// one nil check when disabled. timing is shared with Net (retime
	// flush) and read by Stats; mEvents/mPeakLane are nil-receiver-safe
	// obs handles, so fire touches them unconditionally.
	timing    *obs.PhaseTimes
	mEvents   *obs.Counter
	mPeakLane *obs.Gauge
}

// NewEngine returns an engine whose randomness derives entirely from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), shards: make([]heapShard, 1)}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Pending returns the number of live scheduled events (cancelled timers
// awaiting lazy deletion are excluded).
func (e *Engine) Pending() int {
	n := 0
	for i := range e.shards {
		n += len(e.shards[i].heap) - e.shards[i].dead
	}
	return n
}

// Stats returns the scheduler's occupancy counters.
func (e *Engine) Stats() EngineStats {
	ph := e.timing.Snapshot() // nil-safe: zeros when no bundle attached
	st := EngineStats{
		PeakLaneWidth: e.peakLane,
		LaneBatches:   e.laneBatches,
		LaneEvents:    e.laneEvents,
		MergePops:     e.mergePops,
		LaneComputeNs: ph.LaneComputeNs,
		LaneApplyNs:   ph.LaneApplyNs,
		MergeNs:       ph.HeapMergeNs,
		RetimeFlushNs: ph.RetimeFlushNs,
		HaveFlushNs:   ph.HaveFlushNs,
	}
	for i := range e.shards {
		sh := &e.shards[i]
		st.HeapSize += len(sh.heap)
		st.Live += len(sh.heap) - sh.dead
		st.Cancelled += sh.dead
		st.FreeListSize += len(sh.free)
		st.TimerPoolCap += sh.poolCap()
		st.Reused += sh.reused
		st.Compactions += sh.compactions
		if i > 0 && sh.peak > st.PeakShardHeap {
			st.PeakShardHeap = sh.peak
		}
	}
	if len(e.shards) > 1 {
		st.Shards = len(e.shards) - 1
	} else {
		st.PeakShardHeap = 0
	}
	return st
}

// SetHeapShards splits the event queue into n keyed subheaps (n is rounded
// up to a power of two) plus the global shard for keyless events, or
// restores the single monolithic heap for n <= 0 — the oracle the
// determinism tests compare against. Keys route as 1 + (key & (n-1)), so
// any family of per-node keys that differ by a multiple of n (choke-lane
// keys, the re-announce lane offset) lands in the owner node's shard;
// negative keys and plain At/After go to the global shard.
//
// Sharding must be chosen before any events are scheduled; calling it with
// a non-empty queue panics.
func (e *Engine) SetHeapShards(n int) {
	for i := range e.shards {
		if len(e.shards[i].heap) != 0 {
			panic("sim: SetHeapShards with scheduled events")
		}
	}
	if n <= 0 {
		e.shards = make([]heapShard, 1)
		e.keyMask = 0
		e.tree, e.treeWin, e.treeP = nil, nil, 0
		e.treeDirty = false
		return
	}
	p := 1
	for p < n {
		p <<= 1
	}
	e.shards = make([]heapShard, p+1)
	e.keyMask = int64(p - 1)
	tp := 1
	for tp < len(e.shards) {
		tp <<= 1
	}
	e.treeP = tp
	e.tree = make([]int32, tp)
	e.treeWin = make([]int32, 2*tp)
	e.treeDirty = true
}

// HeapShards returns the keyed subheap count (0 = single monolithic heap).
func (e *Engine) HeapShards() int {
	if len(e.shards) <= 1 {
		return 0
	}
	return len(e.shards) - 1
}

// sharded reports whether the event queue is split into subheaps.
func (e *Engine) sharded() bool { return len(e.shards) > 1 }

// shardFor routes a scheduling key to its owning subheap.
func (e *Engine) shardFor(key int64) int32 {
	if len(e.shards) == 1 || key < 0 {
		return 0
	}
	return int32(1 + (key & e.keyMask))
}

// SetLaneParallelism bounds the pool that runs lane-event compute phases:
// n <= 1 runs them inline on the engine goroutine (serial mode), n > 1
// fans a batch's computes across up to n goroutines. Parallelism is pure
// scheduling: a lane batch's observable effects are identical for every
// n, because computes must be read-only with respect to shared state and
// applies always run serially in key order.
func (e *Engine) SetLaneParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.laneWorkers = n
}

// LaneParallelism returns the configured lane compute pool bound.
func (e *Engine) LaneParallelism() int {
	if e.laneWorkers < 1 {
		return 1
	}
	return e.laneWorkers
}

// SetPostEventHook installs fn to run after every fired event (once per
// whole batch for batched lane events) and before the next pop in Step and
// Run. It is the deferred-work flush point: Net registers its dirty-node
// retime flush here, so flow churn inside one event settles exactly once
// no matter how many flows the event touched. fn must not fire events but
// may schedule, reschedule and cancel timers freely. Only one hook is
// supported; installing a new one replaces the old (a client that needs
// both chains them in one closure, as the swarm's batched-HAVE flush does).
func (e *Engine) SetPostEventHook(fn func()) { e.postEvent = fn }

// EngineMetrics bundles the observability hooks an engine can report
// into. Any field may be nil; obs handles are nil-receiver-safe, so a
// partial bundle is fine.
type EngineMetrics struct {
	// Phases accumulates per-phase wall-clock nanoseconds (lane compute
	// vs apply, shard-heap merge, retime flush, HAVE flush). The same
	// bundle is read by Net.Flush and may be shared with the swarm layer
	// for its HAVE-flush phase.
	Phases *obs.PhaseTimes
	// Events counts fired events (one per plain event or lane batch).
	Events *obs.Counter
	// PeakLane is a high-watermark gauge of lane batch width.
	PeakLane *obs.Gauge
}

// SetMetrics attaches observability hooks. Observe-only by construction:
// the hooks read the wall clock and bump atomics but never touch engine
// RNG or event order, so attaching them cannot change a trajectory (the
// golden-digest tests run with metrics enabled to prove it). Call with
// the zero EngineMetrics to detach.
func (e *Engine) SetMetrics(m EngineMetrics) {
	e.timing = m.Phases
	e.mEvents = m.Events
	e.mPeakLane = m.PeakLane
}

// headLess orders two shards by their current heads under (at, seq);
// empty shards and -1 sentinel leaves order last (lose every match).
func (e *Engine) headLess(a, b int32) bool {
	if a < 0 {
		return false
	}
	if b < 0 {
		return true
	}
	ha, hb := e.shards[a].heap, e.shards[b].heap
	if len(ha) == 0 {
		return false
	}
	if len(hb) == 0 {
		return true
	}
	if ha[0].at != hb[0].at {
		return ha[0].at < hb[0].at
	}
	return ha[0].seq < hb[0].seq
}

// rebuildTree replays the whole tournament bottom-up: one match per
// internal node, O(treeP) total. Runs lazily (treeDirty) so a burst of
// head-moving mutations inside one event costs one rebuild at the next
// peek, not one per mutation.
func (e *Engine) rebuildTree() {
	p := e.treeP
	win := e.treeWin
	for i := 0; i < p; i++ {
		if i < len(e.shards) {
			win[p+i] = int32(i)
		} else {
			win[p+i] = -1
		}
	}
	for v := p - 1; v >= 1; v-- {
		a, b := win[2*v], win[2*v+1]
		if e.headLess(b, a) {
			a, b = b, a
		}
		win[v] = a
		e.tree[v] = b
	}
	e.tree[0] = win[1]
	e.treeDirty = false
}

// replayWinner re-runs the winner shard's matches up the tree after its
// head was consumed — the classic loser-tree pop refill, O(log shards).
// Only valid for the current winner; any other head movement must set
// treeDirty instead.
func (e *Engine) replayWinner(w int32) {
	cur := w
	for v := (e.treeP + int(w)) >> 1; v >= 1; v >>= 1 {
		if e.headLess(e.tree[v], cur) {
			cur, e.tree[v] = e.tree[v], cur
		}
	}
	e.tree[0] = cur
}

// peekTop returns the globally earliest pending entry (cancelled entries
// included, exactly like a single heap's top), or nil when every shard is
// empty. On a sharded engine this settles the merge tree first.
func (e *Engine) peekTop() *Timer {
	if len(e.shards) == 1 {
		if len(e.shards[0].heap) == 0 {
			return nil
		}
		return e.shards[0].heap[0].t
	}
	if e.treeDirty {
		e.rebuildTree()
	}
	w := e.tree[0]
	if w < 0 || len(e.shards[w].heap) == 0 {
		return nil
	}
	return e.shards[w].heap[0].t
}

// popTop removes and returns the globally earliest entry. Callers must
// have established that one exists via peekTop (which also settles the
// merge tree); popTop then refills the tree with one winner replay.
func (e *Engine) popTop() *Timer {
	if len(e.shards) == 1 {
		return heapPop(&e.shards[0].heap)
	}
	var t0 time.Time
	if e.timing != nil {
		t0 = time.Now()
	}
	w := e.tree[0]
	t := heapPop(&e.shards[w].heap)
	e.mergePops++
	e.replayWinner(w)
	if e.timing != nil {
		e.timing.HeapMerge.Add(time.Since(t0).Nanoseconds())
	}
	return t
}

// notePush records shard heap growth for the pool cap's high-water mark
// and dirties the merge tree when the new entry became the shard head;
// call after every heapPush.
func (e *Engine) notePush(sh *heapShard, t *Timer) {
	if len(sh.heap) > sh.peak {
		sh.peak = len(sh.heap)
	}
	if len(e.shards) > 1 && !e.treeDirty && sh.heap[0].t == t {
		e.treeDirty = true
	}
}

// alloc returns a zeroed timer bound to shard s, reusing one of the
// shard's recycled timers when available.
func (e *Engine) alloc(s int32) *Timer {
	sh := &e.shards[s]
	if n := len(sh.free); n > 0 {
		t := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		t.pooled = false
		sh.reused++
		return t
	}
	return &Timer{eng: e, shard: s}
}

// recycle returns a popped timer to its shard's free list unless its fn
// re-scheduled it back into the heap; beyond the shard's high-water cap
// the timer is dropped for the GC instead.
func (e *Engine) recycle(t *Timer) {
	if t.index != -1 {
		return
	}
	sh := &e.shards[t.shard]
	if len(sh.free) >= sh.poolCap() {
		return
	}
	t.fn = nil
	t.compute = nil
	t.laneKey = 0
	t.cancelled = false
	t.pooled = true
	sh.free = append(sh.free, t)
}

// schedule is the shared push path: clamp, next sequence number, shard
// push, high-water bookkeeping.
func (e *Engine) schedule(s int32, at float64) *Timer {
	if at < e.now {
		at = e.now
	}
	e.seq++
	sh := &e.shards[s]
	t := e.alloc(s)
	t.at = at
	t.seq = e.seq
	heapPush(&sh.heap, t)
	e.notePush(sh, t)
	return t
}

// At schedules fn to run at absolute time t (clamped to now if in the
// past) and returns a cancellable handle. Plain events live in the global
// shard; use AtKey to route into a keyed shard.
func (e *Engine) At(t float64, fn func()) *Timer {
	timer := e.schedule(0, t)
	timer.fn = fn
	return timer
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtKey schedules fn at absolute time t in the subheap owning key — on a
// sharded engine, per-node keys keep per-node timer traffic (and its pool
// churn) out of the shared global shard. Identical to At on an unsharded
// engine, and identical pop order everywhere.
func (e *Engine) AtKey(t float64, key int64, fn func()) *Timer {
	timer := e.schedule(e.shardFor(key), t)
	timer.fn = fn
	return timer
}

// AfterKey schedules fn d seconds from now in the subheap owning key.
func (e *Engine) AfterKey(d float64, key int64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.AtKey(e.now+d, key, fn)
}

// AtLane schedules a lane event at absolute time t (clamped to now if in
// the past). Lane events scheduled for the same instant that are adjacent
// in (time, seq) order — i.e. not interleaved with a plain event at the
// same timestamp — execute as one batch: every compute runs first against
// the pre-batch state, then the returned apply closures run serially in
// ascending (key, seq) order. A compute must therefore be read-only with
// respect to state shared with other lane events (private state, e.g. a
// per-peer RNG or choker, is fair game); all shared-state mutation,
// engine RNG use and rescheduling belongs in the apply closure. A compute
// may return nil to skip its apply phase.
//
// On a sharded engine the event lives in the subheap owning key, so
// grid-aligned per-node lane timers spread across shards instead of
// funnelling through one heap.
//
// With SetLaneParallelism(n>1) the computes of one batch run concurrently
// on up to n goroutines; results are indistinguishable from serial mode.
func (e *Engine) AtLane(t float64, key int64, compute func() func()) *Timer {
	if compute == nil {
		panic("sim: AtLane with nil compute")
	}
	timer := e.schedule(e.shardFor(key), t)
	timer.compute = compute
	timer.laneKey = key
	return timer
}

// Reschedule moves a pending timer to absolute time t (clamped to now if
// in the past) by re-sorting it in place — no cancel-and-push garbage. The
// timer is assigned a fresh sequence number, so its ordering against
// same-instant events is exactly as if it had been cancelled and a new
// timer pushed.
//
// Valid targets: a pending timer (cancelled-but-still-in-heap ones are
// revived), or the currently firing timer from inside its own callback
// (it re-enters the heap instead of the free list). A timer whose event
// has otherwise completed may already have been recycled for an unrelated
// event — rescheduling it would corrupt the free list, so that is a
// panic, as is a cancelled timer already swept out by compaction.
func (e *Engine) Reschedule(t *Timer, at float64) {
	if t.pooled {
		panic("sim: Reschedule on a recycled timer")
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	t.at = at
	t.seq = e.seq
	sh := &e.shards[t.shard]
	if t.cancelled {
		t.cancelled = false
		if t.index >= 0 {
			sh.dead--
		}
	}
	if t.index >= 0 {
		heapFix(sh.heap, t.index)
		if len(e.shards) > 1 {
			e.treeDirty = true
		}
		return
	}
	heapPush(&sh.heap, t)
	e.notePush(sh, t)
}

// maybeCompact sweeps cancelled entries out of shard s once they occupy
// more than half of it, re-establishing the heap invariant in one O(n)
// pass. Pop order is unchanged: (at, seq) is a total order, so any valid
// heap arrangement of the same live set pops identically.
func (e *Engine) maybeCompact(s int32) {
	sh := &e.shards[s]
	if sh.dead <= len(sh.heap)/2 || sh.dead < 64 {
		return
	}
	live := sh.heap[:0]
	for _, en := range sh.heap {
		if en.t.cancelled {
			en.t.index = -1
			e.recycle(en.t)
			continue
		}
		live = append(live, en)
	}
	for i := len(live); i < len(sh.heap); i++ {
		sh.heap[i] = heapEnt{}
	}
	sh.heap = live
	for i := range sh.heap {
		sh.heap[i].t.index = i
	}
	heapInit(sh.heap)
	sh.dead = 0
	sh.compactions++
	if len(e.shards) > 1 {
		e.treeDirty = true
	}
}

// runLaneBatch executes the lane batch starting at first, which has just
// been popped: it keeps popping lane events scheduled for the same instant
// (skipping cancelled entries of any kind) until the queue top is a plain
// event or a later time, runs every compute, then applies serially in
// ascending (key, seq) order. Apply closures may schedule, reschedule and
// cancel freely — including cancelling a later member of the same batch,
// whose apply is then skipped.
func (e *Engine) runLaneBatch(first *Timer) {
	var t0 time.Time
	if e.timing != nil {
		t0 = time.Now()
	}
	batch := append(e.laneBatch[:0], first)
	for {
		top := e.peekTop()
		if top == nil || top.at != first.at {
			break
		}
		if top.cancelled {
			e.popTop()
			e.shards[top.shard].dead--
			e.recycle(top)
			continue
		}
		if top.compute == nil {
			break
		}
		e.popTop()
		batch = append(batch, top)
	}
	// Key order, not pop order, for both phases: computes are mutually
	// independent so their order is unobservable, and fixing one order
	// keeps serial and parallel modes trivially identical.
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].laneKey != batch[j].laneKey {
			return batch[i].laneKey < batch[j].laneKey
		}
		return batch[i].seq < batch[j].seq
	})
	e.laneBatch = batch

	applies := e.laneApply
	if cap(applies) < len(batch) {
		applies = make([]func(), len(batch))
	} else {
		applies = applies[:len(batch)]
	}
	e.laneApply = applies
	if workers := min(e.LaneParallelism(), len(batch)); workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					applies[i] = batch[i].compute()
				}
			}()
		}
		wg.Wait()
	} else {
		for i, t := range batch {
			applies[i] = t.compute()
		}
	}

	e.laneBatches++
	e.laneEvents += uint64(len(batch))
	if len(batch) > e.peakLane {
		e.peakLane = len(batch)
		e.mPeakLane.Max(float64(len(batch))) // nil-safe; only on a new high-water mark
	}
	if e.timing != nil {
		e.timing.LaneCompute.Add(time.Since(t0).Nanoseconds())
		t0 = time.Now()
	}
	for i, t := range batch {
		if fn := applies[i]; fn != nil && !t.cancelled {
			fn()
		}
		applies[i] = nil
		e.laneBatch[i] = nil
		e.recycle(t)
	}
	if e.timing != nil {
		e.timing.LaneApply.Add(time.Since(t0).Nanoseconds())
	}
}

// fire runs one popped, non-cancelled event — a lane batch seeded by t, or
// a plain callback — with the clock already advanced to t.at.
func (e *Engine) fire(t *Timer) {
	e.now = t.at
	if t.compute != nil {
		e.runLaneBatch(t)
	} else {
		fn := t.fn
		fn()
		e.recycle(t)
	}
	e.mEvents.Inc() // nil-safe no-op when observability is off
	if e.postEvent != nil {
		e.postEvent()
	}
}

// Step executes the next event (a whole batch, for batched lane events).
// It reports false when the queue is empty. Deferred work queued outside
// event context (e.g. flows started before the first event) is flushed via
// the post-event hook before the pop.
func (e *Engine) Step() bool {
	if e.postEvent != nil {
		e.postEvent()
	}
	for {
		t := e.peekTop()
		if t == nil {
			return false
		}
		e.popTop()
		if t.cancelled {
			e.shards[t.shard].dead--
			e.recycle(t)
			continue
		}
		e.fire(t)
		return true
	}
}

// Run executes events until the queue is empty or the next event is after
// `until`; the clock is finally advanced to `until` if it got that far.
func (e *Engine) Run(until float64) {
	if e.postEvent != nil {
		e.postEvent()
	}
	for {
		next := e.peekTop()
		if next == nil {
			break
		}
		if next.cancelled {
			e.popTop()
			e.shards[next.shard].dead--
			e.recycle(next)
			continue
		}
		if next.at > until {
			break
		}
		e.popTop()
		e.fire(next)
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes events until none remain.
func (e *Engine) RunUntilIdle() {
	for e.Step() {
	}
}
