// Package sim provides the deterministic discrete-event engine and the
// fluid bandwidth model on which the swarm simulator runs.
//
// Time is float64 seconds from the start of the experiment. Events firing
// at the same instant are executed in scheduling order (a strictly
// increasing sequence number breaks ties), so a run is a pure function of
// the RNG seed and the initial configuration.
package sim

import (
	"container/heap"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Timer is a handle to a scheduled event; Cancel prevents a pending event
// from firing.
//
// Lifetime contract: once a timer has fired (or has been popped cancelled),
// the engine recycles it through an internal free list and a later At/After
// call may reuse it for an unrelated event. A handle is therefore valid
// only until its event fires; calling Cancel on a stale handle is a bug
// (it would cancel whoever reused the slot). All in-repo holders guard
// with their own state: a Flow never touches its timer after done, and a
// peer's choke-round handle is overwritten each round.
type Timer struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int  // heap index, -1 once popped
	pooled    bool // true while parked in the engine's free list
	eng       *Engine

	// Lane events (AtLane) carry a compute half instead of fn: compute is
	// the read-only phase, the closure it returns is the mutation phase.
	// compute != nil marks the timer as a lane event.
	compute func() func()
	laneKey int64
}

// At returns the time the timer is scheduled to fire.
func (t *Timer) At() float64 { return t.at }

// Cancel stops the timer; it is safe to call on an already-fired or
// already-cancelled timer. The heap slot is reclaimed lazily: either when
// the cancelled entry reaches the top, or by compaction once cancelled
// entries outnumber live ones.
func (t *Timer) Cancel() {
	if t.cancelled {
		return
	}
	t.cancelled = true
	if t.index >= 0 && t.eng != nil {
		t.eng.dead++
		t.eng.maybeCompact()
	}
}

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// EngineStats exposes the scheduler's internal occupancy for the benchmark
// harness: how big the heap actually is versus how many of its entries are
// still live, plus how many timer allocations the free list saved.
type EngineStats struct {
	// HeapSize is the number of entries in the event heap, including
	// lazily-deleted (cancelled) ones.
	HeapSize int
	// Live is the number of pending events that will actually fire.
	Live int
	// Cancelled is the number of dead entries awaiting compaction.
	Cancelled int
	// FreeListSize is the number of recycled timers ready for reuse.
	FreeListSize int
	// TimerPoolCap is the high-water-derived bound on FreeListSize: popped
	// timers beyond it are dropped for the GC instead of pooled, so a
	// flash-crowd peak does not pin a peak-sized free list for the rest of
	// a long run.
	TimerPoolCap int
	// Reused counts scheduling calls served from the free list.
	Reused uint64
	// Compactions counts lazy-deletion sweeps of the heap.
	Compactions uint64
	// PeakLaneWidth is the largest batch of same-timestamp lane events
	// (AtLane) executed as one unit — the upper bound on how much compute
	// the lane pool could overlap in a single instant.
	PeakLaneWidth int
	// LaneBatches / LaneEvents count executed lane batches and the lane
	// events they contained (LaneEvents/LaneBatches = mean batch width).
	LaneBatches uint64
	LaneEvents  uint64
}

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now  float64
	heap eventHeap
	seq  uint64
	rng  *rand.Rand

	// dead counts cancelled entries still occupying heap slots (lazy
	// deletion); free is the timer recycling pool, capped at a fraction of
	// peakHeap (the heap-occupancy high-water mark) so a burst of churn
	// does not pin a burst-sized pool forever.
	dead        int
	free        []*Timer
	peakHeap    int
	reused      uint64
	compactions uint64

	// postEvent, when set, runs after every fired event (after a whole
	// batch, for batched lane events) and before the next pop in
	// Step/Run — the deferred-work flush point clients like Net use to
	// settle rate retiming exactly once per event.
	postEvent func()

	// Lane execution state: laneWorkers bounds the compute pool (<=1 runs
	// computes inline), laneBatch/laneApply are per-batch scratch, and the
	// counters feed EngineStats.
	laneWorkers int
	laneBatch   []*Timer
	laneApply   []func()
	peakLane    int
	laneBatches uint64
	laneEvents  uint64
}

// NewEngine returns an engine whose randomness derives entirely from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Pending returns the number of live scheduled events (cancelled timers
// awaiting lazy deletion are excluded).
func (e *Engine) Pending() int { return len(e.heap) - e.dead }

// Stats returns the scheduler's occupancy counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		HeapSize:      len(e.heap),
		Live:          len(e.heap) - e.dead,
		Cancelled:     e.dead,
		FreeListSize:  len(e.free),
		TimerPoolCap:  e.timerPoolCap(),
		Reused:        e.reused,
		Compactions:   e.compactions,
		PeakLaneWidth: e.peakLane,
		LaneBatches:   e.laneBatches,
		LaneEvents:    e.laneEvents,
	}
}

// SetLaneParallelism bounds the pool that runs lane-event compute phases:
// n <= 1 runs them inline on the engine goroutine (serial mode), n > 1
// fans a batch's computes across up to n goroutines. Parallelism is pure
// scheduling: a lane batch's observable effects are identical for every
// n, because computes must be read-only with respect to shared state and
// applies always run serially in key order.
func (e *Engine) SetLaneParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.laneWorkers = n
}

// LaneParallelism returns the configured lane compute pool bound.
func (e *Engine) LaneParallelism() int {
	if e.laneWorkers < 1 {
		return 1
	}
	return e.laneWorkers
}

// SetPostEventHook installs fn to run after every fired event (once per
// whole batch for batched lane events) and before the next pop in Step and
// Run. It is the deferred-work flush point: Net registers its dirty-node
// retime flush here, so flow churn inside one event settles exactly once
// no matter how many flows the event touched. fn must not fire events but
// may schedule, reschedule and cancel timers freely. Only one hook is
// supported; installing a new one replaces the old.
func (e *Engine) SetPostEventHook(fn func()) { e.postEvent = fn }

// timerPoolCap bounds the free list at a quarter of the heap-occupancy
// high-water mark (plus a small floor so tiny runs still pool).
func (e *Engine) timerPoolCap() int { return e.peakHeap/4 + 64 }

// notePush records heap growth for the pool cap's high-water mark; call
// after every heap.Push.
func (e *Engine) notePush() {
	if len(e.heap) > e.peakHeap {
		e.peakHeap = len(e.heap)
	}
}

// alloc returns a zeroed timer, reusing a recycled one when available.
func (e *Engine) alloc() *Timer {
	if n := len(e.free); n > 0 {
		t := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		t.pooled = false
		e.reused++
		return t
	}
	return &Timer{eng: e}
}

// recycle returns a popped timer to the free list unless its fn
// re-scheduled it back into the heap; beyond the high-water cap the timer
// is dropped for the GC instead.
func (e *Engine) recycle(t *Timer) {
	if t.index != -1 {
		return
	}
	if len(e.free) >= e.timerPoolCap() {
		return
	}
	t.fn = nil
	t.compute = nil
	t.laneKey = 0
	t.cancelled = false
	t.pooled = true
	e.free = append(e.free, t)
}

// At schedules fn to run at absolute time t (clamped to now if in the
// past) and returns a cancellable handle.
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	timer := e.alloc()
	timer.at = t
	timer.seq = e.seq
	timer.fn = fn
	heap.Push(&e.heap, timer)
	e.notePush()
	return timer
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtLane schedules a lane event at absolute time t (clamped to now if in
// the past). Lane events scheduled for the same instant that are adjacent
// in (time, seq) order — i.e. not interleaved with a plain event at the
// same timestamp — execute as one batch: every compute runs first against
// the pre-batch state, then the returned apply closures run serially in
// ascending (key, seq) order. A compute must therefore be read-only with
// respect to state shared with other lane events (private state, e.g. a
// per-peer RNG or choker, is fair game); all shared-state mutation,
// engine RNG use and rescheduling belongs in the apply closure. A compute
// may return nil to skip its apply phase.
//
// With SetLaneParallelism(n>1) the computes of one batch run concurrently
// on up to n goroutines; results are indistinguishable from serial mode.
func (e *Engine) AtLane(t float64, key int64, compute func() func()) *Timer {
	if compute == nil {
		panic("sim: AtLane with nil compute")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	timer := e.alloc()
	timer.at = t
	timer.seq = e.seq
	timer.compute = compute
	timer.laneKey = key
	heap.Push(&e.heap, timer)
	e.notePush()
	return timer
}

// Reschedule moves a pending timer to absolute time t (clamped to now if
// in the past) by re-sorting it in place — no cancel-and-push garbage. The
// timer is assigned a fresh sequence number, so its ordering against
// same-instant events is exactly as if it had been cancelled and a new
// timer pushed.
//
// Valid targets: a pending timer (cancelled-but-still-in-heap ones are
// revived), or the currently firing timer from inside its own callback
// (it re-enters the heap instead of the free list). A timer whose event
// has otherwise completed may already have been recycled for an unrelated
// event — rescheduling it would corrupt the free list, so that is a
// panic, as is a cancelled timer already swept out by compaction.
func (e *Engine) Reschedule(t *Timer, at float64) {
	if t.pooled {
		panic("sim: Reschedule on a recycled timer")
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	t.at = at
	t.seq = e.seq
	if t.cancelled {
		t.cancelled = false
		if t.index >= 0 {
			e.dead--
		}
	}
	if t.index >= 0 {
		heap.Fix(&e.heap, t.index)
		return
	}
	heap.Push(&e.heap, t)
	e.notePush()
}

// maybeCompact sweeps cancelled entries out of the heap once they occupy
// more than half of it, re-establishing the heap invariant in one O(n)
// pass. Pop order is unchanged: (at, seq) is a total order, so any valid
// heap arrangement of the same live set pops identically.
func (e *Engine) maybeCompact() {
	if e.dead <= len(e.heap)/2 || e.dead < 64 {
		return
	}
	live := e.heap[:0]
	for _, t := range e.heap {
		if t.cancelled {
			t.index = -1
			e.recycle(t)
			continue
		}
		live = append(live, t)
	}
	for i := len(live); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = live
	for i, t := range e.heap {
		t.index = i
	}
	heap.Init(&e.heap)
	e.dead = 0
	e.compactions++
}

// runLaneBatch executes the lane batch starting at first, which has just
// been popped: it keeps popping lane events scheduled for the same instant
// (skipping cancelled entries of any kind) until the heap top is a plain
// event or a later time, runs every compute, then applies serially in
// ascending (key, seq) order. Apply closures may schedule, reschedule and
// cancel freely — including cancelling a later member of the same batch,
// whose apply is then skipped.
func (e *Engine) runLaneBatch(first *Timer) {
	batch := append(e.laneBatch[:0], first)
	for len(e.heap) > 0 {
		top := e.heap[0]
		if top.at != first.at {
			break
		}
		if top.cancelled {
			heap.Pop(&e.heap)
			e.dead--
			e.recycle(top)
			continue
		}
		if top.compute == nil {
			break
		}
		heap.Pop(&e.heap)
		batch = append(batch, top)
	}
	// Key order, not pop order, for both phases: computes are mutually
	// independent so their order is unobservable, and fixing one order
	// keeps serial and parallel modes trivially identical.
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].laneKey != batch[j].laneKey {
			return batch[i].laneKey < batch[j].laneKey
		}
		return batch[i].seq < batch[j].seq
	})
	e.laneBatch = batch

	applies := e.laneApply
	if cap(applies) < len(batch) {
		applies = make([]func(), len(batch))
	} else {
		applies = applies[:len(batch)]
	}
	e.laneApply = applies
	if workers := min(e.LaneParallelism(), len(batch)); workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					applies[i] = batch[i].compute()
				}
			}()
		}
		wg.Wait()
	} else {
		for i, t := range batch {
			applies[i] = t.compute()
		}
	}

	e.laneBatches++
	e.laneEvents += uint64(len(batch))
	if len(batch) > e.peakLane {
		e.peakLane = len(batch)
	}
	for i, t := range batch {
		if fn := applies[i]; fn != nil && !t.cancelled {
			fn()
		}
		applies[i] = nil
		e.laneBatch[i] = nil
		e.recycle(t)
	}
}

// fire runs one popped, non-cancelled event — a lane batch seeded by t, or
// a plain callback — with the clock already advanced to t.at.
func (e *Engine) fire(t *Timer) {
	e.now = t.at
	if t.compute != nil {
		e.runLaneBatch(t)
	} else {
		fn := t.fn
		fn()
		e.recycle(t)
	}
	if e.postEvent != nil {
		e.postEvent()
	}
}

// Step executes the next event (a whole batch, for batched lane events).
// It reports false when the queue is empty. Deferred work queued outside
// event context (e.g. flows started before the first event) is flushed via
// the post-event hook before the pop.
func (e *Engine) Step() bool {
	if e.postEvent != nil {
		e.postEvent()
	}
	for len(e.heap) > 0 {
		t := heap.Pop(&e.heap).(*Timer)
		if t.cancelled {
			e.dead--
			e.recycle(t)
			continue
		}
		e.fire(t)
		return true
	}
	return false
}

// Run executes events until the queue is empty or the next event is after
// `until`; the clock is finally advanced to `until` if it got that far.
func (e *Engine) Run(until float64) {
	if e.postEvent != nil {
		e.postEvent()
	}
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.cancelled {
			heap.Pop(&e.heap)
			e.dead--
			e.recycle(next)
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&e.heap)
		e.fire(next)
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes events until none remain.
func (e *Engine) RunUntilIdle() {
	for e.Step() {
	}
}
