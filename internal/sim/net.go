package sim

import (
	"fmt"
	"math"
)

// NodeID identifies a node (peer) in the fluid network.
type NodeID int32

// node carries a peer's access-link capacities and its active flows.
// Flows are kept in insertion-ordered slices (not maps) so that retiming
// walks them deterministically — event heap tie-breaking depends on
// scheduling order, and a map walk here would leak randomness into runs.
type node struct {
	upCap   float64 // bytes/second; math.Inf(1) = uncapped
	downCap float64
	upFlows []*Flow
	dnFlows []*Flow
}

func removeFlow(list *[]*Flow, f *Flow) {
	for i, x := range *list {
		if x == f {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}

// Flow is an in-progress fluid transfer between two nodes. A flow's rate is
// min(uploader share, downloader share), where a node's capacity is split
// equally among its active flows in each direction — the standard
// access-link fluid model for swarms without network bottlenecks (the
// paper's stated context: "the peers are well connected without severe
// network bottlenecks").
type Flow struct {
	net        *Net
	from, to   NodeID
	remaining  float64
	rate       float64
	lastUpdate float64
	timer      *Timer
	onDone     func()
	done       bool
}

// From returns the uploading node.
func (f *Flow) From() NodeID { return f.from }

// To returns the downloading node.
func (f *Flow) To() NodeID { return f.to }

// Remaining returns the bytes left to transfer as of the last settlement.
func (f *Flow) Remaining(now float64) float64 {
	rem := f.remaining - f.rate*(now-f.lastUpdate)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Rate returns the flow's current fluid rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Net is the fluid bandwidth model. All methods must be called from engine
// event context (single-threaded).
type Net struct {
	eng   *Engine
	nodes []*node
}

// NewNet returns an empty network bound to the engine.
func NewNet(eng *Engine) *Net {
	return &Net{eng: eng}
}

// AddNode registers a node with the given up/down capacities in
// bytes/second; non-positive values mean uncapped.
func (n *Net) AddNode(upCap, downCap float64) NodeID {
	if upCap <= 0 {
		upCap = math.Inf(1)
	}
	if downCap <= 0 {
		downCap = math.Inf(1)
	}
	n.nodes = append(n.nodes, &node{upCap: upCap, downCap: downCap})
	return NodeID(len(n.nodes) - 1)
}

// UploadCapacity returns the uploader-side capacity of id.
func (n *Net) UploadCapacity(id NodeID) float64 { return n.nodes[id].upCap }

// ActiveUploads returns the number of flows currently leaving id.
func (n *Net) ActiveUploads(id NodeID) int { return len(n.nodes[id].upFlows) }

// ActiveDownloads returns the number of flows currently entering id.
func (n *Net) ActiveDownloads(id NodeID) int { return len(n.nodes[id].dnFlows) }

// StartFlow begins transferring bytes from one node to another, invoking
// onDone (in event context) when the last byte arrives.
func (n *Net) StartFlow(from, to NodeID, bytes float64, onDone func()) *Flow {
	if bytes <= 0 {
		panic(fmt.Sprintf("sim: non-positive flow size %f", bytes))
	}
	if from == to {
		panic("sim: flow to self")
	}
	f := &Flow{
		net:        n,
		from:       from,
		to:         to,
		remaining:  bytes,
		lastUpdate: n.eng.Now(),
		onDone:     onDone,
	}
	n.nodes[from].upFlows = append(n.nodes[from].upFlows, f)
	n.nodes[to].dnFlows = append(n.nodes[to].dnFlows, f)
	n.retimeNode(from)
	n.retimeNode(to)
	return f
}

// Cancel aborts the flow; onDone is not invoked. Safe on completed flows.
func (f *Flow) Cancel() {
	if f.done {
		return
	}
	f.done = true
	if f.timer != nil {
		f.timer.Cancel()
	}
	n := f.net
	removeFlow(&n.nodes[f.from].upFlows, f)
	removeFlow(&n.nodes[f.to].dnFlows, f)
	n.retimeNode(f.from)
	n.retimeNode(f.to)
}

// settle charges elapsed time against remaining bytes.
func (f *Flow) settle(now float64) {
	if now > f.lastUpdate {
		f.remaining -= f.rate * (now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastUpdate = now
	}
}

// retimeNode recomputes the rate and completion time of every flow touching
// id. Counts at the far endpoints are unchanged by definition, so only
// these flows need work.
func (n *Net) retimeNode(id NodeID) {
	nd := n.nodes[id]
	for _, f := range nd.upFlows {
		n.retimeFlow(f)
	}
	for _, f := range nd.dnFlows {
		n.retimeFlow(f)
	}
}

func (n *Net) retimeFlow(f *Flow) {
	now := n.eng.Now()
	f.settle(now)
	up := n.nodes[f.from]
	dn := n.nodes[f.to]
	upShare := up.upCap / float64(len(up.upFlows))
	dnShare := dn.downCap / float64(len(dn.dnFlows))
	f.rate = math.Min(upShare, dnShare)
	if f.timer != nil {
		f.timer.Cancel()
	}
	var eta float64
	if math.IsInf(f.rate, 1) {
		eta = 0
	} else {
		eta = f.remaining / f.rate
	}
	f.timer = n.eng.After(eta, func() { n.finish(f) })
}

func (n *Net) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.remaining = 0
	removeFlow(&n.nodes[f.from].upFlows, f)
	removeFlow(&n.nodes[f.to].dnFlows, f)
	n.retimeNode(f.from)
	n.retimeNode(f.to)
	if f.onDone != nil {
		f.onDone()
	}
}
