package sim

import (
	"fmt"
	"math"
)

// NodeID identifies a node (peer) in the fluid network.
type NodeID int32

// flowList is an intrusive doubly-linked list of the flows in one
// direction of one node; dir selects which of the Flow's two link sets it
// threads. Insertion order is preserved and removal is O(1): the links
// live inside the Flow itself, so steady-state churn neither allocates
// nor shifts slices. Walk order (head to tail = insertion order) is
// exactly what the old slice implementation produced, which matters:
// retiming walks assign event-heap sequence numbers, and same-instant
// events fire in sequence order, so the walk order is part of the
// reproducibility contract — an order-changing removal (e.g. swap-remove)
// measurably perturbs fixed-seed runs.
type flowList struct {
	head, tail *Flow
	n          int
	dir        int // index into Flow.links: dirUp or dirDn
}

// Directions a flowList can thread through Flow.links.
const (
	dirUp = 0 // flows leaving a node (uploads)
	dirDn = 1 // flows entering a node (downloads)
)

// link is one direction's intrusive list hooks inside a Flow.
type link struct {
	prev, next *Flow
	attached   bool
}

// node carries a peer's access-link capacities and its active flows.
type node struct {
	upCap   float64 // bytes/second; math.Inf(1) = uncapped
	downCap float64
	upFlows flowList
	dnFlows flowList
}

func (l *flowList) pushBack(f *Flow) {
	f.links[l.dir] = link{prev: l.tail, attached: true}
	if l.tail != nil {
		l.tail.links[l.dir].next = f
	} else {
		l.head = f
	}
	l.tail = f
	l.n++
}

func (l *flowList) remove(f *Flow) {
	lk := &f.links[l.dir]
	if !lk.attached {
		return
	}
	if lk.prev != nil {
		lk.prev.links[l.dir].next = lk.next
	} else {
		l.head = lk.next
	}
	if lk.next != nil {
		lk.next.links[l.dir].prev = lk.prev
	} else {
		l.tail = lk.prev
	}
	*lk = link{}
	l.n--
}

// Flow is an in-progress fluid transfer between two nodes. A flow's rate is
// min(uploader share, downloader share), where a node's capacity is split
// equally among its active flows in each direction — the standard
// access-link fluid model for swarms without network bottlenecks (the
// paper's stated context: "the peers are well connected without severe
// network bottlenecks").
//
// Lifetime contract: when a flow completes or is cancelled the Net
// recycles it through a free list and a later StartFlow may reuse it for
// an unrelated transfer, so a *Flow handle is valid only until its
// completion callback runs or Cancel returns. The swarm layer complies by
// dropping its connection-slot references before cancelling.
type Flow struct {
	net        *Net
	from, to   NodeID
	remaining  float64
	rate       float64
	lastUpdate float64
	timer      *Timer
	onDone     func()
	done       bool
	// links are the intrusive hooks in the endpoints' flow lists
	// (dirUp = uploader's list, dirDn = downloader's list).
	links [2]link
	// finishFn is the completion-timer callback, bound once per Flow
	// object and reused across pool recycles.
	finishFn func()
}

// From returns the uploading node.
func (f *Flow) From() NodeID { return f.from }

// To returns the downloading node.
func (f *Flow) To() NodeID { return f.to }

// Remaining returns the bytes left to transfer as of the last settlement.
func (f *Flow) Remaining(now float64) float64 {
	rem := f.remaining - f.rate*(now-f.lastUpdate)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Rate returns the flow's current fluid rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Net is the fluid bandwidth model. All methods must be called from engine
// event context (single-threaded).
type Net struct {
	eng   *Engine
	nodes []*node
	// free is the Flow recycling pool (see the Flow lifetime contract).
	free []*Flow
}

// allocFlow returns a reset flow, reusing a recycled one when available.
func (n *Net) allocFlow() *Flow {
	if k := len(n.free); k > 0 {
		f := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return f
	}
	f := &Flow{net: n}
	f.finishFn = func() { n.finish(f) }
	return f
}

// recycleFlow returns a detached, done flow to the pool.
func (n *Net) recycleFlow(f *Flow) {
	f.onDone = nil
	n.free = append(n.free, f)
}

// NewNet returns an empty network bound to the engine.
func NewNet(eng *Engine) *Net {
	return &Net{eng: eng}
}

// AddNode registers a node with the given up/down capacities in
// bytes/second; non-positive values mean uncapped.
func (n *Net) AddNode(upCap, downCap float64) NodeID {
	if upCap <= 0 {
		upCap = math.Inf(1)
	}
	if downCap <= 0 {
		downCap = math.Inf(1)
	}
	n.nodes = append(n.nodes, &node{
		upCap:   upCap,
		downCap: downCap,
		upFlows: flowList{dir: dirUp},
		dnFlows: flowList{dir: dirDn},
	})
	return NodeID(len(n.nodes) - 1)
}

// UploadCapacity returns the uploader-side capacity of id.
func (n *Net) UploadCapacity(id NodeID) float64 { return n.nodes[id].upCap }

// ActiveUploads returns the number of flows currently leaving id.
func (n *Net) ActiveUploads(id NodeID) int { return n.nodes[id].upFlows.n }

// ActiveDownloads returns the number of flows currently entering id.
func (n *Net) ActiveDownloads(id NodeID) int { return n.nodes[id].dnFlows.n }

// StartFlow begins transferring bytes from one node to another, invoking
// onDone (in event context) when the last byte arrives.
func (n *Net) StartFlow(from, to NodeID, bytes float64, onDone func()) *Flow {
	if bytes <= 0 {
		panic(fmt.Sprintf("sim: non-positive flow size %f", bytes))
	}
	if from == to {
		panic("sim: flow to self")
	}
	f := n.allocFlow()
	f.from = from
	f.to = to
	f.remaining = bytes
	f.rate = 0
	f.lastUpdate = n.eng.Now()
	f.onDone = onDone
	f.done = false
	n.nodes[from].upFlows.pushBack(f)
	n.nodes[to].dnFlows.pushBack(f)
	n.retimeNode(from)
	n.retimeNode(to)
	return f
}

// detach unlinks the flow from both endpoints and cancels its timer.
func (f *Flow) detach() {
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
	n := f.net
	n.nodes[f.from].upFlows.remove(f)
	n.nodes[f.to].dnFlows.remove(f)
}

// Cancel aborts the flow; onDone is not invoked. Safe on completed flows.
func (f *Flow) Cancel() {
	if f.done {
		return
	}
	f.done = true
	f.detach()
	n := f.net
	n.retimeNode(f.from)
	n.retimeNode(f.to)
	n.recycleFlow(f)
}

// settle charges elapsed time against remaining bytes.
func (f *Flow) settle(now float64) {
	if now > f.lastUpdate {
		f.remaining -= f.rate * (now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastUpdate = now
	}
}

// retimeNode recomputes the rate and completion time of every flow touching
// id. Counts at the far endpoints are unchanged by definition, so only
// these flows need work.
func (n *Net) retimeNode(id NodeID) {
	nd := n.nodes[id]
	for f := nd.upFlows.head; f != nil; f = f.links[dirUp].next {
		n.retimeFlow(f)
	}
	for f := nd.dnFlows.head; f != nil; f = f.links[dirDn].next {
		n.retimeFlow(f)
	}
}

// retimeFlow refreshes one flow's rate and re-sorts its completion timer
// in place (Engine.Reschedule), so steady-state rate churn neither
// allocates nor leaves cancelled entries in the event heap.
func (n *Net) retimeFlow(f *Flow) {
	now := n.eng.Now()
	f.settle(now)
	up := n.nodes[f.from]
	dn := n.nodes[f.to]
	upShare := up.upCap / float64(up.upFlows.n)
	dnShare := dn.downCap / float64(dn.dnFlows.n)
	f.rate = math.Min(upShare, dnShare)
	var eta float64
	if !math.IsInf(f.rate, 1) {
		eta = f.remaining / f.rate
	}
	if f.timer == nil {
		f.timer = n.eng.After(eta, f.finishFn)
		return
	}
	n.eng.Reschedule(f.timer, now+eta)
}

func (n *Net) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.remaining = 0
	// The completion timer just fired; drop the handle (the engine recycles
	// it) and unlink from both endpoints.
	f.timer = nil
	f.detach()
	n.retimeNode(f.from)
	n.retimeNode(f.to)
	if f.onDone != nil {
		f.onDone()
	}
	n.recycleFlow(f)
}
