package sim

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// NodeID identifies a node (peer) in the fluid network.
type NodeID int32

// flowList is an intrusive doubly-linked list of the flows in one
// direction of one node; dir selects which of the Flow's two link sets it
// threads. Insertion order is preserved and removal is O(1): the links
// live inside the Flow itself, so steady-state churn neither allocates
// nor shifts slices. Walk order (head to tail = insertion order) is
// exactly what the old slice implementation produced, which matters:
// retiming walks assign event-heap sequence numbers, and same-instant
// events fire in sequence order, so the walk order is part of the
// reproducibility contract — an order-changing removal (e.g. swap-remove)
// measurably perturbs fixed-seed runs.
type flowList struct {
	head, tail *Flow
	n          int
	dir        int // index into Flow.links: dirUp or dirDn
}

// Directions a flowList can thread through Flow.links.
const (
	dirUp = 0 // flows leaving a node (uploads)
	dirDn = 1 // flows entering a node (downloads)
)

// link is one direction's intrusive list hooks inside a Flow.
type link struct {
	prev, next *Flow
	attached   bool
}

// node carries a peer's access-link capacities, its active flow lists and
// its dirty-set membership epoch. The per-direction fair shares — the only
// node state the retime compute phase reads per flow — live in the
// separate dense Net.shares slice so a flush's inner loop walks a compact
// array instead of dragging the flow-list headers through the cache.
type node struct {
	upCap   float64 // bytes/second; math.Inf(1) = uncapped
	downCap float64
	upFlows flowList
	dnFlows flowList
	// dirtyAt == Net.epoch marks the node as a member of the current
	// dirty set (deferred mode only).
	dirtyAt uint64
}

// nodeShare is the hot per-node retiming state: the per-flow fair share of
// each direction's capacity (cap / live flow count), maintained
// incrementally on every attach/detach. A flow's rate is
// min(shares[from].up, shares[to].dn) — two loads and a min, no division,
// which is what the parallel retime flush spends its time on.
type nodeShare struct {
	up, dn float64
}

func (l *flowList) pushBack(f *Flow) {
	f.links[l.dir] = link{prev: l.tail, attached: true}
	if l.tail != nil {
		l.tail.links[l.dir].next = f
	} else {
		l.head = f
	}
	l.tail = f
	l.n++
}

func (l *flowList) remove(f *Flow) {
	lk := &f.links[l.dir]
	if !lk.attached {
		return
	}
	if lk.prev != nil {
		lk.prev.links[l.dir].next = lk.next
	} else {
		l.head = lk.next
	}
	if lk.next != nil {
		lk.next.links[l.dir].prev = lk.prev
	} else {
		l.tail = lk.prev
	}
	*lk = link{}
	l.n--
}

// Flow is an in-progress fluid transfer between two nodes. A flow's rate is
// min(uploader share, downloader share), where a node's capacity is split
// equally among its active flows in each direction — the standard
// access-link fluid model for swarms without network bottlenecks (the
// paper's stated context: "the peers are well connected without severe
// network bottlenecks").
//
// Lifetime contract: when a flow completes or is cancelled the Net
// recycles it through a free list and a later StartFlow may reuse it for
// an unrelated transfer, so a *Flow handle is valid only until its
// completion callback runs or Cancel returns. The swarm layer complies by
// dropping its connection-slot references before cancelling.
type Flow struct {
	net        *Net
	from, to   NodeID
	remaining  float64
	rate       float64
	lastUpdate float64
	timer      *Timer
	onDone     func()
	done       bool
	// links are the intrusive hooks in the endpoints' flow lists
	// (dirUp = uploader's list, dirDn = downloader's list).
	links [2]link
	// eta is the flush scratch: the compute phase stores the freshly
	// computed time-to-completion here and the serial apply phase turns it
	// into a timer (re)schedule.
	eta float64
	// flushedAt == Net.epoch once the current flush has (re)scheduled this
	// flow's timer — the apply-phase dedupe for flows whose two endpoints
	// are both dirty.
	flushedAt uint64
	// stagedSeq is the event sequence number the staging phase of a
	// sharded flush pre-assigned to this flow's completion timer; the
	// shard-parallel apply phase installs it verbatim.
	stagedSeq uint64
	// finishFn is the completion-timer callback, bound once per Flow
	// object and reused across pool recycles.
	finishFn func()
}

// From returns the uploading node.
func (f *Flow) From() NodeID { return f.from }

// To returns the downloading node.
func (f *Flow) To() NodeID { return f.to }

// Remaining returns the bytes left to transfer as of the last settlement.
func (f *Flow) Remaining(now float64) float64 {
	rem := f.remaining - f.rate*(now-f.lastUpdate)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Rate returns the flow's current fluid rate in bytes/second. In the
// default deferred-retime mode the value is exact as of the last flush
// (the end of the previous event); same-instant churn lands at the next
// flush, before simulated time advances.
func (f *Flow) Rate() float64 { return f.rate }

// NetStats exposes the fluid model's deferred-retiming counters for the
// benchmark harness: how often the dirty set was flushed, how much work
// each flush carried, and the flow-pool occupancy bounds.
type NetStats struct {
	// DirtyFlushes counts flush passes that retimed at least one node
	// (clean per-event flushes are free and uncounted).
	DirtyFlushes uint64
	// RetimeBatches counts node shards processed across all flushes: each
	// dirty node is one batch whose flows are re-timed as a unit.
	// RetimeBatches/DirtyFlushes is the mean shard width.
	RetimeBatches uint64
	// PeakShardWidth is the widest dirty-node set a single flush fanned
	// across the retime workers — the per-event parallelism upper bound.
	PeakShardWidth int
	// PeakLiveFlows is the high-water mark of concurrently active flows.
	PeakLiveFlows int
	// FlowPoolCap is the high-water-derived bound on the flow free list:
	// recycled flows beyond it are dropped for the GC, so a flash-crowd
	// peak does not pin a peak-sized pool for the rest of a long run.
	FlowPoolCap int
	// FlowPoolSize is the current free-list occupancy.
	FlowPoolSize int
}

// Net is the fluid bandwidth model. All methods must be called from engine
// event context (single-threaded).
//
// Retiming is deferred by default: flow churn (StartFlow, Cancel, natural
// completion) only marks the two endpoints dirty, and the engine's
// post-event hook flushes the dirty set once per event — recomputing every
// affected flow's rate exactly once no matter how many times its endpoints
// were touched, then (re)scheduling completion timers serially in node-ID
// order so heap sequence assignment is deterministic for any worker count.
// SetEagerRetime(true) restores the PR 2 retime-on-every-churn behaviour;
// it exists as the property-test oracle.
type Net struct {
	eng    *Engine
	nodes  []node
	shares []nodeShare
	// free is the Flow recycling pool (see the Flow lifetime contract),
	// capped at a fraction of peakLive.
	free     []*Flow
	live     int
	peakLive int

	// Deferred-retime state: the dirty node set of the current epoch and
	// the flush counters behind Stats.
	eager         bool
	epoch         uint64
	dirty         []NodeID
	dirtyFlushes  uint64
	retimeBatches uint64
	peakShard     int

	// Sharded-apply scratch: stage[s] collects the flows whose completion
	// timers land in engine shard s (keyed by uploader), stagedShards the
	// shards with staged work this flush.
	stage        [][]*Flow
	stagedShards []int32
}

// laneRetimeMinShards is the dirty-set width below which a flush runs
// inline even when the engine has a lane worker pool: per-event flushes
// are typically two to four nodes wide and goroutine fan-out would cost
// more than the walk.
const laneRetimeMinShards = 64

// allocFlow returns a reset flow, reusing a recycled one when available.
func (n *Net) allocFlow() *Flow {
	if k := len(n.free); k > 0 {
		f := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return f
	}
	f := &Flow{net: n}
	f.finishFn = func() { n.finish(f) }
	return f
}

// flowPoolCap bounds the free list at a quarter of the live-flow
// high-water mark (plus a small floor so tiny runs still pool).
func (n *Net) flowPoolCap() int { return n.peakLive/4 + 64 }

// recycleFlow returns a detached, done flow to the pool, or drops it for
// the GC once the pool is at its high-water cap.
func (n *Net) recycleFlow(f *Flow) {
	f.onDone = nil
	if len(n.free) >= n.flowPoolCap() {
		return
	}
	n.free = append(n.free, f)
}

// NewNet returns an empty network bound to the engine and registers its
// deferred-retime flush as the engine's post-event hook.
func NewNet(eng *Engine) *Net {
	n := &Net{eng: eng, epoch: 1}
	eng.SetPostEventHook(n.Flush)
	return n
}

// SetEagerRetime toggles the retained eager retiming path: every churn
// immediately re-times all flows at both endpoints, exactly as before the
// deferred flush existed. It is the reference oracle for the
// deferred-mode property and fuzz tests, not a production mode. Toggling
// with flows in flight is a programming error (pending dirty marks would
// be stranded), so it panics unless the network is idle.
func (n *Net) SetEagerRetime(eager bool) {
	if n.live != 0 || len(n.dirty) != 0 {
		panic("sim: SetEagerRetime with active flows")
	}
	n.eager = eager
}

// Stats returns the deferred-retiming and pool counters.
func (n *Net) Stats() NetStats {
	return NetStats{
		DirtyFlushes:   n.dirtyFlushes,
		RetimeBatches:  n.retimeBatches,
		PeakShardWidth: n.peakShard,
		PeakLiveFlows:  n.peakLive,
		FlowPoolCap:    n.flowPoolCap(),
		FlowPoolSize:   len(n.free),
	}
}

// AddNode registers a node with the given up/down capacities in
// bytes/second; non-positive values mean uncapped.
func (n *Net) AddNode(upCap, downCap float64) NodeID {
	if upCap <= 0 {
		upCap = math.Inf(1)
	}
	if downCap <= 0 {
		downCap = math.Inf(1)
	}
	n.nodes = append(n.nodes, node{
		upCap:   upCap,
		downCap: downCap,
		upFlows: flowList{dir: dirUp},
		dnFlows: flowList{dir: dirDn},
	})
	n.shares = append(n.shares, nodeShare{})
	return NodeID(len(n.nodes) - 1)
}

// UploadCapacity returns the uploader-side capacity of id.
func (n *Net) UploadCapacity(id NodeID) float64 { return n.nodes[id].upCap }

// ActiveUploads returns the number of flows currently leaving id.
func (n *Net) ActiveUploads(id NodeID) int { return n.nodes[id].upFlows.n }

// ActiveDownloads returns the number of flows currently entering id.
func (n *Net) ActiveDownloads(id NodeID) int { return n.nodes[id].dnFlows.n }

// attach links f into both endpoints' lists and refreshes their shares.
func (n *Net) attach(f *Flow) {
	up := &n.nodes[f.from]
	dn := &n.nodes[f.to]
	up.upFlows.pushBack(f)
	dn.dnFlows.pushBack(f)
	n.shares[f.from].up = up.upCap / float64(up.upFlows.n)
	n.shares[f.to].dn = dn.downCap / float64(dn.dnFlows.n)
}

// detachFlow unlinks f from both endpoints' lists and refreshes their
// shares (a direction with zero flows keeps a stale share; it is never
// read, because rates are only computed for attached flows).
func (n *Net) detachFlow(f *Flow) {
	up := &n.nodes[f.from]
	dn := &n.nodes[f.to]
	up.upFlows.remove(f)
	dn.dnFlows.remove(f)
	if k := up.upFlows.n; k > 0 {
		n.shares[f.from].up = up.upCap / float64(k)
	}
	if k := dn.dnFlows.n; k > 0 {
		n.shares[f.to].dn = dn.downCap / float64(k)
	}
}

// markDirty adds id to the current epoch's dirty set (deferred mode).
func (n *Net) markDirty(id NodeID) {
	if n.nodes[id].dirtyAt == n.epoch {
		return
	}
	n.nodes[id].dirtyAt = n.epoch
	n.dirty = append(n.dirty, id)
}

// churn records flow-count change at both endpoints: eager mode re-times
// immediately (the oracle path), deferred mode marks dirty for the
// post-event flush.
func (n *Net) churn(f *Flow) {
	if n.eager {
		n.retimeNode(f.from)
		n.retimeNode(f.to)
		return
	}
	n.markDirty(f.from)
	n.markDirty(f.to)
}

// StartFlow begins transferring bytes from one node to another, invoking
// onDone (in event context) when the last byte arrives.
func (n *Net) StartFlow(from, to NodeID, bytes float64, onDone func()) *Flow {
	if bytes <= 0 {
		panic(fmt.Sprintf("sim: non-positive flow size %f", bytes))
	}
	if from == to {
		panic("sim: flow to self")
	}
	f := n.allocFlow()
	f.from = from
	f.to = to
	f.remaining = bytes
	f.rate = 0
	f.lastUpdate = n.eng.Now()
	f.onDone = onDone
	f.done = false
	n.live++
	if n.live > n.peakLive {
		n.peakLive = n.live
	}
	n.attach(f)
	n.churn(f)
	return f
}

// detach unlinks the flow from both endpoints and cancels its timer.
func (f *Flow) detach() {
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
	f.net.detachFlow(f)
}

// Cancel aborts the flow; onDone is not invoked. Safe on completed flows.
func (f *Flow) Cancel() {
	if f.done {
		return
	}
	f.done = true
	f.detach()
	n := f.net
	n.live--
	n.churn(f)
	n.recycleFlow(f)
}

// settle charges elapsed time against remaining bytes.
func (f *Flow) settle(now float64) {
	if now > f.lastUpdate {
		f.remaining -= f.rate * (now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastUpdate = now
	}
}

// Flush re-times every flow touching a dirty node and clears the dirty
// set. The engine invokes it as the post-event hook — once per plain
// event and once per same-instant lane batch — so it normally needs no
// explicit calls; tests and direct Net drivers may call it to settle
// timers before inspecting engine state. A clean flush is a nil check.
//
// The pass has two phases. The compute phase settles each affected flow
// at the current instant and recomputes its rate and ETA — pure per-flow
// writes with read-only shared state, fanned across the engine's lane
// worker pool sharded by NodeID for wide flushes (a flow whose endpoints
// are both dirty is owned by its uploader's shard, so no flow is touched
// by two workers). The apply phase then (re)schedules completion timers
// serially in ascending node-ID order, walking each node's flow lists in
// insertion order with epoch-based dedupe, so heap sequence assignment —
// and with it same-instant tie-breaking — is byte-identical for any
// worker count.
func (n *Net) Flush() {
	if len(n.dirty) == 0 {
		return
	}
	var t0 time.Time
	timing := n.eng.timing
	if timing != nil {
		t0 = time.Now()
	}
	now := n.eng.Now()
	slices.Sort(n.dirty)
	n.dirtyFlushes++
	n.retimeBatches += uint64(len(n.dirty))
	if len(n.dirty) > n.peakShard {
		n.peakShard = len(n.dirty)
	}

	if workers := min(n.eng.LaneParallelism(), len(n.dirty)); workers > 1 && len(n.dirty) >= laneRetimeMinShards {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(n.dirty) {
						return
					}
					n.computeShard(n.dirty[i], now)
				}
			}()
		}
		wg.Wait()
		if n.eng.sharded() {
			n.applyStaged(now)
		} else {
			for _, id := range n.dirty {
				nd := &n.nodes[id]
				for f := nd.upFlows.head; f != nil; f = f.links[dirUp].next {
					n.applyRetime(f, now)
				}
				for f := nd.dnFlows.head; f != nil; f = f.links[dirDn].next {
					n.applyRetime(f, now)
				}
			}
		}
	} else {
		// Serial fast path: fuse compute and apply into one walk. The
		// visit order and dedupe are exactly the two-phase apply's, and
		// computeFlow's result does not depend on when it runs within the
		// flush (shares are fixed, settle is idempotent at one instant),
		// so the schedule — and the run — is bit-identical to the
		// parallel path.
		for _, id := range n.dirty {
			nd := &n.nodes[id]
			for f := nd.upFlows.head; f != nil; f = f.links[dirUp].next {
				n.retimeFused(f, now)
			}
			for f := nd.dnFlows.head; f != nil; f = f.links[dirDn].next {
				n.retimeFused(f, now)
			}
		}
	}
	n.dirty = n.dirty[:0]
	n.epoch++
	if timing != nil {
		timing.RetimeFlush.Add(time.Since(t0).Nanoseconds())
	}
}

// retimeFused is the serial flush's one-pass compute+apply for a single
// flow, with the same epoch dedupe applyRetime uses. Completion timers are
// keyed by uploader, so on a sharded engine they allocate from — and push
// into — the uploader's subheap, exactly like the staged parallel apply.
func (n *Net) retimeFused(f *Flow, now float64) {
	if f.flushedAt == n.epoch {
		return
	}
	f.flushedAt = n.epoch
	n.computeFlow(f, now)
	if f.timer == nil {
		f.timer = n.eng.AfterKey(f.eta, int64(f.from), f.finishFn)
		return
	}
	n.eng.Reschedule(f.timer, now+f.eta)
}

// applyStaged is the sharded-engine apply phase, replacing the serial
// timer-(re)schedule walk with two phases that together are bit-identical
// to it for any worker count:
//
// Phase A (serial, cheap) walks the dirty nodes in exactly the serial
// apply's order — ascending node ID, upload list then download list,
// insertion order, epoch dedupe — and assigns each flow the sequence
// number the serial walk would have given its timer, staging the flow into
// the engine shard that owns its completion timer (keyed by uploader, the
// same owner rule the compute phase shards by).
//
// Phase B installs the staged (at, seq) pairs with heapPush/heapFix, one
// shard at a time — in parallel across the lane worker pool when the
// flush is wide, since shards share no heap, free list or counter state.
// Cross-shard pop order is already fixed by the pre-assigned global
// (when, seq) total order, so the merge tree simply rebuilds at the next
// peek.
func (n *Net) applyStaged(now float64) {
	e := n.eng
	if len(n.stage) != len(e.shards) {
		n.stage = make([][]*Flow, len(e.shards))
	}
	for _, id := range n.dirty {
		nd := &n.nodes[id]
		for f := nd.upFlows.head; f != nil; f = f.links[dirUp].next {
			n.stageRetime(f)
		}
		for f := nd.dnFlows.head; f != nil; f = f.links[dirDn].next {
			n.stageRetime(f)
		}
	}
	if workers := min(e.LaneParallelism(), len(n.stagedShards)); workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(n.stagedShards) {
						return
					}
					n.applyStagedShard(n.stagedShards[i], now)
				}
			}()
		}
		wg.Wait()
	} else {
		for _, s := range n.stagedShards {
			n.applyStagedShard(s, now)
		}
	}
	n.stagedShards = n.stagedShards[:0]
	e.treeDirty = true
}

// stageRetime assigns f's completion timer its sequence number and parks
// the flow on its owning shard's stage list (phase A).
func (n *Net) stageRetime(f *Flow) {
	if f.flushedAt == n.epoch {
		return
	}
	f.flushedAt = n.epoch
	e := n.eng
	e.seq++
	f.stagedSeq = e.seq
	s := e.shardFor(int64(f.from))
	if len(n.stage[s]) == 0 {
		n.stagedShards = append(n.stagedShards, s)
	}
	n.stage[s] = append(n.stage[s], f)
}

// applyStagedShard installs one shard's staged timers (phase B). Safe to
// run concurrently for different shards: every touched structure — the
// subheap, its free list, its high-water marks, the flows themselves — is
// owned by exactly this shard during the apply.
func (n *Net) applyStagedShard(s int32, now float64) {
	e := n.eng
	sh := &e.shards[s]
	for i, f := range n.stage[s] {
		at := now + f.eta
		if t := f.timer; t != nil {
			t.at = at
			t.seq = f.stagedSeq
			heapFix(sh.heap, t.index)
		} else {
			t := e.alloc(s)
			t.at = at
			t.seq = f.stagedSeq
			t.fn = f.finishFn
			heapPush(&sh.heap, t)
			if len(sh.heap) > sh.peak {
				sh.peak = len(sh.heap)
			}
			f.timer = t
		}
		n.stage[s][i] = nil
	}
	n.stage[s] = n.stage[s][:0]
}

// computeShard is one dirty node's compute phase: settle, new rate and
// ETA for every flow the shard owns. A download whose uploader is also
// dirty belongs to the uploader's shard (skip here), so each flow is
// written by exactly one worker.
func (n *Net) computeShard(id NodeID, now float64) {
	nd := &n.nodes[id]
	for f := nd.upFlows.head; f != nil; f = f.links[dirUp].next {
		n.computeFlow(f, now)
	}
	for f := nd.dnFlows.head; f != nil; f = f.links[dirDn].next {
		if n.nodes[f.from].dirtyAt == n.epoch {
			continue
		}
		n.computeFlow(f, now)
	}
}

// computeFlow settles f at now and refreshes its rate and ETA from the
// precomputed endpoint shares.
func (n *Net) computeFlow(f *Flow, now float64) {
	f.settle(now)
	f.rate = math.Min(n.shares[f.from].up, n.shares[f.to].dn)
	if math.IsInf(f.rate, 1) {
		f.eta = 0
		return
	}
	f.eta = f.remaining / f.rate
}

// applyRetime (re)schedules f's completion timer from the ETA the compute
// phase stored, once per flush (flows with two dirty endpoints appear in
// two walks).
func (n *Net) applyRetime(f *Flow, now float64) {
	if f.flushedAt == n.epoch {
		return
	}
	f.flushedAt = n.epoch
	if f.timer == nil {
		f.timer = n.eng.AfterKey(f.eta, int64(f.from), f.finishFn)
		return
	}
	n.eng.Reschedule(f.timer, now+f.eta)
}

// retimeNode is the eager oracle: recompute the rate and completion time
// of every flow touching id, immediately. Counts at the far endpoints are
// unchanged by definition, so only these flows need work.
func (n *Net) retimeNode(id NodeID) {
	nd := &n.nodes[id]
	for f := nd.upFlows.head; f != nil; f = f.links[dirUp].next {
		n.retimeFlow(f)
	}
	for f := nd.dnFlows.head; f != nil; f = f.links[dirDn].next {
		n.retimeFlow(f)
	}
}

// retimeFlow refreshes one flow's rate and re-sorts its completion timer
// in place (Engine.Reschedule), so steady-state rate churn neither
// allocates nor leaves cancelled entries in the event heap.
func (n *Net) retimeFlow(f *Flow) {
	now := n.eng.Now()
	n.computeFlow(f, now)
	if f.timer == nil {
		f.timer = n.eng.AfterKey(f.eta, int64(f.from), f.finishFn)
		return
	}
	n.eng.Reschedule(f.timer, now+f.eta)
}

func (n *Net) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.remaining = 0
	// The completion timer just fired; drop the handle (the engine recycles
	// it) and unlink from both endpoints.
	f.timer = nil
	f.detach()
	n.live--
	n.churn(f)
	if f.onDone != nil {
		f.onDone()
	}
	n.recycleFlow(f)
}
