package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %f", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events out of scheduling order: %v", order)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(1, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // double cancel is safe
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestEngineAfterAndPastClamp(t *testing.T) {
	e := NewEngine(1)
	var at []float64
	e.At(10, func() {
		at = append(at, e.Now())
		e.After(5, func() { at = append(at, e.Now()) })
		e.At(3, func() { at = append(at, e.Now()) }) // in the past: clamps to now
		e.After(-1, func() { at = append(at, e.Now()) })
	})
	e.RunUntilIdle()
	want := []float64{10, 10, 10, 15}
	if len(at) != 4 {
		t.Fatalf("fired %v", at)
	}
	for i, w := range want {
		if at[i] != w {
			t.Fatalf("fire times %v, want %v", at, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() { count++ })
	}
	e.Run(5.5)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5.5 {
		t.Fatalf("Now = %f, want 5.5", e.Now())
	}
	e.Run(100)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			e.After(1, rec)
		}
	}
	e.After(1, rec)
	e.RunUntilIdle()
	if depth != 5 || e.Now() != 5 {
		t.Fatalf("depth=%d now=%f", depth, e.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(7)
		var times []float64
		var spawn func()
		spawn = func() {
			times = append(times, e.Now())
			if len(times) < 50 {
				e.After(e.RNG().Float64(), spawn)
			}
		}
		e.At(0, spawn)
		e.RunUntilIdle()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %f vs %f", i, a[i], b[i])
		}
	}
}

func TestFlowSingleTransferTime(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	seed := n.AddNode(20480, 0) // 20 kB/s up, the paper's default cap
	peer := n.AddNode(0, 0)
	var doneAt float64 = -1
	n.StartFlow(seed, peer, 204800, func() { doneAt = e.Now() }) // 200 kB
	e.RunUntilIdle()
	if math.Abs(doneAt-10) > 1e-9 {
		t.Fatalf("200 kB at 20 kB/s finished at %f, want 10", doneAt)
	}
}

func TestFlowEqualSharing(t *testing.T) {
	// Two simultaneous flows from one uploader: each gets half the
	// capacity, so both finish in twice the solo time.
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1000, 0)
	a := n.AddNode(0, 0)
	b := n.AddNode(0, 0)
	var ta, tb float64
	n.StartFlow(up, a, 1000, func() { ta = e.Now() })
	n.StartFlow(up, b, 1000, func() { tb = e.Now() })
	e.RunUntilIdle()
	if math.Abs(ta-2) > 1e-9 || math.Abs(tb-2) > 1e-9 {
		t.Fatalf("finish times %f %f, want 2 2", ta, tb)
	}
}

func TestFlowRateRecomputedOnDeparture(t *testing.T) {
	// Flow B starts halfway through flow A's life; when B finishes, A's
	// rate doubles again. A: 1000 B at 1000 B/s. At t=0 both A and B
	// (500 B) start: each at 500 B/s. B finishes at t=1 (500 B). A then
	// has 500 B left at full rate: done at t=2.
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1000, 0)
	x := n.AddNode(0, 0)
	y := n.AddNode(0, 0)
	var ta, tb float64
	n.StartFlow(up, x, 1000, func() { ta = e.Now() })
	n.StartFlow(up, y, 500, func() { tb = e.Now() })
	e.RunUntilIdle()
	if math.Abs(tb-1) > 1e-9 {
		t.Fatalf("B finished at %f, want 1", tb)
	}
	if math.Abs(ta-1.5) > 1e-9 {
		// A transfers 500 B in the first second (shared), then 500 B at
		// 1000 B/s: total 1.5 s.
		t.Fatalf("A finished at %f, want 1.5", ta)
	}
}

func TestFlowDownloadCapBinds(t *testing.T) {
	// Uploader is fast; downloader capped at 100 B/s.
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1e6, 0)
	dn := n.AddNode(0, 100)
	var done float64
	n.StartFlow(up, dn, 1000, func() { done = e.Now() })
	e.RunUntilIdle()
	if math.Abs(done-10) > 1e-9 {
		t.Fatalf("done at %f, want 10", done)
	}
}

func TestFlowCancel(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1000, 0)
	a := n.AddNode(0, 0)
	b := n.AddNode(0, 0)
	fired := false
	f := n.StartFlow(up, a, 1000, func() { fired = true })
	var tb float64
	n.StartFlow(up, b, 1000, func() { tb = e.Now() })
	e.After(0.5, func() { f.Cancel() })
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled flow completed")
	}
	// B: 0.5 s at 500 B/s = 250 B, then 750 B at 1000 B/s = 0.75 s.
	if math.Abs(tb-1.25) > 1e-9 {
		t.Fatalf("B finished at %f, want 1.25", tb)
	}
	if n.ActiveUploads(up) != 0 || n.ActiveDownloads(a) != 0 {
		t.Fatal("flow accounting leaked")
	}
	f.Cancel() // idempotent
}

func TestFlowUncappedIsInstant(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	a := n.AddNode(0, 0)
	b := n.AddNode(0, 0)
	var done float64 = -1
	n.StartFlow(a, b, 1e12, func() { done = e.Now() })
	e.RunUntilIdle()
	if done != 0 {
		t.Fatalf("uncapped flow took %f", done)
	}
}

func TestFlowPanics(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	a := n.AddNode(1, 1)
	for _, fn := range []func(){
		func() { n.StartFlow(a, a, 10, nil) },
		func() { n.StartFlow(a, n.AddNode(1, 1), 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFlowRemainingView(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(100, 0)
	dn := n.AddNode(0, 0)
	f := n.StartFlow(up, dn, 1000, nil)
	e.Run(3)
	if got := f.Remaining(e.Now()); math.Abs(got-700) > 1e-6 {
		t.Fatalf("Remaining = %f, want 700", got)
	}
	if f.Rate() != 100 {
		t.Fatalf("Rate = %f", f.Rate())
	}
	if f.From() != up || f.To() != dn {
		t.Fatal("endpoints wrong")
	}
}

// Property: total bytes delivered equal total bytes injected, and every
// uploader's throughput never exceeds its capacity (conservation + cap).
func TestQuickFlowConservation(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		e := NewEngine(seed)
		n := NewNet(e)
		const upCap = 1000.0
		up := n.AddNode(upCap, 0)
		var total float64
		var delivered float64
		for _, s := range sizes {
			bytes := float64(s%5000) + 1
			total += bytes
			dst := n.AddNode(0, 0)
			// Stagger starts deterministically.
			b := bytes
			e.At(float64(s%7), func() {
				n.StartFlow(up, dst, b, func() { delivered += b })
			})
		}
		e.RunUntilIdle()
		if math.Abs(delivered-total) > 1e-6 {
			return false
		}
		// Cap check: everything uploaded in >= total/upCap seconds after
		// the first start (starts happen within the first 7 s).
		return e.Now() >= total/upCap-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

func BenchmarkNetChurningFlows(b *testing.B) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1e6, 0)
	peers := make([]NodeID, 16)
	for i := range peers {
		peers[i] = n.AddNode(0, 1e5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.StartFlow(up, peers[i%16], 16384, nil)
		for e.Step() && n.ActiveUploads(up) > 8 {
		}
	}
}
