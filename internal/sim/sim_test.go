package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %f", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events out of scheduling order: %v", order)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(1, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // double cancel is safe
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestEngineAfterAndPastClamp(t *testing.T) {
	e := NewEngine(1)
	var at []float64
	e.At(10, func() {
		at = append(at, e.Now())
		e.After(5, func() { at = append(at, e.Now()) })
		e.At(3, func() { at = append(at, e.Now()) }) // in the past: clamps to now
		e.After(-1, func() { at = append(at, e.Now()) })
	})
	e.RunUntilIdle()
	want := []float64{10, 10, 10, 15}
	if len(at) != 4 {
		t.Fatalf("fired %v", at)
	}
	for i, w := range want {
		if at[i] != w {
			t.Fatalf("fire times %v, want %v", at, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() { count++ })
	}
	e.Run(5.5)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5.5 {
		t.Fatalf("Now = %f, want 5.5", e.Now())
	}
	e.Run(100)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			e.After(1, rec)
		}
	}
	e.After(1, rec)
	e.RunUntilIdle()
	if depth != 5 || e.Now() != 5 {
		t.Fatalf("depth=%d now=%f", depth, e.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(7)
		var times []float64
		var spawn func()
		spawn = func() {
			times = append(times, e.Now())
			if len(times) < 50 {
				e.After(e.RNG().Float64(), spawn)
			}
		}
		e.At(0, spawn)
		e.RunUntilIdle()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %f vs %f", i, a[i], b[i])
		}
	}
}

func TestFlowSingleTransferTime(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	seed := n.AddNode(20480, 0) // 20 kB/s up, the paper's default cap
	peer := n.AddNode(0, 0)
	var doneAt float64 = -1
	n.StartFlow(seed, peer, 204800, func() { doneAt = e.Now() }) // 200 kB
	e.RunUntilIdle()
	if math.Abs(doneAt-10) > 1e-9 {
		t.Fatalf("200 kB at 20 kB/s finished at %f, want 10", doneAt)
	}
}

func TestFlowEqualSharing(t *testing.T) {
	// Two simultaneous flows from one uploader: each gets half the
	// capacity, so both finish in twice the solo time.
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1000, 0)
	a := n.AddNode(0, 0)
	b := n.AddNode(0, 0)
	var ta, tb float64
	n.StartFlow(up, a, 1000, func() { ta = e.Now() })
	n.StartFlow(up, b, 1000, func() { tb = e.Now() })
	e.RunUntilIdle()
	if math.Abs(ta-2) > 1e-9 || math.Abs(tb-2) > 1e-9 {
		t.Fatalf("finish times %f %f, want 2 2", ta, tb)
	}
}

func TestFlowRateRecomputedOnDeparture(t *testing.T) {
	// Flow B starts halfway through flow A's life; when B finishes, A's
	// rate doubles again. A: 1000 B at 1000 B/s. At t=0 both A and B
	// (500 B) start: each at 500 B/s. B finishes at t=1 (500 B). A then
	// has 500 B left at full rate: done at t=2.
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1000, 0)
	x := n.AddNode(0, 0)
	y := n.AddNode(0, 0)
	var ta, tb float64
	n.StartFlow(up, x, 1000, func() { ta = e.Now() })
	n.StartFlow(up, y, 500, func() { tb = e.Now() })
	e.RunUntilIdle()
	if math.Abs(tb-1) > 1e-9 {
		t.Fatalf("B finished at %f, want 1", tb)
	}
	if math.Abs(ta-1.5) > 1e-9 {
		// A transfers 500 B in the first second (shared), then 500 B at
		// 1000 B/s: total 1.5 s.
		t.Fatalf("A finished at %f, want 1.5", ta)
	}
}

func TestFlowDownloadCapBinds(t *testing.T) {
	// Uploader is fast; downloader capped at 100 B/s.
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1e6, 0)
	dn := n.AddNode(0, 100)
	var done float64
	n.StartFlow(up, dn, 1000, func() { done = e.Now() })
	e.RunUntilIdle()
	if math.Abs(done-10) > 1e-9 {
		t.Fatalf("done at %f, want 10", done)
	}
}

func TestFlowCancel(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1000, 0)
	a := n.AddNode(0, 0)
	b := n.AddNode(0, 0)
	fired := false
	f := n.StartFlow(up, a, 1000, func() { fired = true })
	var tb float64
	n.StartFlow(up, b, 1000, func() { tb = e.Now() })
	e.After(0.5, func() { f.Cancel() })
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled flow completed")
	}
	// B: 0.5 s at 500 B/s = 250 B, then 750 B at 1000 B/s = 0.75 s.
	if math.Abs(tb-1.25) > 1e-9 {
		t.Fatalf("B finished at %f, want 1.25", tb)
	}
	if n.ActiveUploads(up) != 0 || n.ActiveDownloads(a) != 0 {
		t.Fatal("flow accounting leaked")
	}
	f.Cancel() // idempotent
}

func TestFlowUncappedIsInstant(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	a := n.AddNode(0, 0)
	b := n.AddNode(0, 0)
	var done float64 = -1
	n.StartFlow(a, b, 1e12, func() { done = e.Now() })
	e.RunUntilIdle()
	if done != 0 {
		t.Fatalf("uncapped flow took %f", done)
	}
}

func TestFlowPanics(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	a := n.AddNode(1, 1)
	for _, fn := range []func(){
		func() { n.StartFlow(a, a, 10, nil) },
		func() { n.StartFlow(a, n.AddNode(1, 1), 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFlowRemainingView(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(100, 0)
	dn := n.AddNode(0, 0)
	f := n.StartFlow(up, dn, 1000, nil)
	e.Run(3)
	if got := f.Remaining(e.Now()); math.Abs(got-700) > 1e-6 {
		t.Fatalf("Remaining = %f, want 700", got)
	}
	if f.Rate() != 100 {
		t.Fatalf("Rate = %f", f.Rate())
	}
	if f.From() != up || f.To() != dn {
		t.Fatal("endpoints wrong")
	}
}

// Property: total bytes delivered equal total bytes injected, and every
// uploader's throughput never exceeds its capacity (conservation + cap).
func TestQuickFlowConservation(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		e := NewEngine(seed)
		n := NewNet(e)
		const upCap = 1000.0
		up := n.AddNode(upCap, 0)
		var total float64
		var delivered float64
		for _, s := range sizes {
			bytes := float64(s%5000) + 1
			total += bytes
			dst := n.AddNode(0, 0)
			// Stagger starts deterministically.
			b := bytes
			e.At(float64(s%7), func() {
				n.StartFlow(up, dst, b, func() { delivered += b })
			})
		}
		e.RunUntilIdle()
		if math.Abs(delivered-total) > 1e-6 {
			return false
		}
		// Cap check: everything uploaded in >= total/upCap seconds after
		// the first start (starts happen within the first 7 s).
		return e.Now() >= total/upCap-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

func BenchmarkNetChurningFlows(b *testing.B) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1e6, 0)
	peers := make([]NodeID, 16)
	for i := range peers {
		peers[i] = n.AddNode(0, 1e5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.StartFlow(up, peers[i%16], 16384, nil)
		for e.Step() && n.ActiveUploads(up) > 8 {
		}
	}
}

// --- PR 2: retiming, pooled timers, lazy deletion ---

func TestEngineReschedule(t *testing.T) {
	e := NewEngine(1)
	var order []string
	tm := e.At(10, func() { order = append(order, "moved") })
	e.At(5, func() { order = append(order, "five") })
	e.Reschedule(tm, 2)
	e.RunUntilIdle()
	if len(order) != 2 || order[0] != "moved" || order[1] != "five" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %f", e.Now())
	}
}

// TestRescheduleTieBreakMatchesCancelPush pins the determinism contract:
// rescheduling a timer must order it against same-instant events exactly
// as if it had been cancelled and a fresh timer pushed.
func TestRescheduleTieBreakMatchesCancelPush(t *testing.T) {
	run := func(reschedule bool) []int {
		e := NewEngine(1)
		var order []int
		a := e.At(50, func() { order = append(order, 0) })
		e.At(7, func() { order = append(order, 1) })
		if reschedule {
			e.Reschedule(a, 7) // same instant as event 1, later seq
		} else {
			a.Cancel()
			e.At(7, func() { order = append(order, 0) })
		}
		e.RunUntilIdle()
		return order
	}
	got, want := run(true), run(false)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("reschedule order %v, cancel+push order %v", got, want)
	}
}

func TestRescheduleClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at float64
	tm := e.At(30, func() { at = e.Now() })
	e.At(10, func() { e.Reschedule(tm, 3) }) // in the past: clamps to now
	e.RunUntilIdle()
	if at != 10 {
		t.Fatalf("fired at %f, want 10", at)
	}
}

func TestRescheduleRevivesCancelledAndFired(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := e.At(1, func() { fired++ })
	tm.Cancel()
	e.Reschedule(tm, 2) // revive a cancelled timer in the heap
	e.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("revived timer fired %d times, want 1", fired)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d after idle", got)
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	var timers []*Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, e.After(float64(i+1), func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for _, tm := range timers[:6] {
		tm.Cancel()
		tm.Cancel() // double cancel must not double-count
	}
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4 (cancelled excluded)", e.Pending())
	}
	st := e.Stats()
	if st.Live != 4 || st.Live+st.Cancelled != st.HeapSize {
		t.Fatalf("Stats inconsistent: %+v", st)
	}
	e.RunUntilIdle()
	if e.Pending() != 0 || e.Stats().HeapSize != 0 {
		t.Fatalf("after idle: %+v", e.Stats())
	}
}

// TestCompactionKeepsOrder cancels a majority of a large heap, forcing a
// compaction sweep, and checks the survivors still fire in order.
func TestCompactionKeepsOrder(t *testing.T) {
	e := NewEngine(1)
	const n = 1000
	var fired []int
	var cancel []*Timer
	for i := 0; i < n; i++ {
		i := i
		tm := e.At(float64(i), func() { fired = append(fired, i) })
		if i%4 != 0 {
			cancel = append(cancel, tm)
		}
	}
	for _, tm := range cancel {
		tm.Cancel()
	}
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatalf("expected a compaction sweep, got %+v", st)
	}
	if st.Cancelled > st.HeapSize/2 {
		t.Fatalf("compaction left %d/%d dead entries", st.Cancelled, st.HeapSize)
	}
	e.RunUntilIdle()
	if len(fired) != n/4 {
		t.Fatalf("%d events fired, want %d", len(fired), n/4)
	}
	if !sort.IntsAreSorted(fired) {
		t.Fatal("survivors fired out of order")
	}
}

func TestTimerFreeListReuse(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 100; i++ {
		e.After(1, func() {})
		e.Step()
	}
	if st := e.Stats(); st.Reused < 90 {
		t.Fatalf("free list barely used: %+v", st)
	}
}

// TestRescheduleDuringOwnFire re-arms the currently firing timer from its
// own callback; the handle must go back into the heap, not the free list.
func TestRescheduleDuringOwnFire(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	var tm *Timer
	tm = e.At(1, func() {
		fired++
		if fired == 1 {
			e.Reschedule(tm, e.Now()+1)
		}
	})
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestFlowListOrderAfterRemovals(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1000, 0)
	var flows []*Flow
	for i := 0; i < 5; i++ {
		dst := n.AddNode(0, 0)
		flows = append(flows, n.StartFlow(up, dst, 1e9, nil))
	}
	// Remove the middle and first flows; the remaining walk order must be
	// the insertion order of the survivors.
	flows[2].Cancel()
	flows[0].Cancel()
	var got []*Flow
	for f := n.nodes[up].upFlows.head; f != nil; f = f.links[dirUp].next {
		got = append(got, f)
	}
	want := []*Flow{flows[1], flows[3], flows[4]}
	if len(got) != len(want) {
		t.Fatalf("walk has %d flows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk[%d] wrong flow", i)
		}
	}
	if n.ActiveUploads(up) != 3 {
		t.Fatalf("ActiveUploads = %d", n.ActiveUploads(up))
	}
}

// TestFlowRetimingLeavesNoGarbage checks the heap does not accumulate
// cancelled entries under steady rate churn (the PR 2 zero-churn goal).
// Timer scheduling is deferred to the flush, so the heap is inspected
// after an explicit Flush (the engine runs one per event on its own).
func TestFlowRetimingLeavesNoGarbage(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1e4, 0)
	for i := 0; i < 32; i++ {
		dst := n.AddNode(0, 0)
		n.StartFlow(up, dst, 1e8, nil) // long flows: lots of retiming
	}
	n.Flush()
	st := e.Stats()
	if st.Cancelled != 0 {
		t.Fatalf("retiming left %d cancelled entries in the heap", st.Cancelled)
	}
	if st.HeapSize != 32 {
		t.Fatalf("HeapSize = %d, want 32 (one live timer per flow)", st.HeapSize)
	}
}

// TestRescheduleRecycledPanics pins the free-list safety contract: once a
// timer has fired and been recycled, rescheduling the stale handle must
// panic rather than corrupt the pool.
func TestRescheduleRecycledPanics(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(1, func() {})
	e.Step() // fires and recycles tm
	defer func() {
		if recover() == nil {
			t.Fatal("Reschedule on a recycled timer did not panic")
		}
	}()
	e.Reschedule(tm, 5)
}

// TestRescheduleCompactedCancelledPanics covers the compaction variant:
// cancelling enough timers sweeps them into the free list, after which
// "reviving" one must panic instead of double-inserting it.
func TestRescheduleCompactedCancelledPanics(t *testing.T) {
	e := NewEngine(1)
	var cancel []*Timer
	for i := 0; i < 200; i++ {
		tm := e.At(float64(i), func() {})
		if i%4 != 0 {
			cancel = append(cancel, tm)
		}
	}
	for _, tm := range cancel {
		tm.Cancel()
	}
	if e.Stats().Compactions == 0 {
		t.Fatal("expected compaction")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reschedule on a compacted cancelled timer did not panic")
		}
	}()
	e.Reschedule(cancel[0], 500)
}
