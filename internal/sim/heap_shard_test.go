package sim

// Sharded-heap determinism: the loser-tree merge over per-key subheaps
// must pop events in EXACTLY the single monolithic heap's order — that is
// the whole contract that makes SetHeapShards trajectory-preserving. The
// tests drive a sharded engine and an unsharded oracle through identical
// randomized schedules (pushes into every shard, cancels, reschedules,
// lane batches, nested scheduling from inside callbacks) and require the
// fired-event logs to be byte-identical.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// shardScriptLog runs a randomized self-scheduling workload on an engine
// with the given shard count (0 = single-heap oracle) and returns the
// fired-event log. Everything derives from seed, and every random draw
// happens either at schedule time or inside a fired callback — so two
// engines that pop in the same order consume the rng identically and
// produce identical logs, while any order divergence derails the streams
// and shows up as a log mismatch.
func shardScriptLog(shards int, seed int64, top int) []string {
	e := NewEngine(0)
	if shards > 0 {
		e.SetHeapShards(shards)
	}
	rng := rand.New(rand.NewSource(seed))
	var log []string

	var slots []*shardSlot
	nextID := 0

	var spawn func(depth int)
	spawn = func(depth int) {
		nextID++
		id := nextID
		// Coarse time grid forces plenty of same-instant ties, the case
		// where (at, seq) tie-breaking across shards actually matters.
		d := math.Trunc(rng.Float64()*64) / 8
		key := rng.Int63n(96) - 16 // negative keys route to the global shard
		reSpawn := func(depth int) {
			if depth < 3 && rng.Intn(2) == 0 {
				spawn(depth + 1)
			}
		}
		switch rng.Intn(8) {
		case 0: // plain keyless event
			s := &shardSlot{}
			s.t = e.After(d, func() {
				s.state = 1
				log = append(log, fmt.Sprintf("p%d@%.3f", id, e.Now()))
				reSpawn(depth)
			})
			slots = append(slots, s)
		case 1, 2, 3: // keyed event
			s := &shardSlot{}
			s.t = e.AfterKey(d, key, func() {
				s.state = 1
				log = append(log, fmt.Sprintf("k%d@%.3f", id, e.Now()))
				reSpawn(depth)
			})
			slots = append(slots, s)
		case 4, 5: // lane event (batched with same-instant lane neighbours)
			s := &shardSlot{}
			s.t = e.AtLane(e.Now()+d, key, func() func() {
				return func() {
					s.state = 1
					log = append(log, fmt.Sprintf("l%d@%.3f", id, e.Now()))
					reSpawn(depth)
				}
			})
			slots = append(slots, s)
		case 6: // cancel a pending timer
			if s := pickSlot(rng, slots, 0); s != nil {
				s.t.Cancel()
				s.state = 2
			}
		case 7: // reschedule a pending timer (fresh seq, maybe new instant)
			if s := pickSlot(rng, slots, 0); s != nil {
				e.Reschedule(s.t, e.Now()+math.Trunc(rng.Float64()*64)/8)
			}
		}
	}
	for i := 0; i < top; i++ {
		spawn(0)
	}
	e.RunUntilIdle()
	return append(log, fmt.Sprintf("end@%.3f pending=%d", e.Now(), e.Pending()))
}

// shardSlot tracks one scheduled event's handle and lifecycle so the
// script only ever cancels or reschedules timers that are genuinely
// pending — a handle whose event fired may have been recycled, and pool
// layouts legitimately differ between sharded and unsharded engines.
type shardSlot struct {
	t     *Timer
	state int // 0 pending, 1 fired, 2 cancelled
}

// pickSlot returns a pending-state slot chosen with one rng draw (so
// oracle and sharded runs stay in rng lockstep), or nil if none qualify.
func pickSlot(rng *rand.Rand, slots []*shardSlot, want int) *shardSlot {
	if len(slots) == 0 {
		return nil
	}
	if s := slots[rng.Intn(len(slots))]; s.state == want {
		return s
	}
	return nil
}

// TestShardedHeapMatchesSingleHeapOracle is the core property test: for a
// spread of seeds and shard counts, the sharded engine's fired-event log
// is byte-identical to the single-heap oracle's.
func TestShardedHeapMatchesSingleHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		oracle := shardScriptLog(0, seed, 120)
		for _, shards := range []int{1, 2, 7, 32} {
			got := shardScriptLog(shards, seed, 120)
			if len(got) != len(oracle) {
				t.Fatalf("seed %d shards %d: %d events, oracle fired %d", seed, shards, len(got), len(oracle))
			}
			for i := range got {
				if got[i] != oracle[i] {
					t.Fatalf("seed %d shards %d: event %d = %q, oracle %q", seed, shards, i, got[i], oracle[i])
				}
			}
		}
	}
}

// FuzzShardedHeapPopOrder fuzzes the same property over arbitrary seeds
// and shard counts.
func FuzzShardedHeapPopOrder(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(42), uint8(1))
	f.Add(int64(7), uint8(33))
	f.Fuzz(func(t *testing.T, seed int64, shards uint8) {
		oracle := shardScriptLog(0, seed, 60)
		got := shardScriptLog(1+int(shards%64), seed, 60)
		if len(got) != len(oracle) {
			t.Fatalf("seed %d shards %d: %d events, oracle fired %d", seed, shards, len(got), len(oracle))
		}
		for i := range got {
			if got[i] != oracle[i] {
				t.Fatalf("seed %d shards %d: event %d = %q, oracle %q", seed, shards, i, got[i], oracle[i])
			}
		}
	})
}

// TestShardRoutingAndStats pins the routing contract (key & mask + global
// shard for negative keys and plain At) and the new EngineStats fields.
func TestShardRoutingAndStats(t *testing.T) {
	e := NewEngine(0)
	e.SetHeapShards(4)
	if e.HeapShards() != 4 {
		t.Fatalf("HeapShards = %d, want 4", e.HeapShards())
	}
	// Keys differing by a multiple of the shard count share a shard.
	if e.shardFor(3) != e.shardFor(3+4) || e.shardFor(3) != e.shardFor(3+1<<40) {
		t.Fatal("per-node key family split across shards")
	}
	if e.shardFor(-1) != 0 {
		t.Fatal("negative key left the global shard")
	}
	fired := 0
	for i := 0; i < 64; i++ {
		e.AfterKey(float64(i%5), int64(i), func() { fired++ })
	}
	e.At(1, func() { fired++ })
	e.RunUntilIdle()
	if fired != 65 {
		t.Fatalf("fired %d of 65", fired)
	}
	st := e.Stats()
	if st.Shards != 4 {
		t.Fatalf("Stats.Shards = %d, want 4", st.Shards)
	}
	if st.PeakShardHeap == 0 || st.PeakShardHeap > 64 {
		t.Fatalf("Stats.PeakShardHeap = %d", st.PeakShardHeap)
	}
	if st.MergePops != 65 {
		t.Fatalf("Stats.MergePops = %d, want 65", st.MergePops)
	}

	// The unsharded engine reports the zero values, keeping old
	// serializations unchanged.
	single := NewEngine(0)
	single.At(1, func() {})
	single.RunUntilIdle()
	sst := single.Stats()
	if sst.Shards != 0 || sst.PeakShardHeap != 0 || sst.MergePops != 0 {
		t.Fatalf("single-heap engine leaked shard stats: %+v", sst)
	}
}

// TestSetHeapShardsGuards pins the reconfiguration contract: choosing a
// shard count with events already queued panics, and n <= 0 restores the
// monolithic heap.
func TestSetHeapShardsGuards(t *testing.T) {
	e := NewEngine(0)
	e.SetHeapShards(8)
	e.SetHeapShards(0)
	if e.HeapShards() != 0 {
		t.Fatalf("HeapShards = %d after reset, want 0", e.HeapShards())
	}
	e.At(1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetHeapShards with scheduled events did not panic")
		}
	}()
	e.SetHeapShards(8)
}
