package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// laneTrace runs one scripted lane scenario and returns the observable
// event log: "c<key>" for a compute, "a<key>" for an apply, "p<label>"
// for a plain event.
func laneTrace(t *testing.T, workers int) []string {
	t.Helper()
	e := NewEngine(1)
	e.SetLaneParallelism(workers)
	var (
		log     []string
		applies []string // applies record separately: computes may run on any goroutine, so they log via their apply
	)
	lane := func(at float64, key int64) {
		e.AtLane(at, key, func() func() {
			// Compute phase: read-only; capture a value derived from its
			// own key only and log at apply time (logging here from a pool
			// goroutine would race on the slice).
			v := key * key
			return func() {
				applies = append(applies, fmt.Sprintf("a%d=%d", key, v))
				log = append(log, fmt.Sprintf("a%d", key))
			}
		})
	}
	// Three lanes at t=10 scheduled out of key order, one plain event at
	// t=10 scheduled before any of them (lower seq) and one after.
	e.At(10, func() { log = append(log, "p-first") })
	lane(10, 3)
	lane(10, 1)
	lane(10, 2)
	e.At(10, func() { log = append(log, "p-last") })
	// A second instant with a single lane.
	lane(20, 7)
	e.RunUntilIdle()
	if want := []string{"a1=1", "a2=4", "a3=9", "a7=49"}; !reflect.DeepEqual(applies, want) {
		t.Fatalf("applies = %v, want %v", applies, want)
	}
	return log
}

func TestLaneBatchOrdering(t *testing.T) {
	// The plain event with the lower seq fires before the batch; the batch
	// runs all three applies in key order even though scheduling order was
	// 3,1,2; the trailing plain event fires after the batch.
	want := []string{"p-first", "a1", "a2", "a3", "p-last", "a7"}
	for _, workers := range []int{1, 4} {
		if got := laneTrace(t, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: log = %v, want %v", workers, got, want)
		}
	}
}

func TestLaneStats(t *testing.T) {
	e := NewEngine(1)
	e.SetLaneParallelism(3)
	if e.LaneParallelism() != 3 {
		t.Fatalf("LaneParallelism = %d", e.LaneParallelism())
	}
	for k := int64(0); k < 5; k++ {
		e.AtLane(10, k, func() func() { return nil })
	}
	e.AtLane(20, 0, func() func() { return nil })
	e.RunUntilIdle()
	st := e.Stats()
	if st.PeakLaneWidth != 5 {
		t.Fatalf("PeakLaneWidth = %d, want 5", st.PeakLaneWidth)
	}
	if st.LaneBatches != 2 || st.LaneEvents != 6 {
		t.Fatalf("LaneBatches = %d, LaneEvents = %d, want 2, 6", st.LaneBatches, st.LaneEvents)
	}
}

func TestLaneCancelSkipsApply(t *testing.T) {
	e := NewEngine(1)
	var fired []int64
	mk := func(key int64) *Timer {
		return e.AtLane(5, key, func() func() {
			return func() { fired = append(fired, key) }
		})
	}
	t1 := mk(1)
	mk(2)
	t3 := mk(3)
	// Cancel one before the batch runs, and have an earlier apply cancel a
	// later batch member mid-batch.
	t1.Cancel()
	e.AtLane(5, 0, func() func() {
		return func() {
			fired = append(fired, 0)
			t3.Cancel()
		}
	})
	e.RunUntilIdle()
	if want := []int64{0, 2}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

// TestLaneSerialParallelIdentical drives a randomized micro-simulation —
// lanes whose computes read a shared array and whose applies mutate it and
// re-arm — under serial and parallel lane execution, and requires the
// final state and the engine RNG stream position to be identical.
func TestLaneSerialParallelIdentical(t *testing.T) {
	run := func(workers int) ([]int64, int64) {
		e := NewEngine(99)
		e.SetLaneParallelism(workers)
		state := make([]int64, 16)
		rngs := make([]*rand.Rand, len(state))
		var arm func(key int64, at float64)
		arm = func(key int64, at float64) {
			e.AtLane(at, key, func() func() {
				// Read-only over shared state, private RNG per lane.
				sum := int64(0)
				for _, v := range state {
					sum += v
				}
				draw := rngs[key].Int63n(1000)
				return func() {
					state[key] += sum%97 + draw + int64(e.RNG().Intn(10))
					if at < 50 {
						arm(key, at+10)
					}
				}
			})
		}
		for k := range state {
			rngs[k] = rand.New(rand.NewSource(int64(k) * 7))
			arm(int64(k), 10)
		}
		e.RunUntilIdle()
		return state, int64(e.RNG().Int63())
	}
	s1, r1 := run(1)
	s8, r8 := run(8)
	if !reflect.DeepEqual(s1, s8) {
		t.Fatalf("serial state %v != parallel state %v", s1, s8)
	}
	if r1 != r8 {
		t.Fatalf("engine RNG diverged: %d vs %d", r1, r8)
	}
}

// TestLanePendingAccounting checks that lane timers participate in the
// pending/cancel bookkeeping like plain timers.
func TestLanePendingAccounting(t *testing.T) {
	e := NewEngine(1)
	timers := make([]*Timer, 0, 10)
	for k := int64(0); k < 10; k++ {
		timers = append(timers, e.AtLane(10, k, func() func() { return nil }))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	timers[4].Cancel()
	if e.Pending() != 9 {
		t.Fatalf("Pending after cancel = %d, want 9", e.Pending())
	}
	e.RunUntilIdle()
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
	// Recycled lane timers must come back clean for plain reuse.
	fired := 0
	e.After(1, func() { fired++ })
	e.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("plain event after lane recycling fired %d times", fired)
	}
}

// TestLaneBatchSplitsOnInterleavedPlainEvent pins the batching rule: a
// plain event with a seq between two same-instant lane events splits them
// into two batches (each still applied in key order).
func TestLaneBatchSplitsOnInterleavedPlainEvent(t *testing.T) {
	e := NewEngine(1)
	var log []string
	lane := func(key int64) {
		e.AtLane(10, key, func() func() {
			return func() { log = append(log, fmt.Sprintf("a%d", key)) }
		})
	}
	lane(5)
	lane(9)
	e.At(10, func() { log = append(log, "plain") })
	lane(2)
	lane(4)
	e.RunUntilIdle()
	want := []string{"a5", "a9", "plain", "a2", "a4"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	if st := e.Stats(); st.LaneBatches != 2 || st.PeakLaneWidth != 2 {
		t.Fatalf("stats = %+v, want 2 batches of width 2", st)
	}
}

// TestLaneApplyReentrantScheduling checks that an apply scheduling a lane
// at the *current* instant starts a fresh batch in the same engine step
// sequence rather than being lost.
func TestLaneApplyReentrantScheduling(t *testing.T) {
	e := NewEngine(1)
	var keys []int64
	e.AtLane(10, 1, func() func() {
		return func() {
			keys = append(keys, 1)
			e.AtLane(10, 2, func() func() {
				return func() { keys = append(keys, 2) }
			})
		}
	})
	e.RunUntilIdle()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if !reflect.DeepEqual(keys, []int64{1, 2}) {
		t.Fatalf("keys = %v", keys)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %f", e.Now())
	}
}
