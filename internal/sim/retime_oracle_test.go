package sim

// Deferred-retime oracle tests. The dirty-node flush must reproduce the
// eager retime-on-every-churn implementation (retained as the oracle)
// exactly in everything observable about the fluid model: every flow's
// completion instant, its remaining-bytes trajectory, and the conservation
// of delivered bytes. Only event-heap sequence assignment — same-instant
// tie-breaking between a completion and an unrelated event — may differ,
// so completions are compared as a multiset ordered by (time, flow
// serial), not by firing order. A second family of tests pins the harder
// property: with the flush's compute phase fanned across a worker pool,
// the full firing order (not just the multiset) is byte-identical to the
// serial flush for any worker count.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// retimeOp is one scheduled action of a generated churn schedule.
type retimeOp struct {
	at     float64
	start  bool // start a new flow (vs cancel an old one)
	from   int  // node index (start)
	to     int  // node index (start)
	bytes  float64
	target int // flow serial to cancel (cancel)
}

// retimeSchedule is a deterministic random workload over a fixed node set.
type retimeSchedule struct {
	upCaps, dnCaps []float64
	ops            []retimeOp
	checkpoints    []float64
}

// genRetimeSchedule derives a schedule from an RNG: a handful of nodes
// with messy capacities (a few uncapped), a stream of flow starts with
// messy sizes and times, and cancels targeting earlier serials. Times are
// irrational-ish floats so that the schedule itself never collides with a
// computed completion instant — the one regime where eager and deferred
// may legitimately order events differently.
func genRetimeSchedule(rng *rand.Rand, nodes, nOps int) retimeSchedule {
	if nodes < 2 {
		nodes = 2
	}
	s := retimeSchedule{
		upCaps: make([]float64, nodes),
		dnCaps: make([]float64, nodes),
	}
	for i := range s.upCaps {
		s.upCaps[i] = 100 + 900*rng.Float64()
		if rng.Intn(8) == 0 {
			s.upCaps[i] = 0 // uncapped
		}
		s.dnCaps[i] = 150 + 1200*rng.Float64()
		if rng.Intn(4) == 0 {
			s.dnCaps[i] = 0 // uncapped
		}
	}
	serials := 0
	for i := 0; i < nOps; i++ {
		at := rng.Float64() * 50 * math.Pi / 3
		if serials > 0 && rng.Intn(3) == 0 {
			s.ops = append(s.ops, retimeOp{at: at, target: rng.Intn(serials)})
			continue
		}
		from := rng.Intn(nodes)
		to := rng.Intn(nodes - 1)
		if to >= from {
			to++
		}
		s.ops = append(s.ops, retimeOp{
			at:    at,
			start: true,
			from:  from,
			to:    to,
			bytes: 1 + rng.Float64()*5000,
		})
		serials++
	}
	for i := 0; i < 4; i++ {
		s.checkpoints = append(s.checkpoints, (5+rng.Float64()*40)*math.E/2)
	}
	return s
}

// retimeTrace is everything a schedule run observes.
type retimeTrace struct {
	// completions, one per finished flow, sorted by (time, serial).
	completions []struct {
		serial int
		at     float64
	}
	// firing is the exact completion order the engine produced (serial
	// numbers in callback order) — only comparable between runs of the
	// SAME retime mode.
	firing []int
	// remaining[i] is the checkpoint-i sum of Remaining over live flows,
	// accumulated in serial order.
	remaining []float64
	delivered float64
	endNow    float64
}

// runRetimeSchedule executes the schedule on a fresh engine/net pair.
func runRetimeSchedule(s retimeSchedule, eager bool, workers int) retimeTrace {
	e := NewEngine(1)
	e.SetLaneParallelism(workers)
	n := NewNet(e)
	n.SetEagerRetime(eager)
	ids := make([]NodeID, len(s.upCaps))
	for i := range ids {
		ids[i] = n.AddNode(s.upCaps[i], s.dnCaps[i])
	}

	var tr retimeTrace
	type liveFlow struct {
		f    *Flow
		done bool
	}
	var flows []*liveFlow
	for _, op := range s.ops {
		op := op
		if op.start {
			serial := len(flows)
			lf := &liveFlow{}
			flows = append(flows, lf)
			e.At(op.at, func() {
				b := op.bytes
				lf.f = n.StartFlow(ids[op.from], ids[op.to], b, func() {
					lf.done = true
					tr.delivered += b
					tr.firing = append(tr.firing, serial)
					tr.completions = append(tr.completions, struct {
						serial int
						at     float64
					}{serial, e.Now()})
				})
			})
			continue
		}
		e.At(op.at, func() {
			if op.target < len(flows) {
				if lf := flows[op.target]; lf.f != nil && !lf.done {
					lf.done = true
					lf.f.Cancel()
				}
			}
		})
	}
	for _, cp := range s.checkpoints {
		e.At(cp, func() {
			sum := 0.0
			for _, lf := range flows {
				if lf.f != nil && !lf.done {
					sum += lf.f.Remaining(e.Now())
				}
			}
			tr.remaining = append(tr.remaining, sum)
		})
	}
	e.RunUntilIdle()
	tr.endNow = e.Now()
	sort.Slice(tr.completions, func(i, j int) bool {
		if tr.completions[i].at != tr.completions[j].at {
			return tr.completions[i].at < tr.completions[j].at
		}
		return tr.completions[i].serial < tr.completions[j].serial
	})
	return tr
}

// diffTraces compares the mode-independent observables bit-for-bit.
func diffTraces(a, b retimeTrace) error {
	if len(a.completions) != len(b.completions) {
		return fmt.Errorf("completion count %d vs %d", len(a.completions), len(b.completions))
	}
	for i := range a.completions {
		if a.completions[i] != b.completions[i] {
			return fmt.Errorf("completion %d: %+v vs %+v", i, a.completions[i], b.completions[i])
		}
	}
	if len(a.remaining) != len(b.remaining) {
		return fmt.Errorf("checkpoint count %d vs %d", len(a.remaining), len(b.remaining))
	}
	for i := range a.remaining {
		if a.remaining[i] != b.remaining[i] {
			return fmt.Errorf("checkpoint %d: remaining %v vs %v", i, a.remaining[i], b.remaining[i])
		}
	}
	if a.delivered != b.delivered {
		return fmt.Errorf("delivered %v vs %v", a.delivered, b.delivered)
	}
	if a.endNow != b.endNow {
		return fmt.Errorf("end time %v vs %v", a.endNow, b.endNow)
	}
	return nil
}

// TestRetimeDeferredMatchesEagerOracle drives random churn schedules
// through both retime modes and requires bit-identical physics.
func TestRetimeDeferredMatchesEagerOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genRetimeSchedule(rng, 3+rng.Intn(10), 20+rng.Intn(120))
		eager := runRetimeSchedule(s, true, 1)
		deferred := runRetimeSchedule(s, false, 1)
		if err := diffTraces(eager, deferred); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzRetimeDeferredMatchesEager is the fuzz-shaped variant: the input
// bytes pick the schedule seed and shape, so `go test` replays the seed
// corpus and `-fuzz` explores further.
func FuzzRetimeDeferredMatchesEager(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(60))
	f.Add(int64(42), uint8(2), uint8(200))
	f.Add(int64(-7), uint8(12), uint8(90))
	f.Fuzz(func(t *testing.T, seed int64, nodes, nOps uint8) {
		rng := rand.New(rand.NewSource(seed))
		s := genRetimeSchedule(rng, 2+int(nodes%14), 1+int(nOps))
		eager := runRetimeSchedule(s, true, 1)
		deferred := runRetimeSchedule(s, false, 1)
		if err := diffTraces(eager, deferred); err != nil {
			t.Fatalf("deferred diverged from eager oracle: %v", err)
		}
	})
}

// TestRetimeFlushParallelMatchesSerialNet pins the stronger worker-count
// property at the Net level: one event that churns hundreds of nodes at
// once (well past the parallel-fan-out threshold) must leave a firing
// order — not just a completion multiset — identical to the serial flush.
func TestRetimeFlushParallelMatchesSerialNet(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := genRetimeSchedule(rng, 400, 40)
	// One burst instant: start a flow on every node pair (i, i+1) in a
	// single event so the flush sees a dirty set of ~400 nodes.
	for i := 0; i+1 < len(s.upCaps); i++ {
		s.ops = append(s.ops, retimeOp{
			at:    10.125, // shared instant: all starts in one flush
			start: true,
			from:  i,
			to:    i + 1,
			bytes: 100 + float64(i),
		})
	}
	serial := runRetimeSchedule(s, false, 1)
	parallel := runRetimeSchedule(s, false, 8)
	if err := diffTraces(serial, parallel); err != nil {
		t.Fatalf("parallel flush diverged: %v", err)
	}
	if len(serial.firing) != len(parallel.firing) {
		t.Fatalf("firing lengths differ: %d vs %d", len(serial.firing), len(parallel.firing))
	}
	for i := range serial.firing {
		if serial.firing[i] != parallel.firing[i] {
			t.Fatalf("firing order diverged at %d: %d vs %d", i, serial.firing[i], parallel.firing[i])
		}
	}
	again := runRetimeSchedule(s, false, 8)
	if err := diffTraces(parallel, again); err != nil {
		t.Fatalf("parallel flush not reproducible: %v", err)
	}
}

// TestNetFlushStats checks the observability counters: a run with churn
// reports flushes, batches and a shard width, and the flow pool stays
// within its high-water cap.
func TestNetFlushStats(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(1000, 0)
	for i := 0; i < 500; i++ {
		dst := n.AddNode(0, 0)
		i := i
		e.At(float64(i)*0.01, func() { n.StartFlow(up, dst, 50, nil) })
	}
	e.RunUntilIdle()
	st := n.Stats()
	if st.DirtyFlushes == 0 || st.RetimeBatches < st.DirtyFlushes || st.PeakShardWidth < 2 {
		t.Fatalf("flush counters missing: %+v", st)
	}
	if st.PeakLiveFlows == 0 {
		t.Fatalf("live high-water not tracked: %+v", st)
	}
	if st.FlowPoolSize > st.FlowPoolCap {
		t.Fatalf("flow pool exceeds cap: %+v", st)
	}
}

// TestFlowPoolHighWaterCap floods the net with simultaneous flows, lets
// them all finish, and checks the free list was capped at the high-water
// fraction instead of retaining every flow ever pooled.
func TestFlowPoolHighWaterCap(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	up := n.AddNode(0, 0) // uncapped: everything completes instantly
	const burst = 4000
	for i := 0; i < burst; i++ {
		dst := n.AddNode(0, 1e6)
		n.StartFlow(up, dst, 1000, nil)
	}
	e.RunUntilIdle()
	st := n.Stats()
	if st.PeakLiveFlows != burst {
		t.Fatalf("peak live = %d, want %d", st.PeakLiveFlows, burst)
	}
	want := burst/4 + 64
	if st.FlowPoolCap != want {
		t.Fatalf("FlowPoolCap = %d, want %d", st.FlowPoolCap, want)
	}
	if st.FlowPoolSize > want {
		t.Fatalf("pool retained %d flows past the cap %d", st.FlowPoolSize, want)
	}
}

// TestTimerPoolHighWaterCap is the engine-side twin: after a burst of
// scheduled-then-fired timers, the timer free list must be bounded by the
// heap's high-water fraction.
func TestTimerPoolHighWaterCap(t *testing.T) {
	e := NewEngine(1)
	const burst = 4000
	for i := 0; i < burst; i++ {
		e.At(float64(i)*1e-3, func() {})
	}
	e.RunUntilIdle()
	st := e.Stats()
	want := burst/4 + 64
	if st.TimerPoolCap != want {
		t.Fatalf("TimerPoolCap = %d, want %d (peak heap %d)", st.TimerPoolCap, want, burst)
	}
	if st.FreeListSize > want {
		t.Fatalf("timer pool retained %d past the cap %d", st.FreeListSize, want)
	}
}

// TestSetEagerRetimeGuard pins the mode-switch precondition.
func TestSetEagerRetimeGuard(t *testing.T) {
	e := NewEngine(1)
	n := NewNet(e)
	a, b := n.AddNode(100, 0), n.AddNode(0, 0)
	n.StartFlow(a, b, 10, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SetEagerRetime with live flows did not panic")
		}
	}()
	n.SetEagerRetime(true)
}
