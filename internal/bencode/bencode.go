// Package bencode implements the bencoding serialization format used by
// BitTorrent for .torrent metainfo files and tracker responses (BEP 3).
//
// The four bencode types map to Go as:
//
//	integer    -> int64
//	byte string -> string
//	list       -> []any
//	dictionary -> map[string]any (keys emitted in sorted order, as required)
//
// Decode produces exactly those dynamic types; Encode additionally accepts
// int, []byte, and []string for convenience. Dictionaries decode strictly:
// keys must be sorted and unique, mirroring the reference implementation.
package bencode

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// Maximum nesting depth accepted by the decoder; guards against stack
// exhaustion from hostile input.
const maxDepth = 64

var (
	// ErrSyntax indicates malformed bencode input.
	ErrSyntax = errors.New("bencode: syntax error")
	// ErrTrailing indicates valid bencode followed by extra bytes.
	ErrTrailing = errors.New("bencode: trailing data")
	// ErrDepth indicates nesting beyond maxDepth.
	ErrDepth = errors.New("bencode: nesting too deep")
)

// Encode serializes v to bencode. Supported types: int, int64, string,
// []byte, []any, []string, and map[string]any (recursively).
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodeTo(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MustEncode is Encode for values known to be encodable; it panics on error.
func MustEncode(v any) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}

func encodeTo(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case int:
		fmt.Fprintf(buf, "i%de", x)
	case int64:
		fmt.Fprintf(buf, "i%de", x)
	case uint32:
		fmt.Fprintf(buf, "i%de", x)
	case string:
		buf.WriteString(strconv.Itoa(len(x)))
		buf.WriteByte(':')
		buf.WriteString(x)
	case []byte:
		buf.WriteString(strconv.Itoa(len(x)))
		buf.WriteByte(':')
		buf.Write(x)
	case []string:
		buf.WriteByte('l')
		for _, e := range x {
			if err := encodeTo(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	case []any:
		buf.WriteByte('l')
		for _, e := range x {
			if err := encodeTo(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	case map[string]any:
		buf.WriteByte('d')
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := encodeTo(buf, k); err != nil {
				return err
			}
			if err := encodeTo(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	default:
		return fmt.Errorf("bencode: cannot encode %T", v)
	}
	return nil
}

// Decode parses a single bencode value from data, requiring that the value
// spans the whole input.
func Decode(data []byte) (any, error) {
	d := decoder{data: data}
	v, err := d.value(0)
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("%w: %d bytes left", ErrTrailing, len(data)-d.pos)
	}
	return v, nil
}

// DecodePrefix parses one bencode value from the front of data and returns
// it with the number of bytes consumed.
func DecodePrefix(data []byte) (v any, n int, err error) {
	d := decoder{data: data}
	v, err = d.value(0)
	if err != nil {
		return nil, 0, err
	}
	return v, d.pos, nil
}

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) value(depth int) (any, error) {
	if depth > maxDepth {
		return nil, ErrDepth
	}
	if d.pos >= len(d.data) {
		return nil, fmt.Errorf("%w: unexpected end of input", ErrSyntax)
	}
	switch c := d.data[d.pos]; {
	case c == 'i':
		return d.integer()
	case c >= '0' && c <= '9':
		return d.str()
	case c == 'l':
		d.pos++
		var list []any
		for {
			if d.pos >= len(d.data) {
				return nil, fmt.Errorf("%w: unterminated list", ErrSyntax)
			}
			if d.data[d.pos] == 'e' {
				d.pos++
				if list == nil {
					list = []any{}
				}
				return list, nil
			}
			e, err := d.value(depth + 1)
			if err != nil {
				return nil, err
			}
			list = append(list, e)
		}
	case c == 'd':
		d.pos++
		dict := map[string]any{}
		prev := ""
		first := true
		for {
			if d.pos >= len(d.data) {
				return nil, fmt.Errorf("%w: unterminated dict", ErrSyntax)
			}
			if d.data[d.pos] == 'e' {
				d.pos++
				return dict, nil
			}
			kRaw, err := d.str()
			if err != nil {
				return nil, fmt.Errorf("%w: dict key must be a string", ErrSyntax)
			}
			k := kRaw.(string)
			if !first && k <= prev {
				return nil, fmt.Errorf("%w: dict keys not strictly sorted (%q after %q)", ErrSyntax, k, prev)
			}
			first, prev = false, k
			v, err := d.value(depth + 1)
			if err != nil {
				return nil, err
			}
			dict[k] = v
		}
	default:
		return nil, fmt.Errorf("%w: unexpected byte %q at offset %d", ErrSyntax, c, d.pos)
	}
}

func (d *decoder) integer() (any, error) {
	start := d.pos // at 'i'
	d.pos++
	end := bytes.IndexByte(d.data[d.pos:], 'e')
	if end < 0 {
		return nil, fmt.Errorf("%w: unterminated integer", ErrSyntax)
	}
	s := string(d.data[d.pos : d.pos+end])
	if len(s) == 0 {
		return nil, fmt.Errorf("%w: empty integer", ErrSyntax)
	}
	// Reject leading zeros ("i03e") and negative zero ("i-0e") per spec.
	if s != "0" && (s[0] == '0' || (len(s) > 1 && s[0] == '-' && s[1] == '0')) {
		return nil, fmt.Errorf("%w: invalid integer %q at offset %d", ErrSyntax, s, start)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad integer %q", ErrSyntax, s)
	}
	d.pos += end + 1
	return n, nil
}

func (d *decoder) str() (any, error) {
	colon := bytes.IndexByte(d.data[d.pos:], ':')
	if colon < 0 {
		return nil, fmt.Errorf("%w: missing ':' in string length", ErrSyntax)
	}
	ls := string(d.data[d.pos : d.pos+colon])
	if ls == "" || (ls != "0" && ls[0] == '0') {
		return nil, fmt.Errorf("%w: bad string length %q", ErrSyntax, ls)
	}
	n, err := strconv.Atoi(ls)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad string length %q", ErrSyntax, ls)
	}
	d.pos += colon + 1
	if d.pos+n > len(d.data) {
		return nil, fmt.Errorf("%w: string of length %d exceeds input", ErrSyntax, n)
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

// Dict is a convenience accessor for decoded dictionaries.
type Dict map[string]any

// AsDict converts a decoded value to a Dict, reporting whether it was a
// dictionary.
func AsDict(v any) (Dict, bool) {
	m, ok := v.(map[string]any)
	return Dict(m), ok
}

// Str returns the string at key, or "" if absent or not a string.
func (d Dict) Str(key string) string {
	s, _ := d[key].(string)
	return s
}

// Int returns the integer at key, or 0 if absent or not an integer.
func (d Dict) Int(key string) int64 {
	n, _ := d[key].(int64)
	return n
}

// List returns the list at key, or nil.
func (d Dict) List(key string) []any {
	l, _ := d[key].([]any)
	return l
}

// Sub returns the sub-dictionary at key, or nil.
func (d Dict) Sub(key string) Dict {
	m, _ := d[key].(map[string]any)
	return Dict(m)
}
