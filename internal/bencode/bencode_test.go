package bencode

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeScalars(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{0, "i0e"},
		{-42, "i-42e"},
		{int64(1 << 40), "i1099511627776e"},
		{"spam", "4:spam"},
		{"", "0:"},
		{[]byte{0x00, 0xff}, "2:\x00\xff"},
		{[]any{}, "le"},
		{[]any{int64(1), "a"}, "li1e1:ae"},
		{[]string{"a", "bb"}, "l1:a2:bbe"},
		{map[string]any{}, "de"},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("Encode(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEncodeDictSortsKeys(t *testing.T) {
	got := MustEncode(map[string]any{"zebra": 1, "apple": 2, "mango": 3})
	want := "d5:applei2e5:mangoi3e5:zebrai1ee"
	if string(got) != want {
		t.Fatalf("Encode = %q, want %q", got, want)
	}
}

func TestEncodeUnsupported(t *testing.T) {
	if _, err := Encode(3.14); err == nil {
		t.Fatal("float accepted")
	}
	if _, err := Encode(map[string]any{"x": struct{}{}}); err == nil {
		t.Fatal("nested struct accepted")
	}
}

func TestDecodeScalars(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"i0e", int64(0)},
		{"i-1e", int64(-1)},
		{"i123456789e", int64(123456789)},
		{"4:spam", "spam"},
		{"0:", ""},
		{"le", []any{}},
		{"li1ei2ee", []any{int64(1), int64(2)}},
		{"de", map[string]any{}},
		{"d3:cow3:moo4:spam4:eggse", map[string]any{"cow": "moo", "spam": "eggs"}},
		{"d4:listli1eee", map[string]any{"list": []any{int64(1)}}},
	}
	for _, c := range cases {
		got, err := Decode([]byte(c.in))
		if err != nil {
			t.Fatalf("Decode(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Decode(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"",                         // empty
		"i12",                      // unterminated int
		"ie",                       // empty int
		"i03e",                     // leading zero
		"i-0e",                     // negative zero
		"i--1e",                    // double sign
		"iabce",                    // not a number
		"5:spam",                   // short string
		"-1:x",                     // negative length
		"01:x",                     // leading-zero length
		"9999999999999999999999:x", // overflow length
		"l",                        // unterminated list
		"li1e",                     // unterminated list
		"d",                        // unterminated dict
		"d3:cow",                   // key without value
		"di1e3:mooe",               // non-string key
		"d1:b1:x1:a1:ye",           // unsorted keys
		"d1:a1:x1:a1:ye",           // duplicate keys
		"x",                        // junk
		"i1ei2e",                   // trailing data
		"4:spamX",                  // trailing data
	}
	for _, in := range bad {
		if v, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) accepted, got %#v", in, v)
		}
	}
}

func TestDecodeDepthLimit(t *testing.T) {
	in := strings.Repeat("l", maxDepth+2) + strings.Repeat("e", maxDepth+2)
	if _, err := Decode([]byte(in)); err == nil {
		t.Fatal("deeply nested input accepted")
	}
	ok := strings.Repeat("l", 10) + strings.Repeat("e", 10)
	if _, err := Decode([]byte(ok)); err != nil {
		t.Fatalf("10-deep input rejected: %v", err)
	}
}

func TestDecodePrefix(t *testing.T) {
	v, n, err := DecodePrefix([]byte("i7e4:rest"))
	if err != nil || v != int64(7) || n != 3 {
		t.Fatalf("DecodePrefix = (%v,%d,%v)", v, n, err)
	}
}

func TestDictAccessors(t *testing.T) {
	v, err := Decode([]byte("d4:infod6:lengthi42e4:name3:abce8:intervali1800e5:peersle5:track4:httpe"))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := AsDict(v)
	if !ok {
		t.Fatal("AsDict failed")
	}
	if d.Int("interval") != 1800 {
		t.Errorf("Int = %d", d.Int("interval"))
	}
	if d.Str("track") != "http" {
		t.Errorf("Str = %q", d.Str("track"))
	}
	if d.List("peers") == nil {
		t.Error("List nil")
	}
	info := d.Sub("info")
	if info == nil || info.Int("length") != 42 || info.Str("name") != "abc" {
		t.Errorf("Sub = %#v", info)
	}
	// Missing / wrong-typed keys degrade to zero values.
	if d.Str("interval") != "" || d.Int("track") != 0 || d.Sub("peers") != nil || d.List("nope") != nil {
		t.Error("accessor zero-value behaviour broken")
	}
}

// randomValue builds a random encodable value for round-trip testing.
func randomValue(rng *rand.Rand, depth int) any {
	kind := rng.Intn(4)
	if depth > 3 {
		kind = rng.Intn(2)
	}
	switch kind {
	case 0:
		return rng.Int63() - rng.Int63()
	case 1:
		n := rng.Intn(20)
		b := make([]byte, n)
		rng.Read(b)
		return string(b)
	case 2:
		n := rng.Intn(4)
		l := make([]any, n)
		for i := range l {
			l[i] = randomValue(rng, depth+1)
		}
		return l
	default:
		n := rng.Intn(4)
		m := map[string]any{}
		for i := 0; i < n; i++ {
			m[string(rune('a'+rng.Intn(26)))+string(rune('a'+rng.Intn(26)))] = randomValue(rng, depth+1)
		}
		return m
	}
}

// Property: Decode(Encode(v)) == v for arbitrary well-typed values.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		v := randomValue(rng, 0)
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if !reflect.DeepEqual(normalize(v), dec) {
			t.Fatalf("round trip: %#v -> %#v", v, dec)
		}
	}
}

// normalize maps encoder-convenience types onto decoder output types.
func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case []byte:
		return string(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalize(e)
		}
		return out
	case map[string]any:
		out := map[string]any{}
		for k, e := range x {
			out[k] = normalize(e)
		}
		return out
	default:
		return v
	}
}

// Property: encoding is canonical — two structurally equal dicts encode to
// identical bytes regardless of insertion order.
func TestQuickCanonicalEncoding(t *testing.T) {
	f := func(keys []string) bool {
		m1 := map[string]any{}
		m2 := map[string]any{}
		for _, k := range keys {
			m1[k] = int64(len(k)) // value derived from key: insertion-order independent
		}
		for i := len(keys) - 1; i >= 0; i-- {
			m2[keys[i]] = int64(len(keys[i]))
		}
		return bytes.Equal(MustEncode(m1), MustEncode(m2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestQuickDecodeNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", data, r)
			}
		}()
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeTrackerResponse(b *testing.B) {
	resp := MustEncode(map[string]any{
		"interval": 1800,
		"peers": func() []any {
			var l []any
			for i := 0; i < 50; i++ {
				l = append(l, map[string]any{
					"peer id": strings.Repeat("x", 20),
					"ip":      "10.0.0.1",
					"port":    6881,
				})
			}
			return l
		}(),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(resp); err != nil {
			b.Fatal(err)
		}
	}
}
