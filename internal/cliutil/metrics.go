package cliutil

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"rarestfirst/internal/obs"
)

// MetricsLine is one sample of an obs registry — the line shape of the
// -metrics JSONL time-series sink. Kind="metrics" distinguishes the lines
// from report and aggregate lines sharing a sink file.
type MetricsLine struct {
	Kind string `json:"Kind"`
	// ElapsedS is seconds since the sampler started.
	ElapsedS float64 `json:"ElapsedS"`
	// Metrics maps series name to value: counters and gauges directly,
	// histograms as _sum/_count pairs.
	Metrics map[string]float64 `json:"Metrics"`
}

// WriteMetricsLine samples reg and writes one MetricsLine to w.
func WriteMetricsLine(w io.Writer, reg *obs.Registry, elapsed time.Duration) error {
	line := MetricsLine{
		Kind:     "metrics",
		ElapsedS: elapsed.Seconds(),
		Metrics:  reg.Values(),
	}
	raw, err := json.Marshal(line)
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// StartMetricsJSONL samples reg every interval, writing one JSON line per
// sample to w, and returns a stop function that takes a final sample and
// joins the sampler. Write errors stop the sampler silently (the sink is
// telemetry, not results); the stop function returns the first error seen.
func StartMetricsJSONL(w io.Writer, reg *obs.Registry, every time.Duration) func() error {
	start := time.Now()
	stop := make(chan struct{})
	done := make(chan struct{})
	var mu sync.Mutex
	var firstErr error
	sample := func() {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil {
			return
		}
		firstErr = WriteMetricsLine(w, reg, time.Since(start))
	}
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() error {
		close(stop)
		<-done
		sample() // final closing sample
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
}
