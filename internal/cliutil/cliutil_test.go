package cliutil

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rarestfirst"
)

func TestParseTorrentsAll(t *testing.T) {
	ids, err := ParseTorrents("all")
	if err != nil || ids != nil {
		t.Fatalf("ParseTorrents(all) = %v, %v; want nil sentinel", ids, err)
	}
}

func TestParseTorrentsList(t *testing.T) {
	ids, err := ParseTorrents("7, 8,10")
	if err != nil || len(ids) != 3 || ids[0] != 7 || ids[2] != 10 {
		t.Fatalf("ParseTorrents = %v, %v", ids, err)
	}
}

func TestParseTorrentsErrors(t *testing.T) {
	for _, in := range []string{"", "0", "27", "x", "7,,8"} {
		if _, err := ParseTorrents(in); err == nil {
			t.Errorf("ParseTorrents(%q) accepted", in)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	seeds, err := ParseSeeds("")
	if err != nil || seeds != nil {
		t.Fatalf("empty = %v, %v", seeds, err)
	}
	seeds, err = ParseSeeds(" 1, -2,3 ")
	if err != nil || len(seeds) != 3 || seeds[1] != -2 {
		t.Fatalf("ParseSeeds = %v, %v", seeds, err)
	}
	for _, in := range []string{"0", "x", "1,,2"} {
		if _, err := ParseSeeds(in); err == nil {
			t.Errorf("ParseSeeds(%q) accepted", in)
		}
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("bench"); err != nil || s.MaxPeers == 0 {
		t.Fatalf("bench = %+v, %v", s, err)
	}
	if s, err := ParseScale("default"); err != nil || s.MaxPeers == 0 {
		t.Fatalf("default = %+v, %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestPrintSuites(t *testing.T) {
	var b strings.Builder
	PrintSuites(&b)
	if !strings.Contains(b.String(), "catalog") || !strings.Contains(b.String(), "churn") {
		t.Fatalf("suite listing:\n%s", b.String())
	}
}

func TestWriteReportsJSONL(t *testing.T) {
	sc := rarestfirst.Scenario{TorrentID: 3, Scale: tinyTestScale(), SeedOverride: 5}
	rep, err := rarestfirst.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// A nil report (failed run) must be skipped, not emitted as "null".
	if err := WriteReportsJSONL(&buf, []*rarestfirst.Report{rep, nil, rep}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2", len(lines))
	}
	for i, line := range lines {
		var decoded map[string]any
		if err := json.Unmarshal([]byte(line), &decoded); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if decoded["TorrentID"] != float64(3) {
			t.Fatalf("line %d: TorrentID = %v", i, decoded["TorrentID"])
		}
	}
}

func tinyTestScale() rarestfirst.Scale {
	s := rarestfirst.BenchScale()
	s.MaxPeers = 30
	s.MaxContentMB = 4
	s.MaxPieces = 16
	s.Duration = 600
	s.Warmup = 200
	return s
}
