// Package cliutil holds the flag-parsing and output helpers the cmd
// binaries share, so the CLIs cannot drift apart in what they accept or
// emit.
package cliutil

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"rarestfirst"
)

// ParseScale maps a -scale flag value onto a Scale.
func ParseScale(name string) (rarestfirst.Scale, error) {
	switch name {
	case "default":
		return rarestfirst.DefaultScale(), nil
	case "bench":
		return rarestfirst.BenchScale(), nil
	default:
		return rarestfirst.Scale{}, fmt.Errorf("unknown scale %q (want default or bench)", name)
	}
}

// ParseTorrents parses a -torrents flag value: a comma-separated list of
// Table I ids, or "all", which returns nil — the explicit "no selection"
// sentinel that lets catalog-style suites keep their own defaults.
func ParseTorrents(s string) ([]int, error) {
	if strings.TrimSpace(s) == "all" {
		return nil, nil
	}
	var ids []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 1 || id > 26 {
			return nil, fmt.Errorf("bad torrent id %q (want 1..26)", part)
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("empty torrent list")
	}
	return ids, nil
}

// ParseSeeds parses a -seeds flag value: a comma-separated list of
// nonzero RNG seeds. Empty input means "no repeats" (nil).
func ParseSeeds(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var seeds []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("bad seed %q (want nonzero integers)", part)
		}
		seeds = append(seeds, v)
	}
	return seeds, nil
}

// WriteReportsJSONL writes one JSON line per report to w, in input order —
// the machine-readable report sink (-json) both CLIs share. Nil reports
// (failed runs) are skipped so line order still matches run order of the
// survivors.
func WriteReportsJSONL(w io.Writer, reports []*rarestfirst.Report) error {
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		line, err := rep.JSONLine()
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WriteAggregatesJSONL appends one JSON line per aggregate to w — the
// suite-level companion of WriteReportsJSONL. Aggregate lines carry
// Kind="aggregate" and the suite name, so both line shapes can share one
// sink file and still be told apart.
func WriteAggregatesJSONL(w io.Writer, suite string, aggs []rarestfirst.Aggregate) error {
	for _, a := range aggs {
		line, err := rarestfirst.MarshalAggregateLine(suite, a)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// PrintSuites writes the registered scenario suites, one per line.
func PrintSuites(w io.Writer) {
	for _, in := range rarestfirst.Suites() {
		fmt.Fprintf(w, "%-16s %s\n", in.Name, in.Description)
	}
}
