package cliutil

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"rarestfirst/internal/obs"
)

func TestWriteMetricsLine(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo_total").Add(3)
	reg.Gauge("demo_gauge").Set(1.5)

	var buf bytes.Buffer
	if err := WriteMetricsLine(&buf, reg, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	var line MetricsLine
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("not one JSON line: %v\n%s", err, buf.String())
	}
	if line.Kind != "metrics" || line.ElapsedS != 2 {
		t.Errorf("line header = %q/%v", line.Kind, line.ElapsedS)
	}
	if line.Metrics["demo_total"] != 3 || line.Metrics["demo_gauge"] != 1.5 {
		t.Errorf("metrics map = %v", line.Metrics)
	}
}

func TestStartMetricsJSONL(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("ticks_total")

	var buf bytes.Buffer
	stop := StartMetricsJSONL(&buf, reg, 5*time.Millisecond)
	c.Add(7)
	time.Sleep(30 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	// At least one ticker sample plus the final closing sample, every
	// line valid JSON, and the last one sees the counter's final value.
	var lines []MetricsLine
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var line MetricsLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d lines, want >= 2 (ticker + final)", len(lines))
	}
	last := lines[len(lines)-1]
	if last.Metrics["ticks_total"] != 7 {
		t.Errorf("final sample ticks_total = %v, want 7", last.Metrics["ticks_total"])
	}
	for i := 1; i < len(lines); i++ {
		if lines[i].ElapsedS < lines[i-1].ElapsedS {
			t.Errorf("ElapsedS not monotonic: %v then %v", lines[i-1].ElapsedS, lines[i].ElapsedS)
		}
	}
}

// errWriter fails every write after the first n bytes worth of calls.
type errWriter struct{ calls int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.calls++
	return 0, errors.New("sink broke")
}

func TestStartMetricsJSONLReportsWriteError(t *testing.T) {
	reg := obs.NewRegistry()
	w := &errWriter{}
	stop := StartMetricsJSONL(w, reg, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	if err := stop(); err == nil {
		t.Fatal("stop() = nil, want the write error surfaced")
	}
	calls := w.calls
	if calls == 0 {
		t.Fatal("sampler never attempted a write")
	}
}
