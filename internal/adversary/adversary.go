// Package adversary defines Byzantine peer models for the live lab and
// the simulator: piece poisoners that corrupt a seeded fraction of the
// blocks they serve, bitfield/HAVE liars that advertise pieces they do
// not hold (stalling their victims into request timeouts), and request
// flooders that spam the wire regardless of choke state.
//
// Models live in a named registry, mirroring internal/netem's fault
// plans: a scenario spec names a model, both backends realize it. The
// determinism contract matches the rest of the repo — the simulator
// drives every adversarial decision from the engine RNG (bitwise
// reproducible), while a live Behavior derives all of its decisions
// from its own seed, so a live run is schedule-deterministic: the same
// seed yields the same poison/lie decisions in the same per-peer order,
// even though wall-clock interleaving varies.
package adversary

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Model describes one adversarial population mixed into a swarm.
// A zero Model means "no adversary".
type Model struct {
	// Name identifies the model in scenario specs and reports.
	Name string

	// Fraction is the share of the peer population that is adversarial
	// (the simulator draws each arriving leecher against it; the live
	// lab provisions round(Fraction·population) extra adversarial
	// clients).
	Fraction float64

	// PoisonRate, when > 0, makes adversarial peers corrupt each
	// outbound block with this probability before sending it.
	PoisonRate float64

	// FakeHaves makes adversarial peers advertise a full bitfield
	// regardless of what they hold, baiting requests they never serve.
	FakeHaves bool

	// FloodRPS, when > 0, makes adversarial peers spam piece requests
	// at roughly this rate per connection, ignoring choke state.
	FloodRPS float64
}

// Kind returns a short label for the model's dominant behaviour.
func (m Model) Kind() string {
	switch {
	case m.PoisonRate > 0:
		return "poison"
	case m.FakeHaves:
		return "liar"
	case m.FloodRPS > 0:
		return "flood"
	default:
		return "none"
	}
}

// IsZero reports whether the model describes no adversary at all.
func (m Model) IsZero() bool {
	return m.Fraction == 0 && m.PoisonRate == 0 && !m.FakeHaves && m.FloodRPS == 0
}

// models is the registry of named adversarial peer models.
var models = map[string]Model{
	"poison25": {
		Name:       "poison25",
		Fraction:   0.25,
		PoisonRate: 0.5,
	},
	"liar25": {
		Name:      "liar25",
		Fraction:  0.25,
		FakeHaves: true,
	},
	"flood25": {
		Name:     "flood25",
		Fraction: 0.25,
		FloodRPS: 200,
	},
}

// ModelByName looks up a registered model.
func ModelByName(name string) (Model, error) {
	m, ok := models[name]
	if !ok {
		return Model{}, fmt.Errorf("adversary: unknown model %q (have: %s)", name, ModelNamesString())
	}
	return m, nil
}

// ModelNames returns the registered model names, sorted.
func ModelNames() []string {
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModelNamesString returns the registered model names joined for usage
// strings.
func ModelNamesString() string { return strings.Join(ModelNames(), ", ") }

// Behavior is one live client's seeded realization of a Model. All
// random decisions flow through a private RNG under a mutex, so a
// Behavior is safe for use from every peer-connection goroutine and
// fully determined by (model, seed).
type Behavior struct {
	model Model

	mu  sync.Mutex
	rng *rand.Rand
}

// New realizes model for one client with the given seed.
func New(model Model, seed int64) *Behavior {
	return &Behavior{model: model, rng: rand.New(rand.NewSource(seed))}
}

// Model returns the model this behavior realizes.
func (b *Behavior) Model() Model { return b.model }

// FakeHaves reports whether this peer advertises pieces it does not
// hold.
func (b *Behavior) FakeHaves() bool { return b.model.FakeHaves }

// FloodInterval returns the per-connection request-flood interval, or 0
// when this peer does not flood.
func (b *Behavior) FloodInterval() time.Duration {
	if b.model.FloodRPS <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / b.model.FloodRPS)
}

// MaybePoison corrupts block in place with probability PoisonRate and
// reports whether it did. The corruption flips bits in a handful of
// positions drawn from the same RNG, so the block still has the right
// length but can never pass piece verification.
func (b *Behavior) MaybePoison(block []byte) bool {
	if b.model.PoisonRate <= 0 || len(block) == 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng.Float64() >= b.model.PoisonRate {
		return false
	}
	for i := 0; i < 4; i++ {
		pos := b.rng.Intn(len(block))
		block[pos] ^= 0xff
	}
	return true
}

// FloodPiece draws a piece index in [0, numPieces) to target with a
// flood request.
func (b *Behavior) FloodPiece(numPieces int) int {
	if numPieces <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rng.Intn(numPieces)
}
