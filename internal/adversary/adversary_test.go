package adversary

import (
	"bytes"
	"sort"
	"testing"
)

func TestRegistryLookup(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("model %q has Name %q", name, m.Name)
		}
		if m.Fraction <= 0 || m.Fraction > 1 {
			t.Fatalf("model %q: Fraction %v out of (0,1]", name, m.Fraction)
		}
		if m.Kind() == "none" {
			t.Fatalf("model %q has no behaviour", name)
		}
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("expected error for unknown model")
	}
	names := ModelNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ModelNames not sorted: %v", names)
	}
}

func TestKinds(t *testing.T) {
	cases := map[string]string{"poison25": "poison", "liar25": "liar", "flood25": "flood"}
	for name, want := range cases {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Kind(); got != want {
			t.Fatalf("%s.Kind() = %q, want %q", name, got, want)
		}
	}
	if (Model{}).Kind() != "none" || !(Model{}).IsZero() {
		t.Fatal("zero model should be none/IsZero")
	}
}

func TestBehaviorDeterministic(t *testing.T) {
	m, err := ModelByName("poison25")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) ([]bool, [][]byte) {
		b := New(m, seed)
		var hits []bool
		var blocks [][]byte
		for i := 0; i < 64; i++ {
			block := bytes.Repeat([]byte{byte(i)}, 32)
			hits = append(hits, b.MaybePoison(block))
			blocks = append(blocks, block)
		}
		return hits, blocks
	}
	h1, b1 := run(7)
	h2, b2 := run(7)
	for i := range h1 {
		if h1[i] != h2[i] || !bytes.Equal(b1[i], b2[i]) {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	poisoned := 0
	for i, hit := range h1 {
		clean := bytes.Repeat([]byte{byte(i)}, 32)
		if hit != !bytes.Equal(b1[i], clean) {
			t.Fatalf("decision %d: hit=%v but corruption=%v", i, hit, !bytes.Equal(b1[i], clean))
		}
		if hit {
			poisoned++
		}
	}
	if poisoned == 0 || poisoned == len(h1) {
		t.Fatalf("poison rate 0.5 produced %d/%d corruptions", poisoned, len(h1))
	}
}

func TestBehaviorFloodAndLiar(t *testing.T) {
	liar, _ := ModelByName("liar25")
	if b := New(liar, 1); !b.FakeHaves() || b.FloodInterval() != 0 {
		t.Fatal("liar behavior wrong")
	}
	if b := New(liar, 1); b.MaybePoison(make([]byte, 8)) {
		t.Fatal("liar must not poison")
	}
	flood, _ := ModelByName("flood25")
	b := New(flood, 1)
	if b.FloodInterval() <= 0 {
		t.Fatal("flood interval must be positive")
	}
	for i := 0; i < 32; i++ {
		if p := b.FloodPiece(10); p < 0 || p >= 10 {
			t.Fatalf("FloodPiece out of range: %d", p)
		}
	}
}
