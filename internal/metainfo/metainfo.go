// Package metainfo builds and parses BitTorrent .torrent metainfo files
// (BEP 3) and exposes the piece/block geometry used by the rest of the
// system.
//
// A torrent's content is split into pieces (typically 256 kB in the paper's
// torrents, up to 4 MB for torrent 8); each piece is split into 16 kB
// blocks, the transmission unit on the network. Only complete, SHA-1
// verified pieces may be served to other peers.
package metainfo

import (
	"crypto/sha1"
	"errors"
	"fmt"

	"rarestfirst/internal/bencode"
)

// DefaultPieceSize is the paper's "typically 256 kB" piece size.
const DefaultPieceSize = 256 << 10

// BlockSize is the fixed 16 kB transmission unit (2^14, the mainline
// default block size the paper reports).
const BlockSize = 16 << 10

// InfoHash is the SHA-1 hash of the bencoded info dictionary; it identifies
// a torrent.
type InfoHash [20]byte

// String renders the info-hash in hex.
func (h InfoHash) String() string { return fmt.Sprintf("%x", h[:]) }

// Info describes a single-file torrent's content.
type Info struct {
	Name        string // advisory file name
	Length      int64  // total content length in bytes
	PieceLength int    // bytes per piece (last piece may be short)
	Hashes      [][20]byte
}

// MetaInfo is a parsed .torrent file.
type MetaInfo struct {
	Announce string // tracker URL
	Info     Info
	infoHash InfoHash
}

// Geometry captures the piece/block structure of a torrent independent of
// hashes; the simulator uses it directly.
type Geometry struct {
	TotalLength int64
	PieceLength int
	NumPieces   int
}

// NewGeometry derives the geometry for a content of length bytes split into
// pieceLength-byte pieces. It panics on non-positive arguments.
func NewGeometry(length int64, pieceLength int) Geometry {
	if length <= 0 || pieceLength <= 0 {
		panic("metainfo: non-positive geometry")
	}
	n := int((length + int64(pieceLength) - 1) / int64(pieceLength))
	return Geometry{TotalLength: length, PieceLength: pieceLength, NumPieces: n}
}

// PieceSize returns the size in bytes of piece i (the final piece may be
// shorter than PieceLength).
func (g Geometry) PieceSize(i int) int {
	if i < 0 || i >= g.NumPieces {
		panic(fmt.Sprintf("metainfo: piece %d out of range [0,%d)", i, g.NumPieces))
	}
	if i == g.NumPieces-1 {
		rem := g.TotalLength - int64(g.NumPieces-1)*int64(g.PieceLength)
		return int(rem)
	}
	return g.PieceLength
}

// BlocksIn returns the number of 16 kB blocks in piece i.
func (g Geometry) BlocksIn(i int) int {
	return (g.PieceSize(i) + BlockSize - 1) / BlockSize
}

// BlockSize returns the size in bytes of block b of piece i.
func (g Geometry) BlockSize(i, b int) int {
	nb := g.BlocksIn(i)
	if b < 0 || b >= nb {
		panic(fmt.Sprintf("metainfo: block %d out of range [0,%d) in piece %d", b, nb, i))
	}
	if b == nb-1 {
		return g.PieceSize(i) - (nb-1)*BlockSize
	}
	return BlockSize
}

// TotalBlocks returns the number of blocks across all pieces.
func (g Geometry) TotalBlocks() int {
	full := g.NumPieces - 1
	return full*((g.PieceLength+BlockSize-1)/BlockSize) + g.BlocksIn(g.NumPieces-1)
}

// Build constructs a MetaInfo for the given content, hashing every piece.
func Build(name, announce string, content []byte, pieceLength int) (*MetaInfo, error) {
	if len(content) == 0 {
		return nil, errors.New("metainfo: empty content")
	}
	if pieceLength <= 0 {
		return nil, errors.New("metainfo: non-positive piece length")
	}
	g := NewGeometry(int64(len(content)), pieceLength)
	info := Info{Name: name, Length: int64(len(content)), PieceLength: pieceLength}
	for i := 0; i < g.NumPieces; i++ {
		start := i * pieceLength
		end := start + g.PieceSize(i)
		info.Hashes = append(info.Hashes, sha1.Sum(content[start:end]))
	}
	m := &MetaInfo{Announce: announce, Info: info}
	m.infoHash = m.computeInfoHash()
	return m, nil
}

// Geometry returns the piece/block geometry of the torrent.
func (m *MetaInfo) Geometry() Geometry {
	return NewGeometry(m.Info.Length, m.Info.PieceLength)
}

// NumPieces returns the number of pieces.
func (m *MetaInfo) NumPieces() int { return len(m.Info.Hashes) }

// InfoHash returns the torrent's SHA-1 info-hash.
func (m *MetaInfo) InfoHash() InfoHash { return m.infoHash }

// VerifyPiece reports whether data matches the recorded hash of piece i.
func (m *MetaInfo) VerifyPiece(i int, data []byte) bool {
	if i < 0 || i >= len(m.Info.Hashes) {
		return false
	}
	return sha1.Sum(data) == m.Info.Hashes[i]
}

func (m *MetaInfo) infoDict() map[string]any {
	pieces := make([]byte, 0, 20*len(m.Info.Hashes))
	for _, h := range m.Info.Hashes {
		pieces = append(pieces, h[:]...)
	}
	return map[string]any{
		"name":         m.Info.Name,
		"length":       m.Info.Length,
		"piece length": m.Info.PieceLength,
		"pieces":       pieces,
	}
}

func (m *MetaInfo) computeInfoHash() InfoHash {
	return sha1.Sum(bencode.MustEncode(m.infoDict()))
}

// Marshal encodes the metainfo as a .torrent file.
func (m *MetaInfo) Marshal() []byte {
	return bencode.MustEncode(map[string]any{
		"announce": m.Announce,
		"info":     m.infoDict(),
	})
}

// Unmarshal parses a .torrent file.
func Unmarshal(data []byte) (*MetaInfo, error) {
	v, err := bencode.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("metainfo: %w", err)
	}
	d, ok := bencode.AsDict(v)
	if !ok {
		return nil, errors.New("metainfo: top-level value is not a dict")
	}
	info := d.Sub("info")
	if info == nil {
		return nil, errors.New("metainfo: missing info dict")
	}
	m := &MetaInfo{
		Announce: d.Str("announce"),
		Info: Info{
			Name:        info.Str("name"),
			Length:      info.Int("length"),
			PieceLength: int(info.Int("piece length")),
		},
	}
	if m.Info.Length <= 0 {
		return nil, errors.New("metainfo: missing or invalid length")
	}
	if m.Info.PieceLength <= 0 {
		return nil, errors.New("metainfo: missing or invalid piece length")
	}
	pieces := info.Str("pieces")
	if len(pieces)%20 != 0 || len(pieces) == 0 {
		return nil, fmt.Errorf("metainfo: pieces length %d not a positive multiple of 20", len(pieces))
	}
	want := m.Geometry().NumPieces
	if len(pieces)/20 != want {
		return nil, fmt.Errorf("metainfo: %d piece hashes for %d pieces", len(pieces)/20, want)
	}
	for i := 0; i+20 <= len(pieces); i += 20 {
		var h [20]byte
		copy(h[:], pieces[i:i+20])
		m.Info.Hashes = append(m.Info.Hashes, h)
	}
	m.infoHash = m.computeInfoHash()
	return m, nil
}
