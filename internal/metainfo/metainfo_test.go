package metainfo

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testContent(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestGeometryExact(t *testing.T) {
	g := NewGeometry(1<<20, 256<<10) // exactly 4 pieces
	if g.NumPieces != 4 {
		t.Fatalf("NumPieces = %d", g.NumPieces)
	}
	for i := 0; i < 4; i++ {
		if g.PieceSize(i) != 256<<10 {
			t.Fatalf("PieceSize(%d) = %d", i, g.PieceSize(i))
		}
		if g.BlocksIn(i) != 16 {
			t.Fatalf("BlocksIn(%d) = %d", i, g.BlocksIn(i))
		}
	}
	if g.TotalBlocks() != 64 {
		t.Fatalf("TotalBlocks = %d", g.TotalBlocks())
	}
}

func TestGeometryRaggedTail(t *testing.T) {
	// 1 MiB + 100 bytes: 5 pieces, last piece 100 bytes = 1 block of 100.
	g := NewGeometry(1<<20+100, 256<<10)
	if g.NumPieces != 5 {
		t.Fatalf("NumPieces = %d", g.NumPieces)
	}
	if g.PieceSize(4) != 100 {
		t.Fatalf("last PieceSize = %d", g.PieceSize(4))
	}
	if g.BlocksIn(4) != 1 || g.BlockSize(4, 0) != 100 {
		t.Fatalf("tail blocks wrong: %d blocks, first %d bytes", g.BlocksIn(4), g.BlockSize(4, 0))
	}
	// Piece with ragged final block: 20 kB piece = 16 kB + 4 kB.
	g2 := NewGeometry(20<<10, 20<<10)
	if g2.BlocksIn(0) != 2 || g2.BlockSize(0, 0) != 16<<10 || g2.BlockSize(0, 1) != 4<<10 {
		t.Fatalf("ragged block geometry wrong")
	}
}

func TestGeometryPanics(t *testing.T) {
	g := NewGeometry(100, 50)
	for _, fn := range []func(){
		func() { NewGeometry(0, 10) },
		func() { NewGeometry(10, 0) },
		func() { g.PieceSize(2) },
		func() { g.PieceSize(-1) },
		func() { g.BlockSize(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBuildAndVerify(t *testing.T) {
	content := testContent(300000, 1)
	m, err := Build("demo.bin", "http://tracker.local/announce", content, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPieces() != 5 {
		t.Fatalf("NumPieces = %d", m.NumPieces())
	}
	g := m.Geometry()
	for i := 0; i < g.NumPieces; i++ {
		start := i * g.PieceLength
		piece := content[start : start+g.PieceSize(i)]
		if !m.VerifyPiece(i, piece) {
			t.Fatalf("piece %d does not verify", i)
		}
		if i > 0 && m.VerifyPiece(i, content[:g.PieceSize(i)]) {
			t.Fatalf("piece %d verified against wrong data", i)
		}
	}
	if m.VerifyPiece(-1, nil) || m.VerifyPiece(99, nil) {
		t.Fatal("out-of-range piece verified")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("x", "u", nil, 100); err == nil {
		t.Fatal("empty content accepted")
	}
	if _, err := Build("x", "u", []byte{1}, 0); err == nil {
		t.Fatal("zero piece length accepted")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	content := testContent(70000, 2)
	m, err := Build("a b c.iso", "http://127.0.0.1:8080/announce", content, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	enc := m.Marshal()
	back, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Announce != m.Announce || back.Info.Name != m.Info.Name ||
		back.Info.Length != m.Info.Length || back.Info.PieceLength != m.Info.PieceLength {
		t.Fatalf("fields differ: %+v vs %+v", back, m)
	}
	if back.InfoHash() != m.InfoHash() {
		t.Fatalf("info hash differs: %v vs %v", back.InfoHash(), m.InfoHash())
	}
	if len(back.Info.Hashes) != len(m.Info.Hashes) {
		t.Fatalf("hash count differs")
	}
	if !bytes.Equal(back.Marshal(), enc) {
		t.Fatal("re-marshal not canonical")
	}
}

func TestInfoHashSensitivity(t *testing.T) {
	content := testContent(50000, 3)
	m1, _ := Build("n", "u", content, 16<<10)
	content[0] ^= 1
	m2, _ := Build("n", "u", content, 16<<10)
	if m1.InfoHash() == m2.InfoHash() {
		t.Fatal("info hash insensitive to content change")
	}
	content[0] ^= 1
	m3, _ := Build("other-name", "u", content, 16<<10)
	if m1.InfoHash() == m3.InfoHash() {
		t.Fatal("info hash insensitive to name change")
	}
	m4, _ := Build("n", "elsewhere", content, 16<<10)
	if m1.InfoHash() != m4.InfoHash() {
		t.Fatal("info hash must not depend on announce URL")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := [][]byte{
		[]byte("garbage"),
		[]byte("le"),
		[]byte("de"),
		[]byte("d4:infodee"),
		[]byte("d4:infod6:lengthi100e4:name1:x12:piece lengthi16384e6:pieces3:abcee"), // hashes not 20-aligned
		[]byte("d4:infod6:lengthi100e4:name1:x12:piece lengthi16384e6:pieces0:ee"),    // no hashes
	}
	for _, in := range bad {
		if _, err := Unmarshal(in); err == nil {
			t.Errorf("Unmarshal(%q) accepted", in)
		}
	}
	// Wrong hash count for geometry: 2 hashes but length implies 1 piece.
	m, _ := Build("x", "u", testContent(100, 4), 200)
	m.Info.Hashes = append(m.Info.Hashes, [20]byte{})
	if _, err := Unmarshal(m.Marshal()); err == nil {
		t.Error("hash-count mismatch accepted")
	}
}

// Property: piece sizes always sum to the total length, and block sizes sum
// to each piece's size.
func TestQuickGeometryConservation(t *testing.T) {
	f := func(lenSeed, pieceSeed uint32) bool {
		length := int64(lenSeed)%(64<<20) + 1
		pieceLen := int(pieceSeed)%(4<<20) + 1
		g := NewGeometry(length, pieceLen)
		var sum int64
		for i := 0; i < g.NumPieces; i++ {
			ps := g.PieceSize(i)
			if ps <= 0 || ps > pieceLen {
				return false
			}
			bsum := 0
			for b := 0; b < g.BlocksIn(i); b++ {
				bs := g.BlockSize(i, b)
				if bs <= 0 || bs > BlockSize {
					return false
				}
				bsum += bs
			}
			if bsum != ps {
				return false
			}
			sum += int64(ps)
		}
		return sum == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperTorrentGeometries(t *testing.T) {
	// Torrent 8: 3000 MB in 863 pieces -> ~3.5 MB pieces (paper: "size of
	// each piece in this torrent is 4 MB" after rounding piece length up).
	g := NewGeometry(3000<<20, 4<<20)
	if g.NumPieces != 750 { // 3000/4
		t.Fatalf("torrent-8-like geometry: %d pieces", g.NumPieces)
	}
	// Torrent 10: 348 MB in 1393 pieces -> 256 kB pieces.
	g = NewGeometry(348<<20, 256<<10)
	if g.NumPieces != 1392 {
		t.Fatalf("torrent-10-like geometry: %d pieces", g.NumPieces)
	}
}
