package rate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimatorZeroBeforeStart(t *testing.T) {
	e := NewEstimator(20)
	if e.Rate(100) != 0 {
		t.Fatal("unstarted estimator should report 0")
	}
	if e.Total() != 0 {
		t.Fatal("unstarted estimator total != 0")
	}
}

func TestEstimatorSteadyRate(t *testing.T) {
	// 1000 B every second for 60 s -> estimate converges to ~1000 B/s.
	e := NewEstimator(20)
	now := 0.0
	for i := 0; i < 60; i++ {
		now = float64(i)
		e.Update(now, 1000)
	}
	got := e.Rate(now)
	if math.Abs(got-1000) > 100 {
		t.Fatalf("steady rate = %.1f, want ~1000", got)
	}
	if e.Total() != 60000 {
		t.Fatalf("total = %d", e.Total())
	}
}

func TestEstimatorDecaysWhenIdle(t *testing.T) {
	e := NewEstimator(20)
	for i := 0; i < 30; i++ {
		e.Update(float64(i), 1000)
	}
	busy := e.Rate(30)
	idle := e.Rate(300) // long idle: the 20 s window now holds nothing
	if idle >= busy/10 {
		t.Fatalf("idle rate %.1f did not decay from %.1f", idle, busy)
	}
}

func TestEstimatorWindowForgetsOldBurst(t *testing.T) {
	// Mainline's Measure ages exponentially once past the window: each
	// 1-second step past the 20 s window multiplies the estimate by 19/20.
	// A large ancient burst must have decayed to a few percent of its peak
	// after 80 s beyond the window.
	e := NewEstimator(20)
	e.Update(0, 1e6)
	peak := e.Rate(0)
	for i := 1; i <= 100; i++ {
		e.Update(float64(i), 10)
	}
	got := e.Rate(100)
	if got > peak*0.02 {
		t.Fatalf("ancient burst still dominates: %.1f B/s (peak %.1f)", got, peak)
	}
}

func TestEstimatorClockClamp(t *testing.T) {
	e := NewEstimator(20)
	e.Update(10, 100)
	e.Update(5, 100) // time goes backwards; must not panic or go negative
	if r := e.Rate(10); r < 0 {
		t.Fatalf("negative rate %f", r)
	}
}

func TestEstimatorDefaultWindow(t *testing.T) {
	e := NewEstimator(0)
	if e.maxRatePeriod != DefaultMaxRatePeriod {
		t.Fatalf("default window = %f", e.maxRatePeriod)
	}
}

func TestEstimatorOrdering(t *testing.T) {
	// The choke algorithm only needs the ORDER of rates to be correct: a
	// peer sending twice as fast must estimate higher.
	fast, slow := NewEstimator(20), NewEstimator(20)
	for i := 0; i < 40; i++ {
		now := float64(i) / 2
		fast.Update(now, 2000)
		slow.Update(now, 1000)
	}
	if fast.Rate(20) <= slow.Rate(20) {
		t.Fatalf("fast %.1f <= slow %.1f", fast.Rate(20), slow.Rate(20))
	}
}

// Property: rates are never negative and total is conserved.
func TestQuickEstimatorInvariants(t *testing.T) {
	f := func(deltas []uint16, amounts []uint16) bool {
		e := NewEstimator(20)
		now := 0.0
		var total int64
		for i := range deltas {
			now += float64(deltas[i]%100) / 10
			var amt int64
			if i < len(amounts) {
				amt = int64(amounts[i])
			}
			e.Update(now, amt)
			total += amt
			if e.Rate(now) < 0 {
				return false
			}
		}
		return e.Total() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketImmediateTake(t *testing.T) {
	b := NewBucket(20480, 20480) // 20 kB/s, paper's default cap
	if wait := b.Take(0, 16384); wait != 0 {
		t.Fatalf("first block should be free, wait=%f", wait)
	}
}

func TestBucketEnforcesRate(t *testing.T) {
	b := NewBucket(20480, 20480)
	now := 0.0
	totalWait := 0.0
	const blocks = 100
	for i := 0; i < blocks; i++ {
		w := b.Take(now, 16384)
		totalWait += w
		now += w
	}
	// 100 blocks of 16 kB at 20 kB/s is 80 s of data; the burst gives one
	// second of credit. Elapsed must be within 5% of 79 s.
	wantMin := (float64(blocks)*16384 - 20480) / 20480 * 0.95
	if now < wantMin {
		t.Fatalf("sent 100 blocks in %.1f s; cap not enforced (want >= %.1f)", now, wantMin)
	}
}

func TestBucketRefills(t *testing.T) {
	b := NewBucket(1000, 1000)
	b.Take(0, 1000)
	if b.Available(0) != 0 {
		t.Fatalf("bucket should be empty, has %f", b.Available(0))
	}
	if got := b.Available(0.5); math.Abs(got-500) > 1 {
		t.Fatalf("after 0.5 s: %f tokens, want ~500", got)
	}
	if got := b.Available(10); got != 1000 {
		t.Fatalf("bucket overfilled: %f", got)
	}
}

func TestBucketPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBucket(0,·) did not panic")
		}
	}()
	NewBucket(0, 10)
}

// Property: with sequential waits honoured, long-run throughput never
// exceeds the configured rate by more than the burst.
func TestQuickBucketThroughput(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		const rate = 5000.0
		b := NewBucket(rate, rate)
		now := 0.0
		var sent int64
		for _, s := range sizes {
			n := int(s)%4096 + 1
			w := b.Take(now, n)
			now += w
			sent += int64(n)
		}
		if now == 0 {
			return float64(sent) <= rate // all fit in the initial burst
		}
		return float64(sent) <= rate*now+rate+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRateWithMatchesUpdateThenRate: RateWith(now, x) must equal the rate
// a copy reports after Update(now, x), for arbitrary observation
// histories, and must leave the original estimator untouched.
func TestRateWithMatchesUpdateThenRate(t *testing.T) {
	f := func(deltas []uint16, amounts []uint16, probe uint16, extra uint16) bool {
		e := NewEstimator(20)
		now := 0.0
		for i, d := range deltas {
			now += float64(d%300) / 10
			amt := int64(0)
			if i < len(amounts) {
				amt = int64(amounts[i])
			}
			e.Update(now, amt)
		}
		at := now + float64(probe%500)/10
		want := *e
		want.Update(at, int64(extra))
		before := *e
		got := e.RateWith(at, int64(extra))
		if *e != before {
			t.Fatalf("RateWith mutated the estimator")
		}
		if gotAt := e.RateAt(at); gotAt != e.RateWith(at, 0) {
			t.Fatalf("RateAt(%v) = %v inconsistent with RateWith", at, gotAt)
		}
		return got == want.rate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRateWithUnstarted pins the unstarted fast paths.
func TestRateWithUnstarted(t *testing.T) {
	e := NewEstimator(20)
	if got := e.RateWith(50, 0); got != 0 {
		t.Fatalf("unstarted RateWith(_, 0) = %v", got)
	}
	var cp Estimator
	cp = *e
	cp.Update(50, 800)
	if got := e.RateWith(50, 800); got != cp.rate {
		t.Fatalf("unstarted RateWith(_, 800) = %v, want %v", got, cp.rate)
	}
}
