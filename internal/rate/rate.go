// Package rate implements the bandwidth measurement used by the choke
// algorithm and the shaping used by the real client.
//
// Estimator reproduces the mainline 4.0.2 "Measure" class: an exponentially
// ageing average over at most MaxRatePeriod seconds (20 s by default). The
// paper's choke algorithm orders peers by exactly this estimate, so the
// simulator and the real client share it.
//
// All timestamps are float64 seconds on an arbitrary monotonic clock; the
// caller supplies "now" explicitly so that simulated and wall-clock time
// both work.
package rate

import "fmt"

// DefaultMaxRatePeriod is the mainline client's 20-second estimation window.
const DefaultMaxRatePeriod = 20.0

// Estimator measures a transfer rate the way mainline 4.0.2 does: each
// update folds the new byte count into a running average whose memory is
// capped at MaxRatePeriod seconds. The zero value is not usable; call
// NewEstimator.
type Estimator struct {
	maxRatePeriod float64
	rateSince     float64
	last          float64
	rate          float64
	total         int64
	started       bool
}

// NewEstimator returns an estimator with the given averaging window in
// seconds. If window <= 0, DefaultMaxRatePeriod is used.
func NewEstimator(window float64) *Estimator {
	e := &Estimator{}
	e.Init(window)
	return e
}

// Init (re)initializes e in place with the given averaging window —
// the constructor for estimators embedded by value (the simulator keeps
// two per connection and connection churn is hot).
func (e *Estimator) Init(window float64) {
	if window <= 0 {
		window = DefaultMaxRatePeriod
	}
	*e = Estimator{maxRatePeriod: window}
}

// start initializes the window on the first observation, with the mainline
// fudge of one second so early rates aren't infinite.
func (e *Estimator) start(now float64) {
	e.rateSince = now - 1
	e.last = e.rateSince
	e.started = true
}

// Update records amount bytes transferred at time now (seconds).
func (e *Estimator) Update(now float64, amount int64) {
	if !e.started {
		e.start(now)
	}
	if now < e.last {
		now = e.last // clock must not run backwards; clamp
	}
	e.total += amount
	if now > e.rateSince {
		e.rate = (e.rate*(e.last-e.rateSince) + float64(amount)) / (now - e.rateSince)
	}
	e.last = now
	if e.rateSince < now-e.maxRatePeriod {
		e.rateSince = now - e.maxRatePeriod
	}
}

// Rate returns the estimated rate in bytes/second at time now. As in the
// mainline client, asking for the rate ages it (an idle peer's estimate
// decays toward zero).
func (e *Estimator) Rate(now float64) float64 {
	if !e.started {
		return 0
	}
	e.Update(now, 0)
	return e.rate
}

// RateAt returns the rate Rate(now) would report, without mutating the
// estimator. Pure reads let concurrent readers (the simulator's parallel
// choke-round lanes) share one estimator; skipping the aging commit is
// observable only through later Update calls, which re-age from the last
// committed observation anyway.
func (e *Estimator) RateAt(now float64) float64 { return e.RateWith(now, 0) }

// RateWith returns the rate Rate(now) would report if amount extra bytes
// had just been observed at now, without mutating the estimator. The
// simulator uses it to fold a flow's not-yet-settled in-flight progress
// into the choke ordering while keeping the read side effect free.
func (e *Estimator) RateWith(now float64, amount int64) float64 {
	if !e.started {
		if amount == 0 {
			return 0
		}
		// Mirror start(now): the window opens one second before now.
		return float64(amount)
	}
	if now < e.last {
		now = e.last
	}
	rate := e.rate
	if now > e.rateSince {
		rate = (rate*(e.last-e.rateSince) + float64(amount)) / (now - e.rateSince)
	}
	return rate
}

// Total returns the total bytes observed.
func (e *Estimator) Total() int64 { return e.total }

// String summarises the estimator for logs.
func (e *Estimator) String() string {
	return fmt.Sprintf("rate{%.1fB/s over %.0fs, total %d}", e.rate, e.maxRatePeriod, e.total)
}

// Bucket is a token bucket used by the real client to cap upload rate (the
// paper's client uploads at most 20 kB/s). Tokens are bytes.
type Bucket struct {
	ratePerSec float64 // fill rate, bytes/second
	burst      float64 // bucket capacity, bytes
	tokens     float64
	lastFill   float64
	started    bool
}

// NewBucket returns a token bucket filling at ratePerSec bytes/second with
// the given burst capacity. A non-positive burst defaults to one second of
// tokens.
func NewBucket(ratePerSec, burst float64) *Bucket {
	if ratePerSec <= 0 {
		panic("rate: non-positive bucket rate")
	}
	if burst <= 0 {
		burst = ratePerSec
	}
	return &Bucket{ratePerSec: ratePerSec, burst: burst}
}

func (b *Bucket) fill(now float64) {
	if !b.started {
		b.started = true
		b.lastFill = now
		b.tokens = b.burst
		return
	}
	if now > b.lastFill {
		b.tokens += (now - b.lastFill) * b.ratePerSec
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.lastFill = now
	}
}

// Take attempts to remove n tokens at time now. It returns 0 if the tokens
// were available, otherwise the number of seconds to wait until they will
// be.
func (b *Bucket) Take(now float64, n int) float64 {
	b.fill(now)
	if float64(n) <= b.tokens {
		b.tokens -= float64(n)
		return 0
	}
	deficit := float64(n) - b.tokens
	wait := deficit / b.ratePerSec
	// Commit the take; the caller sleeps for the returned duration.
	b.tokens -= float64(n)
	return wait
}

// Available returns the token count at time now without taking any.
func (b *Bucket) Available(now float64) float64 {
	b.fill(now)
	return b.tokens
}
