package client

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"rarestfirst/internal/wire"
)

// dialHandshake opens a raw TCP connection to c and completes the wire
// handshake, returning the socket.
func dialHandshake(t *testing.T, c *Client, infoHash [20]byte) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", c.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var pid [20]byte
	copy(pid[:], "-XX0001-abcdefghijkl")
	if err := wire.WriteHandshake(conn, wire.Handshake{InfoHash: infoHash, PeerID: pid}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadHandshake(conn); err != nil {
		t.Fatalf("no handshake back: %v", err)
	}
	return conn
}

// expectClosed asserts the peer closes the connection promptly.
func expectClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // closed or reset: what we wanted
		}
	}
}

func startSeed(t *testing.T) (*Client, [20]byte) {
	t.Helper()
	m, content := makeTorrent(t, 128<<10, "")
	seed, err := New(Options{Meta: m, Content: content})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(seed.Stop)
	return seed, m.InfoHash()
}

func TestProtocolRejectsWrongInfoHash(t *testing.T) {
	seed, _ := startSeed(t)
	conn, err := net.DialTimeout("tcp", seed.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var wrong [20]byte
	copy(wrong[:], "not-the-right-hash!!")
	var pid [20]byte
	copy(pid[:], "-XX0001-abcdefghijkl")
	if err := wire.WriteHandshake(conn, wire.Handshake{InfoHash: wrong, PeerID: pid}); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
}

func TestProtocolRejectsGarbageFrames(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	// Unknown message id 0x2a.
	conn.Write([]byte{0, 0, 0, 1, 0x2a})
	expectClosed(t, conn)
}

func TestProtocolRejectsOversizedFrame(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xffffffff)
	conn.Write(hdr[:])
	expectClosed(t, conn)
}

func TestProtocolRejectsDuplicateBitfield(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	bits := make([]byte, 1) // 2 pieces -> 1 byte
	if err := enc.Bitfield(bits); err != nil {
		t.Fatal(err)
	}
	if err := enc.Bitfield(bits); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
}

func TestProtocolRejectsOutOfRangeHave(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	if err := enc.Have(9999); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
}

func TestProtocolIgnoresRequestWhileChoked(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	// No interested/unchoke dance: a request now must be silently dropped,
	// not answered and not fatal.
	if err := enc.Request(0, 0, 16384); err != nil {
		t.Fatal(err)
	}
	if err := enc.KeepAlive(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(1 * time.Second))
	dec := wire.NewDecoder(conn)
	var m wire.Message
	for {
		if err := dec.Decode(&m); err != nil {
			return // timed out with no piece: correct
		}
		if m.ID == wire.MsgPiece {
			t.Fatal("served a block to a choked peer")
		}
	}
}

func TestProtocolSurvivesAdversarialFrames(t *testing.T) {
	// A Byzantine peer sends hostile framing; the client must close each
	// connection without panicking and keep serving honest peers after.
	seed, ih := startSeed(t)
	frames := []struct {
		name string
		raw  []byte
	}{
		{"oversized declared length", []byte{0xff, 0xff, 0xff, 0xff}},
		{"request out-of-range index", []byte{0, 0, 0, 13, 6, 0, 0, 0x27, 0x0f, 0, 0, 0, 0, 0, 0, 0x40, 0}},
		{"request absurd length", []byte{0, 0, 0, 13, 6, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}},
		{"piece out-of-range index", []byte{0, 0, 0, 13, 7, 0, 0, 0x27, 0x0f, 0, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}},
		{"piece misaligned begin", []byte{0, 0, 0, 13, 7, 0, 0, 0, 0, 0, 0, 0, 7, 0xde, 0xad, 0xbe, 0xef}},
		{"truncated body", []byte{0, 0, 0, 100, 7, 0, 0}},
		{"unknown id", []byte{0, 0, 0, 1, 0x2a}},
		{"choke with payload", []byte{0, 0, 0, 2, 0, 9}},
	}
	for _, f := range frames {
		conn := dialHandshake(t, seed, ih)
		if _, err := conn.Write(f.raw); err != nil {
			t.Fatalf("%s: write: %v", f.name, err)
		}
		expectClosed(t, conn)
		conn.Close()
	}
	// The seed survived every attack: an honest leecher still completes.
	m := seed.meta
	leech, err := New(Options{Meta: m, UploadBps: 8 << 20, ChokeInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer leech.Stop()
	leech.AddPeer(seed.Addr())
	waitComplete(t, 30*time.Second, leech)
}

func TestProtocolKeepAliveIsHarmless(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	for i := 0; i < 5; i++ {
		if err := enc.KeepAlive(); err != nil {
			t.Fatalf("keep-alive %d: %v", i, err)
		}
	}
	// Connection must still be usable: a valid bitfield is accepted.
	if err := enc.Bitfield(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	seed.mu.Lock()
	n := len(seed.connOrder)
	seed.mu.Unlock()
	if n != 1 {
		t.Fatalf("connection dropped after keep-alives: %d conns", n)
	}
}
