package client

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"rarestfirst/internal/wire"
)

// dialHandshake opens a raw TCP connection to c and completes the wire
// handshake, returning the socket.
func dialHandshake(t *testing.T, c *Client, infoHash [20]byte) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", c.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var pid [20]byte
	copy(pid[:], "-XX0001-abcdefghijkl")
	if err := wire.WriteHandshake(conn, wire.Handshake{InfoHash: infoHash, PeerID: pid}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadHandshake(conn); err != nil {
		t.Fatalf("no handshake back: %v", err)
	}
	return conn
}

// expectClosed asserts the peer closes the connection promptly.
func expectClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // closed or reset: what we wanted
		}
	}
}

func startSeed(t *testing.T) (*Client, [20]byte) {
	t.Helper()
	m, content := makeTorrent(t, 128<<10, "")
	seed, err := New(Options{Meta: m, Content: content})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(seed.Stop)
	return seed, m.InfoHash()
}

func TestProtocolRejectsWrongInfoHash(t *testing.T) {
	seed, _ := startSeed(t)
	conn, err := net.DialTimeout("tcp", seed.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var wrong [20]byte
	copy(wrong[:], "not-the-right-hash!!")
	var pid [20]byte
	copy(pid[:], "-XX0001-abcdefghijkl")
	if err := wire.WriteHandshake(conn, wire.Handshake{InfoHash: wrong, PeerID: pid}); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
}

func TestProtocolRejectsGarbageFrames(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	// Unknown message id 0x2a.
	conn.Write([]byte{0, 0, 0, 1, 0x2a})
	expectClosed(t, conn)
}

func TestProtocolRejectsOversizedFrame(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xffffffff)
	conn.Write(hdr[:])
	expectClosed(t, conn)
}

func TestProtocolRejectsDuplicateBitfield(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	bits := make([]byte, 1) // 2 pieces -> 1 byte
	if err := enc.Bitfield(bits); err != nil {
		t.Fatal(err)
	}
	if err := enc.Bitfield(bits); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
}

func TestProtocolRejectsOutOfRangeHave(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	if err := enc.Have(9999); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
}

func TestProtocolIgnoresRequestWhileChoked(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	// No interested/unchoke dance: a request now must be silently dropped,
	// not answered and not fatal.
	if err := enc.Request(0, 0, 16384); err != nil {
		t.Fatal(err)
	}
	if err := enc.KeepAlive(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(1 * time.Second))
	dec := wire.NewDecoder(conn)
	var m wire.Message
	for {
		if err := dec.Decode(&m); err != nil {
			return // timed out with no piece: correct
		}
		if m.ID == wire.MsgPiece {
			t.Fatal("served a block to a choked peer")
		}
	}
}

func TestProtocolKeepAliveIsHarmless(t *testing.T) {
	seed, ih := startSeed(t)
	conn := dialHandshake(t, seed, ih)
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	for i := 0; i < 5; i++ {
		if err := enc.KeepAlive(); err != nil {
			t.Fatalf("keep-alive %d: %v", i, err)
		}
	}
	// Connection must still be usable: a valid bitfield is accepted.
	if err := enc.Bitfield(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	seed.mu.Lock()
	n := len(seed.connOrder)
	seed.mu.Unlock()
	if n != 1 {
		t.Fatalf("connection dropped after keep-alives: %d conns", n)
	}
}
