package client

import (
	"testing"
	"time"

	"rarestfirst/internal/trace"
)

// TestLiveClientTraceInstrumentation: a traced leecher downloading from a
// real seed over loopback must populate the collector with the same
// observables the simulator records — joins, seed status, interest in
// both directions, choke transitions, byte counters, block/piece arrival
// series and availability snapshots.
func TestLiveClientTraceInstrumentation(t *testing.T) {
	m, content := makeTorrent(t, 512<<10, "")
	seed, err := New(Options{Meta: m, Content: content, UploadBps: 1 << 20,
		ChokeInterval: 100 * time.Millisecond, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	col := trace.NewCollector(0)
	col.MinResidency = 0.05
	globalCalls := 0
	leech, err := New(Options{
		Meta: m, UploadBps: 1 << 20,
		ChokeInterval: 100 * time.Millisecond,
		Seed:          22,
		Trace:         col,
		SampleEvery:   50 * time.Millisecond,
		GlobalAvail:   func() (int, int) { globalCalls++; return 2, 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	leech.AddPeer(seed.Addr())
	waitComplete(t, 30*time.Second, leech)
	// Let at least one more sample and choke round land post-completion.
	time.Sleep(250 * time.Millisecond)
	leech.Stop()
	col.Finalize(3600) // any time past the last event; the run took seconds

	if col.SeededAt() < 0 {
		t.Fatal("collector missed the leecher->seed transition")
	}
	if got, want := len(col.PieceTimes), m.NumPieces(); got != want {
		t.Errorf("PieceTimes: %d, want %d", got, want)
	}
	if len(col.BlockTimes) == 0 {
		t.Error("no block arrivals recorded")
	}
	if len(col.Samples) == 0 {
		t.Error("no availability snapshots recorded")
	}
	for _, s := range col.Samples {
		if s.GlobalMin != 2 || s.GlobalRare != 1 {
			t.Fatalf("sample did not carry the GlobalAvail callback values: %+v", s)
		}
	}
	if globalCalls == 0 {
		t.Error("GlobalAvail callback never invoked")
	}
	recs := col.Records()
	if len(recs) != 1 {
		t.Fatalf("peer records: %d, want 1 (the seed)", len(recs))
	}
	r := recs[0]
	if !r.RemoteWasSeed {
		t.Error("seed not flagged as seed")
	}
	if r.DownloadedLS != int64(len(content)) {
		t.Errorf("DownloadedLS = %d, want %d", r.DownloadedLS, len(content))
	}
	if r.LocalInterestedTime <= 0 {
		t.Error("no local-interest time accrued against the seed")
	}
	if col.MsgCounts["have_received"] == 0 && col.MsgCounts["local_interested"] == 0 {
		t.Errorf("message-log counters empty: %v", col.MsgCounts)
	}
}

// TestLiveClientSeedDeterminism: Options.Seed pins the peer identity (and
// the choke/request RNG stream behind it).
func TestLiveClientSeedDeterminism(t *testing.T) {
	m, content := makeTorrent(t, 128<<10, "")
	a, err := New(Options{Meta: m, Content: content, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Meta: m, Content: content, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Meta: m, Content: content, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	if a.PeerID() != b.PeerID() {
		t.Error("same seed produced different peer IDs")
	}
	if a.PeerID() == c.PeerID() {
		t.Error("different seeds produced the same peer ID")
	}
	id := a.PeerID()
	if string(id[:8]) != "-RF0100-" {
		t.Errorf("client prefix lost: %q", id[:8])
	}
}

// TestLiveStopMidTransfer: tearing clients down while blocks are in
// flight must not deadlock, panic or race (the CI live-smoke job runs
// this under -race), in either stop order, including a double Stop.
func TestLiveStopMidTransfer(t *testing.T) {
	for _, seedFirst := range []bool{false, true} {
		m, content := makeTorrent(t, 2<<20, "")
		// Slow enough that completion takes seconds: Stop always lands
		// mid-transfer.
		seed, err := New(Options{Meta: m, Content: content, UploadBps: 256 << 10,
			ChokeInterval: 50 * time.Millisecond, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		if err := seed.Start("127.0.0.1:0", ""); err != nil {
			t.Fatal(err)
		}
		col := trace.NewCollector(0)
		leech, err := New(Options{Meta: m, UploadBps: 256 << 10,
			ChokeInterval: 50 * time.Millisecond, Seed: 32,
			Trace: col, SampleEvery: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := leech.Start("127.0.0.1:0", ""); err != nil {
			t.Fatal(err)
		}
		leech.AddPeer(seed.Addr())

		// Wait for actual transfer, then stop mid-flight.
		deadline := time.After(10 * time.Second)
		for {
			if _, down := leech.Stats(); down > 0 {
				break
			}
			select {
			case <-deadline:
				t.Fatal("no bytes moved within 10s")
			case <-time.After(5 * time.Millisecond):
			}
		}
		if leech.Complete() {
			t.Fatal("transfer finished before Stop; slow the caps down")
		}
		if seedFirst {
			seed.Stop()
			leech.Stop()
		} else {
			leech.Stop()
			seed.Stop()
		}
		leech.Stop() // idempotent under instrumentation too
		col.Finalize(60)
		if len(col.BlockTimes) == 0 {
			t.Error("instrumentation saw no blocks before teardown")
		}
	}
}
