package client

import (
	"bytes"
	"testing"
	"time"

	"rarestfirst/internal/adversary"
	"rarestfirst/internal/trace"
)

// TestPoisonerBannedMidTransfer: a leecher downloading from a pure
// poisoner detects the hash failure, bans the sole contributor
// mid-transfer, and completes the re-download from an honest seed added
// afterwards — the requeued blocks must be re-requested, not lost.
func TestPoisonerBannedMidTransfer(t *testing.T) {
	m, content := makeTorrent(t, 256<<10, "") // 4 pieces of 64 KiB
	poisoner, err := New(Options{
		Meta:          m,
		Content:       content,
		UploadBps:     8 << 20,
		ChokeInterval: 100 * time.Millisecond,
		Seed:          99,
		Adversary:     adversary.New(adversary.Model{Name: "pure-poison", PoisonRate: 1}, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := poisoner.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer poisoner.Stop()

	leech, err := New(Options{
		Meta:          m,
		Trace:         trace.NewCollector(0),
		UploadBps:     8 << 20,
		ChokeInterval: 100 * time.Millisecond,
		Seed:          7,
		BanFor:        time.Hour, // the ban must outlive the test
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer leech.Stop()

	leech.AddPeer(poisoner.Addr())
	waitFault(t, leech, "piece_hash_fail", 1, 20*time.Second)
	waitFault(t, leech, "peer_banned_poison", 1, 20*time.Second)
	if n := faultCount(leech, "wasted_bytes"); n <= 0 {
		t.Fatalf("wasted_bytes = %d after a hash failure", n)
	}
	leech.mu.Lock()
	banned := leech.bannedLocked(poisoner.Addr())
	leech.mu.Unlock()
	if !banned {
		t.Fatalf("poisoner %s not banned after sole-contributor hash failure", poisoner.Addr())
	}

	// Honest seed joins; the blocks the ban requeued must complete there.
	seed, err := New(Options{Meta: m, Content: content, UploadBps: 8 << 20, ChokeInterval: 100 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()
	leech.AddPeer(seed.Addr())
	waitComplete(t, 30*time.Second, leech)
	if !bytes.Equal(leech.Bytes(), content) {
		t.Fatal("content mismatch after poisoned transfer recovered")
	}
}

// TestPoisonerNoBanMeasurementMode: with NoPoisonBan the leecher counts
// hash failures and wasted bytes but never bans, and still completes once
// honest capacity exists.
func TestPoisonerNoBanMeasurementMode(t *testing.T) {
	m, content := makeTorrent(t, 256<<10, "")
	poisoner, err := New(Options{
		Meta:          m,
		Content:       content,
		UploadBps:     8 << 20,
		ChokeInterval: 100 * time.Millisecond,
		Seed:          99,
		Adversary:     adversary.New(adversary.Model{Name: "half-poison", PoisonRate: 0.5}, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := poisoner.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer poisoner.Stop()

	leech, err := New(Options{
		Meta:          m,
		Trace:         trace.NewCollector(0),
		UploadBps:     8 << 20,
		ChokeInterval: 100 * time.Millisecond,
		Seed:          7,
		NoPoisonBan:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer leech.Stop()

	leech.AddPeer(poisoner.Addr())
	waitFault(t, leech, "piece_hash_fail", 1, 30*time.Second)
	if n := faultCount(leech, "wasted_bytes"); n <= 0 {
		t.Fatalf("wasted_bytes = %d, want > 0 in measurement mode", n)
	}

	seed, err := New(Options{Meta: m, Content: content, UploadBps: 8 << 20, ChokeInterval: 100 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()
	leech.AddPeer(seed.Addr())
	waitComplete(t, 30*time.Second, leech)
	if !bytes.Equal(leech.Bytes(), content) {
		t.Fatal("content mismatch")
	}
	if n := faultCount(leech, "peer_banned_poison"); n != 0 {
		t.Fatalf("peer_banned_poison = %d with NoPoisonBan set", n)
	}
	leech.mu.Lock()
	banned := leech.bannedLocked(poisoner.Addr())
	leech.mu.Unlock()
	if banned {
		t.Fatal("poisoner banned despite NoPoisonBan")
	}
}

// TestLiarSnubbedAfterFakeHaveTimeouts: a bitfield liar advertises every
// piece, baits requests, and serves nothing; the victim must expire the
// requests as fake-HAVE timeouts, snub the liar, and recover from an
// honest seed.
func TestLiarSnubbedAfterFakeHaveTimeouts(t *testing.T) {
	m, content := makeTorrent(t, 256<<10, "")
	liar, err := New(Options{
		Meta:          m, // no content: a leecher that lies about what it has
		UploadBps:     8 << 20,
		ChokeInterval: 100 * time.Millisecond,
		Seed:          99,
		Adversary:     adversary.New(adversary.Model{Name: "liar", FakeHaves: true}, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := liar.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer liar.Stop()

	victim, err := New(Options{
		Meta:           m,
		Trace:          trace.NewCollector(0),
		UploadBps:      8 << 20,
		ChokeInterval:  100 * time.Millisecond,
		Seed:           7,
		RequestTimeout: 200 * time.Millisecond,
		SnubAfter:      2,
		BanFor:         time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer victim.Stop()

	victim.AddPeer(liar.Addr())
	waitFault(t, victim, "fake_have_timeout", 1, 20*time.Second)
	waitFault(t, victim, "peer_snubbed", 1, 20*time.Second)
	victim.mu.Lock()
	banned := victim.bannedLocked(liar.Addr())
	victim.mu.Unlock()
	if !banned {
		t.Fatalf("liar %s not banned after snub", liar.Addr())
	}

	seed, err := New(Options{Meta: m, Content: content, UploadBps: 8 << 20, ChokeInterval: 100 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()
	victim.AddPeer(seed.Addr())
	waitComplete(t, 30*time.Second, victim)
	if !bytes.Equal(victim.Bytes(), content) {
		t.Fatal("content mismatch after liar recovery")
	}
}

// TestFlooderTripsAbuseLimit: a request flooder that ignores choke state
// must cross floodAbuseLimit on the seed, get banned and disconnected.
func TestFlooderTripsAbuseLimit(t *testing.T) {
	m, content := makeTorrent(t, 256<<10, "")
	seed, err := New(Options{
		Meta:      m,
		Content:   content,
		Trace:     trace.NewCollector(0),
		UploadBps: 8 << 20,
		Seed:      3,
		// Default 10s choke interval: the flooder stays choked throughout.
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	flooder, err := New(Options{
		Meta:          m,
		UploadBps:     8 << 20,
		ChokeInterval: 100 * time.Millisecond,
		Seed:          99,
		Adversary:     adversary.New(adversary.Model{Name: "flood", FloodRPS: 500}, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := flooder.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer flooder.Stop()

	flooder.AddPeer(seed.Addr())
	waitFault(t, seed, "request_flood", 1, 20*time.Second)
	// The flooder's address is banned on the seed.
	time.Sleep(50 * time.Millisecond)
	seed.mu.Lock()
	nBanned := len(seed.banned)
	seed.mu.Unlock()
	if nBanned == 0 {
		t.Fatal("flooder not banned after tripping the abuse limit")
	}
}
