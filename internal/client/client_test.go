package client

import (
	"bytes"
	"crypto/sha1"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"rarestfirst/internal/metainfo"
	"rarestfirst/internal/tracker"
)

// makeTorrent builds content and its metainfo for loopback tests.
func makeTorrent(t *testing.T, size int, announce string) (*metainfo.MetaInfo, []byte) {
	t.Helper()
	content := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(content)
	m, err := metainfo.Build("test.bin", announce, content, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	return m, content
}

// waitComplete polls until every client is complete or the deadline hits.
func waitComplete(t *testing.T, deadline time.Duration, clients ...*Client) {
	t.Helper()
	timeout := time.After(deadline)
	for {
		all := true
		for _, c := range clients {
			if !c.Complete() {
				all = false
				break
			}
		}
		if all {
			return
		}
		select {
		case <-timeout:
			for i, c := range clients {
				done, total := c.Progress()
				t.Logf("client %d: %d/%d pieces", i, done, total)
			}
			t.Fatal("transfer did not complete in time")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestSeedToSingleLeecher(t *testing.T) {
	m, content := makeTorrent(t, 512<<10, "")
	seed, err := New(Options{Meta: m, Content: content, UploadBps: 8 << 20, ChokeInterval: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	leech, err := New(Options{Meta: m, UploadBps: 8 << 20, ChokeInterval: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer leech.Stop()

	leech.AddPeer(seed.Addr())
	waitComplete(t, 30*time.Second, leech)

	got := leech.Bytes()
	if !bytes.Equal(got, content) {
		t.Fatalf("content mismatch: sha got %x want %x", sha1.Sum(got), sha1.Sum(content))
	}
	up, down := leech.Stats()
	if down != int64(len(content)) {
		t.Fatalf("leecher downloaded %d bytes, want %d", down, len(content))
	}
	if up != 0 {
		t.Fatalf("leecher uploaded %d bytes with nobody to serve", up)
	}
}

func TestSwarmViaTracker(t *testing.T) {
	srv := tracker.NewServer(1) // 1-second announce interval for fast joins
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	announce := ts.URL + "/announce"

	m, content := makeTorrent(t, 768<<10, announce)

	seed, err := New(Options{Meta: m, Content: content, UploadBps: 4 << 20, ChokeInterval: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", announce); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	var leeches []*Client
	for i := 0; i < 3; i++ {
		l, err := New(Options{Meta: m, UploadBps: 4 << 20, ChokeInterval: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Start("127.0.0.1:0", announce); err != nil {
			t.Fatal(err)
		}
		defer l.Stop()
		leeches = append(leeches, l)
	}
	waitComplete(t, 60*time.Second, leeches...)
	for i, l := range leeches {
		if !bytes.Equal(l.Bytes(), content) {
			t.Fatalf("leecher %d content mismatch", i)
		}
	}
	// The tracker saw everyone finish.
	deadline := time.After(5 * time.Second)
	for {
		c, _ := srv.Count(m.InfoHash())
		if c >= 4 {
			break
		}
		select {
		case <-deadline:
			c, i := srv.Count(m.InfoHash())
			t.Fatalf("tracker sees %d seeds %d leechers, want 4 seeds", c, i)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestLeecherReciprocation(t *testing.T) {
	// Seed with a tight upload cap + two leechers with generous caps: the
	// leechers must exchange pieces with each other (reciprocation), so
	// both finish far faster than the seed alone could serve them, and
	// both show nonzero upload counters.
	srv := tracker.NewServer(1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	announce := ts.URL + "/announce"

	m, content := makeTorrent(t, 1<<20, announce)
	seed, err := New(Options{Meta: m, Content: content, UploadBps: 1 << 20, ChokeInterval: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", announce); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	a, _ := New(Options{Meta: m, UploadBps: 8 << 20, ChokeInterval: 500 * time.Millisecond})
	b, _ := New(Options{Meta: m, UploadBps: 8 << 20, ChokeInterval: 500 * time.Millisecond})
	for _, c := range []*Client{a, b} {
		if err := c.Start("127.0.0.1:0", announce); err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
	}
	waitComplete(t, 60*time.Second, a, b)
	upA, _ := a.Stats()
	upB, _ := b.Stats()
	if upA+upB == 0 {
		t.Fatal("leechers never exchanged data with each other")
	}
	if !bytes.Equal(a.Bytes(), content) || !bytes.Equal(b.Bytes(), content) {
		t.Fatal("content mismatch after reciprocal download")
	}
}

func TestSeedContentValidation(t *testing.T) {
	m, content := makeTorrent(t, 128<<10, "")
	// Corrupt the seed content: New must refuse it.
	bad := append([]byte(nil), content...)
	bad[0] ^= 0xff
	if _, err := New(Options{Meta: m, Content: bad}); err == nil {
		t.Fatal("corrupted seed content accepted")
	}
	// Wrong length refused too.
	if _, err := New(Options{Meta: m, Content: content[:100]}); err == nil {
		t.Fatal("truncated seed content accepted")
	}
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing metainfo accepted")
	}
}

func TestForeignInfoHashRejected(t *testing.T) {
	m1, content := makeTorrent(t, 128<<10, "")
	m2, _ := metainfo.Build("other.bin", "", append([]byte(nil), append(content, 1)...), 64<<10)

	seed, _ := New(Options{Meta: m1, Content: content})
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	stranger, _ := New(Options{Meta: m2})
	if err := stranger.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer stranger.Stop()
	stranger.AddPeer(seed.Addr())

	time.Sleep(300 * time.Millisecond)
	if done, _ := stranger.Progress(); done != 0 {
		t.Fatal("cross-torrent transfer happened")
	}
}

func TestBitfieldAccessor(t *testing.T) {
	m, content := makeTorrent(t, 128<<10, "")
	seed, _ := New(Options{Meta: m, Content: content})
	bf := seed.Bitfield()
	if !bf.Complete() {
		t.Fatalf("seed bitfield %v not complete", bf)
	}
	// Accessor returns a copy.
	bf.Clear(0)
	if !seed.Bitfield().Complete() {
		t.Fatal("Bitfield() exposed internal state")
	}
}

func TestStopIsIdempotentAndClean(t *testing.T) {
	m, content := makeTorrent(t, 128<<10, "")
	c, _ := New(Options{Meta: m, Content: content})
	if err := c.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop() // second stop is a no-op
}
