package client

import (
	"sync"
	"time"

	"rarestfirst/internal/core"
	"rarestfirst/internal/trace"
)

// tracer adapts the single-goroutine trace.Collector to the client's
// concurrent reader/choke/serve goroutines: every hook takes one mutex and
// stamps the event with the collector clock (wall seconds since client
// start) *inside* the critical section, so the collector observes a
// monotonic, serialized event stream exactly like the simulator's.
//
// All hooks are methods on a possibly-nil receiver: an uninstrumented
// client (Options.Trace == nil) carries a nil *tracer and every call is a
// single predictable branch, leaving the hot path untouched.
type tracer struct {
	mu    sync.Mutex
	col   *trace.Collector
	start time.Time
}

func newTracer(col *trace.Collector, start time.Time) *tracer {
	if col == nil {
		return nil
	}
	return &tracer{col: col, start: start}
}

// now returns the collector clock. Callers must hold t.mu.
func (t *tracer) now() float64 { return time.Since(t.start).Seconds() }

func (t *tracer) peerJoined(id core.PeerID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.PeerJoined(int(id), t.now())
	t.mu.Unlock()
}

func (t *tracer) peerLeft(id core.PeerID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.PeerLeft(int(id), t.now())
	t.mu.Unlock()
}

func (t *tracer) localInterest(id core.PeerID, interested bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.LocalInterest(int(id), t.now(), interested)
	t.mu.Unlock()
}

func (t *tracer) remoteInterest(id core.PeerID, interested bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.RemoteInterest(int(id), t.now(), interested)
	t.mu.Unlock()
}

func (t *tracer) remoteSeedStatus(id core.PeerID, seed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.RemoteSeedStatus(int(id), t.now(), seed)
	t.mu.Unlock()
}

func (t *tracer) unchoke(id core.PeerID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.Unchoke(int(id), t.now())
	t.mu.Unlock()
}

func (t *tracer) choke(id core.PeerID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.Choke(int(id), t.now())
	t.mu.Unlock()
}

func (t *tracer) uploaded(id core.PeerID, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.Uploaded(int(id), t.now(), n)
	t.mu.Unlock()
}

func (t *tracer) downloaded(id core.PeerID, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.Downloaded(int(id), t.now(), n)
	t.mu.Unlock()
}

func (t *tracer) blockReceived() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.BlockReceived(t.now())
	t.mu.Unlock()
}

func (t *tracer) pieceCompleted(piece int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.PieceCompleted(t.now(), piece)
	t.mu.Unlock()
}

func (t *tracer) localSeed() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.LocalSeed(t.now())
	t.mu.Unlock()
}

func (t *tracer) markEvent(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.MarkEvent(t.now(), name)
	t.mu.Unlock()
}

func (t *tracer) countMsg(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.CountMsg(name)
	t.mu.Unlock()
}

func (t *tracer) fault(kind string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.CountFault(kind)
	t.mu.Unlock()
}

func (t *tracer) faultN(kind string, n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.col.AddFault(kind, n)
	t.mu.Unlock()
}

func (t *tracer) sample(s trace.AvailSample) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s.T = t.now()
	t.col.Sample(s)
	t.mu.Unlock()
}

// sampleLoop records one availability snapshot of the client's peer-set
// view every interval — the live equivalent of the simulator's periodic
// bitfield snapshots behind Figs 2-6. globalFn, when non-nil, supplies the
// torrent-global counters (min copies, rare pieces) only the lab can see.
func (c *Client) sampleLoop(interval time.Duration, globalFn func() (int, int)) {
	defer c.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
			c.mu.Lock()
			min, mean, max := c.avail.Stats()
			s := trace.AvailSample{
				Min:        min,
				Mean:       mean,
				Max:        max,
				RarestSize: c.avail.RarestSetSize(),
				PeerSet:    len(c.connOrder),
			}
			c.mu.Unlock()
			// Global state is computed outside c.mu: the callback reads
			// every swarm member's bitfield, including our own.
			if globalFn != nil {
				s.GlobalMin, s.GlobalRare = globalFn()
			}
			c.tr.sample(s)
		}
	}
}
