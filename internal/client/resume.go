package client

// Durable resume state (Options.ResumeDir): a crashed client restarted
// over the same directory re-enters the swarm wanting only what it lacks.
//
// The store is two files. content.dat holds piece payloads at their
// natural torrent offsets, written as each piece verifies. resume.json is
// the manifest — info hash, geometry and the bitfield of pieces the store
// CLAIMS to hold — committed via temp-file + rename after every piece, so
// a reader never observes a half-written manifest. The manifest is only
// advisory: the load path re-hashes every claimed piece and drops (and
// counts) any that fail, so a torn data write — a crash mid-WriteAt — is
// caught by the hash even though the manifest rename is atomic. The
// manifest is written only AFTER its piece's data write returns, which
// means a claim can at worst undershoot the data file, never overshoot
// it with bytes that were never written.

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"rarestfirst/internal/bitfield"
	"rarestfirst/internal/metainfo"
)

// errResumeClosed reports a persist attempt after kill/close — expected
// during shutdown races, and distinct from real write failures.
var errResumeClosed = errors.New("client: resume store closed")

const (
	resumeDataFile     = "content.dat"
	resumeManifestFile = "resume.json"
)

// resumeManifest is the on-disk manifest schema.
type resumeManifest struct {
	InfoHash  string `json:"info_hash"`
	NumPieces int    `json:"num_pieces"`
	// Bitfield is the hex encoding of the wire-format bitfield of pieces
	// the data file claims to hold.
	Bitfield string `json:"bitfield"`
}

// resumeStore persists verified pieces under one directory.
type resumeStore struct {
	mu   sync.Mutex
	dir  string
	meta *metainfo.MetaInfo
	geo  metainfo.Geometry
	data *os.File
	// persisted tracks the pieces whose data writes have completed; the
	// manifest is always rendered from it, under mu, so the claim set
	// can never run ahead of the data file.
	persisted *bitfield.Bitfield
	closed    bool
}

// openResumeStore opens (creating if needed) the resume store in dir.
func openResumeStore(dir string, meta *metainfo.MetaInfo) (*resumeStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("client: resume dir: %w", err)
	}
	geo := meta.Geometry()
	f, err := os.OpenFile(filepath.Join(dir, resumeDataFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("client: resume data: %w", err)
	}
	if err := f.Truncate(geo.TotalLength); err != nil {
		f.Close()
		return nil, fmt.Errorf("client: resume data size: %w", err)
	}
	return &resumeStore{
		dir:       dir,
		meta:      meta,
		geo:       geo,
		data:      f,
		persisted: bitfield.New(geo.NumPieces),
	}, nil
}

// load reads the manifest, copies every claimed piece into content at its
// natural offset and re-hashes it. It returns the bitfield of pieces that
// passed, the byte total they represent, the number of claimed pieces
// dropped for failing their hash, and whether a manifest existed at all
// (a fresh directory is not a resume). Pieces that pass are marked
// persisted so later manifests keep claiming them.
func (r *resumeStore) load(content []byte) (restored *bitfield.Bitfield, bytesSaved int64, hashFails int, hadManifest bool, err error) {
	raw, err := os.ReadFile(filepath.Join(r.dir, resumeManifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, false, nil
	}
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("client: resume manifest: %w", err)
	}
	var m resumeManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		// A mangled manifest (it is rename-committed, so this means
		// external corruption) degrades to a fresh start: the re-hash
		// contract makes trusting nothing always safe.
		return nil, 0, 0, false, nil
	}
	if m.InfoHash != fmt.Sprintf("%x", r.meta.InfoHash()) || m.NumPieces != r.geo.NumPieces {
		return nil, 0, 0, false, nil
	}
	wireBits, err := hex.DecodeString(m.Bitfield)
	if err != nil {
		return nil, 0, 0, false, nil
	}
	claimed, err := bitfield.FromWire(wireBits, r.geo.NumPieces)
	if err != nil {
		return nil, 0, 0, false, nil
	}
	restored = bitfield.New(r.geo.NumPieces)
	ok := true
	claimed.Range(func(i int) bool {
		start := int64(i) * int64(r.geo.PieceLength)
		size := r.geo.PieceSize(i)
		buf := content[start : start+int64(size)]
		if _, rerr := r.data.ReadAt(buf, start); rerr != nil {
			err = fmt.Errorf("client: resume read piece %d: %w", i, rerr)
			ok = false
			return false
		}
		if r.meta.VerifyPiece(i, buf) {
			restored.Set(i)
			r.persisted.Set(i)
			bytesSaved += int64(size)
		} else {
			// Torn or corrupted on disk: drop the claim and count it.
			// The region stays whatever it was — the requester will
			// re-download and overwrite it.
			hashFails++
		}
		return true
	})
	if !ok {
		return nil, 0, 0, true, err
	}
	return restored, bytesSaved, hashFails, true, nil
}

// persistPiece durably records one verified piece: data write, fsync,
// then the manifest rename. Data must be the piece's full verified
// payload. Returns errResumeClosed after kill/close.
func (r *resumeStore) persistPiece(i int, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errResumeClosed
	}
	start := int64(i) * int64(r.geo.PieceLength)
	if _, err := r.data.WriteAt(data, start); err != nil {
		return err
	}
	if err := r.data.Sync(); err != nil {
		return err
	}
	r.persisted.Set(i)
	return r.writeManifestLocked()
}

// writeManifestLocked commits the manifest for the current persisted set
// via temp-file + rename. Callers hold mu.
func (r *resumeStore) writeManifestLocked() error {
	m := resumeManifest{
		InfoHash:  fmt.Sprintf("%x", r.meta.InfoHash()),
		NumPieces: r.geo.NumPieces,
		Bitfield:  hex.EncodeToString(r.persisted.ToWire()),
	}
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(r.dir, resumeManifestFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(r.dir, resumeManifestFile))
}

// ResumeClaims reports how many pieces the resume manifest in dir claims
// to hold, or 0 when the directory holds no readable manifest. Claims
// are advisory (the load path re-hashes them); orchestration harnesses
// use this only to decide whether a store is worth corrupting in fault
// drills.
func ResumeClaims(dir string) int {
	raw, err := os.ReadFile(filepath.Join(dir, resumeManifestFile))
	if err != nil {
		return 0
	}
	var m resumeManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0
	}
	wireBits, err := hex.DecodeString(m.Bitfield)
	if err != nil {
		return 0
	}
	bf, err := bitfield.FromWire(wireBits, m.NumPieces)
	if err != nil {
		return 0
	}
	return bf.Count()
}

// CorruptResumeData overwrites the resume data file in dir with a fixed
// byte pattern while leaving the manifest's claims intact, so every
// claimed piece fails its re-hash on the next load — the fault drill
// for the re-hash-on-load contract. It reports whether any bytes were
// overwritten.
func CorruptResumeData(dir string) bool {
	path := filepath.Join(dir, resumeDataFile)
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		return false
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = 0xA5
	}
	for off := int64(0); off < st.Size(); off += int64(len(buf)) {
		n := int64(len(buf))
		if rem := st.Size() - off; rem < n {
			n = rem
		}
		if _, err := f.WriteAt(buf[:n], off); err != nil {
			return false
		}
	}
	return true
}

// kill models a SIGKILL: the data file is closed immediately and no
// further state is written. A persist racing the kill either completed
// fully before the lock was taken here, or fails its write and leaves
// the manifest unchanged — the fully-flushed-or-fully-discarded
// shutdown contract.
func (r *resumeStore) kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.data.Close()
}

// close is the graceful shutdown: sync and close the data file.
func (r *resumeStore) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.data.Sync()
	r.data.Close()
}
