package client

// Fault tolerance: dial retry/backoff, snub bans, request timeouts with
// endgame-style reissue, and the shared backoff schedule the announce
// loop uses against a blacked-out tracker. Everything here is policy on
// top of the ordinary client paths — with the options at their zero
// values the only change from the historical client is that dial
// timeouts are configurable.

import (
	"net"
	"time"

	"rarestfirst/internal/core"
)

// backoffDelay is the jittered exponential backoff for the n-th
// consecutive failure (n >= 1): base·2^(n-1) capped at max, then scaled
// by a uniform factor in [0.5, 1.5) so a swarm's retries decorrelate.
func (c *Client) backoffDelay(base time.Duration, n int, max time.Duration) time.Duration {
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	c.mu.Lock()
	f := 0.5 + c.rng.Rand().Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// dialPeer runs one dial attempt through the fault injector when one is
// configured, wrapping the resulting connection for WAN emulation.
func (c *Client) dialPeer(addr string) (net.Conn, error) {
	if c.inj != nil {
		if err := c.inj.DialFault(); err != nil {
			return nil, err
		}
	}
	conn, err := net.DialTimeout("tcp", addr, c.dialTimeout)
	if err != nil {
		return nil, err
	}
	if c.inj != nil {
		conn = c.inj.WrapConn(conn)
	}
	return conn, nil
}

// bannedLocked reports whether addr is currently banned, pruning the
// entry once expired. Caller holds c.mu.
func (c *Client) bannedLocked(addr string) bool {
	until, ok := c.banned[addr]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(c.banned, addr)
		return false
	}
	return true
}

// banLocked bans addr for the configured window. Caller holds c.mu.
func (c *Client) banLocked(addr string) {
	c.banned[addr] = time.Now().Add(c.banFor)
}

// poisonSuspectsLocked accrues suspicion on the peers that supplied
// blocks of a hash-failed piece and returns the connections that crossed
// into a ban (for the caller to close outside the lock). A sole
// contributor is banned immediately — only it could have corrupted the
// piece; with mixed contributors each gets a strike and is banned at the
// configured threshold. Caller holds c.mu.
func (c *Client) poisonSuspectsLocked(suppliers []core.PeerID) []*peerConn {
	var banned []*peerConn
	sole := len(suppliers) == 1
	for _, id := range suppliers {
		pc := c.conns[id]
		if pc == nil {
			continue // already gone; its blocks were requeued by dropConn
		}
		pc.poisonStrikes++
		if c.noPoisonBan {
			continue
		}
		if sole || pc.poisonStrikes >= c.poisonStrikes {
			c.banLocked(pc.remoteAddr)
			banned = append(banned, pc)
		}
	}
	return banned
}

// requestTimeoutLoop scans pending requests a few times per timeout
// window. Only started when Options.RequestTimeout is positive.
func (c *Client) requestTimeoutLoop() {
	defer c.wg.Done()
	tick := c.reqTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
			c.expireRequests()
		}
	}
}

// expireRequests returns timed-out blocks to the request pool, counts a
// fault against each offending peer (snubbing and banning it at
// snubAfter), and immediately reissues the freed blocks on other peers'
// pipelines.
func (c *Client) expireRequests() {
	now := time.Now()
	var snubbed []*peerConn
	expired := 0
	c.mu.Lock()
	for _, pc := range c.connOrder {
		if pc.snubbed || len(pc.pending) == 0 {
			continue
		}
		n := 0
		for ref, at := range pc.pending {
			if now.Sub(at) < c.reqTimeout {
				continue
			}
			delete(pc.pending, ref)
			c.req.OnRequestTimeout(pc.id, ref)
			c.fault("request_timeout")
			if pc.peerUnchoking {
				// The peer advertised the piece, unchoked us, then never
				// delivered — the fake-HAVE signature (an honest choke
				// would have cleared the pending set first).
				c.fault("fake_have_timeout")
			}
			n++
		}
		if n == 0 {
			continue
		}
		expired += n
		pc.faults++
		if pc.faults >= c.snubAfter {
			pc.snubbed = true
			c.banLocked(pc.remoteAddr)
			c.fault("peer_snubbed")
			snubbed = append(snubbed, pc)
		}
	}
	c.mu.Unlock()
	// Close outside the lock; dropConn runs on the reader goroutine.
	for _, pc := range snubbed {
		pc.conn.Close()
	}
	if expired > 0 {
		// Endgame-style reissue: the expired blocks are back in the pool,
		// so top up every other pipeline right away instead of waiting for
		// the next piece completion.
		c.refreshAllInterest()
	}
}
