package client

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rarestfirst/internal/metainfo"
	"rarestfirst/internal/tracker"
)

// resumeSwarm spins up a tracker and a seed for resume tests; the caller
// gets the announce URL plus the torrent.
func resumeSwarm(t *testing.T, size int, seedBps float64) (announce string, m *metainfo.MetaInfo, content []byte) {
	t.Helper()
	srv := tracker.NewServer(1)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	announce = ts.URL + "/announce"
	meta, c := makeTorrent(t, size, announce)
	seed, err := New(Options{Meta: meta, Content: c, UploadBps: seedBps, ChokeInterval: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", announce); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(seed.Stop)
	return announce, meta, c
}

func newResumeLeecher(t *testing.T, m *metainfo.MetaInfo, announce, dir string) *Client {
	t.Helper()
	l, err := New(Options{
		Meta:          m,
		UploadBps:     4 << 20,
		ChokeInterval: 250 * time.Millisecond,
		ResumeDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start("127.0.0.1:0", announce); err != nil {
		t.Fatal(err)
	}
	return l
}

// waitProgress polls until the client holds at least n pieces.
func waitProgress(t *testing.T, c *Client, n int, deadline time.Duration) {
	t.Helper()
	timeout := time.After(deadline)
	for {
		if done, _ := c.Progress(); done >= n {
			return
		}
		select {
		case <-timeout:
			done, total := c.Progress()
			t.Fatalf("only %d/%d pieces before deadline (want >= %d)", done, total, n)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	announce, m, content := resumeSwarm(t, 512<<10, 2<<20)

	// First life: download a few pieces, then stop gracefully.
	l1 := newResumeLeecher(t, m, announce, dir)
	waitProgress(t, l1, 3, 30*time.Second)
	l1.Stop()
	if claims := ResumeClaims(dir); claims < 1 {
		t.Fatalf("manifest claims %d pieces after graceful stop", claims)
	}

	// Second life over the same directory: the resume stats must report
	// restored pieces and the download must complete with intact content.
	l2 := newResumeLeecher(t, m, announce, dir)
	defer l2.Stop()
	pieces, bytesSaved, hashFails := l2.ResumeStats()
	if pieces < 1 || bytesSaved <= 0 {
		t.Fatalf("resume restored %d pieces / %d bytes", pieces, bytesSaved)
	}
	if hashFails != 0 {
		t.Fatalf("clean resume counted %d hash failures", hashFails)
	}
	waitComplete(t, 60*time.Second, l2)
	if !bytes.Equal(l2.Bytes(), content) {
		t.Fatal("resumed download produced wrong content")
	}
	// The resumed client must not have re-downloaded the restored pieces.
	_, down := l2.Stats()
	if want := int64(len(content)) - bytesSaved; down > want+int64(len(content))/10 {
		t.Fatalf("resumed client downloaded %d bytes, want about %d", down, want)
	}
}

func TestResumeCorruptDataIsRehashedAndRedownloaded(t *testing.T) {
	dir := t.TempDir()
	announce, m, content := resumeSwarm(t, 256<<10, 8<<20)

	l1 := newResumeLeecher(t, m, announce, dir)
	waitComplete(t, 30*time.Second, l1)
	l1.Stop()
	claims := ResumeClaims(dir)
	if claims < 1 {
		t.Fatalf("no claims after a full download")
	}

	// Corrupt the data file in place; the manifest keeps claiming every
	// piece, so the load path must drop them all via the re-hash.
	if !CorruptResumeData(dir) {
		t.Fatal("CorruptResumeData wrote nothing")
	}
	l2 := newResumeLeecher(t, m, announce, dir)
	defer l2.Stop()
	pieces, bytesSaved, hashFails := l2.ResumeStats()
	if pieces != 0 || bytesSaved != 0 {
		t.Fatalf("corrupted resume restored %d pieces / %d bytes", pieces, bytesSaved)
	}
	if hashFails != claims {
		t.Fatalf("hash failures = %d, want every claim (%d)", hashFails, claims)
	}
	// The client still completes — by re-downloading everything.
	waitComplete(t, 60*time.Second, l2)
	if !bytes.Equal(l2.Bytes(), content) {
		t.Fatal("re-downloaded content mismatch")
	}
}

func TestResumeKillDuringTransfer(t *testing.T) {
	dir := t.TempDir()
	announce, m, content := resumeSwarm(t, 512<<10, 1<<20)

	// Kill (not Stop) mid-transfer: the resume store closes before
	// connections drain, like a process death. Whatever the manifest
	// claims afterwards must re-hash clean.
	l1 := newResumeLeecher(t, m, announce, dir)
	waitProgress(t, l1, 2, 30*time.Second)
	l1.Kill()

	l2 := newResumeLeecher(t, m, announce, dir)
	defer l2.Stop()
	_, _, hashFails := l2.ResumeStats()
	if hashFails != 0 {
		t.Fatalf("kill left %d torn claims (manifest overshot the data file)", hashFails)
	}
	waitComplete(t, 60*time.Second, l2)
	if !bytes.Equal(l2.Bytes(), content) {
		t.Fatal("content mismatch after kill + resume")
	}
}

// TestResumeStoreKillDuringWrite is the store-level shutdown-ordering
// regression: persists racing a kill must be fully flushed (claimed and
// verifiable) or fully discarded (unclaimed) — never a claim without its
// bytes.
func TestResumeStoreKillDuringWrite(t *testing.T) {
	meta, content := makeTorrent(t, 256<<10, "")
	geo := meta.Geometry()
	pieceData := func(i int) []byte {
		start := int64(i) * int64(geo.PieceLength)
		return content[start : start+int64(geo.PieceSize(i))]
	}
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		store, err := openResumeStore(dir, meta)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < geo.NumPieces; i++ {
				if err := store.persistPiece(i, pieceData(i)); err != nil {
					return // killed underneath us: expected
				}
			}
		}()
		time.Sleep(time.Duration(round) * 200 * time.Microsecond)
		store.kill()
		wg.Wait()

		reopened, err := openResumeStore(dir, meta)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, geo.TotalLength)
		restored, _, hashFails, hadManifest, err := reopened.load(buf)
		if err != nil {
			t.Fatal(err)
		}
		if hashFails != 0 {
			t.Fatalf("round %d: %d claims failed re-hash after kill", round, hashFails)
		}
		if hadManifest && restored.Count() != ResumeClaims(dir) {
			t.Fatalf("round %d: restored %d != claimed %d", round, restored.Count(), ResumeClaims(dir))
		}
		reopened.close()
	}
}

func TestResumeClaimsHelpers(t *testing.T) {
	// Empty or missing directories claim nothing and corrupt nothing.
	if n := ResumeClaims(t.TempDir()); n != 0 {
		t.Fatalf("empty dir claims %d", n)
	}
	if CorruptResumeData(t.TempDir()) {
		t.Fatal("corrupted a nonexistent data file")
	}

	meta, content := makeTorrent(t, 128<<10, "")
	geo := meta.Geometry()
	dir := t.TempDir()
	store, err := openResumeStore(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.persistPiece(0, content[:geo.PieceSize(0)]); err != nil {
		t.Fatal(err)
	}
	store.close()
	if n := ResumeClaims(dir); n != 1 {
		t.Fatalf("claims = %d, want 1", n)
	}
}
