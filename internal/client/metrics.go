package client

// Runtime observability wiring for the live client: handles are cached
// from the process-wide obs registry at New time (nil/no-op without
// one), mirroring the trace collector but exposed live via /metrics on
// cmd/btclient instead of only after the run.

import "rarestfirst/internal/obs"

// clientMetrics is the client's cached obs handle set.
type clientMetrics struct {
	reg           *obs.Registry
	announces     *obs.Counter // successful tracker announces
	announceFails *obs.Counter // failed announce attempts
	chokeRounds   *obs.Counter // choke rounds executed
	pieces        *obs.Counter // pieces downloaded and hash-verified
	conns         *obs.Gauge   // live peer connections
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	return clientMetrics{
		reg:           reg,
		announces:     reg.Counter("client_announces_total"),
		announceFails: reg.Counter("client_announce_failures_total"),
		chokeRounds:   reg.Counter("client_choke_rounds_total"),
		pieces:        reg.Counter("client_piece_completions_total"),
		conns:         reg.Gauge("client_active_conns"),
	}
}

// fault routes one fault kind through the trace collector (post-run
// counters) and the obs registry (live labeled series). Fault paths are
// cold, so the labeled lookup's mutex is fine here.
func (c *Client) fault(kind string) {
	c.tr.fault(kind)
	if c.om.reg != nil {
		c.om.reg.Counter(obs.SeriesName("client_faults_total", "kind", kind)).Inc()
	}
}

// faultN is fault with a count, for byte-valued kinds (wasted_bytes).
func (c *Client) faultN(kind string, n int) {
	c.tr.faultN(kind, n)
	if c.om.reg != nil {
		c.om.reg.Counter(obs.SeriesName("client_faults_total", "kind", kind)).Add(uint64(n))
	}
}
