package client

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rarestfirst/internal/trace"
	"rarestfirst/internal/wire"
)

// faultCount reads a fault counter race-free: every CountFault call runs
// under the tracer mutex, so tests take the same lock.
func faultCount(c *Client, kind string) int {
	c.tr.mu.Lock()
	defer c.tr.mu.Unlock()
	return c.tr.col.FaultCounts[kind]
}

// waitFault polls until the fault counter reaches want or the deadline hits.
func waitFault(t *testing.T, c *Client, kind string, want int, deadline time.Duration) {
	t.Helper()
	timeout := time.After(deadline)
	for {
		if faultCount(c, kind) >= want {
			return
		}
		select {
		case <-timeout:
			t.Fatalf("fault %q = %d, want >= %d", kind, faultCount(c, kind), want)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestDialRetryBackoff: a dead peer address must be retried with backoff
// up to the retry budget, each attempt and retry counted, and the
// goroutine must give up cleanly afterwards.
func TestDialRetryBackoff(t *testing.T) {
	// A port that was just listening and is now closed: connection refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	m, _ := makeTorrent(t, 128<<10, "")
	c, err := New(Options{
		Meta:        m,
		Trace:       trace.NewCollector(0),
		DialTimeout: 250 * time.Millisecond,
		DialRetries: 2,
		DialBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	c.AddPeer(dead)
	waitFault(t, c, "dial_fail", 3, 10*time.Second) // initial attempt + 2 retries
	waitFault(t, c, "dial_retry", 2, 10*time.Second)

	// The budget is a budget: give the goroutine a beat and confirm no
	// fourth attempt happens.
	time.Sleep(100 * time.Millisecond)
	if n := faultCount(c, "dial_fail"); n != 3 {
		t.Fatalf("dial_fail = %d after budget exhausted, want exactly 3", n)
	}
}

// TestDeadTrackerGracefulDegradation: a tracker answering 503 must not
// stop the client from transferring over directly-added peers; the
// announce loop keeps retrying with backoff and counts each failure.
func TestDeadTrackerGracefulDegradation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "tracker down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	announce := ts.URL + "/announce"

	m, content := makeTorrent(t, 256<<10, announce)
	seed, err := New(Options{Meta: m, Content: content, ChokeInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	leech, err := New(Options{
		Meta:              m,
		Trace:             trace.NewCollector(0),
		ChokeInterval:     200 * time.Millisecond,
		AnnounceRetryBase: 10 * time.Millisecond,
		AnnounceRetryMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start("127.0.0.1:0", announce); err != nil {
		t.Fatal(err)
	}
	defer leech.Stop()

	leech.AddPeer(seed.Addr())
	waitComplete(t, 30*time.Second, leech)
	if !bytes.Equal(leech.Bytes(), content) {
		t.Fatal("content mismatch after degraded-tracker transfer")
	}
	waitFault(t, leech, "announce_fail", 2, 10*time.Second)
}

// TestRequestTimeoutSnubsStallingPeer: a peer that advertises every piece
// and unchokes but never serves a block must have its requests expired
// and re-issued elsewhere, be snubbed after repeated faults, and end up
// banned so redials skip it.
func TestRequestTimeoutSnubsStallingPeer(t *testing.T) {
	m, _ := makeTorrent(t, 128<<10, "") // 2 pieces of 64 KiB
	c, err := New(Options{
		Meta:           m,
		Trace:          trace.NewCollector(0),
		RequestTimeout: 150 * time.Millisecond,
		SnubAfter:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// The stalling peer: full bitfield, unchoke, then silence.
	conn := dialHandshake(t, c, m.InfoHash())
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	if err := enc.Bitfield([]byte{0xC0}); err != nil { // pieces 0 and 1
		t.Fatal(err)
	}
	if err := enc.Simple(wire.MsgUnchoke); err != nil {
		t.Fatal(err)
	}
	stallerAddr := conn.LocalAddr().String() // what the client sees as remote

	waitFault(t, c, "request_timeout", 1, 10*time.Second)
	waitFault(t, c, "peer_snubbed", 1, 10*time.Second)

	// Snubbing closes the connection...
	expectClosed(t, conn)
	// ...and bans the address so a redial is skipped.
	c.mu.Lock()
	banned := c.bannedLocked(stallerAddr)
	c.mu.Unlock()
	if !banned {
		t.Fatalf("staller %s not banned after snub", stallerAddr)
	}
}

// TestBackoffDelayCapsAndJitters: the shared backoff helper must grow
// exponentially, honor the cap, and jitter within [0.5, 1.5) of nominal.
func TestBackoffDelayCapsAndJitters(t *testing.T) {
	m, _ := makeTorrent(t, 128<<10, "")
	c, err := New(Options{Meta: m})
	if err != nil {
		t.Fatal(err)
	}
	base, max := 100*time.Millisecond, 1*time.Second
	for attempt := 1; attempt <= 8; attempt++ {
		nominal := base << (attempt - 1)
		if nominal > max {
			nominal = max
		}
		for i := 0; i < 32; i++ {
			d := c.backoffDelay(base, attempt, max)
			lo, hi := nominal/2, nominal+nominal/2
			if d < lo || d >= hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, lo, hi)
			}
		}
	}
}
