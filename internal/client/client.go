// Package client is a working BitTorrent client over real TCP sockets. It
// reuses the exact algorithm implementations the simulator evaluates —
// core.Requester (rarest first, strict priority, end game) for piece
// selection and core.LeecherChoker / core.SeedChoker for peer selection —
// so the loopback integration tests exercise the same code path as the
// paper's experiments.
//
// Scope: single torrent per client, in-memory storage, BEP 3 protocol only
// (no DHT/PEX/encryption), which matches the mainline 4.0.2 feature set
// the paper pins down.
package client

import (
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"rarestfirst/internal/adversary"
	"rarestfirst/internal/bitfield"
	"rarestfirst/internal/core"
	"rarestfirst/internal/metainfo"
	"rarestfirst/internal/netem"
	"rarestfirst/internal/obs"
	mrate "rarestfirst/internal/rate"
	"rarestfirst/internal/trace"
	"rarestfirst/internal/tracker"
	"rarestfirst/internal/wire"
)

// PipelineDepth is the number of outstanding block requests kept per peer.
const PipelineDepth = 8

// Options configures a Client.
type Options struct {
	// Meta describes the torrent. Required.
	Meta *metainfo.MetaInfo
	// Content, when non-nil, makes the client a seed with this data. Its
	// length must match the metainfo.
	Content []byte
	// ListenAddr is the TCP listen address ("127.0.0.1:0" for tests).
	ListenAddr string
	// UploadBps caps the upload rate in bytes/second (0 = the paper's
	// 20 kB/s mainline default).
	UploadBps float64
	// UploadSlots is the choker slot count (0 = 4).
	UploadSlots int
	// AnnounceInterval overrides the tracker's interval (seconds) when
	// positive; useful in tests.
	AnnounceInterval int
	// ChokeInterval overrides the 10-second choke round cadence; tests use
	// short intervals so reciprocation dynamics fit in seconds.
	ChokeInterval time.Duration
	// Seed, when nonzero, derives the peer ID suffix and the choke/request
	// RNG from it instead of ambient entropy, so live runs are
	// reproducible in everything the client itself randomizes (network
	// timing stays real). Clients sharing a torrent must use distinct
	// seeds or their identical peer IDs make them reject each other.
	Seed int64
	// Trace, when non-nil, instruments the client: every peer-set,
	// interest, choke, byte and piece event is recorded into the
	// collector, timestamped in wall-clock seconds since the client
	// started — the same observables the paper's modified mainline client
	// logged, via the same trace.Collector the simulator fills. The
	// collector must not be shared across clients and must be read only
	// after Stop and Collector.Finalize. When nil (the default) no hook
	// touches the hot path beyond one nil check.
	Trace *trace.Collector
	// SampleEvery is the availability snapshot cadence while tracing
	// (default 500ms).
	SampleEvery time.Duration
	// GlobalAvail, when tracing, supplies the torrent-global availability
	// counters for snapshots: minimum copies over live swarm members and
	// the number of rare pieces (held only by the initial seed). Only the
	// lab orchestrating the swarm can see them; nil leaves both at zero.
	GlobalAvail func() (globalMin, globalRare int)

	// DialTimeout bounds each outgoing dial attempt (0 = 5s, the
	// historical hardcoded value).
	DialTimeout time.Duration
	// DialRetries is how many times a failed outgoing dial is retried
	// (0 = none, the historical behavior). Retries back off exponentially
	// from DialBackoff with ±50% jitter drawn from the client RNG.
	DialRetries int
	// DialBackoff is the base retry delay (0 = 250ms).
	DialBackoff time.Duration
	// RequestTimeout, when positive, re-requests blocks a peer has not
	// delivered within it: the block returns to the request pool and the
	// pipelines of other unchoked peers are topped up immediately
	// (endgame-style reissue). Each scan that expires requests counts one
	// fault against the peer, toward snubbing. 0 disables the scanner.
	RequestTimeout time.Duration
	// SnubAfter is the fault count at which a peer is snubbed — its
	// connection closed and its address banned for BanFor (0 = 3; only
	// active with RequestTimeout > 0).
	SnubAfter int
	// BanFor is how long a snubbed peer's address is refused by AddPeer
	// and the announce loop (0 = 30s).
	BanFor time.Duration
	// AnnounceRetryBase / AnnounceRetryMax bound the jittered exponential
	// backoff between announce attempts after tracker failures
	// (0 = 1s / 30s). Announce failures never touch existing
	// connections: a client that loses the tracker keeps serving.
	AnnounceRetryBase time.Duration
	AnnounceRetryMax  time.Duration
	// Faults, when non-nil, routes every outgoing dial through the netem
	// injector: injected dial failures, per-connection WAN emulation and
	// scheduled resets/stalls. The injector must not be shared across
	// clients; its Observe hook is wired into this client's fault
	// counters.
	Faults *netem.Injector

	// ResumeDir, when non-empty, enables durable resume state for a
	// downloading client: every verified piece is persisted (data write,
	// fsync, then an atomic-rename manifest commit), and a later client
	// constructed over the same directory re-hashes the claimed pieces
	// and restarts wanting only what it lacks — corrupt or torn pieces
	// are dropped and counted as resume_hash_fail. Ignored for seeds
	// (Content non-nil): a seed restarted with its content needs no
	// resume state.
	ResumeDir string

	// Adversary, when non-nil, makes this client Byzantine: it corrupts
	// outbound blocks, advertises a full bitfield, or floods requests
	// according to the behavior's model. The behavior must not be shared
	// across clients. Honest clients leave it nil.
	Adversary *adversary.Behavior
	// PoisonStrikes is the hash-failure strike count at which a peer
	// that contributed blocks to corrupt pieces is banned (0 = 2).
	// Sole contributors of a failed piece are banned on the first
	// strike regardless.
	PoisonStrikes int
	// NoPoisonBan disables banning on hash failures (measurement mode:
	// faults are still counted, poisoners stay in the peer set).
	NoPoisonBan bool
}

// Client is a single-torrent BitTorrent peer.
type Client struct {
	meta   *metainfo.MetaInfo
	geo    metainfo.Geometry
	peerID [20]byte

	mu         sync.Mutex
	content    []byte
	req        *core.Requester
	avail      *core.Availability
	conns      map[core.PeerID]*peerConn
	connOrder  []*peerConn
	nextConn   core.PeerID
	chokerL    core.Choker
	chokerS    core.Choker
	seeding    bool
	closed     bool
	uploaded   int64
	downloaded int64
	rng        *lockedRand
	// endgameMarked latches the first end-game entry for the trace.
	endgameMarked bool

	bucket   *mrate.Bucket
	bucketMu sync.Mutex

	// banned maps a snubbed peer's host:port to the ban expiry; entries
	// are pruned lazily on lookup. Guarded by mu.
	banned map[string]time.Time

	// Resilience policy (immutable after New).
	dialTimeout  time.Duration
	dialRetries  int
	dialBackoff  time.Duration
	reqTimeout   time.Duration
	snubAfter    int
	banFor       time.Duration
	annRetryBase time.Duration
	annRetryMax  time.Duration
	inj          *netem.Injector

	// Byzantine behavior (nil for honest clients) and the defense
	// thresholds honest clients apply (immutable after New).
	adv           *adversary.Behavior
	poisonStrikes int
	noPoisonBan   bool

	ln         net.Listener
	wg         sync.WaitGroup
	stopCh     chan struct{}
	start      time.Time
	chokeEvery time.Duration

	// om caches obs registry handles (metrics.go); all nil/no-op when no
	// registry was active at New time.
	om clientMetrics

	// tr is nil unless Options.Trace was set; all hooks are nil-safe.
	tr          *tracer
	sampleEvery time.Duration
	globalAvail func() (int, int)

	// onComplete, if set, is invoked once when the download finishes.
	onComplete func()

	// resume is the durable piece store (nil without Options.ResumeDir);
	// the stats fields record what the load path restored at New time.
	resume          *resumeStore
	resumePieces    int
	resumeBytes     int64
	resumeHashFails int
}

// New builds a client; call Start to begin listening and announcing.
func New(opts Options) (*Client, error) {
	if opts.Meta == nil {
		return nil, errors.New("client: missing metainfo")
	}
	geo := opts.Meta.Geometry()
	if opts.Content != nil && int64(len(opts.Content)) != geo.TotalLength {
		return nil, fmt.Errorf("client: content length %d != torrent length %d", len(opts.Content), geo.TotalLength)
	}
	up := opts.UploadBps
	if up <= 0 {
		up = 20 << 10
	}
	slots := opts.UploadSlots
	chokeEvery := opts.ChokeInterval
	if chokeEvery <= 0 {
		chokeEvery = time.Duration(core.ChokeInterval * float64(time.Second))
	}
	sampleEvery := opts.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 500 * time.Millisecond
	}
	dialTimeout := opts.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	dialBackoff := opts.DialBackoff
	if dialBackoff <= 0 {
		dialBackoff = 250 * time.Millisecond
	}
	snubAfter := opts.SnubAfter
	if snubAfter <= 0 {
		snubAfter = 3
	}
	banFor := opts.BanFor
	if banFor <= 0 {
		banFor = 30 * time.Second
	}
	annRetryBase := opts.AnnounceRetryBase
	if annRetryBase <= 0 {
		annRetryBase = time.Second
	}
	annRetryMax := opts.AnnounceRetryMax
	if annRetryMax <= 0 {
		annRetryMax = 30 * time.Second
	}
	poisonStrikes := opts.PoisonStrikes
	if poisonStrikes <= 0 {
		poisonStrikes = 2
	}
	c := &Client{
		meta:         opts.Meta,
		geo:          geo,
		conns:        map[core.PeerID]*peerConn{},
		banned:       map[string]time.Time{},
		bucket:       mrate.NewBucket(up, up),
		stopCh:       make(chan struct{}),
		start:        time.Now(),
		rng:          newLockedRand(opts.Seed),
		chokerL:      &core.LeecherChoker{Slots: slots},
		chokerS:      &core.SeedChoker{Slots: slots},
		chokeEvery:   chokeEvery,
		sampleEvery:  sampleEvery,
		globalAvail:  opts.GlobalAvail,
		dialTimeout:  dialTimeout,
		dialRetries:  opts.DialRetries,
		dialBackoff:  dialBackoff,
		reqTimeout:   opts.RequestTimeout,
		snubAfter:    snubAfter,
		banFor:       banFor,
		annRetryBase: annRetryBase,
		annRetryMax:  annRetryMax,
		inj:          opts.Faults,

		adv:           opts.Adversary,
		poisonStrikes: poisonStrikes,
		noPoisonBan:   opts.NoPoisonBan,
	}
	c.tr = newTracer(opts.Trace, c.start)
	c.om = newClientMetrics(obs.Active())
	if c.inj != nil {
		// Injected faults (resets, stalls, dial failures) land in the same
		// counter family as the client's own detections.
		c.inj.Observe = func(kind string) { c.fault(kind) }
	}
	copy(c.peerID[:8], "-RF0100-")
	if opts.Seed != 0 {
		// Deterministic identity: the suffix derives from the seed so a
		// fixed-seed live run reproduces its peer IDs bit-for-bit.
		c.rng.Rand().Read(c.peerID[8:])
	} else if _, err := rand.Read(c.peerID[8:]); err != nil {
		return nil, fmt.Errorf("client: peer id: %w", err)
	}
	c.avail = core.NewAvailability(geo.NumPieces)
	c.req = core.NewRequester(geo, &core.RarestFirst{Avail: c.avail})
	if opts.Content != nil {
		c.content = append([]byte(nil), opts.Content...)
		for i := 0; i < geo.NumPieces; i++ {
			if !opts.Meta.VerifyPiece(i, c.pieceData(i)) {
				return nil, fmt.Errorf("client: seed content fails hash of piece %d", i)
			}
			c.req.AddHave(i)
		}
		c.seeding = true
		c.tr.localSeed()
	} else {
		c.content = make([]byte, geo.TotalLength)
		if opts.ResumeDir != "" {
			store, err := openResumeStore(opts.ResumeDir, opts.Meta)
			if err != nil {
				return nil, err
			}
			restored, bytes, hashFails, hadManifest, err := store.load(c.content)
			if err != nil {
				store.close()
				return nil, err
			}
			c.resume = store
			if hadManifest {
				// This is a restart: bulk-restore the re-verified pieces
				// into the requester and surface what survived through the
				// fault-counter pipeline (peer_resume / resume_bytes_saved
				// / resume_hash_fail ride the same FaultCounts family as
				// the netem and adversary events).
				if err := c.req.RestoreFromBitfield(restored); err != nil {
					store.close()
					return nil, err
				}
				if restored != nil {
					c.resumePieces = restored.Count()
				}
				c.resumeBytes = bytes
				c.resumeHashFails = hashFails
				c.fault("peer_resume")
				c.faultN("resume_bytes_saved", int(bytes))
				if hashFails > 0 {
					c.faultN("resume_hash_fail", hashFails)
				}
				if c.req.Complete() {
					c.seeding = true
					c.tr.localSeed()
				}
			}
		}
	}
	return c, nil
}

// ResumeStats reports what the resume load path restored at New time:
// pieces that re-verified, their byte total, and claimed pieces dropped
// for failing their hash. All zero without Options.ResumeDir or on a
// fresh directory.
func (c *Client) ResumeStats() (pieces int, bytes int64, hashFails int) {
	return c.resumePieces, c.resumeBytes, c.resumeHashFails
}

// now returns seconds since client start (estimator clock).
func (c *Client) now() float64 { return time.Since(c.start).Seconds() }

func (c *Client) pieceData(i int) []byte {
	start := int64(i) * int64(c.geo.PieceLength)
	return c.content[start : start+int64(c.geo.PieceSize(i))]
}

// PeerID returns this client's wire peer ID.
func (c *Client) PeerID() [20]byte { return c.peerID }

// Port returns the bound listen port (valid after Start).
func (c *Client) Port() int {
	if c.ln == nil {
		return 0
	}
	return c.ln.Addr().(*net.TCPAddr).Port
}

// Complete reports whether every piece has been downloaded and verified.
func (c *Client) Complete() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.req.Complete()
}

// Progress returns (done pieces, total pieces).
func (c *Client) Progress() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.req.Downloaded(), c.geo.NumPieces
}

// Stats returns lifetime uploaded/downloaded byte counters.
func (c *Client) Stats() (uploaded, downloaded int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.uploaded, c.downloaded
}

// Bytes returns a copy of the downloaded content; valid once Complete.
func (c *Client) Bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.content...)
}

// OnComplete registers fn to run (once, on the handler goroutine) when the
// download completes. Must be called before Start.
func (c *Client) OnComplete(fn func()) { c.onComplete = fn }

// Start begins listening, announcing and the choke rotation. announceURL
// may be empty to run tracker-less (peers added via AddPeer).
func (c *Client) Start(listenAddr, announceURL string) error {
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("client: listen: %w", err)
	}
	c.ln = ln
	c.wg.Add(1)
	go c.acceptLoop()
	c.wg.Add(1)
	go c.chokeLoop()
	if announceURL != "" {
		c.wg.Add(1)
		go c.announceLoop(announceURL)
	}
	if c.tr != nil {
		c.wg.Add(1)
		go c.sampleLoop(c.sampleEvery, c.globalAvail)
	}
	if c.reqTimeout > 0 {
		c.wg.Add(1)
		go c.requestTimeoutLoop()
	}
	if c.adv != nil && c.adv.FloodInterval() > 0 {
		c.wg.Add(1)
		go c.floodLoop(c.adv.FloodInterval())
	}
	return nil
}

// floodLoop is the request-flood adversary: every interval it fires one
// piece request at every connected peer, ignoring choke and interest
// state. Honest peers defend by closing connections that accumulate
// unservable requests (see handleRequest).
func (c *Client) floodLoop(interval time.Duration) {
	defer c.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
			c.mu.Lock()
			conns := append([]*peerConn(nil), c.connOrder...)
			c.mu.Unlock()
			for _, pc := range conns {
				piece := c.adv.FloodPiece(c.geo.NumPieces)
				size := c.geo.BlockSize(piece, 0)
				pc.send(func(e *wire.Encoder) error {
					return e.Request(uint32(piece), 0, uint32(size))
				})
			}
		}
	}
}

// Stop closes the listener and every connection and waits for goroutines.
// Shutdown ordering guarantees clean resume state: handler goroutines are
// fully drained (wg.Wait) BEFORE the resume store closes, so any piece
// verified during teardown is either completely persisted — data write,
// fsync, manifest rename — or not persisted at all; a half-written claim
// cannot exist.
func (c *Client) Stop() {
	if !c.shutdown() {
		return
	}
	if c.resume != nil {
		c.resume.close()
	}
}

// Kill is Stop's crash twin: it closes the resume store FIRST — before
// connections drain — so an in-flight piece persist fails mid-write
// instead of completing, exactly as a SIGKILL would leave it. The
// manifest only ever claims pieces whose data write finished, so the
// next client over the same ResumeDir re-hashes its way back to a
// consistent state (the kill-during-write regression test pins this).
func (c *Client) Kill() {
	if c.resume != nil {
		c.resume.kill()
	}
	c.shutdown()
}

// shutdown runs the common teardown; it reports false when the client
// was already stopped.
func (c *Client) shutdown() bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	c.closed = true
	conns := append([]*peerConn(nil), c.connOrder...)
	c.mu.Unlock()
	close(c.stopCh)
	if c.ln != nil {
		c.ln.Close()
	}
	for _, pc := range conns {
		pc.conn.Close()
	}
	c.wg.Wait()
	return true
}

func (c *Client) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn, false)
		}()
	}
}

// AddPeer dials addr and joins the swarm through it, retrying failed
// dials with jittered exponential backoff up to the configured budget
// (Options.DialRetries; zero keeps the historical single attempt).
func (c *Client) AddPeer(addr string) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for attempt := 0; ; attempt++ {
			c.mu.Lock()
			skip := c.closed || c.bannedLocked(addr)
			c.mu.Unlock()
			if skip {
				return
			}
			conn, err := c.dialPeer(addr)
			if err == nil {
				c.handleConn(conn, true)
				return
			}
			c.fault("dial_fail")
			if attempt >= c.dialRetries {
				return
			}
			c.fault("dial_retry")
			select {
			case <-c.stopCh:
				return
			case <-time.After(c.backoffDelay(c.dialBackoff, attempt+1, 30*time.Second)):
			}
		}
	}()
}

func (c *Client) announceLoop(announceURL string) {
	defer c.wg.Done()
	interval := 30 * time.Second
	event := "started"
	fails := 0
	for {
		c.mu.Lock()
		left := int64(c.geo.NumPieces-c.req.Downloaded()) * int64(c.geo.PieceLength)
		if left < 0 {
			left = 0
		}
		up, down := c.uploaded, c.downloaded
		c.mu.Unlock()
		resp, err := tracker.Announce(tracker.AnnounceRequest{
			URL:        announceURL,
			InfoHash:   c.meta.InfoHash(),
			PeerID:     c.peerID,
			Port:       c.Port(),
			Uploaded:   up,
			Downloaded: down,
			Left:       left,
			Event:      event,
			Compact:    true,
		})
		var wait time.Duration
		if err != nil {
			// Tracker unreachable or blacked out: back off and retry. The
			// "started" event (and any other pending one) stays queued for
			// the next attempt, and existing connections are untouched —
			// losing the tracker degrades peer discovery, not transfers.
			fails++
			c.fault("announce_fail")
			c.om.announceFails.Inc()
			wait = c.backoffDelay(c.annRetryBase, fails, c.annRetryMax)
		} else {
			c.om.announces.Inc()
			event = ""
			fails = 0
			if resp.Interval > 0 {
				interval = time.Duration(resp.Interval) * time.Second
			}
			for _, p := range resp.Peers {
				if p.Port == c.Port() && p.IP.IsLoopback() {
					continue // ourselves
				}
				addr := p.Addr()
				c.mu.Lock()
				dup := c.hasConnTo(addr)
				banned := c.bannedLocked(addr)
				n := len(c.connOrder)
				c.mu.Unlock()
				if !dup && !banned && n < 80 {
					c.AddPeer(addr)
				}
			}
			wait = interval
		}
		select {
		case <-c.stopCh:
			return
		case <-time.After(wait):
		}
	}
}

func (c *Client) hasConnTo(addr string) bool {
	for _, pc := range c.connOrder {
		if pc.remoteAddr == addr {
			return true
		}
	}
	return false
}

// chokeLoop runs the 10-second choke rounds.
func (c *Client) chokeLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.chokeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
			c.runChokeRound()
		}
	}
}

func (c *Client) runChokeRound() {
	c.om.chokeRounds.Inc()
	now := c.now()
	c.mu.Lock()
	peers := make([]core.ChokePeer, 0, len(c.connOrder))
	for _, pc := range c.connOrder {
		peers = append(peers, core.ChokePeer{
			ID:             pc.id,
			Interested:     pc.peerInterested,
			Unchoked:       pc.amUnchoking,
			DownloadRate:   pc.inEst.Rate(now),
			UploadRate:     pc.outEst.Rate(now),
			LastUnchoked:   pc.lastUnchokedAt,
			UploadedTo:     pc.bytesOut,
			DownloadedFrom: pc.bytesIn,
		})
	}
	choker := c.chokerL
	if c.seeding {
		choker = c.chokerS
	}
	unchoke := choker.Round(now, peers, c.rng.Rand())
	want := map[core.PeerID]bool{}
	for _, id := range unchoke {
		want[id] = true
	}
	type change struct {
		pc *peerConn
		un bool
	}
	var changes []change
	for _, pc := range c.connOrder {
		v := want[pc.id]
		if pc.amUnchoking != v {
			pc.amUnchoking = v
			if v {
				pc.lastUnchokedAt = now
			}
			changes = append(changes, change{pc, v})
			// Trace the transition while still holding c.mu: recording
			// after unlock races the peer's dropConn, which could
			// re-latch unchoked state on a record that already left.
			if v {
				c.tr.unchoke(pc.id)
			} else {
				c.tr.choke(pc.id)
			}
		}
	}
	c.mu.Unlock()
	// Send outside the state lock.
	for _, ch := range changes {
		if ch.un {
			ch.pc.send(func(e *wire.Encoder) error { return e.Simple(wire.MsgUnchoke) })
		} else {
			ch.pc.send(func(e *wire.Encoder) error { return e.Simple(wire.MsgChoke) })
		}
	}
}

// dropConn removes a closed connection from client state.
func (c *Client) dropConn(pc *peerConn) {
	c.mu.Lock()
	dropped := false
	if _, ok := c.conns[pc.id]; ok {
		dropped = true
		delete(c.conns, pc.id)
		for i, x := range c.connOrder {
			if x == pc {
				c.connOrder = append(c.connOrder[:i], c.connOrder[i+1:]...)
				break
			}
		}
		if pc.haveBits != nil {
			c.avail.RemovePeer(pc.haveBits)
		}
		c.req.OnPeerGone(pc.id)
	}
	c.mu.Unlock()
	if dropped {
		c.om.conns.Add(-1)
		c.tr.peerLeft(pc.id)
	}
}

// broadcastHave announces a completed piece to every peer.
func (c *Client) broadcastHave(piece int) {
	c.mu.Lock()
	conns := append([]*peerConn(nil), c.connOrder...)
	c.mu.Unlock()
	for _, pc := range conns {
		pc.send(func(e *wire.Encoder) error { return e.Have(uint32(piece)) })
	}
}

// Addr returns the listen address as host:port.
func (c *Client) Addr() string {
	return net.JoinHostPort("127.0.0.1", strconv.Itoa(c.Port()))
}

// Bitfield returns a copy of the verified-piece bitfield.
func (c *Client) Bitfield() *bitfield.Bitfield {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.req.Have().Copy()
}
