package client

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"rarestfirst/internal/bitfield"
	"rarestfirst/internal/core"
	mrate "rarestfirst/internal/rate"
	"rarestfirst/internal/wire"
)

// lockedRand is a mutex-guarded rand.Rand: reader goroutines and the choke
// loop both draw from it.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// newLockedRand seeds from the option seed, or ambient time when zero.
func newLockedRand(seed int64) *lockedRand {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

// Rand returns a rand.Rand safe to use while holding the client lock only.
// Internally each call path uses it under c.mu, so a plain guard suffices.
func (l *lockedRand) Rand() *rand.Rand { return l.rng }

// peerConn is one live wire connection.
type peerConn struct {
	c          *Client
	id         core.PeerID
	conn       net.Conn
	remoteAddr string
	peerID     [20]byte

	wmu sync.Mutex
	enc *wire.Encoder

	// Guarded by c.mu.
	haveBits       *bitfield.Bitfield
	amInterested   bool
	peerInterested bool
	amUnchoking    bool
	peerUnchoking  bool
	lastUnchokedAt float64
	inEst          *mrate.Estimator
	outEst         *mrate.Estimator
	bytesIn        int64
	bytesOut       int64

	// Request-timeout accounting, guarded by c.mu; pending is only
	// populated when Options.RequestTimeout is positive.
	pending map[core.BlockRef]time.Time
	faults  int
	snubbed bool

	// Byzantine-defense accounting, guarded by c.mu. poisonStrikes counts
	// hash-failed pieces this peer contributed blocks to; chokedReqs
	// counts requests we could not serve (choked or for pieces we lack)
	// since the peer's last served request — flooders accrue these
	// without bound, honest peers reset on every served block.
	poisonStrikes int
	chokedReqs    int
}

// floodAbuseLimit is the unservable-request count at which a connection
// is treated as a request flood and closed. Honest clients stop
// requesting when choked, so they accrue at most a pipeline's worth of
// racing requests per choke transition and reset on the next served
// block; a flooder ignores choke state and crosses the limit quickly.
const floodAbuseLimit = 64

// send serialises one message to the peer; errors (including a 30-second
// write stall, which breaks mutual-write deadlocks on full TCP buffers)
// close the connection and the reader loop cleans up.
func (pc *peerConn) send(fn func(*wire.Encoder) error) {
	pc.wmu.Lock()
	pc.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	err := fn(pc.enc)
	pc.wmu.Unlock()
	if err != nil {
		pc.conn.Close()
	}
}

// handleConn performs the handshake and runs the reader loop until the
// connection dies. outgoing reports whether we dialed.
func (c *Client) handleConn(conn net.Conn, outgoing bool) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	hs := wire.Handshake{InfoHash: c.meta.InfoHash(), PeerID: c.peerID}
	if outgoing {
		if err := wire.WriteHandshake(conn, hs); err != nil {
			return
		}
	}
	remote, err := wire.ReadHandshake(conn)
	if err != nil || remote.InfoHash != c.meta.InfoHash() || remote.PeerID == c.peerID {
		return
	}
	if !outgoing {
		if err := wire.WriteHandshake(conn, hs); err != nil {
			return
		}
	}
	conn.SetDeadline(time.Time{})

	pc := &peerConn{
		c:          c,
		conn:       conn,
		remoteAddr: conn.RemoteAddr().String(),
		peerID:     remote.PeerID,
		enc:        wire.NewEncoder(conn),
		inEst:      mrate.NewEstimator(0),
		outEst:     mrate.NewEstimator(0),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	pc.id = c.nextConn
	c.nextConn++
	c.conns[pc.id] = pc
	c.connOrder = append(c.connOrder, pc)
	myBits := c.req.Have().ToWire()
	empty := c.req.Have().Empty()
	if c.adv != nil && c.adv.FakeHaves() {
		// Bitfield liar: advertise every piece regardless of content.
		full := bitfield.New(c.geo.NumPieces)
		full.SetAll()
		myBits = full.ToWire()
		empty = false
	}
	c.mu.Unlock()
	c.om.conns.Add(1)
	c.tr.peerJoined(pc.id)
	defer c.dropConn(pc)

	// Initial bitfield (skipped when empty, as real clients do).
	if !empty {
		pc.send(func(e *wire.Encoder) error { return e.Bitfield(myBits) })
	}

	dec := wire.NewDecoder(conn)
	var msg wire.Message
	for {
		if err := dec.Decode(&msg); err != nil {
			return
		}
		if !c.handleMessage(pc, &msg) {
			return
		}
	}
}

// handleMessage dispatches one wire message; it returns false to drop the
// connection.
func (c *Client) handleMessage(pc *peerConn, m *wire.Message) bool {
	switch m.ID {
	case wire.MsgKeepAlive:
		return true
	case wire.MsgBitfield:
		bf, err := bitfield.FromWire(m.Raw, c.geo.NumPieces)
		if err != nil {
			return false
		}
		c.mu.Lock()
		if pc.haveBits != nil {
			c.mu.Unlock()
			return false // duplicate bitfield is a protocol error
		}
		pc.haveBits = bf
		c.avail.AddPeer(bf)
		c.updateInterestLocked(pc)
		seed := bf.Complete()
		c.mu.Unlock()
		// Report seed status in both directions: the collector no-ops on
		// unchanged state, and a crashed ex-seed that rejoins holding a
		// partial bitfield must un-latch its seed classification.
		c.tr.remoteSeedStatus(pc.id, seed)
		return true
	case wire.MsgHave:
		idx := int(m.Index)
		if idx < 0 || idx >= c.geo.NumPieces {
			return false
		}
		c.mu.Lock()
		if pc.haveBits == nil {
			pc.haveBits = bitfield.New(c.geo.NumPieces)
			c.avail.AddPeer(pc.haveBits)
		}
		if pc.haveBits.Set(idx) {
			c.avail.Inc(idx)
		}
		c.updateInterestLocked(pc)
		refill := pc.peerUnchoking && pc.amInterested
		seed := pc.haveBits.Complete()
		c.mu.Unlock()
		c.tr.countMsg("have_received")
		if seed {
			c.tr.remoteSeedStatus(pc.id, true)
		}
		if refill {
			c.fillPipeline(pc)
		}
		return true
	case wire.MsgInterested:
		c.mu.Lock()
		pc.peerInterested = true
		c.mu.Unlock()
		c.tr.remoteInterest(pc.id, true)
		return true
	case wire.MsgNotInterested:
		c.mu.Lock()
		pc.peerInterested = false
		c.mu.Unlock()
		c.tr.remoteInterest(pc.id, false)
		return true
	case wire.MsgUnchoke:
		c.mu.Lock()
		pc.peerUnchoking = true
		c.mu.Unlock()
		c.fillPipeline(pc)
		return true
	case wire.MsgChoke:
		c.mu.Lock()
		pc.peerUnchoking = false
		pc.pending = nil
		c.req.OnPeerGone(pc.id) // requeue pending blocks for other peers
		c.mu.Unlock()
		return true
	case wire.MsgRequest:
		return c.handleRequest(pc, m)
	case wire.MsgPiece:
		return c.handlePiece(pc, m)
	case wire.MsgCancel, wire.MsgPort:
		// Cancels are advisory — our serve path is synchronous, so there
		// is no queue to cancel from. Port (DHT) is ignored.
		return true
	default:
		return false
	}
}

// updateInterestLocked recomputes our interest in pc and sends the
// transition message. Caller holds c.mu; the send is deferred to avoid
// writing while locked.
func (c *Client) updateInterestLocked(pc *peerConn) {
	want := pc.haveBits != nil && c.req.Interested(pc.haveBits)
	if want == pc.amInterested {
		return
	}
	pc.amInterested = want
	c.tr.localInterest(pc.id, want)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		pc.send(func(e *wire.Encoder) error {
			if want {
				return e.Simple(wire.MsgInterested)
			}
			return e.Simple(wire.MsgNotInterested)
		})
	}()
}

// fillPipeline tops the request pipeline to pc up to PipelineDepth.
func (c *Client) fillPipeline(pc *peerConn) {
	for {
		c.mu.Lock()
		if !pc.peerUnchoking || !pc.amInterested || pc.haveBits == nil ||
			c.req.Pending(pc.id) >= PipelineDepth || c.req.Complete() {
			c.mu.Unlock()
			return
		}
		ref, ok := c.req.Next(c.rng.Rand(), pc.id, pc.haveBits)
		if !ok {
			c.mu.Unlock()
			return
		}
		if c.reqTimeout > 0 {
			if pc.pending == nil {
				pc.pending = map[core.BlockRef]time.Time{}
			}
			pc.pending[ref] = time.Now()
		}
		length := c.geo.BlockSize(ref.Piece, ref.Block)
		c.mu.Unlock()
		pc.send(func(e *wire.Encoder) error {
			return e.Request(uint32(ref.Piece), uint32(ref.Block*16<<10), uint32(length))
		})
	}
}

// handleRequest serves one block, honouring the choke state and the global
// upload rate cap.
func (c *Client) handleRequest(pc *peerConn, m *wire.Message) bool {
	idx, begin, length := int(m.Index), int(m.Begin), int(m.Length)
	if idx < 0 || idx >= c.geo.NumPieces || length <= 0 || length > 128<<10 {
		return false
	}
	if begin < 0 {
		return false
	}
	c.mu.Lock()
	if !c.req.Have().Has(idx) || !pc.amUnchoking {
		// Requests for pieces we lack, or sent while choked (a race right
		// after a choke transition), are silently dropped as in mainline —
		// but tallied: a flooder ignores choke state, so its unservable
		// requests accrue without bound and cross floodAbuseLimit.
		pc.chokedReqs++
		flood := pc.chokedReqs >= floodAbuseLimit
		if flood {
			c.banLocked(pc.remoteAddr)
		}
		c.mu.Unlock()
		if flood {
			c.fault("request_flood")
			pc.conn.Close()
			return false
		}
		return true
	}
	pc.chokedReqs = 0
	if begin+length > c.geo.PieceSize(idx) {
		c.mu.Unlock()
		return false
	}
	start := int64(idx)*int64(c.geo.PieceLength) + int64(begin)
	block := append([]byte(nil), c.content[start:start+int64(length)]...)
	c.mu.Unlock()
	if c.adv != nil {
		// Piece poisoner: corrupt the outbound copy (never our own
		// storage) at the model's seeded rate.
		c.adv.MaybePoison(block)
	}

	// Global upload cap: one token per byte.
	c.bucketMu.Lock()
	wait := c.bucket.Take(c.now(), length)
	c.bucketMu.Unlock()
	if wait > 0 {
		select {
		case <-c.stopCh:
			return false
		case <-time.After(time.Duration(wait * float64(time.Second))):
		}
	}
	pc.send(func(e *wire.Encoder) error { return e.Piece(uint32(idx), uint32(begin), block) })
	now := c.now()
	c.mu.Lock()
	pc.bytesOut += int64(length)
	pc.outEst.Update(now, int64(length))
	c.uploaded += int64(length)
	c.mu.Unlock()
	c.tr.uploaded(pc.id, int64(length))
	return true
}

// handlePiece ingests one received block.
func (c *Client) handlePiece(pc *peerConn, m *wire.Message) bool {
	idx, begin := int(m.Index), int(m.Begin)
	blockSize := 16 << 10
	if idx < 0 || idx >= c.geo.NumPieces || begin%blockSize != 0 {
		return false
	}
	blk := begin / blockSize
	if blk < 0 || blk >= c.geo.BlocksIn(idx) || len(m.Block) != c.geo.BlockSize(idx, blk) {
		return false
	}
	now := c.now()
	ref := core.BlockRef{Piece: idx, Block: blk}

	c.mu.Lock()
	if c.req.Have().Has(idx) {
		c.mu.Unlock()
		return true // stale end-game duplicate
	}
	start := int64(idx)*int64(c.geo.PieceLength) + int64(begin)
	copy(c.content[start:], m.Block)
	pc.bytesIn += int64(len(m.Block))
	pc.inEst.Update(now, int64(len(m.Block)))
	c.downloaded += int64(len(m.Block))
	done, cancels := c.req.OnBlock(pc.id, ref)
	delete(pc.pending, ref)
	endgameEntered := false
	if c.req.InEndGame() && !c.endgameMarked {
		c.endgameMarked = true
		endgameEntered = true
	}
	var verifiedPiece = -1
	var completed, hashFailed bool
	var wastedBytes int
	var poisonBanned []*peerConn
	if done {
		if c.meta.VerifyPiece(idx, c.pieceData(idx)) {
			verifiedPiece = idx
			completed = c.req.Complete()
			if completed {
				c.seeding = true
			}
		} else {
			// Hash failure: blame the peers that supplied blocks of this
			// piece before the requester forgets them, then revert
			// acceptance and re-download.
			hashFailed = true
			wastedBytes = c.geo.PieceSize(idx)
			suppliers := c.req.PieceSuppliers(idx)
			c.req.OnPieceHashFail(idx)
			poisonBanned = c.poisonSuspectsLocked(suppliers)
		}
	}
	// Map cancels to conns while locked.
	type cancelMsg struct {
		pc                   *peerConn
		piece, begin, length uint32
	}
	var cmsgs []cancelMsg
	for _, cb := range cancels {
		if other := c.conns[cb.Peer]; other != nil {
			delete(other.pending, cb.Ref) // cancelled, so never times out
			cmsgs = append(cmsgs, cancelMsg{
				pc:     other,
				piece:  uint32(cb.Ref.Piece),
				begin:  uint32(cb.Ref.Block * blockSize),
				length: uint32(c.geo.BlockSize(cb.Ref.Piece, cb.Ref.Block)),
			})
		}
	}
	interestRefresh := verifiedPiece >= 0
	c.mu.Unlock()

	c.tr.downloaded(pc.id, int64(len(m.Block)))
	c.tr.blockReceived()
	if endgameEntered {
		c.tr.markEvent("end_game")
	}
	if verifiedPiece >= 0 {
		c.om.pieces.Inc()
		c.tr.pieceCompleted(verifiedPiece)
		if c.resume != nil {
			// Persist outside c.mu: a verified piece's content range is
			// immutable from here on (later blocks for it are rejected as
			// stale duplicates), so the read races nothing. A write error
			// other than the shutdown race is surfaced as a fault; the
			// download itself continues — resume state is best-effort.
			if err := c.resume.persistPiece(verifiedPiece, c.pieceData(verifiedPiece)); err != nil && !errors.Is(err, errResumeClosed) {
				c.fault("resume_write_fail")
			}
		}
	}
	if completed {
		c.tr.localSeed()
	}
	for _, cm := range cmsgs {
		cm.pc.send(func(e *wire.Encoder) error { return e.Cancel(cm.piece, cm.begin, cm.length) })
	}
	if hashFailed {
		c.fault("piece_hash_fail")
		c.faultN("wasted_bytes", wastedBytes)
		// Close banned contributors outside the lock; their dropConn
		// requeues whatever they still had pending.
		for _, bp := range poisonBanned {
			c.fault("peer_banned_poison")
			bp.conn.Close()
		}
		// The failed piece is requestable again: top up every surviving
		// pipeline so the re-download starts elsewhere right away.
		c.refreshAllInterest()
	}
	if verifiedPiece >= 0 {
		c.broadcastHave(verifiedPiece)
		if interestRefresh {
			c.refreshAllInterest()
		}
		if completed && c.onComplete != nil {
			c.onComplete()
			c.onComplete = nil
		}
	}
	c.fillPipeline(pc)
	return true
}

// refreshAllInterest re-evaluates interest in every peer after we gained a
// piece (interest can only drop) and tops up pipelines.
func (c *Client) refreshAllInterest() {
	c.mu.Lock()
	conns := append([]*peerConn(nil), c.connOrder...)
	for _, pc := range conns {
		c.updateInterestLocked(pc)
	}
	c.mu.Unlock()
	for _, pc := range conns {
		c.fillPipeline(pc)
	}
}
