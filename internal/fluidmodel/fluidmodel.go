// Package fluidmodel implements the deterministic fluid model of
// BitTorrent-like networks from Qiu & Srikant (SIGCOMM 2004), the
// analytical baseline the paper contrasts its measurements with (§V:
// "Qiu and Srikant ... provide an analytical solution to a fluid model of
// BitTorrent ... a major limitation of this analytical model is the
// assumption of global knowledge").
//
// The model tracks the leecher population x(t) and seed population y(t):
//
//	dx/dt = λ − θx − min(c·x, μ(η·x + y))
//	dy/dt = min(c·x, μ(η·x + y)) − γy
//
// with λ the arrival rate, θ the abort rate, γ the seed departure rate,
// μ the per-peer upload capacity, c the per-peer download capacity, and η
// the piece-diversity effectiveness of leecher uploads (η → 1 under
// rarest first; the paper's entropy results justify η ≈ 1).
//
// Populations are in peers and capacities in file-copies per second
// (bytes/s divided by file size), so min(cx, μ(ηx+y)) is the system-wide
// completion rate in copies per second.
package fluidmodel

import (
	"errors"
	"math"
)

// Params are the model's rates. All must be non-negative; Mu must be
// positive.
type Params struct {
	Lambda float64 // leecher arrival rate, peers/second
	Theta  float64 // abort rate, 1/second
	Gamma  float64 // seed departure rate, 1/second
	Mu     float64 // per-peer upload capacity, copies/second
	C      float64 // per-peer download capacity, copies/second (Inf if <= 0)
	Eta    float64 // effectiveness of leecher uploads, 0..1
}

func (p Params) validate() error {
	switch {
	case p.Lambda < 0 || p.Theta < 0 || p.Gamma < 0 || p.Eta < 0 || p.Eta > 1:
		return errors.New("fluidmodel: negative rate or eta outside [0,1]")
	case p.Mu <= 0:
		return errors.New("fluidmodel: mu must be positive")
	default:
		return nil
	}
}

func (p Params) c() float64 {
	if p.C <= 0 {
		return math.Inf(1)
	}
	return p.C
}

// State is one point of the population trajectory.
type State struct {
	T float64 // seconds
	X float64 // leechers
	Y float64 // seeds
}

// completionRate is min(c x, μ(η x + y)): downloads finish either at the
// leechers' aggregate download capacity or at the system's aggregate
// upload capacity, whichever binds. Inputs are clamped at zero (RK4
// intermediate stages may probe slightly negative populations), and with
// no leechers there is no completion — this also avoids Inf·0 = NaN when
// the download side is uncapped.
func (p Params) completionRate(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	if y < 0 {
		y = 0
	}
	up := p.Mu * (p.Eta*x + y)
	c := p.c()
	if math.IsInf(c, 1) {
		return up
	}
	return math.Min(c*x, up)
}

// derivs returns (dx/dt, dy/dt).
func (p Params) derivs(x, y float64) (float64, float64) {
	done := p.completionRate(x, y)
	dx := p.Lambda - p.Theta*x - done
	dy := done - p.Gamma*y
	return dx, dy
}

// Integrate advances the model from (x0, y0) for dur seconds with step dt
// (classic RK4), returning the sampled trajectory including both
// endpoints. Populations are clamped at zero.
func (p Params) Integrate(x0, y0, dur, dt float64) ([]State, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if dur <= 0 || dt <= 0 {
		return nil, errors.New("fluidmodel: non-positive duration or step")
	}
	n := int(math.Ceil(dur / dt))
	out := make([]State, 0, n+1)
	x, y, t := x0, y0, 0.0
	out = append(out, State{T: t, X: x, Y: y})
	for i := 0; i < n; i++ {
		h := dt
		if t+h > dur {
			h = dur - t
		}
		k1x, k1y := p.derivs(x, y)
		k2x, k2y := p.derivs(x+h/2*k1x, y+h/2*k1y)
		k3x, k3y := p.derivs(x+h/2*k2x, y+h/2*k2y)
		k4x, k4y := p.derivs(x+h*k3x, y+h*k3y)
		x += h / 6 * (k1x + 2*k2x + 2*k3x + k4x)
		y += h / 6 * (k1y + 2*k2y + 2*k3y + k4y)
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		t += h
		out = append(out, State{T: t, X: x, Y: y})
	}
	return out, nil
}

// Equilibrium returns the steady-state populations (x̄, ȳ) by integrating
// until the relative change over a window falls below tol, or maxT is
// reached. It also reports whether it converged.
func (p Params) Equilibrium(maxT, tol float64) (State, bool, error) {
	if err := p.validate(); err != nil {
		return State{}, false, err
	}
	dt := 1.0
	x, y, t := 0.0, 1.0, 0.0 // one initial seed, empty leecher population
	for t < maxT {
		prevX, prevY := x, y
		// Advance one 100-step window.
		for i := 0; i < 100; i++ {
			k1x, k1y := p.derivs(x, y)
			k2x, k2y := p.derivs(x+dt/2*k1x, y+dt/2*k1y)
			k3x, k3y := p.derivs(x+dt/2*k2x, y+dt/2*k2y)
			k4x, k4y := p.derivs(x+dt*k3x, y+dt*k3y)
			x += dt / 6 * (k1x + 2*k2x + 2*k3x + k4x)
			y += dt / 6 * (k1y + 2*k2y + 2*k3y + k4y)
			if x < 0 {
				x = 0
			}
			if y < 0 {
				y = 0
			}
			t += dt
		}
		if math.Abs(x-prevX) < tol*(1+math.Abs(x)) && math.Abs(y-prevY) < tol*(1+math.Abs(y)) {
			return State{T: t, X: x, Y: y}, true, nil
		}
	}
	return State{T: t, X: x, Y: y}, false, nil
}

// MeanDownloadTime applies Little's law at equilibrium: T = x̄ / λ_effective,
// where λ_effective excludes aborted leechers.
func (p Params) MeanDownloadTime(maxT, tol float64) (float64, error) {
	eq, ok, err := p.Equilibrium(maxT, tol)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, errors.New("fluidmodel: equilibrium not reached")
	}
	effective := p.Lambda - p.Theta*eq.X
	if effective <= 0 {
		return math.Inf(1), nil
	}
	return eq.X / effective, nil
}

// FromSwarm maps concrete swarm parameters onto the model's rates:
// contentBytes is the file size, meanUpBps / meanDownBps the per-peer
// capacities in bytes/second (downBps <= 0 means uncapped).
func FromSwarm(arrivalRate, abortRate, seedDepartRate, meanUpBps, meanDownBps float64, contentBytes int64, eta float64) Params {
	size := float64(contentBytes)
	p := Params{
		Lambda: arrivalRate,
		Theta:  abortRate,
		Gamma:  seedDepartRate,
		Mu:     meanUpBps / size,
		Eta:    eta,
	}
	if meanDownBps > 0 {
		p.C = meanDownBps / size
	}
	return p
}
